//===- tests/test_fibers.cpp - Cooperative fibers over one-shot conts -----===//
//
// The PR 10 fiber runtime (vm/fibers.cpp, DESIGN.md §16): spawn/yield/
// join semantics, mark/parameter/winder isolation between interleaved
// fibers (the biggest semantic risk — each fiber's continuation carries
// its own mark and winder registers), one-shot double-resume protection,
// error propagation through fiber-join, suspendable sleeps and channels,
// run-time accounting that excludes parked time, and the EnginePool
// cooperative mode where parking releases the worker.
//
//===----------------------------------------------------------------------===//

#include "support/pool.h"
#include "support/timing.h"

#include "test_helpers.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace cmk;

namespace {

// --------------------------------------------------------------- basics ----

TEST(FiberTest, SpawnJoinReturnsThunkValue) {
  SchemeEngine E;
  expectEval(E, "(fiber-join (spawn (lambda () (* 6 7))))", "42");
}

TEST(FiberTest, SpawnPassesArguments) {
  SchemeEngine E;
  expectEval(E, "(fiber-join (spawn (lambda (a b) (- a b)) 10 4))", "6");
}

TEST(FiberTest, FiberPredicateAndPrinter) {
  SchemeEngine E;
  expectEval(E, "(fiber? (spawn (lambda () 1)))", "#t");
  expectEval(E, "(fiber? 3)", "#f");
}

TEST(FiberTest, YieldInterleavesDeterministically) {
  SchemeEngine E;
  expectEval(E,
             "(define out '())"
             "(define (log x) (set! out (cons x out)))"
             "(define f1 (spawn (lambda () (log 'a1) (yield) (log 'a2))))"
             "(define f2 (spawn (lambda () (log 'b1) (yield) (log 'b2))))"
             "(fiber-join f1) (fiber-join f2)"
             "(reverse out)",
             "(a1 b1 a2 b2)");
}

TEST(FiberTest, JoinFromManyWaiters) {
  SchemeEngine E;
  expectEval(E,
             "(define src (spawn (lambda () (yield) 5)))"
             "(define a (spawn (lambda () (+ 100 (fiber-join src)))))"
             "(define b (spawn (lambda () (+ 200 (fiber-join src)))))"
             "(list (fiber-join a) (fiber-join b))",
             "(105 205)");
}

TEST(FiberTest, NestedSpawns) {
  SchemeEngine E;
  expectEval(E,
             "(fiber-join (spawn (lambda ()"
             "  (let ((inner (spawn (lambda () 21))))"
             "    (* 2 (fiber-join inner))))))",
             "42");
}

// ------------------------------------------------------------ isolation ----

TEST(FiberTest, MarkIsolationAcrossInterleavedFibers) {
  // Each fiber reads back exactly its own mark across yields, never a
  // sibling's: marks live in the captured continuation, not in any
  // VM-global register that a switch could leak.
  SchemeEngine E;
  expectEval(E,
             "(define (probe v)"
             "  (with-continuation-mark 'k v"
             "    (begin (yield)"
             "           (let ((got (continuation-mark-set-first #f 'k)))"
             "             (yield) (list got (continuation-mark-set-first #f 'k))))))"
             "(define f1 (spawn (lambda () (probe 'one))))"
             "(define f2 (spawn (lambda () (probe 'two))))"
             "(define f3 (spawn (lambda () (probe 'three))))"
             "(list (fiber-join f1) (fiber-join f2) (fiber-join f3))",
             "((one one) (two two) (three three))");
}

TEST(FiberTest, MarkListIsolationUnderDeepInterleaving) {
  SchemeEngine E;
  expectEval(
      E,
      "(define (nest n tag)"
      "  (if (= n 0)"
      "      (begin (yield)"
      "             (continuation-mark-set->list"
      "              (current-continuation-marks) tag))"
      "      (with-continuation-mark tag n (cons 'x (nest (- n 1) tag)))))"
      "(define f1 (spawn (lambda () (nest 3 'a))))"
      "(define f2 (spawn (lambda () (nest 2 'b))))"
      "(list (fiber-join f1) (fiber-join f2))",
      "((x x x 1 2 3) (x x 1 2))");
}

TEST(FiberTest, ParameterIsolationAcrossFibers) {
  // parameterize is mark-based; a fiber switch inside the extent must not
  // leak the binding into a sibling.
  SchemeEngine E;
  expectEval(E,
             "(define p (make-parameter 'root))"
             "(define (probe v)"
             "  (parameterize ((p v)) (yield) (p)))"
             "(define f1 (spawn (lambda () (probe 'one))))"
             "(define f2 (spawn (lambda () (probe 'two))))"
             "(list (fiber-join f1) (fiber-join f2) (p))",
             "(one two root)");
}

TEST(FiberTest, WinderIsolationRawSwitchesDontFireWinders) {
  // Like Racket thread swaps: the scheduler's raw switches do not run
  // dynamic-wind thunks. Winders fire when control enters/leaves the
  // extent, once each — never per switch.
  SchemeEngine E;
  expectEval(E,
             "(define out '())"
             "(define (log x) (set! out (cons x out)))"
             "(define f1 (spawn (lambda ()"
             "  (dynamic-wind"
             "    (lambda () (log 'in1))"
             "    (lambda () (yield) (yield) 'r1)"
             "    (lambda () (log 'out1))))))"
             "(define f2 (spawn (lambda ()"
             "  (dynamic-wind"
             "    (lambda () (log 'in2))"
             "    (lambda () (yield) 'r2)"
             "    (lambda () (log 'out2))))))"
             "(fiber-join f1) (fiber-join f2)"
             "(reverse out)",
             "(in1 in2 out2 out1)");
}

TEST(FiberTest, WinderEscapeInsideOneFiberStillFires) {
  // A non-local exit *within* one fiber must run its after-thunks even
  // with sibling fibers interleaved through the extent.
  SchemeEngine E;
  expectEval(E,
             "(define out '())"
             "(define (log x) (set! out (cons x out)))"
             "(define f1 (spawn (lambda ()"
             "  (call/cc (lambda (k)"
             "    (dynamic-wind"
             "      (lambda () (log 'in))"
             "      (lambda () (yield) (k 'escaped))"
             "      (lambda () (log 'out))))))))"
             "(define f2 (spawn (lambda () (yield) 'f2)))"
             "(list (fiber-join f1) (fiber-join f2) (reverse out))",
             "(escaped f2 (in out))");
}

// ---------------------------------------------------------------- errors ----

TEST(FiberTest, DoubleResumeOfParkedContinuationErrors) {
  // One-shot captures stay one-shot across a park/resume cycle: the
  // fiber grabs an explicit one-shot, yields (park + one-shot resume),
  // returns through the record, then tries to re-enter it. The second
  // use must fail with the standard one-shot error even though the
  // frames travelled through the scheduler's capture machinery.
  SchemeEngine E;
  expectError(E,
              "(define f (spawn (lambda ()"
              "  (define stash #f)"
              "  (let ((r (#%call/1cc (lambda (k) (set! stash k) 'first))))"
              "    (yield)"
              "    (if (eq? r 'first) (stash 'second) r)))))"
              "(fiber-join f)",
              "one-shot continuation used more than once");
}

TEST(FiberTest, ZombieReentryOfFinishedFiberIsRejected) {
  // call/cc promotes the scheduler's one-shots (paper section 6), so a
  // smuggled full continuation CAN jump back into a finished fiber's
  // body -- but when that zombie run reaches the boot epilogue, the
  // scheduler rejects the second retirement as a hard error instead of
  // corrupting the fiber's recorded result.
  SchemeEngine E;
  expectError(E,
              "(define stash #f)"
              "(define f (spawn (lambda ()"
              "  (call/cc (lambda (k) (set! stash k)))"
              "  (yield) 'done)))"
              "(fiber-join f)"
              "(stash 'again)",
              "not current");
}

TEST(FiberTest, JoinAfterErrorRethrows) {
  SchemeEngine E;
  expectEval(E,
             "(define f (spawn (lambda () (error \"boom\" 7))))"
             "(catch (lambda (e) (list 'caught (exn-message e) (exn-irritants e)))"
             "  (fiber-join f))",
             "(caught \"boom\" (7))");
}

TEST(FiberTest, JoinAfterErrorRethrowsToSecondJoiner) {
  // The stored result is the whole thrown value: every joiner gets the
  // same exn, no matter how late it joins.
  SchemeEngine E;
  expectEval(E,
             "(define f (spawn (lambda () (error \"boom\"))))"
             "(define (try) (catch (lambda (e) (exn-message e)) (fiber-join f)))"
             "(list (try) (try))",
             "(\"boom\" \"boom\")");
}

TEST(FiberTest, ErrorKindSurvivesJoinRethrow) {
  // A limit exn rethrown by fiber-join keeps its kind, so targeted
  // handlers (exn:timeout? etc.) still dispatch.
  SchemeEngine E;
  expectEval(E,
             "(define f (spawn (lambda ()"
             "  (throw (#%make-limit-exn 'timeout \"budget\")))))"
             "(catch (lambda (e) (list (exn:timeout? e) (exn-message e)))"
             "  (fiber-join f))",
             "(#t \"budget\")");
}

TEST(FiberTest, UncaughtThrowInRootStillFailsEval) {
  SchemeEngine E;
  expectError(E, "(fiber-join (spawn (lambda () (car 5))))", "car");
}

TEST(FiberTest, DeadlockIsAHardError) {
  // Every fiber parked, no timer: an uncatchable engine-level error, not
  // a hang.
  SchemeEngine E;
  expectError(E,
              "(define ch (make-channel 0))"
              "(channel-get ch)",
              "deadlock");
}

TEST(FiberTest, SpawnRejectsNonProcedure) {
  SchemeEngine E;
  expectError(E, "(spawn 3)", "procedure");
}

TEST(FiberTest, MarkStackModeRejectsFibers) {
  SchemeEngine E(EngineVariant::MarkStack);
  expectError(E, "(spawn (lambda () 1))", "mark-stack");
}

// -------------------------------------------------------------- channels ----

TEST(FiberTest, BoundedChannelFifo) {
  SchemeEngine E;
  expectEval(E,
             "(define ch (make-channel 2))"
             "(define p (spawn (lambda ()"
             "  (channel-put ch 1) (channel-put ch 2) (channel-put ch 3) 'p)))"
             "(list (channel-get ch) (channel-get ch) (channel-get ch)"
             "      (fiber-join p))",
             "(1 2 3 p)");
}

TEST(FiberTest, RendezvousChannelBlocksUntilPartner) {
  SchemeEngine E;
  expectEval(E,
             "(define ch (make-channel))"
             "(define out '())"
             "(define p (spawn (lambda ()"
             "  (set! out (cons 'before out))"
             "  (channel-put ch 'msg)"
             "  (set! out (cons 'after out)))))"
             "(yield)" // producer runs, parks on the empty rendezvous
             "(set! out (cons 'main out))"
             "(define got (channel-get ch))"
             "(fiber-join p)"
             "(list got (reverse out))",
             "(msg (before main after))");
}

TEST(FiberTest, ChannelManyProducersOneConsumer) {
  SchemeEngine E;
  expectEval(E,
             "(define ch (make-channel 1))"
             "(define (producer i) (spawn (lambda () (channel-put ch i))))"
             "(define ps (list (producer 1) (producer 2) (producer 3)))"
             "(define got (list (channel-get ch) (channel-get ch)"
             "                  (channel-get ch)))"
             "(for-each fiber-join ps)"
             "(apply + got)",
             "6");
}

TEST(FiberTest, ChannelPredicates) {
  SchemeEngine E;
  expectEval(E, "(channel? (make-channel 4))", "#t");
  expectEval(E, "(channel? (vector 1 2 3 4 5))", "#f");
}

// ------------------------------------------------------- sleeps & timers ----

TEST(FiberTest, SleepingFibersOverlapNotSerialize) {
  // Two 30ms sleeps in sibling fibers must overlap (cooperative parking),
  // so the pair completes far sooner than 60ms of serialized sleeping.
  SchemeEngine E;
  uint64_t T0 = nowNanos();
  expectEval(E,
             "(define a (spawn (lambda () (sleep-ms 30) 'a)))"
             "(define b (spawn (lambda () (sleep-ms 30) 'b)))"
             "(list (fiber-join a) (fiber-join b))",
             "(a b)");
  uint64_t ElapsedMs = (nowNanos() - T0) / 1000000;
  EXPECT_LT(ElapsedMs, 55u) << "sleeps serialized instead of overlapping";
}

TEST(FiberTest, TimedParkTimesOut) {
  SchemeEngine E;
  expectEval(E, "(begin (#%fiber-park-timed! 5) 'woke)", "woke");
}

TEST(FiberTest, UnparkDeliversResumeValue) {
  SchemeEngine E;
  expectEval(E,
             "(define waiter (spawn (lambda () (#%fiber-park!))))"
             "(yield)" // waiter parks
             "(#%fiber-unpark! waiter 'payload)"
             "(fiber-join waiter)",
             "payload");
}

TEST(FiberTest, UnparkOfRunnableFiberIsRejected) {
  SchemeEngine E;
  expectEval(E, "(#%fiber-unpark! (spawn (lambda () 1)) 'x)", "#f");
}

// ------------------------------------------------- run-time accounting ----

TEST(FiberTest, ParkedTimeExcludedFromRunNs) {
  // A fiber that sleeps 80ms has on-CPU time well under 40ms: parked time
  // must not count (per-job budgets in the pool hinge on this).
  SchemeEngine E;
  Value V = E.eval("(define f (spawn (lambda () (sleep-ms 80) 'ok)))"
                   "(fiber-join f)"
                   "(#%fiber-run-ns f)");
  ASSERT_TRUE(E.ok()) << E.lastError();
  ASSERT_TRUE(V.isFixnum());
  EXPECT_LT(V.asFixnum(), 40 * 1000000) << "parked time was charged as run";
}

TEST(FiberTest, InterruptDuringLongSleepLandsFast) {
  // Satellite regression: sleep-ms used to sleep its full duration
  // uninterruptibly. An interrupt against (sleep-ms 60000) must land
  // well under 100ms (the native polls signals every <=10ms chunk).
  SchemeEngine E;
  std::atomic<bool> Requested{false};
  uint64_t RequestNs = 0;
  std::thread Interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    RequestNs = nowNanos();
    Requested.store(true);
    E.requestInterrupt();
  });
  E.eval("(sleep-ms 60000)");
  uint64_t DoneNs = nowNanos();
  Interrupter.join();
  ASSERT_TRUE(Requested.load());
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::Interrupt) << E.lastError();
  uint64_t DeliveryMs = (DoneNs - RequestNs) / 1000000;
  EXPECT_LT(DeliveryMs, 100u) << "interrupt took " << DeliveryMs << "ms";
}

TEST(FiberTest, InterruptDuringFiberSleepLandsFast) {
  // Same latency bound when the sleep is a parked fiber (timer-wheel
  // path through idleWait rather than the chunked native sleep).
  SchemeEngine E;
  uint64_t RequestNs = 0;
  std::thread Interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    RequestNs = nowNanos();
    E.requestInterrupt();
  });
  E.eval("(fiber-join (spawn (lambda () (sleep-ms 60000))))");
  uint64_t DoneNs = nowNanos();
  Interrupter.join();
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::Interrupt) << E.lastError();
  uint64_t DeliveryMs = (DoneNs - RequestNs) / 1000000;
  EXPECT_LT(DeliveryMs, 100u) << "interrupt took " << DeliveryMs << "ms";
}

TEST(FiberTest, StatsCountSpawnsAndParks) {
  SchemeEngine E;
  E.resetStats();
  E.evalOrDie("(define f (spawn (lambda () (sleep-ms 1) 'x)))"
              "(fiber-join f)");
  EXPECT_GE(E.stats().FiberSpawns, 1u);
  EXPECT_GE(E.stats().FiberParks, 1u); // the join park at minimum
}

// ------------------------------------------------------------ pool mode ----

TEST(FiberPoolTest, ManySleepingJobsMultiplexOverFewWorkers) {
  // 24 jobs, each parked ~40ms, over 2 workers: cooperative parking must
  // overlap the waits. Serialized blocking would need ~480ms/worker.
  PoolOptions O;
  O.Workers = 2;
  O.EnableFibers = true;
  O.MaxFibersPerWorker = 16;
  EnginePool Pool(O);
  uint64_t T0 = nowNanos();
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 24; ++I)
    Fs.push_back(Pool.submit("(begin (sleep-ms 40) " + std::to_string(I) +
                             ")"));
  for (int I = 0; I < 24; ++I) {
    JobResult R = Fs[I].get();
    EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
    EXPECT_EQ(R.Output, std::to_string(I));
  }
  uint64_t ElapsedMs = (nowNanos() - T0) / 1000000;
  EXPECT_LT(ElapsedMs, 400u) << "jobs serialized instead of multiplexing";
  PoolStats S = Pool.stats();
  EXPECT_GE(S.Engines.FiberSpawns, 24u);
  EXPECT_GE(S.Engines.FiberParks, 24u);
}

TEST(FiberPoolTest, ParkedTimeDoesNotBurnJobBudget) {
  // TimeoutMs governs on-CPU time in fiber mode: a job parked for 150ms
  // under a 50ms budget must still succeed.
  PoolOptions O;
  O.Workers = 1;
  O.EnableFibers = true;
  O.DefaultJobLimits.TimeoutMs = 50;
  EnginePool Pool(O);
  JobResult R = Pool.submit("(begin (sleep-ms 150) 'ok)").get();
  EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Output, "ok");
}

TEST(FiberPoolTest, RunawayJobStillTripsItsBudget) {
  PoolOptions O;
  O.Workers = 1;
  O.EnableFibers = true;
  O.DefaultJobLimits.TimeoutMs = 30;
  EnginePool Pool(O);
  JobResult R =
      Pool.submit("(let loop ((i 0)) (loop (+ i 1)))").get();
  EXPECT_EQ(R.Outcome, JobOutcome::TrippedTimeout) << R.Error;
}

TEST(FiberPoolTest, RunawayJobDoesNotStarveSiblings) {
  // One spinning job under a budget and several quick jobs behind it:
  // everyone completes, the spinner with a timeout trip.
  PoolOptions O;
  O.Workers = 1;
  O.EnableFibers = true;
  O.MaxFibersPerWorker = 8;
  O.DefaultJobLimits.TimeoutMs = 60;
  EnginePool Pool(O);
  auto Spin = Pool.submit("(let loop ((i 0)) (loop (+ i 1)))");
  std::vector<std::future<JobResult>> Quick;
  for (int I = 0; I < 4; ++I)
    Quick.push_back(Pool.submit("(+ 1 " + std::to_string(I) + ")"));
  for (int I = 0; I < 4; ++I) {
    JobResult R = Quick[I].get();
    EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  }
  EXPECT_EQ(Spin.get().Outcome, JobOutcome::TrippedTimeout);
}

TEST(FiberPoolTest, DeadlinesExpireParkedJobs) {
  // A job parked past its wall-clock deadline is woken and evicted with
  // a timeout trip — parking is budget-free, not deadline-free.
  PoolOptions O;
  O.Workers = 1;
  O.EnableFibers = true;
  EnginePool Pool(O);
  SubmitOptions SO;
  SO.deadlineMs(60);
  JobResult R = Pool.submit("(begin (sleep-ms 5000) 'late)", SO).get();
  EXPECT_EQ(R.Outcome, JobOutcome::TrippedTimeout) << R.Error;
}

TEST(FiberPoolTest, InterruptAllReachesParkedJobs) {
  PoolOptions O;
  O.Workers = 1;
  O.EnableFibers = true;
  EnginePool Pool(O);
  auto F = Pool.submit("(begin (sleep-ms 5000) 'late)");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Pool.interruptAll();
  JobResult R = F.get();
  EXPECT_EQ(R.Outcome, JobOutcome::TrippedInterrupt) << R.Error;
}

TEST(FiberPoolTest, CompileErrorFailsOnlyThatJob) {
  PoolOptions O;
  O.Workers = 1;
  O.EnableFibers = true;
  EnginePool Pool(O);
  JobResult Bad = Pool.submit("(lambda").get();
  EXPECT_EQ(Bad.Outcome, JobOutcome::Error);
  JobResult Good = Pool.submit("(+ 2 3)").get();
  EXPECT_EQ(Good.Outcome, JobOutcome::Ok) << Good.Error;
  EXPECT_EQ(Good.Output, "5");
}

TEST(FiberPoolTest, ResultsMatchBlockingPool) {
  std::vector<std::string> Jobs = {
      "(+ 1 2)",
      "(with-continuation-mark 'k 7 (continuation-mark-set-first #f 'k))",
      "(call/cc (lambda (k) (+ 1 (k 41))))",
      "(let ((ch (make-channel 1)))"
      "  (spawn (lambda () (channel-put ch 'msg)))"
      "  (channel-get ch))",
      "(fiber-join (spawn (lambda () (sleep-ms 1) 'slept)))",
  };
  std::vector<std::string> Expected;
  {
    SchemeEngine Serial;
    for (const std::string &J : Jobs) {
      Expected.push_back(Serial.evalToString(J));
      ASSERT_TRUE(Serial.ok()) << Serial.lastError();
    }
  }
  PoolOptions O;
  O.Workers = 2;
  O.EnableFibers = true;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Fs;
  for (const std::string &J : Jobs)
    Fs.push_back(Pool.submit(J));
  for (size_t I = 0; I < Jobs.size(); ++I) {
    JobResult R = Fs[I].get();
    EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
    EXPECT_EQ(R.Output, Expected[I]) << Jobs[I];
  }
}

TEST(FiberPoolTest, CleanShutdownWithParkedJobs) {
  PoolOptions O;
  O.Workers = 2;
  O.EnableFibers = true;
  auto Pool = std::make_unique<EnginePool>(O);
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(Pool->submit("(begin (sleep-ms 2000) 'late)"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Pool->shutdown(/*Drain=*/false);
  Pool.reset();
  for (auto &F : Fs) {
    JobResult R = F.get(); // resolved, not stranded
    EXPECT_NE(R.Outcome, JobOutcome::Ok);
  }
}

} // namespace
