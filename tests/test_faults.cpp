//===- tests/test_faults.cpp - Deterministic fault injection ---*- C++ -*-===//
//
// The FaultInjector (support/faults.h) counts passes through five probe
// sites — gc, overflow, nofuse, oom, reify-oom — and fires at configured
// hit numbers, intervals, or seeded probabilities. Spec parsing and the
// control API are always compiled; the probes themselves only exist when
// the library was built with -DCMARKS_FAULTS=ON, so behavioral assertions
// are gated on that.
//
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "support/faults.h"

using namespace cmk;

namespace {

// ----------------------------------------------------------- spec parsing ----

TEST(FaultSpec, ParsesSitesAndTriggers) {
  FaultInjector F;
  std::string Err;
  ASSERT_TRUE(F.configureFromSpec("oom:at=120;overflow:every=7", &Err)) << Err;
  EXPECT_TRUE(F.anyArmed());
  F.disarmAll();
  EXPECT_FALSE(F.anyArmed());
}

TEST(FaultSpec, ParsesProbabilisticTrigger) {
  FaultInjector F;
  std::string Err;
  ASSERT_TRUE(F.configureFromSpec("gc:p=5,seed=42", &Err)) << Err;
  EXPECT_TRUE(F.anyArmed());
}

TEST(FaultSpec, RejectsMalformedSpecsWithoutSideEffects) {
  FaultInjector F;
  std::string Err;
  ASSERT_TRUE(F.configureFromSpec("oom:at=3", &Err)) << Err;
  EXPECT_FALSE(F.configureFromSpec("bogus-site:at=1", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(F.configureFromSpec("oom:at=0", &Err));
  EXPECT_FALSE(F.configureFromSpec("oom:frobnicate=9", &Err));
  EXPECT_FALSE(F.configureFromSpec("oom:p=150", &Err));
  // The failed reconfigurations must not have disturbed the armed state.
  EXPECT_TRUE(F.anyArmed());
}

TEST(FaultSpec, SiteNamesRoundTrip) {
  for (int I = 0; I < NumFaultSites; ++I) {
    FaultInjector F;
    std::string Spec = std::string(faultSiteName(static_cast<FaultSite>(I))) +
                       ":at=1";
    std::string Err;
    EXPECT_TRUE(F.configureFromSpec(Spec, &Err)) << Spec << ": " << Err;
  }
}

TEST(FaultSpec, SuspendMasksHitsEntirely) {
  FaultInjector F;
  ASSERT_TRUE(F.configureFromSpec("oom:at=1", nullptr));
  F.suspend();
  EXPECT_FALSE(F.shouldFail(FaultSite::Oom));
  EXPECT_EQ(F.hits(FaultSite::Oom), 0u);
  F.resume();
  EXPECT_TRUE(F.shouldFail(FaultSite::Oom));
  EXPECT_EQ(F.hits(FaultSite::Oom), 1u);
}

TEST(FaultSpec, DeterministicGivenSameSeed) {
  FaultInjector A, B;
  ASSERT_TRUE(A.configureFromSpec("gc:p=25,seed=7", nullptr));
  ASSERT_TRUE(B.configureFromSpec("gc:p=25,seed=7", nullptr));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.shouldFail(FaultSite::Gc), B.shouldFail(FaultSite::Gc))
        << "diverged at hit " << I;
  EXPECT_EQ(A.injected(FaultSite::Gc), B.injected(FaultSite::Gc));
  EXPECT_GT(A.injected(FaultSite::Gc), 0u);
}

#if CMARKS_FAULTS

// ------------------------------------------------------- behavioral tests ----
// Each site has a semantics contract: gc/overflow/nofuse are
// *semantics-preserving* (programs still compute the right answer, just
// down a slower path), while oom/reify-oom force a heap-limit trip that
// must be catchable and leave the engine reusable.

TEST(FaultBehavior, ForcedGcPreservesSemantics) {
  SchemeEngine E;
  E.faults().arm(FaultSite::Gc, FaultInjector::Mode::Every, 50);
  expectEval(E,
             "(let loop ([i 0] [acc '()])"
             "  (if (= i 2000)"
             "      (length acc)"
             "      (loop (+ i 1) (cons (make-vector 8 i) acc))))",
             "2000");
  EXPECT_GT(E.faults().injected(FaultSite::Gc), 0u);
  EXPECT_GT(E.stats().FaultsInjected, 0u);
}

TEST(FaultBehavior, ForcedOverflowPreservesSemantics) {
  SchemeEngine E;
  E.faults().arm(FaultSite::Overflow, FaultInjector::Mode::Every, 97);
  expectEval(E,
             "(define (deep n) (if (= n 0) 0 (+ 1 (deep (- n 1)))))"
             "(deep 5000)",
             "5000");
  EXPECT_GT(E.faults().injected(FaultSite::Overflow), 0u);
}

TEST(FaultBehavior, DisabledFusePreservesSemantics) {
  SchemeEngine E;
  E.faults().arm(FaultSite::NoFuse, FaultInjector::Mode::Every, 1);
  E.resetStats();
  // One-shot continuation capture + return normally fuses the underflow
  // record back onto the stack; with the fuse disabled every return takes
  // the copying path instead, and the answers must not change.
  expectEval(E,
             "(define (f n)"
             "  (if (= n 0)"
             "      (call/cc (lambda (k) 0))"
             "      (+ 1 (f (- n 1)))))"
             "(f 100)",
             "100");
}

TEST(FaultBehavior, InjectedOomIsCatchableAndEngineSurvives) {
  SchemeEngine E;
  E.faults().arm(FaultSite::Oom, FaultInjector::Mode::At, 500);
  expectEval(E,
             "(with-handlers ([exn:heap-limit? (lambda (e) 'oom-caught)])\n"
             "  (let loop ([i 0] [acc '()])\n"
             "    (if (= i 100000) 'no-fault (loop (+ i 1) (cons i acc)))))",
             "oom-caught");
  E.faults().disarmAll();
  expectEval(E, "(length (list 1 2 3))", "3");
}

TEST(FaultBehavior, OomDuringReifyIsCatchableAndEngineSurvives) {
  SchemeEngine E;
  E.faults().arm(FaultSite::ReifyOom, FaultInjector::Mode::At, 3);
  // Hammer reification via call/cc; the third reification trips a
  // synthetic heap limit mid-capture.
  E.eval("(define (f n)"
         "  (if (= n 0)"
         "      (call/cc (lambda (k) 0))"
         "      (+ 1 (f (- n 1)))))"
         "(with-handlers ([exn:heap-limit? (lambda (e) 'reify-oom)])"
         "  (let loop ([i 0])"
         "    (if (= i 50) 'no-fault (begin (f 40) (loop (+ i 1))))))");
  ASSERT_TRUE(E.ok()) << E.lastError();
  E.faults().disarmAll();
  expectEval(E, "(+ 1 2)", "3");
}

TEST(FaultBehavior, HitsAccumulateAndReportRenders) {
  SchemeEngine E;
  E.faults().arm(FaultSite::Gc, FaultInjector::Mode::Every, 1000000);
  E.eval("(let loop ([i 0]) (if (= i 1000) i (loop (+ i 1))))");
  EXPECT_GT(E.faults().hits(FaultSite::Gc), 0u);
  std::string Report = E.faults().report();
  EXPECT_NE(Report.find("gc"), std::string::npos) << Report;
}

TEST(FaultBehavior, PreludeLoadIsNeverPerturbed) {
  // Arm an aggressive spec through the environment path: the engine
  // constructor must suspend injection while the prelude loads, so
  // construction succeeds even with oom:at=1.
  FaultInjector Probe;
  ASSERT_TRUE(Probe.configureFromSpec("oom:at=1", nullptr));
  SchemeEngine E;
  E.faults().arm(FaultSite::Oom, FaultInjector::Mode::At, 1);
  // Long enough to cross a safe point, so the pending trip is delivered.
  E.eval("(let loop ([i 0] [acc '()])"
         "  (if (= i 200000) 'done (loop (+ i 1) (cons i acc))))");
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::HeapLimit);
  E.faults().disarmAll();
  expectEval(E, "(car (cons 1 2))", "1");
}

#endif // CMARKS_FAULTS

} // namespace
