//===- tests/test_attachments.cpp - Continuation attachments ---*- C++ -*-===//
///
/// \file
/// Semantics of the four primitives of paper section 7.1 in every position
/// category of section 7.2, the compiler's category classification, and
/// equivalence with the call/cc-based imitation of figure 3 (which relies
/// on captures of the same continuation being eq?, as in Chez Scheme).
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

using namespace cmk;

namespace {

class Attachments : public ::testing::Test {
protected:
  SchemeEngine E;
};

// --- Basic semantics ---------------------------------------------------------

TEST_F(Attachments, SetThenGetInTailPosition) {
  // The callee is tail-called, so it shares the conceptual frame and sees
  // the attachment.
  expectEval(E,
             "(define (peek) (call-getting-continuation-attachment 'none"
             "                 (lambda (a) a)))"
             "(call-setting-continuation-attachment 'v (lambda () (peek)))",
             "v");
}

TEST_F(Attachments, GetInNonTailPositionSeesNothing) {
  // A non-tail call creates a fresh frame with no attachment.
  expectEval(E,
             "(define (peek) (call-getting-continuation-attachment 'none"
             "                 (lambda (a) a)))"
             "(call-setting-continuation-attachment 'v"
             "  (lambda () (list (peek))))",
             "(none)");
}

TEST_F(Attachments, SetReplacesOnSameFrame) {
  expectEval(E,
             "(call-setting-continuation-attachment 'a"
             "  (lambda ()"
             "    (call-setting-continuation-attachment 'b"
             "      (lambda () (current-continuation-attachments)))))",
             "(b)");
}

TEST_F(Attachments, NestedFramesStack) {
  expectEval(E,
             "(call-setting-continuation-attachment 'outer"
             "  (lambda ()"
             "    (car (list"
             "      (call-setting-continuation-attachment 'inner"
             "        (lambda () (current-continuation-attachments)))))))",
             "(inner outer)");
}

TEST_F(Attachments, ConsumeRemoves) {
  expectEval(E,
             "(call-setting-continuation-attachment 'v"
             "  (lambda ()"
             "    (call-consuming-continuation-attachment 'none"
             "      (lambda (a)"
             "        (list a (current-continuation-attachments))))))",
             "(v ())");
}

TEST_F(Attachments, ConsumeThenSetIsReplace) {
  // The with-continuation-mark pattern (paper 7.1).
  expectEval(E,
             "(call-setting-continuation-attachment 1"
             "  (lambda ()"
             "    (call-consuming-continuation-attachment 0"
             "      (lambda (a)"
             "        (call-setting-continuation-attachment (+ a 10)"
             "          (lambda () (current-continuation-attachments)))))))",
             "(11)");
}

TEST_F(Attachments, GetDefaultWhenNoAttachment) {
  expectEval(E,
             "(call-getting-continuation-attachment 'dflt (lambda (a) a))",
             "dflt");
}

TEST_F(Attachments, AttachmentsPopOnReturn) {
  expectEval(E,
             "(define (with-att thunk)"
             "  (call-setting-continuation-attachment 'v"
             "    (lambda () (thunk))))"
             "(list (with-att (lambda () (length (current-continuation-attachments))))"
             "      (length (current-continuation-attachments)))",
             "(1 0)");
}

TEST_F(Attachments, NonTailSetAroundPrimitive) {
  // Category: non-tail, no call in body -> pure marks push/pop (7.2).
  expectEval(E,
             "(+ 1 (call-setting-continuation-attachment 'v"
             "       (lambda () (+ 2 3))))",
             "6");
}

TEST_F(Attachments, NonTailSetBodyObservesOwnMark) {
  expectEval(E,
             "(+ 0 (call-setting-continuation-attachment 7"
             "       (lambda () (car (current-continuation-attachments)))))",
             "7");
}

TEST_F(Attachments, NonTailSetAroundCall) {
  // Category: non-tail with a tail call in the body -> CallAttach (7.2).
  expectEval(E,
             "(define (probe) (current-continuation-attachments))"
             "(cons 'r (call-setting-continuation-attachment 'v"
             "           (lambda () (probe))))",
             "(r v)");
  // The callee sees the attachment as its own frame's (tail sharing).
  expectEval(E,
             "(define (probe2) (call-getting-continuation-attachment 'none"
             "                   (lambda (a) a)))"
             "(cons 'r (call-setting-continuation-attachment 'v2"
             "           (lambda () (probe2))))",
             "(r . v2)");
}

TEST_F(Attachments, NonTailSetPopsAfterCall) {
  expectEval(E,
             "(define (id x) x)"
             "(begin"
             "  (+ 1 (call-setting-continuation-attachment 'v"
             "         (lambda () (id 1))))"
             "  (length (current-continuation-attachments)))",
             "0");
}

TEST_F(Attachments, MixedBranchBody) {
  // One branch of the body ends in a call, the other in a value; both must
  // balance the mark.
  const char *Prog =
      "(define (id x) x)"
      "(define (go b)"
      "  (cons (call-setting-continuation-attachment 'v"
      "          (lambda () (if b (id 'call) 'value)))"
      "        (current-continuation-attachments)))"
      "(list (go #t) (go #f))";
  expectEval(E, Prog, "((call) (value))");
}

TEST_F(Attachments, TailCallChainKeepsFrameAttachment) {
  // f is called non-tail (an argument of cons), so it gets a fresh frame:
  // its attachment stacks on the caller's. g is tail-called from f and
  // shares f's frame.
  expectEval(E,
             "(define (g) (current-continuation-attachments))"
             "(define (f) (call-setting-continuation-attachment 'from-f"
             "              (lambda () (g))))"
             "(call-setting-continuation-attachment 'caller"
             "  (lambda () (cons 'r (f))))",
             "(r from-f caller)");
  // In tail position the set replaces the frame's attachment instead.
  expectEval(E,
             "(define (g2) (current-continuation-attachments))"
             "(define (f2) (call-setting-continuation-attachment 'from-f"
             "               (lambda () (g2))))"
             "(call-setting-continuation-attachment 'caller"
             "  (lambda () (f2)))",
             "(from-f)");
}

TEST_F(Attachments, DeepRecursionWithAttachments) {
  // Every level sets an attachment around a non-tail call; the chain
  // reflects every live frame.
  expectEval(E,
             "(define (deep n)"
             "  (if (zero? n)"
             "      (length (current-continuation-attachments))"
             "      (car (list (call-setting-continuation-attachment n"
             "                   (lambda () (deep (- n 1))))))))"
             "(deep 1000)",
             "1000");
}

TEST_F(Attachments, AttachmentsSurviveCapture) {
  // Capturing and reapplying a continuation preserves the attachments of
  // the captured frames (paper section 3).
  expectEval(E,
             "(let ([saved (box #f)])"
             "  (let ([r (call-setting-continuation-attachment 'att"
             "             (lambda ()"
             "               (cons (call/cc (lambda (k) (set-box! saved k) 'first))"
             "                     (current-continuation-attachments))))])"
             "    (if (eq? (car r) 'first)"
             "        ((unbox saved) 'second)"
             "        r)))",
             "(second att)");
}

TEST_F(Attachments, NestedNonTailGetSeesOwnFrameMark) {
  // A get in the tail of a non-tail set's body shares the conceptual
  // frame, so the compiler can wire it to the pending mark statically.
  expectEval(E,
             "(+ 0 (call-setting-continuation-attachment 7"
             "       (lambda ()"
             "         (call-getting-continuation-attachment 'none"
             "           (lambda (a) a)))))",
             "7");
}

TEST_F(Attachments, NestedNonTailConsumeBalances) {
  // Consume inside a non-tail set's body removes the pending mark; the
  // epilogue must not pop again.
  expectEval(E,
             "(cons (call-setting-continuation-attachment 'v"
             "        (lambda ()"
             "          (call-consuming-continuation-attachment 'none"
             "            (lambda (a)"
             "              (list a (current-continuation-attachments))))))"
             "      (current-continuation-attachments))",
             "((v ()))");
}

TEST_F(Attachments, NestedNonTailSetReplacesPending) {
  // A second set in the tail of the first's body replaces the pending
  // mark (MarksSetTop), and exactly one pop happens at the end.
  expectEval(E,
             "(cons (call-setting-continuation-attachment 'first"
             "        (lambda ()"
             "          (call-setting-continuation-attachment 'second"
             "            (lambda () (current-continuation-attachments)))))"
             "      (current-continuation-attachments))",
             "((second))");
}

TEST_F(Attachments, NonTailBranchesMixNestedOps) {
  // Branches that end in a nested set (taking over the pop), a call
  // (CallAttach pops), and a plain value (explicit pop) must all balance.
  const char *Prog =
      "(define (probe) (current-continuation-attachments))"
      "(define (go sel)"
      "  (cons (call-setting-continuation-attachment 'outer"
      "          (lambda ()"
      "            (cond"
      "              [(eq? sel 'nest)"
      "               (call-setting-continuation-attachment 'inner"
      "                 (lambda () (probe)))]"
      "              [(eq? sel 'call) (probe)]"
      "              [else 'value])))"
      "        (current-continuation-attachments)))"
      "(list (go 'nest) (go 'call) (go 'value))";
  expectEval(E, Prog, "(((inner)) ((outer)) (value))");
}

TEST_F(Attachments, ConsumeThenCallInNonTailBody) {
  // After a consume the state is Absent again, so the tail call in the
  // body must be a plain call (no CallAttach, nothing to pop).
  expectEval(E,
             "(define (probe2) (current-continuation-attachments))"
             "(cons 'r (call-setting-continuation-attachment 'gone"
             "           (lambda ()"
             "             (call-consuming-continuation-attachment 'none"
             "               (lambda (a) (probe2))))))",
             "(r)");
}

TEST_F(Attachments, LetAndBeginInsideNonTailBody) {
  expectEval(E,
             "(+ 100 (call-setting-continuation-attachment 5"
             "         (lambda ()"
             "           (let ([x (length (current-continuation-attachments))])"
             "             (begin"
             "               'ignored"
             "               (+ x (car (current-continuation-attachments))))))))",
             "106");
}

TEST_F(Attachments, GenericAndCompiledAgreeOnNesting) {
  // The same nested program through the compiled path and through
  // footnote 5's generic path (procedure argument not an immediate
  // lambda) must agree.
  const char *Compiled =
      "(cons (call-setting-continuation-attachment 'a"
      "        (lambda ()"
      "          (call-setting-continuation-attachment 'b"
      "            (lambda () (current-continuation-attachments)))))"
      "      (current-continuation-attachments))";
  const char *Generic =
      "(define (wrap v th) (call-setting-continuation-attachment v th))"
      "(cons (wrap 'a (lambda ()"
      "          (wrap 'b (lambda () (current-continuation-attachments)))))"
      "      (current-continuation-attachments))";
  SchemeEngine E2;
  std::string R1 = E2.evalToString(Compiled);
  std::string R2 = E2.evalToString(Generic);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(R1, "((b))");
}

// --- Compiler classification (paper 7.2) -------------------------------------

class Categories : public ::testing::Test {
protected:
  AttachPassStats statsFor(const std::string &Src) {
    Value Form = readOne(E, Src);
    std::string Err;
    E.compiler().compileToplevel(Form, &Err);
    EXPECT_TRUE(Err.empty()) << Err;
    return E.compiler().lastAttachStats();
  }
  SchemeEngine E;
};

TEST_F(Categories, TailPosition) {
  // Bodies must not fold to constants, or the 7.3 optimization removes the
  // attachment operation before the pass runs.
  AttachPassStats S = statsFor(
      "(lambda (g) (call-setting-continuation-attachment 'v"
      "              (lambda () (g))))");
  EXPECT_EQ(S.TailOps, 1);
  EXPECT_EQ(S.NonTailWithCallOps, 0);
  EXPECT_EQ(S.NonTailNoCallOps, 0);
}

TEST_F(Categories, NonTailNoCall) {
  AttachPassStats S = statsFor(
      "(lambda (x) (+ 1 (call-setting-continuation-attachment 'v"
      "                   (lambda () (+ 2 x)))))");
  EXPECT_EQ(S.TailOps, 0);
  EXPECT_EQ(S.NonTailNoCallOps, 1)
      << "a primitive application does not count as a tail call (7.2)";
}

TEST_F(Categories, NonTailWithCall) {
  AttachPassStats S = statsFor(
      "(lambda (f) (+ 1 (call-setting-continuation-attachment 'v"
      "                   (lambda () (f)))))");
  EXPECT_EQ(S.NonTailWithCallOps, 1);
}

TEST_F(Categories, PrimRecognitionDisabled) {
  // Under the "no prim" ablation, the primitive body counts as a call.
  EngineOptions Opts = EngineOptions::forVariant(EngineVariant::NoPrim);
  SchemeEngine E2(Opts);
  Value Form = readOne(E2, "(lambda (x) (+ 1 (call-setting-continuation-attachment 'v"
                           "                   (lambda () (+ 2 x)))))");
  std::string Err;
  E2.compiler().compileToplevel(Form, &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  EXPECT_EQ(E2.compiler().lastAttachStats().NonTailWithCallOps, 1);
  EXPECT_EQ(E2.compiler().lastAttachStats().NonTailNoCallOps, 0);
}

TEST_F(Categories, WcmFusesConsumeSet) {
  AttachPassStats S = statsFor(
      "(lambda (g) (with-continuation-mark 'k 'v (g)))");
  EXPECT_EQ(S.FusedConsumeSet, 1)
      << "with-continuation-mark's consume-set sequence must fuse (7.2)";
}

// --- Figure 3: imitation equivalence -----------------------------------------

/// The paper's imitation of built-in attachment support (figure 3), with
/// the attachment-stack pop added on the return path. Requires captures of
/// the same continuation to be eq?, which the runtime guarantees by reusing
/// the frame's underflow record.
const char *ImitationLib = R"(
(define ks '(#f))
(define atts '())
(define (imitate-setting v thunk)
  (#%call/cc
   (lambda (k)
     (cond [(eq? k (car ks))
            (set! atts (cons v (cdr atts)))
            (thunk)]
           [else
            (let ([r (#%call/cc
                      (lambda (nested-k)
                        (set! ks (cons nested-k ks))
                        (set! atts (cons v atts))
                        (thunk)))])
              (set! ks (cdr ks))
              (set! atts (cdr atts))
              r)]))))
(define (imitate-getting dflt proc)
  (#%call/cc
   (lambda (k)
     (if (eq? k (car ks)) (proc (car atts)) (proc dflt)))))
(define (imitate-current) atts)
)";

/// Skeleton programs: @SET/@GET/@CUR are replaced by either the builtin or
/// imitation spellings, and the two must agree.
struct SkeletonCase {
  const char *Name;
  const char *Body;
};

class ImitationEquivalence : public ::testing::TestWithParam<SkeletonCase> {};

std::string substitute(std::string Body, bool Builtin) {
  auto ReplaceAll = [&](const std::string &From, const std::string &To) {
    size_t Pos = 0;
    while ((Pos = Body.find(From, Pos)) != std::string::npos) {
      Body.replace(Pos, From.size(), To);
      Pos += To.size();
    }
  };
  ReplaceAll("@SET", Builtin ? "call-setting-continuation-attachment"
                             : "imitate-setting");
  ReplaceAll("@GET", Builtin ? "call-getting-continuation-attachment"
                             : "imitate-getting");
  ReplaceAll("@CUR", Builtin ? "current-continuation-attachments"
                             : "imitate-current");
  return Body;
}

TEST_P(ImitationEquivalence, Agree) {
  const SkeletonCase &C = GetParam();
  SchemeEngine Builtin;
  std::string BuiltinResult = Builtin.evalToString(substitute(C.Body, true));
  ASSERT_TRUE(Builtin.ok()) << Builtin.lastError();

  SchemeEngine Imitate;
  Imitate.evalOrDie(ImitationLib);
  std::string ImitateResult = Imitate.evalToString(substitute(C.Body, false));
  ASSERT_TRUE(Imitate.ok()) << Imitate.lastError();

  EXPECT_EQ(BuiltinResult, ImitateResult) << "case: " << C.Name;
}

const SkeletonCase Skeletons[] = {
    {"tail-set-get",
     "(define (peek) (@GET 'none (lambda (a) a)))"
     "(@SET 'v (lambda () (peek)))"},
    {"nontail-get-fresh",
     "(define (peek) (@GET 'none (lambda (a) a)))"
     "(@SET 'v (lambda () (list (peek))))"},
    {"replace-on-frame",
     "(@SET 'a (lambda () (@SET 'b (lambda () (@CUR)))))"},
    {"nested-frames",
     "(@SET 'outer (lambda () (car (list (@SET 'inner (lambda () (@CUR)))))))"},
    {"loop-with-sets",
     "(define (loop i acc)"
     "  (if (zero? i)"
     "      acc"
     "      (loop (- i 1) (+ acc (car (list (@SET i (lambda () (length (@CUR))))))))))"
     "(loop 50 0)"},
    {"deep-recursion",
     "(define (deep n)"
     "  (if (zero? n)"
     "      (length (@CUR))"
     "      (car (list (@SET n (lambda () (deep (- n 1))))))))"
     "(deep 40)"},
    {"tail-chain",
     "(define (g) (@CUR))"
     "(define (f) (@SET 'from-f (lambda () (g))))"
     "(@SET 'caller (lambda () (cons 'r (f))))"},
};

INSTANTIATE_TEST_SUITE_P(Attachments, ImitationEquivalence,
                         ::testing::ValuesIn(Skeletons),
                         [](const ::testing::TestParamInfo<SkeletonCase> &I) {
                           std::string N = I.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(ImitationMechanism, SameContinuationCapturesAreEq) {
  // The property figure 3 depends on.
  SchemeEngine E;
  expectEval(E,
             "(define (grab) (#%call/cc (lambda (k) k)))"
             "(define (both) (let ([a (grab)] [b (grab)]) (eq? a b)))"
             "(both)",
             "#f"); // Different continuations: different records.
  // A tail-position capture of an already-reified continuation returns the
  // existing record: figure 3's nested-k pattern.
  expectEval(E,
             "(define k1 #f)"
             "(#%call/cc (lambda (nested-k)"
             "  (set! k1 nested-k)"
             "  ((lambda () (#%call/cc (lambda (k) (eq? k k1)))))))",
             "#t");
}

} // namespace
