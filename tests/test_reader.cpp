//===- tests/test_reader.cpp - S-expression reader tests -------*- C++ -*-===//

#include "reader/reader.h"
#include "runtime/heap.h"
#include "runtime/printer.h"

#include <gtest/gtest.h>

using namespace cmk;

namespace {

class ReaderTest : public ::testing::Test {
protected:
  /// Reads one datum and returns its written representation.
  std::string roundTrip(const std::string &Src) {
    Reader R(H, Src);
    ReadResult Res = R.read();
    if (!Res.isDatum())
      return "<" + (Res.isEof() ? std::string("eof") : Res.Error) + ">";
    return writeToString(Res.Datum);
  }

  Heap H;
};

TEST_F(ReaderTest, Fixnums) {
  EXPECT_EQ(roundTrip("42"), "42");
  EXPECT_EQ(roundTrip("-17"), "-17");
  EXPECT_EQ(roundTrip("+3"), "3");
  EXPECT_EQ(roundTrip("0"), "0");
}

TEST_F(ReaderTest, Flonums) {
  EXPECT_EQ(roundTrip("3.5"), "3.5");
  EXPECT_EQ(roundTrip("-0.25"), "-0.25");
  EXPECT_EQ(roundTrip("1e3"), "1000.0");
  EXPECT_EQ(roundTrip("2."), "2.0");
}

TEST_F(ReaderTest, SymbolsIntern) {
  Reader R(H, "abc abc");
  Value A = R.read().Datum;
  Value B = R.read().Datum;
  EXPECT_TRUE(A == B) << "symbols must be interned (eq?)";
}

TEST_F(ReaderTest, SymbolShapes) {
  EXPECT_EQ(roundTrip("set!"), "set!");
  EXPECT_EQ(roundTrip("+"), "+");
  EXPECT_EQ(roundTrip("-"), "-");
  EXPECT_EQ(roundTrip("->list"), "->list");
  EXPECT_EQ(roundTrip("a.b"), "a.b");
  EXPECT_EQ(roundTrip("#%internal"), "#%internal");
}

TEST_F(ReaderTest, Booleans) {
  EXPECT_EQ(roundTrip("#t"), "#t");
  EXPECT_EQ(roundTrip("#f"), "#f");
}

TEST_F(ReaderTest, Characters) {
  EXPECT_EQ(roundTrip("#\\a"), "#\\a");
  EXPECT_EQ(roundTrip("#\\space"), "#\\space");
  EXPECT_EQ(roundTrip("#\\newline"), "#\\newline");
}

TEST_F(ReaderTest, Strings) {
  EXPECT_EQ(roundTrip("\"hi\""), "\"hi\"");
  EXPECT_EQ(roundTrip("\"a\\nb\""), "\"a\\nb\"");
  EXPECT_EQ(roundTrip("\"q\\\"q\""), "\"q\\\"q\"");
}

TEST_F(ReaderTest, Lists) {
  EXPECT_EQ(roundTrip("(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(roundTrip("()"), "()");
  EXPECT_EQ(roundTrip("(1 . 2)"), "(1 . 2)");
  EXPECT_EQ(roundTrip("(1 2 . 3)"), "(1 2 . 3)");
  EXPECT_EQ(roundTrip("((a) (b c))"), "((a) (b c))");
  EXPECT_EQ(roundTrip("[a b]"), "(a b)");
}

TEST_F(ReaderTest, Vectors) {
  EXPECT_EQ(roundTrip("#(1 2 3)"), "#(1 2 3)");
  EXPECT_EQ(roundTrip("#()"), "#()");
}

TEST_F(ReaderTest, QuoteSugar) {
  EXPECT_EQ(roundTrip("'x"), "(quote x)");
  EXPECT_EQ(roundTrip("`x"), "(quasiquote x)");
  EXPECT_EQ(roundTrip(",x"), "(unquote x)");
  EXPECT_EQ(roundTrip(",@x"), "(unquote-splicing x)");
  EXPECT_EQ(roundTrip("''x"), "(quote (quote x))");
}

TEST_F(ReaderTest, Comments) {
  EXPECT_EQ(roundTrip("; hi\n42"), "42");
  EXPECT_EQ(roundTrip("#| block |# 42"), "42");
  EXPECT_EQ(roundTrip("#| nested #| deep |# |# 42"), "42");
  EXPECT_EQ(roundTrip("#;(skip me) 42"), "42");
}

TEST_F(ReaderTest, Errors) {
  EXPECT_EQ(roundTrip("(1 2"), "<unterminated list>");
  EXPECT_EQ(roundTrip(")"), "<unexpected close parenthesis>");
  EXPECT_EQ(roundTrip("\"abc"), "<unterminated string>");
  EXPECT_EQ(roundTrip("(1 . 2 3)"), "<expected close after dotted tail>");
}

TEST_F(ReaderTest, ReadAll) {
  std::string Err;
  std::vector<Value> All = readAllFromString(H, "1 2 3", &Err);
  EXPECT_TRUE(Err.empty());
  EXPECT_EQ(All.size(), 3u);
}

TEST_F(ReaderTest, MismatchedBrackets) {
  EXPECT_EQ(roundTrip("(a b]"), "<mismatched bracket>");
}

} // namespace
