//===- tests/test_heap_model.cpp - Model vs VM differential ----*- C++ -*-===//
///
/// \file
/// Validates the section 4 heap-frame reference model directly, then uses
/// it as an oracle: randomized programs over marks, attachments, and
/// continuations must produce identical results on the model and on the
/// optimized stack-based VM in every compiler variant.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "compiler/expand.h"
#include "model/heap_model.h"
#include "runtime/printer.h"
#include "support/rng.h"

using namespace cmk;

namespace {

/// Runs \p Src on the heap model, using the engine's expander (no
/// optimization passes).
std::string runModel(SchemeEngine &E, const std::string &Src, bool &OkOut,
                     uint64_t StepLimit = 50'000'000) {
  std::vector<Value> Forms = readAllFromString(E.heap(), Src);
  // Wrap multiple toplevel forms in a begin (the expander splices it).
  Value Program;
  {
    GCPauseScope Pause(E.heap());
    Value Acc = Value::nil();
    for (size_t I = Forms.size(); I > 0; --I)
      Acc = E.heap().makePair(Forms[I - 1], Acc);
    Program = E.heap().makePair(E.heap().intern("begin"), Acc);
  }
  GCRoot ProgramRoot(E.heap(), Program);

  AstContext Ctx;
  Expander Exp(E.heap(), E.vm().wellKnown(), Ctx, E.compiler());
  LambdaNode *Toplevel = Exp.expandToplevel(ProgramRoot.get());
  if (!Toplevel) {
    OkOut = false;
    return "expand error: " + Exp.error();
  }
  ModelResult R = runHeapModel(E.heap(), Toplevel, StepLimit);
  OkOut = R.Ok;
  return R.Ok ? writeToString(R.V) : R.Error;
}

class HeapModelTest : public ::testing::Test {
protected:
  std::string model(const std::string &Src) {
    bool Ok = false;
    std::string R = runModel(E, Src, Ok);
    EXPECT_TRUE(Ok) << R << "\n  src: " << Src;
    return R;
  }

  void expectBoth(const std::string &Src, const std::string &Expected) {
    EXPECT_EQ(model(Src), Expected) << "model: " << Src;
    expectEval(E, Src, Expected);
  }

  SchemeEngine E;
};

TEST_F(HeapModelTest, Basics) {
  expectBoth("(+ 1 2)", "3");
  expectBoth("((lambda (x y) (cons x y)) 1 2)", "(1 . 2)");
  expectBoth("(let ([x 1]) (let ([y 2]) (+ x y)))", "3");
  expectBoth("(if (zero? 0) 'a 'b)", "a");
  expectBoth("(define (f n) (if (zero? n) 0 (+ n (f (- n 1))))) (f 100)",
             "5050");
  expectBoth("(let ([b 0]) (set! b 9) b)", "9");
  expectBoth("((lambda (a . r) (cons a r)) 1 2 3)", "(1 2 3)");
}

TEST_F(HeapModelTest, AttachmentsDefinitionalSemantics) {
  expectBoth("(define (peek) (call-getting-continuation-attachment 'none"
             "                 (lambda (a) a)))"
             "(call-setting-continuation-attachment 'v (lambda () (peek)))",
             "v");
  expectBoth("(define (peek2) (call-getting-continuation-attachment 'none"
             "                  (lambda (a) a)))"
             "(call-setting-continuation-attachment 'v"
             "  (lambda () (list (peek2))))",
             "(none)");
  expectBoth("(call-setting-continuation-attachment 'a"
             "  (lambda ()"
             "    (call-setting-continuation-attachment 'b"
             "      (lambda () (current-continuation-attachments)))))",
             "(b)");
  expectBoth("(call-setting-continuation-attachment 'outer"
             "  (lambda ()"
             "    (car (list"
             "      (call-setting-continuation-attachment 'inner"
             "        (lambda () (current-continuation-attachments)))))))",
             "(inner outer)");
  expectBoth("(call-setting-continuation-attachment 'v"
             "  (lambda ()"
             "    (call-consuming-continuation-attachment 'none"
             "      (lambda (a)"
             "        (list a (current-continuation-attachments))))))",
             "(v ())");
}

TEST_F(HeapModelTest, MarksSemantics) {
  expectBoth("(with-continuation-mark 'k 1"
             "  (continuation-mark-set-first #f 'k 'none))",
             "1");
  expectBoth("(define (all) (continuation-mark-set->list"
             "               (current-continuation-marks) 'c))"
             "(with-continuation-mark 'c 'red"
             "  (car (list (with-continuation-mark 'c 'blue (all)))))",
             "(blue red)");
  expectBoth("(define (f) (with-continuation-mark 'k 2"
             "  (continuation-mark-set->list (current-continuation-marks) 'k)))"
             "(with-continuation-mark 'k 1 (f))",
             "(2)");
}

TEST_F(HeapModelTest, ContinuationsInTheModel) {
  expectBoth("(+ 1 (#%call/cc (lambda (k) (k 41))))", "42");
  expectBoth("(+ 1 (#%call/cc (lambda (k) (+ 1000 (k 41)))))", "42");
  expectBoth("(+ 1 (#%call/cc (lambda (k) 41)))", "42");
  // Marks survive capture and reapplication identically.
  expectBoth("(let ([saved (cons #f #f)])"
             "  (let ([r (with-continuation-mark 'att 'kept"
             "             (car (list"
             "               (cons (#%call/cc (lambda (k)"
             "                       (set-car! saved k) 'first))"
             "                     (continuation-mark-set-first #f 'att)))))])"
             "    (if (eq? (car r) 'first)"
             "        ((car saved) 'second)"
             "        r)))",
             "(second . kept)");
}

TEST_F(HeapModelTest, ModelStepLimitTrips) {
  bool Ok = true;
  std::string R = runModel(E, "(define (f) (f)) (f)", Ok, 100000);
  EXPECT_FALSE(Ok);
  EXPECT_NE(R.find("step limit"), std::string::npos);
}

// --- Differential fuzzing: model as the oracle ---------------------------------

/// Programs over the model-supported subset: attachments, wcm, first/list,
/// single-use escape continuations, pure list/arith helpers.
class ModelProgramGen {
public:
  explicit ModelProgramGen(uint64_t Seed) : R(Seed) {}

  std::string program() {
    Escapes = 0;
    return "(define (obs k) (continuation-mark-set->list"
           "                 (current-continuation-marks) k))"
           "(define (fst k) (continuation-mark-set-first #f k 'none))"
           "(list " +
           expr(4) + " " + expr(3) + ")";
  }

private:
  std::string num() { return std::to_string(R.nextBelow(40)); }
  std::string key() { return R.chance(1, 2) ? "'k1" : "'k2"; }

  std::string expr(int Depth) {
    if (Depth == 0)
      return leaf();
    switch (R.nextBelow(11)) {
    case 0:
      return "(with-continuation-mark " + key() + " " + num() + " " +
             expr(Depth - 1) + ")";
    case 1:
      return "(car (list (with-continuation-mark " + key() + " " + num() +
             " " + expr(Depth - 1) + ")))";
    case 2:
      return "(call-setting-continuation-attachment " + num() +
             " (lambda () " + expr(Depth - 1) + "))";
    case 3:
      return "(call-getting-continuation-attachment 'dflt (lambda (a) "
             "(list a " +
             expr(Depth - 1) + ")))";
    case 4:
      return "(call-consuming-continuation-attachment 'dflt (lambda (a) "
             "(cons a " +
             expr(Depth - 1) + ")))";
    case 5: {
      ++Escapes;
      std::string Esc = "esc" + std::to_string(Escapes);
      std::string Body = R.chance(1, 2)
                             ? "(" + Esc + " " + expr(Depth - 1) + ")"
                             : expr(Depth - 1);
      return "(#%call/cc (lambda (" + Esc + ") " + Body + "))";
    }
    case 6:
      return "(cons (fst " + key() + ") " + expr(Depth - 1) + ")";
    case 7:
      return "(obs " + key() + ")";
    case 8:
      return "(let ([x " + expr(Depth - 1) + "]) (list x (fst " + key() +
             ")))";
    case 9:
      return std::string("(if (even? ") + num() + ") " + expr(Depth - 1) +
             " " + expr(Depth - 1) + ")";
    default:
      return "((lambda (h) (h)) (lambda () " + expr(Depth - 1) + "))";
    }
  }

  std::string leaf() {
    switch (R.nextBelow(3)) {
    case 0:
      return num();
    case 1:
      return "(fst " + key() + ")";
    default:
      return "(current-continuation-attachments)";
    }
  }

  Rng R;
  int Escapes = 0;
};

class ModelDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelDifferential, ModelAgreesWithAllVariants) {
  ModelProgramGen Gen(GetParam() * 104729);
  for (int Round = 0; Round < 8; ++Round) {
    std::string Prog = Gen.program();

    SchemeEngine Oracle; // Shares the heap with the model run below.
    bool ModelOk = false;
    std::string Expected = runModel(Oracle, Prog, ModelOk);
    ASSERT_TRUE(ModelOk) << Expected << "\n" << Prog;

    for (EngineVariant V :
         {EngineVariant::Builtin, EngineVariant::NoOpt, EngineVariant::NoPrim,
          EngineVariant::No1cc}) {
      SchemeEngine E(V);
      std::string Got = E.evalToString(Prog);
      ASSERT_TRUE(E.ok()) << E.lastError() << "\n" << Prog;
      EXPECT_EQ(Got, Expected)
          << "VM diverges from the section 4 model on:\n"
          << Prog;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HeapModel, ModelDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

} // namespace
