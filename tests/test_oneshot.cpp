//===- tests/test_oneshot.cpp - One-shot continuations + GC stress -*- C++ -*-//
///
/// \file
/// call/1cc semantics (paper section 6 / Bruggeman et al.) and stress
/// tests for the interaction between continuation capture and garbage
/// collection (the collector promotes opportunistic one-shots and must
/// keep captured segments alive).
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

using namespace cmk;

namespace {

class OneShot : public ::testing::Test {
protected:
  SchemeEngine E;
};

TEST_F(OneShot, EscapeOnce) {
  expectEval(E, "(+ 1 (call/1cc (lambda (k) (k 41))))", "42");
  expectEval(E, "(+ 1 (call/1cc (lambda (k) 41)))", "42");
}

TEST_F(OneShot, Predicate) {
  // Non-tail captures, so fresh records are created (a tail capture at the
  // very bottom of a run reuses the full halt record).
  expectEval(E,
             "(car (list (#%call/1cc (lambda (k)"
             "             (one-shot-continuation? k)))))",
             "#t");
  expectEval(E,
             "(car (list (#%call/cc (lambda (k)"
             "             (one-shot-continuation? k)))))",
             "#f");
}

TEST_F(OneShot, SecondUseIsAnError) {
  expectError(E,
              "(define k1 (box #f))"
              "(list (call/1cc (lambda (k) (set-box! k1 k) 1)))"
              "((unbox k1) 2)" // First explicit use: ok.
              "((unbox k1) 3)", // Second use: error.
              "one-shot continuation used more than once");
}

TEST_F(OneShot, NormalReturnConsumesIt) {
  expectError(E,
              "(define k2 (box #f))"
              "(define (grab) (#%call/1cc (lambda (k) (set-box! k2 k) 1)))"
              "(list (grab))" // grab returns normally through the record.
              "((unbox k2) 9)",
              "one-shot continuation used more than once");
}

TEST_F(OneShot, CallCCPromotesToFull) {
  // Paper 6: "call/cc must also promote any one-shot continuations in the
  // tail of the continuation to full continuations". The capture must
  // happen while the one-shot record is still in the chain (before
  // returning through it); afterwards the one-shot is freely reusable.
  expectEval(E,
             "(let ([k1 (box #f)] [n (box 0)] [acc (box '())])"
             "  (define (inner)"
             "    (#%call/1cc (lambda (k)"
             "      (set-box! k1 k)"
             "      (car (list (#%call/cc (lambda (k2) k2))))" // Promotes.
             "      0)))"
             "  (let ([v (inner)])"
             "    (set-box! acc (cons v (unbox acc)))"
             "    (set-box! n (+ 1 (unbox n)))"
             "    (if (< (unbox n) 3)"
             "        ((unbox k1) (unbox n))" // Legal after promotion.
             "        (reverse (unbox acc)))))",
             "(0 1 2)");
}

TEST_F(OneShot, TimeMacroMeasures) {
  expectEval(E,
             "(define r (time (let loop ([i 0]) (if (= i 1000) 'fin (loop (+ i 1))))))"
             "(list (car r) (>= (cdr r) 0.0) (flonum? (cdr r)))",
             "(fin #t #t)");
}

// --- GC interaction stress ------------------------------------------------------

class GcStress : public ::testing::Test {
protected:
  SchemeEngine E;
};

TEST_F(GcStress, CapturedContinuationsSurviveCollection) {
  // Capture 50 continuations mid-recursion, collect twice, then reapply a
  // mid-stack one: its frames are only reachable through the record chain.
  // ks is newest-first, so index 25 was captured at n = 26: reapplying
  // with 2 recomputes 24 outer ones + 2 + 25 inner ones = 51.
  expectEval(E,
             "(let ([ks (box '())] [reapplied (box #f)])"
             "  (define (build n)"
             "    (if (zero? n)"
             "        0"
             "        (+ (call/cc (lambda (k)"
             "                      (set-box! ks (cons k (unbox ks))) 1))"
             "           (build (- n 1)))))"
             "  (let ([total (build 50)])"
             "    (collect-garbage) (collect-garbage)"
             "    (if (unbox reapplied)"
             "        total"
             "        (begin (set-box! reapplied #t)"
             "               ((list-ref (unbox ks) 25) 2)))))",
             "51");
}

TEST_F(GcStress, MarksSurviveCollectionUnderPressure) {
  expectEval(E,
             "(define (deep n)"
             "  (if (zero? n)"
             "      (begin"
             "        (collect-garbage)"
             "        (continuation-mark-set->list (current-continuation-marks) 'm))"
             "      (car (list"
             "        (with-continuation-mark 'm n"
             "          (begin"
             "            (make-vector 1000 n)" // Allocation pressure.
             "            (deep (- n 1))))))))"
             "(length (deep 300))",
             "300");
  EXPECT_GE(E.vm().heap().stats().Collections, 1u);
}

TEST_F(GcStress, PromotionDuringGCDisablesFusionSafely) {
  // Force collections between reify and return: the records get promoted
  // (paper 6) and returns must fall back to copying, with identical
  // semantics.
  expectEval(E,
             "(define (f i)"
             "  (call-setting-continuation-attachment i"
             "    (lambda ()"
             "      (when (zero? (modulo i 50)) (collect-garbage))"
             "      (car (current-continuation-attachments)))))"
             "(let loop ([i 0] [acc 0])"
             "  (if (= i 300) acc (loop (+ i 1) (+ acc (f i)))))",
             "44850");
  EXPECT_GT(E.vm().heap().stats().OneShotPromotions, 0u);
  EXPECT_GT(E.vm().stats().UnderflowCopies, 0u);
}

TEST_F(GcStress, SegmentChurnWithCapture) {
  // Deep recursion (multiple segments) + capture + escape, repeatedly,
  // with collections in between.
  expectEval(E,
             "(define (dig n esc)"
             "  (if (zero? n) (esc 'hit) (+ 1 (dig (- n 1) esc))))"
             "(let loop ([r 0] [acc '()])"
             "  (if (= r 10)"
             "      acc"
             "      (begin"
             "        (collect-garbage)"
             "        (loop (+ r 1)"
             "              (cons (call/cc (lambda (k) (dig 30000 k))) acc)))))",
             "(hit hit hit hit hit hit hit hit hit hit)");
}

} // namespace
