//===- tests/test_pool.cpp - Concurrent multi-engine serving pool ---------===//
//
// EnginePool behavior: result correctness against serial execution,
// worker isolation of marks/parameters, resource-limit trips on one job
// not poisoning siblings, clean shutdown with jobs in flight, and the
// raw concurrent-engines smoke the ThreadSanitizer CI leg runs (which
// caught the shared procedure-name scratch buffer; see DESIGN.md §11).
//
//===----------------------------------------------------------------------===//

#include "support/pool.h"

#include "test_helpers.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace cmk;

namespace {

/// A small job vocabulary: self-contained expressions (no global state)
/// so serial and pooled evaluation must agree exactly.
std::vector<std::string> mixedJobs() {
  return {
      "(+ 1 2)",
      "(let loop ((i 100) (a 0)) (if (= i 0) a (loop (- i 1) (+ a i))))",
      "(with-continuation-mark 'k 7 (continuation-mark-set-first #f 'k))",
      "(let loop ((i 50) (a '())) (if (= i 0) (length a)"
      "  (loop (- i 1) (cons (with-continuation-mark 'm i"
      "    (continuation-mark-set-first #f 'm)) a))))",
      "(call/cc (lambda (k) (+ 1 (k 41))))",
      "(dynamic-wind (lambda () 'pre) (lambda () 'body) (lambda () 'post))",
      "(list (modulo 7.0 -2.0) (/ 1 0.0) (quotient -7 2))",
      "(apply + (list 1 2 3 4 5))",
      "(reverse '(a b c))",
      "(let ((v (make-vector 5 1))) (vector-set! v 2 9) (vector-ref v 2))",
  };
}

TEST(PoolTest, ResultsMatchSerialExecution) {
  std::vector<std::string> Jobs = mixedJobs();
  // Serial reference: one engine, in order.
  std::vector<std::string> Expected;
  {
    SchemeEngine Serial;
    for (const std::string &J : Jobs) {
      Expected.push_back(Serial.evalToString(J));
      ASSERT_TRUE(Serial.ok()) << Serial.lastError();
    }
  }
  PoolOptions O;
  O.Workers = 4;
  EnginePool Pool(O);
  // Several rounds so every worker sees several job kinds.
  std::vector<std::future<JobResult>> Futures;
  std::vector<std::string> Want;
  for (int Round = 0; Round < 5; ++Round)
    for (size_t I = 0; I < Jobs.size(); ++I) {
      Futures.push_back(Pool.submit(Jobs[I]));
      Want.push_back(Expected[I]);
    }
  for (size_t I = 0; I < Futures.size(); ++I) {
    JobResult R = Futures[I].get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, Want[I]);
  }
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.JobsCompleted, Futures.size());
  EXPECT_EQ(S.JobsFailed, 0u);
  EXPECT_EQ(S.JobsRejected, 0u);
}

TEST(PoolTest, WorkerIsolationOfMarksAndParameters) {
  PoolOptions O;
  O.Workers = 4;
  EnginePool Pool(O);
  // Every job binds the same mark key and a fresh parameter to its own
  // index; concurrent jobs on sibling workers must never observe each
  // other's bindings.
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 64; ++I) {
    std::string N = std::to_string(I);
    Futures.push_back(Pool.submit(
        "(let ((p (make-parameter 'unset)))"
        "  (parameterize ((p " + N + "))"
        "    (list (p)"
        "          (with-continuation-mark 'shared-key " + N +
        "            (continuation-mark-set-first #f 'shared-key)))))"));
  }
  for (int I = 0; I < 64; ++I) {
    JobResult R = Futures[I].get();
    std::string N = std::to_string(I);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, "(" + N + " " + N + ")");
  }
}

TEST(PoolTest, LimitTripOnOneJobDoesNotPoisonSiblings) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);

  EngineLimits Tight;
  Tight.TimeoutMs = 50; // Stuck-job eviction: trips at a VM safe point.
  std::future<JobResult> Hog = Pool.submit("(let loop () (loop))", Tight);

  EngineLimits Heap;
  Heap.HeapBytes = 4u << 20;
  std::future<JobResult> Eater = Pool.submit(
      "(let loop ((a '())) (loop (cons (make-vector 1024 0) a)))", Heap);

  std::vector<std::future<JobResult>> Good;
  for (int I = 0; I < 20; ++I)
    Good.push_back(Pool.submit("(* 6 7)"));

  JobResult HogR = Hog.get();
  EXPECT_FALSE(HogR.Ok);
  EXPECT_EQ(HogR.Kind, ErrorKind::Timeout);

  JobResult EaterR = Eater.get();
  EXPECT_FALSE(EaterR.Ok);
  EXPECT_EQ(EaterR.Kind, ErrorKind::HeapLimit);

  for (auto &F : Good) {
    JobResult R = F.get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, "42");
  }

  // The workers that absorbed the trips keep serving correctly.
  for (int I = 0; I < 8; ++I) {
    JobResult R = Pool.submit("(+ 40 2)").get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, "42");
  }
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.JobsTripped, 2u);
  EXPECT_GE(S.Engines.LimitTimeoutTrips, 1u);
  EXPECT_GE(S.Engines.LimitHeapTrips, 1u);
}

TEST(PoolTest, DrainShutdownFinishesQueuedJobs) {
  std::vector<std::future<JobResult>> Futures;
  {
    PoolOptions O;
    O.Workers = 2;
    EnginePool Pool(O);
    for (int I = 0; I < 12; ++I)
      Futures.push_back(Pool.submit("(begin (sleep-ms 5) " +
                                    std::to_string(I) + ")"));
    Pool.shutdown(/*Drain=*/true);
  } // Destructor after shutdown: must be a no-op, not a double join.
  for (int I = 0; I < 12; ++I) {
    JobResult R = Futures[I].get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, std::to_string(I));
  }
}

TEST(PoolTest, ImmediateShutdownRejectsQueuedJobsButResolvesAllFutures) {
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 10; ++I)
    Futures.push_back(Pool.submit("(begin (sleep-ms 20) 'slow)"));
  Pool.shutdown(/*Drain=*/false);
  unsigned Completed = 0, Rejected = 0;
  for (auto &F : Futures) {
    JobResult R = F.get(); // Every future resolves: no broken promises.
    if (R.Ok) {
      ++Completed;
      EXPECT_EQ(R.Outcome, JobOutcome::Ok);
      EXPECT_EQ(R.Output, "slow");
    } else {
      ++Rejected;
      EXPECT_EQ(R.Outcome, JobOutcome::Rejected);
      EXPECT_NE(R.Error.find("shut down"), std::string::npos) << R.Error;
    }
  }
  EXPECT_EQ(Completed + Rejected, 10u);
  EXPECT_GE(Rejected, 1u); // A 1-worker pool cannot have run all ten.
  EXPECT_EQ(Pool.stats().JobsRejected, Rejected);
}

TEST(PoolTest, SubmitAfterShutdownIsRejected) {
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  Pool.shutdown();
  JobResult R = Pool.submit("(+ 1 2)").get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Outcome, JobOutcome::Rejected);
  EXPECT_NE(R.Error.find("shut down"), std::string::npos);
}

TEST(PoolTest, TrySubmitAppliesBackpressureWhenQueueIsFull) {
  PoolOptions O;
  O.Workers = 1;
  O.QueueCapacity = 1;
  EnginePool Pool(O);
  // Warm the worker first: engine construction (prelude load) happens
  // lazily on its first job and can outlast any fixed grace period on a
  // slow host (TSan stretches it past 100ms on one core).
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  std::future<JobResult> Hog = Pool.submit("(begin (sleep-ms 300) 'hog)");
  // Poll until the worker dequeues the hog and the lone queue slot
  // frees up; the hog then sleeps for 300ms, so the slot stays ours.
  std::future<JobResult> Queued;
  bool Accepted = false;
  for (int I = 0; I < 500 && !Accepted; ++I) {
    Accepted = Pool.trySubmit("'queued", EngineLimits(), Queued);
    if (!Accepted)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(Accepted);
  // 'queued now occupies the lone slot while the hog is still asleep,
  // so a third job bounces.
  std::future<JobResult> Overflow;
  EXPECT_FALSE(Pool.trySubmit("'overflow", EngineLimits(), Overflow));
  EXPECT_EQ(Hog.get().Output, "hog");
  EXPECT_EQ(Queued.get().Output, "queued");
}

TEST(PoolTest, InterruptAllEvictsRunningJobs) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Spinners;
  for (int I = 0; I < 2; ++I)
    Spinners.push_back(Pool.submit("(let loop () (loop))"));
  // interruptAll only reaches evaluations that are actually running: a
  // worker still constructing its engine (or not yet past the dequeue)
  // never sees a one-shot request, and a pending interrupt is cleared
  // when the next run re-arms governance. So do what a real operator
  // does with a stuck worker: keep asking until the jobs are gone.
  bool Evicted = false;
  for (int I = 0; I < 1200 && !Evicted; ++I) {
    Pool.interruptAll();
    Evicted = true;
    for (auto &F : Spinners)
      if (F.wait_for(std::chrono::milliseconds(50)) !=
          std::future_status::ready)
        Evicted = false;
  }
  ASSERT_TRUE(Evicted);
  for (auto &F : Spinners) {
    JobResult R = F.get();
    EXPECT_FALSE(R.Ok);
    EXPECT_EQ(R.Kind, ErrorKind::Interrupt);
  }
  // And the engines are reusable afterwards.
  EXPECT_EQ(Pool.submit("(+ 1 1)").get().Output, "2");
}

TEST(PoolTest, AggregatedStatsCoverAllWorkers) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 16; ++I)
    Futures.push_back(Pool.submit("(call/cc (lambda (k) (k 42)))"));
  for (auto &F : Futures)
    EXPECT_EQ(F.get().Output, "42");
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.JobsSubmitted, 16u);
  EXPECT_EQ(S.JobsCompleted, 16u);
  // Cheap-tier counter: every job captured one continuation, and the
  // aggregate sums across both workers' engines.
  EXPECT_GE(S.Engines.ContinuationCaptures, 16u);
}

// --- Serving telemetry ----------------------------------------------------

TEST(PoolTest, TelemetryHistogramsCoverEveryRetiredJob) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 20; ++I)
    Futures.push_back(Pool.submit("(+ 1 " + std::to_string(I) + ")"));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  EXPECT_EQ(T.JobsOk, 20u);
  EXPECT_EQ(T.QueueWaitUs.count(), 20u);
  EXPECT_EQ(T.RunUs.count(), 20u);
  // Outcome counters partition the retired jobs.
  EXPECT_EQ(T.JobsOk + T.JobsError + T.TrippedHeap + T.TrippedStack +
                T.TrippedTimeout + T.TrippedInterrupt,
            20u);
  EXPECT_EQ(T.Stats.JobsCompleted, 20u);
}

TEST(PoolTest, QueueWaitP99GrowsUnderBackpressure) {
  // One worker, a burst of jobs that each run for a measurable time: job
  // N queues behind N-1 full runs, so the queue-wait p99 (the last job's
  // wait) must exceed the median run time by a wide margin. This is the
  // signal an operator alerts on: run latency flat, queue wait climbing.
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  const std::string Slow =
      "(let loop ((i 400000) (a 0)) (if (= i 0) a (loop (- i 1) (+ a 1))))";
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 8; ++I)
    Futures.push_back(Pool.submit(Slow));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  ASSERT_EQ(T.RunUs.count(), 8u);
  EXPECT_GT(T.RunUs.percentile(50), 0u);
  EXPECT_GT(T.QueueWaitUs.percentile(99), T.RunUs.percentile(50));
  // The head-of-line job never waited; the tail did: the wait
  // distribution must actually spread.
  EXPECT_GT(T.QueueWaitUs.percentile(99), T.QueueWaitUs.percentile(10));
}

TEST(PoolTest, MetricsExportBothFormats) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 10; ++I)
    Futures.push_back(Pool.submit("(* 6 7)"));
  for (auto &F : Futures)
    EXPECT_EQ(F.get().Output, "42");
  Pool.shutdown();
  std::string Json = Pool.metricsJson();
  EXPECT_NE(Json.find("\"schema\": \"cmarks-metrics-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"component\": \"pool\""), std::string::npos);
  EXPECT_NE(Json.find("cmarks_pool_jobs_total"), std::string::npos);
  EXPECT_NE(Json.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(Json.find("cmarks_pool_job_run_seconds"), std::string::npos);
  std::string Prom = Pool.metricsText();
  EXPECT_NE(Prom.find("# TYPE cmarks_pool_job_run_seconds summary"),
            std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_workers 2"), std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_jobs_submitted_total 10"),
            std::string::npos);
  // The resilience families export unconditionally (zero-valued here) so
  // dashboards and metrics_report.py --require can count on them.
  EXPECT_NE(Prom.find("cmarks_pool_worker_restarts_total 0"),
            std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_breaker_opens_total 0"),
            std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_jobs_shed_total 0"), std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_jobs_expired_total 0"),
            std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_retries_total 0"), std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_live_workers"), std::string::npos);
}

TEST(PoolTest, JobSpansCarryIdsAcrossWorkersInMergedTrace) {
  PoolOptions O;
  O.Workers = 2;
  O.TraceCapacity = 4096;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 6; ++I)
    Futures.push_back(Pool.submit("(list " + std::to_string(I) + ")"));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  std::string Trace = Pool.traceJson();
  // One merged timeline: pool process name, one named thread per worker,
  // and every job's span labeled with its pool-assigned id.
  EXPECT_NE(Trace.find("\"name\":\"cmarks-pool\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"worker-0\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"worker-1\""), std::string::npos);
  for (int I = 1; I <= 6; ++I)
    EXPECT_NE(Trace.find("\"name\":\"job-" + std::to_string(I) + "\""),
              std::string::npos)
        << "missing span for job " << I;
  EXPECT_NE(Trace.find("\"cat\":\"job\""), std::string::npos);
}

TEST(PoolTest, PoolProfilerAggregatesAcrossWorkers) {
  PoolOptions O;
  O.Workers = 2;
  O.ProfileHz = 2000;
  EnginePool Pool(O);
  const std::string Hot =
      "(define (spin n a) (if (= n 0) a (spin (- n 1) (+ a 1))))"
      "(spin 2000000 0)";
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 8; ++I)
    Futures.push_back(Pool.submit(Hot));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  EXPECT_GT(T.ProfileSamples, 0u);
  std::string Collapsed = Pool.profileCollapsed();
  EXPECT_NE(Collapsed.find("spin"), std::string::npos) << Collapsed;
}

// --- Resilience: supervision, deadlines, retries, load shedding -----------

/// A program that burns through the PR 3 recovery slab: everything it
/// allocates stays live in a global (so no collection can rescue it),
/// and the heap-limit handler keeps allocating after the catchable trip
/// — the run escalates to the fatal (beyond-reserve) ResourceExhausted,
/// the engine-poisoning signal the pool supervises on.
const char *reserveBurner() {
  return "(define sink '())"
         "(with-handlers ([exn:heap-limit? (lambda (e)"
         "                   (let loop ()"
         "                     (set! sink (cons (make-vector 4096 0) sink))"
         "                     (loop)))])"
         "  (let loop ()"
         "    (set! sink (cons (make-vector 4096 0) sink))"
         "    (loop)))";
}

EngineLimits fatalLimits() {
  EngineLimits L;
  L.HeapBytes = 4u << 20;
  L.HeapHeadroomBytes = 256u << 10;
  return L;
}

TEST(PoolTest, FatalJobTriggersSupervisedWorkerRestart) {
  PoolOptions O;
  O.Workers = 1;
  O.TraceCapacity = 4096;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");

  JobResult R = Pool.submit(reserveBurner(), fatalLimits()).get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Outcome, JobOutcome::TrippedHeap);
  EXPECT_NE(R.Error.find("beyond reserved headroom"), std::string::npos)
      << R.Error;

  // The replacement engine serves correctly afterwards.
  JobResult After = Pool.submit("(* 6 7)").get();
  EXPECT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(After.Output, "42");

  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  EXPECT_EQ(T.WorkerRestarts, 1u);
  EXPECT_EQ(T.BreakerOpens, 0u);
  EXPECT_EQ(T.TrippedHeap, 1u);
  EXPECT_EQ(T.JobsOk, 2u);

  // The restart is observable in the merged timeline too: a
  // "worker-restart" span in the replacement incarnation's track.
  std::string Trace = Pool.traceJson();
  EXPECT_NE(Trace.find("\"name\":\"worker-restart\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"worker-0\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"worker-0/r1\""), std::string::npos);
  EXPECT_NE(Pool.metricsText().find("cmarks_pool_worker_restarts_total 1"),
            std::string::npos);
}

TEST(PoolTest, WorkerRestartDropsEngineSegmentPool) {
  // A worker engine that has parked recycled segments in its pool is
  // replaced after a fatal job: teardown must free the pooled chunks with
  // the engine (the ASan CI leg turns any strand into a leak report), and
  // the replacement starts with an empty pool yet recycles on its own.
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  // Seed the worker's pool: deep non-tail recursion churns segments.
  JobResult Churn = Pool.submit(
      "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1))))) (deep 20000)")
      .get();
  EXPECT_TRUE(Churn.Ok) << Churn.Error;

  JobResult Fatal = Pool.submit(reserveBurner(), fatalLimits()).get();
  EXPECT_FALSE(Fatal.Ok);

  // The replacement engine churns and serves correctly.
  JobResult After = Pool.submit(
      "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1))))) (deep 20000)")
      .get();
  EXPECT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(After.Output, "20000");
  Pool.shutdown();
  EXPECT_EQ(Pool.telemetry().WorkerRestarts, 1u);
}

TEST(PoolTest, CircuitBreakerRetiresWorkerAfterConsecutiveFatalFailures) {
  PoolOptions O;
  O.Workers = 1;
  O.BreakerThreshold = 2;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");

  JobResult R1 = Pool.submit(reserveBurner(), fatalLimits()).get();
  JobResult R2 = Pool.submit(reserveBurner(), fatalLimits()).get();
  EXPECT_EQ(R1.Outcome, JobOutcome::TrippedHeap);
  EXPECT_EQ(R2.Outcome, JobOutcome::TrippedHeap);

  // The second consecutive fatal opened the breaker: the lone worker
  // retired and the pool turned itself off rather than rebuild-looping.
  // Submits resolve as rejections, never hangs.
  JobResult R3 = Pool.submit("'after-breaker").get();
  EXPECT_EQ(R3.Outcome, JobOutcome::Rejected);

  PoolTelemetry T = Pool.telemetry();
  EXPECT_EQ(T.WorkerRestarts, 1u); // Fatal #1 rebuilt; #2 tripped the breaker.
  EXPECT_EQ(T.BreakerOpens, 1u);
  EXPECT_EQ(T.LiveWorkers, 0u);
  Pool.shutdown(); // Still idempotent on a self-stopped pool.
}

TEST(PoolTest, DeadlineExpiresJobStuckInQueue) {
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  std::future<JobResult> Hog = Pool.submit("(begin (sleep-ms 150) 'hog)");
  // FIFO: this job cannot be dequeued before the hog finishes, which is
  // long past its 30ms deadline — it must be shed from the queue unrun.
  std::future<JobResult> Doomed =
      Pool.submit("'never", SubmitOptions().deadlineMs(30));
  JobResult R = Doomed.get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Outcome, JobOutcome::Expired);
  EXPECT_EQ(R.Attempts, 0u);
  EXPECT_EQ(Hog.get().Output, "hog");
  PoolTelemetry T = Pool.telemetry();
  EXPECT_EQ(T.JobsExpired, 1u);
  EXPECT_NE(Pool.metricsText().find("cmarks_pool_jobs_expired_total 1"),
            std::string::npos);
}

TEST(PoolTest, DeadlineBoundsRunTimeViaTimeoutConversion) {
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  // No explicit TimeoutMs: the remaining deadline becomes the timeout at
  // dequeue, so even an infinite loop retires near the deadline.
  std::future<JobResult> F =
      Pool.submit("(let loop () (loop))", SubmitOptions().deadlineMs(150));
  JobResult R = F.get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Outcome, JobOutcome::TrippedTimeout);
  EXPECT_EQ(R.Kind, ErrorKind::Timeout);
}

TEST(PoolTest, RetryBackoffIsDeterministicAndCapped) {
  RetryPolicy P;
  P.BaseBackoffMs = 4;
  P.MaxBackoffMs = 32;
  P.Jitter = true;
  for (uint32_t A = 1; A <= 8; ++A) {
    uint64_t B1 = retryBackoffMs(P, 42, A);
    uint64_t B2 = retryBackoffMs(P, 42, A);
    EXPECT_EQ(B1, B2) << "attempt " << A; // Pure: replays see the same sleeps.
    uint64_t Raw = std::min<uint64_t>(32, 4ull << (A - 1));
    EXPECT_GE(B1, Raw / 2) << "attempt " << A;
    EXPECT_LE(B1, Raw) << "attempt " << A;
  }
  // Different job ids draw different jitter (de-synchronized thundering
  // herds), still deterministically.
  bool Differs = false;
  for (uint64_t J = 0; J < 8 && !Differs; ++J)
    Differs = retryBackoffMs(P, J, 3) != retryBackoffMs(P, J + 100, 3);
  EXPECT_TRUE(Differs);
  // Without jitter: pure capped exponential.
  P.Jitter = false;
  EXPECT_EQ(retryBackoffMs(P, 7, 1), 4u);
  EXPECT_EQ(retryBackoffMs(P, 7, 2), 8u);
  EXPECT_EQ(retryBackoffMs(P, 7, 4), 32u);
  EXPECT_EQ(retryBackoffMs(P, 7, 9), 32u);
}

TEST(PoolTest, RetryPolicyReRunsInterruptedJobs) {
  PoolOptions O;
  O.Workers = 1;
  O.DefaultRetry.MaxAttempts = 3;
  O.DefaultRetry.BaseBackoffMs = 1;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  // One interrupt fired mid-run evicts attempt 1 (transient); the retry
  // runs clean and succeeds. The interrupt-vs-job-start race is real, so
  // re-run the scenario until the interrupt actually lands mid-run.
  bool SawRetry = false;
  for (int Try = 0; Try < 40 && !SawRetry; ++Try) {
    std::future<JobResult> F = Pool.submit(
        "(let loop ((i 30000000)) (if (= i 0) 'done (loop (- i 1))))");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Pool.interruptAll();
    JobResult R = F.get();
    if (R.Ok && R.Attempts >= 2) {
      EXPECT_EQ(R.Output, "done");
      SawRetry = true;
    } else if (!R.Ok) {
      // Interrupts landed on every attempt: legal, try again.
      EXPECT_EQ(R.Outcome, JobOutcome::TrippedInterrupt);
    }
  }
  EXPECT_TRUE(SawRetry);
  EXPECT_GE(Pool.stats().RetriesAttempted, 1u);
}

TEST(PoolTest, AdmissionControlShedsWhenQueueWaitExceedsBudget) {
  PoolOptions O;
  O.Workers = 1;
  O.QueueWaitBudgetMs = 10;
  O.AdmissionWindow = 16;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  // Fill the admission window with long waits: job N queues behind N-1
  // 25ms runs, so nearly every sample is far over the 10ms budget.
  std::vector<std::future<JobResult>> Burst;
  for (int I = 0; I < 10; ++I)
    Burst.push_back(Pool.submit("(begin (sleep-ms 25) 'slow)"));
  for (auto &F : Burst)
    EXPECT_TRUE(F.get().Ok);
  // The window p99 is now ~225ms >> 10ms: the door is closed.
  JobResult R = Pool.submit("'too-late").get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Outcome, JobOutcome::Shed);
  EXPECT_EQ(R.Id, 0u); // Never entered the queue.
  EXPECT_NE(R.Error.find("admission control"), std::string::npos) << R.Error;
  // trySubmit sheds at the same door.
  std::future<JobResult> F2;
  EXPECT_FALSE(Pool.trySubmit("'also-late", EngineLimits(), F2));
  PoolTelemetry T = Pool.telemetry();
  EXPECT_GE(T.JobsShed, 2u);
  EXPECT_NE(Pool.metricsText().find("cmarks_pool_jobs_shed_total"),
            std::string::npos);
}

TEST(PoolTest, PressureTightensDefaultLimitsBeforeShedding) {
  PoolOptions O;
  O.Workers = 1;
  O.QueueWaitBudgetMs = 100000; // Effectively never shed...
  O.PressureQueueWaitMs = 10;   // ...but degrade early.
  O.EnablePressureLimits = true;
  O.PressureLimits.TimeoutMs = 40;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  std::vector<std::future<JobResult>> Burst;
  for (int I = 0; I < 10; ++I)
    Burst.push_back(Pool.submit("(begin (sleep-ms 25) 'slow)"));
  for (auto &F : Burst)
    EXPECT_TRUE(F.get().Ok);
  EXPECT_TRUE(Pool.pressureActive());
  // A default-limit job now inherits the tightened pressure budgets: the
  // spinner is evicted by the 40ms pressure timeout it never asked for.
  JobResult R = Pool.submit("(let loop () (loop))").get();
  EXPECT_EQ(R.Outcome, JobOutcome::TrippedTimeout);
  // Explicit per-job limits are never overridden.
  EngineLimits Generous;
  JobResult R2 = Pool.submit("'fine", Generous).get();
  EXPECT_TRUE(R2.Ok) << R2.Error;
  PoolTelemetry T = Pool.telemetry();
  EXPECT_GE(T.JobsDegraded, 1u);
  EXPECT_TRUE(T.PressureActive);
}

void expectBlockedSubmitterRejectedOnShutdown(bool Drain) {
  PoolOptions O;
  O.Workers = 1;
  O.QueueCapacity = 1;
  EnginePool Pool(O);
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  std::future<JobResult> Hog = Pool.submit("(begin (sleep-ms 600) 'hog)");
  // Wait for the worker to dequeue the hog, then occupy the lone slot.
  std::future<JobResult> Queued;
  bool Accepted = false;
  for (int I = 0; I < 500 && !Accepted; ++I) {
    Accepted = Pool.trySubmit("'queued", EngineLimits(), Queued);
    if (!Accepted)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(Accepted);
  // This submitter blocks on backpressure: queue full, hog asleep.
  std::future<JobResult> BlockedF;
  std::thread Submitter([&] { BlockedF = Pool.submit("'blocked"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // JobsSubmitted counts accepted jobs: 3 means 'blocked is still parked
  // in submit() (warm + hog + queued). On a pathologically slow host the
  // hog may already have finished and admitted it; then the scenario
  // didn't arm and the rejection assertion doesn't apply.
  bool WasBlocked = Pool.stats().JobsSubmitted == 3;
  Pool.shutdown(Drain);
  Submitter.join();
  JobResult R = BlockedF.get(); // Must resolve either way: never a hang.
  if (WasBlocked) {
    EXPECT_FALSE(R.Ok);
    EXPECT_EQ(R.Outcome, JobOutcome::Rejected);
  }
  EXPECT_EQ(Hog.get().Output, "hog"); // The running job always finishes.
  JobResult Q = Queued.get();
  if (Drain) {
    EXPECT_TRUE(Q.Ok) << Q.Error;
    EXPECT_EQ(Q.Output, "queued");
  } else {
    EXPECT_EQ(Q.Outcome, JobOutcome::Rejected);
  }
}

TEST(PoolTest, BlockedSubmitterIsWokenAndRejectedByDrainShutdown) {
  expectBlockedSubmitterRejectedOnShutdown(/*Drain=*/true);
}

TEST(PoolTest, BlockedSubmitterIsWokenAndRejectedByImmediateShutdown) {
  expectBlockedSubmitterRejectedOnShutdown(/*Drain=*/false);
}

TEST(PoolTest, InterruptAllRacingDrainShutdownResolvesEverything) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 4; ++I)
    Futures.push_back(Pool.submit("(let loop () (loop))"));
  for (int I = 0; I < 8; ++I)
    Futures.push_back(Pool.submit("(+ 1 " + std::to_string(I) + ")"));
  // Drain shutdown cannot finish while spinners hold the workers; keep
  // firing interrupts at it until the drain completes. This is exactly
  // the operator's "graceful stop of a wedged pool" sequence.
  std::atomic<bool> Done{false};
  std::thread Stopper([&] {
    Pool.shutdown(/*Drain=*/true);
    Done.store(true);
  });
  while (!Done.load()) {
    Pool.interruptAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Stopper.join();
  unsigned Ok = 0, Interrupted = 0, Rejected = 0;
  for (auto &F : Futures) {
    JobResult R = F.get(); // Every future resolves.
    switch (R.Outcome) {
    case JobOutcome::Ok:
      ++Ok;
      break;
    case JobOutcome::TrippedInterrupt:
      ++Interrupted;
      break;
    case JobOutcome::Rejected:
      ++Rejected;
      break;
    default:
      ADD_FAILURE() << "unexpected outcome " << jobOutcomeName(R.Outcome)
                    << ": " << R.Error;
    }
  }
  EXPECT_EQ(Ok + Interrupted + Rejected, Futures.size());
  EXPECT_GE(Interrupted, 2u); // The spinners only ever leave by eviction.
}

// --- Raw concurrent engines (the ThreadSanitizer smoke) -------------------
//
// Two-plus engines on two-plus threads with no pool in between: every
// mutable byte they touch must be engine-local. The arity-error jobs
// drive the procedure-name formatting path that used to share one
// function-local static buffer across all engines.

TEST(ConcurrentEnginesTest, ParallelEnginesShareNoMutableState) {
  constexpr int NThreads = 4;
  constexpr int NIters = 40;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NThreads);
  for (int T = 0; T < NThreads; ++T) {
    Threads.emplace_back([T, &Mismatches] {
      SchemeEngine E;
      std::string Name = "proc-" + std::to_string(T);
      E.evalOrDie("(define (" + Name + " x) x)");
      for (int I = 0; I < NIters; ++I) {
        // 1. Arity error: formats the procedure's name into the message.
        E.eval("(" + Name + ")");
        if (E.ok() || E.lastError().find(Name) == std::string::npos)
          ++Mismatches;
        // 2. Numeric edges from this PR's batch.
        if (E.evalToString("(modulo 7.0 -2.0)") != "-1.0")
          ++Mismatches;
        if (E.evalToString("(/ 1 0.0)") != "+inf.0")
          ++Mismatches;
        // 3. Marks and continuations exercise the per-engine hot paths.
        if (E.evalToString("(with-continuation-mark 'k " +
                           std::to_string(I) +
                           " (continuation-mark-set-first #f 'k))") !=
            std::to_string(I))
          ++Mismatches;
        if (E.evalToString("(call/cc (lambda (k) (k 'ok)))") != "ok")
          ++Mismatches;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

} // namespace
