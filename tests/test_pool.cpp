//===- tests/test_pool.cpp - Concurrent multi-engine serving pool ---------===//
//
// EnginePool behavior: result correctness against serial execution,
// worker isolation of marks/parameters, resource-limit trips on one job
// not poisoning siblings, clean shutdown with jobs in flight, and the
// raw concurrent-engines smoke the ThreadSanitizer CI leg runs (which
// caught the shared procedure-name scratch buffer; see DESIGN.md §11).
//
//===----------------------------------------------------------------------===//

#include "support/pool.h"

#include "test_helpers.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace cmk;

namespace {

/// A small job vocabulary: self-contained expressions (no global state)
/// so serial and pooled evaluation must agree exactly.
std::vector<std::string> mixedJobs() {
  return {
      "(+ 1 2)",
      "(let loop ((i 100) (a 0)) (if (= i 0) a (loop (- i 1) (+ a i))))",
      "(with-continuation-mark 'k 7 (continuation-mark-set-first #f 'k))",
      "(let loop ((i 50) (a '())) (if (= i 0) (length a)"
      "  (loop (- i 1) (cons (with-continuation-mark 'm i"
      "    (continuation-mark-set-first #f 'm)) a))))",
      "(call/cc (lambda (k) (+ 1 (k 41))))",
      "(dynamic-wind (lambda () 'pre) (lambda () 'body) (lambda () 'post))",
      "(list (modulo 7.0 -2.0) (/ 1 0.0) (quotient -7 2))",
      "(apply + (list 1 2 3 4 5))",
      "(reverse '(a b c))",
      "(let ((v (make-vector 5 1))) (vector-set! v 2 9) (vector-ref v 2))",
  };
}

TEST(PoolTest, ResultsMatchSerialExecution) {
  std::vector<std::string> Jobs = mixedJobs();
  // Serial reference: one engine, in order.
  std::vector<std::string> Expected;
  {
    SchemeEngine Serial;
    for (const std::string &J : Jobs) {
      Expected.push_back(Serial.evalToString(J));
      ASSERT_TRUE(Serial.ok()) << Serial.lastError();
    }
  }
  PoolOptions O;
  O.Workers = 4;
  EnginePool Pool(O);
  // Several rounds so every worker sees several job kinds.
  std::vector<std::future<JobResult>> Futures;
  std::vector<std::string> Want;
  for (int Round = 0; Round < 5; ++Round)
    for (size_t I = 0; I < Jobs.size(); ++I) {
      Futures.push_back(Pool.submit(Jobs[I]));
      Want.push_back(Expected[I]);
    }
  for (size_t I = 0; I < Futures.size(); ++I) {
    JobResult R = Futures[I].get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, Want[I]);
  }
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.JobsCompleted, Futures.size());
  EXPECT_EQ(S.JobsFailed, 0u);
  EXPECT_EQ(S.JobsRejected, 0u);
}

TEST(PoolTest, WorkerIsolationOfMarksAndParameters) {
  PoolOptions O;
  O.Workers = 4;
  EnginePool Pool(O);
  // Every job binds the same mark key and a fresh parameter to its own
  // index; concurrent jobs on sibling workers must never observe each
  // other's bindings.
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 64; ++I) {
    std::string N = std::to_string(I);
    Futures.push_back(Pool.submit(
        "(let ((p (make-parameter 'unset)))"
        "  (parameterize ((p " + N + "))"
        "    (list (p)"
        "          (with-continuation-mark 'shared-key " + N +
        "            (continuation-mark-set-first #f 'shared-key)))))"));
  }
  for (int I = 0; I < 64; ++I) {
    JobResult R = Futures[I].get();
    std::string N = std::to_string(I);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, "(" + N + " " + N + ")");
  }
}

TEST(PoolTest, LimitTripOnOneJobDoesNotPoisonSiblings) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);

  EngineLimits Tight;
  Tight.TimeoutMs = 50; // Stuck-job eviction: trips at a VM safe point.
  std::future<JobResult> Hog = Pool.submit("(let loop () (loop))", Tight);

  EngineLimits Heap;
  Heap.HeapBytes = 4u << 20;
  std::future<JobResult> Eater = Pool.submit(
      "(let loop ((a '())) (loop (cons (make-vector 1024 0) a)))", Heap);

  std::vector<std::future<JobResult>> Good;
  for (int I = 0; I < 20; ++I)
    Good.push_back(Pool.submit("(* 6 7)"));

  JobResult HogR = Hog.get();
  EXPECT_FALSE(HogR.Ok);
  EXPECT_EQ(HogR.Kind, ErrorKind::Timeout);

  JobResult EaterR = Eater.get();
  EXPECT_FALSE(EaterR.Ok);
  EXPECT_EQ(EaterR.Kind, ErrorKind::HeapLimit);

  for (auto &F : Good) {
    JobResult R = F.get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, "42");
  }

  // The workers that absorbed the trips keep serving correctly.
  for (int I = 0; I < 8; ++I) {
    JobResult R = Pool.submit("(+ 40 2)").get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, "42");
  }
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.JobsTripped, 2u);
  EXPECT_GE(S.Engines.LimitTimeoutTrips, 1u);
  EXPECT_GE(S.Engines.LimitHeapTrips, 1u);
}

TEST(PoolTest, DrainShutdownFinishesQueuedJobs) {
  std::vector<std::future<JobResult>> Futures;
  {
    PoolOptions O;
    O.Workers = 2;
    EnginePool Pool(O);
    for (int I = 0; I < 12; ++I)
      Futures.push_back(Pool.submit("(begin (sleep-ms 5) " +
                                    std::to_string(I) + ")"));
    Pool.shutdown(/*Drain=*/true);
  } // Destructor after shutdown: must be a no-op, not a double join.
  for (int I = 0; I < 12; ++I) {
    JobResult R = Futures[I].get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, std::to_string(I));
  }
}

TEST(PoolTest, ImmediateShutdownRejectsQueuedJobsButResolvesAllFutures) {
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 10; ++I)
    Futures.push_back(Pool.submit("(begin (sleep-ms 20) 'slow)"));
  Pool.shutdown(/*Drain=*/false);
  unsigned Completed = 0, Rejected = 0;
  for (auto &F : Futures) {
    JobResult R = F.get(); // Every future resolves: no broken promises.
    if (R.Ok) {
      ++Completed;
      EXPECT_EQ(R.Output, "slow");
    } else {
      ++Rejected;
      EXPECT_NE(R.Error.find("shut down"), std::string::npos) << R.Error;
    }
  }
  EXPECT_EQ(Completed + Rejected, 10u);
  EXPECT_GE(Rejected, 1u); // A 1-worker pool cannot have run all ten.
  EXPECT_EQ(Pool.stats().JobsRejected, Rejected);
}

TEST(PoolTest, SubmitAfterShutdownIsRejected) {
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  Pool.shutdown();
  JobResult R = Pool.submit("(+ 1 2)").get();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("shut down"), std::string::npos);
}

TEST(PoolTest, TrySubmitAppliesBackpressureWhenQueueIsFull) {
  PoolOptions O;
  O.Workers = 1;
  O.QueueCapacity = 1;
  EnginePool Pool(O);
  // Warm the worker first: engine construction (prelude load) happens
  // lazily on its first job and can outlast any fixed grace period on a
  // slow host (TSan stretches it past 100ms on one core).
  EXPECT_EQ(Pool.submit("'warm").get().Output, "warm");
  std::future<JobResult> Hog = Pool.submit("(begin (sleep-ms 300) 'hog)");
  // Poll until the worker dequeues the hog and the lone queue slot
  // frees up; the hog then sleeps for 300ms, so the slot stays ours.
  std::future<JobResult> Queued;
  bool Accepted = false;
  for (int I = 0; I < 500 && !Accepted; ++I) {
    Accepted = Pool.trySubmit("'queued", EngineLimits(), Queued);
    if (!Accepted)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(Accepted);
  // 'queued now occupies the lone slot while the hog is still asleep,
  // so a third job bounces.
  std::future<JobResult> Overflow;
  EXPECT_FALSE(Pool.trySubmit("'overflow", EngineLimits(), Overflow));
  EXPECT_EQ(Hog.get().Output, "hog");
  EXPECT_EQ(Queued.get().Output, "queued");
}

TEST(PoolTest, InterruptAllEvictsRunningJobs) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Spinners;
  for (int I = 0; I < 2; ++I)
    Spinners.push_back(Pool.submit("(let loop () (loop))"));
  // interruptAll only reaches evaluations that are actually running: a
  // worker still constructing its engine (or not yet past the dequeue)
  // never sees a one-shot request, and a pending interrupt is cleared
  // when the next run re-arms governance. So do what a real operator
  // does with a stuck worker: keep asking until the jobs are gone.
  bool Evicted = false;
  for (int I = 0; I < 1200 && !Evicted; ++I) {
    Pool.interruptAll();
    Evicted = true;
    for (auto &F : Spinners)
      if (F.wait_for(std::chrono::milliseconds(50)) !=
          std::future_status::ready)
        Evicted = false;
  }
  ASSERT_TRUE(Evicted);
  for (auto &F : Spinners) {
    JobResult R = F.get();
    EXPECT_FALSE(R.Ok);
    EXPECT_EQ(R.Kind, ErrorKind::Interrupt);
  }
  // And the engines are reusable afterwards.
  EXPECT_EQ(Pool.submit("(+ 1 1)").get().Output, "2");
}

TEST(PoolTest, AggregatedStatsCoverAllWorkers) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 16; ++I)
    Futures.push_back(Pool.submit("(call/cc (lambda (k) (k 42)))"));
  for (auto &F : Futures)
    EXPECT_EQ(F.get().Output, "42");
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.JobsSubmitted, 16u);
  EXPECT_EQ(S.JobsCompleted, 16u);
  // Cheap-tier counter: every job captured one continuation, and the
  // aggregate sums across both workers' engines.
  EXPECT_GE(S.Engines.ContinuationCaptures, 16u);
}

// --- Serving telemetry ----------------------------------------------------

TEST(PoolTest, TelemetryHistogramsCoverEveryRetiredJob) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 20; ++I)
    Futures.push_back(Pool.submit("(+ 1 " + std::to_string(I) + ")"));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  EXPECT_EQ(T.JobsOk, 20u);
  EXPECT_EQ(T.QueueWaitUs.count(), 20u);
  EXPECT_EQ(T.RunUs.count(), 20u);
  // Outcome counters partition the retired jobs.
  EXPECT_EQ(T.JobsOk + T.JobsError + T.TrippedHeap + T.TrippedStack +
                T.TrippedTimeout + T.TrippedInterrupt,
            20u);
  EXPECT_EQ(T.Stats.JobsCompleted, 20u);
}

TEST(PoolTest, QueueWaitP99GrowsUnderBackpressure) {
  // One worker, a burst of jobs that each run for a measurable time: job
  // N queues behind N-1 full runs, so the queue-wait p99 (the last job's
  // wait) must exceed the median run time by a wide margin. This is the
  // signal an operator alerts on: run latency flat, queue wait climbing.
  PoolOptions O;
  O.Workers = 1;
  EnginePool Pool(O);
  const std::string Slow =
      "(let loop ((i 400000) (a 0)) (if (= i 0) a (loop (- i 1) (+ a 1))))";
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 8; ++I)
    Futures.push_back(Pool.submit(Slow));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  ASSERT_EQ(T.RunUs.count(), 8u);
  EXPECT_GT(T.RunUs.percentile(50), 0u);
  EXPECT_GT(T.QueueWaitUs.percentile(99), T.RunUs.percentile(50));
  // The head-of-line job never waited; the tail did: the wait
  // distribution must actually spread.
  EXPECT_GT(T.QueueWaitUs.percentile(99), T.QueueWaitUs.percentile(10));
}

TEST(PoolTest, MetricsExportBothFormats) {
  PoolOptions O;
  O.Workers = 2;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 10; ++I)
    Futures.push_back(Pool.submit("(* 6 7)"));
  for (auto &F : Futures)
    EXPECT_EQ(F.get().Output, "42");
  Pool.shutdown();
  std::string Json = Pool.metricsJson();
  EXPECT_NE(Json.find("\"schema\": \"cmarks-metrics-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"component\": \"pool\""), std::string::npos);
  EXPECT_NE(Json.find("cmarks_pool_jobs_total"), std::string::npos);
  EXPECT_NE(Json.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(Json.find("cmarks_pool_job_run_seconds"), std::string::npos);
  std::string Prom = Pool.metricsText();
  EXPECT_NE(Prom.find("# TYPE cmarks_pool_job_run_seconds summary"),
            std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_workers 2"), std::string::npos);
  EXPECT_NE(Prom.find("cmarks_pool_jobs_submitted_total 10"),
            std::string::npos);
}

TEST(PoolTest, JobSpansCarryIdsAcrossWorkersInMergedTrace) {
  PoolOptions O;
  O.Workers = 2;
  O.TraceCapacity = 4096;
  EnginePool Pool(O);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 6; ++I)
    Futures.push_back(Pool.submit("(list " + std::to_string(I) + ")"));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  std::string Trace = Pool.traceJson();
  // One merged timeline: pool process name, one named thread per worker,
  // and every job's span labeled with its pool-assigned id.
  EXPECT_NE(Trace.find("\"name\":\"cmarks-pool\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"worker-0\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"worker-1\""), std::string::npos);
  for (int I = 1; I <= 6; ++I)
    EXPECT_NE(Trace.find("\"name\":\"job-" + std::to_string(I) + "\""),
              std::string::npos)
        << "missing span for job " << I;
  EXPECT_NE(Trace.find("\"cat\":\"job\""), std::string::npos);
}

TEST(PoolTest, PoolProfilerAggregatesAcrossWorkers) {
  PoolOptions O;
  O.Workers = 2;
  O.ProfileHz = 2000;
  EnginePool Pool(O);
  const std::string Hot =
      "(define (spin n a) (if (= n 0) a (spin (- n 1) (+ a 1))))"
      "(spin 2000000 0)";
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I < 8; ++I)
    Futures.push_back(Pool.submit(Hot));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  Pool.shutdown();
  PoolTelemetry T = Pool.telemetry();
  EXPECT_GT(T.ProfileSamples, 0u);
  std::string Collapsed = Pool.profileCollapsed();
  EXPECT_NE(Collapsed.find("spin"), std::string::npos) << Collapsed;
}

// --- Raw concurrent engines (the ThreadSanitizer smoke) -------------------
//
// Two-plus engines on two-plus threads with no pool in between: every
// mutable byte they touch must be engine-local. The arity-error jobs
// drive the procedure-name formatting path that used to share one
// function-local static buffer across all engines.

TEST(ConcurrentEnginesTest, ParallelEnginesShareNoMutableState) {
  constexpr int NThreads = 4;
  constexpr int NIters = 40;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NThreads);
  for (int T = 0; T < NThreads; ++T) {
    Threads.emplace_back([T, &Mismatches] {
      SchemeEngine E;
      std::string Name = "proc-" + std::to_string(T);
      E.evalOrDie("(define (" + Name + " x) x)");
      for (int I = 0; I < NIters; ++I) {
        // 1. Arity error: formats the procedure's name into the message.
        E.eval("(" + Name + ")");
        if (E.ok() || E.lastError().find(Name) == std::string::npos)
          ++Mismatches;
        // 2. Numeric edges from this PR's batch.
        if (E.evalToString("(modulo 7.0 -2.0)") != "-1.0")
          ++Mismatches;
        if (E.evalToString("(/ 1 0.0)") != "+inf.0")
          ++Mismatches;
        // 3. Marks and continuations exercise the per-engine hot paths.
        if (E.evalToString("(with-continuation-mark 'k " +
                           std::to_string(I) +
                           " (continuation-mark-set-first #f 'k))") !=
            std::to_string(I))
          ++Mismatches;
        if (E.evalToString("(call/cc (lambda (k) (k 'ok)))") != "ok")
          ++Mismatches;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

} // namespace
