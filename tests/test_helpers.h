//===- tests/test_helpers.h - Shared test utilities ------------*- C++ -*-===//

#ifndef CMARKS_TESTS_TEST_HELPERS_H
#define CMARKS_TESTS_TEST_HELPERS_H

#include "api/scheme.h"
#include "reader/reader.h"

#include <gtest/gtest.h>

#include <string>

namespace cmk {

/// Evaluates \p Src and expects the written result \p Expected.
inline void expectEval(SchemeEngine &E, const std::string &Src,
                       const std::string &Expected) {
  std::string Got = E.evalToString(Src);
  EXPECT_TRUE(E.ok()) << "eval failed: " << E.lastError() << "\n  src: "
                      << Src;
  EXPECT_EQ(Got, Expected) << "  src: " << Src;
}

/// Evaluates \p Src and expects a runtime or compile error whose message
/// contains \p Fragment.
inline void expectError(SchemeEngine &E, const std::string &Src,
                        const std::string &Fragment) {
  E.eval(Src);
  ASSERT_FALSE(E.ok()) << "expected an error from: " << Src;
  EXPECT_NE(E.lastError().find(Fragment), std::string::npos)
      << "error was: " << E.lastError();
}

/// Reads the first datum in \p Src (for compiler-level tests).
inline Value readOne(SchemeEngine &E, const std::string &Src) {
  std::vector<Value> Forms = readAllFromString(E.heap(), Src);
  EXPECT_EQ(Forms.size(), 1u);
  return Forms.empty() ? Value::undefined() : Forms[0];
}

} // namespace cmk

#endif // CMARKS_TESTS_TEST_HELPERS_H
