//===- tests/test_metrics.cpp - Metrics registry and histograms -----------===//
///
/// \file
/// Unit tests for support/metrics.h: LogHistogram bucket math (boundary
/// values, percentile accuracy against exact reference quantiles, the
/// empty and one-sample edges, merge algebra) and the MetricsRegistry
/// export formats (Prometheus text and cmarks-metrics-v1 JSON).
///
//===----------------------------------------------------------------------===//

#include "support/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

using namespace cmk;

namespace {

// --- Bucket math ------------------------------------------------------------

TEST(LogHistogramTest, SmallValuesAreExact) {
  // Values below SubBuckets land in their own bucket: both bounds equal
  // the value itself.
  for (uint64_t V = 0; V < LogHistogram::SubBuckets; ++V) {
    size_t Idx = LogHistogram::bucketIndex(V);
    EXPECT_EQ(LogHistogram::bucketLow(Idx), V);
    EXPECT_EQ(LogHistogram::bucketHigh(Idx), V);
  }
}

TEST(LogHistogramTest, BucketBoundsContainTheirValues) {
  // Every probed value must fall inside its bucket's [low, high] range,
  // across the whole 64-bit domain.
  std::vector<uint64_t> Probes;
  for (int Shift = 0; Shift < 63; ++Shift) {
    uint64_t Base = 1ull << Shift;
    Probes.push_back(Base - 1);
    Probes.push_back(Base);
    Probes.push_back(Base + 1);
    Probes.push_back(Base + Base / 2);
  }
  Probes.push_back(UINT64_MAX);
  for (uint64_t V : Probes) {
    size_t Idx = LogHistogram::bucketIndex(V);
    ASSERT_LT(Idx, LogHistogram::NumBuckets) << "value " << V;
    EXPECT_LE(LogHistogram::bucketLow(Idx), V) << "value " << V;
    EXPECT_GE(LogHistogram::bucketHigh(Idx), V) << "value " << V;
  }
}

TEST(LogHistogramTest, BucketIndexIsMonotone) {
  uint64_t Prev = 0;
  size_t PrevIdx = LogHistogram::bucketIndex(0);
  for (int Shift = 1; Shift < 62; ++Shift) {
    for (uint64_t V :
         {(1ull << Shift) - 1, 1ull << Shift, (1ull << Shift) + 1}) {
      size_t Idx = LogHistogram::bucketIndex(V);
      ASSERT_GE(V, Prev);
      EXPECT_GE(Idx, PrevIdx) << "index not monotone at " << V;
      Prev = V;
      PrevIdx = Idx;
    }
  }
}

TEST(LogHistogramTest, RelativeBucketErrorIsBounded) {
  // The sub-bucketing guarantees bucketHigh/bucketLow - 1 <= 1/16 for
  // values past the first octave.
  for (int Shift = 5; Shift < 62; ++Shift) {
    uint64_t V = (1ull << Shift) + (1ull << (Shift - 2));
    size_t Idx = LogHistogram::bucketIndex(V);
    double Low = static_cast<double>(LogHistogram::bucketLow(Idx));
    double High = static_cast<double>(LogHistogram::bucketHigh(Idx));
    EXPECT_LE((High - Low) / Low, 1.0 / LogHistogram::SubBuckets + 1e-9);
  }
}

// --- Recording and percentiles ----------------------------------------------

TEST(LogHistogramTest, EmptyHistogram) {
  LogHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
  EXPECT_EQ(H.percentile(99.9), 0u);
}

TEST(LogHistogramTest, OneSample) {
  LogHistogram H;
  H.record(12345);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.sum(), 12345u);
  EXPECT_EQ(H.min(), 12345u);
  EXPECT_EQ(H.max(), 12345u);
  // Every percentile of a single sample is that sample (the exact-max
  // clamp applies).
  EXPECT_EQ(H.percentile(0), H.percentile(100));
  EXPECT_EQ(H.percentile(50), 12345u);
  EXPECT_EQ(H.percentile(99.9), 12345u);
}

TEST(LogHistogramTest, PercentilesTrackExactQuantiles) {
  // Log-normal-ish latency distribution; the histogram's percentile must
  // stay within the documented 1/16 relative error of the exact
  // order-statistic (plus the bucket-rounding at the top).
  std::mt19937_64 Rng(42);
  std::lognormal_distribution<double> Dist(8.0, 1.5);
  LogHistogram H;
  std::vector<uint64_t> Exact;
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = static_cast<uint64_t>(Dist(Rng));
    H.record(V);
    Exact.push_back(V);
  }
  std::sort(Exact.begin(), Exact.end());
  for (double P : {50.0, 90.0, 99.0, 99.9}) {
    size_t Rank = static_cast<size_t>(
        std::ceil(P / 100.0 * static_cast<double>(Exact.size())));
    uint64_t Want = Exact[std::min(Exact.size() - 1, Rank ? Rank - 1 : 0)];
    uint64_t Got = H.percentile(P);
    double Rel = std::fabs(static_cast<double>(Got) -
                           static_cast<double>(Want)) /
                 static_cast<double>(Want);
    EXPECT_LE(Rel, 1.0 / LogHistogram::SubBuckets + 1e-9)
        << "p" << P << ": got " << Got << " want " << Want;
  }
  // The extreme percentile clamps to the exact maximum.
  EXPECT_EQ(H.percentile(100), Exact.back());
}

TEST(LogHistogramTest, MinMaxAreExact) {
  LogHistogram H;
  H.record(999);
  H.record(3);
  H.record(77777);
  EXPECT_EQ(H.min(), 3u);
  EXPECT_EQ(H.max(), 77777u);
}

// --- Merge algebra ----------------------------------------------------------

LogHistogram fromValues(const std::vector<uint64_t> &Vs) {
  LogHistogram H;
  for (uint64_t V : Vs)
    H.record(V);
  return H;
}

void expectSame(const LogHistogram &A, const LogHistogram &B) {
  EXPECT_EQ(A.count(), B.count());
  EXPECT_EQ(A.sum(), B.sum());
  EXPECT_EQ(A.min(), B.min());
  EXPECT_EQ(A.max(), B.max());
  for (double P : {50.0, 90.0, 99.0, 99.9})
    EXPECT_EQ(A.percentile(P), B.percentile(P)) << "p" << P;
}

TEST(LogHistogramTest, MergeEqualsRecordingEverything) {
  LogHistogram A = fromValues({1, 5, 900, 12, 44}),
               B = fromValues({100000, 2, 2, 7}),
               All = fromValues({1, 5, 900, 12, 44, 100000, 2, 2, 7});
  LogHistogram M = A;
  M.merge(B);
  expectSame(M, All);
}

TEST(LogHistogramTest, MergeIsCommutative) {
  LogHistogram A = fromValues({10, 20, 30}), B = fromValues({5, 500000});
  LogHistogram AB = A, BA = B;
  AB.merge(B);
  BA.merge(A);
  expectSame(AB, BA);
}

TEST(LogHistogramTest, MergeIsAssociative) {
  LogHistogram A = fromValues({1, 2, 3}), B = fromValues({1000, 2000}),
               C = fromValues({7, 7, 7, 900000});
  LogHistogram L = A; // (A + B) + C
  L.merge(B);
  L.merge(C);
  LogHistogram BC = B; // A + (B + C)
  BC.merge(C);
  LogHistogram R = A;
  R.merge(BC);
  expectSame(L, R);
}

TEST(LogHistogramTest, MergeWithEmptyIsIdentity) {
  LogHistogram A = fromValues({42, 42000});
  LogHistogram Empty;
  LogHistogram M = A;
  M.merge(Empty);
  expectSame(M, A);
  LogHistogram M2 = Empty;
  M2.merge(A);
  expectSame(M2, A);
}

TEST(LogHistogramTest, ResetClears) {
  LogHistogram H = fromValues({1, 2, 3});
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(99), 0u);
}

// --- Registry export formats ------------------------------------------------

TEST(MetricsRegistryTest, PrometheusTextShape) {
  MetricsRegistry R;
  R.counter("cmarks_test_jobs_total", "Jobs by outcome", {{"outcome", "ok"}},
            7);
  R.counter("cmarks_test_jobs_total", "Jobs by outcome",
            {{"outcome", "error"}}, 1);
  R.gauge("cmarks_test_depth", "Current depth", {}, 3);
  LogHistogram H = fromValues({1000, 2000, 4000});
  R.histogram("cmarks_test_wait_seconds", "Queue wait", {}, H, 1e-6);
  std::string Out = R.prometheusText();

  // HELP/TYPE headers appear once per metric name.
  EXPECT_NE(Out.find("# HELP cmarks_test_jobs_total Jobs by outcome\n"),
            std::string::npos);
  EXPECT_EQ(Out.find("# TYPE cmarks_test_jobs_total counter"),
            Out.rfind("# TYPE cmarks_test_jobs_total counter"));
  EXPECT_NE(Out.find("cmarks_test_jobs_total{outcome=\"ok\"} 7\n"),
            std::string::npos);
  EXPECT_NE(Out.find("cmarks_test_jobs_total{outcome=\"error\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Out.find("# TYPE cmarks_test_depth gauge"), std::string::npos);
  // Histograms export as summaries with the four quantiles + sum/count.
  EXPECT_NE(Out.find("# TYPE cmarks_test_wait_seconds summary"),
            std::string::npos);
  EXPECT_NE(Out.find("cmarks_test_wait_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(Out.find("cmarks_test_wait_seconds{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(Out.find("cmarks_test_wait_seconds_count 3\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonShapeAndScaling) {
  MetricsRegistry R;
  R.counter("cmarks_test_total", "A counter", {}, 41);
  LogHistogram H = fromValues({2000000}); // 2 s in µs.
  R.histogram("cmarks_test_run_seconds", "Run time", {}, H, 1e-6);
  std::string Out = R.json("engine");

  EXPECT_NE(Out.find("\"schema\": \"cmarks-metrics-v1\""), std::string::npos);
  EXPECT_NE(Out.find("\"component\": \"engine\""), std::string::npos);
  EXPECT_NE(Out.find("\"cmarks_test_total\""), std::string::npos);
  // Count is unscaled; sum/min/max/percentiles are scaled to seconds.
  EXPECT_NE(Out.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(Out.find("\"sum\":2000000"), std::string::npos);
  EXPECT_NE(Out.find("\"sum\":2"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry R;
  R.counter("cmarks_test_total", "Help", {{"k", "a\"b\\c\nd"}}, 1);
  std::string Prom = R.prometheusText();
  EXPECT_NE(Prom.find("k=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  std::string Json = R.json("engine");
  EXPECT_NE(Json.find("\"k\":\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

} // namespace
