//===- tests/test_smoke.cpp - End-to-end smoke tests -----------*- C++ -*-===//

#include "api/scheme.h"

#include <gtest/gtest.h>

using namespace cmk;

TEST(Smoke, Arithmetic) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString("(+ 1 2)"), "3");
  EXPECT_EQ(E.evalToString("(* 6 7)"), "42");
  EXPECT_EQ(E.evalToString("(- 10 4 3)"), "3");
}

TEST(Smoke, Closures) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString("(define (adder n) (lambda (x) (+ x n)))"
                           "((adder 5) 37)"),
            "42");
}

TEST(Smoke, TailLoop) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString("(let loop ([i 0] [acc 0])"
                           "  (if (= i 1000000) acc (loop (+ i 1) (+ acc 2))))"),
            "2000000");
}

TEST(Smoke, DeepRecursionOverflows) {
  SchemeEngine E;
  // Forces segment overflows and underflow fusion on return.
  EXPECT_EQ(E.evalToString("(define (count n) (if (zero? n) 0 (+ 1 (count (- n 1)))))"
                           "(count 200000)"),
            "200000");
}

TEST(Smoke, Marks) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString("(with-continuation-mark 'k 1"
                           "  (continuation-mark-set-first #f 'k))"),
            "1");
}

TEST(Smoke, CallCC) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString("(+ 1 (call/cc (lambda (k) (k 41))))"), "42");
}
