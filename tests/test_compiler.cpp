//===- tests/test_compiler.cpp - Expander, cp0, codegen --------*- C++ -*-===//

#include "test_helpers.h"

#include "compiler/compiler.h"

using namespace cmk;

namespace {

class CompilerTest : public ::testing::Test {
protected:
  std::string disasm(const std::string &Src) {
    Value Form = readOne(E, Src);
    std::string Err;
    Value Code = E.compiler().compileToplevel(Form, &Err);
    EXPECT_TRUE(Err.empty()) << Err;
    if (!Err.empty())
      return "";
    return Compiler::disassemble(Code);
  }

  bool contains(const std::string &Hay, const std::string &Needle) {
    return Hay.find(Needle) != std::string::npos;
  }

  SchemeEngine E;
};

TEST_F(CompilerTest, ConstantFolding) {
  std::string D = disasm("(+ 1 2)");
  EXPECT_TRUE(contains(D, "; 3")) << D;
  EXPECT_FALSE(contains(D, "add")) << D;
}

TEST_F(CompilerTest, IfFolding) {
  std::string D = disasm("(if (< 1 2) 'yes 'no)");
  EXPECT_TRUE(contains(D, "; yes")) << D;
  EXPECT_FALSE(contains(D, "jump-if-false")) << D;
}

TEST_F(CompilerTest, BetaReduction) {
  // ((lambda (x) (+ x 1)) 2) folds completely.
  std::string D = disasm("((lambda (x) (+ x 1)) 2)");
  EXPECT_FALSE(contains(D, "make-closure")) << D;
  EXPECT_TRUE(contains(D, "; 3")) << D;
}

TEST_F(CompilerTest, DeadLetRemoval) {
  std::string D = disasm("(let ([unused 5]) 'body)");
  EXPECT_TRUE(contains(D, "; body")) << D;
  EXPECT_FALSE(contains(D, "set-local")) << D;
}

TEST_F(CompilerTest, PrimitivesInline) {
  std::string D = disasm("(lambda (a b) (+ (car a) (cdr b)))");
  EXPECT_TRUE(contains(D, "car")) << D;
  EXPECT_TRUE(contains(D, "cdr")) << D;
  EXPECT_TRUE(contains(D, "add")) << D;
  EXPECT_FALSE(contains(D, "frame ")) << D; // No out-of-line calls.
}

TEST_F(CompilerTest, TailCallsUseTailCall) {
  std::string D = disasm("(define (f g) (g 1))");
  EXPECT_TRUE(contains(D, "tail-call")) << D;
}

TEST_F(CompilerTest, NonTailCallsUseCall) {
  std::string D = disasm("(define (f g) (+ 1 (g)))");
  EXPECT_TRUE(contains(D, "frame")) << D;
  EXPECT_TRUE(contains(D, " call")) << D;
}

TEST_F(CompilerTest, TailAttachUsesReify) {
  // The body must not be a constant, or the 7.3 high-level optimization
  // removes the whole mark (see Marks.HighLevelElision).
  std::string D = disasm(
      "(define (f g) (call-setting-continuation-attachment 'v"
      "                (lambda () (g))))");
  EXPECT_TRUE(contains(D, "reify")) << D;
  EXPECT_TRUE(contains(D, "attach-set")) << D;
}

TEST_F(CompilerTest, NonTailNoCallUsesPushPop) {
  std::string D = disasm(
      "(define (f x) (+ 1 (call-setting-continuation-attachment 'v"
      "                     (lambda () (+ 2 x)))))");
  EXPECT_TRUE(contains(D, "marks-push")) << D;
  EXPECT_TRUE(contains(D, "marks-pop")) << D;
  EXPECT_FALSE(contains(D, "reify")) << D;
  EXPECT_FALSE(contains(D, "call-attach")) << D;
}

TEST_F(CompilerTest, NonTailWithCallUsesCallAttach) {
  std::string D = disasm(
      "(define (f g) (+ 1 (call-setting-continuation-attachment 'v"
      "                     (lambda () (g)))))");
  EXPECT_TRUE(contains(D, "marks-push")) << D;
  EXPECT_TRUE(contains(D, "call-attach")) << D;
}

TEST_F(CompilerTest, WcmFusedReifiesOnce) {
  std::string D =
      disasm("(define (f) (with-continuation-mark 'k 'v (current-continuation-marks)))");
  // Exactly one reify for the consume+set pair (paper 7.2).
  size_t First = D.find("reify");
  ASSERT_NE(First, std::string::npos) << D;
  EXPECT_EQ(D.find("reify", First + 1), std::string::npos) << D;
}

TEST_F(CompilerTest, NoOptVariantEmitsGenericCalls) {
  SchemeEngine E2(EngineVariant::NoOpt);
  Value Form = readOne(
      E2, "(define (f) (call-setting-continuation-attachment 'v (lambda () 1)))");
  std::string Err;
  Value Code = E2.compiler().compileToplevel(Form, &Err);
  ASSERT_TRUE(Err.empty());
  std::string D = Compiler::disassemble(Code);
  EXPECT_FALSE(contains(D, "reify")) << D;
  EXPECT_FALSE(contains(D, "attach-set")) << D;
  EXPECT_TRUE(contains(D, "make-closure")) << D
      << "the generic path passes the body as a closure (footnote 5)";
}

TEST_F(CompilerTest, NonImmediateLambdaIsGenericCall) {
  // Footnote 5: only immediate lambdas are recognized.
  std::string D = disasm(
      "(define (f thunk) (call-setting-continuation-attachment 'v thunk))");
  EXPECT_FALSE(contains(D, "attach-set")) << D;
  EXPECT_TRUE(contains(D, "tail-call")) << D;
}

TEST_F(CompilerTest, MutatedVariablesAreBoxed) {
  std::string D = disasm("(define (f) (let ([x 1]) (set! x 2) x))");
  EXPECT_TRUE(contains(D, "box-local")) << D;
  EXPECT_TRUE(contains(D, "set-local-box")) << D;
}

TEST_F(CompilerTest, ClosuresCaptureFreeVars) {
  std::string D = disasm("(define (f x) (lambda (y) (+ x y)))");
  EXPECT_TRUE(contains(D, "make-closure")) << D;
  EXPECT_TRUE(contains(D, "push-free")) << D;
}

TEST_F(CompilerTest, CompileErrors) {
  SchemeEngine E2;
  E2.eval("(lambda)");
  EXPECT_FALSE(E2.ok());
  E2.eval("(if)");
  EXPECT_FALSE(E2.ok());
  E2.eval("(set! 3 4)");
  EXPECT_FALSE(E2.ok());
  E2.eval("(let ([x]) x)");
  EXPECT_FALSE(E2.ok());
  E2.eval("(define)");
  EXPECT_FALSE(E2.ok());
  // Recovery after compile errors.
  EXPECT_EQ(E2.evalToString("'fine"), "fine");
}

TEST_F(CompilerTest, ShadowingKeywords) {
  // A lexical binding shadows a core form keyword.
  SchemeEngine E2;
  expectEval(E2, "(let ([if (lambda (a b c) 'shadowed)]) (if 1 2 3))",
             "shadowed");
  expectEval(E2, "(let ([lambda (lambda args 'l)]) (lambda 1 2))", "l");
}

TEST_F(CompilerTest, UnmodVariantElidesObservableLets) {
  // The section 7.4 regression test at the compiler level: tail-position
  // (let ([x E]) x) disappears under the unmod compiler.
  SchemeEngine Unmod(EngineVariant::Unmod);
  Value Form = readOne(Unmod, "(define (g f) (let ([x (f)]) x))");
  std::string Err;
  Value Code = Unmod.compiler().compileToplevel(Form, &Err);
  ASSERT_TRUE(Err.empty());
  std::string D = Compiler::disassemble(Code);
  EXPECT_TRUE(contains(D, "tail-call")) << D << "\nunmod should tail-call f";

  SchemeEngine Mod;
  Form = readOne(Mod, "(define (g f) (let ([x (f)]) x))");
  Value Code2 = Mod.compiler().compileToplevel(Form, &Err);
  ASSERT_TRUE(Err.empty());
  std::string D2 = Compiler::disassemble(Code2);
  EXPECT_FALSE(contains(D2, "tail-call"))
      << D2 << "\nconstrained cp0 must keep the non-tail call (7.4)";
}

} // namespace
