//===- tests/test_limits.cpp - Resource governance -------------*- C++ -*-===//
//
// The EngineLimits layer (support/limits.h): heap byte budgets, stack
// segment budgets, wall-clock timeouts, and cross-thread interrupts must
// each surface as a *catchable* Scheme exception, dynamic-wind after
// thunks must run while the trip unwinds, and the same engine must be
// fully usable afterwards — no leaked segments, no stuck budgets.
//
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include <chrono>
#include <thread>

using namespace cmk;

namespace {

EngineOptions withLimits(uint64_t HeapBytes, uint32_t MaxSegs,
                         uint64_t TimeoutMs = 0) {
  EngineOptions Opts;
  Opts.VmCfg.Limits.HeapBytes = HeapBytes;
  Opts.VmCfg.Limits.MaxLiveSegments = MaxSegs;
  Opts.VmCfg.Limits.TimeoutMs = TimeoutMs;
  // Small fuel interval so trips are delivered promptly in tiny tests.
  Opts.VmCfg.Limits.FuelInterval = 256;
  return Opts;
}

// ------------------------------------------------------------ heap limit ----

TEST(HeapLimit, UnboundedAllocationRaisesCatchableExn) {
  SchemeEngine E(withLimits(24u << 20, 0));
  expectEval(E,
             "(with-handlers ([exn:heap-limit? (lambda (e) 'caught)])\n"
             "  (let loop ([acc '()])\n"
             "    (loop (cons (make-vector 512 0) acc))))",
             "caught");
  EXPECT_TRUE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::None);
}

TEST(HeapLimit, UncaughtTripReportsHeapLimitKind) {
  SchemeEngine E(withLimits(24u << 20, 0));
  E.eval("(let loop ([acc '()]) (loop (cons (make-vector 512 0) acc)))");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::HeapLimit);
  EXPECT_NE(E.lastError().find("heap limit"), std::string::npos)
      << E.lastError();
}

TEST(HeapLimit, EngineIsReusableAfterTrip) {
  SchemeEngine E(withLimits(24u << 20, 0));
  E.eval("(let loop ([acc '()]) (loop (cons (make-vector 512 0) acc)))");
  ASSERT_FALSE(E.ok());
  // The condemned allocation chain is garbage now; the budget must re-arm
  // and ordinary evaluation must succeed on the same engine.
  expectEval(E, "(let loop ([i 0] [acc 0])"
                "  (if (= i 1000) acc (loop (+ i 1) (+ acc i))))",
             "499500");
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::None);
}

TEST(HeapLimit, ExnCarriesMessageAndKind) {
  SchemeEngine E(withLimits(24u << 20, 0));
  expectEval(E,
             "(with-handlers ([exn:limit? (lambda (e)\n"
             "                              (list (exn:limit-kind e)\n"
             "                                    (string? (exn-message e))\n"
             "                                    (exn? e)))])\n"
             "  (let loop ([acc '()])\n"
             "    (loop (cons (make-vector 512 0) acc))))",
             "(heap-limit #t #t)");
}

TEST(HeapLimit, BudgetBelowCurrentGarbageStillTripsCatchably) {
  // A budget armed after the heap has accumulated garbage (a fresh
  // engine carries megabytes of prelude-load garbage) used to burn the
  // whole headroom slab during reading, while GC is paused: the slab
  // was anchored at the budget, usage was already far past it, and the
  // run escalated straight to the uncatchable reserve error with zero
  // delivered trips. The slab is now anchored at the usage observed at
  // grant time, so the trip is delivered and counted like any other.
  SchemeEngine E;
  E.limits().HeapBytes = 4u << 20; // Far below the prelude's garbage.
  VMStats Before = E.stats();
  E.eval("(let loop ([acc '()]) (loop (cons (make-vector 1024 0) acc)))");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::HeapLimit);
  EXPECT_EQ(E.lastError(), "heap limit exceeded");
  EXPECT_EQ(E.stats().delta(Before).LimitHeapTrips, 1u);
  // And catchably, on the same engine.
  expectEval(E,
             "(with-handlers ([exn:heap-limit? (lambda (e) 'caught)])\n"
             "  (let loop ([acc '()])\n"
             "    (loop (cons (make-vector 1024 0) acc))))",
             "caught");
}

// ----------------------------------------------------------- stack limit ----

TEST(StackLimit, DeepRecursionRaisesCatchableExn) {
  SchemeEngine E(withLimits(0, 16));
  expectEval(E,
             "(define (deep n) (if (= n 0) 0 (+ 1 (deep (- n 1)))))\n"
             "(with-handlers ([exn:stack-limit? (lambda (e) 'too-deep)])\n"
             "  (deep 10000000))",
             "too-deep");
}

TEST(StackLimit, SegmentsAreReclaimedAfterTrip) {
  SchemeEngine E(withLimits(0, 16));
  E.eval("(define (deep n) (if (= n 0) 0 (+ 1 (deep (- n 1)))))");
  E.eval("(deep 10000000)");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::StackLimit);
  // Everything below the toplevel is dead; a collection must bring the
  // live-segment count back under the budget (the reserve retires too).
  E.heap().collect();
  EXPECT_LT(E.heap().liveStackSegments(), 16u + 8u);
  EXPECT_FALSE(E.heap().segmentReserveActive());
  // And moderately deep — but legal — recursion still works.
  expectEval(E, "(deep 2000)", "2000");
}

TEST(StackLimit, DynamicWindAfterThunksRunDuringUnwind) {
  SchemeEngine E(withLimits(0, 16));
  expectEval(E,
             "(define after-ran #f)\n"
             "(define (deep n) (if (= n 0) 0 (+ 1 (deep (- n 1)))))\n"
             "(with-handlers ([exn:limit? (lambda (e) after-ran)])\n"
             "  (dynamic-wind\n"
             "    (lambda () #f)\n"
             "    (lambda () (deep 10000000))\n"
             "    (lambda () (set! after-ran #t))))",
             "#t");
}

TEST(StackLimit, CallccAcrossTripDoesNotResurrectCondemnedStack) {
  SchemeEngine E(withLimits(0, 16));
  // Capture a continuation *outside* the doomed recursion, trip the stack
  // limit, then re-enter the captured continuation. The re-entry must see
  // a healthy stack, not the condemned chain of segments.
  expectEval(E,
             "(define (deep n) (if (= n 0) 0 (+ 1 (deep (- n 1)))))\n"
             "(let ([k* #f] [hits 0])\n"
             "  (let ([r (+ 1 (call/cc (lambda (k) (set! k* k) 100)))])\n"
             "    (set! hits (+ hits 1))\n"
             "    (if (= hits 1)\n"
             "        (begin\n"
             "          (with-handlers ([exn:stack-limit? (lambda (e) 'tripped)])\n"
             "            (deep 10000000))\n"
             "          (k* 200))\n"
             "        (list r hits))))",
             "(201 2)");
}

// --------------------------------------------------------------- timeout ----

TEST(Timeout, InfiniteLoopTimesOutCatchably) {
  SchemeEngine E(withLimits(0, 0, /*TimeoutMs=*/200));
  auto Start = std::chrono::steady_clock::now();
  expectEval(E,
             "(with-handlers ([exn:timeout? (lambda (e) 'timed-out)])\n"
             "  (let loop () (loop)))",
             "timed-out");
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  EXPECT_GE(Elapsed, 150);
  EXPECT_GT(E.stats().LimitTimeoutTrips, 0u);
}

TEST(Timeout, UncaughtTimeoutReportsKindAndEngineSurvives) {
  SchemeEngine E(withLimits(0, 0, /*TimeoutMs=*/100));
  E.eval("(let loop () (loop))");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::Timeout);
  // The deadline re-arms per evaluation: a fast program still finishes.
  expectEval(E, "(+ 1 2)", "3");
}

TEST(Timeout, FastProgramsAreUnaffected) {
  SchemeEngine E(withLimits(0, 0, /*TimeoutMs=*/10000));
  expectEval(E, "(let loop ([i 0]) (if (= i 100000) i (loop (+ i 1))))",
             "100000");
}

// ------------------------------------------------------------- interrupt ----

TEST(Interrupt, CrossThreadRequestStopsTheLoop) {
  SchemeEngine E;
  std::thread Poker([&E] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    E.requestInterrupt();
  });
  expectEval(E,
             "(with-handlers ([exn:interrupt? (lambda (e) 'stopped)])\n"
             "  (let loop () (loop)))",
             "stopped");
  Poker.join();
  EXPECT_GT(E.stats().LimitInterrupts, 0u);
}

TEST(Interrupt, UncaughtInterruptReportsKind) {
  SchemeEngine E;
  std::thread Poker([&E] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    E.requestInterrupt();
  });
  E.eval("(let loop () (loop))");
  Poker.join();
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::Interrupt);
  expectEval(E, "'alive", "alive");
}

TEST(Interrupt, StaleRequestIsClearedAtNextEval) {
  SchemeEngine E;
  // A request that lands between evaluations must not poison the next one.
  E.requestInterrupt();
  expectEval(E, "(let loop ([i 0]) (if (= i 100000) 'done (loop (+ i 1))))",
             "done");
}

// ------------------------------------------------------- error reporting ----

TEST(ErrorContext, UncaughtErrorsCarryMarkStackSnapshot) {
  SchemeEngine E;
  E.eval("(define (inner) (car 5))\n"
         "(define (middle) (with-stack-frame 'middle (+ 1 (inner))))\n"
         "(define (outer) (with-stack-frame 'outer (+ 1 (middle))))\n"
         "(outer)");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::Runtime);
  EXPECT_NE(E.lastError().find("context:"), std::string::npos)
      << E.lastError();
  EXPECT_NE(E.lastError().find("middle"), std::string::npos) << E.lastError();
  EXPECT_NE(E.lastError().find("outer"), std::string::npos) << E.lastError();
}

TEST(ErrorContext, CaughtErrorsProduceNoSnapshotNoise) {
  SchemeEngine E;
  expectEval(E,
             "(with-handlers ([exn? (lambda (e) 'handled)]) (error \"boom\"))",
             "handled");
}

// ---------------------------------------------------------- housekeeping ----

TEST(Governance, SafePointPollsAreCounted) {
  EngineOptions Opts;
  Opts.VmCfg.Limits.FuelInterval = 128;
  SchemeEngine E(Opts);
  E.resetStats();
  expectEval(E, "(let loop ([i 0]) (if (= i 10000) 'done (loop (+ i 1))))",
             "done");
  EXPECT_GT(E.stats().SafePointPolls, 0u);
}

TEST(Governance, LimitsAreMutableBetweenEvals) {
  SchemeEngine E;
  expectEval(E, "(make-vector 100000 0) 'big-ok", "big-ok");
  E.limits().HeapBytes = 24u << 20;
  E.eval("(let loop ([acc '()]) (loop (cons (make-vector 512 0) acc)))");
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::HeapLimit);
  E.limits().HeapBytes = 0;
  expectEval(E, "(vector-length (make-vector 100000 0))", "100000");
}

TEST(Governance, TripCountersClassifyTrips) {
  SchemeEngine E(withLimits(24u << 20, 0));
  E.resetStats();
  E.eval("(let loop ([acc '()]) (loop (cons (make-vector 512 0) acc)))");
  EXPECT_GT(E.stats().LimitHeapTrips, 0u);
  EXPECT_EQ(E.stats().LimitStackTrips, 0u);
}

} // namespace
