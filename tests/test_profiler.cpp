//===- tests/test_profiler.cpp - Safe-point sampling profiler -------------===//
///
/// \file
/// Tests for support/profiler.h: deterministic single-sample capture via
/// a manual poke, mark-based attribution to named Scheme procedures,
/// collapsed-stack output shape, fold merging, and — the load-bearing
/// invariant — that sampling never perturbs VMStats (fuel, safe-point
/// polls, mark counters), so profiles can be taken in production and the
/// differential fuzzer can run with the sampler armed.
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"
#include "support/profiler.h"
#include "support/stats.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace cmk;

namespace {

const char *NamedLoop =
    "(define (hot-loop n acc)"
    "  (if (= n 0) acc (hot-loop (- n 1) (+ acc 1))))";

/// Test-only native that sets the sample signal from *inside* an
/// evaluation. A poke arriving while the engine is idle is deliberately
/// dropped by resetGovernance() (idle time must never show up in a
/// profile), so deterministic single-sample tests poke mid-eval: the bit
/// is consumed at the next safe point — the following Call opcode.
Value nativePoke(VM &M, Value *, uint32_t) {
  M.pokeSample();
  return Value::voidValue();
}

void definePoke(SchemeEngine &E) {
  E.vm().defineNative("test-poke!", nativePoke, 0, 0);
}

/// Fieldwise equality over the whole stats table, with the differing
/// counter named on failure.
void expectSameCounters(const VMStats &A, const VMStats &B) {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(A.*(Table[I].Field), B.*(Table[I].Field))
        << "counter " << Table[I].Name << " perturbed";
}

TEST(ProfilerTest, ManualPokeCapturesExactlyOneSample) {
  SchemeEngine E;
  E.evalOrDie(NamedLoop);
  definePoke(E);
  // 1 Hz: the sampler thread will not fire during the test; the only
  // sample signal is the mid-eval poke. It is consumed at the next safe
  // point — the Call into hot-loop, where the running code is still the
  // toplevel chunk (named "toplevel" by the expander).
  E.startProfiler(/*Hz=*/1);
  E.evalOrDie("(begin (test-poke!) (hot-loop 100000 0))");
  E.stopProfiler();
  EXPECT_EQ(E.profiler().sampleCount(), 1u);
  std::string Out = E.profileCollapsed();
  EXPECT_NE(Out.find("toplevel 1"), std::string::npos) << Out;
}

TEST(ProfilerTest, SamplesAttributeToNamedProcedures) {
  SchemeEngine E;
  E.evalOrDie(NamedLoop);
  E.startProfiler(/*Hz=*/2000);
  E.evalOrDie("(hot-loop 3000000 0)");
  E.stopProfiler();
  ASSERT_GT(E.profiler().sampleCount(), 0u);
  // Count named-leaf samples out of the fold (acceptance: >= 90%).
  std::map<std::string, uint64_t> Fold;
  E.profiler().foldInto(Fold);
  uint64_t Total = 0, Named = 0;
  for (const auto &[Stack, N] : Fold) {
    Total += N;
    std::string Leaf = Stack.substr(Stack.rfind(';') + 1);
    if (Leaf != "(anonymous)" && Leaf != "?")
      Named += N;
  }
  ASSERT_GT(Total, 0u);
  EXPECT_GE(static_cast<double>(Named), 0.9 * static_cast<double>(Total));
}

TEST(ProfilerTest, MarkStackFramesAppearInStacks) {
  SchemeEngine E;
  // with-stack-frame maintains the #%trace-key mark chain the profiler
  // renders; a sample inside the body must carry the frame labels,
  // root-first. The inner frame sits in non-tail position (inside a list
  // argument) so it nests under 'outer instead of rebinding it; the poke
  // is consumed at the Call into hot-loop with both marks live.
  E.evalOrDie(NamedLoop);
  definePoke(E);
  E.startProfiler(/*Hz=*/1);
  E.evalOrDie("(with-stack-frame 'outer"
              "  (car (list (with-stack-frame 'inner"
              "    (begin (test-poke!) (hot-loop 200000 0))))))");
  E.stopProfiler();
  ASSERT_EQ(E.profiler().sampleCount(), 1u);
  std::string Out = E.profileCollapsed();
  EXPECT_NE(Out.find("outer;inner;"), std::string::npos) << Out;
}

TEST(ProfilerTest, SamplingDoesNotPerturbCounters) {
  // The invariant everything else rests on: an identical workload run
  // with the sampler hammering away must retire with bit-identical
  // VMStats — including safe-point-polls and fuel-refills — because the
  // sample bit is consumed without polling.
  VMStats Baseline;
  {
    SchemeEngine E;
    E.evalOrDie(NamedLoop);
    E.resetStats();
    E.evalOrDie("(hot-loop 2000000 0)");
    Baseline = E.stats();
  }
  {
    SchemeEngine E;
    E.evalOrDie(NamedLoop);
    E.resetStats();
    E.startProfiler(/*Hz=*/5000);
    E.evalOrDie("(hot-loop 2000000 0)");
    E.stopProfiler();
    // The sampler must actually have fired for this test to mean
    // anything.
    EXPECT_GT(E.profiler().pokes(), 0u);
    expectSameCounters(Baseline, E.stats());
  }
}

TEST(ProfilerTest, DisabledProfilerAddsZeroPolls) {
  // With the profiler never started, the workload's safe-point poll count
  // must match a pristine engine's — the sampler machinery costs nothing
  // when off (the CI counter gate pins the same invariant on bench runs).
  VMStats A, B;
  {
    SchemeEngine E;
    E.evalOrDie(NamedLoop);
    E.resetStats();
    E.evalOrDie("(hot-loop 500000 0)");
    A = E.stats();
  }
  {
    SchemeEngine E;
    E.evalOrDie(NamedLoop);
    E.resetStats();
    E.evalOrDie("(hot-loop 500000 0)");
    B = E.stats();
  }
  expectSameCounters(A, B);
}

TEST(ProfilerTest, CollapsedFormatIsWellFormed) {
  SchemeEngine E;
  E.evalOrDie(NamedLoop);
  E.startProfiler(/*Hz=*/2000);
  E.evalOrDie("(hot-loop 2000000 0)");
  E.stopProfiler();
  std::string Out = E.profileCollapsed();
  ASSERT_FALSE(Out.empty());
  // Every line is "stack count" with exactly one space (frames escape
  // embedded spaces), count digits only.
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t Eol = Out.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos);
    std::string Line = Out.substr(Pos, Eol - Pos);
    size_t Space = Line.find(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_EQ(Line.find(' ', Space + 1), std::string::npos) << Line;
    for (size_t I = Space + 1; I < Line.size(); ++I)
      EXPECT_TRUE(Line[I] >= '0' && Line[I] <= '9') << Line;
    Pos = Eol + 1;
  }
}

TEST(ProfilerTest, FoldMergesAcrossProfilers) {
  std::map<std::string, uint64_t> Fold;
  for (int Round = 0; Round < 2; ++Round) {
    SchemeEngine E;
    E.evalOrDie(NamedLoop);
    definePoke(E);
    E.startProfiler(/*Hz=*/1);
    E.evalOrDie("(begin (test-poke!) (hot-loop 100000 0))");
    E.stopProfiler();
    E.profiler().foldInto(Fold);
  }
  uint64_t Total = 0;
  for (const auto &KV : Fold)
    Total += KV.second;
  EXPECT_EQ(Total, 2u);
  // Both engines sampled the same toplevel call site, so the fold merges
  // them into one stack with count 2.
  std::string Text = SamplingProfiler::collapsedText(Fold);
  EXPECT_NE(Text.find("toplevel 2"), std::string::npos) << Text;
}

TEST(ProfilerTest, RestartClearsSamples) {
  SchemeEngine E;
  E.evalOrDie(NamedLoop);
  definePoke(E);
  E.startProfiler(/*Hz=*/1);
  E.evalOrDie("(begin (test-poke!) (hot-loop 100000 0))");
  E.stopProfiler();
  ASSERT_EQ(E.profiler().sampleCount(), 1u);
  E.startProfiler(/*Hz=*/1);
  E.stopProfiler();
  EXPECT_EQ(E.profiler().sampleCount(), 0u);
}

TEST(ProfilerTest, SchemePrimitivesRoundTrip) {
  SchemeEngine E;
  E.evalOrDie(NamedLoop);
  std::string Out = E.evalToString(
      "(begin (profiler-start! 2000) (hot-loop 2000000 0)"
      " (let ((n (profiler-stop!))) (cons n (string? (profiler-dump)))))");
  ASSERT_TRUE(E.ok()) << E.lastError();
  // (n . #t) with n > 0.
  EXPECT_NE(Out.find(" . #t)"), std::string::npos) << Out;
  EXPECT_NE(Out[1], '0') << Out;
}

TEST(ProfilerTest, RuntimeMetricsPrimitivesExport) {
  SchemeEngine E;
  std::string Json = E.evalToString("(runtime-metrics)");
  ASSERT_TRUE(E.ok()) << E.lastError();
  EXPECT_NE(Json.find("cmarks-metrics-v1"), std::string::npos);
  EXPECT_NE(Json.find("cmarks_engine_events_total"), std::string::npos);
  std::string Text = E.evalToString("(runtime-metrics-text)");
  EXPECT_NE(Text.find("# TYPE cmarks_engine_events_total counter"),
            std::string::npos);
}

TEST(ProfilerTest, RuntimeStatsReportsTraceDrops) {
  SchemeEngine E;
  // A tiny ring (MinCapacity=8) overflows immediately under tracing.
  E.evalOrDie("(runtime-trace-start! 8)");
  E.evalOrDie("(let loop ((i 0)) (if (= i 50) i"
              "  (begin (#%trace-instant 'x) (loop (+ i 1)))))");
  E.evalOrDie("(runtime-trace-stop!)");
  std::string Dropped = E.evalToString(
      "(cdr (assq 'trace-events-dropped (runtime-stats)))");
  ASSERT_TRUE(E.ok()) << E.lastError();
  EXPECT_NE(Dropped, "0");
}

} // namespace
