//===- tests/test_peephole.cpp - Superinstruction fusion pass --*- C++ -*-===//
///
/// \file
/// The bytecode peephole pass (compiler/peephole.cpp): direct unit tests
/// on hand-assembled bytecode (fusion patterns, jump-target barriers,
/// offset remapping, mark-extent elision), disassembly of every fused
/// opcode, observational equivalence of fused vs. unfused code against
/// both an unfused engine and the section 4 heap-model oracle, and the
/// safe-point accounting the hoisted fuel checks rely on.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "compiler/bytecode.h"
#include "compiler/compiler.h"
#include "compiler/expand.h"
#include "model/heap_model.h"
#include "runtime/printer.h"

#include <chrono>
#include <thread>

using namespace cmk;

namespace {

// --------------------------------------------------- hand-assembly helpers --

void op0(std::vector<uint8_t> &B, Op O) { B.push_back(static_cast<uint8_t>(O)); }

void op16(std::vector<uint8_t> &B, Op O, uint16_t A) {
  op0(B, O);
  B.push_back(static_cast<uint8_t>(A & 0xff));
  B.push_back(static_cast<uint8_t>(A >> 8));
}

void opJump(std::vector<uint8_t> &B, Op O, uint32_t T) {
  op0(B, O);
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<uint8_t>((T >> (8 * I)) & 0xff));
}

Op opAt(const std::vector<uint8_t> &B, size_t Off) {
  return static_cast<Op>(B.at(Off));
}

// -------------------------------------------------------- fusion patterns ---

TEST(Peephole, FusesLocalLocalPair) {
  std::vector<uint8_t> In;
  op16(In, Op::PushLocal, 0);
  op16(In, Op::PushLocal, 1);
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.PairsFused, 1);
  ASSERT_EQ(Out.size(), 6u); // LocalLocal (5 bytes) + Halt.
  EXPECT_EQ(opAt(Out, 0), Op::LocalLocal);
  EXPECT_EQ(readU16(Out.data() + 1), 0);
  EXPECT_EQ(readU16(Out.data() + 3), 1);
  EXPECT_EQ(opAt(Out, 5), Op::Halt);
}

TEST(Peephole, FusesLocalPrim) {
  std::vector<uint8_t> In;
  op16(In, Op::PushLocal, 2);
  op0(In, Op::Car);
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.PairsFused, 1);
  ASSERT_EQ(Out.size(), 5u); // LocalPrim (4 bytes) + Halt.
  EXPECT_EQ(opAt(Out, 0), Op::LocalPrim);
  EXPECT_EQ(readU16(Out.data() + 1), 2);
  EXPECT_EQ(opAt(Out, 3), Op::Car);
}

TEST(Peephole, FusesAddLocalConstTriple) {
  std::vector<uint8_t> In;
  op16(In, Op::PushLocal, 0);
  op16(In, Op::PushConst, 7);
  op0(In, Op::Add);
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.PairsFused, 1);
  ASSERT_EQ(Out.size(), 6u); // AddLocalConst (5 bytes) + Halt.
  EXPECT_EQ(opAt(Out, 0), Op::AddLocalConst);
  EXPECT_EQ(readU16(Out.data() + 1), 0);
  EXPECT_EQ(readU16(Out.data() + 3), 7);
}

TEST(Peephole, JumpTargetBlocksFusion) {
  // The second PushLocal is a jump target: the pair must not fuse, or
  // the jump would land mid-superinstruction.
  std::vector<uint8_t> In;
  opJump(In, Op::Jump, 8);
  op16(In, Op::PushLocal, 0); // Offset 5.
  op16(In, Op::PushLocal, 1); // Offset 8: jump target.
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.PairsFused, 0);
  EXPECT_EQ(Out, In);
}

TEST(Peephole, RemapsJumpsPastFusedCode) {
  std::vector<uint8_t> In;
  op16(In, Op::PushLocal, 0);           // 0
  opJump(In, Op::JumpIfFalse, 14);      // 3, forward over the pair below.
  op16(In, Op::PushLocal, 0);           // 8
  op16(In, Op::PushLocal, 1);           // 11
  op0(In, Op::Halt);                    // 14

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.PairsFused, 1);
  ASSERT_EQ(Out.size(), 14u);
  EXPECT_EQ(opAt(Out, 3), Op::JumpIfFalse);
  EXPECT_EQ(readU32(Out.data() + 4), 13u); // Halt moved from 14 to 13.
  EXPECT_EQ(opAt(Out, 13), Op::Halt);
}

TEST(Peephole, ElidesCallFreeMarkExtent) {
  // MarksPush ... MarksPop with only pure ops in between: the pair
  // becomes the elided forms and the cons is gone (paper 7.2 (c)).
  std::vector<uint8_t> In;
  op16(In, Op::PushConst, 0);
  op0(In, Op::MarksPush);
  op16(In, Op::PushConst, 1);
  op0(In, Op::MarksPop);
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.MarkExtentsElided, 1);
  EXPECT_EQ(opAt(Out, 3), Op::MarksEnterElided);
  EXPECT_EQ(opAt(Out, 7), Op::MarksExitElided);
}

TEST(Peephole, NoElisionAcrossCall) {
  // A call inside the extent can observe the mark (capture, lookup, GC):
  // the extent must keep the real MarksPush/MarksPop.
  std::vector<uint8_t> In;
  op16(In, Op::PushConst, 0);
  op0(In, Op::MarksPush);
  op0(In, Op::Frame);
  op16(In, Op::PushGlobal, 1);
  op16(In, Op::Call, 0);
  op0(In, Op::MarksPop);
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.MarkExtentsElided, 0);
  EXPECT_EQ(opAt(Out, 3), Op::MarksPush);
}

TEST(Peephole, NoElisionAcrossAttachmentOps) {
  // Category (a)/(b) attachment instructions are never inside an elided
  // extent either; Reify stands in for the whole family here.
  std::vector<uint8_t> In;
  op16(In, Op::PushConst, 0);
  op0(In, Op::MarksPush);
  op0(In, Op::Reify);
  op0(In, Op::MarksPop);
  op0(In, Op::Halt);

  PeepholeStats S;
  std::vector<uint8_t> Out = runPeephole(In, &S);
  EXPECT_EQ(S.MarkExtentsElided, 0);
  EXPECT_EQ(opAt(Out, 3), Op::MarksPush);
}

// --------------------------------------------------- disassembly coverage ---

class PeepholeDisasm : public ::testing::Test {
protected:
  std::string disasm(const std::string &Src) {
    Value Form = readOne(E, Src);
    std::string Err;
    Value Code = E.compiler().compileToplevel(Form, &Err);
    EXPECT_TRUE(Err.empty()) << Err;
    return Err.empty() ? Compiler::disassemble(Code) : "";
  }

  bool contains(const std::string &Hay, const std::string &Needle) {
    return Hay.find(Needle) != std::string::npos;
  }

  SchemeEngine E;
};

TEST_F(PeepholeDisasm, AddLocalConst) {
  std::string D = disasm("(define (f n) (+ n 1))");
  EXPECT_TRUE(contains(D, "add-local-const")) << D;
}

TEST_F(PeepholeDisasm, SubLocalConst) {
  std::string D = disasm("(define (f n) (- n 1))");
  EXPECT_TRUE(contains(D, "sub-local-const")) << D;
}

TEST_F(PeepholeDisasm, LocalLocal) {
  std::string D = disasm("(define (f a b) (cons a b))");
  EXPECT_TRUE(contains(D, "push-local2")) << D;
}

TEST_F(PeepholeDisasm, LocalConst) {
  std::string D = disasm("(define (f v) (vector-ref v 3))");
  EXPECT_TRUE(contains(D, "push-local-const")) << D;
}

TEST_F(PeepholeDisasm, LocalPrimPrintsEmbeddedPrim) {
  std::string D = disasm("(define (f p) (car p))");
  EXPECT_TRUE(contains(D, "push-local-prim")) << D;
  EXPECT_TRUE(contains(D, "car")) << D;
}

TEST_F(PeepholeDisasm, ConstCall) {
  std::string D = disasm("(define (f) (+ 1 (g 2)))");
  EXPECT_TRUE(contains(D, "push-const-call")) << D;
}

TEST_F(PeepholeDisasm, JumpIfLocalNonzero) {
  std::string D = disasm("(define (f n) (if (zero? n) 1 2))");
  EXPECT_TRUE(contains(D, "jump-if-local-nonzero")) << D;
}

TEST_F(PeepholeDisasm, ElidedMarkExtent) {
  std::string D =
      disasm("(define (f x) (+ 1 (with-continuation-mark 'k x (+ x 1))))");
  EXPECT_TRUE(contains(D, "marks-push-elided")) << D;
  EXPECT_TRUE(contains(D, "marks-pop-elided")) << D;
}

// Fusion must never disturb category (a)/(b) attachment code (reify /
// call-attach); only the category (c) push/pop extents are rewritten.
TEST_F(PeepholeDisasm, TailAttachmentStillReifies) {
  std::string D = disasm("(define (f g) (call-setting-continuation-attachment"
                         " 'v (lambda () (g))))");
  EXPECT_TRUE(contains(D, "reify")) << D;
  EXPECT_FALSE(contains(D, "-elided")) << D;
}

TEST_F(PeepholeDisasm, NonTailWithCallStillUsesCallAttach) {
  std::string D =
      disasm("(define (f g) (+ 1 (call-setting-continuation-attachment"
             " 'v (lambda () (g)))))");
  EXPECT_TRUE(contains(D, "call-attach")) << D;
  EXPECT_FALSE(contains(D, "-elided")) << D;
}

// ------------------------------------------- fused vs unfused equivalence ---

class PeepholeEquiv : public ::testing::Test {
protected:
  PeepholeEquiv() : Fused(), Unfused(unfusedOpts()) {}

  static EngineOptions unfusedOpts() {
    EngineOptions Opts;
    Opts.CompilerOpts.EnablePeephole = false;
    return Opts;
  }

  // Both engines must agree on the value (or on the error message).
  void expectAgree(const std::string &Src) {
    std::string F = Fused.evalToString(Src);
    std::string U = Unfused.evalToString(Src);
    EXPECT_EQ(Fused.ok(), Unfused.ok()) << Src;
    if (Fused.ok())
      EXPECT_EQ(F, U) << Src;
    else
      EXPECT_EQ(Fused.lastError(), Unfused.lastError()) << Src;
  }

  SchemeEngine Fused;
  SchemeEngine Unfused;
};

TEST_F(PeepholeEquiv, ArithmeticLoops) {
  expectAgree("(let loop ([i 0] [acc 0])"
              "  (if (zero? i) acc (loop (- i 1) (+ acc i))))");
  expectAgree("(let loop ([i 2000] [acc 0])"
              "  (if (zero? i) acc (loop (- i 1) (+ acc i))))");
  expectAgree("(let loop ([i 100] [acc 1])"
              "  (if (= i 0) acc (loop (- i 1) (* acc 2))))");
}

TEST_F(PeepholeEquiv, FixnumOverflowFallsBack) {
  // AddLocalConst / SubLocalConst must take the slow path exactly where
  // the unfused Add/Sub would.
  expectAgree("(let ([n 4611686018427387903]) (+ n 1))");
  expectAgree("(let ([n -4611686018427387904]) (- n 1))");
  expectAgree("(let ([n 2.5]) (+ n 1))");
}

TEST_F(PeepholeEquiv, ListsAndPairs) {
  expectAgree("(let loop ([i 50] [acc '()])"
              "  (if (zero? i) (length acc) (loop (- i 1) (cons i acc))))");
  expectAgree("(let ([p (cons 1 2)]) (cons (car p) (cdr p)))");
  expectAgree("(car '())");         // Error path: messages must match.
  expectAgree("(let ([x 'a]) (+ x 1))"); // Type error inside a fused op.
  expectAgree("(let ([x 'a]) (zero? x))");
}

TEST_F(PeepholeEquiv, MarksAndAttachments) {
  expectAgree("(with-continuation-mark 'k 1"
              "  (+ 1 (with-continuation-mark 'k 2"
              "         (car (continuation-mark-set->list"
              "               (current-continuation-marks) 'k)))))");
  expectAgree("(define (f x) (+ 1 (with-continuation-mark 'k x (+ x 1))))"
              "(f 41)");
  expectAgree("(let loop ([i 100] [acc 0])"
              "  (if (zero? i) acc"
              "      (loop (- i 1)"
              "            (with-continuation-mark 'k i (+ acc 1)))))");
}

TEST_F(PeepholeEquiv, ContinuationsAcrossFusedCode) {
  expectAgree("(+ 1 (call/cc (lambda (k) (k 41))))");
  expectAgree("(let ([saved #f])"
              "  (define r (+ 1 (call/cc (lambda (k) (set! saved k) 1))))"
              "  (if (< r 10) (saved r) r))");
}

// The section 4 heap model is the ground-truth oracle: fused code must
// produce the same answers it does.
std::string runModel(SchemeEngine &E, const std::string &Src, bool &OkOut) {
  std::vector<Value> Forms = readAllFromString(E.heap(), Src);
  Value Program;
  {
    GCPauseScope Pause(E.heap());
    Value Acc = Value::nil();
    for (size_t I = Forms.size(); I > 0; --I)
      Acc = E.heap().makePair(Forms[I - 1], Acc);
    Program = E.heap().makePair(E.heap().intern("begin"), Acc);
  }
  GCRoot ProgramRoot(E.heap(), Program);

  AstContext Ctx;
  Expander Exp(E.heap(), E.vm().wellKnown(), Ctx, E.compiler());
  LambdaNode *Toplevel = Exp.expandToplevel(ProgramRoot.get());
  if (!Toplevel) {
    OkOut = false;
    return "expand error: " + Exp.error();
  }
  ModelResult R = runHeapModel(E.heap(), Toplevel, 50'000'000);
  OkOut = R.Ok;
  return R.Ok ? writeToString(R.V) : R.Error;
}

TEST_F(PeepholeEquiv, AgreesWithHeapModelOracle) {
  const char *Programs[] = {
      "(let loop ([i 0] [acc 0])"
      "  (if (zero? i) acc (loop (- i 1) (+ acc i))))",
      "(let loop ([i 20] [acc '()])"
      "  (if (zero? i) (length acc) (loop (- i 1) (cons i acc))))",
      "(with-continuation-mark 'k 1"
      "  (+ 0 (with-continuation-mark 'k 2"
      "         (car (continuation-mark-set->list"
      "               (current-continuation-marks) 'k)))))",
      "(+ 1 (#%call/cc (lambda (k) (k 41))))",
  };
  for (const char *Src : Programs) {
    bool Ok = false;
    std::string M = runModel(Fused, Src, Ok);
    ASSERT_TRUE(Ok) << M << "\n  src: " << Src;
    EXPECT_EQ(Fused.evalToString(Src), M) << Src;
  }
}

// ----------------------------------------------------- safe-point hoisting --

TEST(PeepholeSafePoints, UngovernedEngineNeverPolls) {
  // With no limits armed the hoisted safe points never fuel-expire: a
  // call- and branch-heavy workload must record zero polls.
  SchemeEngine E;
  E.resetStats();
  expectEval(E,
             "(let loop ([i 0] [acc 0])"
             "  (if (= i 20000) acc (loop (+ i 1) (+ acc 1))))",
             "20000");
  EXPECT_EQ(E.stats().SafePointPolls, 0u);
}

TEST(PeepholeSafePoints, GovernedEnginePollsAtCalls) {
  // A non-default FuelInterval governs the engine; the same workload now
  // polls (at call sites, since FuelInterval counts safe-point sites).
  EngineOptions Opts;
  Opts.VmCfg.Limits.FuelInterval = 128;
  SchemeEngine E(Opts);
  E.resetStats();
  expectEval(E,
             "(let loop ([i 0] [acc 0])"
             "  (if (= i 20000) acc (loop (+ i 1) (+ acc 1))))",
             "20000");
  EXPECT_GT(E.stats().SafePointPolls, 0u);
}

TEST(PeepholeSafePoints, InterruptStillDeliveredUngoverned) {
  // A cross-thread requestInterrupt() must reach the next safe-point
  // site even though an ungoverned engine never fuel-expires. (A request
  // landing *between* evals is intentionally cleared; see test_limits'
  // Interrupt.StaleRequestIsClearedAtNextEval.)
  SchemeEngine E;
  std::thread Poker([&E] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    E.requestInterrupt();
  });
  E.eval("(let loop () (loop))");
  Poker.join();
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.lastErrorKind(), ErrorKind::Interrupt);
  EXPECT_GT(E.stats().SafePointPolls, 0u);
}

} // namespace
