//===- tests/test_engine_api.cpp - Embedding API surface -------*- C++ -*-===//

#include "test_helpers.h"

#include "runtime/printer.h"

using namespace cmk;

namespace {

TEST(EngineApi, EvalReturnsLastForm) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString("1 2 3"), "3");
}

TEST(EngineApi, EvalEmptySourceIsVoid) {
  SchemeEngine E;
  EXPECT_EQ(E.evalToString(""), "#<void>");
  EXPECT_EQ(E.evalToString("; only a comment"), "#<void>");
}

TEST(EngineApi, ReadErrorsAreReported) {
  SchemeEngine E;
  E.eval("(unclosed");
  ASSERT_FALSE(E.ok());
  EXPECT_NE(E.lastError().find("read error"), std::string::npos);
}

TEST(EngineApi, ApplySchemeProcedureFromCpp) {
  SchemeEngine E;
  Value Fn = E.eval("(lambda (a b) (+ a (* 2 b)))");
  ASSERT_TRUE(E.ok());
  E.protect(Fn);
  Value R = E.apply(Fn, {Value::fixnum(3), Value::fixnum(4)});
  ASSERT_TRUE(E.ok()) << E.lastError();
  EXPECT_EQ(R.asFixnum(), 11);
}

TEST(EngineApi, ApplyNativeFromCpp) {
  SchemeEngine E;
  Value Plus = E.vm().getGlobal("+");
  Value R = E.apply(Plus, {Value::fixnum(20), Value::fixnum(22)});
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(R.asFixnum(), 42);
}

TEST(EngineApi, ApplyReportsArityErrors) {
  SchemeEngine E;
  Value Fn = E.eval("(lambda (a) a)");
  E.protect(Fn);
  E.apply(Fn, {});
  EXPECT_FALSE(E.ok());
  EXPECT_NE(E.lastError().find("wrong number of arguments"),
            std::string::npos);
}

TEST(EngineApi, CustomNativeRegistration) {
  SchemeEngine E;
  E.vm().defineNative(
      "host-triple",
      [](VM &M, Value *Args, uint32_t N) -> Value {
        if (!Args[0].isFixnum())
          return typeError(M, "host-triple", "fixnum", Args[0]);
        return Value::fixnum(Args[0].asFixnum() * 3);
      },
      1, 1);
  expectEval(E, "(host-triple 14)", "42");
  expectEval(E, "(map host-triple '(1 2 3))", "(3 6 9)");
}

TEST(EngineApi, CustomNativeCanScheduleTailCalls) {
  SchemeEngine E;
  E.vm().defineNative(
      "host-apply0",
      [](VM &M, Value *Args, uint32_t N) -> Value {
        M.scheduleTailCall(Args[0], nullptr, 0);
        return Value::voidValue();
      },
      1, 1);
  expectEval(E, "(host-apply0 (lambda () 'from-scheme))", "from-scheme");
  // The scheduled call is a proper tail call: a loop through the native
  // must not grow the stack.
  expectEval(E,
             "(define (spin i)"
             "  (if (= i 500000) 'flat (host-apply0 (lambda () (spin (+ i 1))))))"
             "(spin 0)",
             "flat");
}

TEST(EngineApi, GlobalsRoundTrip) {
  SchemeEngine E;
  E.vm().setGlobal("answer", Value::fixnum(42));
  expectEval(E, "answer", "42");
  E.evalOrDie("(define from-scheme 'hello)");
  EXPECT_EQ(writeToString(E.vm().getGlobal("from-scheme")), "hello");
}

TEST(EngineApi, ErrorsDoNotPoisonTheEngine) {
  SchemeEngine E;
  for (int I = 0; I < 10; ++I) {
    E.eval("(car 'not-a-pair)");
    EXPECT_FALSE(E.ok());
    EXPECT_EQ(E.evalToString("(+ 1 " + std::to_string(I) + ")"),
              std::to_string(I + 1));
  }
}

TEST(EngineApi, StatsAccessible) {
  SchemeEngine E;
  E.evalOrDie("(call/cc (lambda (k) (k 1)))");
  EXPECT_GT(E.vm().stats().ContinuationCaptures, 0u);
  expectEval(E, "(>= (#%vm-stat 'captures) 1)", "#t");
}

TEST(EngineApi, PreludeCanBeDisabled) {
  EngineOptions Opts;
  Opts.LoadPrelude = false;
  SchemeEngine E(Opts);
  EXPECT_EQ(E.evalToString("(+ 1 2)"), "3");
  E.eval("(map car '((1)))"); // map lives in the prelude.
  EXPECT_FALSE(E.ok());
}

TEST(EngineApi, ManyEnginesCoexist) {
  SchemeEngine A, B;
  A.evalOrDie("(define x 'from-a)");
  B.evalOrDie("(define x 'from-b)");
  EXPECT_EQ(A.evalToString("x"), "from-a");
  EXPECT_EQ(B.evalToString("x"), "from-b");
}

TEST(EngineApi, DisassembleIsStable) {
  SchemeEngine E;
  Value Form = readOne(E, "(lambda (x) (if x (+ x 1) 0))");
  std::string Err;
  Value Code = E.compiler().compileToplevel(Form, &Err);
  ASSERT_TRUE(Err.empty());
  std::string D = Compiler::disassemble(Code);
  EXPECT_NE(D.find("jump-if-false"), std::string::npos);
  EXPECT_NE(D.find("make-closure"), std::string::npos);
}

TEST(EngineApi, DeepValuePrintingIsBounded) {
  SchemeEngine E;
  // A very deep nested list must not blow the printer's stack.
  std::string R = E.evalToString(
      "(let loop ([i 0] [acc '()])"
      "  (if (= i 1000) acc (loop (+ i 1) (list acc))))");
  EXPECT_TRUE(E.ok());
  EXPECT_NE(R.find("..."), std::string::npos);
}

} // namespace
