//===- tests/test_continuations.cpp - call/cc, one-shots, winders -*- C++ -*-=//

#include "test_helpers.h"

using namespace cmk;

namespace {

class Continuations : public ::testing::Test {
protected:
  SchemeEngine E;
};

TEST_F(Continuations, EscapeFromExpression) {
  expectEval(E, "(+ 1 (call/cc (lambda (k) (k 41))))", "42");
  expectEval(E, "(+ 1 (call/cc (lambda (k) (+ 1000 (k 41)))))", "42");
  // Normal return delivers to the same continuation.
  expectEval(E, "(+ 1 (call/cc (lambda (k) 41)))", "42");
}

TEST_F(Continuations, MultiShotReentry) {
  expectEval(E,
             "(let ([k0 #f] [n (box 0)] [acc (box '())])"
             "  (let ([v (call/cc (lambda (k) (set! k0 k) 0))])"
             "    (set-box! acc (cons v (unbox acc)))"
             "    (set-box! n (+ 1 (unbox n)))"
             "    (if (< (unbox n) 4) (k0 (unbox n)) (reverse (unbox acc)))))",
             "(0 1 2 3)");
}

TEST_F(Continuations, CoroutinePingPong) {
  // Two coroutines alternating via saved continuations.
  expectEval(E,
             "(define out '())"
             "(define (note x) (set! out (cons x out)))"
             "(define pong-k #f)"
             "(define (ping n)"
             "  (if (zero? n)"
             "      (reverse out)"
             "      (begin"
             "        (note (list 'ping n))"
             "        (call/cc (lambda (k)"
             "          (if pong-k (pong-k k) (pong k n))))"
             "        (ping (- n 1)))))"
             "(define (pong back n)"
             "  (let ([k (call/cc (lambda (k2) (set! pong-k k2) back))])"
             "    (note 'pong)"
             "    (k #f)))"
             "(ping 3)",
             "((ping 3) pong (ping 2) pong (ping 1) pong)");
}

TEST_F(Continuations, CtakComputesTak) {
  const char *Ctak =
      "(define (ctak x y z) (call/cc (lambda (k) (ctak-aux k x y z))))"
      "(define (ctak-aux k x y z)"
      "  (if (not (< y x))"
      "      (k z)"
      "      (call/cc (lambda (k2)"
      "        (ctak-aux k2"
      "          (call/cc (lambda (k3) (ctak-aux k3 (- x 1) y z)))"
      "          (call/cc (lambda (k4) (ctak-aux k4 (- y 1) z x)))"
      "          (call/cc (lambda (k5) (ctak-aux k5 (- z 1) x y))))))))";
  E.evalOrDie(Ctak);
  expectEval(E, "(ctak 7 4 2)", "4");
  expectEval(E, "(ctak 12 6 3)", "4");
  expectEval(E, "(ctak 18 12 6)", "7");
  EXPECT_GT(E.vm().stats().ContinuationCaptures, 100u);
  EXPECT_GT(E.vm().stats().ContinuationApplies, 100u);
}

TEST_F(Continuations, OneShotFusionOnPlainReturns) {
  // Reify-and-return without capture in between must fuse (paper 6). The
  // attachment body must not fold to a constant (7.3 would remove it).
  uint64_t FusionsBefore = E.vm().stats().UnderflowFusions;
  uint64_t CopiesBefore = E.vm().stats().UnderflowCopies;
  E.evalOrDie(
      "(define (f) (call-setting-continuation-attachment 'v"
      "              (lambda () (car (current-continuation-attachments)))))"
      "(let loop ([i 0]) (if (= i 1000) 'done (begin (f) (loop (+ i 1)))))");
  EXPECT_GE(E.vm().stats().UnderflowFusions, FusionsBefore + 1000);
  EXPECT_LE(E.vm().stats().UnderflowCopies, CopiesBefore + 5)
      << "no copies expected for one-shot reify/return pairs";
}

TEST_F(Continuations, CaptureForcesCopyOnReturn) {
  // call/cc promotes the one-shot chain (paper 6), so the return through
  // the captured record must copy.
  uint64_t CopiesBefore = E.vm().stats().UnderflowCopies;
  E.evalOrDie("(define (f) (call-setting-continuation-attachment 'v"
              "  (lambda () (call/cc (lambda (k) 1)))))"
              "(f)");
  EXPECT_GT(E.vm().stats().UnderflowCopies, CopiesBefore);
}

TEST_F(Continuations, No1ccVariantNeverFuses) {
  SchemeEngine E2(EngineVariant::No1cc);
  E2.evalOrDie(
      "(define (f) (call-setting-continuation-attachment 'v"
      "              (lambda () (car (current-continuation-attachments)))))"
      "(let loop ([i 0]) (if (= i 100) 'done (begin (f) (loop (+ i 1)))))");
  EXPECT_EQ(E2.vm().stats().UnderflowFusions, 0u);
  EXPECT_GE(E2.vm().stats().UnderflowCopies, 100u);
}

TEST_F(Continuations, DynamicWindNormalFlow) {
  expectEval(E,
             "(define out '())"
             "(define (note x) (set! out (cons x out)))"
             "(dynamic-wind (lambda () (note 'before))"
             "              (lambda () (note 'during) 'value)"
             "              (lambda () (note 'after)))"
             "(reverse out)",
             "(before during after)");
}

TEST_F(Continuations, DynamicWindEscapeRunsAfter) {
  expectEval(E,
             "(define out '())"
             "(define (note x) (set! out (cons x out)))"
             "(call/cc (lambda (escape)"
             "  (dynamic-wind (lambda () (note 'in))"
             "                (lambda () (escape 'out!) (note 'unreached))"
             "                (lambda () (note 'out)))))"
             "(reverse out)",
             "(in out)");
}

TEST_F(Continuations, DynamicWindReentryRunsBefore) {
  // Jumping back into a dynamic-wind extent re-runs the before thunk.
  expectEval(E,
             "(let ([out (box '())] [k0 (box #f)] [count (box 0)])"
             "  (define (note x) (set-box! out (cons x (unbox out))))"
             "  (dynamic-wind"
             "    (lambda () (note 'in))"
             "    (lambda ()"
             "      (call/cc (lambda (k) (set-box! k0 k)))"
             "      (set-box! count (+ 1 (unbox count))))"
             "    (lambda () (note 'out)))"
             "  (if (< (unbox count) 3)"
             "      ((unbox k0) #f)"
             "      (list (reverse (unbox out)) (unbox count))))",
             "((in out in out in out) 3)");
}

TEST_F(Continuations, NestedWindsUnwindInOrder) {
  expectEval(E,
             "(define out '())"
             "(define (note x) (set! out (cons x out)))"
             "(call/cc (lambda (escape)"
             "  (dynamic-wind (lambda () (note 'in1))"
             "    (lambda ()"
             "      (dynamic-wind (lambda () (note 'in2))"
             "        (lambda () (escape 'go))"
             "        (lambda () (note 'out2))))"
             "    (lambda () (note 'out1)))))"
             "(reverse out)",
             "(in1 in2 out2 out1)");
}

TEST_F(Continuations, WindersSeeTheirMarks) {
  // Footnote 4: winder thunks run with the marks of the dynamic-wind
  // call's continuation, not of the jump's origin.
  expectEval(E,
             "(define seen '())"
             "(define (note) (set! seen (cons (continuation-mark-set-first #f 'm 'none) seen)))"
             "(call/cc (lambda (escape)"
             "  (with-continuation-mark 'm 'at-wind"
             "    (car (list"
             "      (dynamic-wind (lambda () (note))"
             "        (lambda ()"
             "          (with-continuation-mark 'm 'inner"
             "            (car (list (escape 'x)))))"
             "        (lambda () (note))))))))"
             "(reverse seen)",
             "(at-wind at-wind)");
}

TEST_F(Continuations, EscapeOnlyUpward) {
  expectEval(E,
             "(define (find-leaf pred tree)"
             "  (call/cc (lambda (return)"
             "    (let walk ([t tree])"
             "      (cond [(pair? t) (walk (car t)) (walk (cdr t))]"
             "            [(pred t) (return t)]"
             "            [else #f]))"
             "    'not-found)))"
             "(define (even-num? x) (if (integer? x) (even? x) #f))"
             "(list (find-leaf even-num? '((1 3) (5 . 8) 9))"
             "      (find-leaf string? '((1 3) 5)))",
             "(8 not-found)");
}

TEST_F(Continuations, HeapFrameModeSemantics) {
  SchemeEngine E2(EngineVariant::HeapFrames);
  expectEval(E2, "(+ 1 (call/cc (lambda (k) (k 41))))", "42");
  expectEval(E2,
             "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 5000)",
             "12502500");
  EXPECT_GE(E2.vm().stats().SegmentOverflows, 5000u)
      << "heap-frame mode allocates a segment per call";
}

TEST_F(Continuations, CopyOnCaptureModeSemantics) {
  SchemeEngine E2(EngineVariant::CopyOnCapture);
  expectEval(E2,
             "(let ([k0 #f] [n (box 0)] [acc (box '())])"
             "  (let ([v (call/cc (lambda (k) (set! k0 k) 0))])"
             "    (set-box! acc (cons v (unbox acc)))"
             "    (set-box! n (+ 1 (unbox n)))"
             "    (if (< (unbox n) 3) (k0 (unbox n)) (reverse (unbox acc)))))",
             "(0 1 2)");
}

TEST_F(Continuations, ContinuationPredicates) {
  expectEval(E, "(call/cc (lambda (k) (procedure? k)))", "#t");
  expectEval(E, "(#%call/cc (lambda (k) (continuation? k)))", "#t");
  expectEval(E, "(continuation? +)", "#f");
}

// Stress sweep: repeated capture/apply at varying recursion depths makes
// sure splitting, promotion, and copy-back interact safely.
class CaptureDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(CaptureDepthSweep, EscapeFromDepth) {
  SchemeEngine E;
  int Depth = GetParam();
  std::string Src =
      "(define (dig n escape)"
      "  (if (zero? n) (escape 'bottom) (+ 1 (dig (- n 1) escape))))"
      "(call/cc (lambda (k) (dig " +
      std::to_string(Depth) + " k)))";
  EXPECT_EQ(E.evalToString(Src), "bottom");
  EXPECT_TRUE(E.ok()) << E.lastError();
}

INSTANTIATE_TEST_SUITE_P(Continuations, CaptureDepthSweep,
                         ::testing::Values(1, 10, 1000, 20000, 100000));

} // namespace
