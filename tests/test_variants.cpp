//===- tests/test_variants.cpp - Differential variant testing --*- C++ -*-===//
///
/// \file
/// Every system variant (figure 6 ablations, strategy modes) must agree on
/// observable behaviour: the ablations only change *how* attachments are
/// implemented, never *what* they mean. This file runs a battery of
/// observable programs across all variants and a randomized
/// property/differential fuzzer over a mark-program grammar.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "support/rng.h"

using namespace cmk;

namespace {

/// Variants that must agree exactly on all programs. (Unmod legitimately
/// differs on programs that observe the section 7.4 frames; MarkStack
/// differs on expression-level mark collapsing, see DESIGN.md.)
const EngineVariant EquivalentVariants[] = {
    EngineVariant::Builtin,    EngineVariant::NoOpt,
    EngineVariant::NoPrim,     EngineVariant::No1cc,
    EngineVariant::HeapFrames, EngineVariant::CopyOnCapture,
    EngineVariant::Imitate,
};

const char *variantName(EngineVariant V) {
  switch (V) {
  case EngineVariant::Builtin:
    return "builtin";
  case EngineVariant::NoOpt:
    return "no_opt";
  case EngineVariant::NoPrim:
    return "no_prim";
  case EngineVariant::No1cc:
    return "no_1cc";
  case EngineVariant::Unmod:
    return "unmod";
  case EngineVariant::Imitate:
    return "imitate";
  case EngineVariant::MarkStack:
    return "mark_stack";
  case EngineVariant::HeapFrames:
    return "heap_frames";
  case EngineVariant::CopyOnCapture:
    return "copy_on_capture";
  }
  return "?";
}

struct ProgramCase {
  const char *Name;
  const char *Src;
};

const ProgramCase Battery[] = {
    {"marks_basic",
     "(with-continuation-mark 'k 1"
     "  (list (continuation-mark-set-first #f 'k)"
     "        (continuation-mark-set->list (current-continuation-marks) 'k)))"},
    {"marks_nested",
     "(define (all) (continuation-mark-set->list (current-continuation-marks) 'c))"
     "(with-continuation-mark 'c 'red"
     "  (car (list (with-continuation-mark 'c 'blue (all)))))"},
    {"marks_tail_replace",
     "(define (f) (with-continuation-mark 'k 2"
     "  (continuation-mark-set->list (current-continuation-marks) 'k)))"
     "(with-continuation-mark 'k 1 (f))"},
    {"marks_deep",
     "(define (deep n)"
     "  (if (zero? n)"
     "      (continuation-mark-set-first #f 'key 'none)"
     "      (car (list (deep (- n 1))))))"
     "(with-continuation-mark 'key 'v (deep 2000))"},
    {"attachments_all_ops",
     "(call-setting-continuation-attachment 'a"
     "  (lambda ()"
     "    (call-consuming-continuation-attachment 'none"
     "      (lambda (x)"
     "        (call-setting-continuation-attachment (list x 'b)"
     "          (lambda ()"
     "            (call-getting-continuation-attachment 'none"
     "              (lambda (y) (list y (current-continuation-attachments))))))))))"},
    {"exceptions",
     "(define (risky n)"
     "  (catch (lambda (e) (cons n e))"
     "    (if (zero? n) (throw 'zero) (risky (- n 1)))))"
     "(risky 4)"},
    {"parameters",
     "(define p (make-parameter 'd))"
     "(list (p) (parameterize ([p 1]) (list (p) (parameterize ([p 2]) (p)) (p))) (p))"},
    {"callcc_escape",
     "(+ 1 (call/cc (lambda (k) (+ 100 (k 41)))))"},
    {"callcc_reentry",
     "(let ([k0 #f] [n (box 0)] [acc (box '())])"
     "  (let ([v (call/cc (lambda (k) (set! k0 k) 0))])"
     "    (set-box! acc (cons v (unbox acc)))"
     "    (set-box! n (+ 1 (unbox n)))"
     "    (if (< (unbox n) 3) (k0 (unbox n)) (reverse (unbox acc)))))"},
    {"dynwind",
     "(define out '())"
     "(call/cc (lambda (esc)"
     "  (dynamic-wind (lambda () (set! out (cons 'in out)))"
     "                (lambda () (esc 'x))"
     "                (lambda () (set! out (cons 'out out))))))"
     "(reverse out)"},
    {"prompts",
     "(call-with-continuation-prompt"
     "  (lambda () (+ 1 (abort-current-continuation"
     "                   (default-continuation-prompt-tag) 42)))"
     "  (default-continuation-prompt-tag)"
     "  (lambda (v) (list 'h v)))"},
    {"generators",
     "(define g (make-generator (lambda (y) (y 1) (y 2) 'end)))"
     "(list (g) (g) (g))"},
    {"contracts",
     "(define f (contract-wrap (-> integer/c integer/c) (lambda (x) (* 2 x)) 'b))"
     "(list (f 4) (catch (lambda (e) 'no) (f \"s\")))"},
    {"deep_recursion",
     "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 50000)"},
    {"wcm_around_arg",
     "(define (id x) x)"
     "(define (go i) (with-continuation-mark 'k i (id (continuation-mark-set-first #f 'k))))"
     "(let loop ([i 0] [acc 0])"
     "  (if (= i 100) acc (loop (+ i 1) (+ acc (go i)))))"},
};

class VariantBattery
    : public ::testing::TestWithParam<std::tuple<EngineVariant, int>> {};

TEST_P(VariantBattery, MatchesBuiltin) {
  EngineVariant V = std::get<0>(GetParam());
  const ProgramCase &C = Battery[std::get<1>(GetParam())];

  // Documented divergence: the figure 3 imitation cannot implement a true
  // consume (see lib/prelude.cpp), so direct uses of the consuming
  // primitive are out of scope for the Imitate variant.
  if (V == EngineVariant::Imitate &&
      std::string(C.Name) == "attachments_all_ops")
    GTEST_SKIP();

  SchemeEngine Reference(EngineVariant::Builtin);
  std::string Expected = Reference.evalToString(C.Src);
  ASSERT_TRUE(Reference.ok()) << Reference.lastError();

  SchemeEngine Variant(V);
  std::string Got = Variant.evalToString(C.Src);
  ASSERT_TRUE(Variant.ok()) << variantName(V) << ": " << Variant.lastError();
  EXPECT_EQ(Got, Expected) << "variant " << variantName(V) << " diverges on "
                           << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantBattery,
    ::testing::Combine(::testing::ValuesIn(EquivalentVariants),
                       ::testing::Range(0, static_cast<int>(std::size(Battery)))),
    [](const ::testing::TestParamInfo<std::tuple<EngineVariant, int>> &I) {
      return std::string(variantName(std::get<0>(I.param))) + "_" +
             Battery[std::get<1>(I.param)].Name;
    });

// --- Randomized differential fuzzing ------------------------------------------

/// Generates a random mark/attachment-observing program. The grammar stays
/// within behaviour all variants implement identically: wcm in tail and
/// non-tail positions, first/list lookups, helper calls, arithmetic.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string program() {
    std::string P =
        "(define (obs k) (continuation-mark-set->list"
        "                 (current-continuation-marks) k))"
        "(define (fst k) (continuation-mark-set-first #f k 'none))"
        "(define (hlp f) (f))";
    P += "(list ";
    int N = 1 + static_cast<int>(R.nextBelow(3));
    for (int I = 0; I < N; ++I)
      P += expr(3) + " ";
    P += ")";
    return P;
  }

private:
  std::string key() {
    return R.chance(1, 2) ? "'k1" : "'k2";
  }

  std::string expr(int Depth) {
    if (Depth == 0)
      return leaf();
    switch (R.nextBelow(8)) {
    case 0: // wcm with body in "tail" of the form
      return "(with-continuation-mark " + key() + " " +
             std::to_string(R.nextBelow(100)) + " " + expr(Depth - 1) + ")";
    case 1: // wcm around a list (non-tail body)
      return "(car (list (with-continuation-mark " + key() + " " +
             std::to_string(R.nextBelow(100)) + " " + expr(Depth - 1) + ")))";
    case 2: // helper call boundary (fresh frame)
      return "(hlp (lambda () " + expr(Depth - 1) + "))";
    case 3: // lookup under arithmetic
      return "(cons (fst " + key() + ") " + expr(Depth - 1) + ")";
    case 4:
      return "(obs " + key() + ")";
    case 5: // let binding
      return "(let ([x " + expr(Depth - 1) + "]) (list x (fst " + key() +
             ")))";
    case 6: // conditional
      return std::string("(if ") + (R.chance(1, 2) ? "#t " : "#f ") +
             expr(Depth - 1) + " " + expr(Depth - 1) + ")";
    default: // nested wcm same frame
      return "(with-continuation-mark " + key() + " " +
             std::to_string(R.nextBelow(100)) +
             " (with-continuation-mark " + key() + " " +
             std::to_string(R.nextBelow(100)) + " " + expr(Depth - 1) + "))";
    }
  }

  std::string leaf() {
    switch (R.nextBelow(3)) {
    case 0:
      return "(fst " + key() + ")";
    case 1:
      return "(obs " + key() + ")";
    default:
      return std::to_string(R.nextBelow(100));
    }
  }

  Rng R;
};

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, AllVariantsAgree) {
  ProgramGen Gen(GetParam());
  for (int Round = 0; Round < 8; ++Round) {
    std::string Prog = Gen.program();
    SchemeEngine Reference(EngineVariant::Builtin);
    std::string Expected = Reference.evalToString(Prog);
    ASSERT_TRUE(Reference.ok()) << Reference.lastError() << "\n" << Prog;

    for (EngineVariant V :
         {EngineVariant::NoOpt, EngineVariant::NoPrim, EngineVariant::No1cc}) {
      SchemeEngine Variant(V);
      std::string Got = Variant.evalToString(Prog);
      ASSERT_TRUE(Variant.ok()) << Variant.lastError() << "\n" << Prog;
      EXPECT_EQ(Got, Expected)
          << "variant " << variantName(V) << " diverges on:\n"
          << Prog;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, FuzzDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

} // namespace
