//===- tests/test_marks.cpp - Continuation marks layer ---------*- C++ -*-===//
///
/// \file
/// Racket-level continuation-mark semantics (paper section 2) and the
/// performance-critical properties of section 7.5: amortized-constant
/// first-mark lookup via path compression, and the evolving mark-frame
/// representation.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "marks/marks.h"
#include "runtime/heap.h"

using namespace cmk;

namespace {

class Marks : public ::testing::Test {
protected:
  SchemeEngine E;
};

TEST_F(Marks, BasicSetAndFirst) {
  expectEval(E,
             "(with-continuation-mark 'team-color \"red\""
             "  (continuation-mark-set-first #f 'team-color \"?\"))",
             "\"red\"");
  expectEval(E, "(continuation-mark-set-first #f 'absent \"?\")", "\"?\"");
}

TEST_F(Marks, PaperTeamColorExample) {
  // Section 2.1's example: red wraps the whole call; blue is nested.
  expectEval(E,
             "(define (all-team-colors)"
             "  (continuation-mark-set->list (current-continuation-marks)"
             "                               'team-color))"
             "(with-continuation-mark 'team-color \"red\""
             "  (car (list"
             "    (with-continuation-mark 'team-color \"blue\""
             "      (all-team-colors)))))",
             "(\"blue\" \"red\")");
}

TEST_F(Marks, TailMarkReplaces) {
  expectEval(E,
             "(define (inner)"
             "  (with-continuation-mark 'k 'new"
             "    (continuation-mark-set->list (current-continuation-marks) 'k)))"
             "(with-continuation-mark 'k 'old (inner))",
             "(new)");
}

TEST_F(Marks, DifferentKeysShareFrame) {
  // Section 3: marks with different keys land on the same frame.
  expectEval(E,
             "(with-continuation-mark 'a 1"
             "  (with-continuation-mark 'b 2"
             "    (list (continuation-mark-set-first #f 'a)"
             "          (continuation-mark-set-first #f 'b))))",
             "(1 2)");
}

TEST_F(Marks, MarkLeavesScopeOnReturn) {
  expectEval(E,
             "(begin"
             "  (with-continuation-mark 'k 1 (list 'x))"
             "  (continuation-mark-set-first #f 'k 'gone))",
             "gone");
}

TEST_F(Marks, MarkSetFromContinuation) {
  expectEval(E,
             "(define set1"
             "  (with-continuation-mark 'k 'v"
             "    (car (list (current-continuation-marks)))))"
             "(continuation-mark-set->list set1 'k)",
             "(v)");
  // continuation-marks of a captured continuation (section 2.2).
  expectEval(E,
             "(define marks2"
             "  (with-continuation-mark 'k 'w"
             "    (car (list"
             "      (#%call/cc (lambda (k) (continuation-marks k)))))))"
             "(continuation-mark-set->list marks2 'k)",
             "(w)");
}

TEST_F(Marks, ImmediateMarkOnlyOnCurrentFrame) {
  // call-with-immediate-continuation-mark sees the frame's own mark...
  expectEval(E,
             "(with-continuation-mark 'k 'mine"
             "  (call-with-immediate-continuation-mark 'k"
             "    (lambda (v) v) 'none))",
             "mine");
  // ...but not marks of deeper frames.
  expectEval(E,
             "(with-continuation-mark 'k 'outer"
             "  (car (list"
             "    (call-with-immediate-continuation-mark 'k"
             "      (lambda (v) v) 'none))))",
             "none");
}

TEST_F(Marks, ImmediateMarkChainPattern) {
  // The catch pattern of section 2.3: chain the frame's handler list.
  expectEval(E,
             "(define (push-frame-local v body-thunk)"
             "  (call-with-immediate-continuation-mark 'stack"
             "    (lambda (existing)"
             "      (with-continuation-mark 'stack"
             "        (cons v (if existing existing '()))"
             "        (body-thunk)))"
             "    #f))"
             "(push-frame-local 1"
             "  (lambda ()"
             "    (push-frame-local 2"
             "      (lambda ()"
             "        (continuation-mark-set-first #f 'stack)))))",
             "(2 1)");
}

TEST_F(Marks, ListCollectsAllFrames) {
  expectEval(E,
             "(define (deep n)"
             "  (if (zero? n)"
             "      (continuation-mark-set->list (current-continuation-marks) 'd)"
             "      (car (list (with-continuation-mark 'd n (deep (- n 1)))))))"
             "(length (deep 500))",
             "500");
}

TEST_F(Marks, FirstIsAmortizedConstant) {
  // Build a continuation with the only mark 10000 frames deep, then look
  // it up repeatedly: path compression (7.5) must collapse the cost. We
  // check semantics here and bound the work by wall-clock sanity (the
  // benchmark suite measures it properly).
  expectEval(E,
             "(define (deep n)"
             "  (if (zero? n)"
             "      (let loop ([i 0] [acc 0])"
             "        (if (= i 2000)"
             "            acc"
             "            (loop (+ i 1)"
             "                  (+ acc (continuation-mark-set-first #f 'key 0)))))"
             "      (+ 0 (deep (- n 1)))))"
             "(with-continuation-mark 'key 1 (deep 10000))",
             "2000");
}

TEST_F(Marks, IteratorGroupsByFrame) {
  expectEval(E,
             "(define (grab)"
             "  (continuation-mark-set->iterator (current-continuation-marks)"
             "                                   (list 'a 'b)))"
             "(define it"
             "  (with-continuation-mark 'a 1"
             "    (with-continuation-mark 'b 2"
             "      (car (list (with-continuation-mark 'a 3 (grab)))))))"
             "(let loop ([it it] [acc '()])"
             "  (let ([n (#%mark-iterator-next it)])"
             "    (if n"
             "        (loop (cdr n) (cons (vector->list (car n)) acc))"
             "        (reverse acc))))",
             "((3 #f) (1 2))");
}

TEST_F(Marks, MarksThroughNonTailPrimitives) {
  expectEval(E,
             "(with-continuation-mark 'k 1"
             "  (+ 0 (with-continuation-mark 'k 2"
             "         (length (continuation-mark-set->list"
             "                  (current-continuation-marks) 'k)))))",
             "2");
}

TEST_F(Marks, KeysComparedByEq) {
  expectEval(E,
             "(define k1 (gensym 'k))"
             "(define k2 (gensym 'k))"
             "(with-continuation-mark k1 'one"
             "  (list (continuation-mark-set-first #f k1 'no)"
             "        (continuation-mark-set-first #f k2 'no)))",
             "(one no)");
}

TEST_F(Marks, HighLevelElision) {
  // Section 7.3: a mark around a constant body is compiled away entirely.
  Value Form = readOne(E, "(lambda () (let ([x 5])"
                          "  (with-continuation-mark 'key 'val x)))");
  std::string Err;
  Value Code = E.compiler().compileToplevel(Form, &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  std::string Disasm = Compiler::disassemble(Code);
  EXPECT_EQ(Disasm.find("reify"), std::string::npos)
      << "no reification expected:\n"
      << Disasm;
  EXPECT_EQ(Disasm.find("marks-push"), std::string::npos)
      << "no mark push expected:\n"
      << Disasm;
}

TEST_F(Marks, Section74ConstraintObservable) {
  // (let ([x E]) x) in tail position must not be elided when E can
  // observe marks: if it were, work's tail mark would replace 'k 1.
  const char *Prog =
      "(define (work)"
      "  (with-continuation-mark 'k 2"
      "    (continuation-mark-set->list (current-continuation-marks) 'k)))"
      "(define (g) (with-continuation-mark 'k 1 (let ([x (work)]) x)))"
      "(g)";
  expectEval(E, Prog, "(2 1)");

  // The unconstrained compiler ("unmod", 8.2) elides and the nested mark
  // replaces the outer one — exactly the difference the paper legislates.
  SchemeEngine Unmod(EngineVariant::Unmod);
  expectEval(Unmod, Prog, "(2)");
}

TEST_F(Marks, Section74SafeSimplificationStillHappens) {
  // When the let is not in tail position the binding can still go away;
  // semantics must be unchanged either way.
  const char *Prog = "(define (f g) (+ 2 (let ([x (+ 1 (g))]) x)))"
                     "(f (lambda () 39))";
  expectEval(E, Prog, "42");
}

// --- Mark-frame unit tests (direct C++ surface) -------------------------------

TEST(MarkFrames, UpdateAndLookup) {
  Heap H;
  Value K1 = H.intern("k1");
  Value K2 = H.intern("k2");
  GCRoot F1(H, markFrameUpdate(H, Value::False(), K1, Value::fixnum(1)));
  EXPECT_EQ(markFrameLookup(F1.get(), K1).asFixnum(), 1);
  EXPECT_TRUE(markFrameLookup(F1.get(), K2).isUndefined());

  GCRoot F2(H, markFrameUpdate(H, F1.get(), K2, Value::fixnum(2)));
  EXPECT_EQ(markFrameLookup(F2.get(), K1).asFixnum(), 1);
  EXPECT_EQ(markFrameLookup(F2.get(), K2).asFixnum(), 2);
  EXPECT_EQ(asMarkFrame(F2.get())->NumEntries, 2u);

  // Same-key update replaces without growing.
  GCRoot F3(H, markFrameUpdate(H, F2.get(), K1, Value::fixnum(9)));
  EXPECT_EQ(markFrameLookup(F3.get(), K1).asFixnum(), 9);
  EXPECT_EQ(asMarkFrame(F3.get())->NumEntries, 2u);

  // Updates are persistent: the original frame is untouched.
  EXPECT_EQ(markFrameLookup(F2.get(), K1).asFixnum(), 1);
}

TEST(MarkFrames, FirstLookupCachesAtHalfDepth) {
  Heap H;
  Value Key = H.intern("key");
  // marks = [empty x 64, frame-with-key]
  GCRoot Frame(H, markFrameUpdate(H, Value::False(), Key, Value::fixnum(7)));
  GCRoot Marks(H, H.makePair(Frame.get(), Value::nil()));
  for (int I = 0; I < 64; ++I) {
    GCRoot Empty(H, markFrameUpdate(H, Value::False(), H.intern("other"),
                                    Value::fixnum(I)));
    Marks.set(H.makePair(Empty.get(), Marks.get()));
  }
  Value First =
      markListFirst(H, Marks.get(), Key, Value::fixnum(-1));
  EXPECT_EQ(First.asFixnum(), 7);

  // A cache entry must now exist at roughly half depth.
  int CachedAt = -1;
  Value P = Marks.get();
  for (int I = 0; P.isPair(); P = cdr(P), ++I) {
    if (car(P).isMarkFrame() &&
        (asMarkFrame(car(P))->H.Aux & 1) != 0) {
      CachedAt = I;
      break;
    }
  }
  EXPECT_GE(CachedAt, 16);
  EXPECT_LE(CachedAt, 48);

  // Lookups keep working (and now hit the cache).
  EXPECT_EQ(markListFirst(H, Marks.get(), Key, Value::fixnum(-1)).asFixnum(),
            7);
}

TEST(MarkFrames, CacheValidatedAgainstTail) {
  Heap H;
  Value Key = H.intern("key");
  GCRoot Shared(H, markFrameUpdate(H, Value::False(), H.intern("other"),
                                   Value::fixnum(0)));
  // Chain A: shared frame with key=1 below; chain B: same shared frame
  // with key=2 below. A stale cache from chain A must not leak into B.
  GCRoot FA(H, markFrameUpdate(H, Value::False(), Key, Value::fixnum(1)));
  GCRoot FB(H, markFrameUpdate(H, Value::False(), Key, Value::fixnum(2)));
  GCRoot ChainA(H, H.makePair(FA.get(), Value::nil()));
  for (int I = 0; I < 32; ++I)
    ChainA.set(H.makePair(Shared.get(), ChainA.get()));
  GCRoot ChainB(H, H.makePair(FB.get(), Value::nil()));
  for (int I = 0; I < 32; ++I)
    ChainB.set(H.makePair(Shared.get(), ChainB.get()));

  EXPECT_EQ(markListFirst(H, ChainA.get(), Key, Value::fixnum(-1)).asFixnum(),
            1);
  EXPECT_EQ(markListFirst(H, ChainB.get(), Key, Value::fixnum(-1)).asFixnum(),
            2)
      << "cache computed for chain A must not answer for chain B";
}

// --- Old-Racket mark-stack comparator -----------------------------------------

class MarkStackMode : public ::testing::Test {
protected:
  SchemeEngine E{EngineVariant::MarkStack};
};

TEST_F(MarkStackMode, BasicSemanticsMatch) {
  expectEval(E,
             "(with-continuation-mark 'k 1"
             "  (continuation-mark-set-first #f 'k))",
             "1");
  expectEval(E,
             "(define (inner)"
             "  (with-continuation-mark 'k 'new"
             "    (continuation-mark-set->list (current-continuation-marks) 'k)))"
             "(with-continuation-mark 'k 'old (inner))",
             "(new)");
  expectEval(E,
             "(with-continuation-mark 'a 1"
             "  (with-continuation-mark 'b 2"
             "    (list (continuation-mark-set-first #f 'a)"
             "          (continuation-mark-set-first #f 'b))))",
             "(1 2)");
}

TEST_F(MarkStackMode, MarksPopOnReturn) {
  expectEval(E,
             "(begin"
             "  (with-continuation-mark 'k 1 (list 'x))"
             "  (continuation-mark-set-first #f 'k 'gone))",
             "gone");
  EXPECT_EQ(E.evalToString("(#%vm-stat 'mark-stack-size)"), "0");
}

TEST_F(MarkStackMode, DeepRecursionTruncatesOnUnderflow) {
  expectEval(E,
             "(define (deep n)"
             "  (if (zero? n)"
             "      (if (eq? 'v (continuation-mark-set-first #f 'k 'none)) 1 0)"
             "      (+ 0 (deep (- n 1)))))"
             "(with-continuation-mark 'k 'v (deep 60000))",
             "1");
  EXPECT_EQ(E.evalToString("(#%vm-stat 'mark-stack-size)"), "0");
}

TEST_F(MarkStackMode, CaptureCopiesMarkStack) {
  expectEval(E,
             "(define k0 #f)"
             "(define hits (box 0))"
             "(with-continuation-mark 'k 'v"
             "  (car (list"
             "    (begin"
             "      (#%call/cc (lambda (k) (set! k0 k)))"
             "      (set-box! hits (+ 1 (unbox hits)))"
             "      (if (and (< (unbox hits) 3)"
             "               (eq? 'v (continuation-mark-set-first #f 'k 'none)))"
             "          (k0 #f)"
             "          (list (unbox hits)"
             "                (continuation-mark-set-first #f 'k 'none)))))))",
             "(3 v)");
}

} // namespace
