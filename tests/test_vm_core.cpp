//===- tests/test_vm_core.cpp - Language/VM behaviour ----------*- C++ -*-===//

#include "test_helpers.h"

using namespace cmk;

namespace {

class VmCore : public ::testing::Test {
protected:
  SchemeEngine E;
};

TEST_F(VmCore, SelfEvaluating) {
  expectEval(E, "42", "42");
  expectEval(E, "#t", "#t");
  expectEval(E, "\"s\"", "\"s\"");
  expectEval(E, "#\\x", "#\\x");
  expectEval(E, "3.5", "3.5");
}

TEST_F(VmCore, QuoteAndQuasiquote) {
  expectEval(E, "'(1 2 3)", "(1 2 3)");
  expectEval(E, "`(1 ,(+ 1 1) 3)", "(1 2 3)");
  expectEval(E, "`(a ,@(list 1 2) b)", "(a 1 2 b)");
  expectEval(E, "`#(1 ,(+ 1 1))", "#(1 2)");
  expectEval(E, "`(1 `(2 ,(3)))", "(1 (quasiquote (2 (unquote (3)))))");
}

TEST_F(VmCore, IfAndBooleans) {
  expectEval(E, "(if #t 1 2)", "1");
  expectEval(E, "(if #f 1 2)", "2");
  expectEval(E, "(if 0 'zero 'no)", "zero");
  expectEval(E, "(if '() 'nil 'no)", "nil");
  expectEval(E, "(if #f #f)", "#<void>");
}

TEST_F(VmCore, LetForms) {
  expectEval(E, "(let ([x 1] [y 2]) (+ x y))", "3");
  expectEval(E, "(let* ([x 1] [y (+ x 1)]) (* x y))", "2");
  expectEval(E, "(letrec ([even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1))))]"
                "         [odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))])"
                "  (list (even2? 10) (odd2? 10)))",
             "(#t #f)");
  expectEval(E, "(let ([x 1]) (let ([x 2] [y x]) (list x y)))", "(2 1)");
}

TEST_F(VmCore, NamedLetAndDo) {
  expectEval(E, "(let loop ([i 0] [acc '()])"
                "  (if (= i 3) (reverse acc) (loop (+ i 1) (cons i acc))))",
             "(0 1 2)");
  expectEval(E, "(do ([i 0 (+ i 1)] [s 0 (+ s i)]) ((= i 5) s))", "10");
  expectEval(E, "(let ([v (make-vector 3 0)])"
                "  (do ([i 0 (+ i 1)]) ((= i 3) v) (vector-set! v i (* i i))))",
             "#(0 1 4)");
}

TEST_F(VmCore, CondCaseAndOr) {
  expectEval(E, "(cond [#f 1] [else 2])", "2");
  expectEval(E, "(cond [(assv 2 '((1 a) (2 b))) => cadr] [else 'no])", "b");
  expectEval(E, "(cond [(memq 'c '(a b)) 1])", "#<void>");
  expectEval(E, "(case (* 2 3) [(2 3 5 7) 'prime] [(1 4 6 8 9) 'composite])",
             "composite");
  expectEval(E, "(case 'z [(a) 1] [else 'other])", "other");
  expectEval(E, "(and 1 2 3)", "3");
  expectEval(E, "(and 1 #f 3)", "#f");
  expectEval(E, "(and)", "#t");
  expectEval(E, "(or #f 2 (error \"not reached\"))", "2");
  expectEval(E, "(or)", "#f");
  expectEval(E, "(when (> 2 1) 'a 'b)", "b");
  expectEval(E, "(unless (> 2 1) 'a)", "#<void>");
}

TEST_F(VmCore, LambdaShapes) {
  expectEval(E, "((lambda (a b) (- a b)) 10 4)", "6");
  expectEval(E, "((lambda args args) 1 2 3)", "(1 2 3)");
  expectEval(E, "((lambda (a . r) (list a r)) 1 2 3)", "(1 (2 3))");
  expectEval(E, "((lambda (a . r) (list a r)) 1)", "(1 ())");
}

TEST_F(VmCore, InternalDefines) {
  expectEval(E, "(define (f x)"
                "  (define y (* x 2))"
                "  (define (g z) (+ z y))"
                "  (g 1))"
                "(f 10)",
             "21");
}

TEST_F(VmCore, ClosuresCapture) {
  expectEval(E, "(define (counter)"
                "  (let ([n 0]) (lambda () (set! n (+ n 1)) n)))"
                "(define c1 (counter)) (define c2 (counter))"
                "(c1) (c1) (list (c1) (c2))",
             "(3 1)");
  // Shared mutable capture between two closures.
  expectEval(E, "(define (pair-ops)"
                "  (let ([n 0])"
                "    (cons (lambda () (set! n (+ n 1)) n)"
                "          (lambda () n))))"
                "(define p (pair-ops)) ((car p)) ((car p)) ((cdr p))",
             "2");
}

TEST_F(VmCore, SetBang) {
  expectEval(E, "(define x 1) (set! x 99) x", "99");
  expectEval(E, "(let ([x 1]) (set! x (+ x 1)) x)", "2");
}

TEST_F(VmCore, TailCallsAreSpaceSafe) {
  // 10M iterations would overflow any non-tail-call implementation.
  expectEval(E, "(let loop ([i 0]) (if (= i 10000000) 'done (loop (+ i 1))))",
             "done");
  // Mutual recursion in tail position.
  expectEval(E, "(define (pingf n) (if (zero? n) 'ping (pongf (- n 1))))"
                "(define (pongf n) (if (zero? n) 'pong (pingf (- n 1))))"
                "(pingf 3000001)",
             "pong");
}

TEST_F(VmCore, DeepNonTailRecursion) {
  expectEval(E, "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))"
                "(sum 300000)",
             "45000150000");
  EXPECT_GT(E.vm().stats().SegmentOverflows, 0u)
      << "deep recursion must overflow segments";
  EXPECT_GT(E.vm().stats().UnderflowCopies, 0u)
      << "overflow splits cross segments, so returns copy (paper section 5)";
}

TEST_F(VmCore, Variadics) {
  expectEval(E, "(+)", "0");
  expectEval(E, "(+ 1 2 3 4)", "10");
  expectEval(E, "(- 5)", "-5");
  expectEval(E, "(*)", "1");
  expectEval(E, "(< 1 2 3)", "#t");
  expectEval(E, "(< 1 3 2)", "#f");
  expectEval(E, "(max 3 1 4 1 5)", "5");
  expectEval(E, "(min 3 1 4)", "1");
}

TEST_F(VmCore, NumericTower) {
  expectEval(E, "(/ 6 3)", "2");
  expectEval(E, "(/ 1 2)", "0.5");
  expectEval(E, "(quotient 7 2)", "3");
  expectEval(E, "(remainder 7 2)", "1");
  expectEval(E, "(modulo -7 3)", "2");
  expectEval(E, "(expt 2 10)", "1024");
  expectEval(E, "(sqrt 16)", "4");
  expectEval(E, "(abs -3)", "3");
  expectEval(E, "(exact->inexact 1)", "1.0");
  expectEval(E, "(inexact->exact 2.0)", "2");
  expectEval(E, "(+ 0.5 0.25)", "0.75");
}

TEST_F(VmCore, ListLibrary) {
  expectEval(E, "(append '(1 2) '(3) '() '(4))", "(1 2 3 4)");
  expectEval(E, "(reverse '(1 2 3))", "(3 2 1)");
  expectEval(E, "(length '(a b c))", "3");
  expectEval(E, "(list-tail '(a b c d) 2)", "(c d)");
  expectEval(E, "(list-ref '(a b c) 1)", "b");
  expectEval(E, "(memv 2 '(1 2 3))", "(2 3)");
  expectEval(E, "(assq 'b '((a 1) (b 2)))", "(b 2)");
  expectEval(E, "(map (lambda (x) (* x x)) '(1 2 3))", "(1 4 9)");
  expectEval(E, "(filter odd? '(1 2 3 4 5))", "(1 3 5)");
  expectEval(E, "(foldl + 0 '(1 2 3 4))", "10");
  expectEval(E, "(foldr cons '() '(1 2 3))", "(1 2 3)");
  expectEval(E, "(sort < '(3 1 4 1 5 9 2 6))", "(1 1 2 3 4 5 6 9)");
  expectEval(E, "(iota 4)", "(0 1 2 3)");
}

TEST_F(VmCore, StringLibrary) {
  expectEval(E, "(string-append \"foo\" \"bar\")", "\"foobar\"");
  expectEval(E, "(string-length \"hello\")", "5");
  expectEval(E, "(substring \"hello\" 1 3)", "\"el\"");
  expectEval(E, "(string->symbol \"abc\")", "abc");
  expectEval(E, "(symbol->string 'abc)", "\"abc\"");
  expectEval(E, "(string->number \"42\")", "42");
  expectEval(E, "(string->number \"x\")", "#f");
  expectEval(E, "(number->string 42)", "\"42\"");
  expectEval(E, "(string-split \"a,b,,c\" \",\")", "(\"a\" \"b\" \"\" \"c\")");
  expectEval(E, "(string-join '(\"a\" \"b\") \"-\")", "\"a-b\"");
  expectEval(E, "(format \"~a + ~s = ~a\" 1 \"two\" 3)",
             "\"1 + \\\"two\\\" = 3\"");
}

TEST_F(VmCore, VectorsAndBoxes) {
  expectEval(E, "(let ([v (make-vector 3 'x)]) (vector-set! v 1 'y) v)",
             "#(x y x)");
  expectEval(E, "(vector->list #(1 2 3))", "(1 2 3)");
  expectEval(E, "(list->vector '(1 2))", "#(1 2)");
  expectEval(E, "(let ([b (box 1)]) (set-box! b 2) (unbox b))", "2");
}

TEST_F(VmCore, HashTables) {
  expectEval(E, "(define h (make-hash))"
                "(hash-set! h 'a 1) (hash-set! h 'b 2)"
                "(list (hash-ref h 'a) (hash-ref h 'c 'none) (hash-count h))",
             "(1 none 2)");
}

TEST_F(VmCore, OutputAndStringPorts) {
  expectEval(E, "(let ([p (open-output-string)])"
                "  (display \"x=\" p) (write \"y\" p) (display 42 p)"
                "  (get-output-string p))",
             "\"x=\\\"y\\\"42\"");
  expectEval(E, "(with-output-to-string (lambda () (display 'hello)))",
             "\"hello\"");
}

TEST_F(VmCore, Errors) {
  expectError(E, "(car 5)", "car: expected pair");
  expectError(E, "(undefined-var)", "unbound variable");
  expectError(E, "((lambda (x) x) 1 2)", "wrong number of arguments");
  expectError(E, "(vector-ref (vector 1) 5)", "out of range");
  expectError(E, "(1 2)", "application of non-procedure");
  // The engine recovers after an error.
  expectEval(E, "(+ 1 1)", "2");
}

TEST_F(VmCore, DefineSyntaxRule) {
  expectEval(E, "(define-syntax-rule (swap-call f a b) (f b a))"
                "(swap-call - 1 10)",
             "9");
  expectEval(E, "(define-syntax-rule (my-if c t e) (cond [c t] [else e]))"
                "(my-if #f 'x 'y)",
             "y");
}

TEST_F(VmCore, MacroEllipsis) {
  expectEval(E, "(define-syntax-rule (my-list x ...) (list x ...))"
                "(list (my-list) (my-list 1) (my-list 1 2 3))",
             "(() (1) (1 2 3))");
  // Structured sub-patterns: each pair is destructured per repetition.
  expectEval(E, "(define-syntax-rule (swap-each (a b) ...)"
                "  (list (list b a) ...))"
                "(swap-each (1 2) (3 4) (5 6))",
             "((2 1) (4 3) (6 5))");
  // The classic let-from-lambda macro.
  expectEval(E, "(define-syntax-rule (my-let ([v e] ...) body)"
                "  ((lambda (v ...) body) e ...))"
                "(my-let ([x 2] [y 3] [z 7]) (* z (+ x y)))",
             "35");
  // Ellipsis before a fixed suffix.
  expectEval(E, "(define-syntax-rule (but-last x ... last) (list x ...))"
                "(but-last 1 2 3 4)",
             "(1 2 3)");
  // A while loop built from ellipsis + recursion-free expansion.
  expectEval(E, "(define-syntax-rule (while c body ...)"
                "  (let %loop () (when c body ... (%loop))))"
                "(define i (box 0))"
                "(while (< (unbox i) 5) (set-box! i (+ 1 (unbox i))))"
                "(unbox i)",
             "5");
}

TEST_F(VmCore, ApplyForms) {
  expectEval(E, "(apply + '(1 2 3))", "6");
  expectEval(E, "(apply list 1 2 '(3 4))", "(1 2 3 4)");
  expectEval(E, "(apply (lambda (a . r) (cons a r)) '(1 2 3))", "(1 2 3)");
}

// Parameterized sweep: factorial over many inputs (exercises call frames,
// multiplication overflow handling at the top end).
class FactorialSweep : public ::testing::TestWithParam<int> {};

TEST_P(FactorialSweep, Matches) {
  SchemeEngine E;
  int N = GetParam();
  double Expect = 1;
  for (int I = 2; I <= N; ++I)
    Expect *= I;
  std::string Got = E.evalToString(
      "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact " +
      std::to_string(N) + ")");
  ASSERT_TRUE(E.ok());
  EXPECT_DOUBLE_EQ(std::stod(Got), Expect);
}

INSTANTIATE_TEST_SUITE_P(VmCore, FactorialSweep,
                         ::testing::Values(0, 1, 5, 10, 15, 20, 25));

} // namespace
