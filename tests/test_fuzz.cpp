//===- tests/test_fuzz.cpp - Differential fuzzing subsystem ----*- C++ -*-===//
///
/// \file
/// Tests for src/support/fuzz.h: generator determinism, the oracle-safe
/// grammar subset, the engine-matrix comparison, the shrinker and repro
/// pipeline (exercised deterministically via the FuzzLeg::MutateSource
/// hook, which simulates a miscompiling engine), and the VMStats
/// invariant checker. The bounded fixed-seed smoke at the end is the
/// per-PR differential campaign; the nightly soak (soak.yml) runs the
/// same harness for a wall-clock budget instead.
///
//===----------------------------------------------------------------------===//

#include "support/fuzz.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cmk;
using namespace cmk::fuzz;

namespace {

std::vector<std::string> generateSources(uint64_t Seed, int N,
                                         ProgramGen::Options O) {
  ProgramGen G(Seed, O);
  std::vector<std::string> Out;
  for (int I = 0; I < N; ++I)
    Out.push_back(G.next().Source);
  return Out;
}

// --- Generator --------------------------------------------------------------

TEST(FuzzGen, DeterministicForSeed) {
  ProgramGen::Options O;
  std::vector<std::string> A = generateSources(42, 25, O);
  std::vector<std::string> B = generateSources(42, 25, O);
  EXPECT_EQ(A, B);
  std::vector<std::string> C = generateSources(43, 25, O);
  EXPECT_NE(A, C);
}

TEST(FuzzGen, OracleSafeShareRespectsPercent) {
  ProgramGen::Options O;
  O.OracleSafePercent = 100;
  ProgramGen AllOracle(7, O);
  for (int I = 0; I < 20; ++I)
    EXPECT_TRUE(AllOracle.next().OracleSafe);
  O.OracleSafePercent = 0;
  ProgramGen NoneOracle(7, O);
  for (int I = 0; I < 20; ++I)
    EXPECT_FALSE(NoneOracle.next().OracleSafe);
}

TEST(FuzzGen, RenderIsPureFunctionOfTree) {
  ProgramGen G(11, ProgramGen::Options());
  for (int I = 0; I < 10; ++I) {
    FuzzProgram P = G.next();
    ASSERT_NE(P.Root, nullptr);
    ASSERT_EQ(P.Root->Kids.size(), 2u); // Synthetic root holding E1, E2.
    std::string Re = ProgramGen::render(*P.Root->Kids[0], *P.Root->Kids[1],
                                        P.OracleSafe);
    EXPECT_EQ(Re, P.Source);
    std::unique_ptr<GenNode> C = P.Root->clone();
    EXPECT_EQ(C->size(), P.Root->size());
    EXPECT_EQ(ProgramGen::render(*C->Kids[0], *C->Kids[1], P.OracleSafe),
              P.Source);
  }
}

TEST(FuzzGen, GeneratedProgramsEvaluateOnReferenceEngine) {
  // Every generated program must at least be readable and runnable on the
  // reference engine -- errors are legal outcomes, reader failures or
  // hangs are generator bugs. The harness smoke below checks agreement;
  // this pins down basic well-formedness with a tighter loop.
  ProgramGen G(20260807, ProgramGen::Options());
  SchemeEngine E;
  for (int I = 0; I < 40; ++I) {
    FuzzProgram P = G.next();
    EXPECT_FALSE(P.Source.empty());
    E.evalToString(P.Source); // Value or error both fine; must terminate.
  }
}

// --- Matrix assembly --------------------------------------------------------

TEST(FuzzLegs, DefaultMatrixAndLookup) {
  std::vector<FuzzLeg> Legs = defaultLegs(/*IncludeOracle=*/true);
  ASSERT_GE(Legs.size(), 6u);
  EXPECT_EQ(Legs.front().Name, "fused");
  EXPECT_TRUE(Legs.back().IsOracle);
  FuzzLeg L;
  EXPECT_TRUE(legByName("unfused", L));
  EXPECT_FALSE(L.Opts.CompilerOpts.EnablePeephole);
  EXPECT_TRUE(legByName("oracle", L));
  EXPECT_TRUE(L.IsOracle);
  EXPECT_FALSE(legByName("no-such-leg", L));
}

// --- Harness: divergence detection, shrinking, repro ------------------------

/// A harness whose second leg "miscompiles": the mutation rewrites the
/// rendered body `(list E1 E2 (log-out))` to inject an extra element, so
/// every program's value diverges deterministically.
FuzzHarness buggyHarness(HarnessOptions HO) {
  std::vector<FuzzLeg> Legs;
  FuzzLeg Ref, Bad;
  legByName("fused", Ref);
  legByName("unfused", Bad);
  Bad.Name = "unfused+bug";
  Bad.MutateSource = [](const std::string &Src) {
    std::string Out = Src;
    size_t At = Out.rfind("(list ");
    if (At != std::string::npos)
      Out.insert(At + 6, "'injected-bug ");
    return Out;
  };
  Legs.push_back(std::move(Ref));
  Legs.push_back(std::move(Bad));
  return FuzzHarness(std::move(Legs), HO);
}

TEST(FuzzHarness, CatchesInjectedBugAndShrinks) {
  HarnessOptions HO;
  HO.CheckDeterminism = false; // Two-leg toy matrix; keep the test fast.
  FuzzHarness H = buggyHarness(HO);

  // Legacy grammar: these tests exercise the harness mechanics on a
  // pinned seed whose program must keep the injected (list ...) live.
  ProgramGen::Options GO;
  GO.EnableFibers = false;
  ProgramGen G(5, GO);
  FuzzProgram P = G.next();
  Divergence D;
  ASSERT_FALSE(H.checkProgram(P, &D));
  EXPECT_EQ(D.LegA, "fused");
  EXPECT_EQ(D.LegB, "unfused+bug");
  EXPECT_NE(D.ReprA, D.ReprB);
  // The shrinker ran and the result still diverges, is no larger than the
  // original, and is itself renderable source.
  EXPECT_FALSE(D.Source.empty());
  EXPECT_LE(D.Source.size(), D.OriginalSource.size());
  EXPECT_GT(D.ShrinkEvals, 0);
  Divergence D2;
  EXPECT_FALSE(H.reproduce(D.Source, &D2));
}

TEST(FuzzHarness, ShrinkBudgetZeroKeepsOriginal) {
  HarnessOptions HO;
  HO.CheckDeterminism = false;
  HO.ShrinkBudget = 0;
  FuzzHarness H = buggyHarness(HO);
  ProgramGen::Options GO;
  GO.EnableFibers = false;
  ProgramGen G(5, GO);
  FuzzProgram P = G.next();
  Divergence D;
  ASSERT_FALSE(H.checkProgram(P, &D));
  EXPECT_EQ(D.Source, D.OriginalSource);
  EXPECT_EQ(D.ShrinkEvals, 0);
}

TEST(FuzzHarness, WritesReproFileThatRoundTrips) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "cmarks_fuzz_test_repro";
  fs::remove_all(Dir);

  HarnessOptions HO;
  HO.CheckDeterminism = false;
  HO.ReproDir = Dir.string();
  FuzzHarness H = buggyHarness(HO);
  // The injected mutation can land in a discarded subexpression; scan a
  // few programs for one whose value actually changes.
  ProgramGen G(9, ProgramGen::Options());
  Divergence D;
  bool Diverged = false;
  for (int I = 0; I < 10 && !Diverged; ++I)
    Diverged = !H.checkProgram(G.next(), &D);
  ASSERT_TRUE(Diverged);
  ASSERT_FALSE(D.ReproPath.empty());
  ASSERT_TRUE(fs::exists(D.ReproPath));

  std::ifstream In(D.ReproPath);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Contents = Buf.str();
  EXPECT_NE(Contents.find(";; cmarks-fuzz-repro-v1"), std::string::npos);

  // The buggy harness still diverges on the file; a clean matrix agrees.
  Divergence D2;
  EXPECT_FALSE(H.reproduce(Contents, &D2));
  HarnessOptions CleanHO;
  FuzzHarness Clean(defaultLegs(/*IncludeOracle=*/false), CleanHO);
  Divergence D3;
  EXPECT_TRUE(Clean.reproduce(Contents, &D3));
  fs::remove_all(Dir);
}

TEST(FuzzHarness, CampaignStopOnFirst) {
  HarnessOptions HO;
  HO.CheckDeterminism = false;
  HO.ShrinkBudget = 0;
  FuzzHarness H = buggyHarness(HO);
  CampaignStats Stats;
  std::vector<Divergence> Divs;
  bool Clean = H.runCampaign(3, 50, ProgramGen::Options(), Stats, Divs,
                             /*TimeBudgetSec=*/0, /*StopOnFirst=*/true);
  EXPECT_FALSE(Clean);
  EXPECT_EQ(Divs.size(), 1u);
  EXPECT_LT(Stats.Programs, 50);
  EXPECT_EQ(Stats.Divergences, 1);
}

// --- Stats invariants -------------------------------------------------------

TEST(FuzzInvariants, CleanStatsPass) {
  VMStats S;
  EngineOptions EO;
  EXPECT_EQ(checkStatsInvariants(S, EO), "");
}

TEST(FuzzInvariants, ViolationsAreReported) {
  EngineOptions EO;
  {
    VMStats S;
    S.MarkFirstCacheHits = 5; // Hits with zero lookups is impossible.
    EXPECT_NE(checkStatsInvariants(S, EO), "");
  }
  {
    VMStats S;
    S.SegmentAllocs = 3; // Segments without any slots is impossible.
    EXPECT_NE(checkStatsInvariants(S, EO), "");
  }
  {
    VMStats S;
    S.FaultsInjected = 1; // No schedule was armed on harness legs.
    EXPECT_NE(checkStatsInvariants(S, EO), "");
  }
}

// --- Bounded fixed-seed smoke (the per-PR differential campaign) ------------

TEST(FuzzSmoke, FixedSeedCampaignAgrees) {
  // Full matrix including the heap-model oracle. CI additionally runs the
  // larger `cmarks_fuzz` smoke (and the switch-dispatch leg covers the
  // threaded-off axis); this bounded run keeps plain `ctest` meaningful.
  HarnessOptions HO;
  FuzzHarness H(defaultLegs(/*IncludeOracle=*/true), HO);
  CampaignStats Stats;
  std::vector<Divergence> Divs;
  bool Clean = H.runCampaign(20260807, 60, ProgramGen::Options(), Stats,
                             Divs);
  for (const Divergence &D : Divs)
    ADD_FAILURE() << "divergence (" << D.LegA << " vs " << D.LegB
                  << "): " << D.Detail << "\n  " << D.ReprA << "\n  "
                  << D.ReprB << "\n  shrunk: " << D.Source;
  EXPECT_TRUE(Clean);
  EXPECT_EQ(Stats.Programs, 60);
  EXPECT_GT(Stats.OracleChecked, 0);
  EXPECT_GT(Stats.LegRuns, 60 * 6);
}

} // namespace
