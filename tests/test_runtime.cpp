//===- tests/test_runtime.cpp - Values, GC, printer, hash ------*- C++ -*-===//

#include "runtime/equal.h"
#include "runtime/hashtable.h"
#include "runtime/heap.h"
#include "runtime/numbers.h"
#include "runtime/printer.h"

#include <gtest/gtest.h>

using namespace cmk;

namespace {

TEST(Values, FixnumTagging) {
  EXPECT_EQ(Value::fixnum(0).asFixnum(), 0);
  EXPECT_EQ(Value::fixnum(42).asFixnum(), 42);
  EXPECT_EQ(Value::fixnum(-42).asFixnum(), -42);
  EXPECT_EQ(Value::fixnum(FixnumMax).asFixnum(), FixnumMax);
  EXPECT_EQ(Value::fixnum(FixnumMin).asFixnum(), FixnumMin);
  EXPECT_TRUE(Value::fixnum(7).isFixnum());
  EXPECT_FALSE(Value::fixnum(7).isObj());
}

TEST(Values, Immediates) {
  EXPECT_TRUE(Value::nil().isNil());
  EXPECT_TRUE(Value::True().isTrue());
  EXPECT_TRUE(Value::False().isFalse());
  EXPECT_FALSE(Value::False().isTruthy());
  EXPECT_TRUE(Value::fixnum(0).isTruthy()) << "0 is truthy in Scheme";
  EXPECT_TRUE(Value::nil().isTruthy()) << "() is truthy in Scheme";
  EXPECT_TRUE(Value::character('x').isChar());
  EXPECT_EQ(Value::character('x').asChar(), static_cast<uint32_t>('x'));
  EXPECT_TRUE(Value::underflowSentinel().isUnderflowSentinel());
  EXPECT_NE(Value::nil().raw(), Value::voidValue().raw());
}

TEST(Heap, PairsAndInterning) {
  Heap H;
  Value P = H.makePair(Value::fixnum(1), Value::fixnum(2));
  EXPECT_TRUE(P.isPair());
  EXPECT_EQ(car(P).asFixnum(), 1);
  EXPECT_EQ(cdr(P).asFixnum(), 2);

  Value A = H.intern("hello");
  Value B = H.intern("hello");
  Value C = H.intern("world");
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);

  Value G1 = H.gensym("g");
  Value G2 = H.gensym("g");
  EXPECT_FALSE(G1 == G2) << "gensyms are uninterned";
}

TEST(Heap, CollectReclaimsGarbage) {
  Heap H;
  // Allocate a lot of unreachable pairs, then collect.
  for (int I = 0; I < 100000; ++I)
    H.makePair(Value::fixnum(I), Value::nil());
  uint64_t Before = H.stats().BytesAllocated;
  H.collect();
  EXPECT_GT(Before, H.stats().LiveBytesAfterLastGC);
  EXPECT_GE(H.stats().Collections, 1u);
}

TEST(Heap, RootsSurviveCollection) {
  Heap H;
  GCRoot Root(H, H.makePair(Value::fixnum(1), Value::fixnum(2)));
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    H.collect();
    EXPECT_EQ(car(Root.get()).asFixnum(), 1);
    EXPECT_EQ(cdr(Root.get()).asFixnum(), 2);
  }
}

TEST(Heap, RootedValuesSurvive) {
  Heap H;
  RootedValues Roots(H);
  for (int I = 0; I < 100; ++I)
    Roots.push(H.makeString("s" + std::to_string(I)));
  H.collect();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(displayToString(Roots[I]), "s" + std::to_string(I));
}

TEST(Heap, FreedMemoryIsReused) {
  Heap H;
  H.collect();
  uint64_t Live = H.stats().LiveBytesAfterLastGC;
  // Churn: allocate and drop repeatedly; live size must not grow.
  for (int Round = 0; Round < 5; ++Round) {
    for (int I = 0; I < 200000; ++I)
      H.makePair(Value::fixnum(I), Value::nil());
    H.collect();
    EXPECT_LE(H.stats().LiveBytesAfterLastGC, Live + 4096);
  }
}

TEST(Heap, GCPromotesOneShots) {
  Heap H;
  GCRoot K(H, H.makeCont());
  asCont(K.get())->setShot(ContShot::Opportunistic);
  H.collect();
  EXPECT_EQ(asCont(K.get())->shot(), ContShot::Full)
      << "paper section 6: the collector promotes opportunistic one-shots";
  EXPECT_GE(H.stats().OneShotPromotions, 1u);
}

TEST(Numbers, OverflowFallsToFlonum) {
  Heap H;
  Value Big = Value::fixnum(FixnumMax);
  NumResult R = numAdd(H, Big, Value::fixnum(1));
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.V.isFlonum());
  EXPECT_DOUBLE_EQ(asFlonum(R.V)->Val, static_cast<double>(FixnumMax) + 1);
}

TEST(Numbers, MixedArith) {
  Heap H;
  NumResult R = numAdd(H, Value::fixnum(1), H.makeFlonum(0.5));
  ASSERT_TRUE(R.Ok);
  EXPECT_DOUBLE_EQ(asFlonum(R.V)->Val, 1.5);
  EXPECT_FALSE(numAdd(H, Value::fixnum(1), H.intern("x")).Ok);
}

TEST(Numbers, Modulo) {
  Heap H;
  EXPECT_EQ(numModulo(H, Value::fixnum(-7), Value::fixnum(3)).V.asFixnum(), 2);
  EXPECT_EQ(numModulo(H, Value::fixnum(7), Value::fixnum(-3)).V.asFixnum(),
            -2);
  EXPECT_EQ(numRemainder(H, Value::fixnum(-7), Value::fixnum(3)).V.asFixnum(),
            -1);
}

TEST(Equal, Eqv) {
  Heap H;
  EXPECT_TRUE(isEqv(Value::fixnum(3), Value::fixnum(3)));
  EXPECT_TRUE(isEqv(H.makeFlonum(1.5), H.makeFlonum(1.5)));
  EXPECT_FALSE(isEqv(Value::fixnum(1), H.makeFlonum(1.0)))
      << "eqv? distinguishes exact from inexact";
  EXPECT_FALSE(isEqv(H.makeString("a"), H.makeString("a")));
}

TEST(Equal, Structural) {
  Heap H;
  Value A = H.makePair(Value::fixnum(1), H.makeString("x"));
  Value B = H.makePair(Value::fixnum(1), H.makeString("x"));
  EXPECT_TRUE(isEqual(A, B));
  Value V1 = H.makeVector(2, Value::fixnum(9));
  Value V2 = H.makeVector(2, Value::fixnum(9));
  EXPECT_TRUE(isEqual(V1, V2));
  asVector(V2)->Elems[1] = Value::fixnum(8);
  EXPECT_FALSE(isEqual(V1, V2));
}

TEST(Equal, HashConsistency) {
  Heap H;
  Value A = H.makePair(Value::fixnum(1), H.makeString("x"));
  Value B = H.makePair(Value::fixnum(1), H.makeString("x"));
  EXPECT_EQ(equalHash(A), equalHash(B));
  EXPECT_EQ(eqHash(A), eqHash(A));
}

TEST(Printer, WriteVsDisplay) {
  Heap H;
  Value S = H.makeString("hi");
  EXPECT_EQ(writeToString(S), "\"hi\"");
  EXPECT_EQ(displayToString(S), "hi");
  EXPECT_EQ(writeToString(Value::character('a')), "#\\a");
  EXPECT_EQ(displayToString(Value::character('a')), "a");
  Value L = H.makePair(Value::fixnum(1),
                       H.makePair(Value::fixnum(2), Value::nil()));
  EXPECT_EQ(writeToString(L), "(1 2)");
}

TEST(HashTable, EqTable) {
  Heap H;
  GCRoot T(H, H.makeHashTable(false));
  Value K1 = H.intern("k1");
  htSet(H, T.get(), K1, Value::fixnum(10));
  htSet(H, T.get(), H.intern("k2"), Value::fixnum(20));
  EXPECT_EQ(htGet(T.get(), K1, Value::False()).asFixnum(), 10);
  EXPECT_EQ(htCount(T.get()), 2u);
  htSet(H, T.get(), K1, Value::fixnum(11));
  EXPECT_EQ(htGet(T.get(), K1, Value::False()).asFixnum(), 11);
  EXPECT_EQ(htCount(T.get()), 2u);
  EXPECT_TRUE(htDelete(T.get(), K1));
  EXPECT_FALSE(htDelete(T.get(), K1));
  EXPECT_TRUE(htGet(T.get(), K1, Value::False()).isFalse());
}

TEST(HashTable, GrowthAndTombstones) {
  Heap H;
  GCRoot T(H, H.makeHashTable(false));
  std::vector<Value> Keys;
  for (int I = 0; I < 1000; ++I) {
    Value K = H.intern("key" + std::to_string(I));
    htSet(H, T.get(), K, Value::fixnum(I));
  }
  EXPECT_EQ(htCount(T.get()), 1000u);
  for (int I = 0; I < 1000; I += 2)
    htDelete(T.get(), H.intern("key" + std::to_string(I)));
  EXPECT_EQ(htCount(T.get()), 500u);
  for (int I = 1; I < 1000; I += 2)
    EXPECT_EQ(htGet(T.get(), H.intern("key" + std::to_string(I)),
                    Value::False())
                  .asFixnum(),
              I);
  // Reinsert into tombstoned slots.
  for (int I = 0; I < 1000; I += 2)
    htSet(H, T.get(), H.intern("key" + std::to_string(I)),
          Value::fixnum(-I));
  EXPECT_EQ(htCount(T.get()), 1000u);
}

TEST(HashTable, EqualTable) {
  Heap H;
  GCRoot T(H, H.makeHashTable(true));
  htSet(H, T.get(), H.makeString("alpha"), Value::fixnum(1));
  EXPECT_EQ(htGet(T.get(), H.makeString("alpha"), Value::False()).asFixnum(),
            1)
      << "equal? table must match distinct but equal strings";
}

} // namespace
