//===- tests/test_stats.cpp - Event-counter subsystem ----------*- C++ -*-===//
///
/// \file
/// Asserts counter deltas for programs whose event counts the paper
/// predicts exactly: tail-position with-continuation-mark loops reify
/// once (7.2), the "no 1cc" ablation never fuses on underflow (figure 6),
/// and deep continuation-mark-set-first chains converge to cache hits via
/// the N/2 path compression (7.5). Also covers the (runtime-stats)
/// introspection primitive and the engine-level stats API.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "support/stats.h"

using namespace cmk;

namespace {

/// Evaluates Setup, resets the counters, evaluates Run, and returns the
/// accumulated deltas.
VMStats runCounted(SchemeEngine &E, const std::string &Setup,
                   const std::string &Run) {
  if (!Setup.empty())
    E.evalOrDie(Setup);
  E.resetStats();
  E.evalOrDie(Run);
  return E.stats();
}

TEST(Stats, TailWcmLoopReifiesExactlyOnce) {
  // Paper 7.2, first category: a with-continuation-mark in tail position
  // reifies the current frame once; every later iteration finds the frame
  // already reified and only swaps the attachment.
  SchemeEngine E;
  VMStats S = runCounted(
      E,
      "(define (loop i)\n"
      "  (if (zero? i) 0 (with-continuation-mark 'k i (loop (- i 1)))))\n"
      "(define (go) (+ 0 (loop 1000)))",
      "(go)");
  EXPECT_EQ(S.Reifications, 1u);
  EXPECT_EQ(S.ReifyTailFrame, 1u);
  if (statsDetailEnabled()) {
    // One mark-frame create for the first mark, then 999 rebinds of the
    // same key on the same conceptual frame.
    EXPECT_EQ(S.MarkFrameCreates, 1u);
    EXPECT_EQ(S.MarkFrameRebinds, 999u);
    EXPECT_EQ(S.MarkFrameExtends, 0u);
  }
}

TEST(Stats, NonTailWcmUsesCallAttach) {
  // Paper 7.2, second category: a non-tail wcm around a call reifies at
  // the pending frame via the CallAttach convention.
  SchemeEngine E;
  VMStats S = runCounted(E, "(define (f) 7)",
                         "(let loop ([i 100] [acc 0])\n"
                         "  (if (zero? i) acc\n"
                         "      (loop (- i 1)\n"
                         "            (+ acc (with-continuation-mark 'k i\n"
                         "                     (f))))))");
  EXPECT_GE(S.ReifyForAttachCall, 100u);
  // Each CallAttach return fuses the opportunistic split back (paper 6).
  EXPECT_GE(S.UnderflowFusions, 100u);
  EXPECT_LE(S.UnderflowCopies, 5u);
}

TEST(Stats, No1ccVariantRecordsZeroFusions) {
  // Figure 6 "no 1cc": without opportunistic one-shots every underflow
  // must copy, and the fusion counter stays exactly zero.
  std::string Deep =
      "(define (deep n)\n"
      "  (if (zero? n) 0\n"
      "      (with-continuation-mark 'pad n (+ 0 (deep (- n 1))))))";
  SchemeEngine No1cc(EngineVariant::No1cc);
  VMStats SNo = runCounted(No1cc, Deep, "(deep 200)");
  EXPECT_EQ(SNo.UnderflowFusions, 0u);
  EXPECT_GE(SNo.UnderflowCopies, 200u);

  SchemeEngine Builtin;
  VMStats SB = runCounted(Builtin, Deep, "(deep 200)");
  EXPECT_GE(SB.UnderflowFusions, 190u);
  EXPECT_LE(SB.UnderflowCopies, 10u);
}

TEST(Stats, MarkFirstCacheConvergesOnDeepChains) {
  if (!statsDetailEnabled())
    GTEST_SKIP() << "detail tier compiled out (CMARKS_STATS=0)";
  // Paper 7.5: repeated continuation-mark-set-first queries over a deep
  // chain install a cache entry at depth N/2, so hits grow with the query
  // count while misses stay bounded (only the first walk misses).
  SchemeEngine E;
  VMStats S = runCounted(
      E,
      "(define (probe reps)\n"
      "  (let lp ([j reps] [acc 0])\n"
      "    (if (zero? j) acc\n"
      "        (lp (- j 1) (+ acc (continuation-mark-set-first #f 'k 0))))))\n"
      "(define (pad thunk n)\n"
      "  (if (zero? n) (thunk)\n"
      "      (with-continuation-mark 'pad n (+ 0 (pad thunk (- n 1))))))",
      "(with-continuation-mark 'k 42\n"
      "  (+ 0 (pad (lambda () (probe 50)) 100)))");
  EXPECT_EQ(S.MarkFirstLookups, 50u);
  EXPECT_GE(S.MarkFirstCacheHits, 45u);
  EXPECT_LE(S.MarkFirstCacheMisses, 5u);
  EXPECT_GE(S.MarkFirstCacheInstalls, 1u);
  // Path compression: the 50 deep lookups walk far fewer than 50 * depth
  // cells (the first walks ~100, then ~50, ~25, ... then O(1)).
  EXPECT_LT(S.MarkFirstCellsWalked, 600u);
  EXPECT_GT(S.MarkFirstCellsWalked, 100u);
}

TEST(Stats, CaptureAttributionAndPromotions) {
  SchemeEngine E;
  VMStats S = runCounted(
      E, "",
      "(let loop ([i 50] [acc 0])\n"
      "  (if (zero? i) acc\n"
      "      (loop (- i 1)\n"
      "            (+ acc (call/cc (lambda (k) 1))))))");
  EXPECT_GE(S.ContinuationCaptures, 50u);
  EXPECT_GE(S.ReifyForCapture, 1u);
  EXPECT_LE(S.ReifyForCapture, S.Reifications);
}

TEST(Stats, SegmentAccountingOnDeepRecursion) {
  // Deep non-tail recursion overflows segments; each overflow splits the
  // stack and allocates a fresh segment.
  EngineOptions Opts;
  Opts.VmCfg.SegmentSlots = 512;
  SchemeEngine E(Opts);
  VMStats S = runCounted(
      E,
      "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))",
      "(deep 5000)");
  EXPECT_GT(S.SegmentOverflows, 10u);
  EXPECT_GT(S.SegmentAllocs, 10u);
  EXPECT_GT(S.SegmentSlotsAllocated, S.SegmentAllocs);
}

TEST(Stats, RuntimeStatsPrimitiveReturnsAlist) {
  SchemeEngine E;
  expectEval(E, "(pair? (runtime-stats))", "#t");
  expectEval(E, "(pair? (assq 'underflow-fusions (runtime-stats)))", "#t");
  expectEval(E, "(pair? (assq 'reify-tail-frame (runtime-stats)))", "#t");
  expectEval(E, "(pair? (assq 'gc-collections (runtime-stats)))", "#t");
  // Counters move: deep recursion must bump underflow-copies (the alist
  // reflects the live counters, not a snapshot).
  expectEval(E,
             "(begin\n"
             "  (define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))\n"
             "  (define before (cdr (assq 'reifications (runtime-stats))))\n"
             "  (call/cc (lambda (k) (k 1)))\n"
             "  (>= (cdr (assq 'reifications (runtime-stats))) before))",
             "#t");
}

TEST(Stats, RuntimeStatsResetZeroesCounters) {
  SchemeEngine E;
  E.evalOrDie("(call/cc (lambda (k) (k 1)))");
  EXPECT_GT(E.stats().ContinuationCaptures, 0u);
  expectEval(E,
             "(begin (runtime-stats-reset!)\n"
             "       (cdr (assq 'continuation-captures (runtime-stats))))",
             "0");
}

TEST(Stats, DeltaIsFieldwise) {
  VMStats A;
  A.Reifications = 10;
  A.UnderflowFusions = 7;
  A.MarkFirstCacheHits = 3;
  VMStats B = A;
  B.Reifications = 25;
  B.MarkFirstCacheHits = 9;
  VMStats D = B.delta(A);
  EXPECT_EQ(D.Reifications, 15u);
  EXPECT_EQ(D.UnderflowFusions, 0u);
  EXPECT_EQ(D.MarkFirstCacheHits, 6u);
}

TEST(Stats, CounterTableNamesAreUniqueAndNonEmpty) {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  ASSERT_GT(N, 15);
  for (int I = 0; I < N; ++I) {
    ASSERT_NE(Table[I].Name, nullptr);
    for (int J = I + 1; J < N; ++J)
      EXPECT_STRNE(Table[I].Name, Table[J].Name);
  }
}

} // namespace
