//===- tests/test_programs.cpp - Benchmark program integration -*- C++ -*-===//
///
/// \file
/// Runs every benchmark workload (classic suite, attachment/mark micros,
/// delimited-control triple, applications) at reduced size, checking
/// results and cross-variant agreement. This keeps the benchmark corpus
/// honest: a miscompile in any variant shows up here, not as a silently
/// wrong timing.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "../bench/programs/apps.h"
#include "../bench/programs/classics.h"
#include "../bench/programs/control.h"
#include "../bench/programs/micro_attachments.h"
#include "../bench/programs/micro_marks.h"
#include "lib/prelude.h"

using namespace cmk;
using namespace cmkbench;

namespace {

// --- Classic suite -------------------------------------------------------------

class ClassicPrograms : public ::testing::TestWithParam<int> {};

TEST_P(ClassicPrograms, CorrectOnAllCompilerVariants) {
  int Count = 0;
  const ClassicBenchmark &B = classicBenchmarks(Count)[GetParam()];
  char Run[128];
  std::snprintf(Run, sizeof(Run), B.RunTemplate, B.DefaultIters / 20 + 1);

  std::string Expected;
  for (EngineVariant V : {EngineVariant::Builtin, EngineVariant::Unmod,
                          EngineVariant::NoOpt}) {
    SchemeEngine E(V);
    E.evalOrDie(B.Source);
    std::string Got = E.evalToString(Run);
    ASSERT_TRUE(E.ok()) << B.Name << ": " << E.lastError();
    if (Expected.empty())
      Expected = Got;
    EXPECT_EQ(Got, Expected) << B.Name << " diverges across variants";
  }
}

int classicCount() {
  int Count = 0;
  classicBenchmarks(Count);
  return Count;
}

INSTANTIATE_TEST_SUITE_P(Programs, ClassicPrograms,
                         ::testing::Range(0, classicCount()),
                         [](const ::testing::TestParamInfo<int> &I) {
                           int Count = 0;
                           std::string N =
                               classicBenchmarks(Count)[I.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

// --- Attachment micros: builtin vs imitation ------------------------------------

class AttachmentPrograms : public ::testing::TestWithParam<int> {};

TEST_P(AttachmentPrograms, BuiltinAndImitationAgree) {
  int Count = 0;
  const AttachmentMicro &B = attachmentMicros(Count)[GetParam()];
  std::string Run =
      "(bench-entry " + std::to_string(B.DefaultN / 50 + 1) + ")";

  SchemeEngine Builtin;
  Builtin.evalOrDie(substituteAttachmentOps(B.Source, true));
  std::string G1 = Builtin.evalToString(Run);
  ASSERT_TRUE(Builtin.ok()) << B.Name << ": " << Builtin.lastError();

  SchemeEngine Imitate;
  Imitate.evalOrDie(imitationSource());
  Imitate.evalOrDie(substituteAttachmentOps(B.Source, false));
  std::string G2 = Imitate.evalToString(Run);
  ASSERT_TRUE(Imitate.ok()) << B.Name << ": " << Imitate.lastError();

  EXPECT_EQ(G1, G2) << B.Name;
}

int attachmentCount() {
  int Count = 0;
  attachmentMicros(Count);
  return Count;
}

INSTANTIATE_TEST_SUITE_P(Programs, AttachmentPrograms,
                         ::testing::Range(0, attachmentCount()),
                         [](const ::testing::TestParamInfo<int> &I) {
                           int Count = 0;
                           std::string N =
                               attachmentMicros(Count)[I.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

// --- Mark micros: attachments vs mark stack --------------------------------------

class MarkPrograms : public ::testing::TestWithParam<int> {};

TEST_P(MarkPrograms, AttachmentsAndMarkStackAgree) {
  int Count = 0;
  const MarkMicro &B = markMicros(Count)[GetParam()];
  std::string Run =
      "(bench-entry " + std::to_string(B.DefaultN / 50 + 1) + ")";

  SchemeEngine CS(EngineVariant::Builtin);
  CS.evalOrDie(B.Source);
  std::string G1 = CS.evalToString(Run);
  ASSERT_TRUE(CS.ok()) << B.Name << ": " << CS.lastError();

  SchemeEngine Old(EngineVariant::MarkStack);
  Old.evalOrDie(B.Source);
  std::string G2 = Old.evalToString(Run);
  ASSERT_TRUE(Old.ok()) << B.Name << ": " << Old.lastError();

  EXPECT_EQ(G1, G2) << B.Name;
}

int markCount() {
  int Count = 0;
  markMicros(Count);
  return Count;
}

INSTANTIATE_TEST_SUITE_P(Programs, MarkPrograms,
                         ::testing::Range(0, markCount()),
                         [](const ::testing::TestParamInfo<int> &I) {
                           int Count = 0;
                           std::string N = markMicros(Count)[I.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

// --- Triple encodings --------------------------------------------------------------

TEST(TriplePrograms, AllEncodingsAgree) {
  SchemeEngine E;
  E.evalOrDie(tripleNativeSource());
  E.evalOrDie(tripleDpjsSource());
  E.evalOrDie(tripleKSource());
  for (int N : {0, 1, 7, 30}) {
    std::string Native =
        E.evalToString("(triple-native " + std::to_string(N) + ")");
    EXPECT_EQ(E.evalToString("(triple-dpjs " + std::to_string(N) + ")"),
              Native)
        << "n = " << N;
    EXPECT_EQ(E.evalToString("(triple-k " + std::to_string(N) + ")"), Native)
        << "n = " << N;
    ASSERT_TRUE(E.ok()) << E.lastError();
  }
  // Reference: partitions of 30 into 3 non-decreasing nonnegative parts.
  EXPECT_EQ(E.evalToString("(triple-native 30)"), "91");
}

TEST(TriplePrograms, CtakIsTak) {
  SchemeEngine E;
  E.evalOrDie(ctakSource());
  E.evalOrDie(ctakRawSource());
  EXPECT_EQ(E.evalToString("(ctak 7 4 2)"), "4");
  EXPECT_EQ(E.evalToString("(ctak-raw 7 4 2)"), "4");
  EXPECT_EQ(E.evalToString("(ctak 12 6 3)"), "4");
}

// --- Applications --------------------------------------------------------------------

class AppPrograms : public ::testing::TestWithParam<int> {};

TEST_P(AppPrograms, CorrectAcrossVariants) {
  int Count = 0;
  const AppBenchmark &B = appBenchmarks(Count)[GetParam()];
  std::string Run = "(app-main " + std::to_string(B.DefaultN / 20 + 1) + ")";

  std::string Expected;
  for (EngineVariant V : {EngineVariant::Builtin, EngineVariant::Imitate,
                          EngineVariant::NoOpt, EngineVariant::No1cc}) {
    SchemeEngine E(V);
    E.evalOrDie(B.Source);
    std::string Got = E.evalToString(Run);
    ASSERT_TRUE(E.ok()) << B.Name << ": " << E.lastError();
    if (Expected.empty())
      Expected = Got;
    EXPECT_EQ(Got, Expected) << B.Name << " diverges across variants";
  }
}

int appCount() {
  int Count = 0;
  appBenchmarks(Count);
  return Count;
}

INSTANTIATE_TEST_SUITE_P(Programs, AppPrograms,
                         ::testing::Range(0, appCount()),
                         [](const ::testing::TestParamInfo<int> &I) {
                           int Count = 0;
                           std::string N = appBenchmarks(Count)[I.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

} // namespace
