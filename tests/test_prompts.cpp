//===- tests/test_prompts.cpp - Delimited control ---------------*- C++ -*-===//

#include "test_helpers.h"

using namespace cmk;

namespace {

class Prompts : public ::testing::Test {
protected:
  SchemeEngine E;
};

TEST_F(Prompts, NormalReturnThroughPrompt) {
  expectEval(E,
             "(call-with-continuation-prompt (lambda () (+ 1 2))"
             "  (default-continuation-prompt-tag) (lambda (v) 'aborted))",
             "3");
}

TEST_F(Prompts, AbortInvokesHandler) {
  expectEval(E,
             "(call-with-continuation-prompt"
             "  (lambda () (+ 1 (abort-current-continuation"
             "                   (default-continuation-prompt-tag) 42)))"
             "  (default-continuation-prompt-tag)"
             "  (lambda (v) (list 'aborted v)))",
             "(aborted 42)");
}

TEST_F(Prompts, HandlerRunsInPromptContinuation) {
  expectEval(E,
             "(cons 'outer"
             "  (call-with-continuation-prompt"
             "    (lambda () (abort-current-continuation"
             "                (default-continuation-prompt-tag) 1))"
             "    (default-continuation-prompt-tag)"
             "    (lambda (v) (+ v 10))))",
             "(outer . 11)");
}

TEST_F(Prompts, TagsSelectPrompt) {
  expectEval(E,
             "(define t1 (make-continuation-prompt-tag 'one))"
             "(define t2 (make-continuation-prompt-tag 'two))"
             "(call-with-continuation-prompt"
             "  (lambda ()"
             "    (call-with-continuation-prompt"
             "      (lambda () (abort-current-continuation t1 'x))"
             "      t2"
             "      (lambda (v) 'inner-caught)))"
             "  t1"
             "  (lambda (v) (list 'outer-caught v)))",
             "(outer-caught x)");
}

TEST_F(Prompts, AbortWithNoPromptFails) {
  expectError(E,
              "(abort-current-continuation (make-continuation-prompt-tag) 1)",
              "no matching prompt");
}

TEST_F(Prompts, PromptAvailable) {
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(list (call-with-continuation-prompt"
             "        (lambda () (continuation-prompt-available? t))"
             "        t (lambda (v) v))"
             "      (continuation-prompt-available? t))",
             "(#t #f)");
}

TEST_F(Prompts, AbortUnwindsWinders) {
  expectEval(E,
             "(define out '())"
             "(define (note x) (set! out (cons x out)))"
             "(define t (make-continuation-prompt-tag))"
             "(call-with-continuation-prompt"
             "  (lambda ()"
             "    (dynamic-wind (lambda () (note 'in))"
             "                  (lambda () (abort-current-continuation t 'gone))"
             "                  (lambda () (note 'out))))"
             "  t (lambda (v) (note (list 'handler v))))"
             "(reverse out)",
             "(in out (handler gone))");
}

TEST_F(Prompts, ComposableBasic) {
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(define saved #f)"
             "(define first-run"
             "  (call-with-continuation-prompt"
             "    (lambda ()"
             "      (+ 1 (call-with-composable-continuation"
             "            (lambda (k) (set! saved k) 10) t)))"
             "    t (lambda (v) v)))"
             "(list first-run (saved 100) (saved (saved 1000)))",
             "(11 101 1002)");
}

TEST_F(Prompts, ComposableIsComposable) {
  // Applying the captured continuation does not abort: it extends the
  // current continuation. The continuation is extracted by aborting.
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(define k2"
             "  (call-with-continuation-prompt"
             "    (lambda ()"
             "      (* 2 (call-with-composable-continuation"
             "            (lambda (k) (abort-current-continuation t k)) t)))"
             "    t (lambda (v) v)))"
             "(+ 1 (k2 20))",
             "41");
}

TEST_F(Prompts, ComposableSplicesMarks) {
  // Section 2.3: delimited continuations capture and splice mark chains.
  // The captured context calls its argument, so the probe runs inside the
  // spliced frames and must see both the captured and the outer mark.
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(define k1"
             "  (call-with-continuation-prompt"
             "    (lambda ()"
             "      (with-continuation-mark 'h 'captured"
             "        (car (list"
             "          ((call-with-composable-continuation"
             "            (lambda (k) (abort-current-continuation t k)) t))))))"
             "    t (lambda (v) v)))"
             "(define (probe) (continuation-mark-set->list"
             "                 (current-continuation-marks) 'h))"
             "(with-continuation-mark 'h 'outer"
             "  (car (list (k1 probe))))",
             "(captured outer)");
}

TEST_F(Prompts, TripleStyleSearch) {
  // A miniature of the paper's triple benchmark: nondeterministic choice
  // via composable continuations and a failure prompt.
  const char *Prog = R"(
(define choice-tag (make-continuation-prompt-tag 'choice))
(define (fail) (abort-current-continuation choice-tag 'fail))
(define (choose-from lst)
  (call-with-composable-continuation
   (lambda (k)
     (abort-current-continuation choice-tag
       (lambda ()
         (let loop ([l lst])
           (if (null? l)
               'fail
               (let ([r (call-with-continuation-prompt
                         (lambda () (k (car l)))
                         choice-tag
                         (lambda (v) (if (procedure? v) (v) v)))])
                 (if (eq? r 'fail) (loop (cdr l)) r)))))))
   choice-tag))
(define (solve)
  (call-with-continuation-prompt
   (lambda ()
     (let ([a (choose-from '(1 2 3 4))])
       (let ([b (choose-from '(1 2 3 4))])
         (if (= (+ a b) 7) (list a b) (fail)))))
   choice-tag
   (lambda (v) (if (procedure? v) (v) v))))
(solve)
)";
  expectEval(E, Prog, "(3 4)");
}

TEST_F(Prompts, GeneratorsYieldInOrder) {
  expectEval(E,
             "(define g (make-generator"
             "  (lambda (yield)"
             "    (yield 'a) (yield 'b) (yield 'c) 'end)))"
             "(list (g) (g) (g) (g) (g))",
             "(a b c end end)");
}

TEST_F(Prompts, GeneratorsInterleave) {
  expectEval(E,
             "(define g1 (make-generator (lambda (y) (y 1) (y 2) 'e1)))"
             "(define g2 (make-generator (lambda (y) (y 10) (y 20) 'e2)))"
             "(list (g1) (g2) (g1) (g2) (g1) (g2))",
             "(1 10 2 20 e1 e2)");
}

TEST_F(Prompts, GeneratorFibonacci) {
  expectEval(E,
             "(define fibs (make-generator"
             "  (lambda (yield)"
             "    (let loop ([a 0] [b 1])"
             "      (yield a)"
             "      (loop b (+ a b))))))"
             "(map (lambda (i) (fibs)) (iota 10))",
             "(0 1 1 2 3 5 8 13 21 34)");
}

TEST_F(Prompts, MarksDelimitedByPromptTag) {
  // current-continuation-marks with a tag stops at the matching prompt:
  // the outer mark is invisible through it.
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(with-continuation-mark 'k 'outside"
             "  (car (list"
             "    (call-with-continuation-prompt"
             "      (lambda ()"
             "        (with-continuation-mark 'k 'inside"
             "          (car (list"
             "            (list (continuation-mark-set->list"
             "                   (current-continuation-marks t) 'k)"
             "                  (continuation-mark-set->list"
             "                   (current-continuation-marks) 'k)"
             "                  (continuation-mark-set-first"
             "                   (current-continuation-marks t) 'unset 'dflt))))))"
             "      t (lambda (v) v)))))",
             "((inside) (inside outside) dflt)");
}

TEST_F(Prompts, DelimitedMarksWithNoMatchingTagError) {
  expectError(E,
              "(current-continuation-marks (make-continuation-prompt-tag))",
              "no prompt with the given tag");
}

TEST_F(Prompts, NestedPromptsSameTagInnermostWins) {
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(call-with-continuation-prompt"
             "  (lambda ()"
             "    (list 'outer"
             "      (call-with-continuation-prompt"
             "        (lambda () (abort-current-continuation t 'v))"
             "        t (lambda (v) (list 'inner v)))))"
             "  t (lambda (v) (list 'wrong v)))",
             "(outer (inner v))");
}

// A composable continuation captured inside a dynamic-wind extent must
// re-enter that extent (run the before thunk, push the winder, run the
// after thunk on exit) on every application — not just replay the frames.
// This was a real bug found by the differential fuzzer: applying such a
// continuation used to fail with "#%pop-winder: no winders" because the
// spliced frames referenced winders that were never re-established.
TEST_F(Prompts, ComposableReentryRunsDynamicWindExtents) {
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(define trace '())"
             "(define (note x) (set! trace (cons x trace)))"
             "(define k"
             "  (call-with-continuation-prompt"
             "    (lambda ()"
             "      (dynamic-wind"
             "        (lambda () (note 'before))"
             "        (lambda ()"
             "          (+ 1 (call-with-composable-continuation"
             "                 (lambda (c) (abort-current-continuation t c))"
             "                 t)))"
             "        (lambda () (note 'after))))"
             "    t (lambda (v) v)))"
             "(list (k 1) (k 10) (reverse trace))",
             "(2 11 (before after before after before after))");
}

// Marks captured in a composable continuation splice onto the marks in
// force at the application point: the observer inside the re-instated
// extent sees its own mark first, then the application site's mark
// (paper section 2.3).
TEST_F(Prompts, ComposableSpliceRebasesMarksAtApplication) {
  expectEval(E,
             "(define t (make-continuation-prompt-tag))"
             "(define k"
             "  (call-with-continuation-prompt"
             "    (lambda ()"
             "      (with-continuation-mark 'key 'in-extent"
             "        (car (list"
             "          (begin"
             "            (call-with-composable-continuation"
             "              (lambda (c) (abort-current-continuation t c))"
             "              t)"
             "            (continuation-mark-set->list"
             "             (current-continuation-marks) 'key))))))"
             "    t (lambda (v) v)))"
             "(with-continuation-mark 'key 'outer"
             "  (car (list (k 'ignored))))",
             "(in-extent outer)");
}

// A prompt with a non-default tag does not hide marks from an observer
// that walks the default tag's extent: continuation-mark-set-first still
// finds the mark established outside the prompt.
TEST_F(Prompts, MarkFirstSeesOuterMarkAcrossPromptBoundary) {
  expectEval(E,
             "(define t2 (make-continuation-prompt-tag))"
             "(with-continuation-mark 'key 'outer"
             "  (car (list"
             "    (call-with-continuation-prompt"
             "      (lambda () (continuation-mark-set-first #f 'key 'none))"
             "      t2))))",
             "outer");
}

} // namespace
