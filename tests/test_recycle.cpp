//===- tests/test_recycle.cpp - Segment recycling + nursery ----*- C++ -*-===//
//
// The recycling allocator (DESIGN.md §15): dead stack segments return to a
// per-engine size-classed pool instead of waiting for the sweep, the
// heap-frames strategy stops paying a fresh segment allocation per call
// AND per return (the 2x double-alloc bug), pooled memory stays inside the
// PR 3 byte budgets, failed runs hand their condemned segments back, and
// the mark-frame/pair nursery rewinds cheaply when a block dies young.
//
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "support/stats.h"

using namespace cmk;

namespace {

/// Evaluates Setup, resets the counters, evaluates Run, and returns the
/// accumulated deltas.
VMStats runCounted(SchemeEngine &E, const std::string &Setup,
                   const std::string &Run) {
  if (!Setup.empty())
    E.evalOrDie(Setup);
  E.resetStats();
  E.evalOrDie(Run);
  return E.stats();
}

/// Deep non-tail recursion repeated to steady state: every call overflows
/// in heap-frame mode and every return underflow-copies, so this is the
/// workload the double-alloc bug hit hardest.
const char *deepChurn() {
  return "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))\n"
         "(define (churn reps n)\n"
         "  (if (zero? reps) 'done (begin (deep n) (churn (- reps 1) n))))";
}

// ------------------------------------------------ the double-alloc bugfix --

TEST(Recycle, HeapFramesStopsPayingTwoAllocsPerCall) {
  // Regression test for the heap-frames 2x segment-alloc bug: the call
  // overflow allocated one segment and the return's underflow copy
  // allocated another, both dying immediately to GC (BENCH_ctak showed
  // segment-allocs ~= 2x segment-overflows). With recycling, steady-state
  // churn serves nearly every request from the pool.
  SchemeEngine E(EngineVariant::HeapFrames);
  VMStats S = runCounted(E, deepChurn(), "(churn 20 2000)");
  EXPECT_GT(S.SegmentOverflows, 40000u);
  // Far fewer fresh allocations than overflows (was ~2x MORE than
  // overflows); the warmup transient is the only fresh-alloc source.
  EXPECT_LT(S.SegmentAllocs * 10, S.SegmentOverflows);
  // The pool serves the bulk: one recycle per overflow-ish.
  EXPECT_GT(S.SegmentRecycles, S.SegmentOverflows / 2);
}

TEST(Recycle, No1ccUnderflowCopiesRecycleVacatedSegments) {
  // The "no 1cc" ablation never fuses, so every underflow copies: the
  // segment vacated by each copy has no record referencing it and must
  // rejoin the pool (the record's own source segment stays pinned — all
  // records are Full in this variant).
  EngineOptions Opts = EngineOptions::forVariant(EngineVariant::No1cc);
  Opts.VmCfg.SegmentSlots = 512;
  SchemeEngine E(Opts);
  VMStats S = runCounted(E, deepChurn(), "(churn 20 5000)");
  EXPECT_GT(S.SegmentOverflows, 100u);
  EXPECT_GT(S.UnderflowCopies, 100u);
  EXPECT_GT(S.SegmentRecycles, S.UnderflowCopies / 3);
  // Overflow segments are pinned by their Full records (by design), so
  // fresh allocations track overflows — but the restore-segment cycle must
  // not add a second fresh allocation per copy on top.
  EXPECT_LT(S.SegmentAllocs, S.SegmentOverflows + S.UnderflowCopies / 2);
}

// ------------------------------------------------------- differential runs --

TEST(Recycle, RecyclingIsSemanticallyInvisible) {
  // Same program, recycling on vs off: identical results and identical
  // semantic counters. Only the allocation-path counters may differ.
  const char *Run = "(churn 10 3000)";
  SchemeEngine On(EngineVariant::HeapFrames);
  VMStats SOn = runCounted(On, deepChurn(), Run);

  EngineOptions Off = EngineOptions::forVariant(EngineVariant::HeapFrames);
  Off.VmCfg.EnableSegmentRecycling = false;
  SchemeEngine EOff(Off);
  VMStats SOff = runCounted(EOff, deepChurn(), Run);

  EXPECT_EQ(SOff.SegmentRecycles, 0u);
  EXPECT_GT(SOn.SegmentRecycles, 0u);
  EXPECT_EQ(SOn.Reifications, SOff.Reifications);
  EXPECT_EQ(SOn.SegmentOverflows, SOff.SegmentOverflows);
  EXPECT_EQ(SOn.UnderflowFusions, SOff.UnderflowFusions);
  EXPECT_EQ(SOn.UnderflowCopies, SOff.UnderflowCopies);
  EXPECT_EQ(SOn.ContinuationCaptures, SOff.ContinuationCaptures);
  // The disabled leg pays full freight on allocations.
  EXPECT_GT(SOff.SegmentAllocs, SOn.SegmentAllocs);
}

TEST(Recycle, FullContinuationsSurviveRecycling) {
  // A captured (promoted-to-Full) continuation pins its segments: applying
  // it repeatedly after heavy churn must still see intact frames.
  SchemeEngine E(EngineVariant::HeapFrames);
  expectEval(E,
             "(define k #f)\n"
             "(define (deep n)\n"
             "  (if (zero? n)\n"
             "      (call/cc (lambda (c) (set! k c) 0))\n"
             "      (+ 1 (deep (- n 1)))))\n"
             "(define (churn n) (if (zero? n) 0 (+ 1 (churn (- n 1)))))\n"
             "(let ([first (deep 200)])\n"
             "  (churn 5000)\n"
             "  (if (< first 1000) (k 800) first))",
             "1000");
}

// ----------------------------------------------------- pool lifecycle/gauge --

TEST(Recycle, PoolGaugeAndExplicitRelease) {
  SchemeEngine E;
  runCounted(E, deepChurn(), "(churn 5 5000)");
  // Churn leaves segments parked in the pool; the gauges agree.
  EXPECT_GT(E.heap().pooledSegmentCount(), 0u);
  EXPECT_GT(E.heap().pooledSegmentBytes(), 0u);
  EXPECT_LE(E.heap().pooledSegmentBytes(), E.heap().bytesInUse());

  // Disabling recycling drains the pool immediately (and the freed bytes
  // leave the committed-bytes gauge).
  uint64_t Before = E.heap().bytesInUse();
  uint64_t Pooled = E.heap().pooledSegmentBytes();
  E.heap().setSegmentRecycling(false);
  EXPECT_EQ(E.heap().pooledSegmentCount(), 0u);
  EXPECT_EQ(E.heap().pooledSegmentBytes(), 0u);
  EXPECT_EQ(E.heap().bytesInUse(), Before - Pooled);

  // And the engine still evaluates correctly with the pool gone.
  E.heap().setSegmentRecycling(true);
  expectEval(E, "(deep 3000)", "3000");
}

TEST(Recycle, FailedRunReturnsCondemnedSegmentsToPool) {
  // A run that dies on the stack-segment limit leaves a whole budget's
  // worth of condemned segments behind; releaseRunState detaches them
  // (including the abandoned pending call) so the next collection returns
  // every one to the pool or the OS — LiveSegments converges instead of
  // stranding until engine teardown.
  EngineOptions Opts;
  Opts.VmCfg.Limits.MaxLiveSegments = 16;
  Opts.VmCfg.Limits.FuelInterval = 256;
  SchemeEngine E(Opts);
  E.eval("(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))\n"
         "(deep 10000000)");
  ASSERT_FALSE(E.ok());
  E.heap().collect();
  // Everything the dead run held is gone; only the handful of segments
  // reachable from surviving globals/records may remain.
  EXPECT_LE(E.heap().liveStackSegments(), 16u);
  // The engine is fully reusable.
  expectEval(E, "(deep 100)", "100");
}

TEST(Recycle, PooledBytesStayInsideHeapBudget) {
  // Governance invariant: pooled-but-free chunks still count against the
  // byte budget. A budgeted engine cycling segments must neither trip
  // (the pool is released under pressure before the trip escalates) nor
  // grow bytesInUse past budget + headroom.
  EngineOptions Opts;
  Opts.VmCfg.Limits.HeapBytes = 48u << 20;
  Opts.VmCfg.Limits.FuelInterval = 256;
  SchemeEngine E(Opts);
  E.evalOrDie(deepChurn());
  for (int I = 0; I < 5; ++I) {
    E.eval("(churn 3 5000)");
    EXPECT_TRUE(E.ok()) << E.lastError();
  }
  EXPECT_LE(E.heap().pooledSegmentBytes(), E.heap().bytesInUse());
}

// ------------------------------------------------------------------ nursery --

TEST(Recycle, NurseryPairsSurviveCollection) {
  // Long-lived pairs born in the nursery are promoted into the tenured
  // blocks by the sweep; their contents must be intact afterwards.
  SchemeEngine E;
  expectEval(E,
             "(define keep (let loop ([i 100] [acc '()])\n"
             "               (if (zero? i) acc (loop (- i 1) (cons i acc)))))\n"
             "(define (garbage n)\n"
             "  (if (zero? n) 'ok (begin (make-vector 256 0)\n"
             "                           (garbage (- n 1)))))\n"
             "(garbage 100000)\n"
             "(let loop ([p keep] [sum 0])\n"
             "  (if (null? p) sum (loop (cdr p) (+ sum (car p)))))",
             "5050");
}

TEST(Recycle, NurseryCountersMove) {
  SchemeEngine E;
  E.resetStats();
  // Plenty of short-lived pairs plus enough garbage to force collections:
  // blocks either rewind (all dead) or promote (survivors).
  E.evalOrDie("(define (spin n acc)\n"
              "  (if (zero? n) 'done\n"
              "      (begin (make-vector 512 0)\n"
              "             (spin (- n 1) (cons n acc)))))\n"
              "(spin 100000 '())");
  VMStats S = E.stats();
  EXPECT_GT(E.heap().stats().Collections, 0u);
  EXPECT_GT(S.NurseryResets + S.NurseryPromotions, 0u);
  if (statsDetailEnabled())
    EXPECT_GT(S.NurseryAllocs, 100000u);
}

} // namespace
