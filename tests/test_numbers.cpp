//===- tests/test_numbers.cpp - Numeric-tower edge cases ------------------===//
//
// Edge-case table for the fixnum/flonum tower: the flonum modulo/remainder
// sign matrix, division by exact vs. inexact zero, and the fixnum-boundary
// quotient/remainder corners (most-negative-fixnum / -1). Each section
// began life as a failing reproduction of a shipped bug; see ISSUE 5.
//
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "runtime/value.h"

#include <string>

using namespace cmk;

namespace {

class NumbersTest : public ::testing::Test {
protected:
  SchemeEngine E;
};

/// The most negative fixnum, as source text. FixnumMin is -(2^60); the
/// reader accepts the literal directly.
const std::string MostNegative = "-1152921504606846976";

TEST_F(NumbersTest, FlonumModuloFollowsDivisorSign) {
  // modulo takes the divisor's sign -- the original bug fell through to
  // remainder for flonums, so (modulo 7.0 -2.0) came back 1.0.
  expectEval(E, "(modulo 7.0 2.0)", "1.0");
  expectEval(E, "(modulo -7.0 2.0)", "1.0");
  expectEval(E, "(modulo 7.0 -2.0)", "-1.0");
  expectEval(E, "(modulo -7.0 -2.0)", "-1.0");
  // Mixed exactness lands on the flonum path too.
  expectEval(E, "(modulo 7 -2.0)", "-1.0");
  expectEval(E, "(modulo 7.0 -2)", "-1.0");
  // Exact counterparts for contrast (these were always right).
  expectEval(E, "(modulo 7 -2)", "-1");
  expectEval(E, "(modulo -7 2)", "1");
  // An exact multiple must not pick up the divisor's sign.
  expectEval(E, "(modulo 6.0 -2.0)", "0.0");
}

TEST_F(NumbersTest, FlonumRemainderFollowsDividendSign) {
  expectEval(E, "(remainder 7.0 2.0)", "1.0");
  expectEval(E, "(remainder -7.0 2.0)", "-1.0");
  expectEval(E, "(remainder 7.0 -2.0)", "1.0");
  expectEval(E, "(remainder -7.0 -2.0)", "-1.0");
  expectEval(E, "(remainder -7 2)", "-1");
}

TEST_F(NumbersTest, DivisionByExactZeroErrors) {
  // Only exact zero divisors are errors, and they say so -- not
  // "expected numbers".
  expectError(E, "(/ 1 0)", "division by zero");
  expectError(E, "(/ 1.0 0)", "division by zero");
  expectError(E, "(/ 1 2 0 4)", "division by zero");
}

TEST_F(NumbersTest, DivisionByInexactZeroIsTotal) {
  // R7RS flonum division is total: inexact zero divisors produce
  // infinities and NaNs, never errors.
  expectEval(E, "(/ 1 0.0)", "+inf.0");
  expectEval(E, "(/ -1 0.0)", "-inf.0");
  expectEval(E, "(/ 1.0 0.0)", "+inf.0");
  expectEval(E, "(/ 0.0 0.0)", "+nan.0");
  expectEval(E, "(/ 0.0)", "+inf.0"); // unary reciprocal
  expectEval(E, "(/ 1 -0.0)", "-inf.0");
}

TEST_F(NumbersTest, InfinityAndNanPrintInSchemeSpelling) {
  // The reader always accepted +inf.0/-inf.0/+nan.0; the printer must
  // round-trip them instead of leaking the platform's "inf"/"nan".
  expectEval(E, "(+ +inf.0 1.0)", "+inf.0");
  expectEval(E, "(* -1.0 +inf.0)", "-inf.0");
  expectEval(E, "(+ +inf.0 -inf.0)", "+nan.0");
  expectEval(E, "(= +nan.0 +nan.0)", "#f");
  expectEval(E, "(< 0.0 +inf.0)", "#t");
}

TEST_F(NumbersTest, NanComparesFalseUnderEveryOperator) {
  // IEEE unordered: every comparison against NaN is #f, including the
  // compiled fast-path operators and the sign predicates (a naive
  // three-way compare reports NaN as "equal", making (= +nan.0 x) true
  // and (positive? +nan.0) depend on the sentinel's sign).
  expectEval(E, "(< +nan.0 1.0)", "#f");
  expectEval(E, "(> +nan.0 1.0)", "#f");
  expectEval(E, "(<= +nan.0 1.0)", "#f");
  expectEval(E, "(>= +nan.0 1.0)", "#f");
  expectEval(E, "(= +nan.0 1.0)", "#f");
  expectEval(E, "(< 1.0 +nan.0)", "#f");
  expectEval(E, "(> 1.0 +nan.0)", "#f");
  expectEval(E, "(positive? +nan.0)", "#f");
  expectEval(E, "(negative? +nan.0)", "#f");
  expectEval(E, "(zero? +nan.0)", "#f");
  // Operators reach the VM fast path only in compiled loops; force one.
  expectEval(E, "(let loop ((i 0)) (if (> +nan.0 i) 'bad (if (< i 3) "
                "(loop (+ i 1)) 'good)))",
             "good");
}

TEST_F(NumbersTest, NonPositiveAndNanSleepDurationsReturnImmediately) {
  // (sleep-ms +nan.0) used to reach static_cast<int64_t>(NaN * 1000.0) —
  // undefined behavior. NaN, negatives, and zero all mean "no wait";
  // non-numbers stay a type error.
  expectEval(E, "(begin (sleep-ms +nan.0) 'ok)", "ok");
  expectEval(E, "(begin (sleep-ms -5) 'ok)", "ok");
  expectEval(E, "(begin (sleep-ms -inf.0) 'ok)", "ok");
  expectEval(E, "(begin (sleep-ms 0) 'ok)", "ok");
  expectEval(E, "(begin (sleep-ms 0.0) 'ok)", "ok");
  expectError(E, "(sleep-ms 'soon)", "number");
}

TEST_F(NumbersTest, IntegerDivisionByZeroErrorsMentionZero) {
  // quotient/remainder/modulo reject every zero divisor (they have no
  // useful IEEE answer), with the division message for both exactness
  // flavours -- these used to claim "bad arguments"/"expected numbers".
  expectError(E, "(quotient 1 0)", "division by zero");
  expectError(E, "(remainder 1 0)", "division by zero");
  expectError(E, "(modulo 1 0)", "division by zero");
  expectError(E, "(quotient 1 0.0)", "division by zero");
  expectError(E, "(remainder 1 0.0)", "division by zero");
  expectError(E, "(modulo 1 0.0)", "division by zero");
  expectError(E, "(modulo 1.5 0.0)", "division by zero");
}

TEST_F(NumbersTest, NonNumbersStillReportTypeErrors) {
  expectError(E, "(/ 1 'a)", "expected numbers");
  expectError(E, "(quotient 'a 1)", "expected numbers");
  expectError(E, "(remainder \"x\" 2)", "expected numbers");
  expectError(E, "(modulo 'a 2)", "expected numbers");
}

TEST_F(NumbersTest, MostNegativeFixnumQuotientWidens) {
  // most-negative-fixnum / -1 exceeds FixnumMax; the fast path used to
  // wrap it straight back to most-negative-fixnum. It now widens to the
  // flonum value, like every other fixnum overflow in this tower.
  expectEval(E, "(quotient " + MostNegative + " -1)",
             "1.152921504606847e+18");
  expectEval(E, "(/ " + MostNegative + " -1)", "1.152921504606847e+18");
  // The boundary itself is representable and divides cleanly otherwise.
  expectEval(E, "(quotient " + MostNegative + " 1)", MostNegative);
  expectEval(E, "(quotient " + MostNegative + " 2)", "-576460752303423488");
  expectEval(E, "(quotient 1152921504606846975 -1)", "-1152921504606846975");
}

TEST_F(NumbersTest, MostNegativeFixnumRemainderAndModulo) {
  // A % -1 and A mod -1 are 0 for every A, including the boundary (the
  // C++ '%' corner the fast path must not reach).
  expectEval(E, "(remainder " + MostNegative + " -1)", "0");
  expectEval(E, "(modulo " + MostNegative + " -1)", "0");
  expectEval(E, "(remainder " + MostNegative + " 3)", "-1");
  expectEval(E, "(modulo " + MostNegative + " 3)", "2");
}

TEST_F(NumbersTest, FlonumQuotientTruncates) {
  expectEval(E, "(quotient 7.0 2.0)", "3.0");
  expectEval(E, "(quotient -7.0 2.0)", "-3.0");
  expectEval(E, "(quotient 7 2.0)", "3.0");
}

TEST_F(NumbersTest, ExactDivisionStillExactWhenItDivides) {
  expectEval(E, "(/ 6 3)", "2");
  expectEval(E, "(/ 7 2)", "3.5");
  expectEval(E, "(/ -6 -3)", "2");
}

} // namespace
