//===- tests/test_property_control.cpp - Control-flow fuzzing --*- C++ -*-===//
///
/// \file
/// Randomized differential testing over a control-flow grammar: escape
/// continuations, catch/throw, dynamic-wind with side-effect logs,
/// parameterize, and marks — all interleaved. Every equivalent system
/// variant must produce the identical result, including the order of
/// winder side effects.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "support/rng.h"

using namespace cmk;

namespace {

/// Generates deterministic programs that exercise non-local control. The
/// program threads an output log through a box so that evaluation order
/// (including winder thunks) is part of the observed result.
class ControlProgramGen {
public:
  explicit ControlProgramGen(uint64_t Seed) : R(Seed) {}

  std::string program() {
    EscapeDepth = 0;
    std::string P =
        "(define log (box '()))"
        "(define (note x) (set-box! log (cons x (unbox log))))"
        "(define p1 (make-parameter 'p1-default))"
        "(define p2 (make-parameter 0))"
        "(define (result) (list (reverse (unbox log)) (p1) (p2)))";
    P += "(list " + expr(4) + " (result))";
    return P;
  }

private:
  std::string num() { return std::to_string(R.nextBelow(50)); }

  std::string expr(int Depth) {
    if (Depth == 0)
      return leaf();
    switch (R.nextBelow(10)) {
    case 0: // Escape continuation, used zero or one times.
      ++EscapeDepth;
      {
        std::string Inner = expr(Depth - 1);
        std::string Use = R.chance(1, 2)
                              ? "(begin (note 'pre-escape) (esc" +
                                    std::to_string(EscapeDepth) + " " +
                                    num() + "))"
                              : Inner;
        std::string Out = "(call/cc (lambda (esc" +
                          std::to_string(EscapeDepth) + ") " + Use + "))";
        --EscapeDepth;
        return Out;
      }
    case 1: // catch with possible throw.
      return "(catch (lambda (e) (begin (note (list 'caught e)) " + num() +
             ")) " +
             (R.chance(1, 2) ? "(begin (note 'about-to-throw) (throw " +
                                   num() + "))"
                             : expr(Depth - 1)) +
             ")";
    case 2: // dynamic-wind logging entry and exit.
      return "(dynamic-wind (lambda () (note 'in)) (lambda () " +
             expr(Depth - 1) + ") (lambda () (note 'out)))";
    case 3: // parameterize p1.
      return "(parameterize ([p1 '" + std::string(R.chance(1, 2) ? "a" : "b") +
             "]) (begin (note (p1)) " + expr(Depth - 1) + "))";
    case 4: // parameterize p2 numerically.
      return "(parameterize ([p2 " + num() + "]) (+ (p2) " +
             expr(Depth - 1) + "))";
    case 5: // wcm + first.
      return "(with-continuation-mark 'k " + num() +
             " (car (list (+ (continuation-mark-set-first #f 'k 0) " +
             expr(Depth - 1) + "))))";
    case 6: // Sequence with notes.
      return "(begin (note 'step) " + expr(Depth - 1) + ")";
    case 7: // Conditional on generated parity.
      return std::string("(if (even? ") + num() + ") " + expr(Depth - 1) +
             " " + expr(Depth - 1) + ")";
    case 8: // Helper function call boundary.
      return "((lambda (x) (+ x " + expr(Depth - 1) + ")) " + num() + ")";
    default: // Generator interplay (bounded).
      return "(let ([g (make-generator (lambda (y) (y " + num() + ") (y " +
             num() + ") " + num() + "))])" + "(+ (g) (g) (g)))";
    }
  }

  std::string leaf() {
    switch (R.nextBelow(3)) {
    case 0:
      return num();
    case 1:
      return "(begin (note 'leaf) " + num() + ")";
    default:
      return "(+ (p2) " + num() + ")";
    }
  }

  Rng R;
  int EscapeDepth = 0;
};

class ControlFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControlFuzz, VariantsAgreeOnControlFlow) {
  ControlProgramGen Gen(GetParam() * 7919);
  for (int Round = 0; Round < 6; ++Round) {
    std::string Prog = Gen.program();

    SchemeEngine Reference(EngineVariant::Builtin);
    std::string Expected = Reference.evalToString(Prog);
    ASSERT_TRUE(Reference.ok()) << Reference.lastError() << "\n" << Prog;

    for (EngineVariant V :
         {EngineVariant::NoOpt, EngineVariant::NoPrim, EngineVariant::No1cc,
          EngineVariant::HeapFrames, EngineVariant::CopyOnCapture}) {
      SchemeEngine Variant(V);
      std::string Got = Variant.evalToString(Prog);
      ASSERT_TRUE(Variant.ok()) << Variant.lastError() << "\n" << Prog;
      EXPECT_EQ(Got, Expected) << "divergence on:\n" << Prog;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Property, ControlFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Deterministic regressions for prompt/mark corners that the randomized
// grammar only hits occasionally. Each program is a distilled repro from
// the differential fuzzer (tools/cmarks_fuzz); every variant must agree
// with the builtin engine, including winder side-effect order.
TEST(ControlRegression, PromptMarkCornersAgreeAcrossVariants) {
  static const char *const Programs[] = {
      // Composable continuation re-enters a dynamic-wind extent on each
      // application (winder trace is part of the observed value).
      "(define t (make-continuation-prompt-tag))"
      "(define trace '())"
      "(define (note x) (set! trace (cons x trace)))"
      "(define k"
      "  (call-with-continuation-prompt"
      "    (lambda ()"
      "      (dynamic-wind"
      "        (lambda () (note 'before))"
      "        (lambda ()"
      "          (+ 1 (call-with-composable-continuation"
      "                 (lambda (c) (abort-current-continuation t c)) t)))"
      "        (lambda () (note 'after))))"
      "    t (lambda (v) v)))"
      "(list (k 1) (k 10) (reverse trace))",
      // Spliced marks rebase onto the application site's marks.
      "(define t (make-continuation-prompt-tag))"
      "(define k"
      "  (call-with-continuation-prompt"
      "    (lambda ()"
      "      (with-continuation-mark 'key 'in-extent"
      "        (car (list"
      "          (begin"
      "            (call-with-composable-continuation"
      "              (lambda (c) (abort-current-continuation t c)) t)"
      "            (continuation-mark-set->list"
      "             (current-continuation-marks) 'key))))))"
      "    t (lambda (v) v)))"
      "(with-continuation-mark 'key 'outer (car (list (k 'ignored))))",
      // A non-default-tag prompt does not hide outer marks from a
      // default-tag mark-first observation.
      "(define t2 (make-continuation-prompt-tag))"
      "(with-continuation-mark 'key 'outer"
      "  (car (list"
      "    (call-with-continuation-prompt"
      "      (lambda () (continuation-mark-set-first #f 'key 'none))"
      "      t2))))",
  };

  for (const char *Prog : Programs) {
    SchemeEngine Reference(EngineVariant::Builtin);
    std::string Expected = Reference.evalToString(Prog);
    ASSERT_TRUE(Reference.ok()) << Reference.lastError() << "\n" << Prog;

    for (EngineVariant V :
         {EngineVariant::NoOpt, EngineVariant::NoPrim, EngineVariant::No1cc,
          EngineVariant::HeapFrames, EngineVariant::CopyOnCapture}) {
      SchemeEngine Variant(V);
      std::string Got = Variant.evalToString(Prog);
      ASSERT_TRUE(Variant.ok()) << Variant.lastError() << "\n" << Prog;
      EXPECT_EQ(Got, Expected) << "divergence on:\n" << Prog;
    }
  }
}

} // namespace
