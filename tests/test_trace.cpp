//===- tests/test_trace.cpp - Structured event tracing ---------*- C++ -*-===//
///
/// \file
/// Trace-subsystem correctness: the exact event sequences the paper's
/// compilation strategies predict for each attachment category (7.2),
/// ring-buffer wraparound behaviour, tier gating, and the Chrome
/// trace-event JSON export invariants.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

#include "support/trace.h"

#include <algorithm>
#include <vector>

using namespace cmk;

namespace {

/// Runs \p Setup untraced, then \p Workload with tracing on; returns every
/// recorded event kind in order.
std::vector<TraceEv> tracedKinds(SchemeEngine &E, const std::string &Setup,
                                 const std::string &Workload) {
  if (!Setup.empty()) {
    E.eval(Setup);
    EXPECT_TRUE(E.ok()) << E.lastError();
  }
  E.startTrace();
  E.eval(Workload);
  E.stopTrace();
  EXPECT_TRUE(E.ok()) << E.lastError();
  std::vector<TraceEv> Kinds;
  const TraceBuffer &T = E.trace();
  for (uint64_t I = 0; I < T.size(); ++I)
    Kinds.push_back(T.at(I).Kind);
  return Kinds;
}

/// Keeps only the kinds in \p Keep, preserving order.
std::vector<TraceEv> onlyKinds(const std::vector<TraceEv> &Kinds,
                               std::initializer_list<TraceEv> Keep) {
  std::vector<TraceEv> Out;
  for (TraceEv K : Kinds)
    if (std::find(Keep.begin(), Keep.end(), K) != Keep.end())
      Out.push_back(K);
  return Out;
}

uint64_t countKind(const std::vector<TraceEv> &Kinds, TraceEv K) {
  return static_cast<uint64_t>(std::count(Kinds.begin(), Kinds.end(), K));
}

// --- Paper 7.2: the three attachment compilation categories ---------------

// Tail position: the frame is reified once (runtime-checked), then each
// loop iteration replaces the attachment via the consume-set fusion; the
// final return pops it through the fused underflow.
TEST(TraceSequences, TailWcmLoop) {
  SchemeEngine E;
  auto Kinds = tracedKinds(
      E,
      "(define (loop i) (if (= i 0) 'done"
      "  (with-continuation-mark 'k i (loop (- i 1)))))",
      // Call non-tail so loop gets a fresh, unreified frame (a toplevel
      // tail call would run the wcm in the pre-reified base frame).
      "(cons (loop 3) '())");
  auto Seq = onlyKinds(Kinds, {TraceEv::ReifyTailFrame, TraceEv::AttachSet,
                               TraceEv::AttachConsume, TraceEv::UnderflowFuse,
                               TraceEv::MarksPush, TraceEv::MarksPop});
  std::vector<TraceEv> Expected = {
      TraceEv::ReifyTailFrame, TraceEv::AttachSet,     // i = 3: reify + set
      TraceEv::AttachConsume,  TraceEv::AttachSet,     // i = 2: replace
      TraceEv::AttachConsume,  TraceEv::AttachSet,     // i = 1: replace
      TraceEv::UnderflowFuse,  TraceEv::MarksPop,      // return pops the mark
  };
  EXPECT_EQ(Seq, Expected);
  // No marks-register traffic: tail attachments never touch MarksPush.
  EXPECT_EQ(countKind(Kinds, TraceEv::MarksPush), 0u);
}

// Non-tail with a tail call in the body: the CallAttach convention. The
// pending mark is pushed, the call reifies with (rest marks) in the
// record, and the callee's return fuses the split and pops the mark.
TEST(TraceSequences, NonTailWcmWithTailCall) {
  SchemeEngine E;
  auto Kinds = tracedKinds(E,
                           "(define (g x) (+ x 1))"
                           "(define (h) (+ 100 (with-continuation-mark 'k 2"
                           "                     (g 3))))",
                           "(h)");
  auto Seq = onlyKinds(
      Kinds, {TraceEv::MarksPush, TraceEv::AttachCallReify,
              TraceEv::ReifySplit, TraceEv::UnderflowFuse, TraceEv::MarksPop,
              TraceEv::ReifyTailFrame, TraceEv::UnderflowCopy});
  std::vector<TraceEv> Expected = {
      TraceEv::MarksPush,       // wcm extent opens
      TraceEv::AttachCallReify, // the call forces reification...
      TraceEv::ReifySplit,      // ...as a split at the new frame
      TraceEv::UnderflowFuse,   // g's return fuses the split back
      TraceEv::MarksPop,        // ...and pops the mark (record marks)
      TraceEv::UnderflowCopy,   // h returns through its own reified record
  };
  EXPECT_EQ(Seq, Expected);
}

// Non-tail without a call in the body: pure marks-register traffic, no
// reification of any kind.
TEST(TraceSequences, NonTailWcmWithoutCall) {
  SchemeEngine E;
  auto Kinds = tracedKinds(
      E, "(define (q x y) (+ 100 (with-continuation-mark 'k x (* x y))))",
      "(q 3 4)");
  auto Seq = onlyKinds(Kinds, {TraceEv::MarksPush, TraceEv::MarksPop});
  std::vector<TraceEv> Expected = {TraceEv::MarksPush, TraceEv::MarksPop};
  EXPECT_EQ(Seq, Expected);
  EXPECT_EQ(countKind(Kinds, TraceEv::ReifyTailFrame), 0u);
  EXPECT_EQ(countKind(Kinds, TraceEv::ReifySplit), 0u);
  EXPECT_EQ(countKind(Kinds, TraceEv::AttachCallReify), 0u);
}

// --- Other cheap-tier events ----------------------------------------------

TEST(TraceSequences, DynamicWindSpans) {
  SchemeEngine E;
  auto Kinds = tracedKinds(E, "",
                           "(dynamic-wind (lambda () 1) (lambda () 2)"
                           "              (lambda () 3))");
  auto Seq = onlyKinds(Kinds, {TraceEv::WindEnter, TraceEv::WindExit});
  std::vector<TraceEv> Expected = {TraceEv::WindEnter, TraceEv::WindExit};
  EXPECT_EQ(Seq, Expected);
}

TEST(TraceSequences, CallCCCaptureAndApply) {
  SchemeEngine E;
  auto Kinds = tracedKinds(
      E, "", "(+ 1 (call/cc (lambda (k) (k 41))))");
  EXPECT_GE(countKind(Kinds, TraceEv::Capture), 1u);
  EXPECT_GE(countKind(Kinds, TraceEv::ContApply), 1u);
  // Capture happens before the continuation is applied.
  auto Seq = onlyKinds(Kinds, {TraceEv::Capture, TraceEv::ContApply});
  ASSERT_GE(Seq.size(), 2u);
  EXPECT_EQ(Seq.front(), TraceEv::Capture);
}

// --- Profiling primitives on top of marks ---------------------------------

TEST(TraceProfiling, CallWithProfilingEmitsLabeledSpan) {
  SchemeEngine E;
  E.startTrace();
  E.eval("(with-stack-frame 'job (call-with-profiling (lambda () (* 6 7))))");
  E.stopTrace();
  ASSERT_TRUE(E.ok()) << E.lastError();
  const TraceBuffer &T = E.trace();
  bool SawBegin = false, SawEnd = false;
  for (uint64_t I = 0; I < T.size(); ++I) {
    const TraceEvent &Ev = T.at(I);
    if (Ev.Kind == TraceEv::SpanBegin) {
      EXPECT_STREQ(Ev.Label, "job");
      EXPECT_FALSE(SawEnd) << "begin must precede end";
      SawBegin = true;
    }
    if (Ev.Kind == TraceEv::SpanEnd)
      SawEnd = true;
  }
  EXPECT_TRUE(SawBegin);
  EXPECT_TRUE(SawEnd);
}

TEST(TraceProfiling, StackSnapshotReadsMarkFrames) {
  SchemeEngine E;
  // The snapshot sees every annotated frame, innermost first, and drops a
  // labeled instant into the trace.
  E.startTrace();
  expectEval(E,
             "(with-stack-frame 'outer"
             "  (+ 0 (with-stack-frame 'inner"
             "         (+ 0 (length (current-stack-snapshot))))))",
             "2");
  E.stopTrace();
  const TraceBuffer &T = E.trace();
  bool SawSnapshot = false;
  for (uint64_t I = 0; I < T.size(); ++I)
    if (T.at(I).Kind == TraceEv::Instant) {
      EXPECT_STREQ(T.at(I).Label, "inner");
      SawSnapshot = true;
    }
  EXPECT_TRUE(SawSnapshot);
}

// --- Ring buffer -----------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewest) {
  TraceBuffer T;
  T.start(16);
  for (uint64_t I = 0; I < 100; ++I)
    T.record(TraceEv::ReifySplit, I);
  EXPECT_EQ(T.size(), 16u);
  EXPECT_EQ(T.total(), 100u);
  EXPECT_EQ(T.dropped(), 84u);
  // Oldest retained is event #84, newest is #99.
  EXPECT_EQ(T.at(0).Arg, 84u);
  EXPECT_EQ(T.at(15).Arg, 99u);
}

TEST(TraceRing, StartResetsAndCapacityIsClamped) {
  TraceBuffer T;
  T.start(1); // Below MinCapacity: clamped, not zero.
  EXPECT_GE(T.capacity(), TraceBuffer::MinCapacity);
  T.record(TraceEv::Capture);
  EXPECT_EQ(T.total(), 1u);
  T.start();
  EXPECT_EQ(T.total(), 0u);
  EXPECT_TRUE(T.Enabled);
  T.stop();
  EXPECT_FALSE(T.Enabled);
}

TEST(TraceRing, ExportRepairsSpansBrokenByWraparound) {
  TraceBuffer T;
  T.start(16);
  // 20 opens then 20 closes: the retained window is all closes, whose
  // opens were overwritten. The export must drop the orphan Ends.
  for (int I = 0; I < 20; ++I)
    T.record(TraceEv::MarksPush);
  for (int I = 0; I < 20; ++I)
    T.record(TraceEv::MarksPop);
  T.stop();
  std::string Json = T.toJson();
  EXPECT_EQ(Json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Json.find("\"dropped\": 24"), std::string::npos);
}

TEST(TraceRing, ExportClosesUnfinishedSpans) {
  TraceBuffer T;
  T.start(64);
  T.record(TraceEv::MarksPush);
  T.record(TraceEv::ReifySplit);
  T.stop();
  std::string Json = T.toJson();
  // One B and one synthesized E, in that order.
  size_t B = Json.find("\"ph\":\"B\"");
  size_t End = Json.find("\"ph\":\"E\"");
  ASSERT_NE(B, std::string::npos);
  ASSERT_NE(End, std::string::npos);
  EXPECT_LT(B, End);
}

// --- Tier gating -----------------------------------------------------------

// With tracing never started, record sites must contribute nothing.
TEST(TraceTiers, StoppedTracingRecordsNothing) {
  SchemeEngine E;
  E.eval("(with-continuation-mark 'k 1 (+ 0 (car '(1))))");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E.trace().total(), 0u);
}

TEST(TraceTiers, StopFreezesTheBuffer) {
  SchemeEngine E;
  auto Kinds = tracedKinds(E, "", "(with-continuation-mark 'k 1 (+ 0 1))");
  uint64_t Frozen = E.trace().total();
  EXPECT_GT(Frozen, 0u);
  E.eval("(with-continuation-mark 'k 2 (+ 0 2))");
  EXPECT_EQ(E.trace().total(), Frozen);
}

// Detail-tier events exist exactly when the build compiled them in.
TEST(TraceTiers, DetailTierMatchesBuildConfig) {
  SchemeEngine E;
  auto Kinds = tracedKinds(
      E, "",
      "(with-continuation-mark 'a 1"
      "  (+ 0 (with-continuation-mark 'b 2"
      "         (continuation-mark-set-first #f 'a))))");
  uint64_t Detail = countKind(Kinds, TraceEv::MarkFrameCreate) +
                    countKind(Kinds, TraceEv::MarkFrameExtend) +
                    countKind(Kinds, TraceEv::MarkFrameRebind) +
                    countKind(Kinds, TraceEv::MarkCacheHit) +
                    countKind(Kinds, TraceEv::MarkCacheInstall) +
                    countKind(Kinds, TraceEv::MarkSetCapture);
  if (traceDetailEnabled())
    EXPECT_GT(Detail, 0u);
  else
    EXPECT_EQ(Detail, 0u);
}

// --- Export and Scheme surface ---------------------------------------------

TEST(TraceExport, JsonCarriesSchemaAndEvents) {
  SchemeEngine E;
  // Non-tail wcm so the export carries a "wcm" B/E span (a toplevel wcm
  // is in tail position and would show up as "wcm-tail" instead).
  tracedKinds(E, "", "(+ 0 (with-continuation-mark 'k 1 (car '(1))))");
  std::string Json = E.traceToJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("cmarks-trace-v1"), std::string::npos);
  EXPECT_NE(Json.find("\"wcm\""), std::string::npos);
}

TEST(TraceExport, SchemePrimitivesControlTheBuffer) {
  SchemeEngine E;
  expectEval(E,
             "(begin (runtime-trace-start!)"
             "       (with-continuation-mark 'k 1 (+ 0 (car '(1))))"
             "       (runtime-trace-stop!)"
             "       (string? (runtime-trace-dump)))",
             "#t");
  // The dumped string is the same JSON the C++ API produces.
  E.eval("(define tr (runtime-trace-dump))");
  expectEval(E, "(> (string-length tr) 100)", "#t");
}

TEST(TraceExport, TraceStartCapacityIsHonored) {
  SchemeEngine E;
  E.eval("(begin (runtime-trace-start! 32)"
         "       (with-continuation-mark 'k 1 (+ 0 (car '(1))))"
         "       (runtime-trace-stop!))");
  ASSERT_TRUE(E.ok()) << E.lastError();
  EXPECT_EQ(E.trace().capacity(), 32u);
  expectError(E, "(runtime-trace-start! 'huge)", "positive fixnum");
}

} // namespace
