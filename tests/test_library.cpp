//===- tests/test_library.cpp - Library-level extensions -------*- C++ -*-===//
///
/// \file
/// The paper's thesis: dynamic binding, exceptions, and contracts are
/// implementable as libraries over continuation marks. These tests exercise
/// the prelude's implementations of each.
///
//===----------------------------------------------------------------------===//

#include "test_helpers.h"

using namespace cmk;

namespace {

class Library : public ::testing::Test {
protected:
  SchemeEngine E;
};

// --- Parameters (dynamic binding, paper section 1) ---------------------------

TEST_F(Library, ParameterDefault) {
  expectEval(E, "(define p (make-parameter 10)) (p)", "10");
}

TEST_F(Library, ParameterizeScopes) {
  expectEval(E,
             "(define p (make-parameter 'out))"
             "(list (p) (parameterize ([p 'in]) (p)) (p))",
             "(out in out)");
}

TEST_F(Library, ParameterizeNests) {
  expectEval(E,
             "(define p (make-parameter 0))"
             "(parameterize ([p 1])"
             "  (list (p) (parameterize ([p 2]) (p)) (p)))",
             "(1 2 1)");
}

TEST_F(Library, ParameterizeMultiple) {
  expectEval(E,
             "(define p (make-parameter 'p0)) (define q (make-parameter 'q0))"
             "(parameterize ([p 'p1] [q 'q1]) (list (p) (q)))",
             "(p1 q1)");
}

TEST_F(Library, ParameterizeBodyIsTailPosition) {
  // Dynamic binding must not break tail recursion (the section 1
  // motivation): a million-deep parameterize loop must not overflow.
  expectEval(E,
             "(define p (make-parameter 0))"
             "(define (loop i)"
             "  (if (= i 1000000)"
             "      (p)"
             "      (parameterize ([p i]) (loop (+ i 1)))))"
             "(loop 0)",
             "999999");
}

TEST_F(Library, ParameterGuard) {
  expectEval(E,
             "(define p (make-parameter 1 (lambda (v) (* v 10))))"
             "(parameterize ([p 5]) (p))",
             "50");
}

TEST_F(Library, ParameterizeSurvivesEscape) {
  // Escaping out of a parameterize restores the outer binding without any
  // user-level cleanup code.
  expectEval(E,
             "(define p (make-parameter 'outer))"
             "(call/cc (lambda (k) (parameterize ([p 'inner]) (k 'gone))))"
             "(p)",
             "outer");
}

TEST_F(Library, OutputRedirection) {
  // The paper's opening example: redirect output for one call, in tail
  // position, with no save/restore code.
  expectEval(E,
             "(define (greet) (display \"hello\"))"
             "(let ([port (open-output-string)])"
             "  (parameterize ([current-output-port port]) (greet))"
             "  (get-output-string port))",
             "\"hello\"");
}

// --- Exceptions (paper section 2.3) -------------------------------------------

TEST_F(Library, CatchReturnsBodyValue) {
  expectEval(E, "(catch (lambda (e) 'handler) (+ 40 2))", "42");
}

TEST_F(Library, ThrowEscapesToHandler) {
  expectEval(E,
             "(catch (lambda (e) (list 'caught e))"
             "  (+ 1 (throw 'none)))",
             "(caught none)");
}

TEST_F(Library, ErrorIsCatchable) {
  expectEval(E,
             "(catch (lambda (e) (list (exn-message e) (exn-irritants e)))"
             "  (error \"boom\" 1 2))",
             "(\"boom\" (1 2))");
}

TEST_F(Library, UncaughtThrowIsFatal) {
  expectError(E, "(throw 'loose)", "uncaught exception");
}

TEST_F(Library, HandlersNest) {
  expectEval(E,
             "(catch (lambda (e) (list 'outer e))"
             "  (catch (lambda (e) (throw (list 'rethrown e)))"
             "    (throw 'inner)))",
             "(outer (rethrown inner))");
}

TEST_F(Library, CatchBodyIsTailPosition) {
  // Section 2.3: the body of catch is in tail position; handler frames
  // chain on the same frame instead of growing the stack.
  expectEval(E,
             "(define (loop i)"
             "  (if (= i 200000)"
             "      'deep-ok"
             "      (catch (lambda (e) e) (loop (+ i 1)))))"
             "(loop 0)",
             "deep-ok");
}

TEST_F(Library, HandlerStackUnwindsCorrectly) {
  expectEval(E,
             "(define (risky n)"
             "  (catch (lambda (e) (cons n e))"
             "    (if (zero? n) (throw 'zero) (risky (- n 1)))))"
             // The innermost handler catches first.
             "(risky 3)",
             "(0 . zero)");
}

TEST_F(Library, WithHandlersDispatchesByPredicate) {
  expectEval(E,
             "(with-handlers ([symbol? (lambda (e) (list 'sym e))]"
             "                [number? (lambda (e) (list 'num e))])"
             "  (throw 42))",
             "(num 42)");
  expectEval(E,
             "(with-handlers ([exn? (lambda (e) (exn-message e))])"
             "  (error \"boom\"))",
             "\"boom\"");
  // No matching predicate: rethrown to the enclosing handler.
  expectEval(E,
             "(catch (lambda (e) (list 'outer e))"
             "  (with-handlers ([symbol? (lambda (e) 'wrong)])"
             "    (throw 7)))",
             "(outer 7)");
  // Body is a sequence; the result is the last expression.
  expectEval(E,
             "(with-handlers ([symbol? (lambda (e) e)]) 1 2 3)",
             "3");
}

TEST_F(Library, PreludeListUtilities) {
  expectEval(E, "(andmap even? '(2 4 6))", "#t");
  expectEval(E, "(andmap even? '(2 3 6))", "#f");
  expectEval(E, "(ormap odd? '(2 4 5))", "#t");
  expectEval(E, "(list-index odd? '(2 4 5 7))", "2");
  expectEval(E, "(list-index odd? '(2 4))", "#f");
  expectEval(E, "(vector-map add1 #(1 2 3))", "#(2 3 4)");
  expectEval(E, "(let ([n (box 0)])"
                "  (vector-for-each (lambda (x) (set-box! n (+ x (unbox n))))"
                "                   #(1 2 3))"
                "  (unbox n))",
             "6");
}

TEST_F(Library, ParameterizeAcrossGeneratorResume) {
  // Composable-continuation splicing rebasing marks means the generator
  // body sees the dynamic bindings of the *resume* site (as in Racket).
  expectEval(E,
             "(define p (make-parameter 'unset))"
             "(define g (make-generator"
             "  (lambda (yield)"
             "    (yield (p)) (yield (p)) 'end)))"
             "(list (parameterize ([p 'first]) (g))"
             "      (parameterize ([p 'second]) (g)))",
             "(first second)");
}

// --- Contracts (paper section 8.4) --------------------------------------------

TEST_F(Library, FlatContracts) {
  expectEval(E, "(contract-wrap integer/c 42 'me)", "42");
  expectError(E, "(contract-wrap integer/c \"no\" 'me)",
              "uncaught exception");
}

TEST_F(Library, ArrowContractPasses) {
  expectEval(E,
             "(define f (contract-wrap (-> integer/c integer/c)"
             "                         (lambda (x) (* x 2)) 'server))"
             "(f 21)",
             "42");
}

TEST_F(Library, ArrowContractDomainViolation) {
  expectEval(E,
             "(define f2 (contract-wrap (-> integer/c integer/c)"
             "                          (lambda (x) x) 'server))"
             "(catch (lambda (e) 'domain-blamed) (f2 \"nope\"))",
             "domain-blamed");
}

TEST_F(Library, ArrowContractRangeViolation) {
  expectEval(E,
             "(define f3 (contract-wrap (-> integer/c integer/c)"
             "                          (lambda (x) 'not-an-integer) 'server))"
             "(catch (lambda (e) 'range-blamed) (f3 1))",
             "range-blamed");
}

TEST_F(Library, BlameIsVisibleDuringCall) {
  expectEval(E,
             "(define probe (contract-wrap (-> any/c any/c)"
             "                             (lambda (x) (current-blame))"
             "                             'the-blame))"
             "(list (probe 0) (current-blame))",
             "(the-blame #f)");
}

TEST_F(Library, BlameTrailNests) {
  expectEval(E,
             "(define inner (contract-wrap (-> any/c any/c)"
             "                             (lambda (x) (blame-trail)) 'inner))"
             "(define outer (contract-wrap (-> any/c any/c)"
             "                             (lambda (x) (inner x)) 'outer))"
             "(outer 0)",
             "(inner outer)");
}

TEST_F(Library, WrappedCallsAreNotSpaceLeaky) {
  // The blame mark sits in tail position of the wrapper, so deep
  // wrapped-call recursion in tail position must not accumulate frames.
  expectEval(E,
             "(define loop-fn #f)"
             "(set! loop-fn (contract-wrap (-> integer/c integer/c)"
             "  (lambda (n) (if (zero? n) 0 (loop-fn (- n 1)))) 'me))"
             "(loop-fn 300000)",
             "0");
}

// --- Stack inspection helpers --------------------------------------------------

TEST_F(Library, StackTraceShowsFrames) {
  expectEval(E,
             "(define (leaf) (current-stack-trace))"
             "(define (middle) (with-stack-frame 'middle (car (list (leaf)))))"
             "(define (top) (with-stack-frame 'top (car (list (middle)))))"
             "(top)",
             "(middle top)");
}

TEST_F(Library, StackTraceCollapsesTailFrames) {
  // Tail calls share the frame, so the trace records only the latest name
  // — precisely the proper-tail-call behaviour of marks.
  expectEval(E,
             "(define (leaf2) (current-stack-trace))"
             "(define (tail-mid) (with-stack-frame 'tail-mid (leaf2)))"
             "(define (top2) (with-stack-frame 'top2 (tail-mid)))"
             "(top2)",
             "(tail-mid)");
}

} // namespace
