//===- examples/server.cpp - EnginePool request-loop demo ------*- C++ -*-===//
///
/// \file
/// A miniature "Scheme evaluation service" on top of EnginePool
/// (support/pool.h): four client threads fire requests at a pool of
/// worker engines, every request runs under a per-request timeout, and
/// the pool's aggregated statistics are printed at the end.
///
/// The demo exercises the properties a serving deployment cares about:
///
///   * requests from different clients interleave across workers and
///     all produce their expected answers;
///   * a hostile request (an infinite loop) trips its timeout budget
///     and fails alone — the worker that ran it recovers and keeps
///     serving ordinary requests;
///   * a request whose deadline expires in the queue is shed without
///     running, and a request refused by admission control under
///     overload is shed at the door — each resolving to its own typed
///     JobOutcome (and distinct client exit code), not a string match
///     on the error message;
///   * per-request continuation-mark state (parameterize) never leaks
///     between requests, because every worker evaluates in its own
///     engine and marks are rewound between jobs;
///   * the serving telemetry holds up: latency histograms cover every
///     retired job and both metrics exports validate.
///
/// `--metrics=FILE` writes the pool's cmarks-metrics-v1 JSON (.prom for
/// Prometheus text) and `--profile=FILE` writes a pool-wide collapsed
/// profile, so the demo doubles as the CI smoke test for the
/// observability pipeline.
///
/// Exits 0 when every expectation holds, 1 otherwise (it doubles as a
/// ctest smoke test, like the other examples).
///
//===----------------------------------------------------------------------===//

#include "support/pool.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace cmk;

namespace {

std::atomic<int> Failures{0};

/// One client: submits Rounds requests tagged with its id and checks
/// each answer. The request parameterizes a per-request "user" binding
/// and reads it back through continuation marks — if engines shared
/// mark state across workers or requests, the read-back would mismatch.
void client(EnginePool &Pool, int Id, int Rounds) {
  for (int R = 0; R < Rounds; ++R) {
    int N = Id * 100 + R;
    std::string Src =
        "(define p (make-parameter 'nobody))\n"
        "(parameterize ([p " + std::to_string(N) + "])\n"
        "  (with-continuation-mark 'req " + std::to_string(Id) + "\n"
        "    (list (p) (continuation-mark-set-first\n"
        "               (current-continuation-marks) 'req))))";
    JobResult JR = Pool.submit(Src).get();
    std::string Expected =
        "(" + std::to_string(N) + " " + std::to_string(Id) + ")";
    if (!JR.Ok || JR.Output != Expected) {
      std::printf("FAIL client %d round %d: got %s (%s)\n", Id, R,
                  JR.Output.c_str(), JR.Error.c_str());
      ++Failures;
    }
  }
}

bool writeFile(const std::string &Path, const std::string &Body) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Body.data(), 1, Body.size(), F) == Body.size();
  return std::fclose(F) == 0 && Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string MetricsFile, ProfileFile, TraceFile;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--metrics=", 0) == 0) {
      MetricsFile = Arg.substr(10);
    } else if (Arg.rfind("--profile=", 0) == 0) {
      ProfileFile = Arg.substr(10);
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TraceFile = Arg.substr(8);
    } else {
      std::fprintf(stderr, "usage: server [--metrics=FILE] [--profile=FILE] "
                           "[--trace=FILE]\n");
      return 1;
    }
  }

  PoolOptions Opts;
  Opts.Workers = 4;
  // Every request runs under a 250 ms deadline: a stuck request is
  // evicted at the next safe point and only its own future fails.
  Opts.DefaultJobLimits.TimeoutMs = 250;
  // Full observability: per-worker trace rings (merged into one Perfetto
  // timeline with named job spans) and the sampling profiler.
  Opts.TraceCapacity = 32 * 1024;
  if (!ProfileFile.empty())
    Opts.ProfileHz = 97;
  EnginePool Pool(Opts);

  // A hostile request alongside the regular traffic. Submitted first so
  // it occupies a worker while the clients run.
  auto Hostile = Pool.submit("(let loop () (loop))");

  std::vector<std::thread> Clients;
  for (int Id = 1; Id <= 4; ++Id)
    Clients.emplace_back([&Pool, Id] { client(Pool, Id, 25); });
  for (std::thread &T : Clients)
    T.join();

  // Outcomes are typed: dispatch on JobOutcome (and map to the shared
  // exit-code table), never on error-message strings.
  JobResult HR = Hostile.get();
  if (HR.Outcome != JobOutcome::TrippedTimeout) {
    std::printf("FAIL hostile request: outcome=%s (%s)\n",
                jobOutcomeName(HR.Outcome), HR.Error.c_str());
    ++Failures;
  } else {
    std::printf("hostile request evicted by its timeout: outcome=%s "
                "exit-code=%d (%s)\n",
                jobOutcomeName(HR.Outcome), jobOutcomeExitCode(HR.Outcome),
                HR.Error.c_str());
  }

  // Deadline expiry: park four spinners on the four workers, then submit
  // a request that is only willing to wait 30 ms. The first worker frees
  // up at the ~250 ms timeout, long past the deadline, so the request is
  // shed from the queue without ever running.
  std::vector<std::future<JobResult>> Hogs;
  for (int I = 0; I < 4; ++I)
    Hogs.push_back(Pool.submit("(let loop () (loop))"));
  JobResult ER =
      Pool.submit("'too-patient", SubmitOptions().deadlineMs(30)).get();
  if (ER.Outcome != JobOutcome::Expired || ER.Attempts != 0) {
    std::printf("FAIL deadline request: outcome=%s attempts=%u (%s)\n",
                jobOutcomeName(ER.Outcome), ER.Attempts, ER.Error.c_str());
    ++Failures;
  } else {
    std::printf("deadline request expired in queue: outcome=%s "
                "exit-code=%d (%s)\n",
                jobOutcomeName(ER.Outcome), jobOutcomeExitCode(ER.Outcome),
                ER.Error.c_str());
  }
  for (auto &H : Hogs)
    if (H.get().Outcome != JobOutcome::TrippedTimeout)
      ++Failures;

  Pool.shutdown();

  // Load shedding: a one-worker pool with a 10 ms queue-wait budget.
  // A burst of 25 ms requests drives the observed queue-wait p99 far
  // over budget, and the next request is refused at the door.
  {
    PoolOptions ShedOpts;
    ShedOpts.Workers = 1;
    ShedOpts.QueueWaitBudgetMs = 10;
    ShedOpts.AdmissionWindow = 16;
    EnginePool ShedPool(ShedOpts);
    ShedPool.submit("'warm").get();
    std::vector<std::future<JobResult>> Burst;
    for (int I = 0; I < 10; ++I)
      Burst.push_back(ShedPool.submit("(begin (sleep-ms 25) 'slow)"));
    for (auto &F : Burst)
      F.get();
    JobResult SR = ShedPool.submit("'one-too-many").get();
    if (SR.Outcome != JobOutcome::Shed) {
      std::printf("FAIL overload request: outcome=%s (%s)\n",
                  jobOutcomeName(SR.Outcome), SR.Error.c_str());
      ++Failures;
    } else {
      std::printf("overload request shed by admission control: outcome=%s "
                  "exit-code=%d\n",
                  jobOutcomeName(SR.Outcome), jobOutcomeExitCode(SR.Outcome));
    }
  }

  PoolTelemetry T = Pool.telemetry();
  const PoolStats &S = T.Stats;
  std::printf("served %llu jobs on %u workers: completed=%llu "
              "tripped=%llu expired=%llu queue-high-water=%llu "
              "mark-creates=%llu\n",
              static_cast<unsigned long long>(S.JobsSubmitted),
              Pool.workerCount(),
              static_cast<unsigned long long>(S.JobsCompleted),
              static_cast<unsigned long long>(S.JobsTripped),
              static_cast<unsigned long long>(S.JobsExpired),
              static_cast<unsigned long long>(S.QueueHighWater),
              static_cast<unsigned long long>(S.Engines.MarkFrameCreates));
  // 100 client requests completed; the hostile request and the four hogs
  // tripped their timeouts; the 30 ms-deadline request expired unrun.
  if (S.JobsCompleted != 100 || S.JobsTripped != 5 || S.JobsExpired != 1)
    ++Failures;

  // Telemetry sanity: the histograms must cover every retired job (the
  // queue-wait histogram also covers jobs that expired in the queue), the
  // retirement path must agree with the outcome counters, and both export
  // formats must carry the schema markers tooling keys on.
  uint64_t Retired = S.JobsCompleted + S.JobsFailed + S.JobsTripped;
  std::printf("latency: run p50=%lluus p99=%lluus  queue-wait p99=%lluus\n",
              static_cast<unsigned long long>(T.RunUs.percentile(50)),
              static_cast<unsigned long long>(T.RunUs.percentile(99)),
              static_cast<unsigned long long>(T.QueueWaitUs.percentile(99)));
  if (T.RunUs.count() != Retired ||
      T.QueueWaitUs.count() != Retired + S.JobsExpired) {
    std::printf("FAIL histogram coverage: run=%llu wait=%llu retired=%llu\n",
                static_cast<unsigned long long>(T.RunUs.count()),
                static_cast<unsigned long long>(T.QueueWaitUs.count()),
                static_cast<unsigned long long>(Retired));
    ++Failures;
  }
  std::string Json = Pool.metricsJson();
  std::string Prom = Pool.metricsText();
  if (Json.find("\"schema\": \"cmarks-metrics-v1\"") == std::string::npos ||
      Json.find("cmarks_pool_job_run_seconds") == std::string::npos) {
    std::printf("FAIL metrics JSON missing schema or histogram\n");
    ++Failures;
  }
  if (Prom.find("# TYPE cmarks_pool_job_run_seconds summary") ==
      std::string::npos) {
    std::printf("FAIL metrics text missing summary type\n");
    ++Failures;
  }

  if (!MetricsFile.empty()) {
    bool IsProm = MetricsFile.size() >= 5 &&
                  MetricsFile.compare(MetricsFile.size() - 5, 5, ".prom") == 0;
    if (!writeFile(MetricsFile, IsProm ? Prom : Json)) {
      std::printf("FAIL cannot write metrics to %s\n", MetricsFile.c_str());
      ++Failures;
    }
  }
  if (!ProfileFile.empty() && !Pool.dumpProfile(ProfileFile)) {
    std::printf("FAIL cannot write profile to %s\n", ProfileFile.c_str());
    ++Failures;
  }
  if (!TraceFile.empty() && !Pool.dumpTrace(TraceFile)) {
    std::printf("FAIL cannot write trace to %s\n", TraceFile.c_str());
    ++Failures;
  }

  return Failures.load() == 0 ? 0 : 1;
}
