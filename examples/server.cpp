//===- examples/server.cpp - EnginePool request-loop demo ------*- C++ -*-===//
///
/// \file
/// A miniature "Scheme evaluation service" on top of EnginePool
/// (support/pool.h): four client threads fire requests at a pool of
/// worker engines, every request runs under a per-request timeout, and
/// the pool's aggregated statistics are printed at the end.
///
/// The demo exercises the properties a serving deployment cares about:
///
///   * requests from different clients interleave across workers and
///     all produce their expected answers;
///   * a hostile request (an infinite loop) trips its timeout budget
///     and fails alone — the worker that ran it recovers and keeps
///     serving ordinary requests;
///   * per-request continuation-mark state (parameterize) never leaks
///     between requests, because every worker evaluates in its own
///     engine and marks are rewound between jobs.
///
/// Exits 0 when every expectation holds, 1 otherwise (it doubles as a
/// ctest smoke test, like the other examples).
///
//===----------------------------------------------------------------------===//

#include "support/pool.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace cmk;

namespace {

std::atomic<int> Failures{0};

/// One client: submits Rounds requests tagged with its id and checks
/// each answer. The request parameterizes a per-request "user" binding
/// and reads it back through continuation marks — if engines shared
/// mark state across workers or requests, the read-back would mismatch.
void client(EnginePool &Pool, int Id, int Rounds) {
  for (int R = 0; R < Rounds; ++R) {
    int N = Id * 100 + R;
    std::string Src =
        "(define p (make-parameter 'nobody))\n"
        "(parameterize ([p " + std::to_string(N) + "])\n"
        "  (with-continuation-mark 'req " + std::to_string(Id) + "\n"
        "    (list (p) (continuation-mark-set-first\n"
        "               (current-continuation-marks) 'req))))";
    JobResult JR = Pool.submit(Src).get();
    std::string Expected =
        "(" + std::to_string(N) + " " + std::to_string(Id) + ")";
    if (!JR.Ok || JR.Output != Expected) {
      std::printf("FAIL client %d round %d: got %s (%s)\n", Id, R,
                  JR.Output.c_str(), JR.Error.c_str());
      ++Failures;
    }
  }
}

} // namespace

int main() {
  PoolOptions Opts;
  Opts.Workers = 4;
  // Every request runs under a 250 ms deadline: a stuck request is
  // evicted at the next safe point and only its own future fails.
  Opts.DefaultJobLimits.TimeoutMs = 250;
  EnginePool Pool(Opts);

  // A hostile request alongside the regular traffic. Submitted first so
  // it occupies a worker while the clients run.
  auto Hostile = Pool.submit("(let loop () (loop))");

  std::vector<std::thread> Clients;
  for (int Id = 1; Id <= 4; ++Id)
    Clients.emplace_back([&Pool, Id] { client(Pool, Id, 25); });
  for (std::thread &T : Clients)
    T.join();

  JobResult HR = Hostile.get();
  if (HR.Ok || HR.Kind != ErrorKind::Timeout) {
    std::printf("FAIL hostile request: ok=%d kind=%d (%s)\n", HR.Ok,
                static_cast<int>(HR.Kind), HR.Error.c_str());
    ++Failures;
  } else {
    std::printf("hostile request evicted by its timeout: %s\n",
                HR.Error.c_str());
  }

  Pool.shutdown();

  PoolStats S = Pool.stats();
  std::printf("served %llu jobs on %u workers: completed=%llu "
              "tripped=%llu queue-high-water=%llu mark-creates=%llu\n",
              static_cast<unsigned long long>(S.JobsSubmitted),
              Pool.workerCount(),
              static_cast<unsigned long long>(S.JobsCompleted),
              static_cast<unsigned long long>(S.JobsTripped),
              static_cast<unsigned long long>(S.QueueHighWater),
              static_cast<unsigned long long>(S.Engines.MarkFrameCreates));
  if (S.JobsCompleted != 100 || S.JobsTripped != 1)
    ++Failures;

  return Failures.load() == 0 ? 0 : 1;
}
