//===- examples/stack_tracer.cpp - Context inspection ----------*- C++ -*-===//
///
/// \file
/// Stack inspection for debugging (one of the paper's motivating uses):
/// functions annotate their frames with continuation marks, and an error
/// reporter reads the annotations back — including from a continuation
/// captured at the error point, long after the stack has been unwound.
/// Tail calls share frames, so the trace is exactly as deep as the real
/// continuation, never deeper.
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"

#include <cstdio>

int main() {
  cmk::SchemeEngine Engine;

  Engine.evalOrDie(R"((begin
    ;; A tiny instrumented interpreter: each evaluation step annotates its
    ;; frame with the expression it is working on.
    (define (ev e env)
      (with-stack-frame (list 'ev e)
        (cond
          [(symbol? e)
           (let ([b (assq e env)])
             (if b (cdr b) (error "unbound" e)))]
          [(number? e) e]
          [(eq? (car e) '+) (+ (ev2 (cadr e) env) (ev2 (caddr e) env))]
          [(eq? (car e) '*) (* (ev2 (cadr e) env) (ev2 (caddr e) env))]
          [else (error "bad form" e)])))
    ;; Non-tail helper so nested frames stay live during subexpressions.
    (define (ev2 e env) (car (list (ev e env))))

    (define (run-with-trace e env)
      (catch (lambda (err)
               (list 'error (exn-message err)
                     'trace (current-stack-trace-at-throw)))
        (ev e env)))

    ;; Capture the trace when throwing, via marks on the continuation that
    ;; is still live at the throw point.
    (define trace-at-throw (box '()))
    (define (current-stack-trace-at-throw) (unbox trace-at-throw))
    (define base-error error)
    (set! error
      (lambda args
        (set-box! trace-at-throw (current-stack-trace))
        (apply base-error args)))))");

  std::printf("ok result:     %s\n",
              Engine.evalToString("(run-with-trace '(+ 1 (* x 3))"
                                  "                (list (cons 'x 5)))")
                  .c_str());

  std::printf("error + trace: %s\n",
              Engine.evalToString("(run-with-trace '(+ 1 (* y 3))"
                                  "                (list (cons 'x 5)))")
                  .c_str());

  // Profiling-style use: measure the deepest annotated continuation seen
  // while evaluating leaves — a miniature of mark-based profilers.
  std::printf("depth probe:   %s\n",
              Engine
                  .evalToString(
                      "(define (depth-of e)"
                      "  (define depth (box 0))"
                      "  (define old-ev2 ev2)"
                      "  (set! ev2 (lambda (e env)"
                      "    (set-box! depth (max (unbox depth)"
                      "                         (length (current-stack-trace))))"
                      "    (old-ev2 e env)))"
                      "  (ev e '())"
                      "  (set! ev2 old-ev2)"
                      "  (unbox depth))"
                      "(depth-of '(+ 1 (* 2 (+ 3 (* 4 5)))))")
                  .c_str());

  if (!Engine.ok()) {
    std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
    return 1;
  }
  return 0;
}
