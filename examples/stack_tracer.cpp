//===- examples/stack_tracer.cpp - Tracing and stack snapshots -*- C++ -*-===//
///
/// \file
/// Stack inspection and profiling (two of the paper's motivating uses),
/// demonstrated end to end with the trace subsystem:
///
///   1. Functions annotate their frames with continuation marks
///      (with-stack-frame), and (current-stack-snapshot) reads the live
///      annotations back — tail calls share frames, so a snapshot is
///      exactly as deep as the real continuation, never deeper.
///   2. (call-with-profiling thunk) and the `profiled` form attribute
///      trace spans to those same mark-annotated frames, and the engine
///      exports the whole run as Chrome trace-event JSON that loads
///      directly in ui.perfetto.dev.
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"
#include "support/trace.h"

#include <cstdio>
#include <map>
#include <string>

int main() {
  cmk::SchemeEngine Engine;

  // Record everything from here on; the ring holds the newest events.
  Engine.startTrace();

  Engine.evalOrDie(R"((begin
    ;; A tiny instrumented interpreter: each evaluation step annotates its
    ;; frame with the operator it is working on, and leaf lookups take a
    ;; stack snapshot (which also drops a labeled instant into the trace).
    (define deepest (box '()))
    (define (note-depth!)
      (let ([snap (current-stack-snapshot)])
        (when (> (length snap) (length (unbox deepest)))
          (set-box! deepest snap))))
    (define (ev e env)
      (with-stack-frame (if (pair? e) (car e) e)
        (cond
          [(symbol? e) (note-depth!)
                       (let ([b (assq e env)])
                         (if b (cdr b) (error "unbound" e)))]
          [(number? e) e]
          [(eq? (car e) '+) (+ (ev2 (cadr e) env) (ev2 (caddr e) env))]
          [(eq? (car e) '*) (* (ev2 (cadr e) env) (ev2 (caddr e) env))]
          [else (error "bad form" e)])))
    ;; Non-tail helper so nested frames stay live during subexpressions.
    (define (ev2 e env) (car (list (ev e env))))))");

  // `profiled` wraps the evaluation in a named span, so in Perfetto the
  // whole interpretation shows up as one slice with VM events inside it.
  std::printf("result:        %s\n",
              Engine
                  .evalToString("(profiled 'interpret"
                                "  (ev '(+ 1 (* x (+ x 2))) "
                                "      (list (cons 'x 5))))")
                  .c_str());
  std::printf("deepest stack: %s\n",
              Engine.evalToString("(unbox deepest)").c_str());

  Engine.stopTrace();
  if (!Engine.ok()) {
    std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
    return 1;
  }

  // Summarize what the VM recorded, straight from the ring buffer.
  const cmk::TraceBuffer &T = Engine.trace();
  int Count = 0;
  const cmk::TraceEventDesc *Descs = cmk::traceEventDescs(Count);
  std::map<std::string, uint64_t> Counts;
  for (uint64_t I = 0; I < T.size(); ++I) {
    const cmk::TraceEventDesc &D =
        Descs[static_cast<size_t>(T.at(I).Kind)];
    ++Counts[std::string(D.Category) + "/" + D.Name];
  }
  std::printf("trace summary: %llu events\n",
              static_cast<unsigned long long>(T.size()));
  for (const auto &KV : Counts)
    std::printf("  %-28s %6llu\n", KV.first.c_str(),
                static_cast<unsigned long long>(KV.second));

  // And the same data as a Perfetto-loadable file.
  const char *Path = "stack_tracer_trace.json";
  if (Engine.dumpTrace(Path))
    std::printf("wrote %s (load it in ui.perfetto.dev)\n", Path);

  std::string Json = Engine.traceToJson();
  if (Json.find("cmarks-trace-v1") == std::string::npos) {
    std::fprintf(stderr, "trace JSON missing schema marker\n");
    return 1;
  }
  return 0;
}
