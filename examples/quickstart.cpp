//===- examples/quickstart.cpp - cmarks in five minutes --------*- C++ -*-===//
///
/// \file
/// Embeds the cmarks engine, sets and reads continuation marks, and shows
/// the attachment primitives underneath them (paper sections 2 and 7.1).
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"

#include <cstdio>

int main() {
  cmk::SchemeEngine Engine;

  // Continuation marks 101: the 'team-color example from the paper.
  std::printf("newest mark:  %s\n",
              Engine
                  .evalToString(
                      "(define (current-team-color)"
                      "  (continuation-mark-set-first #f 'team-color \"?\"))"
                      "(with-continuation-mark 'team-color \"red\""
                      "  (current-team-color))")
                  .c_str());

  // Nested marks with the same key chain across frames; a tail-position
  // mark replaces the frame's existing one.
  std::printf("mark chain:   %s\n",
              Engine
                  .evalToString(
                      "(define (all-team-colors)"
                      "  (continuation-mark-set->list"
                      "   (current-continuation-marks) 'team-color))"
                      "(with-continuation-mark 'team-color \"red\""
                      "  (list (with-continuation-mark 'team-color \"blue\""
                      "          (all-team-colors))))")
                  .c_str());

  // The lower-level interface the compiler actually supports (7.1).
  std::printf("attachments:  %s\n",
              Engine
                  .evalToString(
                      "(call-setting-continuation-attachment 'outer"
                      "  (lambda ()"
                      "    (call-getting-continuation-attachment 'none"
                      "      (lambda (a) (list 'saw a)))))")
                  .c_str());

  if (!Engine.ok()) {
    std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
    return 1;
  }
  return 0;
}
