//===- examples/exceptions.cpp - Exceptions from marks ---------*- C++ -*-===//
///
/// \file
/// Section 2.3 of the paper: a complete exception system (catch/throw with
/// a handler stack) implemented as a library over continuation marks and
/// call/cc — no compiler support specific to exceptions. This example
/// walks through the behaviours the paper designs for: escaping to the
/// nearest handler, handler stacks, rethrows, and catch bodies in tail
/// position.
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"

#include <cstdio>

static void show(cmk::SchemeEngine &Engine, const char *What,
                 const char *Src) {
  std::printf("%-22s %s\n", What, Engine.evalToString(Src).c_str());
  if (!Engine.ok())
    std::printf("  error: %s\n", Engine.lastError().c_str());
}

int main() {
  cmk::SchemeEngine Engine;

  show(Engine, "catch returns body:",
       "(catch (lambda (e) 'unused) (* 6 7))");

  show(Engine, "throw escapes:",
       "(catch (lambda (e) (list 'caught e))"
       "  (+ 1 (throw 'problem)))");

  show(Engine, "nearest handler:",
       "(catch (lambda (e) 'outer)"
       "  (catch (lambda (e) (list 'inner e))"
       "    (throw 'oops)))");

  show(Engine, "rethrow chains:",
       "(catch (lambda (e) (list 'outer-sees e))"
       "  (catch (lambda (e) (throw (list 'wrapped e)))"
       "    (throw 'original)))");

  show(Engine, "error objects:",
       "(catch (lambda (e)"
       "         (list 'message (exn-message e) 'irritants (exn-irritants e)))"
       "  (error \"bad input\" 42 'context))");

  // The subtle design point from the paper: catch evaluates its body in
  // tail position, so loops through catch do not grow the continuation.
  show(Engine, "tail-position body:",
       "(define (retry-loop i)"
       "  (if (= i 300000)"
       "      'no-stack-growth"
       "      (catch (lambda (e) 'never) (retry-loop (+ i 1)))))"
       "(retry-loop 0)");

  // Cleanup actions compose with exceptions through dynamic-wind.
  show(Engine, "unwind on throw:",
       "(define log (box '()))"
       "(catch (lambda (e) (cons e (reverse (unbox log))))"
       "  (dynamic-wind"
       "    (lambda () (set-box! log (cons 'open (unbox log))))"
       "    (lambda () (throw 'failed))"
       "    (lambda () (set-box! log (cons 'close (unbox log))))))");

  return Engine.ok() ? 0 : 1;
}
