//===- examples/generators.cpp - Generators from prompts -------*- C++ -*-===//
///
/// \file
/// Generators implemented as a library over tagged prompts and composable
/// continuations (one of the paper's listed applications of Racket's
/// control toolbox). The generator library itself is ~25 lines of prelude
/// Scheme; this example drives it: finite generators, infinite streams,
/// and interleaved consumption.
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"

#include <cstdio>

int main() {
  cmk::SchemeEngine Engine;

  std::printf("finite:      %s\n",
              Engine
                  .evalToString("(define g (make-generator"
                                "  (lambda (yield)"
                                "    (yield 'a) (yield 'b) 'done)))"
                                "(list (g) (g) (g) (g))")
                  .c_str());

  std::printf("fibonacci:   %s\n",
              Engine
                  .evalToString("(define fibs (make-generator"
                                "  (lambda (yield)"
                                "    (let loop ([a 0] [b 1])"
                                "      (yield a)"
                                "      (loop b (+ a b))))))"
                                "(map (lambda (_) (fibs)) (iota 12))")
                  .c_str());

  std::printf("tree walk:   %s\n",
              Engine
                  .evalToString(
                      "(define (tree->generator tree)"
                      "  (make-generator"
                      "   (lambda (yield)"
                      "     (let walk ([t tree])"
                      "       (cond [(null? t) (void)]"
                      "             [(pair? t) (walk (car t)) (walk (cdr t))]"
                      "             [else (yield t)]))"
                      "     'end)))"
                      "(define tg (tree->generator '((1 (2)) 3 ((4) 5))))"
                      "(list (tg) (tg) (tg) (tg) (tg) (tg))")
                  .c_str());

  std::printf("same-fringe: %s\n",
              Engine
                  .evalToString(
                      "(define (same-fringe? t1 t2)"
                      "  (let ([g1 (tree->generator t1)]"
                      "        [g2 (tree->generator t2)])"
                      "    (let loop ()"
                      "      (let ([v1 (g1)] [v2 (g2)])"
                      "        (cond [(and (eq? v1 'end) (eq? v2 'end)) #t]"
                      "              [(equal? v1 v2) (loop)]"
                      "              [else #f])))))"
                      "(list (same-fringe? '((1 2) 3) '(1 (2 3)))"
                      "      (same-fringe? '((1 2) 3) '(1 (3 2))))")
                  .c_str());

  // Generators keep their own dynamic extent: marks set around yield are
  // visible when the generator resumes.
  std::printf("marks+yield: %s\n",
              Engine
                  .evalToString(
                      "(define labelled (make-generator"
                      "  (lambda (yield)"
                      "    (with-continuation-mark 'who 'inside"
                      "      (car (list"
                      "        (yield (continuation-mark-set-first #f 'who)))))"
                      "    (yield (continuation-mark-set-first #f 'who 'none))"
                      "    'fin)))"
                      "(list (labelled) (labelled))")
                  .c_str());

  if (!Engine.ok()) {
    std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
    return 1;
  }
  return 0;
}
