//===- examples/limits.cpp - Resource-governed evaluation ------*- C++ -*-===//
///
/// \file
/// The engine's resource-governance layer end to end: one engine, three
/// runaway programs — infinite recursion, unbounded allocation, an
/// infinite loop — each stopped by its budget and surfaced as a
/// *catchable* Scheme exception. A handler runs, dynamic-wind after
/// thunks run, and the very same engine then evaluates a correct program.
///
/// The budgets come from EngineOptions (the REPL exposes the same knobs
/// as --heap-limit / --stack-limit / --timeout), and a host thread can
/// stop a computation at any time with requestInterrupt().
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

using namespace cmk;

namespace {

int Failures = 0;

void check(SchemeEngine &E, const char *What, const std::string &Src,
           const std::string &Expected) {
  std::string Got = E.evalToString(Src);
  if (!E.ok()) {
    std::printf("FAIL %s: error: %s\n", What, E.lastError().c_str());
    ++Failures;
    return;
  }
  bool Pass = Got == Expected;
  std::printf("%s %s: %s\n", Pass ? "ok  " : "FAIL", What, Got.c_str());
  if (!Pass)
    ++Failures;
}

} // namespace

int main() {
  EngineOptions Opts;
  Opts.VmCfg.Limits.HeapBytes = 32ull << 20;  // 32 MB heap budget
  Opts.VmCfg.Limits.MaxLiveSegments = 64;     // bounded continuation depth
  Opts.VmCfg.Limits.TimeoutMs = 2000;         // 2 s per evaluation
  SchemeEngine Engine(Opts);

  // 1. Infinite (non-tail) recursion: the stack-segment budget trips and
  //    the handler sees exn:stack-limit?. dynamic-wind after thunks run
  //    while the limit unwinds, exactly as for any other exception.
  check(Engine, "infinite recursion",
        "(define cleanup-ran #f)\n"
        "(define (spin n) (+ 1 (spin (+ n 1))))\n"
        "(with-handlers ([exn:stack-limit?\n"
        "                 (lambda (e) (list 'stack-limit cleanup-ran))])\n"
        "  (dynamic-wind\n"
        "    (lambda () #f)\n"
        "    (lambda () (spin 0))\n"
        "    (lambda () (set! cleanup-ran #t))))",
        "(stack-limit #t)");

  // 2. Unbounded allocation: the heap byte budget trips; the allocation
  //    that crossed the line completes out of a reserved headroom slab so
  //    the handler itself has room to run.
  check(Engine, "unbounded allocation",
        "(with-handlers ([exn:heap-limit? (lambda (e) 'heap-limit)])\n"
        "  (let loop ([acc '()])\n"
        "    (loop (cons (make-vector 1024 0) acc))))",
        "heap-limit");

  // 3. Infinite loop: the wall-clock deadline trips at a safe point even
  //    though the loop never allocates or deepens the stack.
  check(Engine, "infinite loop",
        "(with-handlers ([exn:timeout? (lambda (e) 'timed-out)])\n"
        "  (let loop () (loop)))",
        "timed-out");

  // 4. Cross-thread interrupt: a host thread stops the evaluation; the
  //    program sees exn:interrupt?.
  {
    std::thread Stopper([&Engine] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      Engine.requestInterrupt();
    });
    check(Engine, "host interrupt",
          "(with-handlers ([exn:interrupt? (lambda (e) 'interrupted)])\n"
          "  (let loop () (loop)))",
          "interrupted");
    Stopper.join();
  }

  // 5. The same engine, after all four trips, still computes: budgets
  //    re-arm per evaluation and the condemned stacks/heaps were garbage
  //    collected, not leaked.
  check(Engine, "engine still works",
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))\n"
        "(fib 20)",
        "6765");

  std::printf("governance trips: heap=%llu stack=%llu timeout=%llu "
              "interrupt=%llu\n",
              static_cast<unsigned long long>(Engine.stats().LimitHeapTrips),
              static_cast<unsigned long long>(Engine.stats().LimitStackTrips),
              static_cast<unsigned long long>(
                  Engine.stats().LimitTimeoutTrips),
              static_cast<unsigned long long>(Engine.stats().LimitInterrupts));
  return Failures == 0 ? 0 : 1;
}
