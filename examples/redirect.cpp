//===- examples/redirect.cpp - Output redirection via marks ----*- C++ -*-===//
///
/// \file
/// The paper's opening example (section 1): redirecting output for the
/// extent of one call. With a global stdout variable this needs manual
/// save/restore, breaks tail calls, and interacts badly with exceptions
/// and continuations. With a parameter (dynamic binding over continuation
/// marks) it is one form — and this example demonstrates each property the
/// paper lists: tail position, exception escapes, and continuation jumps.
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"

#include <cstdio>

int main() {
  cmk::SchemeEngine Engine;

  // Redirect output for one call; printf-like helpers read the parameter.
  std::printf("basic redirection:\n%s\n",
              Engine
                  .evalToString(
                      "(define (func) (display \"  func writes here\\n\"))"
                      "(let ([p (open-output-string)])"
                      "  (parameterize ([current-output-port p]) (func))"
                      "  (get-output-string p))")
                  .c_str());

  // The redirected call is in tail position: a redirecting loop does not
  // grow the stack, which the global-variable approach cannot do.
  std::printf("tail safety:  %s\n",
              Engine
                  .evalToString(
                      "(define sink (open-output-string))"
                      "(define (emit-loop i)"
                      "  (if (zero? i)"
                      "      'ok"
                      "      (parameterize ([current-output-port sink])"
                      "        (emit-loop (- i 1)))))"
                      "(emit-loop 1000000)")
                  .c_str());

  // An exception escape restores the outer stream automatically.
  std::printf("exception:    %s\n",
              Engine
                  .evalToString(
                      "(define (crashing-report)"
                      "  (display \"partial...\")"
                      "  (error \"disk full\"))"
                      "(let ([p (open-output-string)])"
                      "  (catch (lambda (e) 'recovered)"
                      "    (parameterize ([current-output-port p])"
                      "      (crashing-report)))"
                      "  (list 'captured (get-output-string p)"
                      "        'outer-restored (port? (current-output-port))))")
                  .c_str());

  // A continuation jump out of (and back into) the redirected extent sees
  // the right stream each time, with no winding code in user programs.
  std::printf("continuation: %s\n",
              Engine
                  .evalToString(
                      "(let ([k0 (box #f)] [hits (box 0)] [trace (box '())])"
                      "  (define (note)"
                      "    (set-box! trace"
                      "              (cons (if (eq? (current-output-port) sink)"
                      "                        'redirected 'default)"
                      "                    (unbox trace))))"
                      "  (parameterize ([current-output-port sink])"
                      "    (call/cc (lambda (k) (set-box! k0 k)))"
                      "    (note))"
                      "  (note)"
                      "  (set-box! hits (+ 1 (unbox hits)))"
                      "  (if (< (unbox hits) 2)"
                      "      ((unbox k0) #f)"
                      "      (reverse (unbox trace))))")
                  .c_str());

  if (!Engine.ok()) {
    std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
    return 1;
  }
  return 0;
}
