# Empty compiler generated dependencies file for cmarks.
# This may be replaced when dependencies are built.
