
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/scheme.cpp" "src/CMakeFiles/cmarks.dir/api/scheme.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/api/scheme.cpp.o.d"
  "/root/repo/src/compiler/attachments_pass.cpp" "src/CMakeFiles/cmarks.dir/compiler/attachments_pass.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/attachments_pass.cpp.o.d"
  "/root/repo/src/compiler/bytecode.cpp" "src/CMakeFiles/cmarks.dir/compiler/bytecode.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/bytecode.cpp.o.d"
  "/root/repo/src/compiler/codegen.cpp" "src/CMakeFiles/cmarks.dir/compiler/codegen.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/codegen.cpp.o.d"
  "/root/repo/src/compiler/compiler.cpp" "src/CMakeFiles/cmarks.dir/compiler/compiler.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/compiler.cpp.o.d"
  "/root/repo/src/compiler/cp0.cpp" "src/CMakeFiles/cmarks.dir/compiler/cp0.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/cp0.cpp.o.d"
  "/root/repo/src/compiler/disasm.cpp" "src/CMakeFiles/cmarks.dir/compiler/disasm.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/disasm.cpp.o.d"
  "/root/repo/src/compiler/expand.cpp" "src/CMakeFiles/cmarks.dir/compiler/expand.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/expand.cpp.o.d"
  "/root/repo/src/compiler/free_vars.cpp" "src/CMakeFiles/cmarks.dir/compiler/free_vars.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/compiler/free_vars.cpp.o.d"
  "/root/repo/src/control/prompts.cpp" "src/CMakeFiles/cmarks.dir/control/prompts.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/control/prompts.cpp.o.d"
  "/root/repo/src/lib/parameters.cpp" "src/CMakeFiles/cmarks.dir/lib/parameters.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/lib/parameters.cpp.o.d"
  "/root/repo/src/lib/prelude.cpp" "src/CMakeFiles/cmarks.dir/lib/prelude.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/lib/prelude.cpp.o.d"
  "/root/repo/src/marks/mark_frame.cpp" "src/CMakeFiles/cmarks.dir/marks/mark_frame.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/marks/mark_frame.cpp.o.d"
  "/root/repo/src/marks/mark_set.cpp" "src/CMakeFiles/cmarks.dir/marks/mark_set.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/marks/mark_set.cpp.o.d"
  "/root/repo/src/model/heap_model.cpp" "src/CMakeFiles/cmarks.dir/model/heap_model.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/model/heap_model.cpp.o.d"
  "/root/repo/src/reader/reader.cpp" "src/CMakeFiles/cmarks.dir/reader/reader.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/reader/reader.cpp.o.d"
  "/root/repo/src/runtime/equal.cpp" "src/CMakeFiles/cmarks.dir/runtime/equal.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/equal.cpp.o.d"
  "/root/repo/src/runtime/hashtable.cpp" "src/CMakeFiles/cmarks.dir/runtime/hashtable.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/hashtable.cpp.o.d"
  "/root/repo/src/runtime/heap.cpp" "src/CMakeFiles/cmarks.dir/runtime/heap.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/heap.cpp.o.d"
  "/root/repo/src/runtime/numbers.cpp" "src/CMakeFiles/cmarks.dir/runtime/numbers.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/numbers.cpp.o.d"
  "/root/repo/src/runtime/printer.cpp" "src/CMakeFiles/cmarks.dir/runtime/printer.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/printer.cpp.o.d"
  "/root/repo/src/runtime/symbols.cpp" "src/CMakeFiles/cmarks.dir/runtime/symbols.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/symbols.cpp.o.d"
  "/root/repo/src/runtime/value.cpp" "src/CMakeFiles/cmarks.dir/runtime/value.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/runtime/value.cpp.o.d"
  "/root/repo/src/support/debug.cpp" "src/CMakeFiles/cmarks.dir/support/debug.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/support/debug.cpp.o.d"
  "/root/repo/src/vm/attachments.cpp" "src/CMakeFiles/cmarks.dir/vm/attachments.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/attachments.cpp.o.d"
  "/root/repo/src/vm/callcc.cpp" "src/CMakeFiles/cmarks.dir/vm/callcc.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/callcc.cpp.o.d"
  "/root/repo/src/vm/dynwind.cpp" "src/CMakeFiles/cmarks.dir/vm/dynwind.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/dynwind.cpp.o.d"
  "/root/repo/src/vm/primitives.cpp" "src/CMakeFiles/cmarks.dir/vm/primitives.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/primitives.cpp.o.d"
  "/root/repo/src/vm/primitives_list.cpp" "src/CMakeFiles/cmarks.dir/vm/primitives_list.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/primitives_list.cpp.o.d"
  "/root/repo/src/vm/primitives_string.cpp" "src/CMakeFiles/cmarks.dir/vm/primitives_string.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/primitives_string.cpp.o.d"
  "/root/repo/src/vm/stacks.cpp" "src/CMakeFiles/cmarks.dir/vm/stacks.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/stacks.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/CMakeFiles/cmarks.dir/vm/vm.cpp.o" "gcc" "src/CMakeFiles/cmarks.dir/vm/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
