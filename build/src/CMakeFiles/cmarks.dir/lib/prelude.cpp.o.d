src/CMakeFiles/cmarks.dir/lib/prelude.cpp.o: \
 /root/repo/src/lib/prelude.cpp /usr/include/stdc-predef.h \
 /root/repo/src/lib/prelude.h
