file(REMOVE_RECURSE
  "libcmarks.a"
)
