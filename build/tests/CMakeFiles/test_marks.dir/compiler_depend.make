# Empty compiler generated dependencies file for test_marks.
# This may be replaced when dependencies are built.
