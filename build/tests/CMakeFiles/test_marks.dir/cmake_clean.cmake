file(REMOVE_RECURSE
  "CMakeFiles/test_marks.dir/test_marks.cpp.o"
  "CMakeFiles/test_marks.dir/test_marks.cpp.o.d"
  "test_marks"
  "test_marks.pdb"
  "test_marks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
