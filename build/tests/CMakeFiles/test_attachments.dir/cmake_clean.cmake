file(REMOVE_RECURSE
  "CMakeFiles/test_attachments.dir/test_attachments.cpp.o"
  "CMakeFiles/test_attachments.dir/test_attachments.cpp.o.d"
  "test_attachments"
  "test_attachments.pdb"
  "test_attachments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attachments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
