# Empty dependencies file for test_attachments.
# This may be replaced when dependencies are built.
