# Empty compiler generated dependencies file for test_engine_api.
# This may be replaced when dependencies are built.
