file(REMOVE_RECURSE
  "CMakeFiles/test_engine_api.dir/test_engine_api.cpp.o"
  "CMakeFiles/test_engine_api.dir/test_engine_api.cpp.o.d"
  "test_engine_api"
  "test_engine_api.pdb"
  "test_engine_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
