file(REMOVE_RECURSE
  "CMakeFiles/test_oneshot.dir/test_oneshot.cpp.o"
  "CMakeFiles/test_oneshot.dir/test_oneshot.cpp.o.d"
  "test_oneshot"
  "test_oneshot.pdb"
  "test_oneshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oneshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
