file(REMOVE_RECURSE
  "CMakeFiles/test_property_control.dir/test_property_control.cpp.o"
  "CMakeFiles/test_property_control.dir/test_property_control.cpp.o.d"
  "test_property_control"
  "test_property_control.pdb"
  "test_property_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
