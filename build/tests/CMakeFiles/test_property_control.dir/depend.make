# Empty dependencies file for test_property_control.
# This may be replaced when dependencies are built.
