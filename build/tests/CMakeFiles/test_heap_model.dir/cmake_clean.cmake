file(REMOVE_RECURSE
  "CMakeFiles/test_heap_model.dir/test_heap_model.cpp.o"
  "CMakeFiles/test_heap_model.dir/test_heap_model.cpp.o.d"
  "test_heap_model"
  "test_heap_model.pdb"
  "test_heap_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heap_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
