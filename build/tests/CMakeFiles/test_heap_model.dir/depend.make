# Empty dependencies file for test_heap_model.
# This may be replaced when dependencies are built.
