file(REMOVE_RECURSE
  "CMakeFiles/test_prompts.dir/test_prompts.cpp.o"
  "CMakeFiles/test_prompts.dir/test_prompts.cpp.o.d"
  "test_prompts"
  "test_prompts.pdb"
  "test_prompts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prompts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
