# Empty dependencies file for test_continuations.
# This may be replaced when dependencies are built.
