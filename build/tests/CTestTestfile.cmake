# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_reader[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_vm_core[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_attachments[1]_include.cmake")
include("/root/repo/build/tests/test_continuations[1]_include.cmake")
include("/root/repo/build/tests/test_marks[1]_include.cmake")
include("/root/repo/build/tests/test_prompts[1]_include.cmake")
include("/root/repo/build/tests/test_library[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_programs[1]_include.cmake")
include("/root/repo/build/tests/test_oneshot[1]_include.cmake")
include("/root/repo/build/tests/test_engine_api[1]_include.cmake")
include("/root/repo/build/tests/test_property_control[1]_include.cmake")
include("/root/repo/build/tests/test_heap_model[1]_include.cmake")
