file(REMOVE_RECURSE
  "CMakeFiles/bench_contracts.dir/bench_contracts.cpp.o"
  "CMakeFiles/bench_contracts.dir/bench_contracts.cpp.o.d"
  "bench_contracts"
  "bench_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
