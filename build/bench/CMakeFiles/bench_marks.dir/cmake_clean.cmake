file(REMOVE_RECURSE
  "CMakeFiles/bench_marks.dir/bench_marks.cpp.o"
  "CMakeFiles/bench_marks.dir/bench_marks.cpp.o.d"
  "bench_marks"
  "bench_marks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_marks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
