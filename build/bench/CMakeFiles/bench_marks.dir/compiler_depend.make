# Empty compiler generated dependencies file for bench_marks.
# This may be replaced when dependencies are built.
