file(REMOVE_RECURSE
  "CMakeFiles/bench_triple.dir/bench_triple.cpp.o"
  "CMakeFiles/bench_triple.dir/bench_triple.cpp.o.d"
  "bench_triple"
  "bench_triple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
