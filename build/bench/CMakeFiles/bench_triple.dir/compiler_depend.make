# Empty compiler generated dependencies file for bench_triple.
# This may be replaced when dependencies are built.
