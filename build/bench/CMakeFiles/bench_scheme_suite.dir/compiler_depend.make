# Empty compiler generated dependencies file for bench_scheme_suite.
# This may be replaced when dependencies are built.
