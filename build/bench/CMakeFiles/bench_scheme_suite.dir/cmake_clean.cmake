file(REMOVE_RECURSE
  "CMakeFiles/bench_scheme_suite.dir/bench_scheme_suite.cpp.o"
  "CMakeFiles/bench_scheme_suite.dir/bench_scheme_suite.cpp.o.d"
  "bench_scheme_suite"
  "bench_scheme_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheme_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
