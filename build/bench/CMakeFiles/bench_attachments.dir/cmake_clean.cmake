file(REMOVE_RECURSE
  "CMakeFiles/bench_attachments.dir/bench_attachments.cpp.o"
  "CMakeFiles/bench_attachments.dir/bench_attachments.cpp.o.d"
  "bench_attachments"
  "bench_attachments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attachments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
