# Empty dependencies file for bench_attachments.
# This may be replaced when dependencies are built.
