file(REMOVE_RECURSE
  "CMakeFiles/bench_ctak.dir/bench_ctak.cpp.o"
  "CMakeFiles/bench_ctak.dir/bench_ctak.cpp.o.d"
  "bench_ctak"
  "bench_ctak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
