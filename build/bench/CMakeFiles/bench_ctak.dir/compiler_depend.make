# Empty compiler generated dependencies file for bench_ctak.
# This may be replaced when dependencies are built.
