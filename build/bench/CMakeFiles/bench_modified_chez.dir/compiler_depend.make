# Empty compiler generated dependencies file for bench_modified_chez.
# This may be replaced when dependencies are built.
