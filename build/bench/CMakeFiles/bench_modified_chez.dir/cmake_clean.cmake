file(REMOVE_RECURSE
  "CMakeFiles/bench_modified_chez.dir/bench_modified_chez.cpp.o"
  "CMakeFiles/bench_modified_chez.dir/bench_modified_chez.cpp.o.d"
  "bench_modified_chez"
  "bench_modified_chez.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modified_chez.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
