# Empty compiler generated dependencies file for redirect.
# This may be replaced when dependencies are built.
