file(REMOVE_RECURSE
  "CMakeFiles/redirect.dir/redirect.cpp.o"
  "CMakeFiles/redirect.dir/redirect.cpp.o.d"
  "redirect"
  "redirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
