file(REMOVE_RECURSE
  "CMakeFiles/exceptions.dir/exceptions.cpp.o"
  "CMakeFiles/exceptions.dir/exceptions.cpp.o.d"
  "exceptions"
  "exceptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exceptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
