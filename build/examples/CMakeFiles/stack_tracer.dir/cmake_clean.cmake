file(REMOVE_RECURSE
  "CMakeFiles/stack_tracer.dir/stack_tracer.cpp.o"
  "CMakeFiles/stack_tracer.dir/stack_tracer.cpp.o.d"
  "stack_tracer"
  "stack_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
