# Empty dependencies file for stack_tracer.
# This may be replaced when dependencies are built.
