# Empty compiler generated dependencies file for cmarks_repl.
# This may be replaced when dependencies are built.
