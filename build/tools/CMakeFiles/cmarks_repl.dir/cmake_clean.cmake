file(REMOVE_RECURSE
  "CMakeFiles/cmarks_repl.dir/cmarks_repl.cpp.o"
  "CMakeFiles/cmarks_repl.dir/cmarks_repl.cpp.o.d"
  "cmarks_repl"
  "cmarks_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmarks_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
