//===- bench/bench_marks.cpp - E6: figure 5 micros -------------*- C++ -*-===//
///
/// \file
/// The continuation-mark microbenchmarks of figure 5: marks over
/// attachments ("Racket CS") versus the old-Racket-style eager mark stack
/// ("Racket"). Expected shape: the mark stack wins slightly on pure set
/// loops and shallow first lookups (contiguous vector vs heap list), while
/// attachments win on set-around-call patterns and anything that captures
/// continuations; base rows are equal.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/micro_marks.h"

#include <string>

using namespace cmkbench;
using cmk::EngineVariant;
using cmk::SchemeEngine;

int main() {
  printTitle("E6: mark micros, attachments (Racket CS) vs mark stack "
             "(old Racket) (fig 5)");
  std::printf("  %-22s %12s   %-7s %s\n", "benchmark", "Racket CS",
              "Racket", "(ratio range)");

  int Count = 0;
  const MarkMicro *Micros = markMicros(Count);
  bool AllOk = true;
  JsonReport Report("marks");

  for (int I = 0; I < Count; ++I) {
    const MarkMicro &B = Micros[I];
    long N = scaled(B.DefaultN);
    std::string Run = "(bench-entry " + std::to_string(N) + ")";

    SchemeEngine CS(EngineVariant::Builtin);
    CS.evalOrDie(B.Source);
    SchemeEngine Old(EngineVariant::MarkStack);
    Old.evalOrDie(B.Source);

    if (N == B.DefaultN) {
      std::string G1 = CS.evalToString(Run);
      std::string G2 = Old.evalToString(Run);
      if (G1 != B.Expected || G2 != B.Expected) {
        std::fprintf(stderr, "%s: expected %s, CS=%s mark-stack=%s\n", B.Name,
                     B.Expected, G1.c_str(), G2.c_str());
        AllOk = false;
        continue;
      }
    }

    Measurement MCS = measureExpr(CS, Run);
    Measurement MOld = measureExpr(Old, Run);
    Report.add(B.Name, EngineVariant::Builtin, MCS);
    Report.add(B.Name, EngineVariant::MarkStack, MOld);
    printSpeedupRow(B.Name, MCS.T, MOld.T);
  }
  return AllOk ? 0 : 1;
}
