//===- bench/bench_ctak.cpp - E1: section 8.1 ctak table -------*- C++ -*-===//
///
/// \file
/// Reproduces the continuation-performance comparison of section 8.1. The
/// paper compares Scheme implementations with different continuation
/// strategies; we compare the same strategies as configurations of one
/// system (see DESIGN.md substitutions):
///
///   raw capture        ~ Chez Scheme   (stack segments, copy-on-apply)
///   wrapped call/cc    ~ Racket CS     (winder-aware wrapper indirection)
///   heap frames        ~ Pycket        (frame-per-segment)
///   copy-on-capture    ~ Gambit/CHICKEN (eager copying call/cc)
///
/// Expected shape: heap frames fastest for this capture-dominated
/// benchmark, raw capture close behind, wrapper slower by a constant
/// factor, copy-on-capture slowest.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/control.h"

using namespace cmkbench;
using cmk::EngineVariant;
using cmk::SchemeEngine;

int main() {
  printTitle("E1: ctak (paper 8.1) -- continuation strategy comparison");
  long X = 18, Y = 12, Z = 6;
  if (workScale() < 0.5) {
    X = 15;
    Y = 9;
    Z = 3;
  }
  char Run[64], RunRaw[64];
  std::snprintf(Run, sizeof(Run), "(ctak %ld %ld %ld)", X, Y, Z);
  std::snprintf(RunRaw, sizeof(RunRaw), "(ctak-raw %ld %ld %ld)", X, Y, Z);
  printNote("ctak" + std::string(Run + 5, Run + std::strlen(Run) - 1) +
            "; shapes matter, not absolute times");

  struct RowSpec {
    const char *Name; ///< JSON variant key.
    const char *Desc; ///< Human table row.
    EngineVariant V;
    bool Raw;
  };
  const RowSpec Rows[] = {
      {"heap-frames", "heap frames (Pycket-like)", EngineVariant::HeapFrames,
       false},
      {"raw-capture", "raw capture (Chez-like)", EngineVariant::Builtin,
       true},
      {"wrapped-callcc", "wrapped call/cc (Racket CS)",
       EngineVariant::Builtin, false},
      {"copy-on-capture", "copy-on-capture (Gambit-ish)",
       EngineVariant::CopyOnCapture, false},
  };

  JsonReport Report("ctak");
  for (const RowSpec &R : Rows) {
    SchemeEngine E(R.V);
    E.evalOrDie(ctakSource());
    E.evalOrDie(ctakRawSource());
    // Verify both entry points compute tak.
    if (E.evalToString("(ctak 7 4 2)") != "4" ||
        E.evalToString("(ctak-raw 7 4 2)") != "4") {
      std::fprintf(stderr, "ctak self-check failed\n");
      return 1;
    }
    Measurement M = measureExpr(E, R.Raw ? RunRaw : Run);
    Report.add("ctak", R.Name, M);
    printAbsRow(R.Desc, M.T);
  }
  return 0;
}
