//===- bench/bench_fibers.cpp - Fiber primitive costs ---------------------===//
///
/// \file
/// Microbenchmarks for the cooperative fiber runtime (vm/fibers.h,
/// DESIGN.md section 16). Every suspension point runs through the
/// paper's one-shot capture/apply machinery, so these cells measure the
/// continuation paths under scheduler-shaped load:
///
///   spawn-join        spawn a trivial fiber and join it, in a loop: one
///                     boot, one halt-return, one joiner park per round.
///   yield-pingpong    two fibers alternating via (yield): capture +
///                     switch + resume per hop, no timers.
///   channel-stream    a producer fiber streams N values through a
///                     capacity-1 bounded channel to the consuming root:
///                     two parks/unparks per element in steady state.
///   spawn-tree        a binary tree of nested spawns (depth 9): deep
///                     join dependencies and many simultaneously-live
///                     one-shot captures.
///
/// Results land in BENCH_fibers.json (schema cmarks-bench-v1);
/// tools/bench_record.sh includes the blob in the repo-root trajectory
/// and check_bench.py gates the fiber-spawns / fiber-parks counters
/// against bench/baselines/ (site-driven, exactly reproducible at a
/// pinned scale).
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"

#include <cstdio>
#include <string>

using namespace cmkbench;

namespace {

struct Workload {
  const char *Name;
  std::string Setup;
  std::string CheckExpr; ///< Small instance with a known value.
  std::string CheckWant;
  std::string RunExpr; ///< The timed expression.
};

} // namespace

int main() {
  long SpawnN = scaled(20000);
  long HopN = scaled(20000);
  long StreamN = scaled(15000);
  long TreeRounds = scaled(12);

  Workload Workloads[] = {
      {"spawn-join",
       "(define (spawn-join n)"
       "  (let loop ((i n) (acc 0))"
       "    (if (zero? i) acc"
       "        (loop (- i 1)"
       "              (+ acc (fiber-join (spawn (lambda () 1))))))))",
       "(spawn-join 10)", "10",
       "(spawn-join " + std::to_string(SpawnN) + ")"},
      {"yield-pingpong",
       "(define (hopper m)"
       "  (lambda ()"
       "    (let loop ((i m)) (if (zero? i) i (begin (yield) (loop (- i 1)))))))"
       "(define (pingpong m)"
       "  (let ((a (spawn (hopper m))) (b (spawn (hopper m))))"
       "    (+ (fiber-join a) (fiber-join b) m)))",
       "(pingpong 10)", "10",
       "(pingpong " + std::to_string(HopN) + ")"},
      {"channel-stream",
       "(define (chan-stream n)"
       "  (let ((ch (make-channel 1)))"
       "    (spawn (lambda ()"
       "      (let loop ((i 0))"
       "        (if (< i n)"
       "            (begin (channel-put ch i) (loop (+ i 1)))"
       "            (channel-put ch 'done)))))"
       "    (let loop ((acc 0))"
       "      (let ((v (channel-get ch)))"
       "        (if (eq? v 'done) acc (loop (+ acc v)))))))",
       "(chan-stream 5)", "10",
       "(chan-stream " + std::to_string(StreamN) + ")"},
      {"spawn-tree",
       "(define (tree d)"
       "  (if (zero? d) 1"
       "      (let ((a (spawn (lambda () (tree (- d 1)))))"
       "            (b (spawn (lambda () (tree (- d 1))))))"
       "        (+ (fiber-join a) (fiber-join b)))))"
       "(define (tree-rounds r)"
       "  (let loop ((i r) (acc 0))"
       "    (if (zero? i) acc (loop (- i 1) (+ acc (tree 9))))))",
       "(tree 3)", "8",
       "(tree-rounds " + std::to_string(TreeRounds) + ")"},
  };

  printTitle("Fiber primitive costs (spawn/yield/channel/join)");
  JsonReport Report("fibers");

  for (const Workload &W : Workloads) {
    cmk::SchemeEngine E;
    E.evalOrDie(W.Setup);
    std::string Got = E.evalToString(W.CheckExpr);
    if (!E.ok() || Got != W.CheckWant) {
      std::fprintf(stderr,
                   "bench_fibers: %s sanity check failed: got %s, want %s\n",
                   W.Name, E.ok() ? Got.c_str() : E.lastError().c_str(),
                   W.CheckWant.c_str());
      return 1;
    }
    E.resetStats();
    Measurement M = measureExpr(E, W.RunExpr);
    std::printf("  %-16s %9.2f ms  +/-%-6.2f  %10llu spawns %10llu parks\n",
                W.Name, M.T.AvgMs, M.T.StdevMs,
                static_cast<unsigned long long>(M.Counters.FiberSpawns),
                static_cast<unsigned long long>(M.Counters.FiberParks));
    Report.add(W.Name, "builtin", M);
  }

  printNote("parks count every suspension (yield requeue, channel wait, "
            "join wait)");
  return 0;
}
