//===- bench/bench_modified_chez.cpp - E3: section 8.2 table ---*- C++ -*-===//
///
/// \file
/// The "cost of modifying Chez Scheme" experiment (section 8.2): run the
/// triple benchmark (call/cc encodings) on the unmodified compiler variant
/// versus the attachment-enabled compiler. The paper found the difference
/// within noise — the extra marks field and the cp0 constraint should not
/// tax programs that do not use attachments.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/control.h"

#include <string>

using namespace cmkbench;
using cmk::EngineVariant;

int main() {
  long N = scaled(150);
  printTitle("E3: triple on unmod vs attach variants (paper 8.2)");
  printNote("triple(" + std::to_string(N) + ") via call/cc encodings; "
            "expected: within noise");

  struct RowSpec {
    const char *Name;
    const char *Setup;
    const char *Entry;
  };
  const RowSpec Rows[] = {
      {"[K]", tripleKSource(), "triple-k"},
      {"[DPJS]", tripleDpjsSource(), "triple-dpjs"},
  };

  for (const RowSpec &R : Rows) {
    std::string Run =
        "(" + std::string(R.Entry) + " " + std::to_string(N) + ")";
    Timing Unmod = timeOnVariant(EngineVariant::Unmod, R.Setup, Run);
    Timing Attach = timeOnVariant(EngineVariant::Builtin, R.Setup, Run);
    Timing No1cc = timeOnVariant(EngineVariant::No1cc, R.Setup, Run);
    printRelRow(std::string("unmodified ") + R.Name, Unmod,
                {{"attach", Attach}, {"no-1cc", No1cc}});
  }
  return 0;
}
