//===- bench/bench_contracts.cpp - E7: section 8.4 contracts ---*- C++ -*-===//
///
/// \file
/// The contract-checking benchmark of section 8.4: call an imported,
/// non-inlined identity function in a loop, unchecked versus wrapped in a
/// (-> integer? integer?) contract, on built-in attachments versus the
/// figure 3 imitation. Expected shape: unchecked identical; checked pays
/// a few x over unchecked; imitation makes checked several times worse.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"

#include <string>

using namespace cmkbench;
using cmk::EngineVariant;

namespace {

const char *ContractSetup = R"(
(define plain-id (lambda (x) x))
(define checked-id
  (contract-wrap (-> integer/c integer/c) plain-id 'bench))
(define (call-loop f n)
  (let loop ([i n] [acc 0])
    (if (zero? i) acc (loop (- i 1) (+ 0 (f acc))))))
)";

} // namespace

int main() {
  long N = scaled(400000);
  printTitle("E7: contract checking (paper 8.4 contract table)");
  std::string RunUnchecked = "(call-loop plain-id " + std::to_string(N) + ")";
  std::string RunChecked = "(call-loop checked-id " + std::to_string(N) + ")";

  Timing UB = timeOnVariant(EngineVariant::Builtin, ContractSetup,
                            RunUnchecked);
  Timing UI = timeOnVariant(EngineVariant::Imitate, ContractSetup,
                            RunUnchecked);
  printRelRow("unchecked", UB, {{"imitate", UI}});

  Timing CB = timeOnVariant(EngineVariant::Builtin, ContractSetup,
                            RunChecked);
  Timing CI = timeOnVariant(EngineVariant::Imitate, ContractSetup,
                            RunChecked);
  printRelRow("checked", CB, {{"imitate", CI}});

  printNote("checked/unchecked builtin overhead: x" +
            std::to_string(UB.AvgMs > 0 ? CB.AvgMs / UB.AvgMs : 0));
  return 0;
}
