//===- bench/bench_pool.cpp - EnginePool serving throughput ---------------===//
///
/// \file
/// Throughput of the concurrent serving pool (support/pool.h): jobs/sec
/// at 1/2/4/8 workers over three request mixes.
///
///   ctak-cpu    pure-CPU continuation captures (the paper's ctak), no
///               wait time. Scales only with physical cores.
///   marks-cpu   pure-CPU continuation-mark churn (wcm + lookups).
///               Scales only with physical cores.
///   marks-heavy the serving mix: the same mark churn plus a short
///               simulated backend wait ((sleep-ms 3), standing in for a
///               database or upstream RPC). This is the deployment shape
///               EnginePool exists for, and the one where worker overlap
///               pays even on a single core: while one engine's request
///               waits, the other workers' requests run.
///
/// Each (mix, worker-count) cell builds a fresh pool, pushes a fixed
/// batch of jobs, and times submit-to-last-future-resolved wall clock.
/// The JSON blob (BENCH_pool.json, schema cmarks-bench-v1) keys cells as
/// benchmark = mix, variant = "workers-N", with the pool's aggregated
/// engine counters attached; jobs/sec and the 4-vs-1 speedup per mix are
/// also printed for eyeballing.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "support/pool.h"
#include "support/rng.h"
#include "support/timing.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cmk;
using namespace cmkbench;

namespace {

struct Mix {
  const char *Name;
  const char *Source; ///< One request's program text.
  long Jobs;          ///< Batch size before scaling.
};

const Mix Mixes[] = {
    {"ctak-cpu",
     "(ctak 15 10 5)",
     60},
    {"marks-cpu",
     "(let loop ((i 0) (acc 0))"
     "  (if (= i 120) acc"
     "      (with-continuation-mark 'k i"
     "        (loop (+ i 1)"
     "              (+ acc (car (continuation-mark-set->list"
     "                           (current-continuation-marks) 'k)))))))",
     150},
    {"marks-heavy",
     "(begin"
     "  (sleep-ms 3)" // Simulated backend wait (DB/upstream call).
     "  (let loop ((i 0) (acc 0))"
     "    (if (= i 60) acc"
     "        (with-continuation-mark 'k i"
     "          (loop (+ i 1)"
     "                (+ acc (car (continuation-mark-set->list"
     "                             (current-continuation-marks) 'k))))))))",
     200},
};

/// ctak needs a definition in every worker engine; submitted as a plain
/// job to each worker would be racy (no affinity), so it rides along in
/// every request instead. Cheap: define is a couple of instructions.
const char *CtakPrelude =
    "(define (ctak x y z)"
    "  (call/cc (lambda (k) (ctak-aux k x y z))))"
    "(define (ctak-aux k x y z)"
    "  (if (not (< y x))"
    "      (k z)"
    "      (ctak-aux k"
    "                (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))"
    "                (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))"
    "                (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))";

/// Times one batch of Jobs identical requests on a pool of W workers.
/// Returns the wall-clock of submit..last-resolve, the pool's final
/// aggregated engine counters, and per-job latency percentiles
/// (job_p50_ms / job_p99_ms / queue_wait_p50_ms / queue_wait_p99_ms)
/// from the pool's telemetry histograms.
Measurement runBatch(const Mix &M, unsigned W, long Jobs,
                     bool Fibers = false) {
  RunStats Wall;
  VMStats Counters;
  PoolTelemetry Telemetry;
  std::string Source = M.Source;
  if (std::string(M.Name) == "ctak-cpu")
    Source = std::string(CtakPrelude) + Source;
  for (int R = 0; R < runCount(); ++R) {
    PoolOptions Opts;
    Opts.Workers = W;
    Opts.QueueCapacity = static_cast<size_t>(Jobs) + 8;
    // Fiber mode (DESIGN.md section 16): jobs multiplex cooperatively
    // over the workers; a request's simulated backend wait parks its
    // fiber instead of pinning the worker thread.
    Opts.EnableFibers = Fibers;
    Opts.MaxFibersPerWorker = 256;
    EnginePool Pool(Opts);
    // Warm-up barrier: engines are constructed lazily on their worker
    // threads (prelude load included), which must not be billed to the
    // batch. One sleep job per worker spreads across all of them (a
    // worker is pinned to its job for the whole sleep), so every engine
    // is built and warm before the clock starts.
    {
      std::vector<std::future<JobResult>> Warm;
      for (unsigned I = 0; I < W; ++I)
        Warm.push_back(Pool.submit("(sleep-ms 15)"));
      for (auto &F : Warm)
        F.get();
    }
    std::vector<std::future<JobResult>> Futures;
    Futures.reserve(static_cast<size_t>(Jobs));
    uint64_t T0 = nowNanos();
    for (long I = 0; I < Jobs; ++I)
      Futures.push_back(Pool.submit(Source));
    for (auto &F : Futures) {
      JobResult JR = F.get();
      if (!JR.Ok) {
        std::fprintf(stderr, "bench_pool: job failed: %s\n",
                     JR.Error.c_str());
        std::exit(1);
      }
    }
    uint64_t T1 = nowNanos();
    Wall.addSampleNanos(T1 - T0);
    Pool.shutdown();
    Telemetry = Pool.telemetry(); // Last run's telemetry represents the cell.
    Counters = Telemetry.Stats.Engines;
  }
  Measurement Out{{Wall.averageMillis(), Wall.stddevMillis()}, Counters, {}};
  // Histogram samples are microseconds; export milliseconds to match the
  // blob's other timing fields. The warm-up jobs are included — they are
  // a negligible, constant W samples against the batch.
  Out.Extras = {
      {"job_p50_ms", Telemetry.RunUs.percentile(50) / 1000.0},
      {"job_p99_ms", Telemetry.RunUs.percentile(99) / 1000.0},
      {"queue_wait_p50_ms", Telemetry.QueueWaitUs.percentile(50) / 1000.0},
      {"queue_wait_p99_ms", Telemetry.QueueWaitUs.percentile(99) / 1000.0},
  };
  return Out;
}

/// Chaos mix: the resilience-shaped cell. A seeded hostile blend —
/// mostly healthy mark-churn requests (retries armed) plus timeout
/// spinners, catchable heap eaters, and reserve escalators that poison
/// their worker engine and force a supervised restart — timed exactly
/// like the other cells. Hostile failures are the point of the mix, so
/// a failed job is never fatal to the benchmark; what the cell reports
/// is throughput *under* chaos plus goodput_pct / worker_restarts /
/// shed / expired extras.
Measurement runChaosBatch(unsigned W, long Jobs) {
  RunStats Wall;
  VMStats Counters;
  PoolTelemetry Telemetry;
  uint64_t Healthy = 0, HealthyOk = 0;
  for (int R = 0; R < runCount(); ++R) {
    PoolOptions Opts;
    Opts.Workers = W;
    Opts.QueueCapacity = static_cast<size_t>(Jobs) + 8;
    EnginePool Pool(Opts);
    {
      std::vector<std::future<JobResult>> Warm;
      for (unsigned I = 0; I < W; ++I)
        Warm.push_back(Pool.submit("(sleep-ms 15)"));
      for (auto &F : Warm)
        F.get();
    }
    std::vector<std::pair<bool, std::future<JobResult>>> Futures;
    Futures.reserve(static_cast<size_t>(Jobs));
    uint64_t T0 = nowNanos();
    for (long I = 0; I < Jobs; ++I) {
      // The mix is a pure function of (run, index): reruns replay it.
      Rng Roll(static_cast<uint64_t>(R) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(I));
      uint64_t P = Roll.nextBelow(1000);
      SubmitOptions SO;
      std::string Source;
      bool IsHealthy = false;
      if (P < 40) { // Spinner: evicted by its timeout.
        Source = "(let loop () (loop))";
        EngineLimits L;
        L.TimeoutMs = 25;
        SO.limits(L);
      } else if (P < 90) { // Heap eater: catchable budget trip.
        Source = "(let loop ((a '())) (loop (cons (make-vector 1024 0) a)))";
        EngineLimits L;
        L.HeapBytes = 4u << 20;
        L.TimeoutMs = 2000;
        SO.limits(L);
      } else if (P < 120) { // Escalator: fatal; forces a worker restart.
        Source =
            "(define sink '())"
            "(with-handlers ([exn:heap-limit? (lambda (e)"
            "                   (let loop ()"
            "                     (set! sink (cons (make-vector 4096 0) sink))"
            "                     (loop)))])"
            "  (let loop ()"
            "    (set! sink (cons (make-vector 4096 0) sink))"
            "    (loop)))";
        EngineLimits L;
        L.HeapBytes = 4u << 20;
        L.HeapHeadroomBytes = 256u << 10;
        L.TimeoutMs = 5000;
        SO.limits(L);
      } else { // Healthy mark churn, retries armed for transients.
        IsHealthy = true;
        Source = Mixes[1].Source;
        EngineLimits L;
        L.TimeoutMs = 2000;
        SO.limits(L);
        RetryPolicy RP;
        RP.MaxAttempts = 3;
        RP.BaseBackoffMs = 1;
        RP.MaxBackoffMs = 8;
        SO.retry(RP);
      }
      Futures.emplace_back(IsHealthy, Pool.submit(std::move(Source), SO));
    }
    for (auto &KV : Futures) {
      JobResult JR = KV.second.get();
      if (KV.first) {
        ++Healthy;
        if (JR.Ok)
          ++HealthyOk;
      }
    }
    uint64_t T1 = nowNanos();
    Wall.addSampleNanos(T1 - T0);
    Pool.shutdown();
    Telemetry = Pool.telemetry(); // Last run's telemetry represents the cell.
    Counters = Telemetry.Stats.Engines;
  }
  Measurement Out{{Wall.averageMillis(), Wall.stddevMillis()}, Counters, {}};
  Out.Extras = {
      {"job_p50_ms", Telemetry.RunUs.percentile(50) / 1000.0},
      {"job_p99_ms", Telemetry.RunUs.percentile(99) / 1000.0},
      {"queue_wait_p99_ms", Telemetry.QueueWaitUs.percentile(99) / 1000.0},
      {"goodput_pct",
       Healthy ? 100.0 * static_cast<double>(HealthyOk) /
                     static_cast<double>(Healthy)
               : 100.0},
      {"worker_restarts", static_cast<double>(Telemetry.WorkerRestarts)},
      {"jobs_shed", static_cast<double>(Telemetry.JobsShed)},
      {"jobs_expired", static_cast<double>(Telemetry.JobsExpired)},
      {"retries", static_cast<double>(Telemetry.RetriesAttempted)},
  };
  return Out;
}

/// CI artifact hook: when CMARKS_BENCH_METRICS_JSON / _METRICS_PROM /
/// _PROFILE name files, run one fully-instrumented marks-heavy batch
/// (trace ring + 97 Hz sampler on every worker) and write the pool's
/// metrics / profile artifacts there for tools/metrics_report.py and
/// tools/profile_report.py to validate.
void emitArtifacts() {
  const char *JsonPath = std::getenv("CMARKS_BENCH_METRICS_JSON");
  const char *PromPath = std::getenv("CMARKS_BENCH_METRICS_PROM");
  const char *ProfPath = std::getenv("CMARKS_BENCH_PROFILE");
  if (!JsonPath && !PromPath && !ProfPath)
    return;

  const Mix &M = Mixes[2]; // marks-heavy: the serving-shaped mix.
  long Jobs = scaled(M.Jobs);
  PoolOptions Opts;
  Opts.Workers = 4;
  Opts.QueueCapacity = static_cast<size_t>(Jobs) + 8;
  Opts.TraceCapacity = 32 * 1024;
  if (ProfPath)
    Opts.ProfileHz = 97;
  EnginePool Pool(Opts);
  std::vector<std::future<JobResult>> Futures;
  Futures.reserve(static_cast<size_t>(Jobs));
  for (long I = 0; I < Jobs; ++I)
    Futures.push_back(Pool.submit(M.Source));
  for (auto &F : Futures)
    F.get();
  Pool.shutdown();

  auto WriteTo = [](const char *Path, const std::string &Body) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F || std::fwrite(Body.data(), 1, Body.size(), F) != Body.size()) {
      std::fprintf(stderr, "bench_pool: cannot write %s\n", Path);
      std::exit(1);
    }
    std::fclose(F);
    std::printf("  [artifact: %s]\n", Path);
  };
  if (JsonPath)
    WriteTo(JsonPath, Pool.metricsJson());
  if (PromPath)
    WriteTo(PromPath, Pool.metricsText());
  if (ProfPath)
    WriteTo(ProfPath, Pool.profileCollapsed());
}

} // namespace

int main() {
  const unsigned WorkerCounts[] = {1, 2, 4, 8};
  JsonReport Json("pool");

  printTitle("EnginePool serving throughput (jobs/sec)");
  printNote("one private engine per worker; batch timed submit->resolve");
  printNote("marks-heavy includes a 3ms simulated backend wait per request,");
  printNote("so it scales with worker overlap even on a single core; the");
  printNote("-cpu mixes scale only with physical cores");

  // Blocking marks-heavy cells, kept per worker count for the fiber
  // comparison below (equal workers, same mix, same batch).
  double BlockingHeavyMs[9] = {0};

  for (const Mix &M : Mixes) {
    long Jobs = scaled(M.Jobs);
    std::printf("\n  %s (%ld jobs/batch)\n", M.Name, Jobs);
    double OneWorkerMs = 0;
    for (unsigned W : WorkerCounts) {
      Measurement R = runBatch(M, W, Jobs);
      if (W == 1)
        OneWorkerMs = R.T.AvgMs;
      if (std::string(M.Name) == "marks-heavy")
        BlockingHeavyMs[W] = R.T.AvgMs;
      double JobsPerSec =
          R.T.AvgMs > 0 ? 1000.0 * static_cast<double>(Jobs) / R.T.AvgMs : 0;
      double Speedup = R.T.AvgMs > 0 ? OneWorkerMs / R.T.AvgMs : 0;
      std::printf("    workers=%u %9.1f ms  +/-%-6.1f %9.0f jobs/s  x%.2f\n",
                  W, R.T.AvgMs, R.T.StdevMs, JobsPerSec, Speedup);
      Json.add(M.Name, "workers-" + std::to_string(W), R);
    }
  }

  {
    // Fiber-mode marks-heavy: the tentpole comparison. At equal workers
    // the cooperative pool overlaps every request's backend wait, so
    // jobs/sec should exceed the blocking pool by the ratio of wait time
    // to CPU time per request (>= 5x with the 3ms wait in this mix).
    const Mix &M = Mixes[2];
    long Jobs = scaled(M.Jobs);
    std::printf("\n  marks-heavy-fibers (%ld jobs/batch; cooperative pool, "
                "same mix)\n",
                Jobs);
    for (unsigned W : WorkerCounts) {
      Measurement R = runBatch(M, W, Jobs, /*Fibers=*/true);
      double JobsPerSec =
          R.T.AvgMs > 0 ? 1000.0 * static_cast<double>(Jobs) / R.T.AvgMs : 0;
      double VsBlocking = R.T.AvgMs > 0 && W < 9 && BlockingHeavyMs[W] > 0
                              ? BlockingHeavyMs[W] / R.T.AvgMs
                              : 0;
      R.Extras.push_back({"vs_blocking_speedup", VsBlocking});
      std::printf("    workers=%u %9.1f ms  +/-%-6.1f %9.0f jobs/s  "
                  "x%.2f vs blocking\n",
                  W, R.T.AvgMs, R.T.StdevMs, JobsPerSec, VsBlocking);
      Json.add("marks-heavy-fibers", "workers-" + std::to_string(W), R);
    }
  }
  {
    long Jobs = scaled(120);
    std::printf("\n  chaos-mix (%ld jobs/batch; hostile blend, see header)\n",
                Jobs);
    double OneWorkerMs = 0;
    for (unsigned W : WorkerCounts) {
      Measurement R = runChaosBatch(W, Jobs);
      if (W == 1)
        OneWorkerMs = R.T.AvgMs;
      double JobsPerSec =
          R.T.AvgMs > 0 ? 1000.0 * static_cast<double>(Jobs) / R.T.AvgMs : 0;
      double Speedup = R.T.AvgMs > 0 ? OneWorkerMs / R.T.AvgMs : 0;
      std::printf("    workers=%u %9.1f ms  +/-%-6.1f %9.0f jobs/s  x%.2f  "
                  "goodput=%.1f%% restarts=%.0f\n",
                  W, R.T.AvgMs, R.T.StdevMs, JobsPerSec, Speedup,
                  R.Extras[3].second, R.Extras[4].second);
      Json.add("chaos-mix", "workers-" + std::to_string(W), R);
    }
  }
  emitArtifacts();
  return 0;
}
