//===- bench/bench_triple.cpp - E2: figure 1 triple benchmark --*- C++ -*-===//
///
/// \file
/// The triple delimited-continuation benchmark of figure 1: count the
/// non-decreasing triples summing to n by nondeterministic search, using
/// two kinds of prompts for the two kinds of choices. Three
/// delimited-control implementations run on the same engine:
///
///   native  : built-in tagged prompts + composable continuations
///   [DPJS]  : shift/reset from call/cc + a metacontinuation stack
///   [K]     : amb from raw continuation re-invocation
///
/// Expected shape: native fastest; the call/cc encodings pay capture and
/// copy costs per choice point, [K] worst because every failure replays a
/// full continuation.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/control.h"

#include <string>

using namespace cmkbench;
using cmk::EngineVariant;
using cmk::SchemeEngine;

int main() {
  long N = scaled(200);
  printTitle("E2: triple (paper figure 1) -- delimited-control encodings");
  printNote("triple(" + std::to_string(N) +
            "): all encodings must agree on the count");

  SchemeEngine Check;
  Check.evalOrDie(tripleNativeSource());
  Check.evalOrDie(tripleDpjsSource());
  Check.evalOrDie(tripleKSource());
  std::string Expected =
      Check.evalToString("(triple-native " + std::to_string(N) + ")");
  std::string GotDpjs =
      Check.evalToString("(triple-dpjs " + std::to_string(N) + ")");
  std::string GotK = Check.evalToString("(triple-k " + std::to_string(N) + ")");
  if (Expected != GotDpjs || Expected != GotK || Expected.empty()) {
    std::fprintf(stderr,
                 "triple implementations disagree: native=%s dpjs=%s k=%s\n",
                 Expected.c_str(), GotDpjs.c_str(), GotK.c_str());
    return 1;
  }
  printNote("solutions: " + Expected);

  struct RowSpec {
    const char *Name;
    const char *Setup;
    const char *Entry;
  };
  const RowSpec Rows[] = {
      {"native prompts", tripleNativeSource(), "triple-native"},
      {"[DPJS] shift/reset via call/cc", tripleDpjsSource(), "triple-dpjs"},
      {"[K] amb via call/cc", tripleKSource(), "triple-k"},
  };
  for (const RowSpec &R : Rows) {
    SchemeEngine E;
    E.evalOrDie(R.Setup);
    Timing T = timeExpr(E, "(" + std::string(R.Entry) + " " +
                               std::to_string(N) + ")");
    printAbsRow(R.Name, T);
  }

  // Cross-strategy rows (the figure's cross-system flavour).
  for (EngineVariant V :
       {EngineVariant::HeapFrames, EngineVariant::CopyOnCapture}) {
    SchemeEngine E(V);
    E.evalOrDie(tripleNativeSource());
    Timing T = timeExpr(E, "(triple-native " + std::to_string(N) + ")");
    printAbsRow(V == EngineVariant::HeapFrames
                    ? "native on heap-frames"
                    : "native on copy-on-capture",
                T);
  }
  return 0;
}
