//===- bench/bench_applications.cpp - E8: section 8.4 apps -----*- C++ -*-===//
///
/// \file
/// End-to-end application analogues (section 8.4's application table):
/// programs that depend significantly on contract checking and dynamic
/// binding, run with built-in attachments versus the figure 3 imitation.
/// Expected shape: builtin wins by ~5-25% end to end.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/apps.h"

#include <string>

using namespace cmkbench;
using cmk::EngineVariant;
using cmk::SchemeEngine;

int main() {
  printTitle("E8: application workloads, builtin vs imitate (paper 8.4)");

  int Count = 0;
  const AppBenchmark *Apps = appBenchmarks(Count);
  bool AllOk = true;

  for (int I = 0; I < Count; ++I) {
    const AppBenchmark &B = Apps[I];
    long N = scaled(B.DefaultN);
    std::string Run = "(app-main " + std::to_string(N) + ")";

    SchemeEngine Builtin(EngineVariant::Builtin);
    Builtin.evalOrDie(B.Source);
    SchemeEngine Imitate(EngineVariant::Imitate);
    Imitate.evalOrDie(B.Source);

    if (N == B.DefaultN) {
      std::string G1 = Builtin.evalToString(Run);
      std::string G2 = Imitate.evalToString(Run);
      if (G1 != B.Expected || G2 != B.Expected) {
        std::fprintf(stderr, "%s: expected %s, builtin=%s imitate=%s\n",
                     B.Name, B.Expected, G1.c_str(), G2.c_str());
        AllOk = false;
        continue;
      }
    }

    Timing TB = timeExpr(Builtin, Run);
    Timing TI = timeExpr(Imitate, Run);
    printRelRow(B.Name, TB, {{"imitate", TI}});
  }
  return AllOk ? 0 : 1;
}
