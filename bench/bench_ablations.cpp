//===- bench/bench_ablations.cpp - E9: figure 6 ablations ------*- C++ -*-===//
///
/// \file
/// The optimization ablations of figure 6: mark microbenchmarks, the
/// contract benchmark, and the application workloads on
///
///   no 1cc  : no opportunistic one-shot continuations (always copy)
///   no opt  : no compiler recognition of attachment operations
///   no prim : no recognition of attachment-invisible primitives
///
/// Expected shape: "no opt" hurts set-heavy micros ~x2-3.5 and contracts
/// ~x2; "no 1cc" hurts set-around-call patterns and contracts ~x1.4;
/// "no prim" hurts mainly set-around-prim patterns; the applications move
/// by a few percent.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/apps.h"
#include "programs/micro_marks.h"

#include <string>

using namespace cmkbench;
using cmk::EngineVariant;

namespace {

const char *ContractSetup = R"(
(define plain-id (lambda (x) x))
(define checked-id
  (contract-wrap (-> integer/c integer/c) plain-id 'bench))
(define (call-loop f n)
  (let loop ([i n] [acc 0])
    (if (zero? i) acc (loop (- i 1) (+ 0 (f acc))))))
)";

void ablationRow(JsonReport &Report, const std::string &Name,
                 const std::string &Setup, const std::string &Run) {
  Measurement Base = measureOnVariant(EngineVariant::Builtin, Setup, Run);
  Measurement No1cc = measureOnVariant(EngineVariant::No1cc, Setup, Run);
  Measurement NoOpt = measureOnVariant(EngineVariant::NoOpt, Setup, Run);
  Measurement NoPrim = measureOnVariant(EngineVariant::NoPrim, Setup, Run);
  Report.add(Name, EngineVariant::Builtin, Base);
  Report.add(Name, EngineVariant::No1cc, No1cc);
  Report.add(Name, EngineVariant::NoOpt, NoOpt);
  Report.add(Name, EngineVariant::NoPrim, NoPrim);
  printRelRow(Name, Base.T,
              {{"no-1cc", No1cc.T},
               {"no-opt", NoOpt.T},
               {"no-prim", NoPrim.T}});
}

} // namespace

int main() {
  printTitle("E9: optimization ablations (figure 6)");
  std::printf("  %-26s %12s\n", "benchmark", "Racket CS");
  JsonReport Report("ablations");

  // Mark microbenchmarks (the set-* subset that the ablations target).
  int Count = 0;
  const MarkMicro *Micros = markMicros(Count);
  for (int I = 0; I < Count; ++I) {
    const MarkMicro &B = Micros[I];
    std::string Name = B.Name;
    if (Name.find("set-") != 0 && Name.find("immed-") != 0 &&
        Name != "base-deep" && Name.find("first-") != 0)
      continue;
    long N = scaled(B.DefaultN);
    ablationRow(Report, B.Name, B.Source,
                "(bench-entry " + std::to_string(N) + ")");
  }

  // Contract benchmark.
  long N = scaled(200000);
  ablationRow(Report, "contract-checked", ContractSetup,
              "(call-loop checked-id " + std::to_string(N) + ")");

  // Applications.
  int AppCount = 0;
  const AppBenchmark *Apps = appBenchmarks(AppCount);
  for (int I = 0; I < AppCount; ++I) {
    const AppBenchmark &B = Apps[I];
    long AppN = scaled(B.DefaultN / 2);
    ablationRow(Report, B.Name, B.Source,
                "(app-main " + std::to_string(AppN) + ")");
  }
  return 0;
}
