//===- bench/programs/micro_attachments.h - Figure 4 micros ----*- C++ -*-===//
///
/// \file
/// The attachment microbenchmarks of figure 4. Each program is written
/// with @SET/@GET/@CONSUME/@CUR placeholders so the same source runs
/// against the built-in primitives and against the figure 3 imitation.
/// Loop benchmarks take an iteration count; "deep" benchmarks take a depth
/// and run it 10 times (as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_PROGRAMS_MICRO_ATTACHMENTS_H
#define CMARKS_BENCH_PROGRAMS_MICRO_ATTACHMENTS_H

#include <string>

namespace cmkbench {

struct AttachmentMicro {
  const char *Name;
  const char *Source;      ///< Defines (bench-entry n); uses placeholders.
  long DefaultN;
  const char *Expected;    ///< Result for DefaultN (after substitution).
};

inline const AttachmentMicro *attachmentMicros(int &CountOut) {
  // All sources define (bench-entry n).
  static const AttachmentMicro Micros[] = {
      {"base-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n]) (if (zero? i) 'done (loop (- i 1)))))",
       4000000, "done"},

      {"base-callcc-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (begin (#%call/cc (lambda (k) k)) (loop (- i 1))))))",
       400000, "done"},

      {"base-deep",
       "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       100000, "100000"},

      {"base-callcc-deep",
       "(define (deep n)"
       "  (if (zero? n)"
       "      (#%call/cc (lambda (k) 0))"
       "      (+ 1 (deep (- n 1)))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       100000, "100000"},

      {"set-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i) 'done (@SET i (lambda () (loop (- i 1)))))))",
       1000000, "done"},

      {"get-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (@GET 0 (lambda (a) (loop (- i 1)))))))",
       1000000, "done"},

      {"get-has-loop",
       "(define (bench-entry n)"
       "  (@SET 'present"
       "   (lambda ()"
       "     (let loop ([i n])"
       "       (if (zero? i)"
       "           'done"
       "           (@GET 0 (lambda (a) (loop (- i 1)))))))))",
       1000000, "done"},

      {"get-set-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (@GET 0 (lambda (a) (@SET i (lambda () (loop (- i 1)))))))))",
       800000, "done"},

      {"consume-set-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (@CONSUME 0"
       "          (lambda (a) (@SET i (lambda () (loop (- i 1)))))))))",
       800000, "done"},

      {"set-nontail-notail",
       "(define (deep n)"
       "  (if (zero? n)"
       "      0"
       "      (+ 1 (@SET n (lambda () (+ 0 (deep (- n 1))))))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       60000, "60000"},

      {"set-tail-notail",
       "(define (deep n)"
       "  (if (zero? n)"
       "      0"
       "      (@SET n (lambda () (+ 1 (deep (- n 1)))))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       60000, "60000"},

      {"set-nontail-tail",
       "(define (deep n)"
       "  (if (zero? n)"
       "      0"
       "      (+ 1 (@SET n (lambda () (deep (- n 1)))))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       60000, "60000"},

      {"loop-arg-call",
       "(define (ident x) (if (pair? x) x x))" // Non-inlined function call in the body.
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (loop (@SET i (lambda () (ident (- i 1))))))))",
       800000, "done"},

      {"loop-arg-prim",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (loop (@SET i (lambda () (- i 1)))))))",
       1000000, "done"},
  };
  CountOut = static_cast<int>(sizeof(Micros) / sizeof(Micros[0]));
  return Micros;
}

/// Substitutes the placeholders for the built-in primitives or the
/// imitation library functions.
inline std::string substituteAttachmentOps(std::string Body, bool Builtin) {
  auto ReplaceAll = [&](const std::string &From, const std::string &To) {
    size_t Pos = 0;
    while ((Pos = Body.find(From, Pos)) != std::string::npos) {
      Body.replace(Pos, From.size(), To);
      Pos += To.size();
    }
  };
  ReplaceAll("@SET", Builtin ? "call-setting-continuation-attachment"
                             : "imitate-setting");
  ReplaceAll("@GET", Builtin ? "call-getting-continuation-attachment"
                             : "imitate-getting");
  ReplaceAll("@CONSUME", Builtin ? "call-consuming-continuation-attachment"
                                 : "imitate-consuming");
  ReplaceAll("@CUR", Builtin ? "current-continuation-attachments"
                             : "imitate-current");
  return Body;
}

} // namespace cmkbench

#endif // CMARKS_BENCH_PROGRAMS_MICRO_ATTACHMENTS_H
