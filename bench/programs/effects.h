//===- bench/programs/effects.h - Delimited-control workloads --*- C++ -*-===//
///
/// \file
/// Scheme sources for the delimited-control workload suite
/// (bench_effects.cpp): programs that use prompts and composable
/// continuations the way applications do, rather than as microbenchmarks.
///
///   * Effect handlers: a deep-handler encoding in the libseff/Eff style
///     -- `perform` captures the continuation up to the handler's prompt
///     and aborts with (op arg k); the handler interprets the operation
///     and resumes k under a re-installed prompt. A state effect (counter
///     loop of get/put pairs) and a writer effect layered over it.
///
///   * Generator pipelines: prompt-based generators (yield = composable
///     capture + abort) chained producer -> filter -> map -> fold, the
///     shape iterator libraries compile to. All stages share one tag;
///     delimiting is by the innermost prompt, so nesting needs no
///     per-stage tags.
///
///   * Backtracking search: n-queens counting via a `choose` operator
///     that captures the rest of the search composably and sums it over
///     every alternative -- each alternative resumes the continuation
///     under a fresh prompt, so the search tree is explored by repeated
///     composable re-entry (the triple benchmark's discipline at
///     application scale).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_PROGRAMS_EFFECTS_H
#define CMARKS_BENCH_PROGRAMS_EFFECTS_H

namespace cmkbench {

/// Deep effect handlers over native prompts. `eff-run` interprets 'get /
/// 'put against threaded state and 'tell against an accumulated log
/// count, so one handler exercises both read-resume and write-resume.
inline const char *effectHandlersSource() {
  return R"(
(define eff-tag (make-continuation-prompt-tag 'eff))

(define (perform op arg)
  (call-with-composable-continuation
   (lambda (k)
     (abort-current-continuation eff-tag
       (lambda () (list op arg k))))
   eff-tag))

;; Deep handler: state threaded through the handler loop, writer counted.
;; The body's normal return is tagged 'done so operations and completion
;; come back through the same prompt.
(define (eff-handle st told thunk)
  (let ([r (call-with-continuation-prompt thunk eff-tag (lambda (t) (t)))])
    (cond
      [(eq? (car r) 'done) (list (cadr r) st told)]
      [(eq? (car r) 'get)
       (let ([k (caddr r)])
         (eff-handle st told (lambda () (k st))))]
      [(eq? (car r) 'put)
       (let ([k (caddr r)])
         (eff-handle (cadr r) told (lambda () (k 'ok))))]
      [else ; 'tell
       (let ([k (caddr r)])
         (eff-handle st (+ told 1) (lambda () (k 'ok))))])))

(define (eff-run st body)
  (eff-handle st 0 (lambda () (list 'done (body) #f))))

;; Counter loop: n rounds of get/put, telling every 16th round. Result is
;; (final-value final-state tells).
(define (eff-counter n)
  (eff-run 0
    (lambda ()
      (let loop ([i n])
        (if (zero? i)
            (perform 'get 0)
            (begin
              (perform 'put (+ 1 (perform 'get 0)))
              (when (zero? (modulo i 16)) (perform 'tell i))
              (loop (- i 1))))))))
)";
}

/// Prompt-based generator pipeline: ints -> filter even -> map square ->
/// sum. One shared tag; each `(g)` call installs its own prompt, so the
/// innermost-prompt rule delimits every stage correctly.
inline const char *generatorPipelineSource() {
  return R"(
(define gen-tag (make-continuation-prompt-tag 'gen))

(define (make-gen producer)
  (let ([resume 'start])
    (lambda ()
      (call-with-continuation-prompt
       (lambda ()
         (if (eq? resume 'start)
             (begin
               (producer
                (lambda (v)
                  (call-with-composable-continuation
                   (lambda (k)
                     (abort-current-continuation gen-tag
                       (lambda () (set! resume k) v)))
                   gen-tag)))
               'gen-done)
             (resume 'go)))
       gen-tag (lambda (t) (t))))))

(define (ints-gen n)
  (make-gen (lambda (yield)
              (let loop ([i 0])
                (when (< i n) (yield i) (loop (+ i 1)))))))

(define (filter-gen g pred)
  (make-gen (lambda (yield)
              (let loop ([v (g)])
                (if (eq? v 'gen-done)
                    'end
                    (begin (when (pred v) (yield v)) (loop (g))))))))

(define (map-gen g f)
  (make-gen (lambda (yield)
              (let loop ([v (g)])
                (if (eq? v 'gen-done)
                    'end
                    (begin (yield (f v)) (loop (g))))))))

(define (sum-gen g)
  (let loop ([acc 0] [v (g)])
    (if (eq? v 'gen-done) acc (loop (+ acc v) (g)))))

(define (pipeline n)
  (sum-gen (map-gen (filter-gen (ints-gen n) even?)
                    (lambda (x) (* x x)))))
)";
}

/// Backtracking n-queens count: `count-choose` captures the rest of the
/// search up to the enclosing amb prompt and sums it over each column
/// choice, re-entering the composable continuation under a fresh prompt
/// per alternative. Solutions contribute 1, dead branches 0.
inline const char *backtrackingSource() {
  return R"(
(define amb-tag (make-continuation-prompt-tag 'amb))

(define (count-choose lst)
  (call-with-composable-continuation
   (lambda (k)
     (abort-current-continuation amb-tag
       (lambda ()
         (let loop ([l lst] [acc 0])
           (if (null? l)
               acc
               (loop (cdr l)
                     (+ acc (call-with-continuation-prompt
                             (lambda () (k (car l)))
                             amb-tag (lambda (t) (t))))))))))
   amb-tag))

(define (iota-list lo hi)
  (if (>= lo hi) '() (cons lo (iota-list (+ lo 1) hi))))

(define (queen-safe? c cols)
  (let loop ([cs cols] [d 1])
    (if (null? cs)
        #t
        (if (or (= (car cs) c)
                (= (car cs) (+ c d))
                (= (car cs) (- c d)))
            #f
            (loop (cdr cs) (+ d 1))))))

(define (queens n)
  (call-with-continuation-prompt
   (lambda ()
     (let place ([row 0] [cols '()])
       (if (= row n)
           1
           (let ([c (count-choose (iota-list 0 n))])
             (if (queen-safe? c cols)
                 (place (+ row 1) (cons c cols))
                 0)))))
   amb-tag (lambda (t) (t))))
)";
}

} // namespace cmkbench

#endif // CMARKS_BENCH_PROGRAMS_EFFECTS_H
