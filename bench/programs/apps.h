//===- bench/programs/apps.h - Application workloads (8.4) -----*- C++ -*-===//
///
/// \file
/// Five application analogues for the paper's end-to-end table (section
/// 8.4). Each mirrors the *dependence profile* of the original Racket
/// application — heavy contract checking and/or dynamic binding for
/// configuration — on synthetic but realistic inputs:
///
///   activity-log : CSV import + aggregation  (ActivityLog import)
///   xsmith-lite  : random program generation (Xsmith cish)
///   json-parsack : parser combinators over JSON (Megaparsack JSON)
///   markdown     : markdown-to-HTML rendering (Markdown Reference)
///   solver       : DPLL SAT solving           (OL1V3R gauss.smt2)
///
/// Each defines (app-main n) whose result is self-checked.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_PROGRAMS_APPS_H
#define CMARKS_BENCH_PROGRAMS_APPS_H

namespace cmkbench {

struct AppBenchmark {
  const char *Name;
  const char *Source;
  long DefaultN;
  const char *Expected;
};

inline const AppBenchmark *appBenchmarks(int &CountOut) {
  static const AppBenchmark Apps[] = {

      // ----------------------------------------------------------------------
      {"activity-log", R"APP(
;; Import a synthetic workout log (CSV), with contracted field accessors
;; and a parameterized unit configuration consulted per record.

(define distance-unit (make-parameter 'km))
(define strict-mode (make-parameter #f))

(define record/c (flat-contract 'record? (lambda (r) (and (vector? r) (= (vector-length r) 4)))))

(define parse-field
  (contract-wrap (-> string/c any/c)
    (lambda (s)
      (let ([n (string->number s)])
        (if n n s)))
    'activity-log))

(define (parse-line line)
  (let ([parts (string-split line ",")])
    (vector (parse-field (car parts))
            (parse-field (cadr parts))
            (parse-field (caddr parts))
            (parse-field (cadddr parts)))))

(define record-distance
  (contract-wrap (-> record/c number/c)
    (lambda (r)
      (let ([d (vector-ref r 2)])
        (if (eq? (distance-unit) 'mi) (* d 0.621371) d)))
    'activity-log))

(define record-minutes
  (contract-wrap (-> record/c number/c)
    (lambda (r) (vector-ref r 3))
    'activity-log))

(define (make-line i)
  (string-append "2020-06-" (number->string (+ 1 (modulo i 28)))
                 ",run," (number->string (+ 3 (modulo i 7)))
                 "," (number->string (+ 20 (modulo i 40)))))

(define (import-log n)
  (let loop ([i 0] [acc '()])
    (if (= i n)
        (reverse acc)
        (loop (+ i 1) (cons (parse-line (make-line i)) acc)))))

(define (summarize records)
  (let loop ([rs records] [dist 0] [mins 0])
    (if (null? rs)
        (cons dist mins)
        (parameterize ([distance-unit (if (even? mins) 'km 'km)])
          (loop (cdr rs)
                (+ dist (record-distance (car rs)))
                (+ mins (record-minutes (car rs))))))))

(define (app-main n)
  (let ([summary (summarize (import-log n))])
    (cons (inexact->exact (round (exact->inexact (car summary))))
          (cdr summary))))
)APP",
       6000, "(35997 . 237000)"},

      // ----------------------------------------------------------------------
      {"xsmith-lite", R"APP(
;; A grammar-driven random program generator in the style of Xsmith: the
;; generator state (rng, depth limit, type context) is dynamically bound,
;; and node constructors are contracted.

(define rng-state (make-parameter 42))
(define max-depth (make-parameter 8))
(define hole-type (make-parameter 'int))

(define node/c (flat-contract 'node? pair?))

(define seed (box 42))
(define (next-rand!)
  (let ([s (modulo (+ (* (unbox seed) 25173) 13849) 65536)])
    (set-box! seed s)
    s))
(define (rand-below n) (modulo (next-rand!) n))

(define make-lit
  (contract-wrap (-> integer/c node/c)
    (lambda (v) (list 'lit v))
    'xsmith))

(define make-binop
  (contract-wrap (-> any/c any/c)
    (lambda (op) (lambda (a b) (list op a b)))
    'xsmith))

(define gen-expr
  (contract-wrap (-> integer/c node/c)
    (lambda (depth)
      (if (or (zero? depth) (zero? (rand-below 4)))
          (make-lit (rand-below 100))
          (parameterize ([max-depth depth])
            (let ([choice (rand-below 3)])
              (cond
                [(= choice 0) ((make-binop '+) (gen-expr (- depth 1))
                                               (gen-expr (- depth 1)))]
                [(= choice 1) ((make-binop '*) (gen-expr (- depth 1))
                                               (gen-expr (- depth 1)))]
                [else (list 'if (gen-expr (- depth 1))
                            (gen-expr (- depth 1))
                            (gen-expr (- depth 1)))])))))
    'xsmith))

(define (eval-node e)
  (case (car e)
    [(lit) (cadr e)]
    [(+) (+ (eval-node (cadr e)) (eval-node (caddr e)))]
    [(*) (modulo (* (eval-node (cadr e)) (eval-node (caddr e))) 65536)]
    [(if) (if (> (eval-node (cadr e)) 50)
              (eval-node (caddr e))
              (eval-node (cadddr e)))]))

(define (app-main n)
  (set-box! seed 42)
  (let loop ([i 0] [acc 0])
    (if (= i n)
        acc
        (loop (+ i 1)
              (modulo (+ acc (eval-node (gen-expr 6))) 1000003)))))
)APP",
       2500, "121409"},

      // ----------------------------------------------------------------------
      {"json-parsack", R"APP(
;; Megaparsack-style parser combinators over JSON text. Every combinator
;; is contracted, and the input position is threaded while source-location
;; labelling is dynamically bound for error messages.

(define parse-label (make-parameter "json"))

(define parser/c (flat-contract 'parser? procedure?))

;; A parser is (lambda (str pos) (cons value newpos)) or #f on failure.

(define (p-char c)
  (lambda (s pos)
    (if (and (< pos (string-length s)) (char=? (string-ref s pos) c))
        (cons c (+ pos 1))
        #f)))

(define p-or
  (contract-wrap (-> parser/c any/c)
    (lambda (a) (lambda (b)
      (lambda (s pos)
        (let ([r (a s pos)])
          (if r r (b s pos))))))
    'parsack))

(define (p-many p)
  (lambda (s pos)
    (let loop ([pos pos] [acc '()])
      (let ([r (p s pos)])
        (if r
            (loop (cdr r) (cons (car r) acc))
            (cons (reverse acc) pos))))))

(define (p-seq2 a b f)
  (lambda (s pos)
    (let ([ra (a s pos)])
      (and ra
           (let ([rb (b s (cdr ra))])
             (and rb (cons (f (car ra) (car rb)) (cdr rb))))))))

(define (skip-ws s pos)
  (let loop ([pos pos])
    (if (and (< pos (string-length s))
             (char-whitespace? (string-ref s pos)))
        (loop (+ pos 1))
        pos)))

(define (p-token p) (lambda (s pos) (p s (skip-ws s pos))))

(define p-digit
  (lambda (s pos)
    (if (and (< pos (string-length s))
             (char-numeric? (string-ref s pos)))
        (cons (string-ref s pos) (+ pos 1))
        #f)))

(define p-number
  (contract-wrap (-> any/c any/c)
    (lambda (_)
      (p-token
       (lambda (s pos)
         (let ([r ((p-many p-digit) s pos)])
           (if (null? (car r))
               #f
               (cons (string->number (list->string (car r))) (cdr r)))))))
    'parsack))

(define p-string-lit
  (p-token
   (p-seq2 (p-char #\")
           (p-seq2 (p-many (lambda (s pos)
                             (if (and (< pos (string-length s))
                                      (not (char=? (string-ref s pos) #\")))
                                 (cons (string-ref s pos) (+ pos 1))
                                 #f)))
                   (p-char #\")
                   (lambda (chars _) (list->string chars)))
           (lambda (_ str) str))))

(define (p-value s pos)
  (parameterize ([parse-label "value"])
    (let ([r (((p-or p-string-lit)
               ((p-or (p-number #f))
                ((p-or p-array) p-object)))
              s pos)])
      (if r r (error "parse error" (parse-label) pos)))))

(define (p-comma-sep p)
  (lambda (s pos)
    (let ([first (p s pos)])
      (if (not first)
          (cons '() pos)
          (let loop ([pos (cdr first)] [acc (list (car first))])
            (let ([c ((p-token (p-char #\,)) s pos)])
              (if c
                  (let ([nxt (p s (cdr c))])
                    (if nxt
                        (loop (cdr nxt) (cons (car nxt) acc))
                        (error "trailing comma" pos)))
                  (cons (reverse acc) pos))))))))

(define (p-array s pos)
  (let ([open ((p-token (p-char #\[)) s pos)])
    (and open
         (let ([items ((p-comma-sep p-value) s (cdr open))])
           (let ([close ((p-token (p-char #\])) s (cdr items))])
             (and close (cons (list->vector (car items)) (cdr close))))))))

(define (p-pair s pos)
  (let ([k (p-string-lit s pos)])
    (and k
         (let ([colon ((p-token (p-char #\:)) s (cdr k))])
           (and colon
                (let ([v (p-value s (cdr colon))])
                  (and v (cons (cons (car k) (car v)) (cdr v)))))))))

(define (p-object s pos)
  (let ([open ((p-token (p-char #\{)) s pos)])
    (and open
         (let ([items ((p-comma-sep p-pair) s (cdr open))])
           (let ([close ((p-token (p-char #\})) s (cdr items))])
             (and close (cons (cons 'object (car items)) (cdr close))))))))

(define sample-json
  "{\"name\": \"benchmark\", \"runs\": [1, 2, 3, 42], \"meta\": {\"deep\": [[1], [2, 3]], \"label\": \"x\"}}")

(define (json-weight v)
  (cond [(number? v) v]
        [(string? v) (string-length v)]
        [(vector? v)
         (let loop ([i 0] [acc 0])
           (if (= i (vector-length v))
               acc
               (loop (+ i 1) (+ acc (json-weight (vector-ref v i))))))]
        [(and (pair? v) (eq? (car v) 'object))
         (foldl (lambda (kv acc) (+ acc (json-weight (cdr kv)))) 0 (cdr v))]
        [else 0]))

(define (app-main n)
  (let loop ([i 0] [acc 0])
    (if (= i n)
        acc
        (loop (+ i 1)
              (+ acc (json-weight (car (p-value sample-json 0))))))))
)APP",
       1500, "96000"},

      // ----------------------------------------------------------------------
      {"markdown", R"APP(
;; A markdown-subset renderer: escaping and heading styles flow through
;; parameters consulted per character/block; renderers are contracted.

(define html-escape? (make-parameter #t))
(define heading-style (make-parameter 'atx))

(define render-inline
  (contract-wrap (-> string/c string/c)
    (lambda (text)
      (let loop ([i 0] [out '()] [in-em #f])
        (if (= i (string-length text))
            (apply string-append (reverse out))
            (let ([c (string-ref text i)])
              (cond
                [(char=? c #\*)
                 (loop (+ i 1) (cons (if in-em "</em>" "<em>") out)
                       (not in-em))]
                [(and (char=? c #\<) (html-escape?))
                 (loop (+ i 1) (cons "&lt;" out) in-em)]
                [(and (char=? c #\>) (html-escape?))
                 (loop (+ i 1) (cons "&gt;" out) in-em)]
                [else (loop (+ i 1) (cons (string c) out) in-em)])))))
    'markdown))

(define render-block
  (contract-wrap (-> string/c string/c)
    (lambda (line)
      (cond
        [(= 0 (string-length line)) ""]
        [(char=? (string-ref line 0) #\#)
         (let count ([lvl 0])
           (if (and (< lvl (string-length line))
                    (char=? (string-ref line lvl) #\#))
               (count (+ lvl 1))
               (parameterize ([heading-style (if (> lvl 1) 'sub 'top)])
                 (string-append "<h" (number->string lvl) ">"
                                (render-inline (substring line lvl))
                                "</h" (number->string lvl) ">"))))]
        [(char=? (string-ref line 0) #\-)
         (string-append "<li>" (render-inline (substring line 1)) "</li>")]
        [else (string-append "<p>" (render-inline line) "</p>")]))
    'markdown))

(define doc
  (list "# cmarks reference"
        "A *library* for continuation marks."
        "## usage"
        "- set a mark with *with-continuation-mark*"
        "- read marks with <continuation-mark-set->list>"
        "## notes"
        "Marks are *cheap* and *scoped*."))

(define (render-doc)
  (foldl (lambda (line acc)
           (+ acc (string-length (parameterize ([html-escape? #t])
                                   (render-block line)))))
         0 doc))

(define (app-main n)
  (let loop ([i 0] [acc 0])
    (if (= i n) acc (loop (+ i 1) (+ (modulo acc 7) (render-doc))))))
)APP",
       1200, "281"},

      // ----------------------------------------------------------------------
      {"solver", R"APP(
;; A DPLL SAT solver: assignments are threaded, the branching heuristic is
;; dynamically bound, conflicts escape through exceptions, and the core
;; operations are contracted.

(define branch-order (make-parameter 'ascending))

(define clause/c (flat-contract 'clause? list?))

(define eval-clause
  (contract-wrap (-> clause/c any/c)
    (lambda (clause) (lambda (assignment)
      ;; 'true, 'false, or 'unknown under the partial assignment.
      (let loop ([lits clause] [unknown #f])
        (if (null? lits)
            (if unknown 'unknown 'false)
            (let* ([lit (car lits)]
                   [var (abs lit)]
                   [val (assv var assignment)])
              (cond
                [(not val) (loop (cdr lits) #t)]
                [(eq? (cdr val) (> lit 0)) 'true]
                [else (loop (cdr lits) unknown)]))))))
    'solver))

(define (all-assigned? clauses assignment)
  (let loop ([cs clauses])
    (cond [(null? cs) 'sat]
          [else
           (case ((eval-clause (car cs)) assignment)
             [(false) 'conflict]
             [(unknown) 'unknown]
             [else (loop (cdr cs))])])))

(define (pick-var nvars assignment)
  (let loop ([v (if (eq? (branch-order) 'ascending) 1 nvars)])
    (cond [(or (< v 1) (> v nvars)) #f]
          [(assv v assignment)
           (loop (if (eq? (branch-order) 'ascending) (+ v 1) (- v 1)))]
          [else v])))

(define (solve clauses nvars)
  (define (try assignment)
    (case (all-assigned? clauses assignment)
      [(sat) (throw (cons 'sat assignment))]
      [(conflict) #f]
      [else
       (let ([v (pick-var nvars assignment)])
         (if (not v)
             #f
             (begin
               (try (cons (cons v #t) assignment))
               (try (cons (cons v #f) assignment)))))]))
  (catch (lambda (result)
           (if (and (pair? result) (eq? (car result) 'sat))
               (length (cdr result))
               'unsat))
    (begin (try '()) 'unsat)))

;; A chain of xor-ish constraints (Gauss-style structure): x_i != x_{i+1}.
(define (make-instance nvars)
  (let loop ([i 1] [acc '()])
    (if (= i nvars)
        (cons (list i) acc)                ; Force the last variable true.
        (loop (+ i 1)
              (cons (list (- i) (- (+ i 1)))
                    (cons (list i (+ i 1)) acc))))))

(define (app-main n)
  (let loop ([i 0] [acc 0])
    (if (= i n)
        acc
        (let ([r (parameterize ([branch-order (if (even? i) 'ascending
                                                  'descending)])
                   (solve (make-instance 10) 10))])
          (loop (+ i 1) (+ acc (if (eq? r 'unsat) 0 r)))))))
)APP",
       400, "4000"},
  };
  CountOut = static_cast<int>(sizeof(Apps) / sizeof(Apps[0]));
  return Apps;
}

} // namespace cmkbench

#endif // CMARKS_BENCH_PROGRAMS_APPS_H
