//===- bench/programs/classics.h - Traditional Scheme benchmarks -*- C++ -*-=//
///
/// \file
/// A suite of traditional (Gabriel-style) Scheme benchmarks used for the
/// figure 2 experiment: checking that attachment support does not slow
/// down programs that never use continuation marks. Each entry defines a
/// `(<name>-bench iters)` entry point whose result is checked against a
/// known value so miscompilation cannot masquerade as speed.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_PROGRAMS_CLASSICS_H
#define CMARKS_BENCH_PROGRAMS_CLASSICS_H

namespace cmkbench {

struct ClassicBenchmark {
  const char *Name;
  const char *Source;  ///< Defines <name>-bench taking an iteration count.
  const char *RunTemplate; ///< printf-style with one %ld for the count.
  long DefaultIters;
  const char *Expected; ///< Written result for the default count.
};

inline const ClassicBenchmark *classicBenchmarks(int &CountOut) {
  static const ClassicBenchmark Benchmarks[] = {
      {"tak",
       "(define (tak x y z)"
       "  (if (not (< y x)) z"
       "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))"
       "(define (tak-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (tak 14 10 3)))))",
       "(tak-bench %ld)", 20, "4"},

      {"cpstak",
       "(define (cpstak x y z)"
       "  (define (tak x y z k)"
       "    (if (not (< y x))"
       "        (k z)"
       "        (tak (- x 1) y z"
       "             (lambda (v1)"
       "               (tak (- y 1) z x"
       "                    (lambda (v2)"
       "                      (tak (- z 1) x y"
       "                           (lambda (v3) (tak v1 v2 v3 k)))))))))"
       "  (tak x y z (lambda (a) a)))"
       "(define (cpstak-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (cpstak 14 10 3)))))",
       "(cpstak-bench %ld)", 12, "4"},

      {"fib",
       "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
       "(define (fib-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (fib 21)))))",
       "(fib-bench %ld)", 12, "10946"},

      {"deriv",
       "(define (deriv a)"
       "  (cond"
       "    [(not (pair? a)) (if (eq? a 'x) 1 0)]"
       "    [(eq? (car a) '+) (cons '+ (map deriv (cdr a)))]"
       "    [(eq? (car a) '-) (cons '- (map deriv (cdr a)))]"
       "    [(eq? (car a) '*)"
       "     (list '* a (cons '+ (map (lambda (t) (list '/ (deriv t) t)) (cdr a))))]"
       "    [(eq? (car a) '/)"
       "     (list '- (list '/ (deriv (cadr a)) (caddr a))"
       "           (list '/ (cadr a) (list '* (caddr a) (caddr a) (deriv (caddr a)))))]"
       "    [else 'error]))"
       "(define (deriv-bench n)"
       "  (let loop ([i 0] [r '()])"
       "    (if (= i n) (length r)"
       "        (loop (+ i 1) (deriv '(+ (* 3 x x) (* a x x) (* b x) 5))))))",
       "(deriv-bench %ld)", 60000, "5"},

      {"destruct",
       "(define (destruct-once)"
       "  (let ([l (map (lambda (i) (list i (+ i 1) (+ i 2))) (iota 10))])"
       "    (let loop ([p l] [n 0])"
       "      (if (null? p)"
       "          n"
       "          (begin"
       "            (set-car! (cdar p) (* 2 (caar p)))"
       "            (loop (cdr p) (+ n (cadr (car p)))))))))"
       "(define (destruct-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (destruct-once)))))",
       "(destruct-bench %ld)", 50000, "90"},

      {"div-rec",
       "(define (create-n n)"
       "  (let loop ([n n] [a '()]) (if (zero? n) a (loop (- n 1) (cons '() a)))))"
       "(define (recursive-div2 l)"
       "  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))"
       "(define (div-rec-bench n)"
       "  (let ([l (create-n 200)])"
       "    (let loop ([i 0] [r 0])"
       "      (if (= i n) r (loop (+ i 1) (length (recursive-div2 l)))))))",
       "(div-rec-bench %ld)", 30000, "100"},

      {"nqueens",
       "(define (nqueens n)"
       "  (define (ok? row dist placed)"
       "    (if (null? placed)"
       "        #t"
       "        (and (not (= (car placed) (+ row dist)))"
       "             (not (= (car placed) (- row dist)))"
       "             (ok? row (+ dist 1) (cdr placed)))))"
       "  (define (try x y z)"
       "    (if (null? x)"
       "        (if (null? y) 1 0)"
       "        (+ (if (ok? (car x) 1 z)"
       "               (try (append (cdr x) y) '() (cons (car x) z))"
       "               0)"
       "           (try (cdr x) (cons (car x) y) z))))"
       "  (try (map (lambda (i) (+ i 1)) (iota n)) '() '()))"
       "(define (nqueens-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (nqueens 7)))))",
       "(nqueens-bench %ld)", 40, "40"},

      {"sort1",
       "(define (sort1-make n)"
       "  (let loop ([i n] [seed 74755] [acc '()])"
       "    (if (zero? i)"
       "        acc"
       "        (let ([next (modulo (+ (* seed 1309) 13849) 65536)])"
       "          (loop (- i 1) next (cons next acc))))))"
       "(define (sort1-bench n)"
       "  (let loop ([i 0] [r 0])"
       "    (if (= i n)"
       "        r"
       "        (loop (+ i 1) (car (sort < (sort1-make 300)))))))",
       "(sort1-bench %ld)", 300, "0"},

      {"primes",
       "(define (interval lo hi)"
       "  (if (> lo hi) '() (cons lo (interval (+ lo 1) hi))))"
       "(define (sieve l)"
       "  (if (null? l)"
       "      '()"
       "      (cons (car l)"
       "            (sieve (filter (lambda (x) (not (zero? (modulo x (car l)))))"
       "                           (cdr l))))))"
       "(define (primes-bench n)"
       "  (let loop ([i 0] [r 0])"
       "    (if (= i n) r (loop (+ i 1) (length (sieve (interval 2 300)))))))",
       "(primes-bench %ld)", 1200, "62"},

      {"ack",
       "(define (ack m n)"
       "  (cond [(zero? m) (+ n 1)]"
       "        [(zero? n) (ack (- m 1) 1)]"
       "        [else (ack (- m 1) (ack m (- n 1)))]))"
       "(define (ack-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (ack 2 6)))))",
       "(ack-bench %ld)", 3000, "15"},

      {"array1",
       "(define (array1-once size)"
       "  (let ([v (make-vector size 0)])"
       "    (let fill ([i 0])"
       "      (if (< i size) (begin (vector-set! v i i) (fill (+ i 1))) #f))"
       "    (let sum ([i 0] [acc 0])"
       "      (if (= i size) acc (sum (+ i 1) (+ acc (vector-ref v i)))))))"
       "(define (array1-bench n)"
       "  (let loop ([i 0] [r 0]) (if (= i n) r (loop (+ i 1) (array1-once 1000)))))",
       "(array1-bench %ld)", 3000, "499500"},

      {"string-hash",
       "(define (shash s)"
       "  (let loop ([i 0] [h 17])"
       "    (if (= i (string-length s))"
       "        h"
       "        (loop (+ i 1)"
       "              (modulo (+ (* h 31) (char->integer (string-ref s i)))"
       "                      1000003)))))"
       "(define (string-hash-bench n)"
       "  (let loop ([i 0] [r 0])"
       "    (if (= i n)"
       "        r"
       "        (loop (+ i 1)"
       "              (shash \"the quick brown fox jumps over the lazy dog\")))))",
       "(string-hash-bench %ld)", 30000, "816864"},

      {"collatz-q",
       "(define (collatz-len n)"
       "  (let loop ([n n] [steps 0])"
       "    (cond [(= n 1) steps]"
       "          [(even? n) (loop (quotient n 2) (+ steps 1))]"
       "          [else (loop (+ (* 3 n) 1) (+ steps 1))])))"
       "(define (collatz-q-bench n)"
       "  (let loop ([i 1] [best 0])"
       "    (if (> i n) best (loop (+ i 1) (max best (collatz-len i))))))",
       "(collatz-q-bench %ld)", 30000, "307"},

      {"fft",
       "(define pi 3.141592653589793)"
       "(define (fft! areal aimag)"
       "  (let ([n (vector-length areal)])"
       "    (let loop ([i 0] [j 0])"
       "      (when (< i n)"
       "        (when (< i j)"
       "          (let ([tr (vector-ref areal i)] [ti (vector-ref aimag i)])"
       "            (vector-set! areal i (vector-ref areal j))"
       "            (vector-set! aimag i (vector-ref aimag j))"
       "            (vector-set! areal j tr)"
       "            (vector-set! aimag j ti)))"
       "        (let adjust ([m (quotient n 2)] [j j])"
       "          (if (and (>= m 2) (>= j m))"
       "              (adjust (quotient m 2) (- j m))"
       "              (loop (+ i 1) (+ j m))))))"
       "    (let stages ([mmax 1])"
       "      (when (< mmax n)"
       "        (let ([theta (/ pi (exact->inexact mmax))])"
       "          (let submax ([m 0])"
       "            (when (< m mmax)"
       "              (let ([wr (cos (* theta (exact->inexact m)))]"
       "                    [wi (sin (* theta (exact->inexact m)))])"
       "                (let pairs ([i m])"
       "                  (when (< i n)"
       "                    (let* ([j (+ i mmax)]"
       "                           [tr (- (* wr (vector-ref areal j))"
       "                                  (* wi (vector-ref aimag j)))]"
       "                           [ti (+ (* wr (vector-ref aimag j))"
       "                                  (* wi (vector-ref areal j)))])"
       "                      (vector-set! areal j (- (vector-ref areal i) tr))"
       "                      (vector-set! aimag j (- (vector-ref aimag i) ti))"
       "                      (vector-set! areal i (+ (vector-ref areal i) tr))"
       "                      (vector-set! aimag i (+ (vector-ref aimag i) ti)))"
       "                    (pairs (+ i (* 2 mmax))))))"
       "              (submax (+ m 1)))))"
       "        (stages (* 2 mmax))))"
       "    (vector-ref areal 0)))"
       "(define (fft-bench n)"
       "  (let loop ([i 0] [r 0.0])"
       "    (if (= i n)"
       "        (inexact->exact (round r))"
       "        (let ([re (make-vector 256 1.0)] [im (make-vector 256 0.0)])"
       "          (loop (+ i 1) (fft! re im))))))",
       "(fft-bench %ld)", 300, "256"},

      {"nboyer-lite",
       "(define rules (make-hash))"
       "(define (add-rule! name lhs rhs) (hash-set! rules name (cons lhs rhs)))"
       "(add-rule! 'and '(and x y) '(if x (if y t f) f))"
       "(add-rule! 'or '(or x y) '(if x t (if y t f)))"
       "(add-rule! 'implies '(implies x y) '(if x (if y t f) t))"
       "(define (match pat term env)"
       "  (cond [(symbol? pat)"
       "         (if (memq pat '(t f)) (and (eq? pat term) env)"
       "             (let ([b (assq pat env)])"
       "               (if b (and (equal? (cdr b) term) env)"
       "                   (cons (cons pat term) env))))]"
       "        [(and (pair? pat) (pair? term))"
       "         (let ([e (match (car pat) (car term) env)])"
       "           (and e (match (cdr pat) (cdr term) e)))]"
       "        [else (and (equal? pat term) env)]))"
       "(define (subst env term)"
       "  (cond [(symbol? term) (let ([b (assq term env)]) (if b (cdr b) term))]"
       "        [(pair? term) (cons (subst env (car term)) (subst env (cdr term)))]"
       "        [else term]))"
       "(define (rewrite term)"
       "  (if (pair? term)"
       "      (let ([term2 (map rewrite term)])"
       "        (let ([rule (hash-ref rules (car term2) #f)])"
       "          (if rule"
       "              (let ([e (match (car rule) term2 '())])"
       "                (if e (rewrite (subst e (cdr rule))) term2))"
       "              term2)))"
       "      term))"
       "(define (tautology? term depth)"
       "  (cond [(eq? term 't) #t]"
       "        [(eq? term 'f) #f]"
       "        [(zero? depth) #f]"
       "        [(and (pair? term) (eq? (car term) 'if))"
       "         (and (tautology? (subst-true (cadr term) (caddr term)) (- depth 1))"
       "              (tautology? (subst-false (cadr term) (cadddr term)) (- depth 1)))]"
       "        [else #f]))"
       "(define (subst-true cond term) (rewrite (subst (list (cons 'x cond)) term)))"
       "(define (subst-false cond term) term)"
       "(define (nboyer-lite-bench n)"
       "  (let loop ([i 0] [r 0])"
       "    (if (= i n)"
       "        r"
       "        (loop (+ i 1)"
       "              (+ (if (tautology?"
       "                      (rewrite '(implies (and p q) (or p (or q f)))) 5)"
       "                     1 0)"
       "                 r)))))",
       "(nboyer-lite-bench %ld)", 8000, "0"},

      {"peval-lite",
       "(define (constant-fold e)"
       "  (if (pair? e)"
       "      (let ([e2 (map constant-fold e)])"
       "        (cond [(and (eq? (car e2) '+) (number? (cadr e2)) (number? (caddr e2)))"
       "               (+ (cadr e2) (caddr e2))]"
       "              [(and (eq? (car e2) '*) (number? (cadr e2)) (number? (caddr e2)))"
       "               (* (cadr e2) (caddr e2))]"
       "              [(and (eq? (car e2) 'if) (number? (cadr e2)))"
       "               (if (zero? (cadr e2)) (cadddr e2) (caddr e2))]"
       "              [else e2]))"
       "      e))"
       "(define (peval-lite-bench n)"
       "  (let loop ([i 0] [r 0])"
       "    (if (= i n)"
       "        r"
       "        (loop (+ i 1)"
       "              (+ r (length (constant-fold"
       "                            '(if (+ 1 (* 0 5))"
       "                                 (+ (* 2 3) (+ x (* 4 5)))"
       "                                 other))))))))",
       "(peval-lite-bench %ld)", 40000, "120000"},
  };
  CountOut = static_cast<int>(sizeof(Benchmarks) / sizeof(Benchmarks[0]));
  return Benchmarks;
}

} // namespace cmkbench

#endif // CMARKS_BENCH_PROGRAMS_CLASSICS_H
