//===- bench/programs/micro_marks.h - Figure 5 micros ----------*- C++ -*-===//
///
/// \file
/// The continuation-mark microbenchmarks of figure 5, comparing the
/// marks-over-attachments implementation ("Racket CS") with the eager
/// mark-stack comparator ("Racket"). The same sources run on both engines.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_PROGRAMS_MICRO_MARKS_H
#define CMARKS_BENCH_PROGRAMS_MICRO_MARKS_H

namespace cmkbench {

struct MarkMicro {
  const char *Name;
  const char *Source; ///< Defines (bench-entry n).
  long DefaultN;
  const char *Expected;
};

inline const MarkMicro *markMicros(int &CountOut) {
  static const MarkMicro Micros[] = {
      {"base-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n]) (if (zero? i) 'done (loop (- i 1)))))",
       4000000, "done"},

      {"base-deep",
       "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       100000, "100000"},

      {"base-arg-call-loop",
       "(define (ident x) (if (pair? x) x x))"
       "(define (bench-entry n)"
       "  (let loop ([i n]) (if (zero? i) 'done (loop (ident (- i 1))))))",
       2000000, "done"},

      {"set-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (with-continuation-mark 'key i (loop (- i 1))))))",
       800000, "done"},

      {"set-nontail-prim",
       "(define (bench-entry n)"
       "  (let loop ([i n] [acc 0])"
       "    (if (zero? i)"
       "        acc"
       "        (loop (- i 1)"
       "              (with-continuation-mark 'key i (+ acc 1))))))",
       800000, "800000"},

      {"set-tail-notail",
       "(define (deep n)"
       "  (if (zero? n)"
       "      0"
       "      (with-continuation-mark 'key n (+ 1 (deep (- n 1))))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       60000, "60000"},

      {"set-nontail-tail",
       "(define (deep n)"
       "  (if (zero? n)"
       "      0"
       "      (+ 1 (with-continuation-mark 'key n (deep (- n 1))))))"
       "(define (bench-entry n)"
       "  (let loop ([r 10] [v 0]) (if (zero? r) v (loop (- r 1) (deep n)))))",
       60000, "60000"},

      {"set-arg-call-loop",
       "(define (ident x) (if (pair? x) x x))"
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (loop (with-continuation-mark 'key i (ident (- i 1)))))))",
       600000, "done"},

      {"set-arg-prim-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n])"
       "    (if (zero? i)"
       "        'done"
       "        (loop (with-continuation-mark 'key i (- i 1))))))",
       800000, "done"},

      {"first-none-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n] [acc 0])"
       "    (if (zero? i)"
       "        acc"
       "        (loop (- i 1)"
       "              (+ acc (continuation-mark-set-first #f 'absent 1))))))",
       800000, "800000"},

      {"first-some-loop",
       "(define (bench-entry n)"
       "  (with-continuation-mark 'key 1"
       "    (let loop ([i n] [acc 0])"
       "      (if (zero? i)"
       "          acc"
       "          (loop (- i 1)"
       "                (+ acc (continuation-mark-set-first #f 'key 0)))))))",
       800000, "800000"},

      {"first-deep-loop",
       "(define (deep n k)"
       "  (if (zero? n) (k) (+ 0 (deep (- n 1) k))))"
       "(define (bench-entry n)"
       "  (with-continuation-mark 'key 1"
       "    (deep 4000"
       "      (lambda ()"
       "        (let loop ([i n] [acc 0])"
       "          (if (zero? i)"
       "              acc"
       "              (loop (- i 1)"
       "                    (+ acc (continuation-mark-set-first #f 'key 0)))))))))",
       400000, "400000"},

      {"immed-none-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n] [acc 0])"
       "    (if (zero? i)"
       "        acc"
       "        (loop (- i 1)"
       "              (call-with-immediate-continuation-mark 'key"
       "                (lambda (v) (+ acc (if v 1 0))) #f)))))",
       400000, "0"},

      {"immed-some-loop",
       "(define (bench-entry n)"
       "  (let loop ([i n] [acc 0])"
       "    (if (zero? i)"
       "        acc"
       "        (with-continuation-mark 'key i"
       "          (call-with-immediate-continuation-mark 'key"
       "            (lambda (v) (loop (- i 1) (+ acc (if v 1 0)))) #f)))))",
       400000, "400000"},
  };
  CountOut = static_cast<int>(sizeof(Micros) / sizeof(Micros[0]));
  return Micros;
}

} // namespace cmkbench

#endif // CMARKS_BENCH_PROGRAMS_MICRO_MARKS_H
