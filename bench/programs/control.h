//===- bench/programs/control.h - ctak and triple sources ------*- C++ -*-===//
///
/// \file
/// Scheme sources for the continuation benchmarks of paper section 8.1:
/// the classic ctak benchmark and the triple delimited-continuation search
/// with three delimited-control implementations — native tagged prompts,
/// a [DPJS]-style shift/reset built from call/cc plus a metacontinuation,
/// and a [K]-style amb built from raw continuation re-invocation.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_PROGRAMS_CONTROL_H
#define CMARKS_BENCH_PROGRAMS_CONTROL_H

namespace cmkbench {

inline const char *ctakSource() {
  return R"(
(define (ctak x y z)
  (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call/cc
       (lambda (k2)
         (ctak-aux k2
                   (call/cc (lambda (k3) (ctak-aux k3 (- x 1) y z)))
                   (call/cc (lambda (k4) (ctak-aux k4 (- y 1) z x)))
                   (call/cc (lambda (k5) (ctak-aux k5 (- z 1) x y))))))))
)";
}

/// Same benchmark against the raw (unwrapped) capture primitive: the
/// "Chez Scheme" row, without the winder-aware wrapper that models Racket
/// CS's indirection.
inline const char *ctakRawSource() {
  return R"(
(define (ctak-raw x y z)
  (#%call/cc (lambda (k) (ctak-raw-aux k x y z))))
(define (ctak-raw-aux k x y z)
  (if (not (< y x))
      (k z)
      (#%call/cc
       (lambda (k2)
         (ctak-raw-aux k2
                       (#%call/cc (lambda (k3) (ctak-raw-aux k3 (- x 1) y z)))
                       (#%call/cc (lambda (k4) (ctak-raw-aux k4 (- y 1) z x)))
                       (#%call/cc (lambda (k5) (ctak-raw-aux k5 (- z 1) x y))))))))
)";
}

/// triple(n): counts non-decreasing triples (i, j, k) with i+j+k = n by
/// nondeterministic search over two kinds of choices, each delimited by
/// its own prompt tag (paper 8.1: "two kinds of prompts for two different
/// kinds of choices"). All implementations explore the same deterministic
/// order and must agree on the count.
inline const char *tripleNativeSource() {
  return R"(
;; shift/reset over the native tagged prompts.
(define triple-tag-a (make-continuation-prompt-tag 'triple-a))
(define triple-tag-b (make-continuation-prompt-tag 'triple-b))

(define (reset-with tag thunk)
  (call-with-continuation-prompt thunk tag (lambda (t) (t))))

(define (shift-with tag f)
  (call-with-composable-continuation
   (lambda (k)
     (abort-current-continuation tag
       (lambda ()
         (f (lambda (v)
              (call-with-continuation-prompt (lambda () (k v)) tag
                                             (lambda (t) (t))))))))
   tag))

(define (sum-range-with tag lo hi)
  (shift-with tag
    (lambda (k)
      (let loop ([i lo] [acc 0])
        (if (> i hi) acc (loop (+ i 1) (+ acc (k i))))))))

(define (triple-native n)
  (reset-with triple-tag-a
    (lambda ()
      (let ([i (sum-range-with triple-tag-a 0 n)])
        (reset-with triple-tag-b
          (lambda ()
            (let ([j (sum-range-with triple-tag-b 0 n)])
              (let ([k (- n (+ i j))])
                (if (and (>= k 0) (<= i j) (<= j k)) 1 0)))))))))
)";
}

inline const char *tripleDpjsSource() {
  return R"(
;; [DPJS]-style shift/reset: call/cc plus an explicit metacontinuation
;; stack, following Dybvig, Peyton Jones and Sabry's construction.
(define #%dpjs-mk '())

(define (dpjs-reset thunk)
  (call/cc
   (lambda (k)
     (set! #%dpjs-mk (cons k #%dpjs-mk))
     (dpjs-pop (thunk)))))

(define (dpjs-pop v)
  (let ([k (car #%dpjs-mk)])
    (set! #%dpjs-mk (cdr #%dpjs-mk))
    (k v)))

(define (dpjs-shift f)
  (call/cc
   (lambda (k)
     (dpjs-pop
      (f (lambda (v)
           (call/cc
            (lambda (k2)
              (set! #%dpjs-mk (cons k2 #%dpjs-mk))
              (k v)))))))))

(define (dpjs-sum-range lo hi)
  (dpjs-shift
   (lambda (k)
     (let loop ([i lo] [acc 0])
       (if (> i hi) acc (loop (+ i 1) (+ acc (k i))))))))

(define (triple-dpjs n)
  (dpjs-reset
   (lambda ()
     (let ([i (dpjs-sum-range 0 n)])
       (dpjs-reset
        (lambda ()
          (let ([j (dpjs-sum-range 0 n)])
            (let ([k (- n (+ i j))])
              (if (and (>= k 0) (<= i j) (<= j k)) 1 0)))))))))
)";
}

inline const char *tripleKSource() {
  return R"(
;; [K]-style: an amb operator from raw continuation re-invocation with an
;; explicit failure stack (Kiselyov's continuation recipes).
(define #%amb-fail #f)
(define #%amb-count 0)

(define (amb-fail!)
  (if #%amb-fail (#%amb-fail) 'exhausted))

(define (amb-range lo hi)
  (call/cc
   (lambda (sk)
     (let loop ([i lo])
       (if (> i hi)
           (amb-fail!)
           (begin
             (call/cc
              (lambda (fk)
                (let ([prev #%amb-fail])
                  (set! #%amb-fail
                        (lambda () (set! #%amb-fail prev) (fk #f)))
                  (sk i))))
             (loop (+ i 1))))))))

(define (triple-k n)
  (set! #%amb-count 0)
  (call/cc
   (lambda (done)
     (set! #%amb-fail (lambda () (done 'exhausted)))
     (let ([i (amb-range 0 n)])
       (let ([j (amb-range 0 n)])
         (let ([k (- n (+ i j))])
           (when (and (>= k 0) (<= i j) (<= j k))
             (set! #%amb-count (+ 1 #%amb-count)))
           (amb-fail!))))))
  #%amb-count)
)";
}

} // namespace cmkbench

#endif // CMARKS_BENCH_PROGRAMS_CONTROL_H
