//===- bench/bench_harness.h - Paper-style benchmark driver ----*- C++ -*-===//
///
/// \file
/// Shared driver for the experiment binaries (DESIGN.md E1-E9). Reports
/// results the way the paper does: average wall-clock time over N runs
/// with standard deviation, and relative columns ("x1.03") for variant
/// comparisons, including the figure 4 "speedup range" derived from the
/// standard deviations.
///
/// Environment knobs:
///   CMARKS_BENCH_RUNS   runs per measurement (default 3; the paper used 5)
///   CMARKS_BENCH_SCALE  workload multiplier (default 1.0)
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_BENCH_HARNESS_H
#define CMARKS_BENCH_BENCH_HARNESS_H

#include "api/scheme.h"
#include "support/timing.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cmkbench {

inline int runCount() {
  if (const char *S = std::getenv("CMARKS_BENCH_RUNS"))
    return std::max(1, std::atoi(S));
  return 3;
}

inline double workScale() {
  if (const char *S = std::getenv("CMARKS_BENCH_SCALE"))
    return std::max(0.001, std::atof(S));
  return 1.0;
}

/// Scales an iteration count by CMARKS_BENCH_SCALE.
inline long scaled(long N) {
  return std::max(1L, static_cast<long>(static_cast<double>(N) * workScale()));
}

struct Timing {
  double AvgMs = 0;
  double StdevMs = 0;
};

/// Times `RunExpr` (usually a call to a pre-defined benchmark entry) over
/// runCount() runs in an already-set-up engine.
inline Timing timeExpr(cmk::SchemeEngine &E, const std::string &RunExpr) {
  cmk::RunStats Stats;
  for (int I = 0; I < runCount(); ++I) {
    uint64_t T0 = cmk::nowNanos();
    E.evalOrDie(RunExpr);
    uint64_t T1 = cmk::nowNanos();
    Stats.addSampleNanos(T1 - T0);
  }
  return {Stats.averageMillis(), Stats.stddevMillis()};
}

/// One-shot: fresh engine of the given variant, setup + timed run.
inline Timing timeOnVariant(cmk::EngineVariant V, const std::string &Setup,
                            const std::string &RunExpr) {
  cmk::SchemeEngine E(V);
  if (!Setup.empty())
    E.evalOrDie(Setup);
  return timeExpr(E, RunExpr);
}

inline void printTitle(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline void printNote(const std::string &Note) {
  std::printf("  %s\n", Note.c_str());
}

/// "name            123.4 ms  +/-1.2"
inline void printAbsRow(const std::string &Name, Timing T) {
  std::printf("  %-26s %9.1f ms  +/-%.1f\n", Name.c_str(), T.AvgMs,
              T.StdevMs);
}

/// Figure 4-style row: base time, relative variant time, and a speedup
/// range from the standard deviations (low = (base+sd)/(other-sd), high =
/// (base-sd)/(other+sd) inverted appropriately).
inline void printRelRow(const std::string &Name, Timing Base,
                        const std::vector<std::pair<std::string, Timing>>
                            &Others) {
  std::printf("  %-26s %9.1f ms", Name.c_str(), Base.AvgMs);
  for (const auto &[Label, T] : Others) {
    double Ratio = Base.AvgMs > 0 ? T.AvgMs / Base.AvgMs : 0;
    std::printf("  %s x%-5.2f", Label.c_str(), Ratio);
  }
  std::printf("\n");
}

/// Figure 4's dedicated format: speedup of Base (builtin) vs Other
/// (imitate), with range.
inline void printSpeedupRow(const std::string &Name, Timing Builtin,
                            Timing Other) {
  double Speedup = Builtin.AvgMs > 0 ? Other.AvgMs / Builtin.AvgMs : 0;
  double Low = (Builtin.AvgMs + Builtin.StdevMs) > 0
                   ? (Other.AvgMs - Other.StdevMs) /
                         (Builtin.AvgMs + Builtin.StdevMs)
                   : 0;
  double High = (Builtin.AvgMs - Builtin.StdevMs) > 0
                    ? (Other.AvgMs + Other.StdevMs) /
                          (Builtin.AvgMs - Builtin.StdevMs)
                    : 0;
  std::printf("  %-22s %9.1f ms   x%-6.2f  (x%.2f - x%.2f)\n", Name.c_str(),
              Builtin.AvgMs, Speedup, Low, High);
}

} // namespace cmkbench

#endif // CMARKS_BENCH_BENCH_HARNESS_H
