//===- bench/bench_harness.h - Paper-style benchmark driver ----*- C++ -*-===//
///
/// \file
/// Shared driver for the experiment binaries (DESIGN.md E1-E9). Reports
/// results the way the paper does: average wall-clock time over N runs
/// with standard deviation, and relative columns ("x1.03") for variant
/// comparisons, including the figure 4 "speedup range" derived from the
/// standard deviations.
///
/// Environment knobs:
///   CMARKS_BENCH_RUNS       runs per measurement (default 3; the paper used 5)
///   CMARKS_BENCH_SCALE      workload multiplier (default 1.0)
///   CMARKS_BENCH_JSON       "0" disables the BENCH_<name>.json blob
///   CMARKS_BENCH_JSON_DIR   output directory for the blob (default ".")
///   CMARKS_BENCH_PROFILE_HZ run the safe-point sampling profiler at this
///                           rate during the timed runs (0/unset = off);
///                           EXPERIMENTS.md E11 uses it to measure the
///                           sampler's overhead
///
/// Besides the human tables, every binary that routes its measurements
/// through a JsonReport emits a machine-readable `BENCH_<name>.json`
/// containing timings *and* runtime event counters (support/stats.h) per
/// benchmark and engine variant. That file is what CI archives and what
/// tools/check_bench.py gates regressions against; see DESIGN.md for the
/// schema.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_BENCH_BENCH_HARNESS_H
#define CMARKS_BENCH_BENCH_HARNESS_H

#include "api/scheme.h"
#include "support/stats.h"
#include "support/timing.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cmkbench {

inline int runCount() {
  if (const char *S = std::getenv("CMARKS_BENCH_RUNS"))
    return std::max(1, std::atoi(S));
  return 3;
}

inline double workScale() {
  if (const char *S = std::getenv("CMARKS_BENCH_SCALE"))
    return std::max(0.001, std::atof(S));
  return 1.0;
}

/// Scales an iteration count by CMARKS_BENCH_SCALE.
inline long scaled(long N) {
  return std::max(1L, static_cast<long>(static_cast<double>(N) * workScale()));
}

struct Timing {
  double AvgMs = 0;
  double StdevMs = 0;
};

/// Stable external name of an engine variant, used as the JSON key.
inline const char *variantName(cmk::EngineVariant V) {
  switch (V) {
  case cmk::EngineVariant::Builtin:
    return "builtin";
  case cmk::EngineVariant::NoOpt:
    return "no-opt";
  case cmk::EngineVariant::NoPrim:
    return "no-prim";
  case cmk::EngineVariant::No1cc:
    return "no-1cc";
  case cmk::EngineVariant::Unmod:
    return "unmod";
  case cmk::EngineVariant::Imitate:
    return "imitate";
  case cmk::EngineVariant::MarkStack:
    return "mark-stack";
  case cmk::EngineVariant::HeapFrames:
    return "heap-frames";
  case cmk::EngineVariant::CopyOnCapture:
    return "copy-on-capture";
  }
  return "unknown";
}

/// CMARKS_BENCH_PROFILE_HZ: sampling-profiler rate armed around the timed
/// runs (0 = profiler off, the default).
inline uint32_t profileHz() {
  if (const char *S = std::getenv("CMARKS_BENCH_PROFILE_HZ"))
    return static_cast<uint32_t>(std::max(0, std::atoi(S)));
  return 0;
}

/// Times `RunExpr` (usually a call to a pre-defined benchmark entry) over
/// runCount() runs in an already-set-up engine.
inline Timing timeExpr(cmk::SchemeEngine &E, const std::string &RunExpr) {
  cmk::RunStats Stats;
  if (uint32_t Hz = profileHz())
    E.startProfiler(Hz);
  for (int I = 0; I < runCount(); ++I) {
    uint64_t T0 = cmk::nowNanos();
    E.evalOrDie(RunExpr);
    uint64_t T1 = cmk::nowNanos();
    Stats.addSampleNanos(T1 - T0);
  }
  if (profileHz())
    E.stopProfiler();
  return {Stats.averageMillis(), Stats.stddevMillis()};
}

/// One-shot: fresh engine of the given variant, setup + timed run.
inline Timing timeOnVariant(cmk::EngineVariant V, const std::string &Setup,
                            const std::string &RunExpr) {
  cmk::SchemeEngine E(V);
  if (!Setup.empty())
    E.evalOrDie(Setup);
  return timeExpr(E, RunExpr);
}

/// A timing plus the runtime event-counter deltas accumulated across the
/// timed runs (setup excluded). Extras carries benchmark-specific numeric
/// fields (e.g. bench_pool's latency percentiles) into the JSON blob;
/// tools/check_bench.py ignores fields it does not gate on.
struct Measurement {
  Timing T;
  cmk::VMStats Counters;
  std::vector<std::pair<std::string, double>> Extras;
};

/// Like timeExpr, but also captures the counter deltas of the timed runs.
inline Measurement measureExpr(cmk::SchemeEngine &E,
                               const std::string &RunExpr) {
  cmk::VMStats Before = E.stats();
  Timing T = timeExpr(E, RunExpr);
  return {T, E.stats().delta(Before)};
}

/// One-shot variant measurement: fresh engine, setup, then timed runs with
/// counters isolated to the workload.
inline Measurement measureOnVariant(cmk::EngineVariant V,
                                    const std::string &Setup,
                                    const std::string &RunExpr) {
  cmk::SchemeEngine E(V);
  if (!Setup.empty())
    E.evalOrDie(Setup);
  return measureExpr(E, RunExpr);
}

/// Accumulates (benchmark, variant) measurements and writes them as
/// BENCH_<name>.json when destroyed (or on an explicit write()). The
/// schema (see DESIGN.md "Machine-readable bench output"):
///
///   { "schema": "cmarks-bench-v1", "bench": "<name>",
///     "runs": N, "scale": S,
///     "results": [ { "name": "<benchmark>", "variants": [
///         { "variant": "<variant>", "avg_ms": .., "stdev_ms": ..,
///           "counters": { "<counter>": <n>, ... } }, ... ] }, ... ] }
///
/// Emission is on by default; CMARKS_BENCH_JSON=0 disables it and
/// CMARKS_BENCH_JSON_DIR redirects the output directory.
class JsonReport {
public:
  explicit JsonReport(const std::string &BenchName) : Bench(BenchName) {}
  JsonReport(const JsonReport &) = delete;
  JsonReport &operator=(const JsonReport &) = delete;
  ~JsonReport() { write(); }

  void add(const std::string &Benchmark, const std::string &VariantLabel,
           const Measurement &M) {
    if (Results.empty() || Results.back().Name != Benchmark) {
      Results.push_back({Benchmark, {}});
    }
    Results.back().Variants.push_back({VariantLabel, M});
  }

  void add(const std::string &Benchmark, cmk::EngineVariant V,
           const Measurement &M) {
    add(Benchmark, variantName(V), M);
  }

  /// Writes the blob; safe to call once, the destructor then no-ops.
  void write() {
    if (Written)
      return;
    Written = true;
    if (const char *S = std::getenv("CMARKS_BENCH_JSON"))
      if (S[0] == '0' && S[1] == '\0')
        return;
    std::string Dir = ".";
    if (const char *D = std::getenv("CMARKS_BENCH_JSON_DIR"))
      Dir = D;
    std::string Path = Dir + "/BENCH_" + Bench + ".json";
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "bench: cannot write %s\n", Path.c_str());
      return;
    }
    std::fprintf(Out,
                 "{\n  \"schema\": \"cmarks-bench-v1\",\n"
                 "  \"bench\": \"%s\",\n  \"runs\": %d,\n"
                 "  \"scale\": %g,\n  \"results\": [",
                 Bench.c_str(), runCount(), workScale());
    for (size_t R = 0; R < Results.size(); ++R) {
      std::fprintf(Out, "%s\n    {\"name\": \"%s\", \"variants\": [",
                   R ? "," : "", Results[R].Name.c_str());
      const auto &Vs = Results[R].Variants;
      for (size_t I = 0; I < Vs.size(); ++I) {
        std::fprintf(Out,
                     "%s\n      {\"variant\": \"%s\", \"avg_ms\": %.6f, "
                     "\"stdev_ms\": %.6f, ",
                     I ? "," : "", Vs[I].Label.c_str(), Vs[I].M.T.AvgMs,
                     Vs[I].M.T.StdevMs);
        for (const auto &[Key, Val] : Vs[I].M.Extras)
          std::fprintf(Out, "\"%s\": %.6f, ", Key.c_str(), Val);
        std::fprintf(Out, "\"counters\": {");
        int N = 0;
        const cmk::StatsCounterDesc *Table = cmk::statsCounters(N);
        for (int C = 0; C < N; ++C)
          std::fprintf(Out, "%s\"%s\": %llu", C ? ", " : "", Table[C].Name,
                       static_cast<unsigned long long>(
                           Vs[I].M.Counters.*(Table[C].Field)));
        std::fprintf(Out, "}}");
      }
      std::fprintf(Out, "\n    ]}");
    }
    std::fprintf(Out, "\n  ]\n}\n");
    std::fclose(Out);
    std::printf("  [bench json: %s]\n", Path.c_str());
  }

private:
  struct VariantEntry {
    std::string Label;
    Measurement M;
  };
  struct ResultEntry {
    std::string Name;
    std::vector<VariantEntry> Variants;
  };
  std::string Bench;
  std::vector<ResultEntry> Results;
  bool Written = false;
};

inline void printTitle(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline void printNote(const std::string &Note) {
  std::printf("  %s\n", Note.c_str());
}

/// "name            123.4 ms  +/-1.2"
inline void printAbsRow(const std::string &Name, Timing T) {
  std::printf("  %-26s %9.1f ms  +/-%.1f\n", Name.c_str(), T.AvgMs,
              T.StdevMs);
}

/// Figure 4-style row: base time, relative variant time, and a speedup
/// range from the standard deviations (low = (base+sd)/(other-sd), high =
/// (base-sd)/(other+sd) inverted appropriately).
inline void printRelRow(const std::string &Name, Timing Base,
                        const std::vector<std::pair<std::string, Timing>>
                            &Others) {
  std::printf("  %-26s %9.1f ms", Name.c_str(), Base.AvgMs);
  for (const auto &[Label, T] : Others) {
    double Ratio = Base.AvgMs > 0 ? T.AvgMs / Base.AvgMs : 0;
    std::printf("  %s x%-5.2f", Label.c_str(), Ratio);
  }
  std::printf("\n");
}

/// Figure 4's dedicated format: speedup of Base (builtin) vs Other
/// (imitate), with range.
inline void printSpeedupRow(const std::string &Name, Timing Builtin,
                            Timing Other) {
  double Speedup = Builtin.AvgMs > 0 ? Other.AvgMs / Builtin.AvgMs : 0;
  double Low = (Builtin.AvgMs + Builtin.StdevMs) > 0
                   ? (Other.AvgMs - Other.StdevMs) /
                         (Builtin.AvgMs + Builtin.StdevMs)
                   : 0;
  double High = (Builtin.AvgMs - Builtin.StdevMs) > 0
                    ? (Other.AvgMs + Other.StdevMs) /
                          (Builtin.AvgMs - Builtin.StdevMs)
                    : 0;
  std::printf("  %-22s %9.1f ms   x%-6.2f  (x%.2f - x%.2f)\n", Name.c_str(),
              Builtin.AvgMs, Speedup, Low, High);
}

} // namespace cmkbench

#endif // CMARKS_BENCH_BENCH_HARNESS_H
