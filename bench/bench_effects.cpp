//===- bench/bench_effects.cpp - Delimited-control workloads ---------------===//
///
/// \file
/// The delimited-control workload suite: effect handlers, generator
/// pipelines, and backtracking search built on tagged prompts and
/// composable continuations (bench/programs/effects.h). Where the E1/E2
/// benchmarks isolate capture cost, these measure the application shapes
/// the control operators exist for, across the engine variants that
/// stress the machinery differently:
///
///   builtin          full optimization (reference)
///   no-opt           generic 7.1 attachment paths, no compiler help
///   no-1cc           opportunistic one-shot fast paths disabled
///   heap-frames      continuation frames allocated on the heap
///   copy-on-capture  eager stack copying at every capture
///
/// Each workload asserts its expected result once per variant before the
/// timed runs, so a miscompiled variant fails loudly instead of timing
/// garbage. Results land in BENCH_effects.json (schema cmarks-bench-v1);
/// tools/bench_record.sh includes the blob in the repo-root trajectory
/// and check_bench.py gates its counters against bench/baselines/.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/effects.h"

#include <cstdio>
#include <string>

using namespace cmkbench;
using cmk::EngineVariant;

namespace {

const EngineVariant Variants[] = {
    EngineVariant::Builtin,       EngineVariant::NoOpt,
    EngineVariant::No1cc,         EngineVariant::HeapFrames,
    EngineVariant::CopyOnCapture,
};

struct Workload {
  const char *Name;
  const char *Setup;
  std::string CheckExpr; ///< Small instance with a known value.
  std::string CheckWant;
  std::string RunExpr; ///< The timed expression.
};

} // namespace

int main() {
  long CounterN = scaled(20000);
  long PipelineN = scaled(12000);
  long QueensRounds = scaled(8);

  // queens(7) has 40 solutions; the timed run re-solves it in a loop.
  std::string QueensRun = "(let loop ([i " + std::to_string(QueensRounds) +
                          "] [acc 0]) (if (zero? i) acc "
                          "(loop (- i 1) (+ acc (queens 7)))))";

  Workload Workloads[] = {
      {"effect-handlers", effectHandlersSource(),
       "(eff-counter 32)", "(32 32 2)",
       "(eff-counter " + std::to_string(CounterN) + ")"},
      {"generator-pipeline", generatorPipelineSource(),
       // evens below 10 squared: 0 + 4 + 16 + 36 + 64.
       "(pipeline 10)", "120",
       "(pipeline " + std::to_string(PipelineN) + ")"},
      {"backtracking-queens", backtrackingSource(),
       "(list (queens 5) (queens 6))", "(10 4)", QueensRun},
  };

  printTitle("Delimited-control workloads (effects suite)");
  JsonReport Report("effects");

  for (const Workload &W : Workloads) {
    Timing Base;
    std::vector<std::pair<std::string, Timing>> Rel;
    for (EngineVariant V : Variants) {
      cmk::SchemeEngine E(V);
      E.evalOrDie(W.Setup);
      std::string Got = E.evalToString(W.CheckExpr);
      if (!E.ok() || Got != W.CheckWant) {
        std::fprintf(stderr,
                     "bench_effects: %s sanity check failed on %s: "
                     "got %s, want %s\n",
                     W.Name, variantName(V),
                     E.ok() ? Got.c_str() : E.lastError().c_str(),
                     W.CheckWant.c_str());
        return 1;
      }
      Measurement M = measureExpr(E, W.RunExpr);
      Report.add(W.Name, V, M);
      if (V == EngineVariant::Builtin)
        Base = M.T;
      else
        Rel.push_back({variantName(V), M.T});
    }
    printRelRow(W.Name, Base, Rel);
  }

  printNote("columns are time relative to builtin (x1.00)");
  return 0;
}
