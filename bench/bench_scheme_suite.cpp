//===- bench/bench_scheme_suite.cpp - E4: figure 2 suite -------*- C++ -*-===//
///
/// \file
/// The traditional-benchmark experiment of figure 2: the attachment-
/// enabled compiler ("attach") must not slow down classic Scheme programs
/// relative to the unmodified compiler ("unmod"). Every benchmark result
/// is self-checked against a known value.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "programs/classics.h"

#include <cstring>
#include <string>

using namespace cmkbench;
using cmk::EngineVariant;
using cmk::SchemeEngine;

int main() {
  printTitle("E4: traditional Scheme benchmarks, unmod vs attach (figure 2)");
  printNote("expected: attach within noise of unmod on every row");

  int Count = 0;
  const ClassicBenchmark *Benchmarks = classicBenchmarks(Count);
  bool AllOk = true;

  for (int I = 0; I < Count; ++I) {
    const ClassicBenchmark &B = Benchmarks[I];
    long N = scaled(B.DefaultIters);
    char Run[128];
    std::snprintf(Run, sizeof(Run), B.RunTemplate, N);

    // Self-check on the default size with the builtin engine.
    if (N == B.DefaultIters) {
      SchemeEngine Check;
      Check.evalOrDie(B.Source);
      std::string Got = Check.evalToString(Run);
      if (Got != B.Expected) {
        std::fprintf(stderr, "%s: expected %s, got %s\n", B.Name, B.Expected,
                     Got.c_str());
        AllOk = false;
        continue;
      }
    }

    Timing Unmod = timeOnVariant(EngineVariant::Unmod, B.Source, Run);
    Timing Attach = timeOnVariant(EngineVariant::Builtin, B.Source, Run);
    printRelRow(B.Name, Unmod, {{"attach", Attach}});
  }
  return AllOk ? 0 : 1;
}
