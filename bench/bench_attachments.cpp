//===- bench/bench_attachments.cpp - E5: figure 4 micros -------*- C++ -*-===//
///
/// \file
/// The attachment microbenchmarks of figure 4: built-in compiler/runtime
/// support versus the figure 3 call/cc imitation. Expected shape: base-*
/// rows equal; set/get/consume loops several times faster built-in; the
/// "set-nontail-notail" row (pure marks push/pop vs full capture) shows
/// the largest gap; loop-arg-prim large because the compiler knows the
/// primitive cannot observe attachments.
///
//===----------------------------------------------------------------------===//

#include "bench_harness.h"
#include "lib/prelude.h"
#include "programs/micro_attachments.h"

#include <string>

using namespace cmkbench;
using cmk::SchemeEngine;

int main() {
  printTitle("E5: attachment micros, builtin vs figure 3 imitation (fig 4)");
  std::printf("  %-22s %12s   %-7s %s\n", "benchmark", "builtin", "imitate",
              "(speedup range)");

  int Count = 0;
  const AttachmentMicro *Micros = attachmentMicros(Count);
  bool AllOk = true;
  JsonReport Json("attachments");

  for (int I = 0; I < Count; ++I) {
    const AttachmentMicro &B = Micros[I];
    long N = scaled(B.DefaultN);
    std::string Run = "(bench-entry " + std::to_string(N) + ")";

    SchemeEngine Builtin;
    Builtin.evalOrDie(substituteAttachmentOps(B.Source, true));
    SchemeEngine Imitate;
    Imitate.evalOrDie(cmk::imitationSource());
    Imitate.evalOrDie(substituteAttachmentOps(B.Source, false));

    if (N == B.DefaultN) {
      std::string G1 = Builtin.evalToString(Run);
      std::string G2 = Imitate.evalToString(Run);
      if (G1 != B.Expected || G2 != B.Expected) {
        std::fprintf(stderr, "%s: expected %s, builtin=%s imitate=%s\n",
                     B.Name, B.Expected, G1.c_str(), G2.c_str());
        AllOk = false;
        continue;
      }
    }

    Measurement MB = measureExpr(Builtin, Run);
    Measurement MI = measureExpr(Imitate, Run);
    printSpeedupRow(B.Name, MB.T, MI.T);
    Json.add(B.Name, "builtin", MB);
    Json.add(B.Name, "imitate", MI);
  }
  return AllOk ? 0 : 1;
}
