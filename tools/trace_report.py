#!/usr/bin/env python3
"""Summarize (or validate) a cmarks trace JSON file.

The input is the Chrome trace-event JSON written by `cmarks_repl
--trace=FILE`, `SchemeEngine::dumpTrace()`, or `(runtime-trace-dump
"FILE")` (schema "cmarks-trace-v1"; loadable in ui.perfetto.dev).

  trace_report.py FILE            per-event counts and span durations
  trace_report.py --check FILE    validate the schema; exit 0/1 (CI)
"""
import argparse
import json
import sys
from collections import Counter, defaultdict

SCHEMA = "cmarks-trace-v1"
PHASES = {"B", "E", "i", "M"}


def fail(msg):
    print(f"trace_report: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check(doc, path):
    """Validates the cmarks-trace-v1 shape; exits non-zero on violation."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != SCHEMA:
        fail(f"{path}: otherData.schema is not {SCHEMA!r}")
    for key in ("events", "dropped", "detailTier"):
        if key not in other:
            fail(f"{path}: otherData lacks {key!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be a list")
    depth = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"{path}: event {i} is not an object")
        ph = e.get("ph")
        if ph not in PHASES:
            fail(f"{path}: event {i} has bad ph {ph!r}")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{path}: event {i} lacks a name")
        if e.get("pid") != 1 or e.get("tid") != 1:
            fail(f"{path}: event {i} has bad pid/tid")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"{path}: event {i} has bad ts {ts!r}")
        if ph == "B":
            depth += 1
        elif ph == "E":
            depth -= 1
            if depth < 0:
                fail(f"{path}: event {i}: E without a matching B")
    if depth != 0:
        fail(f"{path}: {depth} B event(s) left unclosed")
    # otherData.events counts ring-buffer entries; the exported list can
    # differ slightly when the exporter repaired B/E pairs broken by
    # wraparound, so only the field's type is checked.
    if not isinstance(other["events"], int) or other["events"] < 0:
        fail(f"{path}: otherData.events is not a count")
    n_real = sum(1 for e in events if e.get("ph") != "M")
    print(f"{path}: OK ({n_real} events, {other['dropped']} dropped, "
          f"detail tier {'on' if other['detailTier'] else 'off'})")


def report(doc, path):
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") != "M"]
    other = doc.get("otherData", {})
    print(f"{path}: {len(events)} events "
          f"({other.get('dropped', '?')} dropped, detail tier "
          f"{'on' if other.get('detailTier') else 'off'})")

    counts = Counter()
    for e in events:
        suffix = {"B": " (begin)", "E": " (end)"}.get(e["ph"], "")
        counts[(e.get("cat", "?"), e["name"] + suffix)] += 1
    print("\n  event counts")
    for (cat, name), n in sorted(counts.items()):
        print(f"    {cat:<14} {name:<24} {n}")

    # Span durations: stack-match B/E (the exporter guarantees balance).
    stack = []
    totals = defaultdict(float)
    spans = Counter()
    for e in events:
        if e["ph"] == "B":
            stack.append(e)
        elif e["ph"] == "E" and stack:
            b = stack.pop()
            totals[b["name"]] += e["ts"] - b["ts"]
            spans[b["name"]] += 1
    if spans:
        print("\n  span totals (inclusive wall-clock)")
        for name, n in spans.most_common():
            print(f"    {name:<24} {n:>6} slices  {totals[name]:>10.1f} us")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="trace JSON file")
    ap.add_argument("--check", action="store_true",
                    help="validate the schema instead of summarizing")
    args = ap.parse_args()
    doc = load(args.file)
    if args.check:
        check(doc, args.file)
    else:
        report(doc, args.file)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
