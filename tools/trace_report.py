#!/usr/bin/env python3
"""Summarize (or validate) a cmarks trace JSON file.

The input is the Chrome trace-event JSON written by `cmarks_repl
--trace=FILE`, `SchemeEngine::dumpTrace()`, `(runtime-trace-dump
"FILE")`, or `EnginePool::dumpTrace()` (schema "cmarks-trace-v1";
loadable in ui.perfetto.dev). Pool exports are multi-threaded: worker N
renders as tid N+1, and serving jobs appear as named "job-<id>" spans.

  trace_report.py FILE            per-event counts and span durations
  trace_report.py --check FILE    validate the schema; exit 0/1 (CI).
                                  Warns on stderr when the ring dropped
                                  events (the export is truncated).
  trace_report.py --jobs FILE     per-job table: id, worker, start, wall
"""
import argparse
import json
import sys
from collections import Counter, defaultdict

SCHEMA = "cmarks-trace-v1"
PHASES = {"B", "E", "i", "M"}


def fail(msg):
    print(f"trace_report: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check(doc, path):
    """Validates the cmarks-trace-v1 shape; exits non-zero on violation."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != SCHEMA:
        fail(f"{path}: otherData.schema is not {SCHEMA!r}")
    for key in ("events", "dropped", "detailTier"):
        if key not in other:
            fail(f"{path}: otherData lacks {key!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be a list")
    # Begin/End balance is per thread: pool exports interleave workers,
    # and the exporter guarantees spans never cross engines (tids).
    depth = Counter()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"{path}: event {i} is not an object")
        ph = e.get("ph")
        if ph not in PHASES:
            fail(f"{path}: event {i} has bad ph {ph!r}")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{path}: event {i} lacks a name")
        tid = e.get("tid")
        if e.get("pid") != 1 or not isinstance(tid, int) or tid < 1:
            fail(f"{path}: event {i} has bad pid/tid")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"{path}: event {i} has bad ts {ts!r}")
        if ph == "B":
            depth[tid] += 1
        elif ph == "E":
            depth[tid] -= 1
            if depth[tid] < 0:
                fail(f"{path}: event {i}: E without a matching B (tid {tid})")
    for tid, d in depth.items():
        if d != 0:
            fail(f"{path}: tid {tid}: {d} B event(s) left unclosed")
    # otherData.events counts ring-buffer entries; the exported list can
    # differ slightly when the exporter repaired B/E pairs broken by
    # wraparound, so only the field's type is checked.
    if not isinstance(other["events"], int) or other["events"] < 0:
        fail(f"{path}: otherData.events is not a count")
    dropped = other["dropped"]
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"{path}: otherData.dropped is not a count")
    if dropped > 0:
        print(f"trace_report: WARNING: {path}: ring dropped {dropped} "
              f"event(s); the export holds only the newest window "
              f"(raise the trace capacity)", file=sys.stderr)
    n_real = sum(1 for e in events if e.get("ph") != "M")
    n_tids = len({e.get("tid") for e in events})
    print(f"{path}: OK ({n_real} events, {dropped} dropped, {n_tids} "
          f"thread(s), detail tier {'on' if other['detailTier'] else 'off'})")


def job_spans(events):
    """Yields (job_id, tid, begin_ts, end_ts) for every job-<id> span."""
    open_jobs = {}
    for e in events:
        if e.get("cat") != "job":
            continue
        tid = e.get("tid", 1)
        if e["ph"] == "B":
            open_jobs[tid] = e
        elif e["ph"] == "E" and tid in open_jobs:
            b = open_jobs.pop(tid)
            name = b.get("name", "")
            jid = name[4:] if name.startswith("job-") else name
            yield jid, tid, b["ts"], e["ts"]


def report_jobs(doc, path):
    thread_names = {}
    for e in doc.get("traceEvents", []):
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            thread_names[e.get("tid")] = e.get("args", {}).get("name", "?")
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") != "M"]
    jobs = sorted(job_spans(events), key=lambda j: j[2])
    if not jobs:
        print(f"{path}: no job spans (pool tracing off, or not a pool trace)")
        return
    print(f"{path}: {len(jobs)} job span(s)")
    print(f"  {'job':>8} {'worker':<12} {'start us':>12} {'wall us':>10}")
    for jid, tid, b, e in jobs:
        worker = thread_names.get(tid, f"tid-{tid}")
        print(f"  {jid:>8} {worker:<12} {b:>12.1f} {e - b:>10.1f}")
    walls = sorted(e - b for _, _, b, e in jobs)
    mid = walls[len(walls) // 2]
    print(f"  wall p50 {mid:.1f} us  max {walls[-1]:.1f} us")


def report(doc, path):
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") != "M"]
    other = doc.get("otherData", {})
    n_tids = len({e.get("tid", 1) for e in events})
    print(f"{path}: {len(events)} events "
          f"({other.get('dropped', '?')} dropped, {n_tids} thread(s), "
          f"detail tier {'on' if other.get('detailTier') else 'off'})")

    counts = Counter()
    for e in events:
        suffix = {"B": " (begin)", "E": " (end)"}.get(e["ph"], "")
        counts[(e.get("cat", "?"), e["name"] + suffix)] += 1
    print("\n  event counts")
    for (cat, name), n in sorted(counts.items()):
        print(f"    {cat:<14} {name:<24} {n}")

    # Span durations: stack-match B/E per tid (the exporter guarantees
    # per-thread balance; spans never cross engines).
    stack = defaultdict(list)
    totals = defaultdict(float)
    spans = Counter()
    for e in events:
        tid = e.get("tid", 1)
        if e["ph"] == "B":
            stack[tid].append(e)
        elif e["ph"] == "E" and stack[tid]:
            b = stack[tid].pop()
            totals[b["name"]] += e["ts"] - b["ts"]
            spans[b["name"]] += 1
    if spans:
        print("\n  span totals (inclusive wall-clock)")
        for name, n in spans.most_common():
            print(f"    {name:<24} {n:>6} slices  {totals[name]:>10.1f} us")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="trace JSON file")
    ap.add_argument("--check", action="store_true",
                    help="validate the schema instead of summarizing")
    ap.add_argument("--jobs", action="store_true",
                    help="per-job span table (EnginePool traces)")
    args = ap.parse_args()
    doc = load(args.file)
    if args.check:
        check(doc, args.file)
    elif args.jobs:
        report_jobs(doc, args.file)
    else:
        report(doc, args.file)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
