#!/usr/bin/env python3
"""Summarize (or validate) a cmarks metrics JSON document.

The input is the `cmarks-metrics-v1` JSON written by `cmarks_repl
--metrics=FILE`, `(runtime-metrics)`, `EnginePool::metricsJson()`, or
bench_pool's CMARKS_BENCH_METRICS_JSON hook.

  metrics_report.py FILE            human summary (gauges, counters,
                                    histogram percentiles)
  metrics_report.py --check FILE    validate the schema; exit 0/1 (CI)
  metrics_report.py --check --require NAME,NAME,.. FILE
                                    additionally require the named metric
                                    families to be present (values may be
                                    zero; absence is the failure)

Schema:

  { "schema": "cmarks-metrics-v1", "component": "engine" | "pool",
    "counters":   [ {"name": .., "labels": {..}, "value": N}, .. ],
    "gauges":     [ {"name": .., "labels": {..}, "value": X}, .. ],
    "histograms": [ {"name": .., "labels": {..}, "count": N, "sum": X,
                     "min": X, "max": X,
                     "p50": X, "p90": X, "p99": X, "p999": X}, .. ] }
"""
import argparse
import json
import sys

SCHEMA = "cmarks-metrics-v1"
HIST_FIELDS = ("count", "sum", "min", "max", "p50", "p90", "p99", "p999")


def fail(msg):
    print(f"metrics_report: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check_entry(path, kind, i, e):
    if not isinstance(e, dict):
        fail(f"{path}: {kind}[{i}] is not an object")
    name = e.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{path}: {kind}[{i}] lacks a name")
    if not name.startswith("cmarks_"):
        fail(f"{path}: {kind}[{i}] name {name!r} lacks the cmarks_ prefix")
    labels = e.get("labels")
    if not isinstance(labels, dict):
        fail(f"{path}: {kind}[{i}] ({name}) lacks a labels object")
    for k, v in labels.items():
        if not isinstance(k, str) or not isinstance(v, str):
            fail(f"{path}: {kind}[{i}] ({name}) has a non-string label")
    return name


def check(doc, path):
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is not {SCHEMA!r}")
    component = doc.get("component")
    if not isinstance(component, str) or not component:
        fail(f"{path}: component missing")
    seen = set()
    n = {"counters": 0, "gauges": 0, "histograms": 0}
    for kind in ("counters", "gauges", "histograms"):
        entries = doc.get(kind)
        if not isinstance(entries, list):
            fail(f"{path}: {kind} must be a list")
        n[kind] = len(entries)
        for i, e in enumerate(entries):
            name = check_entry(path, kind, i, e)
            key = (name, tuple(sorted(e["labels"].items())))
            if key in seen:
                fail(f"{path}: duplicate series {key}")
            seen.add(key)
            if kind == "histograms":
                for f in HIST_FIELDS:
                    v = e.get(f)
                    if not isinstance(v, (int, float)) or v < 0:
                        fail(f"{path}: histogram {name} has bad {f!r}: {v!r}")
                if e["count"] > 0:
                    if not (e["min"] <= e["p50"] <= e["p90"] <= e["p99"]
                            <= e["p999"] <= e["max"] * 1.0000001):
                        fail(f"{path}: histogram {name} percentiles are not "
                             f"monotone")
            else:
                v = e.get("value")
                if not isinstance(v, (int, float)):
                    fail(f"{path}: {kind[:-1]} {name} has bad value {v!r}")
                if kind == "counters" and v < 0:
                    fail(f"{path}: counter {name} is negative")
    print(f"{path}: OK (component {component}, {n['counters']} counters, "
          f"{n['gauges']} gauges, {n['histograms']} histograms)")


def fmt_labels(labels):
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def report(doc, path):
    print(f"{path}: component {doc.get('component', '?')}")
    gauges = doc.get("gauges", [])
    if gauges:
        print("\n  gauges")
        for e in gauges:
            print(f"    {e['name'] + fmt_labels(e['labels']):<48} "
                  f"{e['value']:g}")
    counters = [e for e in doc.get("counters", []) if e.get("value")]
    if counters:
        print("\n  counters (nonzero)")
        for e in counters:
            print(f"    {e['name'] + fmt_labels(e['labels']):<48} "
                  f"{e['value']:g}")
    hists = doc.get("histograms", [])
    if hists:
        print("\n  histograms")
        for e in hists:
            print(f"    {e['name'] + fmt_labels(e['labels'])}")
            print(f"      count {e['count']:g}  sum {e['sum']:g}  "
                  f"min {e['min']:g}  max {e['max']:g}")
            print(f"      p50 {e['p50']:g}  p90 {e['p90']:g}  "
                  f"p99 {e['p99']:g}  p999 {e['p999']:g}")


def require(doc, path, families):
    """Fails unless every named metric family appears in the document.

    Presence is the contract — a freshly started pool exports its restart
    and shed counters at zero, and a snapshot that silently dropped a
    family is exactly the regression this guards against.
    """
    present = set()
    for kind in ("counters", "gauges", "histograms"):
        for e in doc.get(kind, []):
            name = e.get("name")
            if isinstance(name, str):
                present.add(name)
    missing = sorted(f for f in families if f not in present)
    if missing:
        fail(f"{path}: required metric families missing: {', '.join(missing)}")
    print(f"{path}: all {len(families)} required families present")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="metrics JSON file")
    ap.add_argument("--check", action="store_true",
                    help="validate the schema instead of summarizing")
    ap.add_argument("--require", default=None, metavar="NAME,NAME,...",
                    help="fail unless every named metric family is present "
                         "(implies validation-style exit codes)")
    args = ap.parse_args()
    doc = load(args.file)
    if args.check:
        check(doc, args.file)
    if args.require:
        families = [f for f in args.require.split(",") if f]
        if not families:
            fail("--require needs at least one family name")
        require(doc, args.file, families)
    if not args.check and not args.require:
        report(doc, args.file)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)
