#!/usr/bin/env python3
"""Summarize (or validate) a cmarks collapsed-stack profile.

The input is the collapsed ("folded") stack format written by
`cmarks_repl --profile=FILE`, `(profiler-dump "FILE")`, or
`EnginePool::dumpProfile()`: one `frame;frame;...;leaf count` line per
distinct stack, directly consumable by flamegraph.pl and speedscope.

  profile_report.py FILE                 top stacks and leaf procedures
  profile_report.py --check FILE         validate the format; exit 0/1
  profile_report.py --check --min-named 0.9 FILE
                                         additionally require >= 90% of
                                         samples to attribute to a named
                                         frame (not "(anonymous)"/"?");
                                         the CI gate for mark-based
                                         attribution quality

A frame is "named" when it is neither "(anonymous)" nor "?". The
"toplevel" pseudo-frame (code run outside any defined procedure) counts
as named: it is an accurate attribution, not a failure to resolve one.
"""
import argparse
import sys
from collections import Counter

UNNAMED = {"(anonymous)", "?", ""}


def fail(msg):
    print(f"profile_report: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    """Returns a list of (frames, count) tuples."""
    stacks = []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                head, sep, count = line.rpartition(" ")
                if not sep or not count.isdigit():
                    fail(f"{path}:{lineno}: not 'frames count': {line!r}")
                if not head:
                    fail(f"{path}:{lineno}: empty stack")
                stacks.append((head.split(";"), int(count)))
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    return stacks


def check(stacks, path, min_named):
    total = sum(c for _, c in stacks)
    named = 0
    for frames, count in stacks:
        for f in frames:
            if " " in f:
                fail(f"{path}: frame {f!r} contains a space "
                     f"(breaks the collapsed format)")
        if frames[-1] not in UNNAMED:
            named += count
    if total == 0:
        # An empty profile is well-formed (sampler never fired); the
        # named-fraction gate cannot apply.
        if min_named > 0:
            fail(f"{path}: no samples, cannot check --min-named")
        print(f"{path}: OK (0 samples)")
        return
    frac = named / total
    print(f"{path}: OK ({total} samples, {len(stacks)} distinct stacks, "
          f"{100.0 * frac:.1f}% named leaf attribution)")
    if frac < min_named:
        fail(f"{path}: only {100.0 * frac:.1f}% of samples attribute to a "
             f"named procedure (need >= {100.0 * min_named:.0f}%)")


def report(stacks, path, top):
    total = sum(c for _, c in stacks)
    print(f"{path}: {total} samples, {len(stacks)} distinct stacks")
    if not total:
        return
    print(f"\n  top stacks")
    for frames, count in sorted(stacks, key=lambda s: -s[1])[:top]:
        print(f"    {count:>8}  {';'.join(frames)}")
    leaves = Counter()
    for frames, count in stacks:
        leaves[frames[-1]] += count
    print(f"\n  top leaf procedures")
    for name, count in leaves.most_common(top):
        print(f"    {count:>8}  {100.0 * count / total:5.1f}%  {name}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="collapsed-stack profile file")
    ap.add_argument("--check", action="store_true",
                    help="validate the format instead of summarizing")
    ap.add_argument("--min-named", type=float, default=0.0,
                    help="with --check: minimum fraction of samples that "
                         "must attribute to a named leaf (e.g. 0.9)")
    ap.add_argument("--top", type=int, default=15,
                    help="rows in the summary tables (default 15)")
    args = ap.parse_args()
    stacks = load(args.file)
    if args.check:
        check(stacks, args.file, args.min_named)
    else:
        report(stacks, args.file, args.top)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)
