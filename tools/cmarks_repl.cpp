//===- tools/cmarks_repl.cpp - Interactive driver --------------*- C++ -*-===//
///
/// \file
/// A command-line driver for the cmarks Scheme system:
///
///   cmarks_repl                      interactive REPL
///   cmarks_repl file.scm ...         run files
///   cmarks_repl -e '(+ 1 2)'         evaluate an expression
///   cmarks_repl --variant=no-opt     pick a system variant (see --help)
///   cmarks_repl --disasm -e '...'    show compiled bytecode instead
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"
#include "reader/reader.h"
#include "runtime/printer.h"
#include "support/pool.h"
#include "support/timing.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace cmk;

namespace {

struct CliOptions {
  EngineVariant Variant = EngineVariant::Builtin;
  bool Disasm = false;
  bool ShowHelp = false;
  bool ShowStats = false;
  bool FaultReport = false; ///< --fault-report: injector summary on exit.
  std::string TraceFile;    ///< --trace=FILE: record and dump on exit.
  std::string MetricsFile;  ///< --metrics=FILE: export on exit (.prom =>
                            ///< Prometheus text, else cmarks-metrics-v1 JSON).
  std::string ProfileFile;  ///< --profile=FILE: collapsed stacks on exit.
  uint32_t ProfileHz = 0;   ///< --profile-hz=N (0 = profiler default).
  EngineLimits Limits;      ///< --heap-limit / --stack-limit / --timeout.
  uint64_t DeadlineMs = 0;  ///< --deadline: whole-run wall-clock budget.
  std::vector<std::string> Files;
  std::vector<std::string> Exprs;
};

/// Exit codes: 0 success, 1 ordinary error, 2 usage, 3 resource-limit
/// trip, 130 interrupt (matching the shell convention for SIGINT).
/// The serving outcomes reuse the pool's table (jobOutcomeExitCode):
/// 5 = deadline expired before the work ran, 4 = shed by admission
/// control (pool-only; reserved here so the two tables stay aligned).
enum ExitCode {
  ExitOk = 0,
  ExitError = 1,
  ExitUsage = 2,
  ExitLimit = 3,
  ExitInterrupt = 130,
};

int exitCodeFor(const SchemeEngine &E) {
  switch (E.lastErrorKind()) {
  case ErrorKind::HeapLimit:
  case ErrorKind::StackLimit:
  case ErrorKind::Timeout:
    return ExitLimit;
  case ErrorKind::Interrupt:
    return ExitInterrupt;
  default:
    return ExitError;
  }
}

/// Parses "8M", "512k", "1G", "65536" into bytes; false on junk.
bool parseByteSize(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long long N = std::strtoull(S.c_str(), &End, 10);
  if (End == S.c_str())
    return false;
  uint64_t Mult = 1;
  if (*End == 'k' || *End == 'K')
    Mult = 1ull << 10;
  else if (*End == 'm' || *End == 'M')
    Mult = 1ull << 20;
  else if (*End == 'g' || *End == 'G')
    Mult = 1ull << 30;
  else if (*End != '\0')
    return false;
  if (Mult > 1)
    ++End;
  if (*End != '\0')
    return false;
  Out = static_cast<uint64_t>(N) * Mult;
  return true;
}

bool parseCount(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End != S.c_str() && *End == '\0';
}

/// The engine the SIGINT handler pokes; requestInterrupt is a single
/// atomic store, so it is safe from a signal context.
SchemeEngine *InterruptTarget = nullptr;

void onSigInt(int) {
  if (InterruptTarget)
    InterruptTarget->requestInterrupt();
}

bool parseVariant(const std::string &Name, EngineVariant &Out) {
  struct Entry {
    const char *Name;
    EngineVariant V;
  };
  const Entry Entries[] = {
      {"builtin", EngineVariant::Builtin},
      {"no-opt", EngineVariant::NoOpt},
      {"no-prim", EngineVariant::NoPrim},
      {"no-1cc", EngineVariant::No1cc},
      {"unmod", EngineVariant::Unmod},
      {"imitate", EngineVariant::Imitate},
      {"mark-stack", EngineVariant::MarkStack},
      {"heap-frames", EngineVariant::HeapFrames},
      {"copy-on-capture", EngineVariant::CopyOnCapture},
  };
  for (const Entry &E : Entries)
    if (Name == E.Name) {
      Out = E.V;
      return true;
    }
  return false;
}

void printHelp() {
  std::printf(
      "cmarks: compiler and runtime support for continuation marks\n"
      "usage: cmarks_repl [options] [file.scm ...]\n"
      "  -e EXPR            evaluate EXPR (may be repeated)\n"
      "  --variant=NAME     builtin | no-opt | no-prim | no-1cc | unmod |\n"
      "                     imitate | mark-stack | heap-frames |\n"
      "                     copy-on-capture\n"
      "  --disasm           print bytecode for -e expressions and exit\n"
      "  --stats            print runtime event counters to stderr on exit\n"
      "  --trace=FILE       record VM events; write Chrome trace-event\n"
      "                     JSON (load in ui.perfetto.dev) to FILE on exit\n"
      "  --metrics=FILE     write a metrics snapshot on exit: Prometheus\n"
      "                     text when FILE ends in .prom, else\n"
      "                     cmarks-metrics-v1 JSON\n"
      "  --profile=FILE     run the safe-point sampling profiler; write\n"
      "                     collapsed stacks (flamegraph.pl/speedscope)\n"
      "                     to FILE on exit\n"
      "  --profile-hz=N     sampling rate for --profile (default 97)\n"
      "  --heap-limit=N     heap budget in bytes (K/M/G suffixes ok);\n"
      "                     exceeding it raises a catchable exn:heap-limit?\n"
      "  --stack-limit=N    max live stack segments; deep recursion raises\n"
      "                     a catchable exn:stack-limit?\n"
      "  --timeout=MS       per-evaluation wall-clock budget; raises a\n"
      "                     catchable exn:timeout?\n"
      "  --deadline=MS      wall-clock deadline for the whole batch run;\n"
      "                     each file/-e gets at most the remaining time\n"
      "                     (folded into --timeout), and work not started\n"
      "                     by the deadline is shed with exit code 5\n"
      "  --fault-report     print fault-injection site summary on exit\n"
      "                     (sites armed via CMARKS_FAULT_SPEC; probes\n"
      "                     active in -DCMARKS_FAULTS=ON builds)\n"
      "  -h, --help         this message\n"
      "With no files or -e options, starts an interactive REPL.\n"
      "Ctrl-C interrupts the running evaluation (catchable as\n"
      "exn:interrupt?). Exit codes: 0 ok, 1 error, 2 usage, 3 resource\n"
      "limit, 4 shed (serving pool only), 5 deadline expired,\n"
      "130 interrupted.\n");
}

/// Counts unclosed parens/brackets outside strings and comments, so the
/// REPL knows when a form is complete.
int parenBalance(const std::string &S) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == ';') {
      while (I < S.size() && S[I] != '\n')
        ++I;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '(' || C == '[')
      ++Depth;
    else if (C == ')' || C == ']')
      --Depth;
  }
  return Depth;
}

int runRepl(SchemeEngine &Engine) {
  std::printf("cmarks repl; (exit) or Ctrl-D to quit\n");
  std::string Pending;
  std::string Line;
  for (;;) {
    std::printf("%s", Pending.empty() ? "> " : "  ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    Pending += Line + "\n";
    if (parenBalance(Pending) > 0)
      continue;
    std::string Form = Pending;
    Pending.clear();
    if (Form.find("(exit)") != std::string::npos)
      break;
    Value V = Engine.eval(Form);
    if (!Engine.ok()) {
      std::printf("error: %s\n", Engine.lastError().c_str());
      continue;
    }
    if (!V.isVoid())
      std::printf("%s\n", writeToString(V).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-h" || Arg == "--help") {
      Opts.ShowHelp = true;
    } else if (Arg == "-e" && I + 1 < Argc) {
      Opts.Exprs.push_back(Argv[++I]);
    } else if (Arg.rfind("--variant=", 0) == 0) {
      if (!parseVariant(Arg.substr(10), Opts.Variant)) {
        std::fprintf(stderr, "unknown variant: %s\n", Arg.c_str());
        return ExitUsage;
      }
    } else if (Arg == "--disasm") {
      Opts.Disasm = true;
    } else if (Arg == "--stats") {
      Opts.ShowStats = true;
    } else if (Arg == "--fault-report") {
      Opts.FaultReport = true;
    } else if (Arg.rfind("--heap-limit=", 0) == 0) {
      if (!parseByteSize(Arg.substr(13), Opts.Limits.HeapBytes)) {
        std::fprintf(stderr, "bad --heap-limit (want BYTES, K/M/G ok): %s\n",
                     Arg.c_str());
        return ExitUsage;
      }
    } else if (Arg.rfind("--stack-limit=", 0) == 0) {
      uint64_t N = 0;
      if (!parseCount(Arg.substr(14), N) || N == 0) {
        std::fprintf(stderr, "bad --stack-limit (want a positive count): %s\n",
                     Arg.c_str());
        return ExitUsage;
      }
      Opts.Limits.MaxLiveSegments = static_cast<uint32_t>(N);
    } else if (Arg.rfind("--timeout=", 0) == 0) {
      if (!parseCount(Arg.substr(10), Opts.Limits.TimeoutMs) ||
          Opts.Limits.TimeoutMs == 0) {
        std::fprintf(stderr, "bad --timeout (want milliseconds): %s\n",
                     Arg.c_str());
        return ExitUsage;
      }
    } else if (Arg.rfind("--deadline=", 0) == 0) {
      if (!parseCount(Arg.substr(11), Opts.DeadlineMs) ||
          Opts.DeadlineMs == 0) {
        std::fprintf(stderr, "bad --deadline (want milliseconds): %s\n",
                     Arg.c_str());
        return ExitUsage;
      }
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opts.TraceFile = Arg.substr(8);
      if (Opts.TraceFile.empty()) {
        std::fprintf(stderr, "--trace needs a file name (--trace=FILE)\n");
        return ExitUsage;
      }
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Opts.MetricsFile = Arg.substr(10);
      if (Opts.MetricsFile.empty()) {
        std::fprintf(stderr, "--metrics needs a file name (--metrics=FILE)\n");
        return ExitUsage;
      }
    } else if (Arg.rfind("--profile=", 0) == 0) {
      Opts.ProfileFile = Arg.substr(10);
      if (Opts.ProfileFile.empty()) {
        std::fprintf(stderr, "--profile needs a file name (--profile=FILE)\n");
        return ExitUsage;
      }
    } else if (Arg.rfind("--profile-hz=", 0) == 0) {
      uint64_t N = 0;
      if (!parseCount(Arg.substr(13), N) || N == 0 || N > 100000) {
        std::fprintf(stderr, "bad --profile-hz (want 1..100000): %s\n",
                     Arg.c_str());
        return ExitUsage;
      }
      Opts.ProfileHz = static_cast<uint32_t>(N);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", Arg.c_str());
      return ExitUsage;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  if (Opts.ShowHelp) {
    printHelp();
    return 0;
  }

  EngineOptions EngineOpts = EngineOptions::forVariant(Opts.Variant);
  EngineOpts.VmCfg.Limits = Opts.Limits;
  SchemeEngine Engine(EngineOpts);
  InterruptTarget = &Engine;
  std::signal(SIGINT, onSigInt);
  // Tracing starts after the prelude loads so the timeline shows the
  // user's program, not engine startup. Same for the sampling profiler.
  if (!Opts.TraceFile.empty())
    Engine.startTrace();
  if (!Opts.ProfileFile.empty())
    Engine.startProfiler(Opts.ProfileHz ? Opts.ProfileHz
                                        : SamplingProfiler::DefaultHz);
  // Dump even when a program fails: a trace of the run up to the error is
  // exactly what a profiling user wants to look at.
  auto DumpTrace = [&]() {
    if (Opts.TraceFile.empty())
      return;
    Engine.stopTrace();
    if (!Engine.dumpTrace(Opts.TraceFile))
      std::fprintf(stderr, "cannot write trace to %s\n",
                   Opts.TraceFile.c_str());
    else
      std::fprintf(stderr, "trace (%llu events) written to %s\n",
                   static_cast<unsigned long long>(Engine.trace().size()),
                   Opts.TraceFile.c_str());
  };

  if (Opts.Disasm) {
    for (const std::string &Expr : Opts.Exprs) {
      std::vector<Value> Forms = readAllFromString(Engine.heap(), Expr);
      for (Value Form : Forms) {
        std::string Err;
        Value Code = Engine.compiler().compileToplevel(Form, &Err);
        if (!Err.empty()) {
          std::fprintf(stderr, "compile error: %s\n", Err.c_str());
          return 1;
        }
        std::printf("%s", Compiler::disassemble(Code).c_str());
      }
    }
    return 0;
  }

  auto Epilogue = [&](int Ret) {
    DumpTrace();
    if (!Opts.ProfileFile.empty()) {
      Engine.stopProfiler();
      if (!Engine.dumpProfile(Opts.ProfileFile))
        std::fprintf(stderr, "cannot write profile to %s\n",
                     Opts.ProfileFile.c_str());
      else
        std::fprintf(stderr, "profile (%llu samples) written to %s\n",
                     static_cast<unsigned long long>(
                         Engine.profiler().sampleCount()),
                     Opts.ProfileFile.c_str());
    }
    if (!Opts.MetricsFile.empty()) {
      bool Prom = Opts.MetricsFile.size() >= 5 &&
                  Opts.MetricsFile.compare(Opts.MetricsFile.size() - 5, 5,
                                           ".prom") == 0;
      std::string Body = Prom ? Engine.metricsText() : Engine.metricsJson();
      std::FILE *F = std::fopen(Opts.MetricsFile.c_str(), "w");
      if (!F || std::fwrite(Body.data(), 1, Body.size(), F) != Body.size())
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     Opts.MetricsFile.c_str());
      if (F)
        std::fclose(F);
    }
    if (Opts.ShowStats) {
      printStatsTable(Engine.stats(), stderr);
      const HeapStats &HS = Engine.heap().stats();
      std::fprintf(stderr, "  %-26s %12llu\n", "gc-collections",
                   static_cast<unsigned long long>(HS.Collections));
      std::fprintf(stderr, "  %-26s %12llu\n", "gc-one-shot-promotions",
                   static_cast<unsigned long long>(HS.OneShotPromotions));
      std::fprintf(stderr, "  %-26s %12llu\n", "gc-bytes-allocated",
                   static_cast<unsigned long long>(HS.BytesAllocated));
    }
    if (Opts.FaultReport)
      std::fprintf(stderr, "%s", Engine.faults().report().c_str());
    return Ret;
  };

  // Whole-run deadline (--deadline): the same policy the serving pool
  // applies per job — work that has not started by the deadline is shed
  // (typed Expired, exit 5), and work that does start gets at most the
  // remaining time folded into its timeout, so an over-budget unit trips
  // exn:timeout? (exit 3) instead of overshooting the deadline.
  uint64_t DeadlineNs =
      Opts.DeadlineMs ? nowNanos() + Opts.DeadlineMs * 1000000ull : 0;
  auto DeadlineExpired = [&](const char *What) {
    if (!DeadlineNs || nowNanos() < DeadlineNs)
      return false;
    std::fprintf(stderr,
                 "deadline expired (%llu ms): %s shed without running\n",
                 static_cast<unsigned long long>(Opts.DeadlineMs), What);
    return true;
  };
  auto ApplyRemainingBudget = [&]() {
    if (!DeadlineNs)
      return;
    uint64_t Now = nowNanos();
    uint64_t RemainMs =
        Now < DeadlineNs ? (DeadlineNs - Now + 999999) / 1000000 : 1;
    Engine.limits().TimeoutMs =
        Opts.Limits.TimeoutMs
            ? std::min<uint64_t>(Opts.Limits.TimeoutMs, RemainMs)
            : RemainMs;
  };

  for (const std::string &File : Opts.Files) {
    if (DeadlineExpired(File.c_str()))
      return Epilogue(jobOutcomeExitCode(JobOutcome::Expired));
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", File.c_str());
      return Epilogue(ExitError);
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    ApplyRemainingBudget();
    Engine.eval(Buf.str());
    if (!Engine.ok()) {
      std::fprintf(stderr, "%s: %s\n", File.c_str(),
                   Engine.lastError().c_str());
      return Epilogue(exitCodeFor(Engine));
    }
  }

  for (const std::string &Expr : Opts.Exprs) {
    if (DeadlineExpired("expression"))
      return Epilogue(jobOutcomeExitCode(JobOutcome::Expired));
    ApplyRemainingBudget();
    Value V = Engine.eval(Expr);
    if (!Engine.ok()) {
      std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
      return Epilogue(exitCodeFor(Engine));
    }
    std::printf("%s\n", writeToString(V).c_str());
  }

  int Ret = ExitOk;
  if (Opts.Files.empty() && Opts.Exprs.empty())
    Ret = runRepl(Engine);

  return Epilogue(Ret);
}
