//===- tools/cmarks_repl.cpp - Interactive driver --------------*- C++ -*-===//
///
/// \file
/// A command-line driver for the cmarks Scheme system:
///
///   cmarks_repl                      interactive REPL
///   cmarks_repl file.scm ...         run files
///   cmarks_repl -e '(+ 1 2)'         evaluate an expression
///   cmarks_repl --variant=no-opt     pick a system variant (see --help)
///   cmarks_repl --disasm -e '...'    show compiled bytecode instead
///
//===----------------------------------------------------------------------===//

#include "api/scheme.h"
#include "reader/reader.h"
#include "runtime/printer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace cmk;

namespace {

struct CliOptions {
  EngineVariant Variant = EngineVariant::Builtin;
  bool Disasm = false;
  bool ShowHelp = false;
  bool ShowStats = false;
  std::string TraceFile; ///< --trace=FILE: record and dump on exit.
  std::vector<std::string> Files;
  std::vector<std::string> Exprs;
};

bool parseVariant(const std::string &Name, EngineVariant &Out) {
  struct Entry {
    const char *Name;
    EngineVariant V;
  };
  const Entry Entries[] = {
      {"builtin", EngineVariant::Builtin},
      {"no-opt", EngineVariant::NoOpt},
      {"no-prim", EngineVariant::NoPrim},
      {"no-1cc", EngineVariant::No1cc},
      {"unmod", EngineVariant::Unmod},
      {"imitate", EngineVariant::Imitate},
      {"mark-stack", EngineVariant::MarkStack},
      {"heap-frames", EngineVariant::HeapFrames},
      {"copy-on-capture", EngineVariant::CopyOnCapture},
  };
  for (const Entry &E : Entries)
    if (Name == E.Name) {
      Out = E.V;
      return true;
    }
  return false;
}

void printHelp() {
  std::printf(
      "cmarks: compiler and runtime support for continuation marks\n"
      "usage: cmarks_repl [options] [file.scm ...]\n"
      "  -e EXPR            evaluate EXPR (may be repeated)\n"
      "  --variant=NAME     builtin | no-opt | no-prim | no-1cc | unmod |\n"
      "                     imitate | mark-stack | heap-frames |\n"
      "                     copy-on-capture\n"
      "  --disasm           print bytecode for -e expressions and exit\n"
      "  --stats            print runtime event counters to stderr on exit\n"
      "  --trace=FILE       record VM events; write Chrome trace-event\n"
      "                     JSON (load in ui.perfetto.dev) to FILE on exit\n"
      "  -h, --help         this message\n"
      "With no files or -e options, starts an interactive REPL.\n");
}

/// Counts unclosed parens/brackets outside strings and comments, so the
/// REPL knows when a form is complete.
int parenBalance(const std::string &S) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == ';') {
      while (I < S.size() && S[I] != '\n')
        ++I;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '(' || C == '[')
      ++Depth;
    else if (C == ')' || C == ']')
      --Depth;
  }
  return Depth;
}

int runRepl(SchemeEngine &Engine) {
  std::printf("cmarks repl; (exit) or Ctrl-D to quit\n");
  std::string Pending;
  std::string Line;
  for (;;) {
    std::printf("%s", Pending.empty() ? "> " : "  ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    Pending += Line + "\n";
    if (parenBalance(Pending) > 0)
      continue;
    std::string Form = Pending;
    Pending.clear();
    if (Form.find("(exit)") != std::string::npos)
      break;
    Value V = Engine.eval(Form);
    if (!Engine.ok()) {
      std::printf("error: %s\n", Engine.lastError().c_str());
      continue;
    }
    if (!V.isVoid())
      std::printf("%s\n", writeToString(V).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-h" || Arg == "--help") {
      Opts.ShowHelp = true;
    } else if (Arg == "-e" && I + 1 < Argc) {
      Opts.Exprs.push_back(Argv[++I]);
    } else if (Arg.rfind("--variant=", 0) == 0) {
      if (!parseVariant(Arg.substr(10), Opts.Variant)) {
        std::fprintf(stderr, "unknown variant: %s\n", Arg.c_str());
        return 2;
      }
    } else if (Arg == "--disasm") {
      Opts.Disasm = true;
    } else if (Arg == "--stats") {
      Opts.ShowStats = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opts.TraceFile = Arg.substr(8);
      if (Opts.TraceFile.empty()) {
        std::fprintf(stderr, "--trace needs a file name (--trace=FILE)\n");
        return 2;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", Arg.c_str());
      return 2;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  if (Opts.ShowHelp) {
    printHelp();
    return 0;
  }

  SchemeEngine Engine(Opts.Variant);
  // Tracing starts after the prelude loads so the timeline shows the
  // user's program, not engine startup.
  if (!Opts.TraceFile.empty())
    Engine.startTrace();
  // Dump even when a program fails: a trace of the run up to the error is
  // exactly what a profiling user wants to look at.
  auto DumpTrace = [&]() {
    if (Opts.TraceFile.empty())
      return;
    Engine.stopTrace();
    if (!Engine.dumpTrace(Opts.TraceFile))
      std::fprintf(stderr, "cannot write trace to %s\n",
                   Opts.TraceFile.c_str());
    else
      std::fprintf(stderr, "trace (%llu events) written to %s\n",
                   static_cast<unsigned long long>(Engine.trace().size()),
                   Opts.TraceFile.c_str());
  };

  if (Opts.Disasm) {
    for (const std::string &Expr : Opts.Exprs) {
      std::vector<Value> Forms = readAllFromString(Engine.heap(), Expr);
      for (Value Form : Forms) {
        std::string Err;
        Value Code = Engine.compiler().compileToplevel(Form, &Err);
        if (!Err.empty()) {
          std::fprintf(stderr, "compile error: %s\n", Err.c_str());
          return 1;
        }
        std::printf("%s", Compiler::disassemble(Code).c_str());
      }
    }
    return 0;
  }

  for (const std::string &File : Opts.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", File.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Engine.eval(Buf.str());
    if (!Engine.ok()) {
      std::fprintf(stderr, "%s: %s\n", File.c_str(),
                   Engine.lastError().c_str());
      DumpTrace();
      return 1;
    }
  }

  for (const std::string &Expr : Opts.Exprs) {
    Value V = Engine.eval(Expr);
    if (!Engine.ok()) {
      std::fprintf(stderr, "error: %s\n", Engine.lastError().c_str());
      DumpTrace();
      return 1;
    }
    std::printf("%s\n", writeToString(V).c_str());
  }

  int Ret = 0;
  if (Opts.Files.empty() && Opts.Exprs.empty())
    Ret = runRepl(Engine);

  DumpTrace();
  if (Opts.ShowStats) {
    printStatsTable(Engine.stats(), stderr);
    const HeapStats &HS = Engine.heap().stats();
    std::fprintf(stderr, "  %-26s %12llu\n", "gc-collections",
                 static_cast<unsigned long long>(HS.Collections));
    std::fprintf(stderr, "  %-26s %12llu\n", "gc-one-shot-promotions",
                 static_cast<unsigned long long>(HS.OneShotPromotions));
    std::fprintf(stderr, "  %-26s %12llu\n", "gc-bytes-allocated",
                 static_cast<unsigned long long>(HS.BytesAllocated));
  }
  return Ret;
}
