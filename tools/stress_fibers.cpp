//===- tools/stress_fibers.cpp - Fiber scheduler stress harness -*- C++ -*-===//
///
/// \file
/// Floods a fiber-mode EnginePool (PoolOptions::EnableFibers) with a
/// seeded mix of many more jobs than workers — compute thunks, short
/// sleepers, channel ping-pongs, sub-fiber fan-outs, and yield loops —
/// and asserts the cooperative-scheduling invariants:
///
///   - no hangs: a watchdog thread turns a stuck run into diagnostics
///     plus exit 2 instead of a wedged CI job,
///   - every job resolves Ok with exactly the deterministic value its
///     archetype computes (a lost unpark or a cross-fiber state leak
///     shows up as a wrong answer, not just a slowdown),
///   - the pool's aggregated engine counters account for the work: at
///     least one fiber spawn per job and at least one park per sleeper/
///     channel/fan-out job.
///
/// The default shape is the issue's stress target — 10000 jobs over 4
/// workers — and doubles as the ctest smoke (`stress_fibers --smoke`).
///
/// Exit codes: 0 all invariants held, 1 an invariant failed, 2 usage or
/// watchdog timeout.
///
//===----------------------------------------------------------------------===//

#include "support/pool.h"
#include "support/rng.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cmk;

namespace {

struct StressOptions {
  uint64_t Jobs = 10000;
  unsigned Workers = 4;
  uint32_t MaxFibersPerWorker = 512;
  uint64_t Seed = 1;
  uint64_t WatchdogSec = 180;
};

/// Job archetypes. Every archetype's result is a pure function of the
/// job id, so the checker recomputes it without coordination.
enum Kind : int { Compute = 0, Sleeper, Channel, FanOut, Yielder, NumKinds };

std::string sourceFor(int K, uint64_t Id) {
  std::string I = std::to_string(Id % 1000);
  switch (K) {
  case Compute:
    return "(fiber-join (spawn (lambda () (+ " + I + " 1))))";
  case Sleeper:
    return "(begin (sleep-ms " + std::to_string(1 + Id % 3) + ") 'slept)";
  case Channel:
    return "(let ((ch (make-channel " + std::to_string(Id % 2) + ")))"
           "  (spawn (lambda () (channel-put ch " + I + ")))"
           "  (channel-get ch))";
  case FanOut:
    return "(let ((a (spawn (lambda () (yield) " + I + ")))"
           "      (b (spawn (lambda () " + I + "))))"
           "  (+ (fiber-join a) (fiber-join b)))";
  default:
    return "(let loop ((n 5) (acc " + I + "))"
           "  (if (zero? n) acc (begin (yield) (loop (- n 1) acc))))";
  }
}

std::string expectFor(int K, uint64_t Id) {
  uint64_t I = Id % 1000;
  switch (K) {
  case Compute:
    return std::to_string(I + 1);
  case Sleeper:
    return "slept";
  case Channel:
    return std::to_string(I);
  case FanOut:
    return std::to_string(2 * I);
  default:
    return std::to_string(I);
  }
}

int usage(const char *Msg) {
  std::fprintf(stderr, "stress_fibers: %s (see tools/stress_fibers.cpp)\n",
               Msg);
  return 2;
}

bool argValue(const char *Arg, const char *Name, std::string &Out) {
  size_t N = std::strlen(Name);
  if (std::strncmp(Arg, Name, N) != 0 || Arg[N] != '=')
    return false;
  Out = Arg + N + 1;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  StressOptions O;
  for (int I = 1; I < argc; ++I) {
    std::string V;
    if (argValue(argv[I], "--jobs", V))
      O.Jobs = std::strtoull(V.c_str(), nullptr, 10);
    else if (argValue(argv[I], "--workers", V))
      O.Workers = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (argValue(argv[I], "--max-fibers", V))
      O.MaxFibersPerWorker = static_cast<uint32_t>(std::atoi(V.c_str()));
    else if (argValue(argv[I], "--seed", V))
      O.Seed = std::strtoull(V.c_str(), nullptr, 10);
    else if (argValue(argv[I], "--watchdog-sec", V))
      O.WatchdogSec = std::strtoull(V.c_str(), nullptr, 10);
    else if (std::strcmp(argv[I], "--smoke") == 0)
      ; // The defaults ARE the smoke: 10k jobs over 4 workers.
    else
      return usage((std::string("unknown option ") + argv[I]).c_str());
  }

  PoolOptions PO;
  PO.Workers = O.Workers;
  PO.EnableFibers = true;
  PO.MaxFibersPerWorker = O.MaxFibersPerWorker;
  PO.QueueCapacity = 1024;
  PO.DefaultJobLimits.TimeoutMs = 10000; // On-CPU budget; parks excluded.

  std::atomic<bool> Done{false};
  std::thread Watchdog([&] {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(O.WatchdogSec);
    while (!Done.load()) {
      if (std::chrono::steady_clock::now() >= Deadline) {
        std::fprintf(stderr,
                     "stress_fibers: WATCHDOG: no completion after %llu s\n",
                     static_cast<unsigned long long>(O.WatchdogSec));
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  uint64_t Mismatches = 0, NotOk = 0, ParkKinds = 0;
  {
    EnginePool Pool(PO);
    Rng R(O.Seed);
    std::vector<std::pair<int, std::future<JobResult>>> Futures;
    Futures.reserve(O.Jobs);
    for (uint64_t J = 0; J < O.Jobs; ++J) {
      int K = static_cast<int>(R.nextBelow(NumKinds));
      if (K != Compute)
        ++ParkKinds;
      Futures.emplace_back(K, Pool.submit(sourceFor(K, J)));
    }
    for (uint64_t J = 0; J < O.Jobs; ++J) {
      JobResult Res = Futures[J].second.get();
      if (Res.Outcome != JobOutcome::Ok) {
        if (++NotOk <= 5)
          std::fprintf(stderr, "stress_fibers: job %llu (%s): %s: %s\n",
                       static_cast<unsigned long long>(J),
                       sourceFor(Futures[J].first, J).c_str(),
                       jobOutcomeName(Res.Outcome), Res.Error.c_str());
        continue;
      }
      std::string Want = expectFor(Futures[J].first, J);
      if (Res.Output != Want) {
        if (++Mismatches <= 5)
          std::fprintf(stderr,
                       "stress_fibers: job %llu: got %s, want %s\n",
                       static_cast<unsigned long long>(J), Res.Output.c_str(),
                       Want.c_str());
      }
    }

    PoolStats S = Pool.stats();
    std::printf("stress_fibers: %llu jobs over %u workers: %llu ok, "
                "%llu failed, %llu wrong; %llu fiber spawns, %llu parks\n",
                static_cast<unsigned long long>(O.Jobs), O.Workers,
                static_cast<unsigned long long>(S.JobsCompleted),
                static_cast<unsigned long long>(NotOk),
                static_cast<unsigned long long>(Mismatches),
                static_cast<unsigned long long>(S.Engines.FiberSpawns),
                static_cast<unsigned long long>(S.Engines.FiberParks));
    if (S.Engines.FiberSpawns < O.Jobs) {
      std::fprintf(stderr, "stress_fibers: FAIL: fewer fiber spawns (%llu) "
                           "than jobs (%llu)\n",
                   static_cast<unsigned long long>(S.Engines.FiberSpawns),
                   static_cast<unsigned long long>(O.Jobs));
      ++Mismatches;
    }
    if (ParkKinds > 0 && S.Engines.FiberParks == 0) {
      std::fprintf(stderr,
                   "stress_fibers: FAIL: parking archetypes ran but the "
                   "pool recorded zero fiber parks\n");
      ++Mismatches;
    }
  }

  Done.store(true);
  Watchdog.join();
  return (Mismatches == 0 && NotOk == 0) ? 0 : 1;
}
