#!/usr/bin/env python3
"""Sweep the test suite across deterministic fault-injection schedules.

Runs the repository's ctest suite repeatedly, each time with a different
CMARKS_FAULT_SPEC (see src/support/faults.h), so the semantics-preserving
fault sites — forced collections, forced segment overflows, disabled
underflow fusion — are exercised at many reproducible points. A build
configured with -DCMARKS_FAULTS=ON is required; the sweep refuses to run
against a build whose probes are compiled out, since every spec would
vacuously pass.

Tests whose names match the exclusion regex are skipped: those suites
assert performance-path behavior (event counters, trace contents, the
governance layer itself) that injection legitimately perturbs. Everything
else must pass at every scheduled site and seed.

Output: a human-readable summary plus a JSON report (schema
cmarks-fault-sweep-v1) suitable for CI artifacts. Exit status is 0 only
if every scheduled run passed.

With --pool the sweep drives tools/chaos_pool instead of ctest: each
scheduled spec is injected into every worker engine of a serving pool
while the chaos harness asserts its resilience invariants (full outcome
accounting, goodput, supervised restarts). This is the "faults under
concurrency" leg — the ctest sweep checks single-engine semantics, the
pool sweep checks that injection plus supervision never wedges or
miscounts a fleet.

Usage:
  tools/fault_sweep.py --build-dir build-faults
  tools/fault_sweep.py --build-dir build-faults --smoke   # CI-sized
  tools/fault_sweep.py --build-dir build-faults --smoke --pool
"""

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path

SCHEMA = "cmarks-fault-sweep-v1"

# Suites that assert counter values, trace contents, or limit behavior
# that fault injection legitimately changes. "Fusion" is excluded for
# every site: forced collections promote opportunistic one-shots and
# forced overflows split segments, so fusion-count assertions cannot
# hold (correctness of the same programs is still checked elsewhere).
BASE_EXCLUDE = (r"Stats|Trace|Fault|Limit|Timeout|Interrupt|Governance"
                r"|ErrorContext|Fusion")

# Disabling underflow fusion additionally breaks suites that assert the
# fusion fast path is *taken* (it still must compute correct answers,
# which the remaining suites check).
NOFUSE_EXCLUDE = BASE_EXCLUDE + r"|Continuations\.|OneShot"


def schedule(smoke, seeds):
    """Yields (spec, exclude_regex) pairs for the sweep.

    Intervals are tuned so a run costs low single-digit multiples of the
    clean suite: a forced collection is O(heap) and a forced overflow
    walks the whole segment-switch path, so firing either every few dozen
    events makes the sweep quadratic. The gc site only gets interval
    triggers — p=1 is the finest probabilistic grain (integer percent)
    and fires a full collection every ~100 allocations, which is far too
    hot; seeded probabilistic coverage rides on the cheaper sites.
    """
    runs = []
    if smoke:
        runs.append(("gc:every=997", BASE_EXCLUDE))
        runs.append(("overflow:every=127", BASE_EXCLUDE))
        runs.append(("nofuse:every=1", NOFUSE_EXCLUDE))
        runs.append(("overflow:p=1,seed=1;nofuse:p=50,seed=1", NOFUSE_EXCLUDE))
        return runs
    for every in (499, 997, 2003):
        runs.append((f"gc:every={every}", BASE_EXCLUDE))
    for every in (127, 251, 509):
        runs.append((f"overflow:every={every}", BASE_EXCLUDE))
    runs.append(("nofuse:every=1", NOFUSE_EXCLUDE))
    runs.append(("nofuse:every=2", NOFUSE_EXCLUDE))
    for seed in seeds:
        runs.append((f"overflow:p=1,seed={seed}", BASE_EXCLUDE))
        runs.append(
            (f"overflow:p=1,seed={seed};nofuse:p=50,seed={seed}",
             NOFUSE_EXCLUDE))
    return runs


def pool_schedule(smoke, seeds):
    """Specs for the --pool sweep (no exclusion regexes: chaos_pool owns
    its assertions).

    The oom site appears here even though the ctest sweep excludes
    limit-sensitive suites: an injected allocation failure surfaces as a
    catchable heap trip, which is exactly the transient the pool's retry
    policy exists for. Intervals are coarser than the ctest sweep's
    because every worker engine runs the spec simultaneously.
    """
    runs = [("gc:every=997", ""), ("overflow:every=127", ""),
            ("oom:every=5003", ""), ("nofuse:every=1", "")]
    if smoke:
        return runs
    for every in (499, 2003):
        runs.append((f"gc:every={every}", ""))
    for every in (251, 509):
        runs.append((f"overflow:every={every}", ""))
    for seed in seeds:
        runs.append((f"overflow:p=1,seed={seed};nofuse:p=50,seed={seed}", ""))
    return runs


def run_chaos_pool(build_dir, spec, jobs_unused, env_base):
    binary = Path(build_dir) / "tools" / "chaos_pool"
    if not binary.is_file():
        return {"spec": spec, "mode": "pool", "returncode": 127,
                "duration_s": 0.0}, f"{binary} not built"
    report = Path(build_dir) / "chaos-sweep-report.json"
    cmd = [str(binary), "--smoke", f"--fault-spec={spec}",
           f"--report={report}"]
    start = time.monotonic()
    proc = subprocess.run(cmd, env=dict(env_base), capture_output=True,
                          text=True)
    duration = time.monotonic() - start
    out = proc.stdout + proc.stderr
    result = {
        "spec": spec,
        "mode": "pool",
        "returncode": proc.returncode,
        "duration_s": round(duration, 2),
    }
    try:
        chaos = json.loads(report.read_text())
        result["goodput_pct"] = chaos.get("goodput_pct")
        result["worker_restarts"] = chaos.get("worker_restarts")
        result["faults_injected"] = chaos.get("faults_injected")
    except (OSError, json.JSONDecodeError):
        pass
    return result, out


def faults_enabled(build_dir):
    cache = Path(build_dir) / "CMakeCache.txt"
    if not cache.is_file():
        return False
    for line in cache.read_text().splitlines():
        if line.startswith("CMARKS_FAULTS:") and line.rstrip().endswith("=ON"):
            return True
    return False


def run_ctest(build_dir, spec, exclude, jobs, env_base):
    env = dict(env_base)
    env["CMARKS_FAULT_SPEC"] = spec
    cmd = [
        "ctest", "--test-dir", str(build_dir), "-E", exclude,
        "-j", str(jobs), "--output-on-failure",
    ]
    start = time.monotonic()
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    duration = time.monotonic() - start
    out = proc.stdout + proc.stderr

    passed = failed = 0
    m = re.search(r"(\d+) tests passed.*out of (\d+)", out)
    if m:
        passed = int(m.group(1))
        failed = int(m.group(2)) - passed
    else:
        m = re.search(r"tests passed, (\d+) tests failed out of (\d+)", out)
        if m:
            failed = int(m.group(1))
            passed = int(m.group(2)) - failed
    failed_tests = re.findall(r"^\s*\d+ - (\S+) \(", out, re.MULTILINE)
    return {
        "spec": spec,
        "exclude": exclude,
        "returncode": proc.returncode,
        "passed": passed,
        "failed": failed,
        "failed_tests": sorted(set(failed_tests)) if proc.returncode else [],
        "duration_s": round(duration, 2),
    }, out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-faults",
                    help="CMake build tree configured with -DCMARKS_FAULTS=ON")
    ap.add_argument("--smoke", action="store_true",
                    help="small CI-sized schedule (4 runs)")
    ap.add_argument("--seeds", default="1,2",
                    help="comma-separated seeds for probabilistic specs")
    ap.add_argument("--jobs", "-j", type=int, default=2)
    ap.add_argument("--report", default=None,
                    help="JSON report path (default: <build-dir>/fault-sweep.json)")
    ap.add_argument("--verbose", action="store_true",
                    help="print ctest output for failing runs")
    ap.add_argument("--pool", action="store_true",
                    help="sweep tools/chaos_pool (serving-pool resilience "
                         "under injection) instead of the ctest suite")
    args = ap.parse_args()

    build_dir = Path(args.build_dir)
    if not faults_enabled(build_dir):
        print(f"error: {build_dir} is not configured with -DCMARKS_FAULTS=ON;"
              " the sweep would vacuously pass", file=sys.stderr)
        return 2

    seeds = [int(s) for s in args.seeds.split(",") if s]
    runs = (pool_schedule if args.pool else schedule)(args.smoke, seeds)
    default_name = "fault-sweep-pool.json" if args.pool else "fault-sweep.json"
    report_path = Path(args.report) if args.report else build_dir / default_name

    import os
    env_base = dict(os.environ)
    results = []
    ok = True
    for i, (spec, exclude) in enumerate(runs, 1):
        what = "chaos_pool" if args.pool else "ctest"
        print(f"[{i}/{len(runs)}] {what} CMARKS_FAULT_SPEC={spec!r} ... ",
              end="", flush=True)
        if args.pool:
            result, out = run_chaos_pool(build_dir, spec, args.jobs, env_base)
        else:
            result, out = run_ctest(build_dir, spec, exclude, args.jobs,
                                    env_base)
        results.append(result)
        if result["returncode"] == 0:
            if args.pool:
                print(f"ok (goodput {result.get('goodput_pct')}%, "
                      f"{result.get('worker_restarts')} restarts, "
                      f"{result['duration_s']}s)", flush=True)
            else:
                print(f"ok ({result['passed']} tests, "
                      f"{result['duration_s']}s)", flush=True)
        else:
            ok = False
            if args.pool:
                print(f"FAILED (exit {result['returncode']})")
            else:
                print(f"FAILED ({result['failed']} of "
                      f"{result['passed'] + result['failed']} tests)")
                for name in result["failed_tests"]:
                    print(f"    failed: {name}")
            if args.verbose:
                print(out)
            sys.stdout.flush()

    report = {
        "schema": SCHEMA,
        "build_dir": str(build_dir),
        "smoke": args.smoke,
        "mode": "pool" if args.pool else "ctest",
        "ok": ok,
        "runs": results,
    }
    report_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'PASS' if ok else 'FAIL'}: {len(runs)} scheduled specs;"
          f" report written to {report_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
