#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Usage:
    check_bench.py BASELINE.json FRESH.json [--threshold 0.25]
                   [--variant builtin] [--counters]

Fails (exit 1) when any benchmark's tracked-variant average time regresses
by more than --threshold (default 25%) relative to the baseline. Benchmarks
present in only one file are reported but do not fail the check. When the
two files were produced at different CMARKS_BENCH_SCALE settings, timings
are not comparable and the check exits 0 with a warning -- unless
--strict-scale is given, in which case the mismatch itself is a failure
(use this in CI, where the scale is pinned and a mismatch means the
baseline was recorded wrong).

With --counters, deterministic event counters (reifications, fusions,
copies) are also compared; counter drift beyond the threshold is reported
as a warning only, since counters legitimately change when the runtime is
intentionally modified -- the committed baseline should be refreshed in
the same PR.

With --gate-counters[=LIST], the wall-clock-insensitive counters (by
default segment-allocs, segment-slots-allocated, safe-point-polls --
all site-driven, so they are exactly reproducible run-over-run at a
pinned scale) are GATED: drift beyond --counter-threshold (default:
--threshold) is a failure, not a warning. PR CI uses this to catch
silent allocation or safe-point regressions that a 25% wall-clock gate
would let slide; an intentional change refreshes the committed baseline
in the same PR.

The JSON schema is `cmarks-bench-v1`, documented in DESIGN.md and emitted
by bench/bench_harness.h's JsonReport.
"""

import argparse
import json
import sys

TRACKED_COUNTERS = ("reifications", "underflow-fusions", "underflow-copies",
                    "segment-overflows")

# Counters that are a pure function of the executed instruction stream at
# a pinned scale (allocation sites and poll sites, never timers), so they
# can be gated hard rather than warned about.
GATEABLE_COUNTERS = ("segment-allocs", "segment-slots-allocated",
                     "segment-recycles", "safe-point-polls",
                     "fiber-spawns", "fiber-parks")


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"check_bench: cannot read {path}: {e.strerror}\n"
                 f"  (missing baseline? generate one with e.g.\n"
                 f"   CMARKS_BENCH_RUNS=3 CMARKS_BENCH_SCALE=0.05 "
                 f"CMARKS_BENCH_JSON_DIR=bench/baselines ./bench_NAME\n"
                 f"   and commit the BENCH_NAME.json it writes)")
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: {path} is not valid JSON: {e}")
    if data.get("schema") != "cmarks-bench-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def variants_by_name(result):
    return {v["variant"]: v for v in result.get("variants", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    ap.add_argument("--variant", default="builtin",
                    help="variant whose timing is gated (default builtin)")
    ap.add_argument("--counters", action="store_true",
                    help="also report event-counter drift (warnings only)")
    ap.add_argument("--gate-counters", nargs="?", const=",".join(
                        GATEABLE_COUNTERS), default=None, metavar="LIST",
                    help="comma list of counters whose drift beyond "
                         "--counter-threshold fails the check (default "
                         "list: %s)" % ", ".join(GATEABLE_COUNTERS))
    ap.add_argument("--counter-threshold", type=float, default=None,
                    help="allowed relative drift for gated counters "
                         "(default: --threshold)")
    ap.add_argument("--strict-scale", action="store_true",
                    help="fail (exit 1) on a scale mismatch instead of "
                         "skipping the check")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    if base.get("bench") != fresh.get("bench"):
        print(f"warning: comparing different benches "
              f"({base.get('bench')} vs {fresh.get('bench')})")

    if base.get("scale") != fresh.get("scale"):
        if args.strict_scale:
            print(f"error: scale mismatch (baseline {base.get('scale')}, "
                  f"fresh {fresh.get('scale')}); timings not comparable "
                  f"and --strict-scale is set")
            return 1
        print(f"warning: scale mismatch (baseline {base.get('scale')}, "
              f"fresh {fresh.get('scale')}); timings not comparable, "
              f"skipping check")
        return 0

    base_results = {r["name"]: r for r in base.get("results", [])}
    fresh_results = {r["name"]: r for r in fresh.get("results", [])}

    gated = []
    if args.gate_counters:
        gated = [c.strip() for c in args.gate_counters.split(",") if c.strip()]
    counter_threshold = (args.counter_threshold
                         if args.counter_threshold is not None
                         else args.threshold)

    failures = []
    counter_failures = []
    for name in base_results:
        if name not in fresh_results:
            print(f"note: benchmark {name!r} missing from fresh run")
            continue
        bvars = variants_by_name(base_results[name])
        fvars = variants_by_name(fresh_results[name])
        if args.variant not in bvars or args.variant not in fvars:
            continue
        b, f = bvars[args.variant], fvars[args.variant]

        b_ms, f_ms = b["avg_ms"], f["avg_ms"]
        if b_ms > 0:
            rel = (f_ms - b_ms) / b_ms
            status = "ok"
            if rel > args.threshold:
                status = "REGRESSION"
                failures.append((name, b_ms, f_ms, rel))
            print(f"{name:28s} {args.variant}: {b_ms:9.3f} ms -> "
                  f"{f_ms:9.3f} ms  ({rel:+.1%})  {status}")

        if args.counters:
            for key in TRACKED_COUNTERS:
                bc = b.get("counters", {}).get(key)
                fc = f.get("counters", {}).get(key)
                if bc is None or fc is None or bc == fc:
                    continue
                drift = (fc - bc) / bc if bc else float("inf")
                if abs(drift) > args.threshold:
                    print(f"  warning: {name} counter {key} drifted "
                          f"{bc} -> {fc} ({drift:+.1%})")

        for key in gated:
            bc = b.get("counters", {}).get(key)
            fc = f.get("counters", {}).get(key)
            if bc is None or fc is None or bc == fc:
                continue
            drift = (fc - bc) / bc if bc else float("inf")
            status = "ok"
            if abs(drift) > counter_threshold:
                status = "COUNTER REGRESSION"
                counter_failures.append((name, key, bc, fc, drift))
            print(f"  {name} counter {key}: {bc} -> {fc} "
                  f"({drift:+.1%})  {status}")

    for name in fresh_results:
        if name not in base_results:
            print(f"note: benchmark {name!r} not in baseline "
                  f"(new benchmark? refresh the baseline)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} in the {args.variant!r} variant:")
        for name, b_ms, f_ms, rel in failures:
            print(f"  {name}: {b_ms:.3f} ms -> {f_ms:.3f} ms ({rel:+.1%})")
    if counter_failures:
        print(f"\n{len(counter_failures)} gated counter(s) drifted more "
              f"than {counter_threshold:.0%} in the {args.variant!r} "
              f"variant (refresh bench/baselines/ if intentional):")
        for name, key, bc, fc, drift in counter_failures:
            print(f"  {name} {key}: {bc} -> {fc} ({drift:+.1%})")
    if failures or counter_failures:
        return 1
    print("\nbench check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
