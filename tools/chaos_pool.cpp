//===- tools/chaos_pool.cpp - Pool chaos/resilience harness ----*- C++ -*-===//
///
/// \file
/// Drives an EnginePool through a seeded hostile traffic mix — healthy
/// marks-heavy jobs (with retries armed), spinner hogs, catchable heap
/// eaters, and reserve escalators that poison their worker engine — and
/// asserts the resilience invariants the serving layer promises:
///
///   - zero hung submitters or workers (a watchdog turns a hang into a
///     loud exit instead of a stuck CI job),
///   - every submitted job resolves with exactly one typed outcome, and
///     the client-observed outcome counts match the pool's telemetry
///     exactly (full accounting),
///   - goodput: >= 90% (configurable) of the *healthy* jobs succeed even
///     while the hostile mix trips limits and forces engine rebuilds,
///   - when escalators are in the mix, at least one supervised worker
///     restart is observable in telemetry AND in the merged trace.
///
/// Built with -DCMARKS_FAULTS=ON the same binary doubles as the chaos
/// leg of the fault campaign: --fault-spec=SPEC (or CMARKS_FAULT_SPEC)
/// arms deterministic fault schedules inside every worker engine, and
/// the per-worker salt (FaultInjector::reseed) keeps the fleet from
/// injecting in lockstep. tools/fault_sweep.py --pool sweeps this
/// binary across the standard schedules; .github/workflows/ci.yml runs
/// `chaos_pool --smoke` under ASan, and soak.yml runs a nightly
/// fresh-seed campaign.
///
/// Exit codes: 0 all invariants held, 1 an invariant failed, 2 usage or
/// watchdog timeout.
///
//===----------------------------------------------------------------------===//

#include "support/pool.h"
#include "support/rng.h"
#include "support/timing.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cmk;

namespace {

struct ChaosOptions {
  uint64_t Jobs = 600;
  unsigned Workers = 4;
  unsigned Submitters = 3;
  uint64_t Seed = 1;
  uint64_t DeadlineMs = 0;      ///< 0 = no per-job deadline.
  uint64_t QueueWaitBudgetMs = 0; ///< 0 = admission control off.
  uint32_t Breaker = 6;         ///< Consecutive-fatal circuit breaker.
  uint64_t GoodputPct = 90;     ///< Minimum healthy-job success rate.
  uint64_t WatchdogSec = 300;   ///< Hang -> diagnostics + exit 2.
  unsigned HostilePermille[3] = {60, 50, 30}; ///< spinner/eater/escalator.
  std::string FaultSpec;        ///< --fault-spec: exported to the env.
  std::string ReportFile;       ///< cmarks-chaos-v1 JSON.
  std::string TraceFile;        ///< Merged Perfetto timeline.
  std::string MetricsFile;      ///< Pool cmarks-metrics-v1 JSON.
};

/// Job archetypes in the mix. Healthy jobs count toward goodput; the
/// hostile kinds are *supposed* to fail in their specific way.
enum JobKind : int { Healthy = 0, Spinner, HeapEater, Escalator, NumKinds };

const char *kindName(int K) {
  switch (K) {
  case Healthy:
    return "healthy";
  case Spinner:
    return "spinner";
  case HeapEater:
    return "heap-eater";
  case Escalator:
    return "escalator";
  }
  return "?";
}

/// Healthy: a marks-heavy workload (wcm + first-mark lookups + a capture)
/// sized to run in roughly a millisecond.
std::string healthySource(uint64_t N) {
  return "(let loop ((i 120) (acc " + std::to_string(N % 97) + "))"
         "  (if (= i 0)"
         "      (call/cc (lambda (k) (k acc)))"
         "      (loop (- i 1)"
         "            (+ acc (with-continuation-mark 'chaos i"
         "                     (continuation-mark-set-first #f 'chaos))))))";
}

/// Spinner: infinite loop; its tight per-job timeout evicts it.
const char *spinnerSource() { return "(let loop () (loop))"; }

/// Heap eater: allocates until the (catchable) budget trip ends the run;
/// the engine recovers and keeps serving.
const char *heapEaterSource() {
  return "(let loop ((a '())) (loop (cons (make-vector 1024 0) a)))";
}

/// Reserve escalator: allocates *live* data through the trip handler, so
/// the run burns past the headroom slab into the fatal ResourceExhausted
/// — the engine-poisoning failure worker supervision exists for.
const char *escalatorSource() {
  return "(define chaos-sink '())"
         "(with-handlers ([exn:heap-limit? (lambda (e)"
         "                   (let loop ()"
         "                     (set! chaos-sink"
         "                           (cons (make-vector 4096 0) chaos-sink))"
         "                     (loop)))])"
         "  (let loop ()"
         "    (set! chaos-sink (cons (make-vector 4096 0) chaos-sink))"
         "    (loop)))";
}

struct PlannedJob {
  int Kind;
  std::string Source;
  SubmitOptions SO;
};

PlannedJob planJob(uint64_t Index, const ChaosOptions &C, Rng &R) {
  PlannedJob P;
  uint64_t Roll = R.nextBelow(1000);
  if (Roll < C.HostilePermille[0]) {
    P.Kind = Spinner;
    P.Source = spinnerSource();
    EngineLimits L;
    L.TimeoutMs = 40;
    P.SO.limits(L);
  } else if (Roll < C.HostilePermille[0] + C.HostilePermille[1]) {
    P.Kind = HeapEater;
    P.Source = heapEaterSource();
    EngineLimits L;
    L.HeapBytes = 4u << 20;
    L.TimeoutMs = 2000; // Backstop: the budget trip is the expected exit.
    P.SO.limits(L);
  } else if (Roll < C.HostilePermille[0] + C.HostilePermille[1] +
                        C.HostilePermille[2]) {
    P.Kind = Escalator;
    P.Source = escalatorSource();
    EngineLimits L;
    L.HeapBytes = 4u << 20;
    L.HeapHeadroomBytes = 256u << 10;
    L.TimeoutMs = 5000;
    P.SO.limits(L);
  } else {
    P.Kind = Healthy;
    P.Source = healthySource(Index);
    EngineLimits L;
    L.TimeoutMs = 2000; // Generous: healthy jobs run in ~1ms.
    P.SO.limits(L);
    RetryPolicy RP;
    RP.MaxAttempts = 3;
    RP.BaseBackoffMs = 1;
    RP.MaxBackoffMs = 8;
    P.SO.retry(RP);
  }
  if (C.DeadlineMs)
    P.SO.deadlineMs(C.DeadlineMs);
  return P;
}

/// Client-side outcome ledger: one slot per JobOutcome value, per kind.
struct Ledger {
  uint64_t ByOutcome[9] = {0};
  uint64_t ByKind[NumKinds] = {0};
  uint64_t KindOk[NumKinds] = {0};
  /// Per kind: refused without running (shed/expired/rejected) — load
  /// management, not a verdict on the job itself.
  uint64_t KindManaged[NumKinds] = {0};
  uint64_t AttemptsGe2 = 0;
};

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End != S && *End == '\0';
}

void usage() {
  std::printf(
      "chaos_pool: EnginePool resilience harness\n"
      "usage: chaos_pool [options]\n"
      "  --smoke            quick CI mix (200 jobs, 4 workers, seed 1)\n"
      "  --jobs=N           total jobs to submit (default 600)\n"
      "  --workers=N        pool workers (default 4)\n"
      "  --submitters=N     concurrent submitter threads (default 3)\n"
      "  --seed=N           mix selection seed (default 1)\n"
      "  --deadline-ms=N    per-job deadline (default off)\n"
      "  --queue-budget-ms=N  arm admission control at this queue-wait\n"
      "                     p99 budget (default off)\n"
      "  --breaker=N        consecutive-fatal circuit breaker (default 6)\n"
      "  --goodput=PCT      minimum healthy success rate (default 90)\n"
      "  --watchdog-sec=N   hang watchdog (default 300)\n"
      "  --fault-spec=SPEC  set CMARKS_FAULT_SPEC for the worker engines\n"
      "                     (active in -DCMARKS_FAULTS=ON builds)\n"
      "  --report=FILE      write a cmarks-chaos-v1 JSON report\n"
      "  --trace=FILE       write the merged Perfetto timeline\n"
      "  --metrics=FILE     write the pool cmarks-metrics-v1 snapshot\n"
      "  -h, --help         this message\n"
      "Exit codes: 0 invariants held, 1 invariant failed, 2 usage/hang.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  ChaosOptions C;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t N = 0;
    if (Arg == "-h" || Arg == "--help") {
      usage();
      return 0;
    } else if (Arg == "--smoke") {
      C.Jobs = 200;
      C.Workers = 4;
      C.Submitters = 3;
      C.WatchdogSec = 180;
    } else if (Arg.rfind("--jobs=", 0) == 0 && parseU64(Arg.c_str() + 7, N)) {
      C.Jobs = N;
    } else if (Arg.rfind("--workers=", 0) == 0 &&
               parseU64(Arg.c_str() + 10, N) && N > 0) {
      C.Workers = static_cast<unsigned>(N);
    } else if (Arg.rfind("--submitters=", 0) == 0 &&
               parseU64(Arg.c_str() + 13, N) && N > 0) {
      C.Submitters = static_cast<unsigned>(N);
    } else if (Arg.rfind("--seed=", 0) == 0 && parseU64(Arg.c_str() + 7, N)) {
      C.Seed = N;
    } else if (Arg.rfind("--deadline-ms=", 0) == 0 &&
               parseU64(Arg.c_str() + 14, N)) {
      C.DeadlineMs = N;
    } else if (Arg.rfind("--queue-budget-ms=", 0) == 0 &&
               parseU64(Arg.c_str() + 18, N)) {
      C.QueueWaitBudgetMs = N;
    } else if (Arg.rfind("--breaker=", 0) == 0 &&
               parseU64(Arg.c_str() + 10, N)) {
      C.Breaker = static_cast<uint32_t>(N);
    } else if (Arg.rfind("--goodput=", 0) == 0 &&
               parseU64(Arg.c_str() + 10, N) && N <= 100) {
      C.GoodputPct = N;
    } else if (Arg.rfind("--watchdog-sec=", 0) == 0 &&
               parseU64(Arg.c_str() + 15, N) && N > 0) {
      C.WatchdogSec = N;
    } else if (Arg.rfind("--fault-spec=", 0) == 0) {
      C.FaultSpec = Arg.substr(13);
    } else if (Arg.rfind("--report=", 0) == 0) {
      C.ReportFile = Arg.substr(9);
    } else if (Arg.rfind("--trace=", 0) == 0) {
      C.TraceFile = Arg.substr(8);
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      C.MetricsFile = Arg.substr(10);
    } else {
      std::fprintf(stderr, "chaos_pool: bad option %s (try --help)\n",
                   Arg.c_str());
      return 2;
    }
  }

  // Worker engines read CMARKS_FAULT_SPEC at construction; export the
  // spec before the pool exists. (setenv, not putenv: the string's
  // lifetime must outlive the engines.)
  if (!C.FaultSpec.empty())
    setenv("CMARKS_FAULT_SPEC", C.FaultSpec.c_str(), 1);

  // Hang watchdog: the whole point of the harness is "zero hung
  // submitters"; if that invariant breaks, fail loudly instead of
  // letting CI time the job out with no diagnostics.
  std::mutex WatchMu;
  std::condition_variable WatchCv;
  bool RunDone = false;
  std::thread Watchdog([&] {
    std::unique_lock<std::mutex> L(WatchMu);
    if (!WatchCv.wait_for(L, std::chrono::seconds(C.WatchdogSec),
                          [&] { return RunDone; })) {
      std::fprintf(stderr,
                   "chaos_pool: HUNG after %llu s (submitter or worker "
                   "stuck); aborting\n",
                   static_cast<unsigned long long>(C.WatchdogSec));
      _exit(2);
    }
  });

  PoolOptions PO;
  PO.Workers = C.Workers;
  PO.QueueCapacity = 128;
  PO.BreakerThreshold = C.Breaker;
  PO.QueueWaitBudgetMs = C.QueueWaitBudgetMs;
  PO.TraceCapacity = 8192;
  uint64_t T0 = nowNanos();
  uint64_t Restarts = 0, BreakerOpens = 0, Retries = 0;
  Ledger Total;
  uint64_t EscalatorsSubmitted = 0;
  PoolTelemetry T;
  {
    EnginePool Pool(PO);

    std::vector<std::thread> Submitters;
    std::vector<Ledger> Ledgers(C.Submitters);
    std::atomic<uint64_t> NextIndex{0};
    for (unsigned S = 0; S < C.Submitters; ++S) {
      Submitters.emplace_back([&, S] {
        Ledger &L = Ledgers[S];
        // Bounded batches: collect a window of futures, then drain it, so
        // a submitter never holds thousands of pending futures.
        std::vector<std::pair<int, std::future<JobResult>>> Window;
        auto Drain = [&] {
          for (auto &KV : Window) {
            JobResult R = KV.second.get();
            ++L.ByOutcome[static_cast<int>(R.Outcome)];
            ++L.ByKind[KV.first];
            if (R.Ok)
              ++L.KindOk[KV.first];
            if (R.Outcome == JobOutcome::Shed ||
                R.Outcome == JobOutcome::Expired ||
                R.Outcome == JobOutcome::Rejected)
              ++L.KindManaged[KV.first];
            if (R.Attempts >= 2)
              ++L.AttemptsGe2;
          }
          Window.clear();
        };
        for (;;) {
          uint64_t I = NextIndex.fetch_add(1);
          if (I >= C.Jobs)
            break;
          // Per-job rng: the mix is a pure function of (seed, index), so
          // a failing run replays exactly regardless of thread timing.
          Rng R(C.Seed * 0x9e3779b97f4a7c15ULL + I);
          PlannedJob P = planJob(I, C, R);
          Window.emplace_back(P.Kind,
                              Pool.submit(std::move(P.Source), P.SO));
          if (Window.size() >= 32)
            Drain();
        }
        Drain();
      });
    }
    for (std::thread &Th : Submitters)
      Th.join();

    Pool.shutdown(/*Drain=*/true);
    T = Pool.telemetry();
    Restarts = T.WorkerRestarts;
    BreakerOpens = T.BreakerOpens;
    Retries = T.RetriesAttempted;
    for (const Ledger &L : Ledgers) {
      for (int I = 0; I < 9; ++I)
        Total.ByOutcome[I] += L.ByOutcome[I];
      for (int K = 0; K < NumKinds; ++K) {
        Total.ByKind[K] += L.ByKind[K];
        Total.KindOk[K] += L.KindOk[K];
        Total.KindManaged[K] += L.KindManaged[K];
      }
      Total.AttemptsGe2 += L.AttemptsGe2;
    }
    EscalatorsSubmitted = Total.ByKind[Escalator];

    if (!C.TraceFile.empty() && !Pool.dumpTrace(C.TraceFile))
      std::fprintf(stderr, "chaos_pool: cannot write trace to %s\n",
                   C.TraceFile.c_str());
    if (!C.MetricsFile.empty()) {
      std::string Body = Pool.metricsJson();
      std::FILE *F = std::fopen(C.MetricsFile.c_str(), "w");
      if (!F || std::fwrite(Body.data(), 1, Body.size(), F) != Body.size())
        std::fprintf(stderr, "chaos_pool: cannot write metrics to %s\n",
                     C.MetricsFile.c_str());
      if (F)
        std::fclose(F);
    }

    // --- Invariant checks (while the trace is still reachable) ----------
    int Failures = 0;
    auto Check = [&](bool Cond, const char *What) {
      if (!Cond) {
        ++Failures;
        std::fprintf(stderr, "chaos_pool: FAIL %s\n", What);
      }
    };

    // 1. Full accounting: every submitted job resolved with exactly one
    //    outcome, and the client ledger matches the pool's telemetry.
    uint64_t ClientTotal = 0;
    for (int I = 0; I < 9; ++I)
      ClientTotal += Total.ByOutcome[I];
    Check(ClientTotal == C.Jobs, "every job resolves exactly once");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::Ok)] == T.JobsOk,
          "ok count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::Error)] == T.JobsError,
          "error count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::TrippedHeap)] ==
              T.TrippedHeap,
          "tripped-heap count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::TrippedStack)] ==
              T.TrippedStack,
          "tripped-stack count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::TrippedTimeout)] ==
              T.TrippedTimeout,
          "tripped-timeout count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::TrippedInterrupt)] ==
              T.TrippedInterrupt,
          "tripped-interrupt count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::Expired)] ==
              T.JobsExpired,
          "expired count matches telemetry");
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::Shed)] == T.JobsShed,
          "shed count matches telemetry");

    // 2. Goodput: healthy traffic survives the hostile mix. Jobs the
    //    pool refused without running (shed under an armed admission
    //    budget, expired past a configured deadline) are load-management
    //    working as designed, not lost goodput.
    uint64_t HealthyOk = Total.KindOk[Healthy];
    uint64_t HealthyRan =
        Total.ByKind[Healthy] - Total.KindManaged[Healthy];
    double Goodput =
        HealthyRan ? 100.0 * static_cast<double>(HealthyOk) /
                         static_cast<double>(HealthyRan)
                   : 100.0;
    if (Goodput < static_cast<double>(C.GoodputPct)) {
      ++Failures;
      std::fprintf(stderr,
                   "chaos_pool: FAIL goodput %.1f%% < %llu%% (healthy ok "
                   "%llu / ran %llu)\n",
                   Goodput, static_cast<unsigned long long>(C.GoodputPct),
                   static_cast<unsigned long long>(HealthyOk),
                   static_cast<unsigned long long>(HealthyRan));
    }

    // 3. Supervision actually exercised and observable end to end —
    //    judged on escalators that *ran*; ones refused at the door by
    //    admission control or deadlines never reached an engine.
    uint64_t EscalatorsRan =
        EscalatorsSubmitted - Total.KindManaged[Escalator];
    if (EscalatorsRan > 0) {
      Check(Restarts >= 1 || BreakerOpens >= 1,
            "escalators forced at least one supervised restart");
      std::string Trace = Pool.traceJson();
      Check(Trace.find("\"name\":\"worker-restart\"") != std::string::npos ||
                BreakerOpens >= 1,
            "worker-restart span present in the merged trace");
    }

    // 4. The pool's own bookkeeping is self-consistent: rejected jobs
    //    (breaker-forced pool-off is the only path here, since every
    //    future is drained before the drain shutdown) match telemetry,
    //    and no worker retired more than once.
    Check(Total.ByOutcome[static_cast<int>(JobOutcome::Rejected)] ==
              T.Stats.JobsRejected,
          "rejected count matches telemetry");
    Check(BreakerOpens <= C.Workers, "at most one breaker open per worker");

    uint64_t ElapsedMs = (nowNanos() - T0) / 1000000;
    std::printf(
        "chaos_pool: %llu jobs / %u workers / seed %llu in %llu ms\n"
        "  outcomes: ok=%llu error=%llu heap=%llu stack=%llu timeout=%llu "
        "interrupt=%llu expired=%llu shed=%llu rejected=%llu\n"
        "  mix: healthy=%llu spinner=%llu eater=%llu escalator=%llu\n"
        "  goodput=%.1f%% restarts=%llu breaker-opens=%llu retries=%llu "
        "retried-jobs=%llu\n",
        static_cast<unsigned long long>(C.Jobs), C.Workers,
        static_cast<unsigned long long>(C.Seed),
        static_cast<unsigned long long>(ElapsedMs),
        static_cast<unsigned long long>(Total.ByOutcome[0]),
        static_cast<unsigned long long>(Total.ByOutcome[1]),
        static_cast<unsigned long long>(Total.ByOutcome[2]),
        static_cast<unsigned long long>(Total.ByOutcome[3]),
        static_cast<unsigned long long>(Total.ByOutcome[4]),
        static_cast<unsigned long long>(Total.ByOutcome[5]),
        static_cast<unsigned long long>(Total.ByOutcome[6]),
        static_cast<unsigned long long>(Total.ByOutcome[7]),
        static_cast<unsigned long long>(Total.ByOutcome[8]),
        static_cast<unsigned long long>(Total.ByKind[Healthy]),
        static_cast<unsigned long long>(Total.ByKind[Spinner]),
        static_cast<unsigned long long>(Total.ByKind[HeapEater]),
        static_cast<unsigned long long>(Total.ByKind[Escalator]), Goodput,
        static_cast<unsigned long long>(Restarts),
        static_cast<unsigned long long>(BreakerOpens),
        static_cast<unsigned long long>(Retries),
        static_cast<unsigned long long>(Total.AttemptsGe2));

    if (!C.ReportFile.empty()) {
      std::FILE *F = std::fopen(C.ReportFile.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "chaos_pool: cannot write report to %s\n",
                     C.ReportFile.c_str());
      } else {
        std::fprintf(F, "{\n  \"schema\": \"cmarks-chaos-v1\",\n");
        std::fprintf(F, "  \"jobs\": %llu,\n  \"workers\": %u,\n",
                     static_cast<unsigned long long>(C.Jobs), C.Workers);
        std::fprintf(F, "  \"seed\": %llu,\n  \"elapsed_ms\": %llu,\n",
                     static_cast<unsigned long long>(C.Seed),
                     static_cast<unsigned long long>(ElapsedMs));
        std::fprintf(F, "  \"fault_spec\": \"%s\",\n", C.FaultSpec.c_str());
        std::fprintf(F, "  \"outcomes\": {");
        for (int I = 0; I < 9; ++I)
          std::fprintf(F, "%s\"%s\": %llu", I ? ", " : "",
                       jobOutcomeName(static_cast<JobOutcome>(I)),
                       static_cast<unsigned long long>(Total.ByOutcome[I]));
        std::fprintf(F, "},\n  \"mix\": {");
        for (int K = 0; K < NumKinds; ++K)
          std::fprintf(F, "%s\"%s\": %llu", K ? ", " : "", kindName(K),
                       static_cast<unsigned long long>(Total.ByKind[K]));
        std::fprintf(F,
                     "},\n  \"goodput_pct\": %.2f,\n"
                     "  \"worker_restarts\": %llu,\n"
                     "  \"breaker_opens\": %llu,\n"
                     "  \"retries\": %llu,\n"
                     "  \"faults_injected\": %llu,\n"
                     "  \"failures\": %d\n}\n",
                     Goodput, static_cast<unsigned long long>(Restarts),
                     static_cast<unsigned long long>(BreakerOpens),
                     static_cast<unsigned long long>(Retries),
                     static_cast<unsigned long long>(
                         T.Stats.Engines.FaultsInjected),
                     Failures);
        std::fclose(F);
      }
    }

    {
      std::lock_guard<std::mutex> L(WatchMu);
      RunDone = true;
    }
    WatchCv.notify_all();
    Watchdog.join();
    return Failures ? 1 : 0;
  }
}
