//===- tools/fuzz_diff.cpp - Differential fuzzing CLI ---------*- C++ -*-===//
///
/// \file
/// `cmarks_fuzz`: drives the differential fuzzing subsystem
/// (src/support/fuzz.h) from the command line. Three modes:
///
///   cmarks_fuzz --seed=N --count=N [options]      # bounded campaign
///   cmarks_fuzz --seed=N --time-budget-s=S [...]  # wall-clock soak
///   cmarks_fuzz --reproduce=FILE [options]        # re-run a repro file
///
/// Every generated program runs through the engine matrix (fused /
/// unfused / no-opt / no-1cc / heap-frames / copy-on-capture plus the
/// section 4 heap-model oracle on the oracle-safe subset); results, error
/// classifications, counter invariants, and determinism are compared. On
/// divergence the program is shrunk and a repro file is written to
/// --repro-dir; the exit status is 1. CI runs the fixed-seed smoke on
/// every PR (ci.yml) and the long soak nightly (soak.yml).
///
/// Options:
///   --seed=N            campaign seed (default 1)
///   --count=N           programs to generate (default 200)
///   --time-budget-s=S   stop after S seconds of wall clock (0 = off)
///   --depth=N           expression nesting budget (default 5)
///   --oracle-percent=P  share of oracle-checkable programs (default 50)
///   --legs=a,b,c        comma list of legs (default: the full matrix)
///   --no-oracle         drop the heap-model oracle leg
///   --no-fibers         drop the fiber productions (spawn/yield/channel)
///                       from the grammar; implied by a mark-stack leg,
///                       which rejects spawn outright
///   --fibers            force fiber productions on despite a mark-stack leg
///   --faults=SPEC       add a fused-leg clone armed with a preserving
///                       fault schedule (repeatable; needs CMARKS_FAULTS)
///   --failing-faults=SPEC  same, for failing schedules (oom/reify-oom):
///                       outcomes are not compared, only classified
///   --timeout-ms=N      per-leg backstop (default 10000)
///   --profile-hz=N      run the safe-point sampling profiler at N Hz on
///                       every VM leg; the sampler must be invisible
///                       (identical results and counters), so the nightly
///                       soak runs a leg with this armed
///   --repro-dir=DIR     where divergence repros are written
///                       (default fuzz_repro)
///   --no-shrink         keep the original failing program
///   --no-invariants     skip VMStats invariant checks
///   --no-determinism    skip the reference-leg determinism re-run
///   --stop-on-first     exit after the first divergence
///   --reproduce=FILE    re-run one repro file through the matrix
///   --quiet             suppress the progress line
///
//===----------------------------------------------------------------------===//

#include "support/fuzz.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cmk;
using namespace cmk::fuzz;

namespace {

bool argValue(const char *Arg, const char *Name, std::string &Out) {
  size_t N = std::strlen(Name);
  if (std::strncmp(Arg, Name, N) != 0 || Arg[N] != '=')
    return false;
  Out = Arg + N + 1;
  return true;
}

int usage(const char *Msg) {
  std::fprintf(stderr, "cmarks_fuzz: %s (see tools/fuzz_diff.cpp header)\n",
               Msg);
  return 2;
}

void printDivergence(const Divergence &D) {
  std::fprintf(stderr, "\n=== DIVERGENCE (seed %llu, program %d) ===\n",
               static_cast<unsigned long long>(D.Seed), D.Index);
  if (!D.LegB.empty())
    std::fprintf(stderr, "  %s vs %s\n", D.LegA.c_str(), D.LegB.c_str());
  if (!D.Detail.empty())
    std::fprintf(stderr, "  detail: %s\n", D.Detail.c_str());
  if (!D.ReprA.empty() || !D.ReprB.empty()) {
    std::fprintf(stderr, "  %-16s => %s\n", D.LegA.c_str(), D.ReprA.c_str());
    std::fprintf(stderr, "  %-16s => %s\n", D.LegB.c_str(), D.ReprB.c_str());
  }
  std::fprintf(stderr, "  shrunk program (%zu chars, %d shrink evals):\n%s\n",
               D.Source.size(), D.ShrinkEvals, D.Source.c_str());
  if (!D.ReproPath.empty())
    std::fprintf(stderr, "  repro written: %s\n", D.ReproPath.c_str());
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  long Count = 200;
  double TimeBudgetSec = 0;
  ProgramGen::Options GenOpts;
  HarnessOptions HOpts;
  HOpts.ReproDir = "fuzz_repro";
  std::string LegsSpec, ReproFile;
  std::vector<std::string> PreservingFaults, FailingFaults;
  bool IncludeOracle = true, StopOnFirst = false, Quiet = false,
       Shrink = true;
  int FiberChoice = -1; // -1 auto: on unless a mark-stack leg is selected.

  for (int I = 1; I < argc; ++I) {
    std::string V;
    if (argValue(argv[I], "--seed", V))
      Seed = std::strtoull(V.c_str(), nullptr, 10);
    else if (argValue(argv[I], "--count", V))
      Count = std::strtol(V.c_str(), nullptr, 10);
    else if (argValue(argv[I], "--time-budget-s", V))
      TimeBudgetSec = std::strtod(V.c_str(), nullptr);
    else if (argValue(argv[I], "--depth", V))
      GenOpts.Depth = std::atoi(V.c_str());
    else if (argValue(argv[I], "--oracle-percent", V))
      GenOpts.OracleSafePercent = std::atoi(V.c_str());
    else if (argValue(argv[I], "--legs", V))
      LegsSpec = V;
    else if (std::strcmp(argv[I], "--no-oracle") == 0)
      IncludeOracle = false;
    else if (std::strcmp(argv[I], "--no-fibers") == 0)
      FiberChoice = 0;
    else if (std::strcmp(argv[I], "--fibers") == 0)
      FiberChoice = 1;
    else if (argValue(argv[I], "--faults", V))
      PreservingFaults.push_back(V);
    else if (argValue(argv[I], "--failing-faults", V))
      FailingFaults.push_back(V);
    else if (argValue(argv[I], "--timeout-ms", V))
      HOpts.TimeoutMs = std::strtoull(V.c_str(), nullptr, 10);
    else if (argValue(argv[I], "--profile-hz", V))
      HOpts.ProfileHz = static_cast<uint32_t>(
          std::strtoul(V.c_str(), nullptr, 10));
    else if (argValue(argv[I], "--repro-dir", V))
      HOpts.ReproDir = V;
    else if (std::strcmp(argv[I], "--no-shrink") == 0)
      Shrink = false;
    else if (std::strcmp(argv[I], "--no-invariants") == 0)
      HOpts.CheckInvariants = false;
    else if (std::strcmp(argv[I], "--no-determinism") == 0)
      HOpts.CheckDeterminism = false;
    else if (std::strcmp(argv[I], "--stop-on-first") == 0)
      StopOnFirst = true;
    else if (argValue(argv[I], "--reproduce", V))
      ReproFile = V;
    else if (std::strcmp(argv[I], "--quiet") == 0)
      Quiet = true;
    else
      return usage((std::string("unknown option ") + argv[I]).c_str());
  }
  if (!Shrink)
    HOpts.ShrinkBudget = 0;

  // Assemble the matrix.
  std::vector<FuzzLeg> Legs;
  if (LegsSpec.empty()) {
    Legs = defaultLegs(IncludeOracle);
  } else {
    std::stringstream Ss(LegsSpec);
    std::string Name;
    while (std::getline(Ss, Name, ',')) {
      FuzzLeg L;
      if (!legByName(Name, L))
        return usage(("unknown leg '" + Name + "'").c_str());
      if (L.IsOracle && !IncludeOracle)
        continue;
      Legs.push_back(std::move(L));
    }
    if (Legs.empty())
      return usage("--legs selected no legs");
  }
  for (const std::string &Spec : PreservingFaults) {
    FuzzLeg L;
    legByName("fused", L);
    L.Name = "fused+faults(" + Spec + ")";
    L.FaultSpec = Spec;
    L.FaultPreserving = true;
    Legs.push_back(std::move(L));
  }
  for (const std::string &Spec : FailingFaults) {
    FuzzLeg L;
    legByName("fused", L);
    L.Name = "fused+failing-faults(" + Spec + ")";
    L.FaultSpec = Spec;
    L.FaultPreserving = false;
    Legs.push_back(std::move(L));
  }

#if !CMARKS_FAULTS
  if (!PreservingFaults.empty() || !FailingFaults.empty())
    std::fprintf(stderr, "cmarks_fuzz: warning: built without CMARKS_FAULTS; "
                         "fault schedules are accepted but never fire\n");
#endif

  // The mark-stack comparator rejects spawn, so fiber programs would
  // diverge on that leg by construction; drop them unless forced.
  bool HaveMarkStack = false;
  for (const FuzzLeg &L : Legs)
    HaveMarkStack |= L.Name == "mark-stack";
  GenOpts.EnableFibers = FiberChoice == -1 ? !HaveMarkStack : FiberChoice == 1;
  if (HaveMarkStack && FiberChoice == -1)
    std::fprintf(stderr, "cmarks_fuzz: note: mark-stack leg selected; fiber "
                         "productions disabled (override with --fibers)\n");

  FuzzHarness Harness(std::move(Legs), HOpts);

  if (!ReproFile.empty()) {
    std::ifstream In(ReproFile);
    if (!In)
      return usage(("cannot read " + ReproFile).c_str());
    std::stringstream Buf;
    Buf << In.rdbuf();
    Divergence D;
    if (Harness.reproduce(Buf.str(), &D)) {
      std::printf("reproduce: all legs agree on %s\n", ReproFile.c_str());
      return 0;
    }
    printDivergence(D);
    return 1;
  }

  CampaignStats Stats;
  std::vector<Divergence> Divs;
  Harness.runCampaign(Seed, Count, GenOpts, Stats, Divs, TimeBudgetSec,
                      StopOnFirst, !Quiet);

  std::printf("cmarks_fuzz: %ld programs (%ld oracle-checked, %ld skipped), "
              "%ld leg runs, %ld divergences [seed %llu, depth %d, %zu legs]\n",
              Stats.Programs, Stats.OracleChecked, Stats.Skipped,
              Stats.LegRuns, Stats.Divergences,
              static_cast<unsigned long long>(Seed), GenOpts.Depth,
              Harness.legs().size());
  for (const Divergence &D : Divs)
    printDivergence(D);
  return Divs.empty() ? 0 : 1;
}
