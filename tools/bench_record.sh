#!/bin/sh
# Record a full bench trajectory snapshot: runs bench_ctak, bench_marks,
# bench_attachments, bench_pool, bench_effects, and bench_fibers from a
# build directory and writes their
# BENCH_*.json (schema cmarks-bench-v1) to a chosen directory -- by
# default the repository root, which is the PR-over-PR perf trajectory
# that CI archives and check_bench.py compares against bench/baselines/.
#
# Usage: tools/bench_record.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing bench/ binaries (default: build)
#   OUT_DIR    where the BENCH_*.json land (default: the repo root)
#
# Honors CMARKS_BENCH_RUNS / CMARKS_BENCH_SCALE; defaults pin the scale so
# recorded trajectories stay comparable run-over-run.
set -eu

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
OUT_DIR=${2:-"$REPO_ROOT"}

# Absolutize: the benches run with cwd inside the build tree, so a
# relative OUT_DIR must not silently resolve against $BUILD_DIR/bench.
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)
mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)

: "${CMARKS_BENCH_RUNS:=3}"
: "${CMARKS_BENCH_SCALE:=0.5}"
export CMARKS_BENCH_RUNS CMARKS_BENCH_SCALE
export CMARKS_BENCH_JSON_DIR="$OUT_DIR"

for B in bench_ctak bench_marks bench_attachments bench_pool bench_effects bench_fibers; do
  BIN="$BUILD_DIR/bench/$B"
  if [ ! -x "$BIN" ]; then
    echo "bench_record: $BIN not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  echo "== $B (runs=$CMARKS_BENCH_RUNS scale=$CMARKS_BENCH_SCALE) =="
  (cd "$BUILD_DIR/bench" && "$BIN")
done

echo "recorded: $OUT_DIR/BENCH_ctak.json $OUT_DIR/BENCH_marks.json $OUT_DIR/BENCH_attachments.json $OUT_DIR/BENCH_pool.json $OUT_DIR/BENCH_effects.json $OUT_DIR/BENCH_fibers.json"
