//===- control/prompts.cpp - Tagged prompts and composable k's -*- C++ -*-===//
///
/// \file
/// Racket-style delimited control on top of the underflow-record chain:
/// call-with-continuation-prompt marks a record with a (tag . handler)
/// pair; abort walks the chain, restores the prompt's resume point, and
/// invokes the handler there; call-with-composable-continuation captures
/// the record slice between the current point and the prompt, and applying
/// the resulting CompositeCont splices rebased copies of those records
/// onto the current continuation (marks re-consed onto the current marks
/// list, which is what makes delimited continuations "capture and splice
/// subchains of exception handlers in a natural way", paper section 2.3).
///
//===----------------------------------------------------------------------===//

#include "vm/vm.h"

#include "runtime/printer.h"

using namespace cmk;

namespace cmk {
void promoteOneShots(VM &M, Value K); // vm/callcc.cpp
}

namespace {

Value promptTagType(VM &M) { return M.heap().intern("#%prompt-tag"); }

bool isPromptTag(VM &M, Value V) {
  return V.isRecord() && asRecord(V)->TypeTag == promptTagType(M);
}

Value nativeMakePromptTag(VM &M, Value *Args, uint32_t NArgs) {
  GCRoot Name(M.heap(),
              NArgs > 0 && Args[0].isSymbol() ? Args[0]
                                              : M.heap().intern("prompt"));
  Value Tag = M.heap().makeRecord(promptTagType(M), 1, Value::False());
  asRecord(Tag)->Fields[0] = Name.get();
  return Tag;
}

Value defaultTag(VM &M) {
  Value Tag = M.getGlobal("#%default-prompt-tag");
  CMK_CHECK(Tag.isRecord(), "default prompt tag not installed");
  return Tag;
}

Value nativeDefaultPromptTag(VM &M, Value *, uint32_t) {
  return defaultTag(M);
}

Value nativePromptTagP(VM &M, Value *Args, uint32_t) {
  return Value::boolean(isPromptTag(M, Args[0]));
}

/// (call-with-continuation-prompt thunk [tag] [handler])
Value nativeCallWithPrompt(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isProcedure())
    return typeError(M, "call-with-continuation-prompt", "procedure",
                     Args[0]);
  GCRoot Thunk(M.heap(), Args[0]);
  GCRoot Tag(M.heap(), NArgs > 1 ? Args[1] : defaultTag(M));
  GCRoot Handler(M.heap(), NArgs > 2 ? Args[2] : Value::False());
  if (!isPromptTag(M, Tag.get()))
    return typeError(M, "call-with-continuation-prompt", "prompt tag",
                     Tag.get());

  Value KV;
  if (M.NativeTailCall || M.Regs.Sp == M.Regs.Base) {
    // Tail position (or a frame scheduled at a fresh base): never mutate
    // the frame's (possibly shared) record; push a fresh pass-through
    // record carrying the prompt metadata. The thunk reuses the (reified)
    // frame and returns through the record.
    if (M.NativeTailCall)
      M.reifyCurrentFrame();
    KV = M.makePassThroughRecord();
    M.Regs.NextK = KV;
  } else {
    KV = M.reifyAtSp(ContShot::Opportunistic);
  }
  Value Meta = M.heap().makePair(Tag.get(), Handler.get());
  asCont(KV)->PromptTag = Meta;

  M.scheduleTailCall(Thunk.get(), nullptr, 0);
  return Value::voidValue();
}

/// Finds the innermost record whose PromptTag matches \p Tag; returns
/// undefined if none.
Value findPrompt(VM &M, Value Tag) {
  for (Value P = M.Regs.NextK; P.isCont(); P = asCont(P)->Next) {
    Value Meta = asCont(P)->PromptTag;
    if (Meta.isPair() && car(Meta) == Tag)
      return P;
  }
  return Value::undefined();
}

/// (#%abort-to-prompt tag val): restores the prompt's continuation and
/// invokes its handler with val there. Winders between here and the prompt
/// must already have been unwound by the prelude's abort wrapper.
Value nativeAbortToPrompt(VM &M, Value *Args, uint32_t) {
  Value P = findPrompt(M, Args[0]);
  if (P.isUndefined())
    return M.raiseError("abort-current-continuation: no matching prompt for " +
                        writeToString(Args[0]));
  GCRoot Val(M.heap(), Args[1]);
  Value Meta = asCont(P)->PromptTag;
  Value Handler = cdr(Meta);
  if (Handler.isFalse())
    return M.raiseError(
        "abort-current-continuation: prompt has no abort handler");
  GCRoot HandlerRoot(M.heap(), Handler);

  M.jumpToContinuation(P);
  Value CallArgs[1] = {Val.get()};
  M.scheduleTailCall(HandlerRoot.get(), CallArgs, 1);
  return Value::voidValue();
}

Value nativePromptAvailableP(VM &M, Value *Args, uint32_t) {
  return Value::boolean(!findPrompt(M, Args[0]).isUndefined());
}

/// (#%prompt-winders tag): the winder chain at the innermost matching
/// prompt, used by the prelude's abort wrapper to unwind correctly.
Value nativePromptWinders(VM &M, Value *Args, uint32_t) {
  Value P = findPrompt(M, Args[0]);
  if (P.isUndefined())
    return M.raiseError("abort: no matching prompt for " +
                        writeToString(Args[0]));
  return asCont(P)->Winders;
}

/// (call-with-composable-continuation proc [tag])
Value nativeCallWithComposable(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[0].isProcedure())
    return typeError(M, "call-with-composable-continuation", "procedure",
                     Args[0]);
  GCRoot Proc(M.heap(), Args[0]);
  GCRoot Tag(M.heap(), NArgs > 1 ? Args[1] : defaultTag(M));

  if (M.NativeTailCall)
    M.reifyCurrentFrame();
  else
    M.reifyAtSp(ContShot::Opportunistic); // Promoted with the chain below.

  // Collect the records between here and the prompt (exclusive).
  RootedValues Records(M.heap());
  Value Boundary = Value::undefined();
  for (Value P = M.Regs.NextK; P.isCont(); P = asCont(P)->Next) {
    Value Meta = asCont(P)->PromptTag;
    if (Meta.isPair() && car(Meta) == Tag.get()) {
      Boundary = P;
      break;
    }
    Records.push(P);
  }
  if (Boundary.isUndefined())
    return M.raiseError(
        "call-with-composable-continuation: no matching prompt");
  promoteOneShots(M, M.Regs.NextK);

  GCRoot BoundaryRoot(M.heap(), Boundary);
  Value Comp =
      M.heap().makeCompositeCont(static_cast<uint32_t>(Records.size()));
  for (size_t I = 0; I < Records.size(); ++I)
    asCompositeCont(Comp)->Records[I] = Records[I];
  asCompositeCont(Comp)->BoundaryMarks = asCont(BoundaryRoot.get())->Marks;
  // Record the winder-chain slice the captured extent sits inside, so the
  // prelude's composable wrapper can re-enter those dynamic-winds (run
  // before thunks, push fresh winders) on every application.
  asCompositeCont(Comp)->Winders = M.Regs.Winders;
  asCompositeCont(Comp)->BoundaryWinders = asCont(BoundaryRoot.get())->Winders;

  Value CallArgs[1] = {Comp};
  M.scheduleTailCall(Proc.get(), CallArgs, 1);
  return Value::voidValue();
}

/// (#%composite-winders k) / (#%composite-boundary-winders k): the winder
/// chain at the capture point and at the prompt boundary. The slice
/// between them is what the prelude's composable wrapper re-enters.
Value nativeCompositeWinders(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isCompositeCont())
    return typeError(M, "#%composite-winders", "composable continuation",
                     Args[0]);
  return asCompositeCont(Args[0])->Winders;
}

Value nativeCompositeBoundaryWinders(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isCompositeCont())
    return typeError(M, "#%composite-boundary-winders",
                     "composable continuation", Args[0]);
  return asCompositeCont(Args[0])->BoundaryWinders;
}

/// Re-conses the cells of \p List down to (but excluding) \p Boundary onto
/// \p NewTail.
Value rebaseList(Heap &H, Value List, Value Boundary, Value NewTail) {
  RootedValues Cells(H);
  for (Value P = List; P.isPair() && P != Boundary; P = cdr(P))
    Cells.push(car(P));
  GCRoot Acc(H, NewTail);
  for (size_t I = Cells.size(); I > 0; --I)
    Acc.set(H.makePair(Cells[I - 1], Acc.get()));
  return Acc.get();
}

} // namespace

void cmk::applyCompositeCont(VM &M, Value KV, Value Arg, bool TailMode) {
  Heap &H = M.heap();
  GCRoot KRoot(H, KV), ArgRoot(H, Arg);

  if (asCompositeCont(KV)->NumRecords == 0) {
    // Empty delimited continuation: applying it is the identity in the
    // current continuation.
    if (TailMode) {
      // Deliver Arg as the return value of the current frame: reuse the
      // continuation machinery by reifying and underflowing.
      M.reifyCurrentFrame();
      M.Regs.Sp = M.Regs.Fp;
      M.underflow(ArgRoot.get());
      M.NativeJumped = true;
      return;
    }
    asStackSeg(M.Regs.Seg)->Slots[M.Regs.Sp++] = ArgRoot.get();
    M.NativeJumped = true;
    return;
  }

  // Reify the current point so the spliced records sit on a record
  // boundary.
  if (TailMode)
    M.reifyCurrentFrame();
  else
    M.reifyAtSp(ContShot::Opportunistic);

  GCRoot Boundary(H, asCompositeCont(KRoot.get())->BoundaryMarks);
  GCRoot CurMarks(H, M.Regs.Marks);
  GCRoot NewNext(H, M.Regs.NextK);

  // Clone and rebase outermost..second-innermost records.
  uint32_t N = asCompositeCont(KRoot.get())->NumRecords;
  for (uint32_t I = N; I > 0; --I) {
    Value SrcV = asCompositeCont(KRoot.get())->Records[I - 1];
    GCRoot SrcRoot(H, SrcV);
    Value Rebased =
        rebaseList(H, asCont(SrcRoot.get())->Marks, Boundary.get(),
                   CurMarks.get());
    GCRoot RebasedRoot(H, Rebased);
    Value CloneV = H.makeCont();
    ContObj *Src = asCont(SrcRoot.get());
    ContObj *Clone = asCont(CloneV);
    Clone->Seg = Src->Seg;
    Clone->Lo = Src->Lo;
    Clone->Hi = Src->Hi;
    Clone->RetFp = Src->RetFp;
    Clone->RetCode = Src->RetCode;
    Clone->RetPc = Src->RetPc;
    Clone->Marks = RebasedRoot.get();
    Clone->Winders = M.Regs.Winders;
    Clone->PromptTag = Src->PromptTag;
    Clone->MarkHeight = static_cast<uint32_t>(M.MarkStack.size());
    Clone->Next = NewNext.get();
    Clone->setShot(ContShot::Full);
    // The source records were promoted (and so pinned) at capture, but
    // keep the invariant local: every full record pins its segment.
    if (Clone->Seg.isKind(ObjKind::StackSeg))
      asStackSeg(Clone->Seg)->H.Flags |= objflags::SegPinned;
    NewNext.set(CloneV);
  }

  // The innermost clone is applied directly: its slice becomes the live
  // stack and Arg is delivered to the capture's resume point.
  M.applyContinuation(NewNext.get(), ArgRoot.get());
}

void cmk::installPromptPrimitives(VM &M) {
  M.defineNative("make-continuation-prompt-tag", nativeMakePromptTag, 0, 1);
  M.defineNative("default-continuation-prompt-tag", nativeDefaultPromptTag, 0,
                 0);
  M.defineNative("continuation-prompt-tag?", nativePromptTagP, 1, 1);
  M.defineNative("call-with-continuation-prompt", nativeCallWithPrompt, 1, 3);
  M.defineNative("#%abort-to-prompt", nativeAbortToPrompt, 2, 2);
  M.defineNative("#%prompt-winders", nativePromptWinders, 1, 1);
  M.defineNative("continuation-prompt-available?", nativePromptAvailableP, 1,
                 1);
  // Raw capture; the prelude wraps it as call-with-composable-continuation
  // so applications re-enter dynamic-wind extents captured in the slice.
  M.defineNative("#%call-with-composable-continuation",
                 nativeCallWithComposable, 1, 2);
  M.defineNative("#%composite-winders", nativeCompositeWinders, 1, 1);
  M.defineNative("#%composite-boundary-winders",
                 nativeCompositeBoundaryWinders, 1, 1);

  Value Tag = M.heap().makeRecord(M.heap().intern("#%prompt-tag"), 1,
                                  M.heap().intern("default"));
  M.setGlobal("#%default-prompt-tag", Tag);
}
