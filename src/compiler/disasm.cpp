//===- compiler/disasm.cpp - Bytecode disassembler -------------*- C++ -*-===//

#include "compiler/bytecode.h"
#include "compiler/compiler.h"
#include "runtime/printer.h"

#include <cstdio>

using namespace cmk;

static void disasmCode(std::string &Out, Value CodeVal, int Indent) {
  CodeObj *C = asCode(CodeVal);
  char Buf[128];
  std::string Pad(Indent, ' ');

  std::snprintf(Buf, sizeof(Buf), "%scode %s args=%u locals=%u frame=%u\n",
                Pad.c_str(), displayToString(C->Name).c_str(), C->NumArgs,
                C->NumLocals, C->FrameSize);
  Out += Buf;

  const uint8_t *Instrs = C->instrs();
  uint32_t Pc = 0;
  while (Pc < C->NumInstrs) {
    Op O = static_cast<Op>(Instrs[Pc]);
    std::snprintf(Buf, sizeof(Buf), "%s%5u  %-14s", Pad.c_str(), Pc,
                  opName(O));
    Out += Buf;
    int Operands = opOperandBytes(O);
    if (O == Op::MakeClosure) {
      uint16_t Idx = readU16(Instrs + Pc + 1);
      uint16_t NFree = readU16(Instrs + Pc + 3);
      std::snprintf(Buf, sizeof(Buf), " code@%u nfree=%u", Idx, NFree);
      Out += Buf;
    } else if (O == Op::LocalLocal || O == Op::LocalConst ||
               O == Op::AddLocalConst || O == Op::SubLocalConst ||
               O == Op::ConstCall) {
      std::snprintf(Buf, sizeof(Buf), " %u %u", readU16(Instrs + Pc + 1),
                    readU16(Instrs + Pc + 3));
      Out += Buf;
    } else if (O == Op::LocalPrim) {
      std::snprintf(Buf, sizeof(Buf), " %u %s", readU16(Instrs + Pc + 1),
                    opName(static_cast<Op>(Instrs[Pc + 3])));
      Out += Buf;
    } else if (O == Op::JumpIfNotZeroLocal) {
      std::snprintf(Buf, sizeof(Buf), " %u %u", readU16(Instrs + Pc + 1),
                    readU32(Instrs + Pc + 3));
      Out += Buf;
    } else if (Operands == 2) {
      uint16_t V = readU16(Instrs + Pc + 1);
      std::snprintf(Buf, sizeof(Buf), " %u", V);
      Out += Buf;
      if (O == Op::PushConst && V < C->NumConsts) {
        Out += "  ; ";
        std::string Lit = writeToString(C->consts()[V]);
        if (Lit.size() > 40)
          Lit = Lit.substr(0, 40) + "...";
        Out += Lit;
      }
    } else if (Operands == 4) {
      std::snprintf(Buf, sizeof(Buf), " %u", readU32(Instrs + Pc + 1));
      Out += Buf;
    }
    Out += '\n';
    Pc += 1 + Operands;
  }

  // Recurse into nested code objects in the constant pool.
  for (uint32_t I = 0; I < C->NumConsts; ++I)
    if (C->consts()[I].isCode())
      disasmCode(Out, C->consts()[I], Indent + 2);
}

std::string Compiler::disassemble(Value CodeVal) {
  std::string Out;
  disasmCode(Out, CodeVal, 0);
  return Out;
}
