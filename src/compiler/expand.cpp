//===- compiler/expand.cpp ------------------------------------*- C++ -*-===//

#include "compiler/expand.h"

#include "runtime/heap.h"
#include "runtime/printer.h"
#include "runtime/symbols.h"

using namespace cmk;

Expander::Expander(Heap &H, const WellKnown &WK, AstContext &Ctx, Compiler &C)
    : H(H), WK(WK), Ctx(Ctx), C(C) {}

Var *Expander::lookup(Scope *S, Value Sym) const {
  for (; S; S = S->Parent) {
    auto It = S->Bindings.find(Sym.raw());
    if (It != S->Bindings.end())
      return It->second;
  }
  return nullptr;
}

Node *Expander::fail(const std::string &Msg) {
  if (Err.empty())
    Err = Msg;
  return nullptr;
}

Value Expander::freshName(const char *Prefix) { return H.gensym(Prefix); }

Value Expander::list1(Value A) { return H.makePair(A, Value::nil()); }
Value Expander::list2(Value A, Value B) { return H.makePair(A, list1(B)); }
Value Expander::list3(Value A, Value B, Value C2) {
  return H.makePair(A, list2(B, C2));
}

// --- Macro matching ----------------------------------------------------------
//
// define-syntax-rule supports one level of ellipsis: a pattern element
// followed by ... matches any number of forms and binds each variable in
// the sub-pattern to the sequence of its matches; a template element
// followed by ... replays the template once per match.

namespace {
struct MacroBindings {
  std::vector<std::pair<uint64_t, Value>> Single;
  std::vector<std::pair<uint64_t, std::vector<Value>>> Sequences;

  const Value *findSingle(uint64_t Raw) const {
    for (const auto &B : Single)
      if (B.first == Raw)
        return &B.second;
    return nullptr;
  }
  const std::vector<Value> *findSequence(uint64_t Raw) const {
    for (const auto &B : Sequences)
      if (B.first == Raw)
        return &B.second;
    return nullptr;
  }
};
} // namespace

static bool isEllipsisSym(Heap &H, Value V) {
  return V.isSymbol() && V == H.intern("...");
}

static void collectPatternVars(Heap &H, Value Pattern,
                               std::vector<uint64_t> &Vars) {
  if (Pattern.isSymbol()) {
    if (!isEllipsisSym(H, Pattern))
      Vars.push_back(Pattern.raw());
    return;
  }
  if (Pattern.isPair()) {
    collectPatternVars(H, car(Pattern), Vars);
    collectPatternVars(H, cdr(Pattern), Vars);
  }
}

static bool macroMatch(Heap &H, Value Pattern, Value Form, MacroBindings &B) {
  if (Pattern.isSymbol()) {
    B.Single.push_back({Pattern.raw(), Form});
    return true;
  }
  if (Pattern.isPair()) {
    // (sub ... . rest): greedy match of sub against a prefix of Form.
    if (cdr(Pattern).isPair() && isEllipsisSym(H, car(cdr(Pattern)))) {
      Value Sub = car(Pattern);
      Value RestPat = cdr(cdr(Pattern));
      int64_t MinRest = 0;
      for (Value P = RestPat; P.isPair(); P = cdr(P))
        ++MinRest;

      std::vector<uint64_t> SubVars;
      collectPatternVars(H, Sub, SubVars);
      std::vector<std::pair<uint64_t, std::vector<Value>>> Seqs;
      for (uint64_t V : SubVars)
        Seqs.push_back({V, {}});

      Value P = Form;
      int64_t Avail = listLength(P);
      if (Avail < 0) {
        // Improper tail: count the pair prefix only.
        Avail = 0;
        for (Value Q = P; Q.isPair(); Q = cdr(Q))
          ++Avail;
      }
      while (P.isPair() && Avail > MinRest) {
        MacroBindings SubB;
        if (!macroMatch(H, Sub, car(P), SubB))
          return false;
        for (auto &Seq : Seqs)
          if (const Value *V = SubB.findSingle(Seq.first))
            Seq.second.push_back(*V);
        P = cdr(P);
        --Avail;
      }
      for (auto &Seq : Seqs)
        B.Sequences.push_back(std::move(Seq));
      return macroMatch(H, RestPat, P, B);
    }
    if (!Form.isPair())
      return false;
    return macroMatch(H, car(Pattern), car(Form), B) &&
           macroMatch(H, cdr(Pattern), cdr(Form), B);
  }
  if (Pattern.isNil())
    return Form.isNil();
  return Pattern == Form; // Self-evaluating literals must match exactly.
}

static Value macroSubst(Heap &H, Value Template, const MacroBindings &B);

/// Expands `Sub ...`: one copy of Sub per element of its sequence vars.
static void macroSubstEllipsis(Heap &H, Value Sub, const MacroBindings &B,
                               std::vector<Value> &Out) {
  std::vector<uint64_t> Vars;
  collectPatternVars(H, Sub, Vars);
  size_t Len = 0;
  bool Any = false;
  for (uint64_t V : Vars)
    if (const std::vector<Value> *Seq = B.findSequence(V)) {
      Len = std::max(Len, Seq->size());
      Any = true;
    }
  if (!Any)
    return; // No sequence variables: expands to nothing.
  for (size_t I = 0; I < Len; ++I) {
    MacroBindings Iter;
    Iter.Single = B.Single;
    for (uint64_t V : Vars)
      if (const std::vector<Value> *Seq = B.findSequence(V))
        Iter.Single.push_back(
            {V, I < Seq->size() ? (*Seq)[I] : Value::undefined()});
    Out.push_back(macroSubst(H, Sub, Iter));
  }
}

static Value macroSubst(Heap &H, Value Template, const MacroBindings &B) {
  if (Template.isSymbol()) {
    if (const Value *V = B.findSingle(Template.raw()))
      return *V;
    return Template;
  }
  if (Template.isPair()) {
    if (cdr(Template).isPair() && isEllipsisSym(H, car(cdr(Template)))) {
      std::vector<Value> Expanded;
      macroSubstEllipsis(H, car(Template), B, Expanded);
      RootedValues Roots(H);
      for (Value V : Expanded)
        Roots.push(V);
      Value Rest = macroSubst(H, cdr(cdr(Template)), B);
      GCRoot Acc(H, Rest);
      for (size_t I = Expanded.size(); I > 0; --I)
        Acc.set(H.makePair(Roots[I - 1], Acc.get()));
      return Acc.get();
    }
    Value Car = macroSubst(H, car(Template), B);
    GCRoot CarRoot(H, Car);
    Value Cdr = macroSubst(H, cdr(Template), B);
    return H.makePair(CarRoot.get(), Cdr);
  }
  return Template;
}

// --- Toplevel ---------------------------------------------------------------

LambdaNode *Expander::expandToplevel(Value Form) {
  Node *Body = expandToplevelForm(Form);
  if (!Body)
    return nullptr;
  return Ctx.make<LambdaNode>(std::vector<Var *>{}, false, Body,
                              H.intern("toplevel"));
}

Node *Expander::expandToplevelForm(Value Form) {
  if (Form.isPair() && car(Form).isSymbol()) {
    Value Head = car(Form);
    if (Head == WK.Define) {
      Value Rest = cdr(Form);
      if (!Rest.isPair())
        return fail("malformed define");
      Value Target = car(Rest);
      if (Target.isSymbol()) {
        // (define x e)
        Node *Rhs = cdr(Rest).isPair() ? expand(car(cdr(Rest)), nullptr)
                                       : Ctx.make<ConstNode>(Value::voidValue());
        if (!Rhs)
          return nullptr;
        if (Rhs->K == NodeKind::Lambda && asLambda(Rhs)->Name.isFalse())
          asLambda(Rhs)->Name = Target;
        return Ctx.make<GlobalSetNode>(Target, Rhs, /*IsDefine=*/true);
      }
      if (Target.isPair() && car(Target).isSymbol()) {
        // (define (f . args) body...)
        Value Name = car(Target);
        Node *Fn = expandLambda(cdr(Target), cdr(Rest), nullptr, Name);
        if (!Fn)
          return nullptr;
        return Ctx.make<GlobalSetNode>(Name, Fn, /*IsDefine=*/true);
      }
      return fail("malformed define");
    }
    if (Head == WK.DefineSyntaxRule) {
      std::string MacroErr;
      if (!C.defineSyntaxRule(Form, &MacroErr))
        return fail(MacroErr);
      return Ctx.make<ConstNode>(Value::voidValue());
    }
    if (Head == WK.Begin) {
      // Splice toplevel begins so nested defines stay toplevel.
      std::vector<Node *> Body;
      for (Value P = cdr(Form); P.isPair(); P = cdr(P)) {
        Node *N = expandToplevelForm(car(P));
        if (!N)
          return nullptr;
        Body.push_back(N);
      }
      if (Body.empty())
        return Ctx.make<ConstNode>(Value::voidValue());
      if (Body.size() == 1)
        return Body[0];
      return Ctx.make<BeginNode>(std::move(Body));
    }
  }
  return expand(Form, nullptr);
}

// --- Expression expansion -----------------------------------------------------

Node *Expander::expand(Value Form, Scope *S) {
  if (!Err.empty())
    return nullptr;

  if (Form.isSymbol()) {
    if (Var *V = lookup(S, Form))
      return Ctx.make<LocalRefNode>(V);
    return Ctx.make<GlobalRefNode>(Form);
  }
  if (!Form.isPair())
    return Ctx.make<ConstNode>(Form); // Self-evaluating atom.

  Value Head = car(Form);
  if (Head.isSymbol() && !lookup(S, Head)) {
    if (Head == WK.Quote) {
      if (!cdr(Form).isPair())
        return fail("malformed quote");
      return Ctx.make<ConstNode>(car(cdr(Form)));
    }
    if (Head == WK.Lambda) {
      Value Rest = cdr(Form);
      if (!Rest.isPair())
        return fail("malformed lambda");
      return expandLambda(car(Rest), cdr(Rest), S, Value::False());
    }
    if (Head == WK.If) {
      Value Rest = cdr(Form);
      int64_t Len = listLength(Rest);
      if (Len != 2 && Len != 3)
        return fail("malformed if");
      Node *Test = expand(car(Rest), S);
      Node *Then = Test ? expand(car(cdr(Rest)), S) : nullptr;
      Node *Else = nullptr;
      if (Then) {
        Else = Len == 3 ? expand(car(cdr(cdr(Rest))), S)
                        : Ctx.make<ConstNode>(Value::voidValue());
      }
      if (!Else)
        return nullptr;
      return Ctx.make<IfNode>(Test, Then, Else);
    }
    if (Head == WK.Set) {
      Value Rest = cdr(Form);
      if (listLength(Rest) != 2 || !car(Rest).isSymbol())
        return fail("malformed set!");
      Node *Rhs = expand(car(cdr(Rest)), S);
      if (!Rhs)
        return nullptr;
      if (Var *V = lookup(S, car(Rest))) {
        V->Mutated = true;
        return Ctx.make<LocalSetNode>(V, Rhs);
      }
      return Ctx.make<GlobalSetNode>(car(Rest), Rhs, /*IsDefine=*/false);
    }
    if (Head == WK.Begin)
      return expandSequence(cdr(Form), S);
    if (Head == WK.Let)
      return expandLet(Form, S);
    if (Head == WK.LetStar)
      return expandLetStar(Form, S);
    if (Head == WK.Letrec || Head == H.intern("letrec*"))
      return expandLetrec(Form, S);
    if (Head == WK.Cond)
      return expandCond(cdr(Form), S);
    if (Head == WK.Case)
      return expandCase(Form, S);
    if (Head == WK.And)
      return expandAnd(cdr(Form), S);
    if (Head == WK.Or)
      return expandOr(cdr(Form), S);
    if (Head == WK.When || Head == WK.Unless) {
      Value Rest = cdr(Form);
      if (!Rest.isPair() || !cdr(Rest).isPair())
        return fail("malformed when/unless");
      Node *Test = expand(car(Rest), S);
      Node *Body = Test ? expandSequence(cdr(Rest), S) : nullptr;
      if (!Body)
        return nullptr;
      Node *VoidN = Ctx.make<ConstNode>(Value::voidValue());
      if (Head == WK.When)
        return Ctx.make<IfNode>(Test, Body, VoidN);
      return Ctx.make<IfNode>(Test, VoidN, Body);
    }
    if (Head == WK.Do)
      return expandDo(Form, S);
    if (Head == WK.Quasiquote) {
      if (!cdr(Form).isPair())
        return fail("malformed quasiquote");
      Value Expanded = expandQuasiquote(car(cdr(Form)), 1);
      return expand(Expanded, S);
    }
    if (Head == WK.WithContinuationMark)
      return expandWcm(Form, S);
    if (Head == H.intern("parameterize"))
      return expandParameterize(Form, S);
    if (Head == WK.Define)
      return fail("define is not allowed in an expression position");
    if (Head == WK.CallSettingAttachment)
      return expandAttachPrim(AttachOp::Set, Form, S);
    if (Head == WK.CallGettingAttachment)
      return expandAttachPrim(AttachOp::Get, Form, S);
    if (Head == WK.CallConsumingAttachment)
      return expandAttachPrim(AttachOp::Consume, Form, S);

    // Pattern macros.
    if (const auto *M = C.findMacro(Head)) {
      MacroBindings Binds;
      if (!macroMatch(H, cdr(M->Pattern), cdr(Form), Binds))
        return fail("no matching macro pattern for " + writeToString(Head));
      Value Expanded = macroSubst(H, M->Template, Binds);
      return expand(Expanded, S);
    }
  }

  return expandCall(Form, S);
}

Node *Expander::expandCall(Value Form, Scope *S) {
  Node *Fn = expand(car(Form), S);
  if (!Fn)
    return nullptr;
  std::vector<Node *> Args;
  Value P = cdr(Form);
  for (; P.isPair(); P = cdr(P)) {
    Node *A = expand(car(P), S);
    if (!A)
      return nullptr;
    Args.push_back(A);
  }
  if (!P.isNil())
    return fail("dotted argument list in call");
  return Ctx.make<CallNode>(Fn, std::move(Args));
}

Node *Expander::expandSequence(Value Forms, Scope *S) {
  std::vector<Node *> Body;
  for (Value P = Forms; P.isPair(); P = cdr(P)) {
    Node *N = expand(car(P), S);
    if (!N)
      return nullptr;
    Body.push_back(N);
  }
  if (Body.empty())
    return Ctx.make<ConstNode>(Value::voidValue());
  if (Body.size() == 1)
    return Body[0];
  return Ctx.make<BeginNode>(std::move(Body));
}

/// Body of a lambda/let: leading (define ...) forms become letrec*-style
/// bindings (lowered to let + set!).
Node *Expander::expandBody(Value Forms, Scope *S) {
  std::vector<std::pair<Value, Value>> Defs; // name -> init form
  Value P = Forms;
  for (; P.isPair(); P = cdr(P)) {
    Value F = car(P);
    if (!(F.isPair() && car(F).isSymbol() && car(F) == WK.Define))
      break;
    Value Rest = cdr(F);
    if (!Rest.isPair())
      return fail("malformed internal define");
    Value Target = car(Rest);
    if (Target.isSymbol()) {
      Value Init = cdr(Rest).isPair() ? car(cdr(Rest)) : Value::voidValue();
      Defs.push_back({Target, Init});
    } else if (Target.isPair() && car(Target).isSymbol()) {
      // (define (f . a) body...) -> f = (lambda a body...)
      Value LambdaForm =
          H.makePair(WK.Lambda, H.makePair(cdr(Target), cdr(Rest)));
      Defs.push_back({car(Target), LambdaForm});
    } else {
      return fail("malformed internal define");
    }
  }
  if (Defs.empty())
    return expandSequence(Forms, S);

  // letrec* lowering: bind all names to undefined, then set! each in order.
  Scope Inner;
  Inner.Parent = S;
  std::vector<Var *> Vars;
  for (auto &D : Defs) {
    Var *V = Ctx.makeVar(D.first);
    V->Mutated = true;
    Inner.Bindings[D.first.raw()] = V;
    Vars.push_back(V);
  }
  std::vector<Node *> Seq;
  for (size_t I = 0; I < Defs.size(); ++I) {
    Node *Init = expand(Defs[I].second, &Inner);
    if (!Init)
      return nullptr;
    if (Init->K == NodeKind::Lambda && asLambda(Init)->Name.isFalse())
      asLambda(Init)->Name = Defs[I].first;
    Seq.push_back(Ctx.make<LocalSetNode>(Vars[I], Init));
  }
  Node *Rest = expandSequence(P, &Inner);
  if (!Rest)
    return nullptr;
  Seq.push_back(Rest);

  std::vector<Node *> Inits(Vars.size(),
                            Ctx.make<ConstNode>(Value::undefined()));
  return Ctx.make<LetNode>(std::move(Vars), std::move(Inits),
                           Ctx.make<BeginNode>(std::move(Seq)));
}

Node *Expander::expandLambda(Value Params, Value Body, Scope *S, Value Name) {
  Scope Inner;
  Inner.Parent = S;
  std::vector<Var *> Vars;
  bool HasRest = false;

  Value P = Params;
  while (P.isPair()) {
    if (!car(P).isSymbol())
      return fail("lambda parameter must be a symbol");
    Var *V = Ctx.makeVar(car(P));
    Inner.Bindings[car(P).raw()] = V;
    Vars.push_back(V);
    P = cdr(P);
  }
  if (P.isSymbol()) { // Rest parameter: (lambda (a . r) ...) or (lambda r ...)
    Var *V = Ctx.makeVar(P);
    Inner.Bindings[P.raw()] = V;
    Vars.push_back(V);
    HasRest = true;
  } else if (!P.isNil()) {
    return fail("malformed lambda parameter list");
  }

  Node *BodyN = expandBody(Body, &Inner);
  if (!BodyN)
    return nullptr;
  return Ctx.make<LambdaNode>(std::move(Vars), HasRest, BodyN, Name);
}

Node *Expander::expandLet(Value Form, Scope *S) {
  Value Rest = cdr(Form);
  if (!Rest.isPair())
    return fail("malformed let");
  if (car(Rest).isSymbol())
    return expandNamedLet(car(Rest), car(cdr(Rest)), cdr(cdr(Rest)), S);

  Value Bindings = car(Rest);
  Scope Inner;
  Inner.Parent = S;
  std::vector<Var *> Vars;
  std::vector<Node *> Inits;
  for (Value B = Bindings; B.isPair(); B = cdr(B)) {
    Value Bind = car(B);
    if (!(Bind.isPair() && car(Bind).isSymbol() && cdr(Bind).isPair()))
      return fail("malformed let binding");
    Node *Init = expand(car(cdr(Bind)), S); // Inits see the outer scope.
    if (!Init)
      return nullptr;
    Var *V = Ctx.makeVar(car(Bind));
    if (Init->K == NodeKind::Lambda && asLambda(Init)->Name.isFalse())
      asLambda(Init)->Name = car(Bind);
    Vars.push_back(V);
    Inits.push_back(Init);
  }
  for (Var *V : Vars)
    Inner.Bindings[V->Name.raw()] = V;
  Node *Body = expandBody(cdr(Rest), &Inner);
  if (!Body)
    return nullptr;
  return Ctx.make<LetNode>(std::move(Vars), std::move(Inits), Body);
}

Node *Expander::expandLetStar(Value Form, Scope *S) {
  Value Rest = cdr(Form);
  if (!Rest.isPair())
    return fail("malformed let*");
  Value Bindings = car(Rest);
  if (Bindings.isNil())
    return expandBody(cdr(Rest), S);
  // (let* (b . bs) body) -> (let (b) (let* bs body))
  Value InnerForm =
      H.makePair(WK.LetStar, H.makePair(cdr(Bindings), cdr(Rest)));
  Value OuterForm = H.makePair(
      WK.Let, H.makePair(list1(car(Bindings)), list1(InnerForm)));
  return expand(OuterForm, S);
}

Node *Expander::expandLetrec(Value Form, Scope *S) {
  Value Rest = cdr(Form);
  if (!Rest.isPair())
    return fail("malformed letrec");
  Value Bindings = car(Rest);

  Scope Inner;
  Inner.Parent = S;
  std::vector<Var *> Vars;
  std::vector<Value> InitForms;
  for (Value B = Bindings; B.isPair(); B = cdr(B)) {
    Value Bind = car(B);
    if (!(Bind.isPair() && car(Bind).isSymbol() && cdr(Bind).isPair()))
      return fail("malformed letrec binding");
    Var *V = Ctx.makeVar(car(Bind));
    V->Mutated = true; // letrec lowering assigns after binding.
    Inner.Bindings[car(Bind).raw()] = V;
    Vars.push_back(V);
    InitForms.push_back(car(cdr(Bind)));
  }

  std::vector<Node *> Seq;
  for (size_t I = 0; I < Vars.size(); ++I) {
    Node *Init = expand(InitForms[I], &Inner);
    if (!Init)
      return nullptr;
    if (Init->K == NodeKind::Lambda && asLambda(Init)->Name.isFalse())
      asLambda(Init)->Name = Vars[I]->Name;
    Seq.push_back(Ctx.make<LocalSetNode>(Vars[I], Init));
  }
  Node *Body = expandBody(cdr(Rest), &Inner);
  if (!Body)
    return nullptr;
  Seq.push_back(Body);

  std::vector<Node *> Inits(Vars.size(),
                            Ctx.make<ConstNode>(Value::undefined()));
  return Ctx.make<LetNode>(std::move(Vars), std::move(Inits),
                           Ctx.make<BeginNode>(std::move(Seq)));
}

Node *Expander::expandNamedLet(Value Name, Value Bindings, Value Body,
                               Scope *S) {
  // (let loop ([v init] ...) body)
  // -> ((letrec ([loop (lambda (v ...) body)]) loop) init ...)
  Value Params = Value::nil();
  Value Inits = Value::nil();
  std::vector<Value> Ps, Is;
  for (Value B = Bindings; B.isPair(); B = cdr(B)) {
    Value Bind = car(B);
    if (!(Bind.isPair() && car(Bind).isSymbol() && cdr(Bind).isPair()))
      return fail("malformed named-let binding");
    Ps.push_back(car(Bind));
    Is.push_back(car(cdr(Bind)));
  }
  for (size_t I = Ps.size(); I > 0; --I) {
    Params = H.makePair(Ps[I - 1], Params);
    Inits = H.makePair(Is[I - 1], Inits);
  }
  Value LambdaForm = H.makePair(WK.Lambda, H.makePair(Params, Body));
  Value LetrecForm = H.makePair(
      WK.Letrec, list2(list1(list2(Name, LambdaForm)), Name));
  return expand(H.makePair(LetrecForm, Inits), S);
}

Node *Expander::expandCond(Value Clauses, Scope *S) {
  if (Clauses.isNil())
    return Ctx.make<ConstNode>(Value::voidValue());
  if (!Clauses.isPair())
    return fail("malformed cond");
  Value Clause = car(Clauses);
  if (!Clause.isPair())
    return fail("malformed cond clause");

  if (car(Clause).isSymbol() && car(Clause) == WK.Else)
    return expandSequence(cdr(Clause), S);

  if (cdr(Clause).isNil()) {
    // (cond (test) rest...) -> (let ([t test]) (if t t (cond rest...)))
    Value T = freshName("cond-t");
    Node *Test = expand(car(Clause), S);
    if (!Test)
      return nullptr;
    Scope Inner;
    Inner.Parent = S;
    Var *V = Ctx.makeVar(T);
    Inner.Bindings[T.raw()] = V;
    Node *Rest = expandCond(cdr(Clauses), &Inner);
    if (!Rest)
      return nullptr;
    Node *Ref1 = Ctx.make<LocalRefNode>(V);
    Node *Ref2 = Ctx.make<LocalRefNode>(V);
    Node *IfN = Ctx.make<IfNode>(Ref1, Ref2, Rest);
    return Ctx.make<LetNode>(std::vector<Var *>{V},
                             std::vector<Node *>{Test}, IfN);
  }

  if (cdr(Clause).isPair() && car(cdr(Clause)).isSymbol() &&
      car(cdr(Clause)) == WK.Arrow) {
    // (cond (test => f) rest...)
    if (!cdr(cdr(Clause)).isPair())
      return fail("malformed => clause");
    Value T = freshName("cond-t");
    Node *Test = expand(car(Clause), S);
    if (!Test)
      return nullptr;
    Scope Inner;
    Inner.Parent = S;
    Var *V = Ctx.makeVar(T);
    Inner.Bindings[T.raw()] = V;
    Node *Fn = expand(car(cdr(cdr(Clause))), &Inner);
    if (!Fn)
      return nullptr;
    Node *Rest = expandCond(cdr(Clauses), &Inner);
    if (!Rest)
      return nullptr;
    Node *Ref1 = Ctx.make<LocalRefNode>(V);
    Node *Ref2 = Ctx.make<LocalRefNode>(V);
    Node *CallN =
        Ctx.make<CallNode>(Fn, std::vector<Node *>{Ref2});
    Node *IfN = Ctx.make<IfNode>(Ref1, CallN, Rest);
    return Ctx.make<LetNode>(std::vector<Var *>{V},
                             std::vector<Node *>{Test}, IfN);
  }

  Node *Test = expand(car(Clause), S);
  Node *Then = Test ? expandSequence(cdr(Clause), S) : nullptr;
  Node *Rest = Then ? expandCond(cdr(Clauses), S) : nullptr;
  if (!Rest)
    return nullptr;
  return Ctx.make<IfNode>(Test, Then, Rest);
}

Node *Expander::expandCase(Value Form, Scope *S) {
  Value Rest = cdr(Form);
  if (!Rest.isPair())
    return fail("malformed case");
  // (case k clauses...) -> (let ([t k]) (cond ((memv t '(d...)) ...) ...))
  Value T = freshName("case-t");
  Value CondClauses = Value::nil();
  std::vector<Value> Clauses;
  for (Value P = cdr(Rest); P.isPair(); P = cdr(P))
    Clauses.push_back(car(P));
  Value MemvSym = H.intern("memv");
  for (size_t I = Clauses.size(); I > 0; --I) {
    Value Clause = Clauses[I - 1];
    if (!Clause.isPair())
      return fail("malformed case clause");
    Value NewClause;
    if (car(Clause).isSymbol() && car(Clause) == WK.Else) {
      NewClause = Clause;
    } else {
      Value Test =
          list3(MemvSym, T, list2(WK.Quote, car(Clause)));
      NewClause = H.makePair(Test, cdr(Clause));
    }
    CondClauses = H.makePair(NewClause, CondClauses);
  }
  Value CondForm = H.makePair(WK.Cond, CondClauses);
  Value LetForm = H.makePair(
      WK.Let, H.makePair(list1(list2(T, car(Rest))), list1(CondForm)));
  return expand(LetForm, S);
}

Node *Expander::expandAnd(Value Forms, Scope *S) {
  if (Forms.isNil())
    return Ctx.make<ConstNode>(Value::True());
  if (cdr(Forms).isNil())
    return expand(car(Forms), S);
  Node *Test = expand(car(Forms), S);
  Node *Rest = Test ? expandAnd(cdr(Forms), S) : nullptr;
  if (!Rest)
    return nullptr;
  return Ctx.make<IfNode>(Test, Rest, Ctx.make<ConstNode>(Value::False()));
}

Node *Expander::expandOr(Value Forms, Scope *S) {
  if (Forms.isNil())
    return Ctx.make<ConstNode>(Value::False());
  if (cdr(Forms).isNil())
    return expand(car(Forms), S);
  // (or a b...) -> (let ([t a]) (if t t (or b...)))
  Value T = freshName("or-t");
  Node *Test = expand(car(Forms), S);
  if (!Test)
    return nullptr;
  Scope Inner;
  Inner.Parent = S;
  Var *V = Ctx.makeVar(T);
  Inner.Bindings[T.raw()] = V;
  Node *Rest = expandOr(cdr(Forms), &Inner);
  if (!Rest)
    return nullptr;
  Node *Ref1 = Ctx.make<LocalRefNode>(V);
  Node *Ref2 = Ctx.make<LocalRefNode>(V);
  Node *IfN = Ctx.make<IfNode>(Ref1, Ref2, Rest);
  return Ctx.make<LetNode>(std::vector<Var *>{V}, std::vector<Node *>{Test},
                           IfN);
}

Node *Expander::expandDo(Value Form, Scope *S) {
  // (do ([v init step?] ...) (test result ...) cmd ...)
  Value Rest = cdr(Form);
  if (!Rest.isPair() || !cdr(Rest).isPair())
    return fail("malformed do");
  Value Specs = car(Rest);
  Value TestClause = car(cdr(Rest));
  Value Cmds = cdr(cdr(Rest));
  if (!TestClause.isPair())
    return fail("malformed do test clause");

  Value LoopName = freshName("do-loop");
  std::vector<Value> Names, Inits, Steps;
  for (Value P = Specs; P.isPair(); P = cdr(P)) {
    Value Spec = car(P);
    if (!(Spec.isPair() && car(Spec).isSymbol() && cdr(Spec).isPair()))
      return fail("malformed do binding");
    Names.push_back(car(Spec));
    Inits.push_back(car(cdr(Spec)));
    Steps.push_back(cdr(cdr(Spec)).isPair() ? car(cdr(cdr(Spec)))
                                            : car(Spec));
  }

  Value StepCall = Value::nil();
  for (size_t I = Steps.size(); I > 0; --I)
    StepCall = H.makePair(Steps[I - 1], StepCall);
  StepCall = H.makePair(LoopName, StepCall);

  Value Recur = Cmds.isNil()
                    ? StepCall
                    : H.makePair(WK.Begin,
                                 [&] {
                                   // Append StepCall after commands.
                                   std::vector<Value> Items;
                                   for (Value P = Cmds; P.isPair(); P = cdr(P))
                                     Items.push_back(car(P));
                                   Value L = list1(StepCall);
                                   for (size_t I = Items.size(); I > 0; --I)
                                     L = H.makePair(Items[I - 1], L);
                                   return L;
                                 }());

  Value ResultForms = cdr(TestClause);
  Value Result = ResultForms.isNil()
                     ? list1(H.intern("void"))
                     : H.makePair(WK.Begin, ResultForms);
  Value IfForm = H.makePair(
      WK.If, list3(car(TestClause), Result, Recur));

  Value Bindings = Value::nil();
  for (size_t I = Names.size(); I > 0; --I)
    Bindings = H.makePair(list2(Names[I - 1], Inits[I - 1]), Bindings);

  Value NamedLet = H.makePair(
      WK.Let, H.makePair(LoopName, H.makePair(Bindings, list1(IfForm))));
  return expand(NamedLet, S);
}

Value Expander::expandQuasiquote(Value Form, int Depth) {
  if (Form.isPair()) {
    Value Head = car(Form);
    if (Head.isSymbol() && Head == WK.Unquote && cdr(Form).isPair()) {
      if (Depth == 1)
        return car(cdr(Form));
      Value Inner = expandQuasiquote(car(cdr(Form)), Depth - 1);
      return list3(H.intern("list"), list2(WK.Quote, WK.Unquote), Inner);
    }
    if (Head.isSymbol() && Head == WK.Quasiquote && cdr(Form).isPair()) {
      Value Inner = expandQuasiquote(car(cdr(Form)), Depth + 1);
      return list3(H.intern("list"), list2(WK.Quote, WK.Quasiquote), Inner);
    }
    if (Head.isPair() && car(Head).isSymbol() &&
        car(Head) == WK.UnquoteSplicing && cdr(Head).isPair() && Depth == 1) {
      Value RestExp = expandQuasiquote(cdr(Form), Depth);
      return list3(H.intern("append"), car(cdr(Head)), RestExp);
    }
    Value CarExp = expandQuasiquote(Head, Depth);
    Value CdrExp = expandQuasiquote(cdr(Form), Depth);
    return list3(H.intern("cons"), CarExp, CdrExp);
  }
  if (Form.isVector()) {
    VectorObj *V = asVector(Form);
    Value AsList = Value::nil();
    for (uint32_t I = V->Len; I > 0; --I)
      AsList = H.makePair(V->Elems[I - 1], AsList);
    return list2(H.intern("list->vector"), expandQuasiquote(AsList, Depth));
  }
  return list2(WK.Quote, Form);
}

Node *Expander::expandWcm(Value Form, Scope *S) {
  // Paper section 7.1: with-continuation-mark expands into a consume of the
  // current frame's attachment followed by a set of the updated mark frame.
  Value Rest = cdr(Form);
  if (listLength(Rest) != 3)
    return fail("malformed with-continuation-mark");
  Value Key = car(Rest);
  Value Val = car(cdr(Rest));
  Value Body = car(cdr(cdr(Rest)));

  if (C.options().MarkStackWcm) {
    // Figure 5 comparator: compile straight onto the eager mark stack.
    Node *KeyN = expand(Key, S);
    Node *ValN = KeyN ? expand(Val, S) : nullptr;
    Node *BodyN = ValN ? expand(Body, S) : nullptr;
    if (!BodyN)
      return nullptr;
    AttachNode *N =
        Ctx.make<AttachNode>(AttachOp::MStkWcm, ValN, nullptr, BodyN);
    N->Key = KeyN;
    return N;
  }

  Value A = freshName("wcm-a");
  Value Update = H.makePair(
      H.intern("#%mark-frame-update"),
      list3(A, Key, Val));

  if (C.options().UseImitationAttachments) {
    // Figure 3 / section 8.3 "imitate": same shape, but through the
    // call/cc-based library. A get+set pair is equivalent to consume+set
    // here because the set already replaces a present attachment.
    Value SetForm = list3(
        H.intern("imitate-setting"), Update,
        H.makePair(WK.Lambda, list2(Value::nil(), Body)));
    Value GetForm = list3(
        H.intern("imitate-getting"), Value::False(),
        H.makePair(WK.Lambda, list2(list1(A), SetForm)));
    return expand(GetForm, S);
  }

  Value SetForm = list3(
      WK.CallSettingAttachment, Update,
      H.makePair(WK.Lambda, list2(Value::nil(), Body)));
  Value ConsumeForm = list3(
      WK.CallConsumingAttachment, Value::False(),
      H.makePair(WK.Lambda, list2(list1(A), SetForm)));
  return expand(ConsumeForm, S);
}

Node *Expander::expandParameterize(Value Form, Scope *S) {
  Value Rest = cdr(Form);
  if (!Rest.isPair())
    return fail("malformed parameterize");
  Value Bindings = car(Rest);
  Value Body = H.makePair(WK.Begin, cdr(Rest));

  // Evaluate parameter expressions and values left-to-right, then nest
  // with-continuation-mark forms (all marks land on the same frame).
  std::vector<Value> Temps, Params, Vals;
  for (Value B = Bindings; B.isPair(); B = cdr(B)) {
    Value Bind = car(B);
    if (!(Bind.isPair() && cdr(Bind).isPair()))
      return fail("malformed parameterize binding");
    Params.push_back(car(Bind));
    Vals.push_back(car(cdr(Bind)));
    Temps.push_back(freshName("param"));
  }

  Value Inner = Body;
  for (size_t I = Params.size(); I > 0; --I) {
    Value T = Temps[I - 1];
    Value KeyForm = list2(H.intern("#%parameter-key"), T);
    Value ValForm = list3(H.intern("#%parameter-convert"), T, Vals[I - 1]);
    Inner = H.makePair(WK.WithContinuationMark,
                       list3(KeyForm, ValForm, Inner));
  }
  Value LetBindings = Value::nil();
  for (size_t I = Params.size(); I > 0; --I)
    LetBindings = H.makePair(list2(Temps[I - 1], Params[I - 1]), LetBindings);
  Value LetForm = H.makePair(WK.Let, list2(LetBindings, Inner));
  return expand(LetForm, S);
}

Node *Expander::expandAttachPrim(AttachOp Op, Value Form, Scope *S) {
  if (C.options().UseImitationAttachments) {
    // Reroute to the figure 3 library functions.
    const char *Name = Op == AttachOp::Set       ? "imitate-setting"
                       : Op == AttachOp::Get     ? "imitate-getting"
                                                 : "imitate-consuming";
    Value Rewritten = H.makePair(H.intern(Name), cdr(Form));
    return expandCall(Rewritten, S);
  }

  Value Rest = cdr(Form);
  if (listLength(Rest) != 2)
    return expandCall(Form, S); // Wrong arity: let the generic native fail.
  Value ValForm = car(Rest);
  Value Proc = car(cdr(Rest));

  // Footnote 5: the compiler recognizes only uses with an immediate lambda.
  bool Immediate = Proc.isPair() && car(Proc).isSymbol() &&
                   car(Proc) == WK.Lambda && !lookup(S, WK.Lambda);
  if (!Immediate || !C.options().EnableAttachments)
    return expandCall(Form, S);

  Value Params = cdr(Proc).isPair() ? car(cdr(Proc)) : Value::nil();
  Value Body = cdr(Proc).isPair() ? cdr(cdr(Proc)) : Value::nil();
  int64_t NParams = listLength(Params);
  int64_t Wanted = Op == AttachOp::Set ? 0 : 1;
  if (NParams != Wanted)
    return expandCall(Form, S);

  Node *ValN = expand(ValForm, S);
  if (!ValN)
    return nullptr;

  Scope Inner;
  Inner.Parent = S;
  Var *BodyVar = nullptr;
  if (Op != AttachOp::Set) {
    BodyVar = Ctx.makeVar(car(Params));
    Inner.Bindings[car(Params).raw()] = BodyVar;
  }
  Node *BodyN = expandBody(Body, &Inner);
  if (!BodyN)
    return nullptr;
  return Ctx.make<AttachNode>(Op, ValN, BodyVar, BodyN);
}
