//===- compiler/compiler.cpp - Pipeline driver -----------------*- C++ -*-===//

#include "compiler/compiler.h"

#include "compiler/expand.h"
#include "runtime/heap.h"
#include "runtime/printer.h"
#include "runtime/symbols.h"

using namespace cmk;

/// Keeps macro patterns/templates alive across collections.
class Compiler::MacroRoots : public GCRootSource {
public:
  explicit MacroRoots(Compiler &C, Heap &H) : C(C), H(H) {
    H.addRootSource(this);
  }
  ~MacroRoots() override { H.removeRootSource(this); }

  void traceRoots(Heap &Heap) override {
    for (const MacroDef &M : C.Macros) {
      Heap.traceValue(M.Pattern);
      Heap.traceValue(M.Template);
    }
  }

private:
  Compiler &C;
  Heap &H;
};

Compiler::Compiler(Heap &H, WellKnown &WK, GlobalEnv &Globals,
                   CompilerOptions Opts)
    : H(H), WK(WK), Globals(Globals), Opts(Opts) {
  MacroRootSource = std::make_unique<MacroRoots>(*this, H);
}

Compiler::~Compiler() = default;

const Compiler::MacroDef *Compiler::findMacro(Value NameSym) const {
  for (const MacroDef &M : Macros)
    if (car(M.Pattern) == NameSym)
      return &M;
  return nullptr;
}

bool Compiler::defineSyntaxRule(Value Spec, std::string *ErrOut) {
  // (define-syntax-rule (name . pattern) template)
  Value Rest = cdr(Spec);
  if (listLength(Rest) != 2 || !car(Rest).isPair() ||
      !car(car(Rest)).isSymbol()) {
    if (ErrOut)
      *ErrOut = "malformed define-syntax-rule";
    return false;
  }
  Macros.push_back({car(Rest), car(cdr(Rest))});
  return true;
}

Value Compiler::compileToplevel(Value Form, std::string *ErrOut) {
  // Compilation allocates freely (expansion builds sexps, codegen builds
  // code objects); pausing the collector makes rooting trivial and bounds
  // retained garbage by the program size.
  GCPauseScope Pause(H);

  AstContext Ctx;
  Expander Exp(H, WK, Ctx, *this);
  LambdaNode *Toplevel = Exp.expandToplevel(Form);
  if (!Toplevel) {
    if (ErrOut)
      *ErrOut = Exp.error().empty() ? "expansion failed" : Exp.error();
    return Value::undefined();
  }

  Node *Simplified = runCp0(Ctx, Toplevel, Opts, WK);
  CMK_CHECK(Simplified->K == NodeKind::Lambda,
            "cp0 must preserve the toplevel lambda");
  Toplevel = static_cast<LambdaNode *>(Simplified);

  LastStats = AttachPassStats();
  runAttachmentPass(WK, Toplevel, Opts, LastStats);
  runFreeVarsPass(Toplevel);

  std::string CgErr;
  Value Code = runCodegen(H, Globals, WK, Toplevel, Opts, &CgErr);
  if (!CgErr.empty()) {
    if (ErrOut)
      *ErrOut = CgErr;
    return Value::undefined();
  }
  return Code;
}
