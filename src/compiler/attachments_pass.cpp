//===- compiler/attachments_pass.cpp - Categorize attachment ops -*- C++ -*-==//
///
/// \file
/// Implements the analysis of paper section 7.2: each recognized
/// call-*-continuation-attachment form is placed in one of three categories
/// based on its position. The code generator re-derives the same structure
/// while emitting; this pass records the categories on the nodes (and
/// aggregate statistics) so tests can verify the classification directly.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"

#include "runtime/symbols.h"

using namespace cmk;

// True if some tail position of N is a call that is not an inlinable
// primitive application. Such a call forces the "non-tail with tail call in
// body" treatment (paper 7.2), because the callee's frame must carry/pop
// the attachment via an underflow record.
bool cmk::bodyHasTailCall(const WellKnown &WK, Node *N,
                          const CompilerOptions &Opts) {
  switch (N->K) {
  case NodeKind::Const:
  case NodeKind::LocalRef:
  case NodeKind::GlobalRef:
  case NodeKind::LocalSet:
  case NodeKind::GlobalSet:
  case NodeKind::Lambda:
    return false;
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    return bodyHasTailCall(WK, I->Then, Opts) ||
           bodyHasTailCall(WK, I->Else, Opts);
  }
  case NodeKind::Begin:
    return bodyHasTailCall(WK, static_cast<BeginNode *>(N)->Body.back(), Opts);
  case NodeKind::Let:
    return bodyHasTailCall(WK, static_cast<LetNode *>(N)->Body, Opts);
  case NodeKind::Call: {
    auto *C = static_cast<CallNode *>(N);
    if (Opts.EnablePrimRecognition && Opts.InlinePrimitives &&
        C->Fn->K == NodeKind::GlobalRef &&
        isInlinablePrim(WK, asGlobalRef(C->Fn)->Sym))
      return false; // Paper: "+ does not tail-call any function that might
                    // inspect or manipulate continuation attachments".
    return true;
  }
  case NodeKind::Attach:
    return bodyHasTailCall(WK, static_cast<AttachNode *>(N)->Body, Opts);
  }
  CMK_UNREACHABLE("unhandled node kind");
}

namespace {

class AttachmentPass {
public:
  AttachmentPass(const WellKnown &WK, const CompilerOptions &Opts,
                 AttachPassStats &Stats)
      : WK(WK), Opts(Opts), Stats(Stats) {}

  void walk(Node *N, bool Tail) {
    switch (N->K) {
    case NodeKind::Const:
    case NodeKind::LocalRef:
    case NodeKind::GlobalRef:
      return;
    case NodeKind::LocalSet:
      walk(static_cast<LocalSetNode *>(N)->Rhs, false);
      return;
    case NodeKind::GlobalSet:
      walk(static_cast<GlobalSetNode *>(N)->Rhs, false);
      return;
    case NodeKind::If: {
      auto *I = static_cast<IfNode *>(N);
      walk(I->Test, false);
      walk(I->Then, Tail);
      walk(I->Else, Tail);
      return;
    }
    case NodeKind::Begin: {
      auto *B = static_cast<BeginNode *>(N);
      for (size_t I = 0; I < B->Body.size(); ++I)
        walk(B->Body[I], Tail && I + 1 == B->Body.size());
      return;
    }
    case NodeKind::Let: {
      auto *L = static_cast<LetNode *>(N);
      for (Node *I : L->Inits)
        walk(I, false);
      walk(L->Body, Tail);
      return;
    }
    case NodeKind::Lambda:
      walk(static_cast<LambdaNode *>(N)->Body, /*Tail=*/true);
      return;
    case NodeKind::Call: {
      auto *C = static_cast<CallNode *>(N);
      walk(C->Fn, false);
      for (Node *A : C->Args)
        walk(A, false);
      return;
    }
    case NodeKind::Attach: {
      auto *A = static_cast<AttachNode *>(N);
      if (A->Key)
        walk(A->Key, false);
      walk(A->ValOrDflt, false);
      if (A->Op == AttachOp::MStkWcm) {
        walk(A->Body, Tail);
        return;
      }
      if (Tail) {
        A->Category = AttachCategory::Tail;
        ++Stats.TailOps;
        // Consume-set fusion: with-continuation-mark's expansion puts a
        // set directly in the tail of a consume; the set can skip its
        // reification check because the consume already reified.
        if (A->Op != AttachOp::Set && A->Body->K == NodeKind::Attach) {
          auto *Inner = static_cast<AttachNode *>(A->Body);
          if (Inner->Op == AttachOp::Set) {
            Inner->StateBefore = AttachState::Absent; // Known reified.
            ++Stats.FusedConsumeSet;
          }
        }
        walk(A->Body, /*Tail=*/true);
        return;
      }
      bool HasCall = bodyHasTailCall(WK, A->Body, Opts);
      A->Category = HasCall ? AttachCategory::NonTailWithCall
                            : AttachCategory::NonTailNoCall;
      if (HasCall)
        ++Stats.NonTailWithCallOps;
      else
        ++Stats.NonTailNoCallOps;
      walk(A->Body, false);
      return;
    }
    }
    CMK_UNREACHABLE("unhandled node kind");
  }

private:
  const WellKnown &WK;
  const CompilerOptions &Opts;
  AttachPassStats &Stats;
};

} // namespace

void cmk::runAttachmentPass(const WellKnown &WK, Node *N,
                            const CompilerOptions &Opts,
                            AttachPassStats &Stats) {
  AttachmentPass Pass(WK, Opts, Stats);
  Pass.walk(N, /*Tail=*/true);
}
