//===- compiler/expand.h - Source-to-core expander ------------*- C++ -*-===//
///
/// \file
/// Expands the surface language (derived forms, pattern macros,
/// with-continuation-mark, parameterize) into the core AST. Recognition of
/// the continuation-attachment primitives applied to immediate lambdas
/// (paper footnote 5) happens here, gated by CompilerOptions.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_COMPILER_EXPAND_H
#define CMARKS_COMPILER_EXPAND_H

#include "compiler/ast.h"
#include "compiler/compiler.h"

#include <string>
#include <unordered_map>

namespace cmk {

class Expander {
public:
  Expander(Heap &H, const WellKnown &WK, AstContext &Ctx, Compiler &C);

  /// Expands a toplevel form into the body of a zero-argument lambda.
  /// Returns null and sets the error message on failure.
  LambdaNode *expandToplevel(Value Form);

  const std::string &error() const { return Err; }

private:
  struct Scope {
    std::unordered_map<uint64_t, Var *> Bindings;
    Scope *Parent = nullptr;
  };

  Var *lookup(Scope *S, Value Sym) const;

  Node *expand(Value Form, Scope *S);
  Node *expandToplevelForm(Value Form);
  Node *expandCall(Value Form, Scope *S);
  Node *expandBody(Value Forms, Scope *S); ///< Handles internal defines.
  Node *expandSequence(Value Forms, Scope *S);
  Node *expandLambda(Value Params, Value Body, Scope *S, Value Name);
  Node *expandLet(Value Form, Scope *S);
  Node *expandLetStar(Value Form, Scope *S);
  Node *expandLetrec(Value Form, Scope *S);
  Node *expandNamedLet(Value Name, Value Bindings, Value Body, Scope *S);
  Node *expandCond(Value Clauses, Scope *S);
  Node *expandCase(Value Form, Scope *S);
  Node *expandAnd(Value Forms, Scope *S);
  Node *expandOr(Value Forms, Scope *S);
  Node *expandDo(Value Form, Scope *S);
  Node *expandWcm(Value Form, Scope *S);
  Node *expandParameterize(Value Form, Scope *S);
  Node *expandAttachPrim(AttachOp Op, Value Form, Scope *S);
  Value expandQuasiquote(Value Form, int Depth);

  Node *fail(const std::string &Msg);
  Value freshName(const char *Prefix);

  // Sexp helpers.
  Value list1(Value A);
  Value list2(Value A, Value B);
  Value list3(Value A, Value B, Value C);

  Heap &H;
  const WellKnown &WK;
  AstContext &Ctx;
  Compiler &C;
  std::string Err;
};

} // namespace cmk

#endif // CMARKS_COMPILER_EXPAND_H
