//===- compiler/bytecode.cpp ----------------------------------*- C++ -*-===//

#include "compiler/bytecode.h"

#include "support/debug.h"

using namespace cmk;

const char *cmk::opName(Op O) {
  switch (O) {
  case Op::PushConst:
    return "push-const";
  case Op::PushLocal:
    return "push-local";
  case Op::SetLocal:
    return "set-local";
  case Op::PushLocalBox:
    return "push-local-box";
  case Op::SetLocalBox:
    return "set-local-box";
  case Op::PushFree:
    return "push-free";
  case Op::PushFreeBox:
    return "push-free-box";
  case Op::SetFreeBox:
    return "set-free-box";
  case Op::BoxLocal:
    return "box-local";
  case Op::PushGlobal:
    return "push-global";
  case Op::SetGlobal:
    return "set-global";
  case Op::DefineGlobal:
    return "define-global";
  case Op::Pop:
    return "pop";
  case Op::Dup:
    return "dup";
  case Op::MakeClosure:
    return "make-closure";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jump-if-false";
  case Op::Frame:
    return "frame";
  case Op::Call:
    return "call";
  case Op::TailCall:
    return "tail-call";
  case Op::CallAttach:
    return "call-attach";
  case Op::Return:
    return "return";
  case Op::Reify:
    return "reify";
  case Op::AttachSet:
    return "attach-set";
  case Op::AttachGet:
    return "attach-get";
  case Op::AttachConsume:
    return "attach-consume";
  case Op::MarksPush:
    return "marks-push";
  case Op::MarksPop:
    return "marks-pop";
  case Op::MarksSetTop:
    return "marks-set-top";
  case Op::MarksTop:
    return "marks-top";
  case Op::PushMarks:
    return "push-marks";
  case Op::MstkSet:
    return "mstk-set";
  case Op::MstkPush:
    return "mstk-push";
  case Op::MstkPop:
    return "mstk-pop";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::NumLt:
    return "lt";
  case Op::NumLe:
    return "le";
  case Op::NumGt:
    return "gt";
  case Op::NumGe:
    return "ge";
  case Op::NumEq:
    return "num-eq";
  case Op::Cons:
    return "cons";
  case Op::Car:
    return "car";
  case Op::Cdr:
    return "cdr";
  case Op::SetCarBang:
    return "set-car!";
  case Op::SetCdrBang:
    return "set-cdr!";
  case Op::NullP:
    return "null?";
  case Op::PairP:
    return "pair?";
  case Op::Not:
    return "not";
  case Op::EqP:
    return "eq?";
  case Op::ZeroP:
    return "zero?";
  case Op::Add1:
    return "add1";
  case Op::Sub1:
    return "sub1";
  case Op::VectorRef:
    return "vector-ref";
  case Op::VectorSet:
    return "vector-set!";
  case Op::Halt:
    return "halt";
  }
  CMK_UNREACHABLE("unknown opcode");
}

int cmk::opOperandBytes(Op O) {
  switch (O) {
  case Op::PushConst:
  case Op::PushLocal:
  case Op::SetLocal:
  case Op::PushLocalBox:
  case Op::SetLocalBox:
  case Op::PushFree:
  case Op::PushFreeBox:
  case Op::SetFreeBox:
  case Op::BoxLocal:
  case Op::PushGlobal:
  case Op::SetGlobal:
  case Op::DefineGlobal:
  case Op::Call:
  case Op::TailCall:
  case Op::CallAttach:
    return 2;
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::MakeClosure:
    return 4;
  default:
    return 0;
  }
}
