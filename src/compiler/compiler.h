//===- compiler/compiler.h - Compiler driver and options ------*- C++ -*-===//
///
/// \file
/// The compilation pipeline: expand -> cp0 -> attachment pass -> free-var
/// analysis -> codegen. CompilerOptions carries the variant switches used
/// throughout the paper's evaluation:
///
///  - EnableAttachments  off = the "no opt" variant of figure 6 (attachment
///    primitives compile as ordinary calls to the generic natives);
///  - EnablePrimRecognition  off = the "no prim" variant (inlined primitive
///    applications no longer enable the direct push/pop category);
///  - AttachmentConstraint  off = pre-attachment cp0 behaviour (the "unmod"
///    compiler of section 8.2, which may elide observable frames);
///  - EnableCp0  off = no source-level simplification at all.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_COMPILER_COMPILER_H
#define CMARKS_COMPILER_COMPILER_H

#include "compiler/ast.h"
#include "runtime/value.h"

#include <string>

namespace cmk {

class Heap;
class WellKnown;

struct CompilerOptions {
  bool EnableAttachments = true;
  bool EnablePrimRecognition = true;
  bool AttachmentConstraint = true;
  bool EnableCp0 = true;
  bool InlinePrimitives = true;
  /// Compile with-continuation-mark onto the old-Racket-style eager mark
  /// stack instead of attachments (the figure 5 comparator). Must match
  /// VMConfig::MarkStackMode.
  bool MarkStackWcm = false;
  /// Route attachment operations through the figure 3 call/cc-based
  /// imitation library instead of the built-in support (the "imitate"
  /// columns of figure 4 and section 8.4). The engine loads the library
  /// and points the marks layer at its attachment stack.
  bool UseImitationAttachments = false;
  /// Run the post-codegen peephole pass (compiler/peephole.cpp): fuses
  /// dominant opcode pairs into superinstructions and elides the marks
  /// cons for straight-line category-(c) extents. Off = the exact
  /// codegen output, used by the differential tests.
  bool EnablePeephole = true;
};

/// Resolves toplevel names to mutable global cells (boxes). Implemented by
/// the VM; the code generator embeds the cells in constant pools.
class GlobalEnv {
public:
  virtual ~GlobalEnv() = default;
  virtual Value globalCell(Value Sym) = 0;
};

/// Statistics the attachment pass reports, used by tests to pin down which
/// category (paper 7.2) each attachment operation landed in.
struct AttachPassStats {
  int TailOps = 0;
  int NonTailWithCallOps = 0;
  int NonTailNoCallOps = 0;
  int FusedConsumeSet = 0;
};

class Compiler {
public:
  Compiler(Heap &H, WellKnown &WK, GlobalEnv &Globals, CompilerOptions Opts);
  ~Compiler();

  /// Compiles one toplevel form to a zero-argument closure (as a Value).
  /// Returns undefined and fills *ErrOut on a compile error.
  Value compileToplevel(Value Form, std::string *ErrOut);

  /// Defines a pattern macro: (define-syntax-rule (name . pattern) template).
  /// The expander consults the macro table on every head position.
  bool defineSyntaxRule(Value Spec, std::string *ErrOut);

  const CompilerOptions &options() const { return Opts; }
  const AttachPassStats &lastAttachStats() const { return LastStats; }

  /// Disassembles compiled code for tests and debugging.
  static std::string disassemble(Value CodeVal);

private:
  friend class Expander;

  Heap &H;
  WellKnown &WK;
  GlobalEnv &Globals;
  CompilerOptions Opts;
  AttachPassStats LastStats;

  // Macro table: list of (pattern . template) pairs, rooted.
  struct MacroDef {
    Value Pattern;  ///< (name . pattern-forms)
    Value Template;
  };
  std::vector<MacroDef> Macros;
  class MacroRoots;
  std::unique_ptr<MacroRoots> MacroRootSource;

  const MacroDef *findMacro(Value NameSym) const;
};

// --- Pass entry points (exposed for unit tests) -----------------------------

/// cp0: source-level simplification with the section 7.4 constraint.
Node *runCp0(AstContext &Ctx, Node *N, const CompilerOptions &Opts,
             const WellKnown &WK);

/// Assigns attachment categories (paper 7.2) and detects consume-set fusion.
void runAttachmentPass(const WellKnown &WK, Node *N,
                       const CompilerOptions &Opts, AttachPassStats &Stats);

/// True if some tail position of \p N is a call that is not an inlinable
/// primitive application (shared between the attachment pass and codegen).
bool bodyHasTailCall(const WellKnown &WK, Node *N, const CompilerOptions &Opts);

/// Computes free variables and capture flags for every lambda.
void runFreeVarsPass(LambdaNode *Toplevel);

/// Generates code for a toplevel (zero-argument) lambda.
Value runCodegen(Heap &H, GlobalEnv &Globals, const WellKnown &WK,
                 LambdaNode *Toplevel, const CompilerOptions &Opts,
                 std::string *ErrOut);

/// True if \p Sym names a primitive the code generator can inline and that
/// is known not to inspect or change continuation attachments (paper 7.2).
bool isInlinablePrim(const WellKnown &WK, Value Sym);

/// Counters the peephole pass reports (exposed for tests).
struct PeepholeStats {
  int PairsFused = 0;
  int MarkExtentsElided = 0;
};

/// Post-codegen peephole pass: superinstruction fusion and category-(c)
/// mark-extent elision over one function's bytecode. Pure function of the
/// input bytes; jump operands are remapped to the rewritten layout.
std::vector<uint8_t> runPeephole(const std::vector<uint8_t> &In,
                                 PeepholeStats *StatsOut = nullptr);

} // namespace cmk

#endif // CMARKS_COMPILER_COMPILER_H
