//===- compiler/ast.h - Core-language AST ---------------------*- C++ -*-===//
///
/// \file
/// The core language the expander lowers to and that cp0, the attachment
/// pass, and the code generator operate on. Nodes are arena-owned by an
/// AstContext; variables are unique Var objects resolved during expansion.
///
/// Continuation-attachment operations (paper 7.1) appear as dedicated
/// AttachNode forms when the compiler recognizes a primitive applied to an
/// immediate lambda; other uses stay ordinary calls to the generic natives
/// (footnote 5).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_COMPILER_AST_H
#define CMARKS_COMPILER_AST_H

#include "runtime/value.h"

#include <memory>
#include <string>
#include <vector>

namespace cmk {

enum class NodeKind : uint8_t {
  Const,
  LocalRef,  ///< Reference to a lexical variable.
  GlobalRef, ///< Reference to a toplevel binding.
  LocalSet,
  GlobalSet,
  If,
  Begin,
  Let,    ///< Parallel let (letrec is lowered to let + set!).
  Lambda,
  Call,
  Attach, ///< Recognized call-*-continuation-attachment with immediate lambda.
};

/// Attachment operation kinds (paper 7.1). MStkWcm is not an attachment
/// operation at all: it is with-continuation-mark compiled for the
/// old-Racket-style mark-stack mode (the figure 5 comparator).
enum class AttachOp : uint8_t {
  Set,     ///< call-setting-continuation-attachment
  Get,     ///< call-getting-continuation-attachment
  Consume, ///< call-consuming-continuation-attachment
  MStkWcm, ///< with-continuation-mark on the eager mark stack.
};

/// Position category assigned by the attachment pass (paper 7.2).
enum class AttachCategory : uint8_t {
  Unassigned,
  Tail,              ///< In tail position of the enclosing function.
  NonTailWithCall,   ///< Not tail, but body contains a (true) tail call.
  NonTailNoCall,     ///< Not tail, body has no tail call: pure push/pop.
};

/// Static knowledge about whether the current conceptual frame already has
/// an attachment at a program point (paper 7.2: "the compiler will be able
/// to tell statically whether an attachment is present").
enum class AttachState : uint8_t {
  Unknown,
  Absent,
  Present,
};

/// A unique lexical variable binding.
struct Var {
  Value Name;        ///< Symbol, for diagnostics.
  bool Mutated = false;  ///< Target of set!; mutated vars are boxed.
  bool Captured = false; ///< Appears free in a nested lambda.
  int Slot = -1;         ///< Local slot index, assigned by codegen.
  int FreeIndex = -1;    ///< Index in the enclosing closure, when free.

  bool boxed() const { return Mutated; }
};

struct Node {
  explicit Node(NodeKind K) : K(K) {}
  virtual ~Node() = default; // Nodes are owned as Node* by AstContext.
  NodeKind K;
};

struct ConstNode : Node {
  explicit ConstNode(Value V) : Node(NodeKind::Const), V(V) {}
  Value V;
};

struct LocalRefNode : Node {
  explicit LocalRefNode(Var *V) : Node(NodeKind::LocalRef), V(V) {}
  Var *V;
};

struct GlobalRefNode : Node {
  explicit GlobalRefNode(Value Sym) : Node(NodeKind::GlobalRef), Sym(Sym) {}
  Value Sym;
};

struct LocalSetNode : Node {
  LocalSetNode(Var *V, Node *Rhs) : Node(NodeKind::LocalSet), V(V), Rhs(Rhs) {}
  Var *V;
  Node *Rhs;
};

struct GlobalSetNode : Node {
  GlobalSetNode(Value Sym, Node *Rhs, bool IsDefine)
      : Node(NodeKind::GlobalSet), Sym(Sym), Rhs(Rhs), IsDefine(IsDefine) {}
  Value Sym;
  Node *Rhs;
  bool IsDefine; ///< define creates the binding; set! requires it.
};

struct IfNode : Node {
  IfNode(Node *Test, Node *Then, Node *Else)
      : Node(NodeKind::If), Test(Test), Then(Then), Else(Else) {}
  Node *Test;
  Node *Then;
  Node *Else;
};

struct BeginNode : Node {
  explicit BeginNode(std::vector<Node *> Body)
      : Node(NodeKind::Begin), Body(std::move(Body)) {}
  std::vector<Node *> Body; ///< Non-empty; last expression is the value.
};

struct LetNode : Node {
  LetNode(std::vector<Var *> Vars, std::vector<Node *> Inits, Node *Body)
      : Node(NodeKind::Let), Vars(std::move(Vars)), Inits(std::move(Inits)),
        Body(Body) {}
  std::vector<Var *> Vars;
  std::vector<Node *> Inits;
  Node *Body;
};

struct LambdaNode : Node {
  LambdaNode(std::vector<Var *> Params, bool HasRest, Node *Body, Value Name)
      : Node(NodeKind::Lambda), Params(std::move(Params)), HasRest(HasRest),
        Body(Body), Name(Name) {}
  std::vector<Var *> Params; ///< Includes the rest parameter last, if any.
  bool HasRest;
  Node *Body;
  Value Name;

  /// Free variables, filled by the free-variable pass (outermost lambda
  /// excluded); order defines closure slot layout.
  std::vector<Var *> FreeVars;
};

struct CallNode : Node {
  CallNode(Node *Fn, std::vector<Node *> Args)
      : Node(NodeKind::Call), Fn(Fn), Args(std::move(Args)) {}
  Node *Fn;
  std::vector<Node *> Args;
};

struct AttachNode : Node {
  AttachNode(AttachOp Op, Node *ValOrDflt, Var *BodyVar, Node *Body)
      : Node(NodeKind::Attach), Op(Op), ValOrDflt(ValOrDflt), BodyVar(BodyVar),
        Body(Body) {}
  AttachOp Op;
  Node *ValOrDflt; ///< The value (Set) or default (Get/Consume) expression.
  Var *BodyVar;    ///< Get/Consume bind the attachment here; null for Set.
  Node *Body;      ///< Evaluated in tail position of the attach form.
  Node *Key = nullptr; ///< MStkWcm only: the mark key expression.

  // Filled by the attachment pass (paper 7.2).
  AttachCategory Category = AttachCategory::Unassigned;
  AttachState StateBefore = AttachState::Unknown;
};

/// Owns every node and variable of one compilation unit.
class AstContext {
public:
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Owned.get();
    Nodes.push_back(std::move(Owned));
    return Raw;
  }

  Var *makeVar(Value Name) {
    auto Owned = std::make_unique<Var>();
    Owned->Name = Name;
    Var *Raw = Owned.get();
    Vars.push_back(std::move(Owned));
    return Raw;
  }

private:
  std::vector<std::unique_ptr<Node>> Nodes;
  std::vector<std::unique_ptr<Var>> Vars;
};

// Checked downcasts, LLVM-style.
template <typename T> T *nodeCast(Node *N, NodeKind K) {
  assert(N && N->K == K && "node kind mismatch");
  return static_cast<T *>(N);
}

inline ConstNode *asConst(Node *N) {
  return nodeCast<ConstNode>(N, NodeKind::Const);
}
inline LocalRefNode *asLocalRef(Node *N) {
  return nodeCast<LocalRefNode>(N, NodeKind::LocalRef);
}
inline GlobalRefNode *asGlobalRef(Node *N) {
  return nodeCast<GlobalRefNode>(N, NodeKind::GlobalRef);
}
inline LocalSetNode *asLocalSet(Node *N) {
  return nodeCast<LocalSetNode>(N, NodeKind::LocalSet);
}
inline GlobalSetNode *asGlobalSet(Node *N) {
  return nodeCast<GlobalSetNode>(N, NodeKind::GlobalSet);
}
inline IfNode *asIf(Node *N) { return nodeCast<IfNode>(N, NodeKind::If); }
inline BeginNode *asBegin(Node *N) {
  return nodeCast<BeginNode>(N, NodeKind::Begin);
}
inline LetNode *asLet(Node *N) { return nodeCast<LetNode>(N, NodeKind::Let); }
inline LambdaNode *asLambda(Node *N) {
  return nodeCast<LambdaNode>(N, NodeKind::Lambda);
}
inline CallNode *asCall(Node *N) {
  return nodeCast<CallNode>(N, NodeKind::Call);
}
inline AttachNode *asAttach(Node *N) {
  return nodeCast<AttachNode>(N, NodeKind::Attach);
}

} // namespace cmk

#endif // CMARKS_COMPILER_AST_H
