//===- compiler/bytecode.h - Instruction set -------------------*- C++ -*-===//
///
/// \file
/// The VM's bytecode instruction set. Encoding: one opcode byte followed by
/// little-endian fixed-width operands (u16 unless noted). Jump targets are
/// absolute byte offsets (u32).
///
/// The attachment opcodes implement the three position categories of paper
/// section 7.2: MarksPush/MarksPop/MarksSetTop/MarksTop are the "no function
/// call involved" category that operates directly on the marks register;
/// Reify/AttachSet/AttachGet/AttachConsume are the tail-position category
/// that must consult the underflow record; and CallAttach is the
/// "non-tail with a tail call in the body" category that installs the
/// popped marks list in a fresh underflow record at the call.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_COMPILER_BYTECODE_H
#define CMARKS_COMPILER_BYTECODE_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace cmk {

enum class Op : uint8_t {
  // Stack and variable access.
  PushConst,    ///< u16 const-pool index.
  PushLocal,    ///< u16 local slot.
  SetLocal,     ///< u16 local slot; pops.
  PushLocalBox, ///< u16 local slot holding a box; pushes box contents.
  SetLocalBox,  ///< u16; pops into box contents.
  PushFree,     ///< u16 closure free-slot.
  PushFreeBox,  ///< u16; free slot holds a box; pushes contents.
  SetFreeBox,   ///< u16; pops into box contents.
  BoxLocal,     ///< u16; wraps slot value in a fresh box.
  PushGlobal,   ///< u16 const index of the global cell; error if unbound.
  SetGlobal,    ///< u16 const index of the global cell; pops.
  DefineGlobal, ///< u16 const index of the global cell; pops; always binds.
  Pop,
  Dup,
  MakeClosure, ///< u16 const index of code, u16 free count; pops free values.

  // Control.
  Jump,        ///< u32 absolute target.
  JumpIfFalse, ///< u32 absolute target; pops.
  Frame,       ///< Pushes the 3 header slots of a new frame.
  Call,        ///< u16 argc. Stack: header, fn, args...
  TailCall,    ///< u16 argc. Reuses the current frame.
  CallAttach,  ///< u16 argc. Category-(b) call: reifies the continuation at
               ///< the new frame and installs (rest marks) in the record.
  Return,

  // Continuation attachments (paper 7.1/7.2).
  Reify,         ///< Ensure the current frame's continuation is reified.
  AttachSet,     ///< Pops v; marks := cons(v, nextk.marks). Frame is reified.
  AttachGet,     ///< Pops dflt; pushes frame attachment or dflt.
  AttachConsume, ///< Like AttachGet but also pops the attachment.
  MarksPush,     ///< Pops v; marks := cons(v, marks).
  MarksPop,      ///< marks := cdr(marks).
  MarksSetTop,   ///< Pops v; marks := cons(v, cdr(marks)).
  MarksTop,      ///< Pushes car(marks).
  PushMarks,     ///< Pushes the marks register (a list).

  // Old-Racket-style mark stack (MarkStackMode comparator).
  MstkSet,  ///< Pops val, key; replaces the current frame's entry for key
            ///< or pushes a new entry tagged with the frame.
  MstkPush, ///< Pops val, key; always pushes a new entry.
  MstkPop,  ///< Pops the newest mark-stack entry.

  // Inlined primitives. All pop operands and push the result.
  Add,
  Sub,
  Mul,
  NumLt,
  NumLe,
  NumGt,
  NumGe,
  NumEq,
  Cons,
  Car,
  Cdr,
  SetCarBang,
  SetCdrBang,
  NullP,
  PairP,
  Not,
  EqP,
  ZeroP,
  Add1,
  Sub1,
  VectorRef,
  VectorSet,

  Halt, ///< Used only by the toplevel driver.

  // Superinstructions (compiler/peephole.cpp). The code generator never
  // emits these directly; the peephole pass fuses the dominant opcode
  // sequences of the bench suite after codegen, and both dispatchers
  // decode them. Fusion never crosses a jump target or a category-(a)/(b)
  // attachment boundary (Reify/AttachSet/AttachGet/AttachConsume/
  // CallAttach), so fused code is observationally identical to unfused.
  LocalLocal,    ///< u16 a, u16 b: push local a, then local b.
  LocalConst,    ///< u16 slot, u16 const: push local, then constant.
  AddLocalConst, ///< u16 slot, u16 const: push (+ local const).
  SubLocalConst, ///< u16 slot, u16 const: push (- local const).
  LocalPrim,     ///< u16 slot, u8 prim opcode: push local, run the
                 ///< embedded inlined primitive in the same dispatch.
  ConstCall,     ///< u16 const, u16 argc: push constant (the callee's last
                 ///< argument), then Call argc.
  JumpIfNotZeroLocal, ///< u16 slot, u32 target: the (zero? local) branch
                      ///< of a loop header; jumps when local is non-zero.
  MarksEnterElided,   ///< Pops v, discards it: a MarksPush whose extent
                      ///< provably contains no call, jump, or attachment
                      ///< operation, so the cons is elided (paper 7.2
                      ///< category (c) driven to zero allocations). Still
                      ///< records the MarksPush trace event.
  MarksExitElided,    ///< The matching MarksPop: no register change.

  OpCount, ///< Sentinel: number of opcodes (dispatch-table size).
};

/// Returns a human-readable opcode name for the disassembler.
const char *opName(Op O);

/// Operand byte counts for decoding: 0, 2 (u16), 3 (u16+u8), 4 (u32 or
/// 2xu16), or 6 (u16+u32).
int opOperandBytes(Op O);

/// Append-only instruction buffer used by the code generator.
class BytecodeBuffer {
public:
  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }

  void emitOp(Op O) { Bytes.push_back(static_cast<uint8_t>(O)); }

  void emitU16(uint16_t V) {
    Bytes.push_back(V & 0xFF);
    Bytes.push_back(V >> 8);
  }

  void emitU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back((V >> (8 * I)) & 0xFF);
  }

  /// Emits a u32 placeholder and returns its offset for later patching.
  size_t emitJumpSlot() {
    size_t At = Bytes.size();
    emitU32(0);
    return At;
  }

  void patchU32(size_t At, uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes[At + I] = (V >> (8 * I)) & 0xFF;
  }

private:
  std::vector<uint8_t> Bytes;
};

inline uint16_t readU16(const uint8_t *P) {
  uint16_t V;
  std::memcpy(&V, P, 2);
  return V;
}

inline uint32_t readU32(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

} // namespace cmk

#endif // CMARKS_COMPILER_BYTECODE_H
