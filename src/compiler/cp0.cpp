//===- compiler/cp0.cpp - Source-level simplification ---------*- C++ -*-===//
///
/// \file
/// A cp0-style simplifier: constant folding, if/begin simplification,
/// beta-reduction of immediately applied lambdas, and let elimination.
/// Two behaviours from the paper live here:
///
///  * Section 7.4: the simplification (let ([x E]) x) => E is disabled when
///    the let is in tail position and E could be observed through
///    continuation attachments, because eliding the binding would move E
///    into tail position and change which frame carries marks. The "unmod"
///    compiler variant (AttachmentConstraint = false) keeps the aggressive
///    rule.
///
///  * Section 7.3: a with-continuation-mark whose body cannot inspect marks
///    (after expansion: an attachment set whose body is a constant or
///    variable reference) is removed entirely when the mark value
///    expression is pure, so (let ([x 5]) (with-continuation-mark 'k 'v x))
///    folds to 5.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"

#include "runtime/heap.h"
#include "runtime/numbers.h"
#include "runtime/symbols.h"

#include <unordered_set>

using namespace cmk;

namespace {

class Cp0 {
public:
  Cp0(AstContext &Ctx, const CompilerOptions &Opts, const WellKnown &WK)
      : Ctx(Ctx), Opts(Opts), WK(WK) {}

  Node *simplify(Node *N, bool Tail);

private:
  Node *simplifyLet(LetNode *L, bool Tail);
  Node *simplifyCall(CallNode *C, bool Tail);
  Node *foldPrim(Value Sym, const std::vector<Node *> &Args);

  bool isPure(Node *N) const;
  /// True if evaluating \p N could observe or change attachment state:
  /// conservatively, any call or attachment operation.
  bool isObservable(Node *N) const;
  static int countRefs(Node *N, Var *V);
  static void substitute(Node *N, Var *V, Node *Replacement, AstContext &Ctx);

  AstContext &Ctx;
  const CompilerOptions &Opts;
  const WellKnown &WK;
};

bool Cp0::isPure(Node *N) const {
  switch (N->K) {
  case NodeKind::Const:
  case NodeKind::LocalRef:
  case NodeKind::Lambda:
    return true;
  case NodeKind::Call: {
    auto *C = static_cast<CallNode *>(N);
    if (C->Fn->K != NodeKind::GlobalRef)
      return false;
    Value Sym = asGlobalRef(C->Fn)->Sym;
    // Only primitives that neither error nor side-effect for any inputs.
    // (Arithmetic can raise type errors, so it does not qualify.)
    static const char *SafePrims[] = {"not",  "eq?",  "null?", "pair?",
                                      "cons", "list", "#%mark-frame-update"};
    bool Safe = false;
    uint32_t Len;
    const char *Name = stringData(Sym, Len);
    for (const char *P : SafePrims)
      if (Len == std::strlen(P) && std::memcmp(Name, P, Len) == 0)
        Safe = true;
    if (!Safe)
      return false;
    for (Node *A : C->Args)
      if (!isPure(A))
        return false;
    return true;
  }
  default:
    return false;
  }
}

bool Cp0::isObservable(Node *N) const {
  switch (N->K) {
  case NodeKind::Const:
  case NodeKind::LocalRef:
  case NodeKind::GlobalRef:
  case NodeKind::Lambda: // Not entered here.
    return false;
  case NodeKind::LocalSet:
    return isObservable(static_cast<LocalSetNode *>(N)->Rhs);
  case NodeKind::GlobalSet:
    return isObservable(static_cast<GlobalSetNode *>(N)->Rhs);
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    return isObservable(I->Test) || isObservable(I->Then) ||
           isObservable(I->Else);
  }
  case NodeKind::Begin: {
    for (Node *B : static_cast<BeginNode *>(N)->Body)
      if (isObservable(B))
        return true;
    return false;
  }
  case NodeKind::Let: {
    auto *L = static_cast<LetNode *>(N);
    for (Node *I : L->Inits)
      if (isObservable(I))
        return true;
    return isObservable(L->Body);
  }
  case NodeKind::Call: {
    auto *C = static_cast<CallNode *>(N);
    // A call to an inlinable primitive cannot observe attachments
    // (paper 7.2); anything else might.
    if (Opts.EnablePrimRecognition && C->Fn->K == NodeKind::GlobalRef &&
        isInlinablePrim(WK, asGlobalRef(C->Fn)->Sym)) {
      for (Node *A : C->Args)
        if (isObservable(A))
          return true;
      return false;
    }
    return true;
  }
  case NodeKind::Attach:
    return true;
  }
  CMK_UNREACHABLE("unhandled node kind");
}

int Cp0::countRefs(Node *N, Var *V) {
  switch (N->K) {
  case NodeKind::Const:
  case NodeKind::GlobalRef:
    return 0;
  case NodeKind::LocalRef:
    return static_cast<LocalRefNode *>(N)->V == V ? 1 : 0;
  case NodeKind::LocalSet: {
    auto *S = static_cast<LocalSetNode *>(N);
    return (S->V == V ? 1 : 0) + countRefs(S->Rhs, V);
  }
  case NodeKind::GlobalSet:
    return countRefs(static_cast<GlobalSetNode *>(N)->Rhs, V);
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    return countRefs(I->Test, V) + countRefs(I->Then, V) +
           countRefs(I->Else, V);
  }
  case NodeKind::Begin: {
    int N2 = 0;
    for (Node *B : static_cast<BeginNode *>(N)->Body)
      N2 += countRefs(B, V);
    return N2;
  }
  case NodeKind::Let: {
    auto *L = static_cast<LetNode *>(N);
    int N2 = countRefs(L->Body, V);
    for (Node *I : L->Inits)
      N2 += countRefs(I, V);
    return N2;
  }
  case NodeKind::Lambda:
    return countRefs(static_cast<LambdaNode *>(N)->Body, V);
  case NodeKind::Call: {
    auto *C = static_cast<CallNode *>(N);
    int N2 = countRefs(C->Fn, V);
    for (Node *A : C->Args)
      N2 += countRefs(A, V);
    return N2;
  }
  case NodeKind::Attach: {
    auto *A = static_cast<AttachNode *>(N);
    int N2 = countRefs(A->ValOrDflt, V) + countRefs(A->Body, V);
    if (A->Key)
      N2 += countRefs(A->Key, V);
    return N2;
  }
  }
  CMK_UNREACHABLE("unhandled node kind");
}

void Cp0::substitute(Node *N, Var *V, Node *Replacement, AstContext &Ctx) {
  auto Clone = [&]() -> Node * {
    if (Replacement->K == NodeKind::Const)
      return Ctx.make<ConstNode>(static_cast<ConstNode *>(Replacement)->V);
    return Ctx.make<LocalRefNode>(static_cast<LocalRefNode *>(Replacement)->V);
  };
  switch (N->K) {
  case NodeKind::Const:
  case NodeKind::GlobalRef:
  case NodeKind::LocalRef:
    return; // LocalRef handled by the parent (needs slot replacement).
  case NodeKind::LocalSet: {
    auto *S = static_cast<LocalSetNode *>(N);
    if (S->Rhs->K == NodeKind::LocalRef &&
        static_cast<LocalRefNode *>(S->Rhs)->V == V)
      S->Rhs = Clone();
    else
      substitute(S->Rhs, V, Replacement, Ctx);
    return;
  }
  case NodeKind::GlobalSet: {
    auto *S = static_cast<GlobalSetNode *>(N);
    if (S->Rhs->K == NodeKind::LocalRef &&
        static_cast<LocalRefNode *>(S->Rhs)->V == V)
      S->Rhs = Clone();
    else
      substitute(S->Rhs, V, Replacement, Ctx);
    return;
  }
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    Node **Slots[] = {&I->Test, &I->Then, &I->Else};
    for (Node **Slot : Slots) {
      if ((*Slot)->K == NodeKind::LocalRef &&
          static_cast<LocalRefNode *>(*Slot)->V == V)
        *Slot = Clone();
      else
        substitute(*Slot, V, Replacement, Ctx);
    }
    return;
  }
  case NodeKind::Begin: {
    for (Node *&B : static_cast<BeginNode *>(N)->Body) {
      if (B->K == NodeKind::LocalRef && static_cast<LocalRefNode *>(B)->V == V)
        B = Clone();
      else
        substitute(B, V, Replacement, Ctx);
    }
    return;
  }
  case NodeKind::Let: {
    auto *L = static_cast<LetNode *>(N);
    for (Node *&I : L->Inits) {
      if (I->K == NodeKind::LocalRef && static_cast<LocalRefNode *>(I)->V == V)
        I = Clone();
      else
        substitute(I, V, Replacement, Ctx);
    }
    if (L->Body->K == NodeKind::LocalRef &&
        static_cast<LocalRefNode *>(L->Body)->V == V)
      L->Body = Clone();
    else
      substitute(L->Body, V, Replacement, Ctx);
    return;
  }
  case NodeKind::Lambda: {
    auto *L = static_cast<LambdaNode *>(N);
    if (L->Body->K == NodeKind::LocalRef &&
        static_cast<LocalRefNode *>(L->Body)->V == V)
      L->Body = Clone();
    else
      substitute(L->Body, V, Replacement, Ctx);
    return;
  }
  case NodeKind::Call: {
    auto *C = static_cast<CallNode *>(N);
    if (C->Fn->K == NodeKind::LocalRef &&
        static_cast<LocalRefNode *>(C->Fn)->V == V)
      C->Fn = Clone();
    else
      substitute(C->Fn, V, Replacement, Ctx);
    for (Node *&A : C->Args) {
      if (A->K == NodeKind::LocalRef && static_cast<LocalRefNode *>(A)->V == V)
        A = Clone();
      else
        substitute(A, V, Replacement, Ctx);
    }
    return;
  }
  case NodeKind::Attach: {
    auto *A = static_cast<AttachNode *>(N);
    Node **Slots[] = {&A->ValOrDflt, &A->Body};
    for (Node **Slot : Slots) {
      if ((*Slot)->K == NodeKind::LocalRef &&
          static_cast<LocalRefNode *>(*Slot)->V == V)
        *Slot = Clone();
      else
        substitute(*Slot, V, Replacement, Ctx);
    }
    if (A->Key) {
      if (A->Key->K == NodeKind::LocalRef &&
          static_cast<LocalRefNode *>(A->Key)->V == V)
        A->Key = Clone();
      else
        substitute(A->Key, V, Replacement, Ctx);
    }
    return;
  }
  }
}

Node *Cp0::foldPrim(Value Sym, const std::vector<Node *> &Args) {
  uint32_t Len;
  const char *Name = stringData(Sym, Len);
  std::string S(Name, Len);
  std::vector<Value> Vs;
  for (Node *A : Args)
    Vs.push_back(static_cast<ConstNode *>(A)->V);

  auto Fix2 = [&](int64_t &A, int64_t &B) {
    if (Vs.size() != 2 || !Vs[0].isFixnum() || !Vs[1].isFixnum())
      return false;
    A = Vs[0].asFixnum();
    B = Vs[1].asFixnum();
    return true;
  };

  int64_t A, B;
  if (S == "+" && Fix2(A, B) && fitsFixnum(A + B))
    return Ctx.make<ConstNode>(Value::fixnum(A + B));
  if (S == "-" && Fix2(A, B) && fitsFixnum(A - B))
    return Ctx.make<ConstNode>(Value::fixnum(A - B));
  if (S == "*" && Fix2(A, B)) {
    int64_t R;
    if (!__builtin_mul_overflow(A, B, &R) && fitsFixnum(R))
      return Ctx.make<ConstNode>(Value::fixnum(R));
  }
  if (S == "<" && Fix2(A, B))
    return Ctx.make<ConstNode>(Value::boolean(A < B));
  if (S == "<=" && Fix2(A, B))
    return Ctx.make<ConstNode>(Value::boolean(A <= B));
  if (S == ">" && Fix2(A, B))
    return Ctx.make<ConstNode>(Value::boolean(A > B));
  if (S == ">=" && Fix2(A, B))
    return Ctx.make<ConstNode>(Value::boolean(A >= B));
  if (S == "=" && Fix2(A, B))
    return Ctx.make<ConstNode>(Value::boolean(A == B));
  if (S == "not" && Vs.size() == 1)
    return Ctx.make<ConstNode>(Value::boolean(Vs[0].isFalse()));
  if (S == "eq?" && Vs.size() == 2)
    return Ctx.make<ConstNode>(Value::boolean(Vs[0] == Vs[1]));
  if (S == "null?" && Vs.size() == 1)
    return Ctx.make<ConstNode>(Value::boolean(Vs[0].isNil()));
  if (S == "pair?" && Vs.size() == 1)
    return Ctx.make<ConstNode>(Value::boolean(Vs[0].isPair()));
  if (S == "zero?" && Vs.size() == 1 && Vs[0].isFixnum())
    return Ctx.make<ConstNode>(Value::boolean(Vs[0].asFixnum() == 0));
  return nullptr;
}

Node *Cp0::simplify(Node *N, bool Tail) {
  switch (N->K) {
  case NodeKind::Const:
  case NodeKind::LocalRef:
  case NodeKind::GlobalRef:
    return N;
  case NodeKind::LocalSet: {
    auto *S = static_cast<LocalSetNode *>(N);
    S->Rhs = simplify(S->Rhs, false);
    return S;
  }
  case NodeKind::GlobalSet: {
    auto *S = static_cast<GlobalSetNode *>(N);
    S->Rhs = simplify(S->Rhs, false);
    return S;
  }
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    I->Test = simplify(I->Test, false);
    I->Then = simplify(I->Then, Tail);
    I->Else = simplify(I->Else, Tail);
    if (I->Test->K == NodeKind::Const)
      return static_cast<ConstNode *>(I->Test)->V.isTruthy() ? I->Then
                                                             : I->Else;
    return I;
  }
  case NodeKind::Begin: {
    auto *B = static_cast<BeginNode *>(N);
    std::vector<Node *> Out;
    for (size_t I = 0; I < B->Body.size(); ++I) {
      bool Last = I + 1 == B->Body.size();
      Node *E = simplify(B->Body[I], Last && Tail);
      if (E->K == NodeKind::Begin) {
        auto *Inner = static_cast<BeginNode *>(E);
        for (size_t J = 0; J < Inner->Body.size(); ++J) {
          bool InnerLast = Last && J + 1 == Inner->Body.size();
          if (!InnerLast && isPure(Inner->Body[J]))
            continue;
          Out.push_back(Inner->Body[J]);
        }
        continue;
      }
      if (!Last && isPure(E))
        continue;
      Out.push_back(E);
    }
    if (Out.empty())
      return Ctx.make<ConstNode>(Value::voidValue());
    if (Out.size() == 1)
      return Out[0];
    B->Body = std::move(Out);
    return B;
  }
  case NodeKind::Let:
    return simplifyLet(static_cast<LetNode *>(N), Tail);
  case NodeKind::Lambda: {
    auto *L = static_cast<LambdaNode *>(N);
    L->Body = simplify(L->Body, /*Tail=*/true);
    return L;
  }
  case NodeKind::Call:
    return simplifyCall(static_cast<CallNode *>(N), Tail);
  case NodeKind::Attach: {
    auto *A = static_cast<AttachNode *>(N);
    if (A->Key)
      A->Key = simplify(A->Key, false);
    A->ValOrDflt = simplify(A->ValOrDflt, false);
    A->Body = simplify(A->Body, Tail);
    // Paper 7.3: drop a mark whose body cannot inspect marks.
    if (A->Op == AttachOp::Set &&
        (A->Body->K == NodeKind::Const || A->Body->K == NodeKind::LocalRef) &&
        isPure(A->ValOrDflt))
      return A->Body;
    if ((A->Op == AttachOp::Consume || A->Op == AttachOp::Get) && A->BodyVar &&
        (A->Body->K == NodeKind::Const ||
         (A->Body->K == NodeKind::LocalRef &&
          static_cast<LocalRefNode *>(A->Body)->V != A->BodyVar)) &&
        isPure(A->ValOrDflt) && A->Op == AttachOp::Get)
      return A->Body;
    return A;
  }
  }
  CMK_UNREACHABLE("unhandled node kind");
}

Node *Cp0::simplifyLet(LetNode *L, bool Tail) {
  for (Node *&I : L->Inits)
    I = simplify(I, false);

  // Substitute copyable bindings and drop dead pure bindings.
  std::vector<Var *> Vars;
  std::vector<Node *> Inits;
  std::vector<Node *> Effects;
  for (size_t I = 0; I < L->Vars.size(); ++I) {
    Var *V = L->Vars[I];
    Node *Init = L->Inits[I];
    if (!V->Mutated) {
      bool Copyable =
          Init->K == NodeKind::Const ||
          (Init->K == NodeKind::LocalRef &&
           !static_cast<LocalRefNode *>(Init)->V->Mutated);
      if (Copyable) {
        if (L->Body->K == NodeKind::LocalRef &&
            static_cast<LocalRefNode *>(L->Body)->V == V)
          L->Body = Init->K == NodeKind::Const
                        ? static_cast<Node *>(Ctx.make<ConstNode>(
                              static_cast<ConstNode *>(Init)->V))
                        : static_cast<Node *>(Ctx.make<LocalRefNode>(
                              static_cast<LocalRefNode *>(Init)->V));
        else
          substitute(L->Body, V, Init, Ctx);
        continue;
      }
      if (countRefs(L->Body, V) == 0) {
        if (isPure(Init))
          continue; // Drop entirely.
        Effects.push_back(Init);
        continue;
      }
    }
    Vars.push_back(V);
    Inits.push_back(Init);
  }
  L->Vars = std::move(Vars);
  L->Inits = std::move(Inits);
  L->Body = simplify(L->Body, Tail);

  Node *Result = L;
  if (L->Vars.empty()) {
    Result = L->Body;
  } else if (L->Vars.size() == 1 && L->Body->K == NodeKind::LocalRef &&
             static_cast<LocalRefNode *>(L->Body)->V == L->Vars[0] &&
             !L->Vars[0]->Mutated) {
    // (let ([x E]) x) => E. Paper 7.4: in tail position this moves E into
    // tail position, which is observable through attachments; keep the
    // binding unless E is provably invisible to attachment operations.
    Node *Init = L->Inits[0];
    if (!Opts.AttachmentConstraint || !Tail || !isObservable(Init))
      Result = Init;
  }

  if (Effects.empty())
    return Result;
  Effects.push_back(Result);
  return simplify(Ctx.make<BeginNode>(std::move(Effects)), Tail);
}

Node *Cp0::simplifyCall(CallNode *C, bool Tail) {
  C->Fn = simplify(C->Fn, false);
  for (Node *&A : C->Args)
    A = simplify(A, false);

  // Beta-reduce an immediately applied lambda into a let.
  if (C->Fn->K == NodeKind::Lambda) {
    auto *L = static_cast<LambdaNode *>(C->Fn);
    if (!L->HasRest && L->Params.size() == C->Args.size()) {
      Node *LetN = Ctx.make<LetNode>(L->Params, C->Args, L->Body);
      return simplify(LetN, Tail);
    }
  }

  // Constant folding for primitive applications.
  if (C->Fn->K == NodeKind::GlobalRef) {
    bool AllConst = true;
    for (Node *A : C->Args)
      if (A->K != NodeKind::Const)
        AllConst = false;
    if (AllConst)
      if (Node *Folded = foldPrim(asGlobalRef(C->Fn)->Sym, C->Args))
        return Folded;
  }
  return C;
}

} // namespace

Node *cmk::runCp0(AstContext &Ctx, Node *N, const CompilerOptions &Opts,
                  const WellKnown &WK) {
  if (!Opts.EnableCp0)
    return N;
  Cp0 Pass(Ctx, Opts, WK);
  return Pass.simplify(N, /*Tail=*/true);
}
