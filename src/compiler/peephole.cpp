//===- compiler/peephole.cpp - Bytecode superinstruction fusion -*- C++ -*-===//
///
/// \file
/// Post-codegen peephole pass: fuses the dominant opcode sequences of the
/// bench suite into superinstructions (bytecode.h, after Halt) and elides
/// the marks-register cons for category-(c) attachment extents whose body
/// is provably free of calls, jumps, and attachment operations.
///
/// Two safety rules bound every rewrite:
///
///  1. No fused group may contain a jump target anywhere but its first
///     byte: jump operands are absolute offsets, and landing inside a
///     superinstruction would decode operand bytes as opcodes.
///  2. No rewrite crosses a safe-point or attachment-category boundary.
///     The fusible sets below exclude every call, jump, Reify/AttachSet/
///     AttachGet/AttachConsume (category (a)), and CallAttach (category
///     (b)) opcode, so the attachment pass's category decisions — and the
///     VM safe points hoisted onto calls and backward branches — are
///     preserved bit-for-bit in observable behaviour.
///
/// Jump operands are remapped through an old-offset -> new-offset table
/// after fusion changes instruction sizes. Return PCs are runtime values
/// computed against the rewritten code, so they need no fixup.
///
//===----------------------------------------------------------------------===//

#include "compiler/bytecode.h"
#include "compiler/compiler.h"
#include "support/debug.h"

#include <unordered_map>

using namespace cmk;

namespace {

struct PInstr {
  Op O;
  uint32_t Off;     ///< Offset in the input stream.
  uint32_t A = 0;   ///< First operand (u16, or u32 for jumps).
  uint32_t B = 0;   ///< Second operand (u16) or embedded prim opcode.
  bool IsTarget = false;
};

/// Inlined primitives a LocalPrim superinstruction may embed. All are
/// straight-line register/stack operations: no calls, no jumps, and no
/// attachment-category side: exactly the set isInlinablePrim guarantees
/// cannot observe or change continuation attachments.
bool isFusiblePrim(Op O) {
  switch (O) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::NumLt:
  case Op::NumLe:
  case Op::NumGt:
  case Op::NumGe:
  case Op::NumEq:
  case Op::Cons:
  case Op::Car:
  case Op::Cdr:
  case Op::NullP:
  case Op::PairP:
  case Op::Not:
  case Op::EqP:
  case Op::ZeroP:
  case Op::Add1:
  case Op::Sub1:
    return true;
  default:
    return false;
  }
}

/// Opcodes allowed between MarksPush and MarksPop for the elision rewrite:
/// pure stack/slot traffic and inlined primitives. Everything that could
/// reify, capture, jump, call, poll a safe point, or touch the marks
/// register is excluded — in particular the whole category-(a)/(b) set
/// (Reify, AttachSet, AttachGet, AttachConsume, CallAttach) and the plain
/// call/jump opcodes.
bool isElisionSafe(Op O) {
  switch (O) {
  case Op::PushConst:
  case Op::PushLocal:
  case Op::SetLocal:
  case Op::PushLocalBox:
  case Op::SetLocalBox:
  case Op::PushFree:
  case Op::PushFreeBox:
  case Op::SetFreeBox:
  case Op::BoxLocal:
  case Op::PushGlobal:
  case Op::Pop:
  case Op::Dup:
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::NumLt:
  case Op::NumLe:
  case Op::NumGt:
  case Op::NumGe:
  case Op::NumEq:
  case Op::Cons:
  case Op::Car:
  case Op::Cdr:
  case Op::SetCarBang:
  case Op::SetCdrBang:
  case Op::NullP:
  case Op::PairP:
  case Op::Not:
  case Op::EqP:
  case Op::ZeroP:
  case Op::Add1:
  case Op::Sub1:
  case Op::VectorRef:
  case Op::VectorSet:
    return true;
  default:
    return false;
  }
}

/// Longest straight-line extent considered for mark elision; wcm bodies
/// the attachment pass classified as category (c) are short by
/// construction, and a bound keeps the scan linear.
constexpr size_t MaxElisionSpan = 12;

std::vector<PInstr> decode(const std::vector<uint8_t> &In) {
  std::vector<PInstr> Is;
  uint32_t Pc = 0;
  while (Pc < In.size()) {
    PInstr I;
    I.O = static_cast<Op>(In[Pc]);
    I.Off = Pc;
    int Operands = opOperandBytes(I.O);
    CMK_CHECK(Pc + 1 + Operands <= In.size(), "truncated bytecode");
    switch (Operands) {
    case 2:
      I.A = readU16(&In[Pc + 1]);
      break;
    case 3: // LocalPrim: u16 slot + u8 embedded opcode.
      I.A = readU16(&In[Pc + 1]);
      I.B = In[Pc + 3];
      break;
    case 4:
      if (I.O == Op::Jump || I.O == Op::JumpIfFalse) {
        I.A = readU32(&In[Pc + 1]);
      } else { // MakeClosure and the 2xu16 superinstructions.
        I.A = readU16(&In[Pc + 1]);
        I.B = readU16(&In[Pc + 3]);
      }
      break;
    case 6: // JumpIfNotZeroLocal: u16 slot + u32 target.
      I.A = readU16(&In[Pc + 1]);
      I.B = readU32(&In[Pc + 3]);
      break;
    default:
      break;
    }
    Is.push_back(I);
    Pc += 1 + Operands;
  }
  return Is;
}

bool isJump(Op O) { return O == Op::Jump || O == Op::JumpIfFalse; }

void markJumpTargets(std::vector<PInstr> &Is) {
  std::unordered_map<uint32_t, size_t> ByOff;
  for (size_t I = 0; I < Is.size(); ++I)
    ByOff[Is[I].Off] = I;
  for (const PInstr &I : Is) {
    uint32_t T = 0;
    if (isJump(I.O))
      T = I.A;
    else if (I.O == Op::JumpIfNotZeroLocal)
      T = I.B;
    else
      continue;
    auto It = ByOff.find(T);
    // A target may legitimately equal the code size (an If whose join is
    // the end of the emitted body); nothing to mark there.
    if (It != ByOff.end())
      Is[It->second].IsTarget = true;
  }
}

/// Rewrites MarksPush ... MarksPop pairs whose extent is straight-line and
/// attachment-free into the elided forms (same encoded size, so this is an
/// in-place opcode swap on the decoded list).
void elideMarkExtents(std::vector<PInstr> &Is, PeepholeStats &Stats) {
  for (size_t I = 0; I < Is.size(); ++I) {
    if (Is[I].O != Op::MarksPush)
      continue;
    size_t J = I + 1;
    bool Safe = true;
    while (J < Is.size() && J - I <= MaxElisionSpan) {
      if (Is[J].IsTarget) {
        Safe = false;
        break;
      }
      if (Is[J].O == Op::MarksPop)
        break;
      if (!isElisionSafe(Is[J].O)) {
        Safe = false;
        break;
      }
      ++J;
    }
    if (!Safe || J >= Is.size() || J - I > MaxElisionSpan ||
        Is[J].O != Op::MarksPop)
      continue;
    Is[I].O = Op::MarksEnterElided;
    Is[J].O = Op::MarksExitElided;
    ++Stats.MarkExtentsElided;
    I = J;
  }
}

int encodedSize(const PInstr &I) { return 1 + opOperandBytes(I.O); }

void emit(std::vector<uint8_t> &Out, const PInstr &I) {
  Out.push_back(static_cast<uint8_t>(I.O));
  auto U16 = [&](uint32_t V) {
    Out.push_back(V & 0xFF);
    Out.push_back((V >> 8) & 0xFF);
  };
  auto U32 = [&](uint32_t V) {
    for (int K = 0; K < 4; ++K)
      Out.push_back((V >> (8 * K)) & 0xFF);
  };
  switch (opOperandBytes(I.O)) {
  case 2:
    U16(I.A);
    break;
  case 3:
    U16(I.A);
    Out.push_back(static_cast<uint8_t>(I.B));
    break;
  case 4:
    if (isJump(I.O))
      U32(I.A);
    else {
      U16(I.A);
      U16(I.B);
    }
    break;
  case 6:
    U16(I.A);
    U32(I.B);
    break;
  default:
    break;
  }
}

} // namespace

std::vector<uint8_t> cmk::runPeephole(const std::vector<uint8_t> &In,
                                      PeepholeStats *StatsOut) {
  PeepholeStats Stats;
  std::vector<PInstr> Is = decode(In);
  markJumpTargets(Is);
  elideMarkExtents(Is, Stats);

  // Greedy left-to-right fusion. A pattern applies only when every
  // consumed instruction after the first is not a jump target.
  std::vector<PInstr> Fused;
  Fused.reserve(Is.size());
  auto Free = [&](size_t I) { return I < Is.size() && !Is[I].IsTarget; };
  size_t I = 0;
  while (I < Is.size()) {
    const PInstr &A = Is[I];
    PInstr Out = A;
    size_t Consumed = 1;

    if (A.O == Op::PushLocal && Free(I + 1)) {
      Op N1 = Is[I + 1].O;
      if (N1 == Op::PushConst && Free(I + 2) && Is[I + 2].O == Op::Add) {
        Out.O = Op::AddLocalConst;
        Out.B = Is[I + 1].A;
        Consumed = 3;
      } else if (N1 == Op::PushConst && Free(I + 2) &&
                 Is[I + 2].O == Op::Sub) {
        Out.O = Op::SubLocalConst;
        Out.B = Is[I + 1].A;
        Consumed = 3;
      } else if (N1 == Op::ZeroP && Free(I + 2) &&
                 Is[I + 2].O == Op::JumpIfFalse) {
        Out.O = Op::JumpIfNotZeroLocal;
        Out.B = Is[I + 2].A; // Target, remapped below.
        Consumed = 3;
      } else if (N1 == Op::PushLocal) {
        Out.O = Op::LocalLocal;
        Out.B = Is[I + 1].A;
        Consumed = 2;
      } else if (N1 == Op::PushConst) {
        Out.O = Op::LocalConst;
        Out.B = Is[I + 1].A;
        Consumed = 2;
      } else if (isFusiblePrim(N1)) {
        Out.O = Op::LocalPrim;
        Out.B = static_cast<uint32_t>(Is[I + 1].O);
        Consumed = 2;
      }
    } else if (A.O == Op::PushConst && Free(I + 1) &&
               Is[I + 1].O == Op::Call) {
      Out.O = Op::ConstCall;
      Out.B = Is[I + 1].A;
      Consumed = 2;
    }

    if (Consumed > 1)
      ++Stats.PairsFused;
    Fused.push_back(Out);
    I += Consumed;
  }

  // Lay out the fused stream and remap jump operands (absolute offsets).
  std::unordered_map<uint32_t, uint32_t> OffMap;
  uint32_t NewOff = 0;
  for (PInstr &P : Fused) {
    OffMap[P.Off] = NewOff;
    NewOff += encodedSize(P);
  }
  OffMap[static_cast<uint32_t>(In.size())] = NewOff; // End-of-code joins.

  std::vector<uint8_t> Out;
  Out.reserve(NewOff);
  for (PInstr &P : Fused) {
    if (isJump(P.O)) {
      auto It = OffMap.find(P.A);
      CMK_CHECK(It != OffMap.end(), "jump into a fused instruction");
      P.A = It->second;
    } else if (P.O == Op::JumpIfNotZeroLocal) {
      auto It = OffMap.find(P.B);
      CMK_CHECK(It != OffMap.end(), "jump into a fused instruction");
      P.B = It->second;
    }
    emit(Out, P);
  }
  if (StatsOut)
    *StatsOut = Stats;
  return Out;
}
