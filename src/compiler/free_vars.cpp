//===- compiler/free_vars.cpp - Closure analysis ---------------*- C++ -*-===//
///
/// \file
/// Computes, for every lambda, the list of enclosing variables it closes
/// over (LambdaNode::FreeVars) and marks captured variables. Runs after
/// cp0, before codegen.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"

#include <unordered_set>

using namespace cmk;

namespace {

class FreeVarsPass {
public:
  /// Walks \p N collecting references to variables not in \p Bound into
  /// \p Free (deduplicated, in first-reference order for determinism).
  void walk(Node *N, std::unordered_set<Var *> &Bound,
            std::vector<Var *> &Free) {
    switch (N->K) {
    case NodeKind::Const:
    case NodeKind::GlobalRef:
      return;
    case NodeKind::LocalRef:
      addIfFree(static_cast<LocalRefNode *>(N)->V, Bound, Free);
      return;
    case NodeKind::LocalSet: {
      auto *S = static_cast<LocalSetNode *>(N);
      addIfFree(S->V, Bound, Free);
      walk(S->Rhs, Bound, Free);
      return;
    }
    case NodeKind::GlobalSet:
      walk(static_cast<GlobalSetNode *>(N)->Rhs, Bound, Free);
      return;
    case NodeKind::If: {
      auto *I = static_cast<IfNode *>(N);
      walk(I->Test, Bound, Free);
      walk(I->Then, Bound, Free);
      walk(I->Else, Bound, Free);
      return;
    }
    case NodeKind::Begin: {
      for (Node *B : static_cast<BeginNode *>(N)->Body)
        walk(B, Bound, Free);
      return;
    }
    case NodeKind::Let: {
      auto *L = static_cast<LetNode *>(N);
      for (Node *I : L->Inits)
        walk(I, Bound, Free);
      for (Var *V : L->Vars)
        Bound.insert(V);
      walk(L->Body, Bound, Free);
      return;
    }
    case NodeKind::Lambda: {
      auto *L = static_cast<LambdaNode *>(N);
      analyzeLambda(L);
      // The lambda's own free variables are free here too unless bound.
      for (Var *V : L->FreeVars) {
        V->Captured = true;
        addIfFree(V, Bound, Free);
      }
      return;
    }
    case NodeKind::Call: {
      auto *C = static_cast<CallNode *>(N);
      walk(C->Fn, Bound, Free);
      for (Node *A : C->Args)
        walk(A, Bound, Free);
      return;
    }
    case NodeKind::Attach: {
      auto *A = static_cast<AttachNode *>(N);
      if (A->Key)
        walk(A->Key, Bound, Free);
      walk(A->ValOrDflt, Bound, Free);
      if (A->BodyVar)
        Bound.insert(A->BodyVar);
      walk(A->Body, Bound, Free);
      return;
    }
    }
    CMK_UNREACHABLE("unhandled node kind");
  }

  void analyzeLambda(LambdaNode *L) {
    std::unordered_set<Var *> Bound;
    for (Var *P : L->Params)
      Bound.insert(P);
    L->FreeVars.clear();
    walk(L->Body, Bound, L->FreeVars);
  }

private:
  static void addIfFree(Var *V, const std::unordered_set<Var *> &Bound,
                        std::vector<Var *> &Free) {
    if (Bound.count(V))
      return;
    for (Var *F : Free)
      if (F == V)
        return;
    Free.push_back(V);
  }
};

} // namespace

void cmk::runFreeVarsPass(LambdaNode *Toplevel) {
  FreeVarsPass Pass;
  Pass.analyzeLambda(Toplevel);
  CMK_CHECK(Toplevel->FreeVars.empty(),
            "toplevel form must not have free lexical variables");
}
