//===- compiler/codegen.cpp - Bytecode generation --------------*- C++ -*-===//
///
/// \file
/// Emits bytecode from the core AST. The attachment-operation strategies of
/// paper section 7.2 live here:
///
///  * Tail category: Reify + AttachSet/AttachGet/AttachConsume opcodes with
///    a runtime reification check; the consume-set sequence produced by
///    with-continuation-mark shares a single reification.
///  * Non-tail with a tail call in the body: the marks register is pushed
///    directly, and each tail call inside the body compiles to CallAttach,
///    which reifies the continuation at the new frame and installs
///    (rest marks) in the underflow record so the callee sees the
///    attachment and returning pops it.
///  * Non-tail without a tail call: pure MarksPush/MarksPop/MarksSetTop/
///    MarksTop operations with statically known attachment presence.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"

#include "compiler/bytecode.h"
#include "runtime/heap.h"
#include "runtime/symbols.h"

#include <algorithm>
#include <unordered_map>

using namespace cmk;

bool cmk::isInlinablePrim(const WellKnown &WK, Value Sym) {
  (void)WK;
  if (!Sym.isSymbol())
    return false;
  static const char *Prims[] = {
      "+",     "-",       "*",        "<",        "<=",        ">",
      ">=",    "=",       "car",      "cdr",      "cons",      "null?",
      "pair?", "not",     "eq?",      "zero?",    "add1",      "sub1",
      "vector-ref", "vector-set!",    "set-car!", "set-cdr!",
  };
  uint32_t Len;
  const char *Name = stringData(Sym, Len);
  for (const char *P : Prims)
    if (Len == std::strlen(P) && std::memcmp(Name, P, Len) == 0)
      return true;
  return false;
}

namespace {

/// Static attachment presence on the conceptual frame created by a
/// non-tail attachment operation (paper 7.2, third category).
enum class NTState { Absent, Present };

class FnEmitter {
public:
  FnEmitter(Heap &H, GlobalEnv &Globals, const WellKnown &WK,
            const CompilerOptions &Opts, std::string *Err)
      : H(H), Globals(Globals), WK(WK), Opts(Opts), Err(Err) {}

  /// Emits \p L into a CodeObj value; returns undefined on error.
  Value emitFunction(LambdaNode *L);

private:
  // --- Emission helpers ------------------------------------------------------

  void push(int N = 1) {
    Depth += N;
    MaxDepth = std::max(MaxDepth, Depth);
  }
  void pop(int N = 1) { Depth -= N; }

  uint16_t constIdx(Value V) {
    for (size_t I = 0; I < Consts.size(); ++I)
      if (Consts[I] == V)
        return static_cast<uint16_t>(I);
    Consts.push_back(V);
    CMK_CHECK(Consts.size() < 65536, "constant pool overflow");
    return static_cast<uint16_t>(Consts.size() - 1);
  }

  void emitPushConst(Value V) {
    Buf.emitOp(Op::PushConst);
    Buf.emitU16(constIdx(V));
    push();
  }

  void fail(const std::string &Msg) {
    if (Err && Err->empty())
      *Err = Msg;
  }

  int assignSlot(Var *V) {
    V->Slot = NumLocals++;
    return V->Slot;
  }

  /// Emits the result-discarding or Return epilogue for a value already on
  /// the stack in tail position.
  void emitReturn() {
    Buf.emitOp(Op::Return);
    pop();
  }

  // --- Expression compilation -------------------------------------------------

  void compileExpr(Node *N, bool Tail);
  void compileVarRef(Var *V);
  void bindVar(Var *V); ///< Pops the stack top into a fresh slot for V.
  void compileCall(CallNode *C, bool Tail);
  bool tryInlinePrim(CallNode *C);
  void compileAttach(AttachNode *A, bool Tail);
  void compileAttachNT(AttachNode *A, NTState State);
  void compileNTBody(Node *N, NTState State);
  void compileMstkWcm(AttachNode *A, bool Tail);

  Heap &H;
  GlobalEnv &Globals;
  const WellKnown &WK;
  const CompilerOptions &Opts;
  std::string *Err;

  LambdaNode *L = nullptr;
  BytecodeBuffer Buf;
  std::vector<Value> Consts;
  std::unordered_map<Var *, int> FreeIdx;
  int NumLocals = 0;
  int Depth = 0;
  int MaxDepth = 0;
};

Value FnEmitter::emitFunction(LambdaNode *Fn) {
  L = Fn;
  for (Var *P : Fn->Params)
    assignSlot(P);
  for (size_t I = 0; I < Fn->FreeVars.size(); ++I)
    FreeIdx[Fn->FreeVars[I]] = static_cast<int>(I);

  // Boxed (mutated) parameters get wrapped on entry.
  for (Var *P : Fn->Params)
    if (P->boxed()) {
      Buf.emitOp(Op::BoxLocal);
      Buf.emitU16(static_cast<uint16_t>(P->Slot));
    }

  compileExpr(Fn->Body, /*Tail=*/true);

  if (Err && !Err->empty())
    return Value::undefined();

  uint32_t Flags = Fn->HasRest ? codeflags::HasRestArg : 0;
  uint32_t FrameSize = FrameHeaderSlots + NumLocals + MaxDepth + 8;
  std::vector<uint8_t> Bytes = Buf.bytes();
  if (Opts.EnablePeephole)
    Bytes = runPeephole(Bytes);
  return H.makeCode(static_cast<uint32_t>(Fn->Params.size()),
                    static_cast<uint32_t>(NumLocals), FrameSize, Flags,
                    Fn->Name, Consts, Bytes);
}

void FnEmitter::compileVarRef(Var *V) {
  auto It = FreeIdx.find(V);
  if (It != FreeIdx.end()) {
    Buf.emitOp(V->boxed() ? Op::PushFreeBox : Op::PushFree);
    Buf.emitU16(static_cast<uint16_t>(It->second));
  } else {
    CMK_CHECK(V->Slot >= 0, "variable referenced before slot assignment");
    Buf.emitOp(V->boxed() ? Op::PushLocalBox : Op::PushLocal);
    Buf.emitU16(static_cast<uint16_t>(V->Slot));
  }
  push();
}

void FnEmitter::bindVar(Var *V) {
  assignSlot(V);
  Buf.emitOp(Op::SetLocal);
  Buf.emitU16(static_cast<uint16_t>(V->Slot));
  pop();
  if (V->boxed()) {
    Buf.emitOp(Op::BoxLocal);
    Buf.emitU16(static_cast<uint16_t>(V->Slot));
  }
}

void FnEmitter::compileExpr(Node *N, bool Tail) {
  if (Err && !Err->empty())
    return;
  switch (N->K) {
  case NodeKind::Const:
    emitPushConst(static_cast<ConstNode *>(N)->V);
    if (Tail)
      emitReturn();
    return;
  case NodeKind::LocalRef:
    compileVarRef(static_cast<LocalRefNode *>(N)->V);
    if (Tail)
      emitReturn();
    return;
  case NodeKind::GlobalRef: {
    Value Cell = Globals.globalCell(static_cast<GlobalRefNode *>(N)->Sym);
    Buf.emitOp(Op::PushGlobal);
    Buf.emitU16(constIdx(Cell));
    push();
    if (Tail)
      emitReturn();
    return;
  }
  case NodeKind::LocalSet: {
    auto *S = static_cast<LocalSetNode *>(N);
    compileExpr(S->Rhs, false);
    Var *V = S->V;
    CMK_CHECK(V->boxed(), "set! target must be boxed");
    auto It = FreeIdx.find(V);
    if (It != FreeIdx.end()) {
      Buf.emitOp(Op::SetFreeBox);
      Buf.emitU16(static_cast<uint16_t>(It->second));
    } else {
      Buf.emitOp(Op::SetLocalBox);
      Buf.emitU16(static_cast<uint16_t>(V->Slot));
    }
    pop();
    emitPushConst(Value::voidValue());
    if (Tail)
      emitReturn();
    return;
  }
  case NodeKind::GlobalSet: {
    auto *S = static_cast<GlobalSetNode *>(N);
    compileExpr(S->Rhs, false);
    Value Cell = Globals.globalCell(S->Sym);
    Buf.emitOp(S->IsDefine ? Op::DefineGlobal : Op::SetGlobal);
    Buf.emitU16(constIdx(Cell));
    pop();
    emitPushConst(Value::voidValue());
    if (Tail)
      emitReturn();
    return;
  }
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    compileExpr(I->Test, false);
    Buf.emitOp(Op::JumpIfFalse);
    pop();
    size_t ElseSlot = Buf.emitJumpSlot();
    int DepthAtBranch = Depth;
    compileExpr(I->Then, Tail);
    if (Tail) {
      Buf.patchU32(ElseSlot, static_cast<uint32_t>(Buf.size()));
      Depth = DepthAtBranch;
      compileExpr(I->Else, true);
      return;
    }
    Buf.emitOp(Op::Jump);
    size_t EndSlot = Buf.emitJumpSlot();
    Buf.patchU32(ElseSlot, static_cast<uint32_t>(Buf.size()));
    Depth = DepthAtBranch;
    compileExpr(I->Else, false);
    Buf.patchU32(EndSlot, static_cast<uint32_t>(Buf.size()));
    return;
  }
  case NodeKind::Begin: {
    auto *B = static_cast<BeginNode *>(N);
    for (size_t I = 0; I + 1 < B->Body.size(); ++I) {
      compileExpr(B->Body[I], false);
      Buf.emitOp(Op::Pop);
      pop();
    }
    compileExpr(B->Body.back(), Tail);
    return;
  }
  case NodeKind::Let: {
    auto *Let = static_cast<LetNode *>(N);
    for (size_t I = 0; I < Let->Vars.size(); ++I) {
      compileExpr(Let->Inits[I], false);
      bindVar(Let->Vars[I]);
    }
    compileExpr(Let->Body, Tail);
    return;
  }
  case NodeKind::Lambda: {
    auto *Fn = static_cast<LambdaNode *>(N);
    FnEmitter Child(H, Globals, WK, Opts, Err);
    Value Code = Child.emitFunction(Fn);
    if (Err && !Err->empty())
      return;
    // Push the closed-over slots (raw: boxes stay boxed).
    for (Var *FV : Fn->FreeVars) {
      auto It = FreeIdx.find(FV);
      if (It != FreeIdx.end()) {
        Buf.emitOp(Op::PushFree);
        Buf.emitU16(static_cast<uint16_t>(It->second));
      } else {
        CMK_CHECK(FV->Slot >= 0, "free variable without a slot");
        Buf.emitOp(Op::PushLocal);
        Buf.emitU16(static_cast<uint16_t>(FV->Slot));
      }
      push();
    }
    Buf.emitOp(Op::MakeClosure);
    Buf.emitU16(constIdx(Code));
    Buf.emitU16(static_cast<uint16_t>(Fn->FreeVars.size()));
    pop(static_cast<int>(Fn->FreeVars.size()));
    push();
    if (Tail)
      emitReturn();
    return;
  }
  case NodeKind::Call:
    compileCall(static_cast<CallNode *>(N), Tail);
    return;
  case NodeKind::Attach:
    compileAttach(static_cast<AttachNode *>(N), Tail);
    return;
  }
  CMK_UNREACHABLE("unhandled node kind");
}

bool FnEmitter::tryInlinePrim(CallNode *C) {
  if (!Opts.InlinePrimitives || C->Fn->K != NodeKind::GlobalRef)
    return false;
  Value Sym = asGlobalRef(C->Fn)->Sym;
  if (!isInlinablePrim(WK, Sym))
    return false;
  uint32_t Len;
  const char *Name = stringData(Sym, Len);
  std::string S(Name, Len);
  size_t N = C->Args.size();

  auto EmitArgs = [&](size_t Count) {
    for (size_t I = 0; I < Count; ++I)
      compileExpr(C->Args[I], false);
  };
  auto FoldBinary = [&](Op O) {
    compileExpr(C->Args[0], false);
    for (size_t I = 1; I < N; ++I) {
      compileExpr(C->Args[I], false);
      Buf.emitOp(O);
      pop();
    }
  };

  if (S == "+") {
    if (N == 0) {
      emitPushConst(Value::fixnum(0));
      return true;
    }
    if (N == 1) {
      compileExpr(C->Args[0], false);
      emitPushConst(Value::fixnum(0));
      Buf.emitOp(Op::Add);
      pop();
      return true;
    }
    FoldBinary(Op::Add);
    return true;
  }
  if (S == "-") {
    if (N == 0)
      return false;
    if (N == 1) {
      emitPushConst(Value::fixnum(0));
      compileExpr(C->Args[0], false);
      Buf.emitOp(Op::Sub);
      pop();
      return true;
    }
    FoldBinary(Op::Sub);
    return true;
  }
  if (S == "*") {
    if (N == 0) {
      emitPushConst(Value::fixnum(1));
      return true;
    }
    if (N == 1) {
      compileExpr(C->Args[0], false);
      emitPushConst(Value::fixnum(1));
      Buf.emitOp(Op::Mul);
      pop();
      return true;
    }
    FoldBinary(Op::Mul);
    return true;
  }

  struct Simple {
    const char *Name;
    Op O;
    size_t Arity;
  };
  static const Simple Table[] = {
      {"<", Op::NumLt, 2},        {"<=", Op::NumLe, 2},
      {">", Op::NumGt, 2},        {">=", Op::NumGe, 2},
      {"=", Op::NumEq, 2},        {"car", Op::Car, 1},
      {"cdr", Op::Cdr, 1},        {"cons", Op::Cons, 2},
      {"null?", Op::NullP, 1},    {"pair?", Op::PairP, 1},
      {"not", Op::Not, 1},        {"eq?", Op::EqP, 2},
      {"zero?", Op::ZeroP, 1},    {"add1", Op::Add1, 1},
      {"sub1", Op::Sub1, 1},      {"vector-ref", Op::VectorRef, 2},
      {"vector-set!", Op::VectorSet, 3},
      {"set-car!", Op::SetCarBang, 2},
      {"set-cdr!", Op::SetCdrBang, 2},
  };
  for (const Simple &E : Table) {
    if (S != E.Name)
      continue;
    if (N != E.Arity)
      return false; // Fall back to the native for odd arities.
    EmitArgs(N);
    Buf.emitOp(E.O);
    pop(static_cast<int>(N) - 1);
    return true;
  }
  return false;
}

void FnEmitter::compileCall(CallNode *C, bool Tail) {
  if (tryInlinePrim(C)) {
    if (Tail)
      emitReturn();
    return;
  }
  if (Tail) {
    compileExpr(C->Fn, false);
    for (Node *A : C->Args)
      compileExpr(A, false);
    Buf.emitOp(Op::TailCall);
    Buf.emitU16(static_cast<uint16_t>(C->Args.size()));
    pop(static_cast<int>(C->Args.size()) + 1);
    return;
  }
  Buf.emitOp(Op::Frame);
  push(3);
  compileExpr(C->Fn, false);
  for (Node *A : C->Args)
    compileExpr(A, false);
  Buf.emitOp(Op::Call);
  Buf.emitU16(static_cast<uint16_t>(C->Args.size()));
  pop(static_cast<int>(C->Args.size()) + 4);
  push(); // Result.
}

void FnEmitter::compileAttach(AttachNode *A, bool Tail) {
  if (A->Op == AttachOp::MStkWcm) {
    compileMstkWcm(A, Tail);
    return;
  }
  if (!Tail) {
    compileAttachNT(A, NTState::Absent);
    return;
  }

  // Tail category (paper 7.2): runtime-checked operations on a reified
  // continuation.
  switch (A->Op) {
  case AttachOp::Set:
    // StateBefore == Absent marks the consume-set fusion: the enclosing
    // consume already reified, so skip the check here.
    if (A->StateBefore != AttachState::Absent)
      Buf.emitOp(Op::Reify);
    compileExpr(A->ValOrDflt, false);
    Buf.emitOp(Op::AttachSet);
    pop();
    compileExpr(A->Body, true);
    return;
  case AttachOp::Get:
  case AttachOp::Consume: {
    // When the body is a fused set, reify once up front so the set can
    // push without its own check.
    bool Fused = A->Body->K == NodeKind::Attach &&
                 static_cast<AttachNode *>(A->Body)->Op == AttachOp::Set &&
                 static_cast<AttachNode *>(A->Body)->StateBefore ==
                     AttachState::Absent;
    if (Fused)
      Buf.emitOp(Op::Reify);
    compileExpr(A->ValOrDflt, false);
    Buf.emitOp(A->Op == AttachOp::Get ? Op::AttachGet : Op::AttachConsume);
    bindVar(A->BodyVar);
    compileExpr(A->Body, true);
    return;
  }
  case AttachOp::MStkWcm:
    break;
  }
  CMK_UNREACHABLE("unhandled attach op");
}

void FnEmitter::compileAttachNT(AttachNode *A, NTState State) {
  switch (A->Op) {
  case AttachOp::Set:
    compileExpr(A->ValOrDflt, false);
    Buf.emitOp(State == NTState::Absent ? Op::MarksPush : Op::MarksSetTop);
    pop();
    compileNTBody(A->Body, NTState::Present);
    return;
  case AttachOp::Get:
    if (State == NTState::Present) {
      Buf.emitOp(Op::MarksTop);
      push();
    } else {
      compileExpr(A->ValOrDflt, false);
    }
    bindVar(A->BodyVar);
    compileNTBody(A->Body, State);
    return;
  case AttachOp::Consume:
    if (State == NTState::Present) {
      Buf.emitOp(Op::MarksTop);
      push();
      Buf.emitOp(Op::MarksPop);
    } else {
      compileExpr(A->ValOrDflt, false);
    }
    bindVar(A->BodyVar);
    compileNTBody(A->Body, NTState::Absent);
    return;
  case AttachOp::MStkWcm:
    break;
  }
  CMK_UNREACHABLE("unhandled non-tail attach op");
}

/// Compiles an expression in a tail position of a non-tail attachment
/// body. When State is Present, the conceptual frame owns one pushed mark:
/// value paths pop it explicitly, call paths route it through CallAttach.
void FnEmitter::compileNTBody(Node *N, NTState State) {
  if (Err && !Err->empty())
    return;
  switch (N->K) {
  case NodeKind::If: {
    auto *I = static_cast<IfNode *>(N);
    compileExpr(I->Test, false);
    Buf.emitOp(Op::JumpIfFalse);
    pop();
    size_t ElseSlot = Buf.emitJumpSlot();
    int DepthAtBranch = Depth;
    compileNTBody(I->Then, State);
    Buf.emitOp(Op::Jump);
    size_t EndSlot = Buf.emitJumpSlot();
    Buf.patchU32(ElseSlot, static_cast<uint32_t>(Buf.size()));
    Depth = DepthAtBranch;
    compileNTBody(I->Else, State);
    Buf.patchU32(EndSlot, static_cast<uint32_t>(Buf.size()));
    return;
  }
  case NodeKind::Begin: {
    auto *B = static_cast<BeginNode *>(N);
    for (size_t I = 0; I + 1 < B->Body.size(); ++I) {
      compileExpr(B->Body[I], false);
      Buf.emitOp(Op::Pop);
      pop();
    }
    compileNTBody(B->Body.back(), State);
    return;
  }
  case NodeKind::Let: {
    auto *Let = static_cast<LetNode *>(N);
    for (size_t I = 0; I < Let->Vars.size(); ++I) {
      compileExpr(Let->Inits[I], false);
      bindVar(Let->Vars[I]);
    }
    compileNTBody(Let->Body, State);
    return;
  }
  case NodeKind::Attach: {
    auto *A = static_cast<AttachNode *>(N);
    if (A->Op == AttachOp::MStkWcm)
      break; // Treated as a plain value expression below.
    compileAttachNT(A, State);
    return;
  }
  case NodeKind::Call: {
    auto *C = static_cast<CallNode *>(N);
    if (State == NTState::Absent) {
      compileExpr(C, false);
      return;
    }
    // A pending mark. An inlinable primitive cannot observe or change
    // attachments (paper 7.2), so it may run with the mark pushed and pop
    // it afterwards — unless the "no prim" ablation disables exactly this
    // recognition, in which case the primitive is called like any other
    // function through CallAttach.
    if (Opts.EnablePrimRecognition && tryInlinePrim(C)) {
      Buf.emitOp(Op::MarksPop);
      return;
    }
    // Paper 7.2, second category: reify at the new frame with (rest marks)
    // in the underflow record.
    Buf.emitOp(Op::Frame);
    push(3);
    compileExpr(C->Fn, false);
    for (Node *A : C->Args)
      compileExpr(A, false);
    Buf.emitOp(Op::CallAttach);
    Buf.emitU16(static_cast<uint16_t>(C->Args.size()));
    pop(static_cast<int>(C->Args.size()) + 4);
    push();
    return;
  }
  default:
    break;
  }
  // Plain value expression: evaluate, then pop the pending mark.
  compileExpr(N, false);
  if (State == NTState::Present)
    Buf.emitOp(Op::MarksPop);
}

void FnEmitter::compileMstkWcm(AttachNode *A, bool Tail) {
  compileExpr(A->Key, false);
  compileExpr(A->ValOrDflt, false);
  if (Tail) {
    // Entries tagged with the frame are replaced per key and popped when
    // the frame returns (old-Racket behaviour).
    Buf.emitOp(Op::MstkSet);
    pop(2);
    compileExpr(A->Body, true);
    return;
  }
  Buf.emitOp(Op::MstkPush);
  pop(2);
  compileExpr(A->Body, false);
  Buf.emitOp(Op::MstkPop);
}

} // namespace

Value cmk::runCodegen(Heap &H, GlobalEnv &Globals, const WellKnown &WK,
                      LambdaNode *Toplevel, const CompilerOptions &Opts,
                      std::string *ErrOut) {
  FnEmitter Emitter(H, Globals, WK, Opts, ErrOut);
  return Emitter.emitFunction(Toplevel);
}
