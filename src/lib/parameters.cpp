//===- lib/parameters.cpp - Parameter objects ------------------*- C++ -*-===//
///
/// \file
/// make-parameter and the natives behind the parameterize expansion
/// (expand.cpp): #%parameter-key extracts the private mark key and
/// #%parameter-convert applies the guard. Reading a parameter (applying it
/// to zero arguments) is dispatched by the VM to parameterLookup, which
/// uses the marks layer's amortized-constant first-mark lookup — the
/// paper's flagship use of continuation marks (section 1).
///
//===----------------------------------------------------------------------===//

#include "lib/parameters.h"

#include "marks/marks.h"
#include "runtime/printer.h"
#include "vm/vm.h"

#include <cstdio>

using namespace cmk;

Value cmk::currentOutputPort(VM &M) {
  Value Param = M.getGlobal("current-output-port");
  if (Param.isParameter())
    return parameterLookup(M, Param);
  if (Param.isPort())
    return Param;
  return M.getGlobal("#%stdout-port");
}

void cmk::portWrite(VM &M, Value Port, const std::string &Text) {
  PortObj *P = asPort(Port);
  if (P->H.Aux == 1) {
    static_cast<std::string *>(P->Stream)->append(Text);
    return;
  }
  std::fwrite(Text.data(), 1, Text.size(), static_cast<FILE *>(P->Stream));
}

namespace {

Value nativeMakeParameter(VM &M, Value *Args, uint32_t NArgs) {
  GCRoot Dflt(M.heap(), Args[0]);
  GCRoot Guard(M.heap(), NArgs > 1 ? Args[1] : Value::False());
  GCRoot Name(M.heap(), NArgs > 2 ? Args[2] : Value::False());
  Value Key = M.heap().gensym("param");
  GCRoot KeyRoot(M.heap(), Key);
  Value NameV = Name.get().isSymbol() ? Name.get() : M.heap().intern("param");
  // Apply the guard to the initial value eagerly? Racket does; we keep the
  // default as-is and apply guards on parameterize only, which the paper's
  // workloads match.
  return M.heap().makeParameter(KeyRoot.get(), Dflt.get(), Guard.get(),
                                NameV);
}

Value nativeParameterP(VM &, Value *Args, uint32_t) {
  return Value::boolean(Args[0].isParameter());
}

Value nativeParameterKey(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isParameter())
    return typeError(M, "#%parameter-key", "parameter", Args[0]);
  return asParameter(Args[0])->Key;
}

Value nativeParameterConvert(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isParameter())
    return typeError(M, "#%parameter-convert", "parameter", Args[0]);
  Value Guard = asParameter(Args[0])->Guard;
  if (Guard.isFalse())
    return Args[1];
  Value CallArgs[1] = {Args[1]};
  M.scheduleTailCall(Guard, CallArgs, 1);
  return Value::voidValue();
}

Value nativeParameterDefault(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isParameter())
    return typeError(M, "#%parameter-default", "parameter", Args[0]);
  return asParameter(Args[0])->Default;
}

} // namespace

void cmk::installParameterPrimitives(VM &M) {
  M.defineNative("make-parameter", nativeMakeParameter, 1, 3);
  M.defineNative("parameter?", nativeParameterP, 1, 1);
  M.defineNative("#%parameter-key", nativeParameterKey, 1, 1);
  M.defineNative("#%parameter-convert", nativeParameterConvert, 2, 2);
  M.defineNative("#%parameter-default", nativeParameterDefault, 1, 1);

  // The default output port; current-output-port is made a parameter by
  // the prelude so `parameterize` can redirect it (paper section 1).
  Value Stdout = M.heap().makeStdioPort(stdout, M.heap().intern("stdout"));
  M.setGlobal("#%stdout-port", Stdout);
}
