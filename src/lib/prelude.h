//===- lib/prelude.h - Embedded Scheme prelude -----------------*- C++ -*-===//

#ifndef CMARKS_LIB_PRELUDE_H
#define CMARKS_LIB_PRELUDE_H

namespace cmk {

/// Scheme source of the base prelude: list utilities, dynamic-wind, the
/// winder-aware call/cc wrapper, aborts, exceptions, parameters glue,
/// contracts, and generators. Evaluated by SchemeEngine at startup.
const char *preludeSource();

/// Scheme source of the figure 3 imitation of continuation attachments:
/// a call/cc-based attachment stack keyed on eq? continuations. Loaded by
/// the Imitate engine variant, and usable directly by benchmarks.
const char *imitationSource();

} // namespace cmk

#endif // CMARKS_LIB_PRELUDE_H
