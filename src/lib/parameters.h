//===- lib/parameters.h - Parameter objects (dynamic binding) --*- C++ -*-===//
///
/// \file
/// Parameter objects implement dynamic binding over continuation marks:
/// parameterize expands to with-continuation-mark on the parameter's
/// private key, and applying a parameter reads the innermost mark
/// (amortized constant time via the marks layer).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_LIB_PARAMETERS_H
#define CMARKS_LIB_PARAMETERS_H

#include "runtime/value.h"

#include <string>

namespace cmk {

class VM;

/// Returns the current output port: the dynamic binding of
/// current-output-port, or the stdout port if unbound.
Value currentOutputPort(VM &M);

/// Writes \p Text to \p Port (stdio stream or string buffer).
void portWrite(VM &M, Value Port, const std::string &Text);

} // namespace cmk

#endif // CMARKS_LIB_PARAMETERS_H
