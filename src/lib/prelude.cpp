//===- lib/prelude.cpp - Embedded Scheme prelude ---------------*- C++ -*-===//
///
/// \file
/// The library layer the paper advertises: dynamic-wind, a winder-aware
/// call/cc, aborts that unwind, exceptions in the style of section 2.3,
/// contracts, and generators — all implemented as Scheme libraries over
/// continuation marks and the control primitives, with no further compiler
/// support.
///
//===----------------------------------------------------------------------===//

#include "lib/prelude.h"

namespace cmk {

const char *preludeSource() {
  return R"PRELUDE(

;; ---------------------------------------------------------------- lists ----

(define (map f l . more)
  (if (null? more)
      (let loop ([l l])
        (if (null? l) '() (cons (f (car l)) (loop (cdr l)))))
      (let loop ([ls (cons l more)])
        (if (null? (car ls))
            '()
            (cons (apply f (map car ls)) (loop (map cdr ls)))))))

(define (for-each f l . more)
  (if (null? more)
      (let loop ([l l])
        (if (null? l) (void) (begin (f (car l)) (loop (cdr l)))))
      (let loop ([ls (cons l more)])
        (if (null? (car ls))
            (void)
            (begin (apply f (map car ls)) (loop (map cdr ls)))))))

(define (filter pred l)
  (cond [(null? l) '()]
        [(pred (car l)) (cons (car l) (filter pred (cdr l)))]
        [else (filter pred (cdr l))]))

(define (foldl f init l)
  (if (null? l) init (foldl f (f (car l) init) (cdr l))))

(define (foldr f init l)
  (if (null? l) init (f (car l) (foldr f init (cdr l)))))

(define (iota n)
  (let loop ([i (- n 1)] [acc '()])
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (build-list n f)
  (let loop ([i (- n 1)] [acc '()])
    (if (< i 0) acc (loop (- i 1) (cons (f i) acc)))))

(define (list-sort less? l)
  (define (merge a b)
    (cond [(null? a) b]
          [(null? b) a]
          [(less? (car b) (car a)) (cons (car b) (merge a (cdr b)))]
          [else (cons (car a) (merge (cdr a) b))]))
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (cons l '())
        (let ([rest (split (cddr l))])
          (cons (cons (car l) (car rest))
                (cons (cadr l) (cdr rest))))))
  (if (or (null? l) (null? (cdr l)))
      l
      (let ([halves (split l)])
        (merge (list-sort less? (car halves))
               (list-sort less? (cdr halves))))))

(define sort list-sort)

(define (andmap f l)
  (if (null? l) #t (and (f (car l)) (andmap f (cdr l)))))

(define (ormap f l)
  (if (null? l) #f (or (f (car l)) (ormap f (cdr l)))))

(define (list-index pred l)
  (let loop ([l l] [i 0])
    (cond [(null? l) #f]
          [(pred (car l)) i]
          [else (loop (cdr l) (+ i 1))])))

(define (vector-map f v)
  (let ([out (make-vector (vector-length v) 0)])
    (let loop ([i 0])
      (if (= i (vector-length v))
          out
          (begin (vector-set! out i (f (vector-ref v i)))
                 (loop (+ i 1)))))))

(define (vector-for-each f v)
  (let loop ([i 0])
    (if (= i (vector-length v))
        (void)
        (begin (f (vector-ref v i)) (loop (+ i 1))))))

;; --------------------------------------------------------- dynamic-wind ----

(define (dynamic-wind before thunk after)
  (before)
  (#%push-winder before after)
  (let ([r (thunk)])
    (#%pop-winder)
    (after)
    r))

(define (#%winders-length ws)
  (let loop ([ws ws] [n 0])
    (if (null? ws) n (loop (#%winder-next ws) (+ n 1)))))

(define (#%drop-winders ws n)
  (if (zero? n) ws (#%drop-winders (#%winder-next ws) (- n 1))))

(define (#%common-tail ws1 ws2)
  (let ([n1 (#%winders-length ws1)]
        [n2 (#%winders-length ws2)])
    (let loop ([a (#%drop-winders ws1 (max 0 (- n1 n2)))]
               [b (#%drop-winders ws2 (max 0 (- n2 n1)))])
      (if (eq? a b) a (loop (#%winder-next a) (#%winder-next b))))))

;; Run after-thunks from ws (innermost) down to tail, with each thunk seeing
;; the winder state and marks of its own dynamic-wind call (footnote 4).
(define (#%unwind-to ws tail)
  (unless (eq? ws tail)
    (#%set-winders! (#%winder-next ws))
    (#%call-with-marks (#%winder-marks ws) (#%winder-after ws))
    (#%unwind-to (#%winder-next ws) tail)))

;; Run before-thunks from tail up to ws.
(define (#%rewind-to ws tail)
  (unless (eq? ws tail)
    (#%rewind-to (#%winder-next ws) tail)
    (#%call-with-marks (#%winder-marks ws) (#%winder-before ws))
    (#%set-winders! ws)))

;; The user-facing call/cc: wraps the raw capture so that applying the
;; continuation runs the winders between here and there. The extra wrapper
;; closure matches the indirection Racket CS adds over Chez's call/cc.
(define (#%throw-to k v)
  (let* ([cur (#%winders)]
         [target (#%continuation-winders k)]
         [tail (#%common-tail cur target)])
    (#%unwind-to cur tail)
    (#%rewind-to target tail)
    (k v)))

(define (call-with-current-continuation f)
  (#%call/cc (lambda (k) (f (lambda (v) (#%throw-to k v))))))

(define call/cc call-with-current-continuation)

;; One-shot continuations (paper section 6; Bruggeman et al.): cheaper to
;; return through, and using one twice is an error unless a later call/cc
;; promotes it.
(define (call/1cc f)
  (#%call/1cc (lambda (k) (f (lambda (v) (#%throw-to k v))))))

;; (time expr): returns (cons result elapsed-milliseconds).
(define-syntax-rule (time expr)
  (let ([%start (current-inexact-milliseconds)])
    (let ([%result expr])
      (cons %result (- (current-inexact-milliseconds) %start)))))

;; A one-shot escape without winder bookkeeping, used by catch below when
;; the escape cannot cross a dynamic-wind (kept for benchmarks that need a
;; raw escape).
(define (call-with-escape-continuation f)
  (#%call/cc (lambda (k) (f k))))

;; ---------------------------------------------------------------- aborts ----

(define (abort-current-continuation tag val)
  (let* ([cur (#%winders)]
         [target (#%prompt-winders tag)]
         [tail (#%common-tail cur target)])
    (#%unwind-to cur tail)
    (#%abort-to-prompt tag val)))

;; Re-enter the dynamic-wind extents a composable capture sits inside:
;; run the before thunks outside-in (each with the marks of its original
;; dynamic-wind call) and return a fresh winder chain [ws .. tail) rebased
;; onto base. The chain is built functionally and *returned* rather than
;; pushed: a #%push-winder inside this helper would not survive its own
;; return, because underflowing through a reified record restores the
;; caller's winder snapshot (heap-frame mode reifies at every call, so the
;; loss is guaranteed there). The caller installs the result in the frame
;; that applies the continuation.
(define (#%rewind-composite ws tail base)
  (if (eq? ws tail)
      base
      (let ([next (#%rewind-composite (#%winder-next ws) tail base)])
        (#%call-with-marks (#%winder-marks ws) (#%winder-before ws))
        (#%make-winder (#%winder-before ws) (#%winder-after ws)
                       (#%winder-marks ws) next))))

;; The user-facing composable capture: like the call/cc wrapper above, an
;; indirection so that applying the continuation handles winders -- here
;; by re-entering the captured slice's dynamic-winds on every application.
;; The rebased chain is installed in this frame (so records reified while
;; the spliced extent runs snapshot it) and the application site's own
;; chain is restored once the extent returns; the extent's epilogues pop
;; exactly the winders that were rebased, and an abort out of the
;; re-entered extent unwinds them like any other. When the captured slice
;; contains no winders the application stays a tail call: the restore
;; bracket would otherwise grow the continuation by one frame per
;; application, which breaks loop-shaped users (generator pipelines
;; resuming thousands of times).
(define (call-with-composable-continuation f . rest)
  (let ([tag (if (null? rest) (default-continuation-prompt-tag) (car rest))])
    (#%call-with-composable-continuation
     (lambda (k)
       (f (lambda (v)
            (let ([ws (#%composite-winders k)]
                  [tail (#%composite-boundary-winders k)])
              (if (eq? ws tail)
                  (k v)
                  (let ([saved (#%winders)])
                    (#%set-winders! (#%rewind-composite ws tail saved))
                    (let ([r (k v)])
                      (#%set-winders! saved)
                      r)))))))
     tag)))

;; ------------------------------------------------------------ exceptions ----
;; The catch/throw of paper section 2.3: the handler stack lives in
;; continuation marks under a private key; catch keeps its body in tail
;; position by chaining the frame's existing handler list.

(define #%handler-key (gensym "handler"))

(define (#%make-exn msg irritants)
  (vector '#%exn msg irritants))

(define (exn? v)
  (if (vector? v)
      (if (> (vector-length v) 0) (eq? (vector-ref v 0) '#%exn) #f)
      #f))

(define (exn-message e) (vector-ref e 1))
(define (exn-irritants e) (vector-ref e 2))

;; Resource-limit exceptions (support/limits.h): ordinary exn vectors with
;; two extra slots, so every generic handler (exn?, exn-message) still
;; applies, plus a tag and the trip kind ('heap-limit | 'stack-limit |
;; 'timeout | 'interrupt) for targeted handlers.
(define (#%make-limit-exn kind msg)
  (vector '#%exn msg (list kind) '#%limit kind))

(define (exn:limit? v)
  (if (exn? v)
      (if (> (vector-length v) 4) (eq? (vector-ref v 3) '#%limit) #f)
      #f))

(define (exn:limit-kind e) (vector-ref e 4))
(define (exn:heap-limit? v)
  (if (exn:limit? v) (eq? (exn:limit-kind v) 'heap-limit) #f))
(define (exn:stack-limit? v)
  (if (exn:limit? v) (eq? (exn:limit-kind v) 'stack-limit) #f))
(define (exn:timeout? v)
  (if (exn:limit? v) (eq? (exn:limit-kind v) 'timeout) #f))
(define (exn:interrupt? v)
  (if (exn:limit? v) (eq? (exn:limit-kind v) 'interrupt) #f))

(define (#%flatten-handler-lists lss)
  (if (null? lss)
      '()
      (append (car lss) (#%flatten-handler-lists (cdr lss)))))

(define (#%throw-with-handler-stack exn handlers)
  (if (null? handlers)
      (if (exn:limit? exn)
          ;; Uncaught limit trips keep their classification, so the host
          ;; can tell "program hit its heap limit" from "program errored".
          (#%fatal-limit (exn:limit-kind exn) (exn-message exn))
          (#%fatal-error "uncaught exception:"
                         (if (exn? exn) (exn-message exn) exn)))
      ((car handlers) exn (cdr handlers))))

(define (throw exn)
  (#%throw-with-handler-stack
   exn
   (#%flatten-handler-lists
    (continuation-mark-set->list (current-continuation-marks)
                                 #%handler-key))))

(define-syntax-rule (catch handler-proc body)
  ((call/cc
    (lambda (%catch-k)
      (lambda ()
        (call-with-immediate-continuation-mark
         #%handler-key
         (lambda (%existing)
           (with-continuation-mark
             #%handler-key
             (cons (lambda (%exn %rest)
                     (%catch-k (lambda () (handler-proc %exn))))
                   (if %existing %existing '()))
             body))
         #f))))))

;; Racket-style with-handlers, built from catch and ellipsis macros:
;; (with-handlers ([pred handler] ...) body ...) runs body; a thrown value
;; is given to the handler of the first matching predicate, or rethrown.
(define (#%dispatch-handlers clauses exn)
  (cond [(null? clauses) (throw exn)]
        [((caar clauses) exn) ((cdar clauses) exn)]
        [else (#%dispatch-handlers (cdr clauses) exn)]))

(define-syntax-rule (with-handlers ([pred handler] ...) body ...)
  (catch (lambda (%exn)
           (#%dispatch-handlers (list (cons pred handler) ...) %exn))
    (begin body ...)))

;; error now raises a catchable exception; an uncaught throw becomes a
;; fatal VM error via #%throw-with-handler-stack.
(set! error
  (lambda args
    (throw (#%make-exn (if (pair? args) (car args) "error")
                       (if (pair? args) (cdr args) '())))))

;; #%limit-raise is the VM's safe-point trampoline: when a resource budget
;; trips (heap/stack/timeout/interrupt) the dispatch loop injects a call to
;; this closure at the next instruction boundary. It must never return
;; normally — the interrupted expression has no slot for a result — so an
;; impossible fall-through ends in #%fatal-limit. Throwing here unwinds
;; through dynamic-wind after-thunks like any user-level throw.
(define (#%limit-raise kind msg)
  (throw (#%make-limit-exn kind msg))
  (#%fatal-limit kind msg))

;; ------------------------------------------------------------ parameters ----

(define current-output-port (make-parameter #%stdout-port))

(define (with-output-to-string thunk)
  (let ([p (open-output-string)])
    (parameterize ([current-output-port p]) (thunk))
    (get-output-string p)))

;; -------------------------------------------------------------- contracts ----
;; A miniature of Racket's contract system, exercising the pattern the
;; paper's section 8.4 measures: every wrapped call installs a
;; continuation mark recording the blame context.

(define #%blame-key (gensym "blame"))

(define (flat-contract name pred) (vector '#%contract 'flat name pred))
(define (-> dom rng) (vector '#%contract 'arrow dom rng))

(define integer/c (flat-contract 'integer? integer?))
(define string/c (flat-contract 'string? string?))
(define number/c (flat-contract 'number? number?))
(define procedure/c (flat-contract 'procedure? procedure?))
(define any/c (flat-contract 'any (lambda (v) #t)))

(define (contract? v)
  (if (vector? v)
      (if (> (vector-length v) 0) (eq? (vector-ref v 0) '#%contract) #f)
      #f))

(define (#%flat-check ctc v blame)
  (if ((vector-ref ctc 3) v)
      v
      (error "contract violation" (vector-ref ctc 2) v blame)))

(define (contract-wrap ctc fn blame)
  (if (eq? (vector-ref ctc 1) 'arrow)
      (let ([dom (vector-ref ctc 2)]
            [rng (vector-ref ctc 3)])
        (lambda (x)
          (with-continuation-mark #%blame-key blame
            (#%flat-check rng (fn (#%flat-check dom x blame)) blame))))
      (#%flat-check ctc fn blame)))

(define (current-blame)
  (continuation-mark-set-first #f #%blame-key #f))

(define (blame-trail)
  (continuation-mark-set->list (current-continuation-marks) #%blame-key))

;; ------------------------------------------------------------- generators ----

(define #%generator-tag (make-continuation-prompt-tag 'generator))

(define (make-generator body-proc)
  (let ([state (box #f)]
        [final (box #f)])
    (define (yield v)
      (call-with-composable-continuation
       (lambda (k)
         (abort-current-continuation #%generator-tag
                                     (cons 'yielded (cons v k))))
       #%generator-tag))
    (lambda ()
      (let ([st (unbox state)])
        (if (eq? st 'done)
            (unbox final)
            (let ([r (call-with-continuation-prompt
                      (lambda ()
                        (if st
                            (st (void))
                            (cons 'done (body-proc yield))))
                      #%generator-tag
                      (lambda (msg) msg))])
              (if (eq? (car r) 'yielded)
                  (begin
                    (set-box! state (cdr (cdr r)))
                    (car (cdr r)))
                  (begin
                    (set-box! state 'done)
                    (set-box! final (cdr r))
                    (cdr r)))))))))

;; -------------------------------------------------------------- stack info ----
;; A debugger-style helper: programs annotate frames with 'trace marks and
;; current-stack-trace reads them back (used by the stack_tracer example).

(define #%trace-key (gensym "trace"))

;; Uncaught-error reports include the 'trace mark chain as context; tell
;; the VM which key those frames live under.
(#%set-snapshot-key! #%trace-key)

(define-syntax-rule (with-stack-frame name body)
  (with-continuation-mark #%trace-key name body))

(define (current-stack-trace)
  (continuation-mark-set->list (current-continuation-marks) #%trace-key))

;; ------------------------------------------------------------- profiling ----
;; The paper's motivating application: profiling built on marks. Frames are
;; annotated with with-stack-frame (a 'trace continuation mark); snapshots
;; read them back through continuation-mark-set->list, and spans recorded
;; in the VM trace buffer carry the innermost frame's name, so a Perfetto
;; timeline shows user code, not just VM internals.

;; (current-stack-snapshot) -> list of frame names, innermost first. Also
;; drops a labeled instant into the trace (when tracing is running) so the
;; snapshot is visible on the timeline at the moment it was taken.
(define (current-stack-snapshot)
  (let ([frames (continuation-mark-set->list
                 (current-continuation-marks) #%trace-key)])
    (#%trace-instant (if (pair? frames) (car frames) 'toplevel))
    frames))

;; (call-with-profiling thunk) runs thunk inside a trace span labeled with
;; the innermost annotated frame (or 'profile at top level); nested
;; profiled calls render as stacked slices in Perfetto. The thunk runs in
;; non-tail position by necessity — the span must close after it returns.
(define (call-with-profiling thunk)
  (let ([frames (continuation-mark-set->list
                 (current-continuation-marks) #%trace-key)])
    (#%trace-span-begin (if (pair? frames) (car frames) 'profile))
    (let ([result (thunk)])
      (#%trace-span-end)
      result)))

;; (profiled name expr): annotate and profile in one step.
(define-syntax-rule (profiled name expr)
  (with-stack-frame name (call-with-profiling (lambda () expr))))

;; ---------------------------------------------------------------- fibers ----
;; Cooperative green threads over one-shot continuations (vm/fibers.cpp,
;; DESIGN.md section 16). A fiber's marks, winders, and parameterizations
;; live in its captured continuation, so interleaved fibers are isolated
;; automatically. Raw fiber switches do NOT run dynamic-wind thunks (like
;; Racket thread swaps): winders fire when control flows in or out of an
;; extent, not when the scheduler multiplexes.

;; Classifies a caught value the way the pool's telemetry buckets errors.
(define (#%exn-kind e)
  (cond [(exn:heap-limit? e) 'heap-limit]
        [(exn:stack-limit? e) 'stack-limit]
        [(exn:timeout? e) 'timeout]
        [(exn:interrupt? e) 'interrupt]
        [else 'error]))

;; Every fresh fiber boots here on an empty continuation (no marks, no
;; winders, no handlers). The whole thrown value is kept as the result so
;; fiber-join can rethrow it intact; #%fiber-finish switches to the next
;; runnable fiber (or retires the pool slice) and never returns.
(define (#%fiber-boot f)
  (catch
   (lambda (e) (#%fiber-finish f #f e (#%exn-kind e)))
   (#%fiber-finish f #t (apply (#%fiber-thunk f) (#%fiber-args f)) #f)))

;; (spawn thunk arg ...): create a runnable fiber; it first runs when the
;; current fiber yields, parks, joins, or finishes (cooperative order is
;; deterministic FIFO).
(define (spawn thunk . args) (#%fiber-spawn thunk args))

;; (yield): let every other runnable fiber run once before resuming.
(define (yield) (#%fiber-yield))

;; (fiber-join f): wait for f, return its result; rethrow its error (limit
;; exns keep their kind). Parks until f finishes.
(define (fiber-join f)
  (if (#%fiber-done? f)
      (if (#%fiber-error? f)
          (throw (#%fiber-result f))
          (#%fiber-result f))
      (begin (#%fiber-join-park! f) (fiber-join f))))

;; Cooperative sleep: park on a timer, re-parking across spurious early
;; wakes (a forced wake for signal delivery trips at the first safe point
;; of this very loop). sleep-ms tail-calls here when scheduling is active.
(define (#%fiber-sleep ms)
  (let ([end (+ (current-inexact-milliseconds) ms)])
    (let loop ()
      (let ([left (- end (current-inexact-milliseconds))])
        (if (> left 0)
            (begin (#%fiber-park-timed! left) (loop))
            (void))))))

;; ---------------------------------------------------------------- channels --
;; Bounded FIFO channels that park instead of blocking. Single-threaded
;; cooperative scheduling makes plain vector mutation safe: nothing runs
;; between a test and its update unless we park. Representation:
;;   #('#%channel cap items getters putters)
;; where getters is a FIFO of parked fibers and putters a FIFO of
;; (fiber . value) pairs. Capacity 0 gives rendezvous semantics.

(define (make-channel . cap)
  (vector '#%channel (if (pair? cap) (car cap) 0) '() '() '()))

(define (channel? v)
  (if (vector? v)
      (if (= (vector-length v) 5) (eq? (vector-ref v 0) '#%channel) #f)
      #f))

;; Drops waiters whose fiber died while parked (e.g. a pool job that hit
;; its deadline): #%fiber-unpark! returns #f for anything not parked.
(define (#%channel-pump-putter ch)
  (let ([putters (vector-ref ch 4)])
    (if (pair? putters)
        (begin
          (vector-set! ch 4 (cdr putters))
          (if (#%fiber-unpark! (car (car putters)) #t)
              (vector-set! ch 2 (append (vector-ref ch 2)
                                        (list (cdr (car putters)))))
              (#%channel-pump-putter ch)))
        (void))))

(define (channel-put ch v)
  (let ([getters (vector-ref ch 3)])
    (if (pair? getters)
        (begin
          (vector-set! ch 3 (cdr getters))
          (if (#%fiber-unpark! (car getters) v)
              (void)
              (channel-put ch v)))
        (if (< (length (vector-ref ch 2)) (vector-ref ch 1))
            (vector-set! ch 2 (append (vector-ref ch 2) (list v)))
            (begin
              (vector-set! ch 4 (append (vector-ref ch 4)
                                        (list (cons (#%current-fiber) v))))
              (#%fiber-park!)
              (void))))))

(define (channel-get ch)
  (let ([items (vector-ref ch 2)])
    (if (pair? items)
        (begin
          (vector-set! ch 2 (cdr items))
          (#%channel-pump-putter ch)
          (car items))
        (let ([putters (vector-ref ch 4)])
          (if (pair? putters)
              (begin
                (vector-set! ch 4 (cdr putters))
                (if (#%fiber-unpark! (car (car putters)) #t)
                    (cdr (car putters))
                    (channel-get ch)))
              (begin
                (vector-set! ch 3 (append (vector-ref ch 3)
                                          (list (#%current-fiber))))
                (#%fiber-park!)))))))

;; ------------------------------------------------------------- fiber pool ---
;; Glue for the EnginePool's cooperative mode (support/pool.cpp). A job is
;; compiled to a list of toplevel thunks; #%run-thunks runs them in order
;; and the last value is the job's result.
(define (#%run-thunks thunks)
  (if (null? thunks)
      (void)
      (if (null? (cdr thunks))
          ((car thunks))
          (begin ((car thunks)) (#%run-thunks (cdr thunks))))))

;; One scheduler slice: runs fibers until a job finishes or everything is
;; parked; returns 'retire or 'idle to the host worker.
(define (#%fiber-slice) (#%fiber-schedule!))

)PRELUDE";
}

const char *imitationSource() {
  return R"IMITATE(

;; Figure 3 of the paper: imitation of built-in attachment support using
;; raw call/cc and eq? on continuations, plus the attachment-stack pop on
;; the return path. #%imitate-ks parallels the paper's ks, #%imitate-atts
;; parallels atts; the marks layer is pointed at #%imitate-atts by the
;; Imitate engine variant.

(define #%imitate-ks '(#f))
(define #%imitate-atts '())

(define (imitate-setting v thunk)
  (#%call/cc
   (lambda (k)
     (cond [(eq? k (car #%imitate-ks))
            (set! #%imitate-atts (cons v (cdr #%imitate-atts)))
            (thunk)]
           [else
            (let ([r (#%call/cc
                      (lambda (nested-k)
                        (set! #%imitate-ks (cons nested-k #%imitate-ks))
                        (set! #%imitate-atts (cons v #%imitate-atts))
                        (thunk)))])
              (set! #%imitate-ks (cdr #%imitate-ks))
              (set! #%imitate-atts (cdr #%imitate-atts))
              r)]))))

(define (imitate-getting dflt proc)
  (#%call/cc
   (lambda (k)
     (if (eq? k (car #%imitate-ks))
         (proc (car #%imitate-atts))
         (proc dflt)))))

;; A true consume cannot pop the stacks without desynchronizing the pop in
;; imitate-setting's return path, so consuming reads without removing; the
;; with-continuation-mark expansion uses get+set under imitation, which is
;; equivalent (set replaces a present attachment).
(define imitate-consuming imitate-getting)

(define (imitate-current) #%imitate-atts)

)IMITATE";
}

} // namespace cmk
