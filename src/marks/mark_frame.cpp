//===- marks/mark_frame.cpp - Mark frames and first-lookup -----*- C++ -*-===//
///
/// \file
/// The representation of paper section 7.5: "a specific attachment uses a
/// representation that makes common cases inexpensive and evolves to
/// support more complex cases: no marks, one mark, multiple marks, and
/// caching". Here: no attachment / a MarkFrame with a small inline entry
/// array / the same plus a validated cache entry implementing the N/2
/// path compression.
///
//===----------------------------------------------------------------------===//

#include "marks/marks.h"

#include "runtime/heap.h"
#include "vm/vm.h"

using namespace cmk;

namespace {
// Aux bit 0 on a MarkFrameObj: cache fields are valid.
constexpr uint16_t CacheValidBit = 1;
} // namespace

Value cmk::markFrameUpdate(Heap &H, Value FrameOrFalse, Value Key, Value Val) {
  GCRoot Old(H, FrameOrFalse), KeyRoot(H, Key), ValRoot(H, Val);

  if (!FrameOrFalse.isMarkFrame()) {
    // First mark on this frame: the one-mark representation.
    CMK_STAT_DETAIL(H.vmStats(), MarkFrameCreates);
    CMK_TRACE_DETAIL(H.traceBuf(), MarkFrameCreate);
    Value NewV = H.makeMarkFrame(1);
    MarkFrameObj *New = asMarkFrame(NewV);
    New->Entries[0] = KeyRoot.get();
    New->Entries[1] = ValRoot.get();
    return NewV;
  }

  MarkFrameObj *OldF = asMarkFrame(Old.get());
  uint32_t N = OldF->NumEntries;
  // Does the key already have a binding?
  int32_t Existing = -1;
  for (uint32_t I = 0; I < N; ++I)
    if (OldF->Entries[2 * I] == KeyRoot.get())
      Existing = static_cast<int32_t>(I);

  if (Existing >= 0) {
    CMK_STAT_DETAIL(H.vmStats(), MarkFrameRebinds);
    CMK_TRACE_DETAIL(H.traceBuf(), MarkFrameRebind);
  } else {
    CMK_STAT_DETAIL(H.vmStats(), MarkFrameExtends);
    CMK_TRACE_DETAIL(H.traceBuf(), MarkFrameExtend);
  }
  uint32_t NewN = Existing >= 0 ? N : N + 1;
  Value NewV = H.makeMarkFrame(NewN);
  MarkFrameObj *New = asMarkFrame(NewV);
  OldF = asMarkFrame(Old.get());
  for (uint32_t I = 0; I < N; ++I) {
    New->Entries[2 * I] = OldF->Entries[2 * I];
    New->Entries[2 * I + 1] = OldF->Entries[2 * I + 1];
  }
  uint32_t Slot = Existing >= 0 ? static_cast<uint32_t>(Existing) : N;
  New->Entries[2 * Slot] = KeyRoot.get();
  New->Entries[2 * Slot + 1] = ValRoot.get();
  return NewV;
}

Value cmk::markFrameLookup(Value Frame, Value Key) {
  if (!Frame.isMarkFrame())
    return Value::undefined();
  MarkFrameObj *F = asMarkFrame(Frame);
  for (uint32_t I = 0; I < F->NumEntries; ++I)
    if (F->Entries[2 * I] == Key)
      return F->Entries[2 * I + 1];
  return Value::undefined();
}

Value cmk::markListFirst(Heap &H, Value Marks, Value Key, Value Dflt,
                         Value UntilTail) {
  // Walk the attachment list. A cache hit at a cell is valid only when it
  // was computed against the same tail (frames can be shared between
  // chains by composable-continuation splicing).
  int64_t Depth = 0;
  Value P = Marks;
  Value Result = Value::undefined();
  bool Found = false;
  bool CacheHit = false;
  CMK_STAT_DETAIL(H.vmStats(), MarkFirstLookups);

  while (P.isPair() && P != UntilTail) {
    Value Att = car(P);
    if (Att.isMarkFrame()) {
      MarkFrameObj *F = asMarkFrame(Att);
      // The cache is only sound for undelimited searches: a delimited
      // query must not see results from (or cache misses over) frames
      // below its prompt boundary.
      if (UntilTail.isUndefined() && (F->H.Aux & CacheValidBit) &&
          F->CacheKey == Key && F->CacheTail == cdr(P)) {
        CacheHit = true;
        // Cached answer for "first mark for Key from here down".
        Value Direct = markFrameLookup(Att, Key);
        if (!Direct.isUndefined()) {
          Result = Direct;
        } else if (!F->CacheVal.isUndefined()) {
          Result = F->CacheVal;
        } else {
          break; // Cached not-found.
        }
        Found = true;
        break;
      }
      Value V = markFrameLookup(Att, Key);
      if (!V.isUndefined()) {
        Result = V;
        Found = true;
        break;
      }
    }
    P = cdr(P);
    ++Depth;
  }

  CMK_STAT_DETAIL_ADD(H.vmStats(), MarkFirstCellsWalked,
                      static_cast<uint64_t>(Depth));
  if (UntilTail.isUndefined()) {
    if (CacheHit) {
      CMK_STAT_DETAIL(H.vmStats(), MarkFirstCacheHits);
      CMK_TRACE_DETAIL(H.traceBuf(), MarkCacheHit);
    } else {
      CMK_STAT_DETAIL(H.vmStats(), MarkFirstCacheMisses);
    }
  }

  // Path compression (paper 7.5): cache the answer at depth N/2 so repeated
  // queries converge to amortized constant time.
  if (Depth >= 4 && UntilTail.isUndefined()) {
    Value Q = Marks;
    for (int64_t I = 0; I < Depth / 2; ++I)
      Q = cdr(Q);
    if (Q.isPair() && car(Q).isMarkFrame()) {
      MarkFrameObj *F = asMarkFrame(car(Q));
      F->CacheKey = Key;
      F->CacheVal = Found ? Result : Value::undefined();
      F->CacheTail = cdr(Q);
      F->H.Aux |= CacheValidBit;
      CMK_STAT_DETAIL(H.vmStats(), MarkFirstCacheInstalls);
      CMK_TRACE_DETAIL(H.traceBuf(), MarkCacheInstall);
    }
  }
  return Found ? Result : Dflt;
}

Value cmk::markListAll(Heap &H, Value Marks, Value Key, Value UntilTail) {
  GCRoot KeyRoot(H, Key), MarksRoot(H, Marks), Until(H, UntilTail);
  RootedValues Vals(H);
  for (Value P = MarksRoot.get(); P.isPair() && P != Until.get(); P = cdr(P)) {
    Value Att = car(P);
    if (!Att.isMarkFrame())
      continue;
    Value V = markFrameLookup(Att, KeyRoot.get());
    if (!V.isUndefined())
      Vals.push(V);
  }
  GCRoot Acc(H, Value::nil());
  for (size_t I = Vals.size(); I > 0; --I)
    Acc.set(H.makePair(Vals[I - 1], Acc.get()));
  return Acc.get();
}

Value cmk::parameterLookup(VM &M, Value Param) {
  ParameterObj *P = asParameter(Param);
  if (M.config().MarkStackMode) {
    for (size_t I = M.MarkStack.size(); I > 0; --I)
      if (M.MarkStack[I - 1].Key == P->Key)
        return M.MarkStack[I - 1].Val;
    return P->Default;
  }
  return markListFirst(M.heap(), M.currentMarksList(), P->Key, P->Default);
}
