//===- marks/marks.h - The continuation-marks layer ------------*- C++ -*-===//
///
/// \file
/// Racket-style continuation marks implemented over continuation
/// attachments (paper section 7.5). A frame's attachment is a MarkFrame: a
/// small immutable key/value dictionary plus a cache used for the N/2
/// path-compression that makes continuation-mark-set-first amortized
/// constant time.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_MARKS_MARKS_H
#define CMARKS_MARKS_MARKS_H

#include "runtime/value.h"

namespace cmk {

class VM;
class Heap;

/// Returns a MarkFrame derived from \p FrameOrFalse (a MarkFrame or #f)
/// with \p Key bound to \p Val (replacing any existing binding).
Value markFrameUpdate(Heap &H, Value FrameOrFalse, Value Key, Value Val);

/// Looks up \p Key in the mark frame; returns undefined when absent.
Value markFrameLookup(Value Frame, Value Key);

/// Finds the newest value for \p Key in the attachment list \p Marks.
/// Implements the N/2 path-compression caching of paper 7.5: when a result
/// is found at depth N, it is cached on the mark frame at depth N/2
/// (validated against the list tail so sharing frames between chains is
/// sound). Returns \p Dflt when no frame maps the key. \p UntilTail (a
/// shared list tail, or undefined) delimits the search at a prompt.
Value markListFirst(Heap &H, Value Marks, Value Key, Value Dflt,
                    Value UntilTail = Value::undefined());

/// Collects every value for \p Key in \p Marks, newest first. \p UntilTail
/// (a list tail or nil) delimits the walk for prompt-local marks.
Value markListAll(Heap &H, Value Marks, Value Key, Value UntilTail);

/// Reads the current binding of a parameter object (lib/parameters).
Value parameterLookup(VM &M, Value Param);

void installMarkPrimitives(VM &M);

} // namespace cmk

#endif // CMARKS_MARKS_MARKS_H
