//===- marks/mark_set.cpp - Mark sets, ->list, -first, iterator -*- C++ -*-==//
///
/// \file
/// The user-facing continuation-mark operations of paper section 2:
/// current-continuation-marks, continuation-marks,
/// continuation-mark-set->list, continuation-mark-set-first (amortized
/// constant time via mark_frame.cpp's caching), and
/// continuation-mark-set->iterator. Each operation also has a mark-stack
/// path for the old-Racket comparator mode.
///
//===----------------------------------------------------------------------===//

#include "marks/marks.h"

#include "runtime/heap.h"
#include "vm/vm.h"

using namespace cmk;

namespace {

Value markSetTag(VM &M) { return M.heap().intern("#%mark-set"); }
Value markIterTag(VM &M) { return M.heap().intern("#%mark-iterator"); }

bool isMarkSet(VM &M, Value V) {
  return V.isRecord() && asRecord(V)->TypeTag == markSetTag(M);
}

/// Builds a mark set from an explicit marks list (attachment mode).
/// \p Boundary is a shared list tail delimiting the set at a prompt, or
/// nil for an undelimited set.
Value makeMarkSetFromList(VM &M, Value Marks, Value Boundary) {
  GCRoot Root(M.heap(), Marks), BRoot(M.heap(), Boundary);
  Value R = M.heap().makeRecord(markSetTag(M), 2, Value::nil());
  asRecord(R)->Fields[0] = Root.get();
  asRecord(R)->Fields[1] = BRoot.get();
  return R;
}

/// Captures the current marks as a set. In mark-stack mode this copies the
/// whole stack (the old-Racket cost model); in attachment mode it shares
/// the immutable marks list (amortized constant time, paper 2.2).
Value captureCurrentMarks(VM &M, Value Boundary = Value::nil()) {
  CMK_STAT_DETAIL(&M.stats(), MarkSetCaptures);
  CMK_TRACE_DETAIL(&M.trace(), MarkSetCapture);
  if (!M.config().MarkStackMode)
    return makeMarkSetFromList(M, M.currentMarksList(), Boundary);
  uint32_t N = static_cast<uint32_t>(M.MarkStack.size());
  Value Copy = M.heap().makeVector(2 * N, Value::fixnum(0));
  for (uint32_t I = 0; I < N; ++I) {
    // Newest first in the snapshot.
    const MarkStackEntry &E = M.MarkStack[N - 1 - I];
    asVector(Copy)->Elems[2 * I] = E.Key;
    asVector(Copy)->Elems[2 * I + 1] = E.Val;
  }
  GCRoot CopyRoot(M.heap(), Copy);
  Value R = M.heap().makeRecord(markSetTag(M), 2, Value::nil());
  asRecord(R)->Fields[0] = CopyRoot.get();
  asRecord(R)->Fields[1] = Value::nil();
  return R;
}

/// The prompt-delimiting boundary tail of a set (nil when undelimited).
Value setBoundary(VM &M, Value SetOrFalse) {
  if (SetOrFalse.isFalse() || !isMarkSet(M, SetOrFalse))
    return Value::nil();
  RecordObj *R = asRecord(SetOrFalse);
  return R->NumFields > 1 ? R->Fields[1] : Value::nil();
}

Value setContents(VM &M, Value SetOrFalse) {
  if (SetOrFalse.isFalse()) {
    // #f is shorthand for (current-continuation-marks), paper 2.2.
    if (M.config().MarkStackMode) {
      Value Set = captureCurrentMarks(M);
      return asRecord(Set)->Fields[0];
    }
    return M.currentMarksList();
  }
  if (!isMarkSet(M, SetOrFalse)) {
    typeError(M, "continuation-mark-set", "mark set or #f", SetOrFalse);
    return Value::undefined();
  }
  return asRecord(SetOrFalse)->Fields[0];
}

Value nativeCurrentMarks(VM &M, Value *Args, uint32_t NArgs) {
  Value Boundary = Value::nil();
  if (NArgs > 0 && !Args[0].isFalse()) {
    // Delimit the set at the innermost prompt with the given tag.
    Value P = M.Regs.NextK;
    Value Found = Value::undefined();
    for (; P.isCont(); P = asCont(P)->Next) {
      Value Meta = asCont(P)->PromptTag;
      if (Meta.isPair() && car(Meta) == Args[0]) {
        Found = asCont(P)->Marks;
        break;
      }
    }
    if (Found.isUndefined())
      return M.raiseError(
          "current-continuation-marks: no prompt with the given tag");
    Boundary = Found;
  }
  return captureCurrentMarks(M, Boundary);
}

Value nativeContinuationMarks(VM &M, Value *Args, uint32_t) {
  if (Args[0].isCont()) {
    ContObj *K = asCont(Args[0]);
    if (M.config().MarkStackMode && K->MarkStackCopy.isVector()) {
      // Convert the 4-wide mark-stack snapshot into a 2-wide set snapshot.
      GCRoot KRoot(M.heap(), Args[0]);
      VectorObj *Src = asVector(K->MarkStackCopy);
      uint32_t N = Src->Len / 4;
      Value Copy = M.heap().makeVector(2 * N, Value::fixnum(0));
      Src = asVector(asCont(KRoot.get())->MarkStackCopy);
      for (uint32_t I = 0; I < N; ++I) {
        asVector(Copy)->Elems[2 * I] = Src->Elems[4 * (N - 1 - I) + 2];
        asVector(Copy)->Elems[2 * I + 1] = Src->Elems[4 * (N - 1 - I) + 3];
      }
      GCRoot CopyRoot(M.heap(), Copy);
      Value R = M.heap().makeRecord(markSetTag(M), 2, Value::nil());
      asRecord(R)->Fields[0] = CopyRoot.get();
      asRecord(R)->Fields[1] = Value::nil();
      return R;
    }
    return makeMarkSetFromList(M, K->Marks, Value::nil());
  }
  return typeError(M, "continuation-marks", "continuation", Args[0]);
}

Value nativeMarkSetP(VM &M, Value *Args, uint32_t) {
  return Value::boolean(isMarkSet(M, Args[0]));
}

Value nativeMarkSetToList(VM &M, Value *Args, uint32_t) {
  Value Contents = setContents(M, Args[0]);
  if (M.failed())
    return Value::undefined();
  if (Contents.isVector()) {
    // Mark-stack snapshot: entries are (key, val) newest first.
    GCRoot Snap(M.heap(), Contents), Key(M.heap(), Args[1]);
    RootedValues Vals(M.heap());
    VectorObj *V = asVector(Snap.get());
    for (uint32_t I = 0; I < V->Len; I += 2)
      if (asVector(Snap.get())->Elems[I] == Key.get())
        Vals.push(asVector(Snap.get())->Elems[I + 1]);
    GCRoot Acc(M.heap(), Value::nil());
    for (size_t I = Vals.size(); I > 0; --I)
      Acc.set(M.heap().makePair(Vals[I - 1], Acc.get()));
    return Acc.get();
  }
  return markListAll(M.heap(), Contents, Args[1], setBoundary(M, Args[0]));
}

Value nativeMarkSetFirst(VM &M, Value *Args, uint32_t NArgs) {
  Value Dflt = NArgs > 2 ? Args[2] : Value::False();
  if (Args[0].isFalse() && !M.config().MarkStackMode)
    return markListFirst(M.heap(), M.currentMarksList(), Args[1], Dflt);
  if (Args[0].isFalse() && M.config().MarkStackMode) {
    // Old-Racket mode: walk the live mark stack newest-first.
    for (size_t I = M.MarkStack.size(); I > 0; --I)
      if (M.MarkStack[I - 1].Key == Args[1])
        return M.MarkStack[I - 1].Val;
    return Dflt;
  }
  Value Contents = setContents(M, Args[0]);
  if (M.failed())
    return Value::undefined();
  if (Contents.isVector()) {
    VectorObj *V = asVector(Contents);
    for (uint32_t I = 0; I < V->Len; I += 2)
      if (V->Elems[I] == Args[1])
        return V->Elems[I + 1];
    return Dflt;
  }
  Value Boundary = setBoundary(M, Args[0]);
  return markListFirst(M.heap(), Contents, Args[1], Dflt,
                       Boundary.isNil() ? Value::undefined() : Boundary);
}

/// (continuation-mark-set->iterator set keys) -> iterator record holding
/// the remaining marks chain and the key list.
Value nativeMarkSetToIterator(VM &M, Value *Args, uint32_t) {
  Value Contents = setContents(M, Args[0]);
  if (M.failed())
    return Value::undefined();
  if (listLength(Args[1]) < 0)
    return typeError(M, "continuation-mark-set->iterator", "list of keys",
                     Args[1]);
  GCRoot ContentsRoot(M.heap(), Contents), Keys(M.heap(), Args[1]);
  GCRoot Boundary(M.heap(), setBoundary(M, Args[0]));
  Value It = M.heap().makeRecord(markIterTag(M), 3, Value::nil());
  asRecord(It)->Fields[0] = ContentsRoot.get();
  asRecord(It)->Fields[1] = Keys.get();
  asRecord(It)->Fields[2] = Boundary.get();
  return It;
}

/// (#%mark-iterator-next it) -> #f when exhausted, else
/// (vector-of-values . next-iterator); absent keys yield #f in the vector.
/// Cost is proportional to the continuation prefix explored (paper 2.2).
Value nativeMarkIteratorNext(VM &M, Value *Args, uint32_t) {
  if (!Args[0].isRecord() || asRecord(Args[0])->TypeTag != markIterTag(M))
    return typeError(M, "#%mark-iterator-next", "mark iterator", Args[0]);
  GCRoot It(M.heap(), Args[0]);
  Value Keys = asRecord(It.get())->Fields[1];
  int64_t NKeys = listLength(Keys);

  Value P = asRecord(It.get())->Fields[0];
  if (P.isVector()) {
    // Mark-stack snapshots do not support frame grouping; treat each entry
    // as its own frame. Fields[0] holds the vector plus an index encoded
    // in Fields[1]... keep it simple: not supported in mark-stack mode.
    return M.raiseError(
        "#%mark-iterator-next: iterators require attachment mode");
  }

  Value Boundary = asRecord(It.get())->Fields[2];
  while (P.isPair() && P != Boundary) {
    Value Att = car(P);
    if (Att.isMarkFrame()) {
      bool Any = false;
      for (Value K = Keys; K.isPair(); K = cdr(K))
        if (!markFrameLookup(Att, car(K)).isUndefined())
          Any = true;
      if (Any) {
        GCRoot Cell(M.heap(), P);
        Value Vec = M.heap().makeVector(static_cast<uint32_t>(NKeys),
                                        Value::False());
        Value K = asRecord(It.get())->Fields[1];
        Value AttNow = car(Cell.get());
        for (int64_t I = 0; I < NKeys; ++I, K = cdr(K)) {
          Value V = markFrameLookup(AttNow, car(K));
          asVector(Vec)->Elems[I] = V.isUndefined() ? Value::False() : V;
        }
        GCRoot VecRoot(M.heap(), Vec);
        Value NextIt = M.heap().makeRecord(markIterTag(M), 3, Value::nil());
        asRecord(NextIt)->Fields[0] = cdr(Cell.get());
        asRecord(NextIt)->Fields[1] = asRecord(It.get())->Fields[1];
        asRecord(NextIt)->Fields[2] = asRecord(It.get())->Fields[2];
        return M.heap().makePair(VecRoot.get(), NextIt);
      }
    }
    P = cdr(P);
  }
  return Value::False();
}

/// (call-with-immediate-continuation-mark key proc [default]): delivers the
/// current frame's mark for key (or the default) to proc in tail position
/// (paper 2.2: a primitive that returned the value directly would be
/// useless, since calling it non-tail would create a new frame).
Value nativeCallWithImmediateMark(VM &M, Value *Args, uint32_t NArgs) {
  if (!Args[1].isProcedure())
    return typeError(M, "call-with-immediate-continuation-mark", "procedure",
                     Args[1]);
  Value Dflt = NArgs > 2 ? Args[2] : Value::False();
  Value Result = Dflt;

  if (M.config().MarkStackMode) {
    if (M.NativeTailCall) {
      for (size_t I = M.MarkStack.size(); I > 0; --I) {
        const MarkStackEntry &E = M.MarkStack[I - 1];
        if (!(E.Seg == M.Regs.Seg) || E.Fp != M.Regs.Fp)
          break;
        if (E.Key == Args[0]) {
          Result = E.Val;
          break;
        }
      }
    }
  } else if (M.NativeTailCall) {
    // The conceptual frame is the caller's frame (tail call).
    StackSegObj *S = asStackSeg(M.Regs.Seg);
    bool Reified = S->Slots[M.Regs.Fp + 1].isUnderflowSentinel();
    Value RestMarks =
        M.Regs.NextK.isNil() ? Value::nil() : asCont(M.Regs.NextK)->Marks;
    if (Reified && M.Regs.Marks != RestMarks &&
        car(M.Regs.Marks).isMarkFrame()) {
      Value V = markFrameLookup(car(M.Regs.Marks), Args[0]);
      if (!V.isUndefined())
        Result = V;
    }
  }
  // Non-tail: the conceptual frame is fresh and has no marks.

  Value CallArgs[1] = {Result};
  M.scheduleTailCall(Args[1], CallArgs, 1);
  return Value::voidValue();
}

Value nativeMarkFrameUpdate(VM &M, Value *Args, uint32_t) {
  return markFrameUpdate(M.heap(), Args[0], Args[1], Args[2]);
}

Value nativeMstkWcmDynamic(VM &M, Value *Args, uint32_t) {
  // Support for dynamic (non-compiled) with-continuation-mark in
  // mark-stack mode, used by the library layer: pushes an entry for the
  // caller's frame, runs the thunk, and relies on frame return to pop.
  if (!Args[2].isProcedure())
    return typeError(M, "#%mstk-wcm", "procedure", Args[2]);
  M.MarkStack.push_back({M.Regs.Seg, M.Regs.Fp, Args[0], Args[1]});
  M.scheduleTailCall(Args[2], nullptr, 0);
  return Value::voidValue();
}

} // namespace

void cmk::installMarkPrimitives(VM &M) {
  M.defineNative("current-continuation-marks", nativeCurrentMarks, 0, 1);
  M.defineNative("continuation-marks", nativeContinuationMarks, 1, 1);
  M.defineNative("continuation-mark-set?", nativeMarkSetP, 1, 1);
  M.defineNative("continuation-mark-set->list", nativeMarkSetToList, 2, 2);
  M.defineNative("continuation-mark-set-first", nativeMarkSetFirst, 2, 3);
  M.defineNative("continuation-mark-set->iterator", nativeMarkSetToIterator,
                 2, 2);
  M.defineNative("#%mark-iterator-next", nativeMarkIteratorNext, 1, 1);
  M.defineNative("call-with-immediate-continuation-mark",
                 nativeCallWithImmediateMark, 2, 3);
  M.defineNative("#%mark-frame-update", nativeMarkFrameUpdate, 3, 3);
  M.defineNative("#%mstk-wcm", nativeMstkWcmDynamic, 3, 3);
}
