//===- support/trace.h - VM event-tracing subsystem -----------*- C++ -*-===//
///
/// \file
/// Per-engine structured event tracing: the *when* and *in what order*
/// companion to the aggregate counters of support/stats.h. Every counter
/// the evaluation sections reason about has a corresponding timestamped
/// event here — reification split by cause (7.2), opportunistic one-shot
/// fusion versus copy-on-application (6), segment allocation and overflow
/// splits (5), call/cc capture and application, dynamic-wind entry/exit,
/// mark-frame representation transitions, and mark-cache behaviour (7.5)
/// — so a run can be rendered as a timeline instead of a total.
///
/// Two tiers, mirroring stats.h:
///
///  - The *cheap tier* is always compiled in. Its record sites sit on
///    paths that already allocate or copy; when tracing is stopped each
///    site costs one pointer load and one predictable branch.
///  - The *detail tier* (per-update mark-frame events, per-lookup cache
///    events) sits on genuinely hot paths and is compiled in only when
///    `CMARKS_TRACE` is nonzero (CMake option `CMARKS_TRACE`, default
///    OFF). Disabling it removes even the branch.
///
/// Events land in a fixed-capacity ring buffer: recording never
/// allocates, and a long run keeps the *newest* window of events (with a
/// dropped-event count for honesty). Span-shaped events (wcm extents,
/// dynamic-wind bodies, user profiling spans) come in Begin/End pairs so
/// the Chrome trace-event export renders them as stacked slices; the
/// exporter re-balances pairs broken by ring wraparound or by
/// continuation jumps.
///
/// The export format is Chrome trace-event JSON ("traceEvents" array of
/// B/E/i phases, microsecond timestamps), loadable in ui.perfetto.dev or
/// chrome://tracing, tagged with schema "cmarks-trace-v1" in otherData.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_TRACE_H
#define CMARKS_SUPPORT_TRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#ifndef CMARKS_TRACE
#define CMARKS_TRACE 0
#endif

namespace cmk {

/// Every traced event kind, cheap tier first. Keep in sync with the
/// descriptor table in trace.cpp (traceEventDescs).
enum class TraceEv : uint8_t {
  // --- Cheap tier: reification, by cause (paper 6/7.2) ---------------------
  ReifyTailFrame,  ///< reifyCurrentFrame: tail attachment ops, tail capture.
  ReifySplit,      ///< reifyAtSp: non-tail capture, CallAttach, overflow.
  AttachCallReify, ///< The CallAttach convention forced a reification.
  AttachOpReify,   ///< A generic 7.1 attachment native forced one.
  // --- Cheap tier: one-shot accounting (paper 6) ---------------------------
  UnderflowFuse,   ///< Opportunistic one-shot fused back without copying.
  UnderflowCopy,   ///< Copy-on-application restore.
  OneShotPromote,  ///< Record promoted Opportunistic/one-shot -> Full.
  // --- Cheap tier: continuations and segments ------------------------------
  Capture,         ///< call/cc or call/1cc capture (arg: 1 for call/1cc).
  ContApply,       ///< Continuation applied to a value.
  ContJump,        ///< Machine jumped to a continuation (aborts, prompts).
  SegmentAlloc,    ///< Stack segment allocated (arg: capacity in slots).
  SegmentOverflow, ///< Stack split forced by a segment limit.
  // --- Cheap tier: span-shaped VM events -----------------------------------
  WindEnter,       ///< dynamic-wind extent entered (Begin).
  WindExit,        ///< dynamic-wind extent left (End).
  MarksPush,       ///< Non-tail wcm extent entered: marks-register push
                   ///< (Begin).
  MarksPop,        ///< wcm extent left: an explicit marks-register pop, or
                   ///< an underflow restoring a record whose marks list is
                   ///< shorter than the register's (End; one per pop).
  AttachSet,       ///< Tail-position attachment set on a reified frame
                   ///< (Begin; the extent ends at consume or underflow).
  AttachConsume,   ///< Tail-position attachment consumed (End).
  // --- Cheap tier: user profiling spans (#%trace-span-* natives) -----------
  SpanBegin,       ///< Labeled user span opened.
  SpanEnd,         ///< Labeled user span closed.
  Instant,         ///< Labeled user instant (stack snapshots).
  // --- Cheap tier: serving-job correlation (support/pool.h) -----------------
  JobBegin,        ///< Pool job started on this engine (label "job-<id>",
                   ///< arg = job id; Begin).
  JobEnd,          ///< Pool job finished (End).
  // --- Cheap tier: worker supervision (support/pool.h) ----------------------
  WorkerRestartBegin, ///< Pool worker began rebuilding its engine after a
                      ///< fatal (beyond-reserve) job failure (arg = worker
                      ///< index; Begin). Recorded in the replacement
                      ///< engine's ring, whose epoch starts at the rebuild.
  WorkerRestartEnd,   ///< Replacement engine is serving again (arg = full
                      ///< rebuild time in ns, including engine
                      ///< construction; End).
  // --- Cheap tier: segment recycling (paper 5) -------------------------------
  SegmentRecycle,  ///< Segment request served from the recycling pool
                   ///< instead of malloc (arg: capacity in slots).
  // --- Detail tier (CMARKS_TRACE-gated): marks layer (paper 7.5) -----------
  MarkFrameCreate, ///< "no attachment" -> one-mark frame.
  MarkFrameExtend, ///< N-entry frame -> (N+1)-entry frame.
  MarkFrameRebind, ///< Same-size copy overwriting a binding.
  MarkCacheHit,    ///< continuation-mark-set-first answered from the cache.
  MarkCacheInstall,///< N/2 path-compression cache install.
  MarkSetCapture,  ///< current-continuation-marks et al. captured a set.

  NumKinds
};

/// One recorded event. Fixed-size so the ring buffer is allocation-free:
/// labels are truncated into the inline array.
struct TraceEvent {
  uint64_t TimeNs; ///< steady-clock nanoseconds (cmk::nowNanos).
  uint64_t Arg;    ///< Kind-specific payload (slot counts, flags), else 0.
  TraceEv Kind;
  char Label[23];  ///< NUL-terminated; empty = use the kind's name.
};

static_assert(sizeof(TraceEvent) == 40, "keep the ring buffer dense");

/// One row of the event descriptor table: stable external names for the
/// JSON export, a Perfetto category, the span phase, and the tier.
struct TraceEventDesc {
  const char *Name;     ///< Kebab-case, e.g. "underflow-fuse".
  const char *Category; ///< Perfetto category, e.g. "reify", "marks".
  char Phase;           ///< 'B' begin, 'E' end, 'i' instant.
  bool Detail;          ///< True for detail-tier events.
};

/// The full descriptor table, indexed by TraceEv. \p Count receives the
/// number of entries (== TraceEv::NumKinds).
const TraceEventDesc *traceEventDescs(int &Count);

/// True when the detail tier was compiled in (CMARKS_TRACE != 0).
constexpr bool traceDetailEnabled() { return CMARKS_TRACE != 0; }

/// Fixed-capacity ring of TraceEvents. One per VM; recording is enabled
/// and disabled at runtime ((runtime-trace-start!) / -stop!), and the
/// cheap-tier macros below compile to a pointer test when stopped.
class TraceBuffer {
public:
  static constexpr uint32_t DefaultCapacity = 64 * 1024;
  static constexpr uint32_t MinCapacity = 8;

  /// Recording gate; tested by every record site. Public so the macro can
  /// read it without a call.
  bool Enabled = false;

  /// Clears the buffer and starts recording. \p Capacity of 0 keeps the
  /// current capacity (DefaultCapacity initially). The trace epoch (JSON
  /// ts 0) is the moment of this call.
  void start(uint32_t Capacity = 0);

  /// Stops recording; the buffer's contents stay exportable.
  void stop() { Enabled = false; }

  /// Drops all events (and sets capacity when nonzero) without touching
  /// the enabled flag or the epoch.
  void reset(uint32_t Capacity = 0);

  /// Records an event; the ring overwrites the oldest once full.
  void record(TraceEv Kind, uint64_t Arg = 0);

  /// Records with a label (truncated to the inline array).
  void record(TraceEv Kind, const char *Label, size_t LabelLen,
              uint64_t Arg = 0);

  /// Number of events currently held (<= capacity).
  uint64_t size() const;
  /// Events recorded since start(); size() + dropped().
  uint64_t total() const { return Head; }
  /// Events overwritten by ring wraparound.
  uint64_t dropped() const;
  uint32_t capacity() const { return Cap; }
  /// TimeNs of the last start(); 0 before the first. Used to place this
  /// buffer on a common timeline when merging multi-engine traces.
  uint64_t epochNs() const { return EpochNs; }

  /// The \p I-th held event, oldest first (0 <= I < size()).
  const TraceEvent &at(uint64_t I) const;

  /// Serializes the buffer as Chrome trace-event JSON (Perfetto-loadable;
  /// schema "cmarks-trace-v1"). Unbalanced Begin/End pairs — ring
  /// wraparound, continuation jumps out of an extent — are repaired:
  /// orphaned Ends are dropped, unclosed Begins are closed at the final
  /// timestamp.
  std::string toJson() const;

  /// toJson() to a stream. Returns false on a write error.
  bool writeJson(std::FILE *Out) const;

  /// Copyable: EnginePool workers snapshot their ring into pool-owned
  /// storage before the engine dies, so a pool-wide timeline can be
  /// exported after shutdown.

private:
  std::vector<TraceEvent> Events;
  uint32_t Cap = 0;    ///< Allocated lazily on first start()/reset().
  uint64_t Head = 0;   ///< Monotonic count of events ever recorded.
  uint64_t EpochNs = 0;///< TimeNs of start(); JSON ts are relative to it.
};

/// Merges several engines' trace buffers into one Chrome trace-event JSON
/// document: buffer I renders as tid I+1 named \p ThreadNames[I], all on
/// a common timeline anchored at the earliest buffer epoch. Used by
/// EnginePool to show named per-job spans across workers. Buffers that
/// never started are skipped.
std::string mergedTraceJson(const std::vector<const TraceBuffer *> &Buffers,
                            const std::vector<std::string> &ThreadNames);

} // namespace cmk

// Cheap-tier record through a TraceBuffer lvalue (VM-internal sites):
// one flag test when tracing is stopped.
#define CMK_TRACE_EV(TB, KIND, ...)                                            \
  do {                                                                         \
    if ((TB).Enabled)                                                          \
      (TB).record(::cmk::TraceEv::KIND, ##__VA_ARGS__);                        \
  } while (false)

// Cheap-tier record through a possibly-null TraceBuffer pointer (heap- and
// marks-layer sites that may run without an attached VM).
#define CMK_TRACE_EV_P(TPtr, KIND, ...)                                        \
  do {                                                                         \
    ::cmk::TraceBuffer *CmkT_ = (TPtr);                                        \
    if (CmkT_ && CmkT_->Enabled)                                               \
      CmkT_->record(::cmk::TraceEv::KIND, ##__VA_ARGS__);                      \
  } while (false)

// Detail-tier record: same as CMK_TRACE_EV_P when CMARKS_TRACE is nonzero,
// nothing at all otherwise.
#if CMARKS_TRACE
#define CMK_TRACE_DETAIL(TPtr, KIND, ...)                                      \
  CMK_TRACE_EV_P(TPtr, KIND, ##__VA_ARGS__)
#else
#define CMK_TRACE_DETAIL(TPtr, KIND, ...) ((void)0)
#endif

#endif // CMARKS_SUPPORT_TRACE_H
