//===- support/trace.cpp - Trace ring buffer and JSON export ---*- C++ -*-===//
///
/// \file
/// TraceBuffer implementation: the event descriptor table, the ring
/// recording path, and the Chrome trace-event JSON exporter with
/// Begin/End re-balancing.
///
//===----------------------------------------------------------------------===//

#include "support/trace.h"
#include "support/timing.h"

#include <cstring>

using namespace cmk;

// Keep in declaration order of TraceEv; the exporter indexes by kind.
static const TraceEventDesc Descs[] = {
    {"reify-tail-frame", "reify", 'i', false},
    {"reify-split", "reify", 'i', false},
    {"attach-call-reify", "reify", 'i', false},
    {"attach-op-reify", "reify", 'i', false},
    {"underflow-fuse", "oneshot", 'i', false},
    {"underflow-copy", "oneshot", 'i', false},
    {"one-shot-promote", "oneshot", 'i', false},
    {"capture", "cont", 'i', false},
    {"cont-apply", "cont", 'i', false},
    {"cont-jump", "cont", 'i', false},
    {"segment-alloc", "segment", 'i', false},
    {"segment-overflow", "segment", 'i', false},
    {"dynamic-wind", "wind", 'B', false},
    {"dynamic-wind", "wind", 'E', false},
    {"wcm", "marks", 'B', false},
    {"wcm", "marks", 'E', false},
    {"wcm-tail", "marks", 'B', false},
    {"wcm-tail", "marks", 'E', false},
    {"span", "scheme", 'B', false},
    {"span", "scheme", 'E', false},
    {"snapshot", "scheme", 'i', false},
    {"job", "job", 'B', false},
    {"job", "job", 'E', false},
    {"worker-restart", "supervision", 'B', false},
    {"worker-restart", "supervision", 'E', false},
    {"segment-recycle", "segment", 'i', false},
    {"mark-frame-create", "marks-detail", 'i', true},
    {"mark-frame-extend", "marks-detail", 'i', true},
    {"mark-frame-rebind", "marks-detail", 'i', true},
    {"mark-cache-hit", "marks-detail", 'i', true},
    {"mark-cache-install", "marks-detail", 'i', true},
    {"mark-set-capture", "marks-detail", 'i', true},
};

static_assert(sizeof(Descs) / sizeof(Descs[0]) ==
                  static_cast<size_t>(TraceEv::NumKinds),
              "descriptor table out of sync with TraceEv");

const TraceEventDesc *cmk::traceEventDescs(int &Count) {
  Count = static_cast<int>(TraceEv::NumKinds);
  return Descs;
}

void TraceBuffer::start(uint32_t Capacity) {
  reset(Capacity ? Capacity : (Cap ? Cap : DefaultCapacity));
  EpochNs = nowNanos();
  Enabled = true;
}

void TraceBuffer::reset(uint32_t Capacity) {
  if (Capacity) {
    Cap = Capacity < MinCapacity ? MinCapacity : Capacity;
    Events.assign(Cap, TraceEvent{});
  }
  Head = 0;
}

void TraceBuffer::record(TraceEv Kind, uint64_t Arg) {
  if (!Cap)
    reset(DefaultCapacity);
  TraceEvent &E = Events[Head % Cap];
  E.TimeNs = nowNanos();
  E.Arg = Arg;
  E.Kind = Kind;
  E.Label[0] = '\0';
  ++Head;
}

void TraceBuffer::record(TraceEv Kind, const char *Label, size_t LabelLen,
                         uint64_t Arg) {
  if (!Cap)
    reset(DefaultCapacity);
  TraceEvent &E = Events[Head % Cap];
  E.TimeNs = nowNanos();
  E.Arg = Arg;
  E.Kind = Kind;
  size_t N = LabelLen < sizeof(E.Label) - 1 ? LabelLen : sizeof(E.Label) - 1;
  std::memcpy(E.Label, Label, N);
  E.Label[N] = '\0';
  ++Head;
}

uint64_t TraceBuffer::size() const { return Head < Cap ? Head : Cap; }

uint64_t TraceBuffer::dropped() const { return Head < Cap ? 0 : Head - Cap; }

const TraceEvent &TraceBuffer::at(uint64_t I) const {
  uint64_t Oldest = Head < Cap ? 0 : Head - Cap;
  return Events[(Oldest + I) % Cap];
}

namespace {

void appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    unsigned char C = static_cast<unsigned char>(*S);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
}

/// Appends one Chrome trace-event object. \p Ts is microseconds relative
/// to the trace epoch; \p Name overrides the descriptor name when given.
void appendEvent(std::string &Out, const TraceEventDesc &D, char Phase,
                 double Ts, const char *Name, uint64_t Arg, bool First,
                 int Tid = 1) {
  if (!First)
    Out += ",\n";
  char Buf[96];
  Out += "    {\"name\":\"";
  appendEscaped(Out, Name && Name[0] ? Name : D.Name);
  Out += "\",\"cat\":\"";
  Out += D.Category;
  std::snprintf(Buf, sizeof(Buf),
                "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d", Phase, Ts,
                Tid);
  Out += Buf;
  if (Phase != 'E') {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"args\":{\"n\":%llu}",
                  static_cast<unsigned long long>(Arg));
    Out += Buf;
  }
  Out += "}";
}

/// Emits one buffer's events as tid \p Tid, timestamps relative to
/// \p EpochNs, repairing Begin/End balance exactly as toJson always has:
/// orphaned Ends are dropped, unclosed Begins are closed at the final
/// timestamp. The export-side stack is per buffer — spans never cross
/// engines.
void appendBufferEvents(std::string &Out, const TraceBuffer &TB,
                        uint64_t EpochNs, int Tid) {
  struct OpenSpan {
    const TraceEventDesc *D;
    std::string Name;
  };
  std::vector<OpenSpan> Open;

  int NumDescs = 0;
  const TraceEventDesc *DTable = traceEventDescs(NumDescs);
  uint64_t N = TB.size();
  double LastTs = 0.0;
  for (uint64_t I = 0; I < N; ++I) {
    const TraceEvent &E = TB.at(I);
    const TraceEventDesc &D = DTable[static_cast<size_t>(E.Kind)];
    // Events recorded before start() reset the epoch cannot exist (start
    // clears the ring), so TimeNs >= EpochNs always holds.
    double Ts = static_cast<double>(E.TimeNs - EpochNs) / 1e3;
    LastTs = Ts;
    if (D.Phase == 'B') {
      const char *Name = E.Label[0] ? E.Label : D.Name;
      appendEvent(Out, D, 'B', Ts, Name, E.Arg, false, Tid);
      Open.push_back({&D, Name});
    } else if (D.Phase == 'E') {
      // An End with no matching Begin in the retained window (ring
      // wraparound dropped it, or a continuation jump skipped the Begin):
      // emitting it would corrupt nesting, so drop it.
      if (Open.empty())
        continue;
      appendEvent(Out, *Open.back().D, 'E', Ts, Open.back().Name.c_str(),
                  E.Arg, false, Tid);
      Open.pop_back();
    } else {
      appendEvent(Out, D, D.Phase, Ts, E.Label, E.Arg, false, Tid);
    }
  }
  // Close spans left open (still running at stop, or exited by a
  // continuation jump whose resumption was never traced).
  while (!Open.empty()) {
    appendEvent(Out, *Open.back().D, 'E', LastTs, Open.back().Name.c_str(), 0,
                false, Tid);
    Open.pop_back();
  }
}

} // namespace

std::string TraceBuffer::toJson() const {
  std::string Out;
  Out.reserve(size() * 96 + 512);
  Out += "{\n  \"traceEvents\": [\n";
  Out += "    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":\"cmarks\"}}";
  appendBufferEvents(Out, *this, EpochNs, /*Tid=*/1);

  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "\n  ],\n  \"displayTimeUnit\": \"ms\",\n"
                "  \"otherData\": {\"schema\": \"cmarks-trace-v1\", "
                "\"events\": %llu, \"dropped\": %llu, \"detailTier\": %s}\n}\n",
                static_cast<unsigned long long>(size()),
                static_cast<unsigned long long>(dropped()),
                traceDetailEnabled() ? "true" : "false");
  Out += Buf;
  return Out;
}

std::string
cmk::mergedTraceJson(const std::vector<const TraceBuffer *> &Buffers,
                     const std::vector<std::string> &ThreadNames) {
  std::string Out;
  uint64_t Events = 0, Dropped = 0;
  uint64_t Epoch = UINT64_MAX;
  for (const TraceBuffer *TB : Buffers)
    if (TB && TB->epochNs() && TB->epochNs() < Epoch)
      Epoch = TB->epochNs();
  if (Epoch == UINT64_MAX)
    Epoch = 0;

  Out += "{\n  \"traceEvents\": [\n";
  Out += "    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":\"cmarks-pool\"}}";
  for (size_t I = 0; I < Buffers.size(); ++I) {
    const TraceBuffer *TB = Buffers[I];
    if (!TB || !TB->epochNs())
      continue;
    int Tid = static_cast<int>(I) + 1;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  ",\n    {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  Tid);
    Out += Buf;
    appendEscaped(Out, I < ThreadNames.size() ? ThreadNames[I].c_str()
                                              : "worker");
    Out += "\"}}";
    appendBufferEvents(Out, *TB, Epoch, Tid);
    Events += TB->size();
    Dropped += TB->dropped();
  }

  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "\n  ],\n  \"displayTimeUnit\": \"ms\",\n"
                "  \"otherData\": {\"schema\": \"cmarks-trace-v1\", "
                "\"events\": %llu, \"dropped\": %llu, \"detailTier\": %s, "
                "\"threads\": %llu}\n}\n",
                static_cast<unsigned long long>(Events),
                static_cast<unsigned long long>(Dropped),
                traceDetailEnabled() ? "true" : "false",
                static_cast<unsigned long long>(Buffers.size()));
  Out += Buf;
  return Out;
}

bool TraceBuffer::writeJson(std::FILE *Out) const {
  std::string S = toJson();
  return std::fwrite(S.data(), 1, S.size(), Out) == S.size();
}
