//===- support/pool.cpp - Concurrent multi-engine serving pool ------------===//

#include "support/pool.h"
#include "support/profiler.h"
#include "support/rng.h"
#include "support/timing.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace cmk;

namespace {

/// Fieldwise Agg += Delta over every counter in the stats table.
void accumulateStats(VMStats &Agg, const VMStats &Delta) {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    Agg.*(Table[I].Field) += Delta.*(Table[I].Field);
}

/// Maps a finished fiber job's error-kind name (the prelude's #%exn-kind
/// symbols) back to the typed classification the pool's futures carry.
ErrorKind errorKindOfFiberKind(const std::string &Kind) {
  if (Kind == "heap-limit")
    return ErrorKind::HeapLimit;
  if (Kind == "stack-limit")
    return ErrorKind::StackLimit;
  if (Kind == "timeout")
    return ErrorKind::Timeout;
  if (Kind == "interrupt")
    return ErrorKind::Interrupt;
  return ErrorKind::Runtime;
}

/// The kind name used when the pool must classify a failed slice itself
/// (inverse of errorKindOfFiberKind, matching tripKindName's spellings).
const char *fiberKindOfErrorKind(ErrorKind K) {
  switch (K) {
  case ErrorKind::HeapLimit:
    return "heap-limit";
  case ErrorKind::StackLimit:
    return "stack-limit";
  case ErrorKind::Timeout:
    return "timeout";
  case ErrorKind::Interrupt:
    return "interrupt";
  case ErrorKind::None:
  case ErrorKind::Runtime:
    break;
  }
  return "error";
}

} // namespace

const char *cmk::jobOutcomeName(JobOutcome O) {
  switch (O) {
  case JobOutcome::Ok:
    return "ok";
  case JobOutcome::Error:
    return "error";
  case JobOutcome::TrippedHeap:
    return "tripped-heap";
  case JobOutcome::TrippedStack:
    return "tripped-stack";
  case JobOutcome::TrippedTimeout:
    return "tripped-timeout";
  case JobOutcome::TrippedInterrupt:
    return "tripped-interrupt";
  case JobOutcome::Expired:
    return "expired";
  case JobOutcome::Shed:
    return "shed";
  case JobOutcome::Rejected:
    return "rejected";
  }
  return "?";
}

int cmk::jobOutcomeExitCode(JobOutcome O) {
  switch (O) {
  case JobOutcome::Ok:
    return 0;
  case JobOutcome::Error:
    return 1;
  case JobOutcome::TrippedHeap:
  case JobOutcome::TrippedStack:
  case JobOutcome::TrippedTimeout:
    return 3;
  case JobOutcome::TrippedInterrupt:
    return 130;
  case JobOutcome::Shed:
    return 4;
  case JobOutcome::Expired:
    return 5;
  case JobOutcome::Rejected:
    return 6;
  }
  return 1;
}

JobOutcome cmk::jobOutcomeOfErrorKind(ErrorKind K) {
  switch (K) {
  case ErrorKind::HeapLimit:
    return JobOutcome::TrippedHeap;
  case ErrorKind::StackLimit:
    return JobOutcome::TrippedStack;
  case ErrorKind::Timeout:
    return JobOutcome::TrippedTimeout;
  case ErrorKind::Interrupt:
    return JobOutcome::TrippedInterrupt;
  case ErrorKind::None:
  case ErrorKind::Runtime:
    break;
  }
  return JobOutcome::Error;
}

uint64_t cmk::retryBackoffMs(const RetryPolicy &P, uint64_t JobId,
                             uint32_t Attempt) {
  if (Attempt == 0)
    Attempt = 1;
  uint64_t Cap = P.MaxBackoffMs ? P.MaxBackoffMs : P.BaseBackoffMs;
  uint64_t Backoff = P.BaseBackoffMs;
  // Saturating base << (attempt-1), capped.
  for (uint32_t I = 1; I < Attempt && Backoff < Cap; ++I)
    Backoff = Backoff > (Cap >> 1) ? Cap : Backoff * 2;
  if (Backoff > Cap)
    Backoff = Cap;
  if (!P.Jitter || Backoff == 0)
    return Backoff;
  // Deterministic per (job, attempt): replays of a chaos schedule see the
  // exact same sleep sequence.
  Rng R(JobId * 0x9e3779b97f4a7c15ULL + Attempt);
  uint64_t Half = Backoff / 2;
  return Half + R.nextBelow(Backoff - Half + 1);
}

EnginePool::EnginePool(const PoolOptions &O) : Opts(O) {
  unsigned N = Opts.Workers;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  if (Opts.QueueCapacity == 0)
    Opts.QueueCapacity = 1;
  if (Opts.QueueWaitBudgetMs) {
    uint32_t W = Opts.AdmissionWindow;
    W = std::max<uint32_t>(8, std::min<uint32_t>(W ? W : 64, 1024));
    AdmissionWaitsUs.assign(W, 0);
  }
  Engines.assign(N, nullptr);
  Shards.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Shards.emplace_back(std::make_unique<WorkerShard>());
  LiveWorkers = N;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

EnginePool::~EnginePool() { shutdown(/*Drain=*/true); }

std::unique_ptr<SchemeEngine> EnginePool::buildWorkerEngine(
    unsigned Idx, uint32_t Incarnation) {
  // The engine is constructed on the worker thread so its heap, stacks,
  // and prelude bootstrap never touch another thread.
  auto E = std::make_unique<SchemeEngine>(Opts.Engine);
  // A fleet of engines sharing one CMARKS_FAULT_SPEC would otherwise
  // inject in lockstep; the salt keeps schedules distinct but still a
  // pure function of (spec, worker, incarnation).
  E->faults().reseed(static_cast<uint64_t>(Idx) * 1000003u + Incarnation);
  if (Opts.TraceCapacity)
    E->startTrace(Opts.TraceCapacity);
  if (Opts.ProfileHz)
    E->vm().profiler().start(E->vm(), Opts.ProfileHz, Opts.ProfileCapacity);
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = E.get();
  }
  return E;
}

void EnginePool::retireEngine(SchemeEngine &Engine, unsigned Idx) {
  // Snapshot the engine's observability state into the pool-owned shard
  // before it dies so traceJson()/profileCollapsed() stay valid across
  // supervised restarts and after shutdown. The profiler's sampler
  // thread must stop before the fold (and before the VM is destroyed).
  SamplingProfiler &Prof = Engine.vm().profiler();
  Prof.stop();
  WorkerShard &S = *Shards[Idx];
  std::lock_guard<std::mutex> L(S.Mu);
  S.TraceDroppedPrior += Engine.trace().dropped();
  S.ProfileSamplesPrior += Prof.total();
  S.ProfileDroppedPrior += Prof.dropped();
  S.TraceDropped = S.TraceDroppedPrior;
  S.ProfileSamples = S.ProfileSamplesPrior;
  S.ProfileDropped = S.ProfileDroppedPrior;
  if (Opts.TraceCapacity)
    S.TraceSnaps.push_back(Engine.trace());
  if (Opts.ProfileHz)
    Prof.foldInto(S.ProfileFold);
}

void EnginePool::workerMain(unsigned Idx) {
  if (Opts.EnableFibers) {
    workerFiberMain(Idx);
    return;
  }
  uint32_t Incarnation = 0;
  std::unique_ptr<SchemeEngine> Engine = buildWorkerEngine(Idx, Incarnation);
  uint32_t ConsecutiveFatal = 0;
  bool BreakerOpened = false;
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      NotEmpty.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        break; // Stopping with nothing left to do.
      if (Stopping && !DrainOnStop)
        break; // Leave queued jobs for shutdown() to reject.
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    NotFull.notify_one();

    uint64_t DequeueNs = nowNanos();
    uint64_t WaitNs = DequeueNs > J.EnqueueNs ? DequeueNs - J.EnqueueNs : 0;
    if (Opts.QueueWaitBudgetMs)
      noteQueueWait(WaitNs / 1000);
    if (J.DeadlineNs && DequeueNs >= J.DeadlineNs) {
      // Shed from the queue without running: the deadline already passed,
      // so any work done now is wasted and delays live jobs behind it.
      expireJob(J, Idx, WaitNs);
      ConsecutiveFatal = 0;
      continue;
    }

    if (!runJob(*Engine, J, Idx, WaitNs)) {
      ConsecutiveFatal = 0;
      continue;
    }

    // Fatal failure: the job burned through its reserve, so per-run
    // governance can no longer vouch for this engine. Supervise.
    ++ConsecutiveFatal;
    WorkerShard &S = *Shards[Idx];
    if (Opts.BreakerThreshold && ConsecutiveFatal >= Opts.BreakerThreshold) {
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.BreakerOpens;
      BreakerOpened = true;
      break;
    }
    uint64_t T0 = nowNanos();
    {
      std::lock_guard<std::mutex> L(EnginesMu);
      Engines[Idx] = nullptr;
    }
    retireEngine(*Engine, Idx);
    Engine.reset();
    ++Incarnation;
    Engine = buildWorkerEngine(Idx, Incarnation);
    TraceBuffer &TB = Engine->vm().trace();
    if (TB.Enabled) {
      // The rebuild predates the replacement ring's epoch, so the span
      // renders at the epoch with the true duration carried in Arg.
      TB.record(TraceEv::WorkerRestartBegin, Idx);
      TB.record(TraceEv::WorkerRestartEnd, nowNanos() - T0);
    }
    {
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.WorkerRestarts;
    }
  }
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = nullptr;
  }
  retireEngine(*Engine, Idx);
  Engine.reset();
  bool LastOut = false;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    --LiveWorkers;
    // The last live worker retiring through its breaker turns the pool
    // off: nothing is left to serve, so queued jobs and blocked
    // submitters must be rejected, not stranded.
    if (BreakerOpened && LiveWorkers == 0 && !Stopping) {
      Stopping = true;
      DrainOnStop = false;
      LastOut = true;
    }
  }
  if (LastOut) {
    NotEmpty.notify_all();
    NotFull.notify_all();
    rejectQueuedJobs();
  }
}

void EnginePool::workerFiberMain(unsigned Idx) {
  uint32_t Incarnation = 0;
  std::unique_ptr<SchemeEngine> Engine = buildWorkerEngine(Idx, Incarnation);
  auto ArmFiberMode = [&](SchemeEngine &E) {
    E.enableFiberPool();
    // Per-fiber budgets govern run time; heap/stack stay engine-wide
    // (the heap is shared by every admitted fiber).
    EngineLimits L = Opts.DefaultJobLimits;
    L.TimeoutMs = 0;
    E.limits() = L;
  };
  ArmFiberMode(*Engine);
  uint32_t Cap = Opts.MaxFibersPerWorker ? Opts.MaxFibersPerWorker : 64;

  /// One admitted job, keyed by its current fiber id (retries respawn
  /// under a fresh id).
  struct ActiveJob {
    Job J;
    uint64_t WaitNs = 0;
    uint32_t Attempt = 1;
    uint64_t RunNs = 0; ///< On-CPU ns summed across attempts.
  };
  std::map<uint64_t, ActiveJob> Active;
  VMStats StatsMark = Engine->stats();
  uint32_t ConsecutiveFatal = 0;
  bool BreakerOpened = false;

  // The run histogram records *on-CPU* time: parked time is exactly what
  // this mode exists to not charge for.
  auto Retire = [&](ActiveJob &A, JobResult R) {
    WorkerShard &S = *Shards[Idx];
    {
      std::lock_guard<std::mutex> L(S.Mu);
      S.QueueWaitUs.record(A.WaitNs / 1000);
      S.RunUs.record(A.RunNs / 1000);
      switch (R.Outcome) {
      case JobOutcome::Ok:
        ++S.JobsOk;
        break;
      case JobOutcome::TrippedHeap:
        ++S.TrippedHeap;
        break;
      case JobOutcome::TrippedStack:
        ++S.TrippedStack;
        break;
      case JobOutcome::TrippedTimeout:
        ++S.TrippedTimeout;
        break;
      case JobOutcome::TrippedInterrupt:
        ++S.TrippedInterrupt;
        break;
      default:
        ++S.JobsError;
      }
      if (A.J.Degraded)
        ++S.JobsDegraded;
    }
    InFlight.fetch_sub(1, std::memory_order_relaxed);
    A.J.Promise.set_value(std::move(R));
  };
  auto FailAllActive = [&](JobOutcome O, const std::string &Err,
                           ErrorKind K) {
    for (auto &E : Active) {
      JobResult R;
      R.Ok = false;
      R.Outcome = O;
      R.Error = Err;
      R.Kind = K;
      R.Attempts = E.second.Attempt;
      R.Worker = Idx;
      R.Id = E.second.J.Id;
      Retire(E.second, std::move(R));
    }
    Active.clear();
  };
  auto FoldStatsDelta = [&] {
    VMStats Now = Engine->stats();
    VMStats Delta = Now.delta(StatsMark);
    StatsMark = Now;
    WorkerShard &S = *Shards[Idx];
    std::lock_guard<std::mutex> L(S.Mu);
    accumulateStats(S.Engines, Delta);
    S.TraceDropped = S.TraceDroppedPrior + Engine->trace().dropped();
    S.ProfileSamples =
        S.ProfileSamplesPrior + Engine->vm().profiler().total();
    S.ProfileDropped =
        S.ProfileDroppedPrior + Engine->vm().profiler().dropped();
  };

  for (;;) {
    bool AbortNow;
    {
      std::lock_guard<std::mutex> L(QueueMu);
      AbortNow = Stopping && !DrainOnStop;
    }
    if (AbortNow)
      break;

    // Admit queued jobs into free fiber slots.
    while (Active.size() < Cap) {
      Job J;
      {
        std::lock_guard<std::mutex> L(QueueMu);
        if (Queue.empty())
          break;
        J = std::move(Queue.front());
        Queue.pop_front();
      }
      NotFull.notify_one();
      uint64_t DequeueNs = nowNanos();
      uint64_t WaitNs = DequeueNs > J.EnqueueNs ? DequeueNs - J.EnqueueNs : 0;
      if (Opts.QueueWaitBudgetMs)
        noteQueueWait(WaitNs / 1000);
      if (J.DeadlineNs && DequeueNs >= J.DeadlineNs) {
        expireJob(J, Idx, WaitNs);
        continue;
      }
      InFlight.fetch_add(1, std::memory_order_relaxed);
      std::string SpawnErr;
      uint64_t BudgetNs = J.Limits.TimeoutMs * 1000000ull;
      uint64_t FiberId = Engine->spawnFiberJob(J.Source, BudgetNs,
                                               J.DeadlineNs, 0, &SpawnErr);
      if (!FiberId) {
        ActiveJob A;
        A.J = std::move(J);
        A.WaitNs = WaitNs;
        JobResult R;
        R.Ok = false;
        R.Outcome = JobOutcome::Error;
        R.Error = SpawnErr;
        R.Kind = ErrorKind::Runtime;
        R.Attempts = 1;
        R.Worker = Idx;
        R.Id = A.J.Id;
        Retire(A, std::move(R));
        continue;
      }
      ActiveJob A;
      A.J = std::move(J);
      A.WaitNs = WaitNs;
      Active.emplace(FiberId, std::move(A));
    }

    if (Active.empty()) {
      std::unique_lock<std::mutex> L(QueueMu);
      if (Stopping && Queue.empty())
        break;
      if (Queue.empty())
        NotEmpty.wait(L, [&] { return Stopping || !Queue.empty(); });
      continue;
    }

    // One scheduler slice: fibers run until a job retires or everything
    // is parked.
    Value Status = Engine->runFiberSlice();
    bool SliceFailed = !Engine->ok();
    bool Fatal = SliceFailed && Engine->lastErrorFatal();
    if (SliceFailed && !Fatal) {
      // A hard (uncatchable) VM error failed the slice while some fiber
      // was current; the scheduler state and every other fiber are
      // intact. Classify the failure onto that fiber and keep serving.
      ErrorKind K = Engine->lastErrorKind();
      Value KindSym = Engine->heap().intern(fiberKindOfErrorKind(K));
      Engine->fibers().failCurrent(Engine->vm(), Engine->lastError(),
                                   KindSym);
    }
    if (!SliceFailed)
      ConsecutiveFatal = 0;

    for (FiberJobInfo &Info : Engine->takeFinishedFiberJobs()) {
      auto It = Active.find(Info.Id);
      if (It == Active.end())
        continue; // A plain (non-job) fiber, or already failed over.
      ActiveJob &A = It->second;
      A.RunNs += Info.RunNs;
      // Retry: like the blocking pool, only interrupt evictions are
      // transient. Re-spawn under a fresh fiber id after the backoff
      // (the scheduler's timer wheel serves as the backoff sleep).
      if (!Info.Ok && Info.Kind == "interrupt") {
        uint32_t MaxAttempts =
            A.J.Retry.MaxAttempts ? A.J.Retry.MaxAttempts : 1;
        bool Abort;
        {
          std::lock_guard<std::mutex> Lk(QueueMu);
          Abort = Stopping && !DrainOnStop;
        }
        if (A.Attempt < MaxAttempts && !Abort) {
          uint64_t BackoffMs = retryBackoffMs(A.J.Retry, A.J.Id, A.Attempt);
          uint64_t Now = nowNanos();
          if (!(A.J.DeadlineNs &&
                Now + BackoffMs * 1000000 >= A.J.DeadlineNs)) {
            std::string SpawnErr;
            uint64_t BudgetNs = A.J.Limits.TimeoutMs * 1000000ull;
            uint64_t NewId = Engine->spawnFiberJob(
                A.J.Source, BudgetNs, A.J.DeadlineNs,
                BackoffMs * 1000000, &SpawnErr);
            if (NewId) {
              ActiveJob Moved = std::move(A);
              Active.erase(It);
              ++Moved.Attempt;
              {
                WorkerShard &S = *Shards[Idx];
                std::lock_guard<std::mutex> L(S.Mu);
                ++S.RetriesAttempted;
              }
              Active.emplace(NewId, std::move(Moved));
              continue;
            }
          }
        }
      }
      JobResult R;
      R.Worker = Idx;
      R.Id = A.J.Id;
      R.Attempts = A.Attempt;
      if (Info.Ok) {
        R.Ok = true;
        R.Outcome = JobOutcome::Ok;
        R.Output = std::move(Info.Output);
      } else {
        R.Ok = false;
        R.Error = std::move(Info.Output);
        R.Kind = errorKindOfFiberKind(Info.Kind);
        R.Outcome = jobOutcomeOfErrorKind(R.Kind);
      }
      Retire(A, std::move(R));
      Active.erase(It);
    }
    FoldStatsDelta();

    if (Fatal) {
      // Beyond-reserve failure: every admitted fiber lived in the dying
      // engine's heap, so they all fail with it. Supervise like the
      // blocking pool: rebuild in place, or open the breaker.
      FailAllActive(jobOutcomeOfErrorKind(Engine->lastErrorKind()),
                    Engine->lastError(), Engine->lastErrorKind());
      ++ConsecutiveFatal;
      WorkerShard &S = *Shards[Idx];
      if (Opts.BreakerThreshold &&
          ConsecutiveFatal >= Opts.BreakerThreshold) {
        std::lock_guard<std::mutex> L(S.Mu);
        ++S.BreakerOpens;
        BreakerOpened = true;
        break;
      }
      uint64_t T0 = nowNanos();
      {
        std::lock_guard<std::mutex> L(EnginesMu);
        Engines[Idx] = nullptr;
      }
      retireEngine(*Engine, Idx);
      Engine.reset();
      ++Incarnation;
      Engine = buildWorkerEngine(Idx, Incarnation);
      ArmFiberMode(*Engine);
      StatsMark = Engine->stats();
      TraceBuffer &TB = Engine->vm().trace();
      if (TB.Enabled) {
        TB.record(TraceEv::WorkerRestartBegin, Idx);
        TB.record(TraceEv::WorkerRestartEnd, nowNanos() - T0);
      }
      {
        std::lock_guard<std::mutex> L(S.Mu);
        ++S.WorkerRestarts;
      }
      continue;
    }

    // Everything parked: sleep until the earliest fiber deadline or new
    // work, in <=10ms chunks so interrupts stay responsive.
    if (!Engine->fiberHasRunnable() &&
        Status == Engine->heap().intern("idle")) {
      uint64_t TimerNs = Engine->fiberNextTimerDelayNs();
      if (Engine->fiberInterruptPending() && TimerNs != 0) {
        // interruptAll() with everything parked: force the earliest
        // sleeper due now; its first safe point delivers the trip.
        Engine->fiberWakeEarliest();
        continue;
      }
      bool Draining;
      {
        std::lock_guard<std::mutex> L(QueueMu);
        Draining = Stopping && Queue.empty();
      }
      if (Draining && TimerNs == 0) {
        // Drain shutdown with only untimed parks left: no new job can
        // ever unpark them, so they can never finish.
        FailAllActive(JobOutcome::Rejected, "engine pool is shut down",
                      ErrorKind::Runtime);
        break;
      }
      uint64_t WaitNs = TimerNs;
      if (WaitNs == 0 || WaitNs > 10000000)
        WaitNs = 10000000;
      std::unique_lock<std::mutex> L(QueueMu);
      if (!Stopping && Queue.empty())
        NotEmpty.wait_for(L, std::chrono::nanoseconds(WaitNs),
                          [&] { return Stopping || !Queue.empty(); });
    }
  }

  // Non-drain shutdown (or breaker): resolve whatever is still admitted.
  FailAllActive(JobOutcome::Rejected, "engine pool is shut down",
                ErrorKind::Runtime);
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = nullptr;
  }
  retireEngine(*Engine, Idx);
  Engine.reset();
  bool LastOut = false;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    --LiveWorkers;
    if (BreakerOpened && LiveWorkers == 0 && !Stopping) {
      Stopping = true;
      DrainOnStop = false;
      LastOut = true;
    }
  }
  if (LastOut) {
    NotEmpty.notify_all();
    NotFull.notify_all();
    rejectQueuedJobs();
  }
}

bool EnginePool::runJob(SchemeEngine &Engine, Job &J, unsigned Idx,
                        uint64_t WaitNs) {
  InFlight.fetch_add(1, std::memory_order_relaxed);

  TraceBuffer &TB = Engine.vm().trace();
  char SpanLabel[24];
  if (TB.Enabled) {
    int Len = std::snprintf(SpanLabel, sizeof(SpanLabel), "job-%" PRIu64, J.Id);
    TB.record(TraceEv::JobBegin, SpanLabel, static_cast<size_t>(Len), J.Id);
  }

  JobResult R;
  R.Worker = Idx;
  R.Id = J.Id;
  bool Fatal = false;
  uint64_t RunNs = 0;
  uint64_t Retries = 0;
  VMStats JobDelta;
  uint32_t MaxAttempts = J.Retry.MaxAttempts ? J.Retry.MaxAttempts : 1;
  uint32_t Attempt = 0;
  for (;;) {
    ++Attempt;
    EngineLimits L = J.Limits;
    if (J.DeadlineNs) {
      // Fold the remaining deadline into the attempt's timeout so the job
      // cannot run past its deadline by more than a safe-point interval.
      uint64_t Now = nowNanos();
      uint64_t RemainingMs =
          J.DeadlineNs > Now ? (J.DeadlineNs - Now) / 1000000 : 0;
      if (RemainingMs == 0)
        RemainingMs = 1; // Dequeued at the edge: minimal budget.
      L.TimeoutMs = L.TimeoutMs ? std::min(L.TimeoutMs, RemainingMs)
                                : RemainingMs;
    }
    Engine.limits() = L;
    VMStats Before = Engine.stats();
    uint64_t A0 = nowNanos();
    R.Output = Engine.evalToString(J.Source);
    RunNs += nowNanos() - A0;
    VMStats Delta = Engine.stats().delta(Before);
    accumulateStats(JobDelta, Delta);
    if (Engine.ok()) {
      R.Ok = true;
      R.Outcome = JobOutcome::Ok;
      R.Error.clear();
      R.Kind = ErrorKind::None;
      break;
    }
    R.Output.clear();
    R.Error = Engine.lastError();
    R.Kind = Engine.lastErrorKind();
    R.Outcome = jobOutcomeOfErrorKind(R.Kind);
    Fatal = Engine.lastErrorFatal();
    if (Fatal)
      break; // Supervision territory, never a retry.
    // Transient := interrupt eviction or an attempt that saw injected
    // faults. Ordinary errors and limit trips are deterministic
    // properties of the job; re-running them is wasted work.
    bool Transient =
        R.Kind == ErrorKind::Interrupt || Delta.FaultsInjected > 0;
    if (!Transient || Attempt >= MaxAttempts)
      break;
    uint64_t BackoffMs = retryBackoffMs(J.Retry, J.Id, Attempt);
    uint64_t Now = nowNanos();
    if (J.DeadlineNs && Now + BackoffMs * 1000000 >= J.DeadlineNs)
      break; // The retry could not finish in time anyway.
    bool Abort;
    {
      std::lock_guard<std::mutex> Lk(QueueMu);
      Abort = Stopping && !DrainOnStop;
    }
    if (Abort)
      break;
    ++Retries;
    if (BackoffMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
  }
  R.Attempts = Attempt;

  if (TB.Enabled)
    TB.record(TraceEv::JobEnd, J.Id);

  SamplingProfiler &Prof = Engine.vm().profiler();
  {
    // The whole job delta retires in one critical section (see the
    // consistency model in pool.h).
    WorkerShard &S = *Shards[Idx];
    std::lock_guard<std::mutex> L(S.Mu);
    S.QueueWaitUs.record(WaitNs / 1000);
    S.RunUs.record(RunNs / 1000);
    switch (R.Outcome) {
    case JobOutcome::Ok:
      ++S.JobsOk;
      break;
    case JobOutcome::TrippedHeap:
      ++S.TrippedHeap;
      break;
    case JobOutcome::TrippedStack:
      ++S.TrippedStack;
      break;
    case JobOutcome::TrippedTimeout:
      ++S.TrippedTimeout;
      break;
    case JobOutcome::TrippedInterrupt:
      ++S.TrippedInterrupt;
      break;
    default:
      ++S.JobsError;
    }
    S.RetriesAttempted += Retries;
    if (J.Degraded)
      ++S.JobsDegraded;
    accumulateStats(S.Engines, JobDelta);
    S.TraceDropped = S.TraceDroppedPrior + TB.dropped();
    S.ProfileSamples = S.ProfileSamplesPrior + Prof.total();
    S.ProfileDropped = S.ProfileDroppedPrior + Prof.dropped();
  }
  InFlight.fetch_sub(1, std::memory_order_relaxed);
  J.Promise.set_value(std::move(R));
  return Fatal;
}

void EnginePool::expireJob(Job &J, unsigned Idx, uint64_t WaitNs) {
  JobResult R;
  R.Ok = false;
  R.Outcome = JobOutcome::Expired;
  R.Error = "job deadline expired before it ran";
  R.Kind = ErrorKind::None;
  R.Worker = Idx;
  R.Id = J.Id;
  {
    WorkerShard &S = *Shards[Idx];
    std::lock_guard<std::mutex> L(S.Mu);
    // The wait still happened (and is exactly why the job expired); the
    // run did not, so only the wait histogram records it.
    S.QueueWaitUs.record(WaitNs / 1000);
    ++S.JobsExpired;
  }
  J.Promise.set_value(std::move(R));
}

void EnginePool::rejectJob(Job &J) {
  JobResult R;
  R.Ok = false;
  R.Outcome = JobOutcome::Rejected;
  R.Error = "engine pool is shut down";
  R.Kind = ErrorKind::Runtime;
  R.Id = J.Id;
  J.Promise.set_value(std::move(R));
}

void EnginePool::shedJob(Job &J, uint64_t WindowP99Us) {
  JobResult R;
  R.Ok = false;
  R.Outcome = JobOutcome::Shed;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "admission control: queue-wait p99 %" PRIu64
                "us exceeds the %" PRIu64 "ms budget; job shed",
                WindowP99Us, Opts.QueueWaitBudgetMs);
  R.Error = Buf;
  J.Promise.set_value(std::move(R));
}

void EnginePool::rejectQueuedJobs() {
  // Whatever is still queued (non-drain shutdown, jobs that raced in
  // before Stopping was visible, or a pool whose last worker retired)
  // gets rejected, never dropped: every future the pool handed out
  // resolves.
  std::deque<Job> Leftover;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Leftover.swap(Queue);
  }
  for (Job &J : Leftover)
    rejectJob(J);
  if (!Leftover.empty()) {
    std::lock_guard<std::mutex> L(StatsMu);
    JobsRejected += Leftover.size();
  }
}

void EnginePool::noteQueueWait(uint64_t WaitUs) {
  std::lock_guard<std::mutex> L(AdmissionMu);
  if (AdmissionWaitsUs.empty())
    return;
  uint32_t V = WaitUs > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(WaitUs);
  AdmissionWaitsUs[AdmissionNext] = V;
  AdmissionNext = (AdmissionNext + 1) % AdmissionWaitsUs.size();
  if (AdmissionCount < AdmissionWaitsUs.size())
    ++AdmissionCount;
}

uint64_t EnginePool::admissionP99Us() const {
  std::lock_guard<std::mutex> L(AdmissionMu);
  if (AdmissionCount < MinAdmissionSamples)
    return 0;
  // Entries [0, AdmissionCount) are exactly the valid ones, wrapped or
  // not (AdmissionCount saturates at the ring size).
  std::vector<uint32_t> W(AdmissionWaitsUs.begin(),
                          AdmissionWaitsUs.begin() +
                              static_cast<ptrdiff_t>(AdmissionCount));
  size_t Idx = (W.size() * 99 + 99) / 100; // ceil(0.99 N)
  if (Idx > 0)
    --Idx;
  std::nth_element(W.begin(), W.begin() + static_cast<ptrdiff_t>(Idx),
                   W.end());
  return W[Idx];
}

uint64_t EnginePool::pressureThresholdUs() const {
  uint64_t Ms = Opts.PressureQueueWaitMs ? Opts.PressureQueueWaitMs
                                         : Opts.QueueWaitBudgetMs / 2;
  return Ms * 1000;
}

bool EnginePool::pressureActive() const {
  if (!Opts.EnablePressureLimits || !Opts.QueueWaitBudgetMs)
    return false;
  uint64_t T = pressureThresholdUs();
  return T != 0 && admissionP99Us() > T;
}

std::future<JobResult> EnginePool::submit(std::string Source) {
  return submit(std::move(Source), SubmitOptions());
}

std::future<JobResult> EnginePool::submit(std::string Source,
                                          const EngineLimits &L) {
  SubmitOptions SO;
  SO.limits(L);
  return submit(std::move(Source), SO);
}

std::future<JobResult> EnginePool::submit(std::string Source,
                                          const SubmitOptions &SO) {
  Job J;
  J.Source = std::move(Source);
  bool UsesDefaults = !SO.HasLimits;
  J.Limits = SO.HasLimits ? SO.Limits : Opts.DefaultJobLimits;
  J.Retry = SO.HasRetry ? SO.Retry : Opts.DefaultRetry;
  uint64_t DeadlineMs = SO.DeadlineMs ? SO.DeadlineMs : Opts.DefaultDeadlineMs;
  std::future<JobResult> F = J.Promise.get_future();

  if (Opts.QueueWaitBudgetMs) {
    uint64_t P99Us = admissionP99Us();
    if (P99Us > Opts.QueueWaitBudgetMs * 1000) {
      // Shed at the door: recent jobs waited longer than the budget, so
      // this one would too. Resolving immediately beats queueing work
      // that is doomed to expire.
      {
        std::lock_guard<std::mutex> L(StatsMu);
        ++JobsShed;
      }
      shedJob(J, P99Us);
      return F;
    }
    if (UsesDefaults && Opts.EnablePressureLimits) {
      uint64_t ThreshUs = pressureThresholdUs();
      if (ThreshUs && P99Us > ThreshUs) {
        // Graceful degradation: tighten the defaults before shedding has
        // to start. Explicit per-job limits are never overridden.
        J.Limits = Opts.PressureLimits;
        J.Degraded = true;
      }
    }
  }

  bool Rejected = false;
  {
    std::unique_lock<std::mutex> Lk(QueueMu);
    NotFull.wait(Lk, [&] {
      return Stopping || Queue.size() < Opts.QueueCapacity;
    });
    if (Stopping) {
      Rejected = true;
    } else {
      J.Id = NextJobId++;
      J.EnqueueNs = nowNanos();
      J.DeadlineNs = DeadlineMs ? J.EnqueueNs + DeadlineMs * 1000000 : 0;
      Queue.push_back(std::move(J));
      if (Queue.size() > HighWater)
        HighWater = Queue.size();
    }
  }
  if (Rejected) {
    rejectJob(J);
    std::lock_guard<std::mutex> L(StatsMu);
    ++JobsRejected;
    return F;
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++JobsSubmitted;
  }
  NotEmpty.notify_one();
  return F;
}

bool EnginePool::trySubmit(std::string Source, const EngineLimits &L,
                           std::future<JobResult> &Out) {
  if (Opts.QueueWaitBudgetMs) {
    uint64_t P99Us = admissionP99Us();
    if (P99Us > Opts.QueueWaitBudgetMs * 1000) {
      std::lock_guard<std::mutex> Lk(StatsMu);
      ++JobsShed;
      return false;
    }
  }
  Job J;
  J.Source = std::move(Source);
  J.Limits = L;
  J.Retry = Opts.DefaultRetry;
  {
    std::lock_guard<std::mutex> Lk(QueueMu);
    if (Stopping || Queue.size() >= Opts.QueueCapacity)
      return false;
    Out = J.Promise.get_future();
    J.Id = NextJobId++;
    J.EnqueueNs = nowNanos();
    J.DeadlineNs = Opts.DefaultDeadlineMs
                       ? J.EnqueueNs + Opts.DefaultDeadlineMs * 1000000
                       : 0;
    Queue.push_back(std::move(J));
    if (Queue.size() > HighWater)
      HighWater = Queue.size();
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++JobsSubmitted;
  }
  NotEmpty.notify_one();
  return true;
}

void EnginePool::shutdown(bool Drain) {
  {
    std::lock_guard<std::mutex> L(QueueMu);
    if (!Stopping) {
      Stopping = true;
      DrainOnStop = Drain;
    }
  }
  // Wake the workers *and* any submitter blocked on backpressure: with
  // Stopping set, blocked submits resolve as rejections in both drain
  // modes instead of waiting for queue space that may never come.
  NotEmpty.notify_all();
  NotFull.notify_all();
  {
    // JoinMu serializes concurrent shutdown callers on the join itself:
    // the first performs it, later callers block here until the workers
    // are really gone, then see Joined and skip.
    std::lock_guard<std::mutex> L(JoinMu);
    if (!Joined) {
      for (std::thread &T : Threads)
        T.join();
      Joined = true;
    }
  }
  rejectQueuedJobs();
}

void EnginePool::interruptAll() {
  std::lock_guard<std::mutex> L(EnginesMu);
  for (SchemeEngine *E : Engines)
    if (E)
      E->requestInterrupt();
}

PoolStats EnginePool::stats() const { return telemetry().Stats; }

PoolTelemetry EnginePool::telemetry() const {
  PoolTelemetry T;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    T.Stats.JobsSubmitted = JobsSubmitted;
    T.Stats.JobsRejected = JobsRejected;
    T.Stats.JobsShed = JobsShed;
  }
  {
    std::lock_guard<std::mutex> L(QueueMu);
    T.Stats.QueueHighWater = HighWater;
    T.QueueDepth = Queue.size();
    T.LiveWorkers = LiveWorkers;
  }
  T.InFlight = InFlight.load(std::memory_order_relaxed);
  for (const std::unique_ptr<WorkerShard> &SP : Shards) {
    const WorkerShard &S = *SP;
    std::lock_guard<std::mutex> L(S.Mu);
    T.QueueWaitUs.merge(S.QueueWaitUs);
    T.RunUs.merge(S.RunUs);
    T.JobsOk += S.JobsOk;
    T.JobsError += S.JobsError;
    T.TrippedHeap += S.TrippedHeap;
    T.TrippedStack += S.TrippedStack;
    T.TrippedTimeout += S.TrippedTimeout;
    T.TrippedInterrupt += S.TrippedInterrupt;
    T.JobsExpired += S.JobsExpired;
    T.WorkerRestarts += S.WorkerRestarts;
    T.BreakerOpens += S.BreakerOpens;
    T.RetriesAttempted += S.RetriesAttempted;
    T.JobsDegraded += S.JobsDegraded;
    T.TraceDropped += S.TraceDropped;
    T.ProfileSamples += S.ProfileSamples;
    T.ProfileDropped += S.ProfileDropped;
    accumulateStats(T.Stats.Engines, S.Engines);
  }
  T.Stats.JobsCompleted = T.JobsOk;
  T.Stats.JobsFailed = T.JobsError;
  T.Stats.JobsTripped =
      T.TrippedHeap + T.TrippedStack + T.TrippedTimeout + T.TrippedInterrupt;
  T.Stats.JobsExpired = T.JobsExpired;
  T.Stats.WorkerRestarts = T.WorkerRestarts;
  T.Stats.BreakerOpens = T.BreakerOpens;
  T.Stats.RetriesAttempted = T.RetriesAttempted;
  T.Stats.JobsDegraded = T.JobsDegraded;
  T.JobsShed = T.Stats.JobsShed;
  T.PressureActive = pressureActive();
  return T;
}

MetricsRegistry EnginePool::buildMetrics() const {
  PoolTelemetry T = telemetry();
  MetricsRegistry R;

  R.gauge("cmarks_pool_workers", "Worker threads (= engines) in the pool", {},
          static_cast<double>(Threads.size()));
  R.gauge("cmarks_pool_live_workers",
          "Workers still serving (circuit breakers shut)", {},
          static_cast<double>(T.LiveWorkers));
  R.gauge("cmarks_pool_queue_depth", "Jobs waiting in the queue right now",
          {}, static_cast<double>(T.QueueDepth));
  R.gauge("cmarks_pool_queue_capacity", "Bounded job-queue capacity", {},
          static_cast<double>(Opts.QueueCapacity));
  R.gauge("cmarks_pool_queue_high_water", "Maximum queue depth observed", {},
          static_cast<double>(T.Stats.QueueHighWater));
  R.gauge("cmarks_pool_inflight_jobs", "Jobs evaluating right now", {},
          static_cast<double>(T.InFlight));
  R.gauge("cmarks_pool_pressure_active",
          "1 while graceful degradation is tightening default job limits",
          {}, T.PressureActive ? 1.0 : 0.0);

  R.counter("cmarks_pool_jobs_submitted_total",
            "Jobs accepted into the queue", {}, T.Stats.JobsSubmitted);
  R.counter("cmarks_pool_jobs_rejected_total",
            "Jobs rejected (shutdown or trySubmit backpressure)", {},
            T.Stats.JobsRejected);

  const char *JobsHelp = "Retired jobs by outcome";
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "ok"}}, T.JobsOk);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "error"}},
            T.JobsError);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "tripped-heap"}},
            T.TrippedHeap);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "tripped-stack"}},
            T.TrippedStack);
  R.counter("cmarks_pool_jobs_total", JobsHelp,
            {{"outcome", "tripped-timeout"}}, T.TrippedTimeout);
  R.counter("cmarks_pool_jobs_total", JobsHelp,
            {{"outcome", "tripped-interrupt"}}, T.TrippedInterrupt);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "expired"}},
            T.JobsExpired);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "shed"}},
            T.JobsShed);

  R.counter("cmarks_pool_jobs_expired_total",
            "Jobs whose deadline passed while queued (never ran)", {},
            T.JobsExpired);
  R.counter("cmarks_pool_jobs_shed_total",
            "Jobs refused by admission control at submit", {}, T.JobsShed);
  R.counter("cmarks_pool_worker_restarts_total",
            "Worker engines rebuilt after fatal (beyond-reserve) failures",
            {}, T.WorkerRestarts);
  R.counter("cmarks_pool_breaker_opens_total",
            "Workers retired by their restart circuit breaker", {},
            T.BreakerOpens);
  R.counter("cmarks_pool_retries_total",
            "Re-runs of transiently-failed jobs (RetryPolicy)", {},
            T.RetriesAttempted);
  R.counter("cmarks_pool_jobs_degraded_total",
            "Default-limit jobs tightened by graceful degradation", {},
            T.JobsDegraded);

  R.histogram("cmarks_pool_queue_wait_seconds",
              "Per-job submit-to-dequeue wait", {}, T.QueueWaitUs, 1e-6);
  R.histogram("cmarks_pool_job_run_seconds", "Per-job evaluation time", {},
              T.RunUs, 1e-6);

  R.counter("cmarks_pool_trace_dropped_events_total",
            "Trace-ring events lost to wraparound across workers", {},
            T.TraceDropped);
  R.counter("cmarks_pool_profile_samples_total",
            "Profile samples captured across workers", {}, T.ProfileSamples);
  R.counter("cmarks_pool_profile_dropped_samples_total",
            "Profile samples lost to ring wraparound across workers", {},
            T.ProfileDropped);

  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    R.counter("cmarks_engine_events_total",
              "Runtime event counters summed across worker engines",
              {{"event", Table[I].Name}}, T.Stats.Engines.*(Table[I].Field));
  return R;
}

std::string EnginePool::metricsText() const {
  return buildMetrics().prometheusText();
}

std::string EnginePool::metricsJson() const {
  return buildMetrics().json("pool");
}

std::string EnginePool::traceJson() const {
  // Each engine incarnation retired its ring into its shard under the
  // shard mutex; copy under the same mutex (the vector can grow while a
  // supervised restart retires another incarnation concurrently).
  std::deque<TraceBuffer> Copies;
  std::vector<const TraceBuffer *> Buffers;
  std::vector<std::string> Names;
  for (size_t I = 0; I < Shards.size(); ++I) {
    const WorkerShard &S = *Shards[I];
    std::lock_guard<std::mutex> L(S.Mu);
    for (size_t K = 0; K < S.TraceSnaps.size(); ++K) {
      char Name[40];
      if (K == 0)
        std::snprintf(Name, sizeof(Name), "worker-%zu", I);
      else
        std::snprintf(Name, sizeof(Name), "worker-%zu/r%zu", I, K);
      Names.push_back(Name);
      Copies.push_back(S.TraceSnaps[K]);
      Buffers.push_back(&Copies.back());
    }
  }
  return mergedTraceJson(Buffers, Names);
}

bool EnginePool::dumpTrace(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = traceJson();
  bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
  return std::fclose(F) == 0 && Ok;
}

std::string EnginePool::profileCollapsed() const {
  std::map<std::string, uint64_t> Merged;
  for (const std::unique_ptr<WorkerShard> &SP : Shards) {
    const WorkerShard &S = *SP;
    std::lock_guard<std::mutex> L(S.Mu);
    for (const auto &KV : S.ProfileFold)
      Merged[KV.first] += KV.second;
  }
  return SamplingProfiler::collapsedText(Merged);
}

bool EnginePool::dumpProfile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = profileCollapsed();
  bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
  return std::fclose(F) == 0 && Ok;
}
