//===- support/pool.cpp - Concurrent multi-engine serving pool ------------===//

#include "support/pool.h"

using namespace cmk;

namespace {

/// Fieldwise Agg += Delta over every counter in the stats table.
void accumulateStats(VMStats &Agg, const VMStats &Delta) {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    Agg.*(Table[I].Field) += Delta.*(Table[I].Field);
}

} // namespace

EnginePool::EnginePool(const PoolOptions &O) : Opts(O) {
  unsigned N = Opts.Workers;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  if (Opts.QueueCapacity == 0)
    Opts.QueueCapacity = 1;
  Engines.assign(N, nullptr);
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

EnginePool::~EnginePool() { shutdown(/*Drain=*/true); }

void EnginePool::workerMain(unsigned Idx) {
  // The engine is constructed on the worker thread so its heap, stacks,
  // and prelude bootstrap never touch another thread.
  SchemeEngine Engine(Opts.Engine);
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = &Engine;
  }
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      NotEmpty.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        break; // Stopping with nothing left to do.
      if (Stopping && !DrainOnStop)
        break; // Leave queued jobs for shutdown() to reject.
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    NotFull.notify_one();
    runJob(Engine, J, Idx);
  }
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = nullptr;
  }
}

void EnginePool::runJob(SchemeEngine &Engine, Job &J, unsigned Idx) {
  VMStats Before = Engine.stats();
  Engine.limits() = J.Limits;

  JobResult R;
  R.Worker = Idx;
  R.Output = Engine.evalToString(J.Source);
  if (Engine.ok()) {
    R.Ok = true;
  } else {
    R.Output.clear();
    R.Error = Engine.lastError();
    R.Kind = Engine.lastErrorKind();
  }

  VMStats Delta = Engine.stats().delta(Before);
  {
    std::lock_guard<std::mutex> L(StatsMu);
    accumulateStats(Agg.Engines, Delta);
    if (R.Ok)
      ++Agg.JobsCompleted;
    else if (R.Kind == ErrorKind::Runtime || R.Kind == ErrorKind::None)
      ++Agg.JobsFailed;
    else
      ++Agg.JobsTripped;
  }
  J.Promise.set_value(std::move(R));
}

void EnginePool::rejectJob(Job &J) {
  JobResult R;
  R.Ok = false;
  R.Error = "engine pool is shut down";
  R.Kind = ErrorKind::Runtime;
  J.Promise.set_value(std::move(R));
}

std::future<JobResult> EnginePool::submit(std::string Source) {
  return submit(std::move(Source), Opts.DefaultJobLimits);
}

std::future<JobResult> EnginePool::submit(std::string Source,
                                          const EngineLimits &L) {
  Job J{std::move(Source), L, {}};
  std::future<JobResult> F = J.Promise.get_future();
  bool Rejected = false;
  {
    std::unique_lock<std::mutex> Lk(QueueMu);
    NotFull.wait(Lk, [&] {
      return Stopping || Queue.size() < Opts.QueueCapacity;
    });
    if (Stopping) {
      Rejected = true;
    } else {
      Queue.push_back(std::move(J));
      if (Queue.size() > HighWater)
        HighWater = Queue.size();
    }
  }
  if (Rejected) {
    rejectJob(J);
    std::lock_guard<std::mutex> L(StatsMu);
    ++Agg.JobsRejected;
    return F;
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Agg.JobsSubmitted;
  }
  NotEmpty.notify_one();
  return F;
}

bool EnginePool::trySubmit(std::string Source, const EngineLimits &L,
                           std::future<JobResult> &Out) {
  Job J{std::move(Source), L, {}};
  {
    std::lock_guard<std::mutex> Lk(QueueMu);
    if (Stopping || Queue.size() >= Opts.QueueCapacity)
      return false;
    Out = J.Promise.get_future();
    Queue.push_back(std::move(J));
    if (Queue.size() > HighWater)
      HighWater = Queue.size();
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Agg.JobsSubmitted;
  }
  NotEmpty.notify_one();
  return true;
}

void EnginePool::shutdown(bool Drain) {
  {
    std::lock_guard<std::mutex> L(QueueMu);
    if (!Stopping) {
      Stopping = true;
      DrainOnStop = Drain;
    }
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
  {
    // JoinMu serializes concurrent shutdown callers on the join itself:
    // the first performs it, later callers block here until the workers
    // are really gone, then see Joined and skip.
    std::lock_guard<std::mutex> L(JoinMu);
    if (!Joined) {
      for (std::thread &T : Threads)
        T.join();
      Joined = true;
    }
  }
  // Whatever is still queued (non-drain shutdown, or jobs that raced in
  // before Stopping was visible) gets rejected, never dropped: every
  // future the pool handed out resolves.
  std::deque<Job> Leftover;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Leftover.swap(Queue);
  }
  for (Job &J : Leftover)
    rejectJob(J);
  if (!Leftover.empty()) {
    std::lock_guard<std::mutex> L(StatsMu);
    Agg.JobsRejected += Leftover.size();
  }
}

void EnginePool::interruptAll() {
  std::lock_guard<std::mutex> L(EnginesMu);
  for (SchemeEngine *E : Engines)
    if (E)
      E->requestInterrupt();
}

PoolStats EnginePool::stats() const {
  PoolStats S;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    S = Agg;
  }
  {
    std::lock_guard<std::mutex> L(QueueMu);
    S.QueueHighWater = HighWater;
  }
  return S;
}
