//===- support/pool.cpp - Concurrent multi-engine serving pool ------------===//

#include "support/pool.h"
#include "support/profiler.h"
#include "support/timing.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace cmk;

namespace {

/// Fieldwise Agg += Delta over every counter in the stats table.
void accumulateStats(VMStats &Agg, const VMStats &Delta) {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    Agg.*(Table[I].Field) += Delta.*(Table[I].Field);
}

} // namespace

EnginePool::EnginePool(const PoolOptions &O) : Opts(O) {
  unsigned N = Opts.Workers;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  if (Opts.QueueCapacity == 0)
    Opts.QueueCapacity = 1;
  Engines.assign(N, nullptr);
  Shards.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Shards.emplace_back(std::make_unique<WorkerShard>());
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

EnginePool::~EnginePool() { shutdown(/*Drain=*/true); }

void EnginePool::workerMain(unsigned Idx) {
  // The engine is constructed on the worker thread so its heap, stacks,
  // and prelude bootstrap never touch another thread.
  SchemeEngine Engine(Opts.Engine);
  if (Opts.TraceCapacity)
    Engine.startTrace(Opts.TraceCapacity);
  if (Opts.ProfileHz)
    Engine.vm().profiler().start(Engine.vm(), Opts.ProfileHz,
                                 Opts.ProfileCapacity);
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = &Engine;
  }
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      NotEmpty.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        break; // Stopping with nothing left to do.
      if (Stopping && !DrainOnStop)
        break; // Leave queued jobs for shutdown() to reject.
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    NotFull.notify_one();
    runJob(Engine, J, Idx);
  }
  {
    std::lock_guard<std::mutex> L(EnginesMu);
    Engines[Idx] = nullptr;
  }
  // The engine dies with this stack frame: snapshot its observability
  // state into the pool-owned shard first so traceJson()/
  // profileCollapsed() stay valid after shutdown. The profiler's sampler
  // thread must stop before the fold (and before the VM is destroyed).
  SamplingProfiler &Prof = Engine.vm().profiler();
  Prof.stop();
  {
    WorkerShard &S = *Shards[Idx];
    std::lock_guard<std::mutex> L(S.Mu);
    S.TraceDropped = Engine.trace().dropped();
    S.ProfileSamples = Prof.total();
    S.ProfileDropped = Prof.dropped();
    if (Opts.TraceCapacity) {
      S.TraceSnap = Engine.trace();
      S.TraceSnapValid = true;
    }
    if (Opts.ProfileHz)
      Prof.foldInto(S.ProfileFold);
  }
}

void EnginePool::runJob(SchemeEngine &Engine, Job &J, unsigned Idx) {
  InFlight.fetch_add(1, std::memory_order_relaxed);
  uint64_t DequeueNs = nowNanos();
  uint64_t WaitNs = DequeueNs > J.EnqueueNs ? DequeueNs - J.EnqueueNs : 0;

  VMStats Before = Engine.stats();
  Engine.limits() = J.Limits;

  TraceBuffer &TB = Engine.vm().trace();
  char SpanLabel[24];
  if (TB.Enabled) {
    int Len = std::snprintf(SpanLabel, sizeof(SpanLabel), "job-%" PRIu64, J.Id);
    TB.record(TraceEv::JobBegin, SpanLabel, static_cast<size_t>(Len), J.Id);
  }

  JobResult R;
  R.Worker = Idx;
  R.Id = J.Id;
  R.Output = Engine.evalToString(J.Source);
  if (Engine.ok()) {
    R.Ok = true;
  } else {
    R.Output.clear();
    R.Error = Engine.lastError();
    R.Kind = Engine.lastErrorKind();
  }

  if (TB.Enabled)
    TB.record(TraceEv::JobEnd, J.Id);
  uint64_t RunNs = nowNanos() - DequeueNs;

  VMStats Delta = Engine.stats().delta(Before);
  SamplingProfiler &Prof = Engine.vm().profiler();
  {
    // The whole job delta retires in one critical section (see the
    // consistency model in pool.h).
    WorkerShard &S = *Shards[Idx];
    std::lock_guard<std::mutex> L(S.Mu);
    S.QueueWaitUs.record(WaitNs / 1000);
    S.RunUs.record(RunNs / 1000);
    if (R.Ok)
      ++S.JobsOk;
    else
      switch (R.Kind) {
      case ErrorKind::HeapLimit:
        ++S.TrippedHeap;
        break;
      case ErrorKind::StackLimit:
        ++S.TrippedStack;
        break;
      case ErrorKind::Timeout:
        ++S.TrippedTimeout;
        break;
      case ErrorKind::Interrupt:
        ++S.TrippedInterrupt;
        break;
      default:
        ++S.JobsError;
      }
    accumulateStats(S.Engines, Delta);
    S.TraceDropped = TB.dropped();
    S.ProfileSamples = Prof.total();
    S.ProfileDropped = Prof.dropped();
  }
  InFlight.fetch_sub(1, std::memory_order_relaxed);
  J.Promise.set_value(std::move(R));
}

void EnginePool::rejectJob(Job &J) {
  JobResult R;
  R.Ok = false;
  R.Error = "engine pool is shut down";
  R.Kind = ErrorKind::Runtime;
  R.Id = J.Id;
  J.Promise.set_value(std::move(R));
}

std::future<JobResult> EnginePool::submit(std::string Source) {
  return submit(std::move(Source), Opts.DefaultJobLimits);
}

std::future<JobResult> EnginePool::submit(std::string Source,
                                          const EngineLimits &L) {
  Job J;
  J.Source = std::move(Source);
  J.Limits = L;
  std::future<JobResult> F = J.Promise.get_future();
  bool Rejected = false;
  {
    std::unique_lock<std::mutex> Lk(QueueMu);
    NotFull.wait(Lk, [&] {
      return Stopping || Queue.size() < Opts.QueueCapacity;
    });
    if (Stopping) {
      Rejected = true;
    } else {
      J.Id = NextJobId++;
      J.EnqueueNs = nowNanos();
      Queue.push_back(std::move(J));
      if (Queue.size() > HighWater)
        HighWater = Queue.size();
    }
  }
  if (Rejected) {
    rejectJob(J);
    std::lock_guard<std::mutex> L(StatsMu);
    ++JobsRejected;
    return F;
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++JobsSubmitted;
  }
  NotEmpty.notify_one();
  return F;
}

bool EnginePool::trySubmit(std::string Source, const EngineLimits &L,
                           std::future<JobResult> &Out) {
  Job J;
  J.Source = std::move(Source);
  J.Limits = L;
  {
    std::lock_guard<std::mutex> Lk(QueueMu);
    if (Stopping || Queue.size() >= Opts.QueueCapacity)
      return false;
    Out = J.Promise.get_future();
    J.Id = NextJobId++;
    J.EnqueueNs = nowNanos();
    Queue.push_back(std::move(J));
    if (Queue.size() > HighWater)
      HighWater = Queue.size();
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++JobsSubmitted;
  }
  NotEmpty.notify_one();
  return true;
}

void EnginePool::shutdown(bool Drain) {
  {
    std::lock_guard<std::mutex> L(QueueMu);
    if (!Stopping) {
      Stopping = true;
      DrainOnStop = Drain;
    }
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
  {
    // JoinMu serializes concurrent shutdown callers on the join itself:
    // the first performs it, later callers block here until the workers
    // are really gone, then see Joined and skip.
    std::lock_guard<std::mutex> L(JoinMu);
    if (!Joined) {
      for (std::thread &T : Threads)
        T.join();
      Joined = true;
    }
  }
  // Whatever is still queued (non-drain shutdown, or jobs that raced in
  // before Stopping was visible) gets rejected, never dropped: every
  // future the pool handed out resolves.
  std::deque<Job> Leftover;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Leftover.swap(Queue);
  }
  for (Job &J : Leftover)
    rejectJob(J);
  if (!Leftover.empty()) {
    std::lock_guard<std::mutex> L(StatsMu);
    JobsRejected += Leftover.size();
  }
}

void EnginePool::interruptAll() {
  std::lock_guard<std::mutex> L(EnginesMu);
  for (SchemeEngine *E : Engines)
    if (E)
      E->requestInterrupt();
}

PoolStats EnginePool::stats() const { return telemetry().Stats; }

PoolTelemetry EnginePool::telemetry() const {
  PoolTelemetry T;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    T.Stats.JobsSubmitted = JobsSubmitted;
    T.Stats.JobsRejected = JobsRejected;
  }
  {
    std::lock_guard<std::mutex> L(QueueMu);
    T.Stats.QueueHighWater = HighWater;
    T.QueueDepth = Queue.size();
  }
  T.InFlight = InFlight.load(std::memory_order_relaxed);
  for (const std::unique_ptr<WorkerShard> &SP : Shards) {
    const WorkerShard &S = *SP;
    std::lock_guard<std::mutex> L(S.Mu);
    T.QueueWaitUs.merge(S.QueueWaitUs);
    T.RunUs.merge(S.RunUs);
    T.JobsOk += S.JobsOk;
    T.JobsError += S.JobsError;
    T.TrippedHeap += S.TrippedHeap;
    T.TrippedStack += S.TrippedStack;
    T.TrippedTimeout += S.TrippedTimeout;
    T.TrippedInterrupt += S.TrippedInterrupt;
    T.TraceDropped += S.TraceDropped;
    T.ProfileSamples += S.ProfileSamples;
    T.ProfileDropped += S.ProfileDropped;
    accumulateStats(T.Stats.Engines, S.Engines);
  }
  T.Stats.JobsCompleted = T.JobsOk;
  T.Stats.JobsFailed = T.JobsError;
  T.Stats.JobsTripped =
      T.TrippedHeap + T.TrippedStack + T.TrippedTimeout + T.TrippedInterrupt;
  return T;
}

MetricsRegistry EnginePool::buildMetrics() const {
  PoolTelemetry T = telemetry();
  MetricsRegistry R;

  R.gauge("cmarks_pool_workers", "Worker threads (= engines) in the pool", {},
          static_cast<double>(Threads.size()));
  R.gauge("cmarks_pool_queue_depth", "Jobs waiting in the queue right now",
          {}, static_cast<double>(T.QueueDepth));
  R.gauge("cmarks_pool_queue_capacity", "Bounded job-queue capacity", {},
          static_cast<double>(Opts.QueueCapacity));
  R.gauge("cmarks_pool_queue_high_water", "Maximum queue depth observed", {},
          static_cast<double>(T.Stats.QueueHighWater));
  R.gauge("cmarks_pool_inflight_jobs", "Jobs evaluating right now", {},
          static_cast<double>(T.InFlight));

  R.counter("cmarks_pool_jobs_submitted_total",
            "Jobs accepted into the queue", {}, T.Stats.JobsSubmitted);
  R.counter("cmarks_pool_jobs_rejected_total",
            "Jobs rejected (shutdown or trySubmit backpressure)", {},
            T.Stats.JobsRejected);

  const char *JobsHelp = "Retired jobs by outcome";
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "ok"}}, T.JobsOk);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "error"}},
            T.JobsError);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "tripped-heap"}},
            T.TrippedHeap);
  R.counter("cmarks_pool_jobs_total", JobsHelp, {{"outcome", "tripped-stack"}},
            T.TrippedStack);
  R.counter("cmarks_pool_jobs_total", JobsHelp,
            {{"outcome", "tripped-timeout"}}, T.TrippedTimeout);
  R.counter("cmarks_pool_jobs_total", JobsHelp,
            {{"outcome", "tripped-interrupt"}}, T.TrippedInterrupt);

  R.histogram("cmarks_pool_queue_wait_seconds",
              "Per-job submit-to-dequeue wait", {}, T.QueueWaitUs, 1e-6);
  R.histogram("cmarks_pool_job_run_seconds", "Per-job evaluation time", {},
              T.RunUs, 1e-6);

  R.counter("cmarks_pool_trace_dropped_events_total",
            "Trace-ring events lost to wraparound across workers", {},
            T.TraceDropped);
  R.counter("cmarks_pool_profile_samples_total",
            "Profile samples captured across workers", {}, T.ProfileSamples);
  R.counter("cmarks_pool_profile_dropped_samples_total",
            "Profile samples lost to ring wraparound across workers", {},
            T.ProfileDropped);

  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I)
    R.counter("cmarks_engine_events_total",
              "Runtime event counters summed across worker engines",
              {{"event", Table[I].Name}}, T.Stats.Engines.*(Table[I].Field));
  return R;
}

std::string EnginePool::metricsText() const {
  return buildMetrics().prometheusText();
}

std::string EnginePool::metricsJson() const {
  return buildMetrics().json("pool");
}

std::string EnginePool::traceJson() const {
  std::vector<const TraceBuffer *> Buffers(Shards.size(), nullptr);
  std::vector<std::string> Names;
  Names.reserve(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I) {
    const WorkerShard &S = *Shards[I];
    char Name[32];
    std::snprintf(Name, sizeof(Name), "worker-%zu", I);
    Names.push_back(Name);
    // TraceSnapValid is set exactly once, at worker exit, under S.Mu;
    // after that the worker never writes the shard again, so the pointer
    // stays valid outside the lock.
    std::lock_guard<std::mutex> L(S.Mu);
    if (S.TraceSnapValid)
      Buffers[I] = &S.TraceSnap;
  }
  return mergedTraceJson(Buffers, Names);
}

bool EnginePool::dumpTrace(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = traceJson();
  bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
  return std::fclose(F) == 0 && Ok;
}

std::string EnginePool::profileCollapsed() const {
  std::map<std::string, uint64_t> Merged;
  for (const std::unique_ptr<WorkerShard> &SP : Shards) {
    const WorkerShard &S = *SP;
    std::lock_guard<std::mutex> L(S.Mu);
    for (const auto &KV : S.ProfileFold)
      Merged[KV.first] += KV.second;
  }
  return SamplingProfiler::collapsedText(Merged);
}

bool EnginePool::dumpProfile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = profileCollapsed();
  bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
  return std::fclose(F) == 0 && Ok;
}
