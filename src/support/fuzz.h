//===- support/fuzz.h - Differential fuzzing subsystem --------*- C++ -*-===//
///
/// \file
/// Random-program differential testing over the engine matrix. The paper's
/// correctness story rests on the equivalence of the optimized runtime
/// paths (fused superinstructions, 7.2 attachment-category elision, the
/// one-shot machinery) with the simple semantics; the CEK heap-frame model
/// in src/model/ already caught one real reification bug via hand-written
/// differential tests. This subsystem makes that systematic:
///
///  - ProgramGen: a seeded random Scheme program generator biased toward
///    the interesting space -- nested `with-continuation-marks` in tail and
///    non-tail position, `call/cc` and one-shot captures crossing
///    `dynamic-wind`, prompts and composable continuations, mark
///    observation at varying depths, and the numeric-tower edge cases.
///    Programs are built as explicit trees so a failing case can be shrunk
///    structurally. A subset of the grammar (`OracleSafe`) stays within
///    the heap model's supported forms, so those programs are additionally
///    checked against the section 4 reference semantics.
///
///  - FuzzHarness: runs every program through a configurable matrix of
///    engine legs (fused / unfused / no-opt / no-1cc / heap-frames /
///    copy-on-capture / heap-model oracle, plus fault-injection schedules
///    when the build has CMARKS_FAULTS), compares results and error
///    classifications, re-runs the reference leg to check determinism of
///    results *and* VMStats counters, validates counter invariants, and on
///    divergence shrinks the program to a local minimum and emits a
///    self-contained repro file (tools/fuzz_repro corpus format).
///
/// The CLI driver is tools/fuzz_diff.cpp (`cmarks_fuzz`); the bounded
/// fixed-seed smoke lives in tests/test_fuzz.cpp and the nightly soak in
/// .github/workflows/soak.yml. See DESIGN.md section 12.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_FUZZ_H
#define CMARKS_SUPPORT_FUZZ_H

#include "api/scheme.h"
#include "support/rng.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cmk {
namespace fuzz {

// --- Program representation -------------------------------------------------

/// Grammar productions. Leaves first; the comment names the rendered shape
/// (see renderNode in fuzz.cpp). Productions marked [full] are outside the
/// heap model's supported subset and only appear in non-oracle programs.
enum class Prod : uint8_t {
  Num,          ///< Integer literal.
  FloLeaf,      ///< [full] Flonum/infinity/NaN literal.
  SymLeaf,      ///< Quoted symbol.
  FstLeaf,      ///< (fst 'k)
  ObsLeaf,      ///< (obs 'k)
  AttLeaf,      ///< (current-continuation-attachments)
  WcmTail,      ///< wcm in tail position.
  WcmNonTail,   ///< wcm under (car (list ...)).
  WcmChain,     ///< Two nested wcm, different keys.
  ObsList,      ///< (list (obs 'k) <e>)
  FirstCons,    ///< (cons (fst 'k) <e>)
  AttachSet,    ///< call-setting-continuation-attachment.
  AttachGet,    ///< call-getting-continuation-attachment.
  AttachConsume,///< call-consuming-continuation-attachment.
  EscUnused,    ///< #%call/cc, continuation unused.
  EscUsed,      ///< #%call/cc escape, possibly from under `deep` frames.
  ReEntry,      ///< Bounded continuation re-entry (capture, return, re-apply).
  LetObs,       ///< let-bound subexpression, then observe a mark.
  IfSplit,      ///< Deterministic two-way branch.
  Thunk,        ///< Call boundary through a thunk.
  NoteSeq,      ///< Side-effect log entry, then <e>.
  Deep,         ///< Run <e> under N non-tail frames.
  WrappedEsc,   ///< [full] call/cc (winder-aware) escape or fallthrough.
  OneShot,      ///< [full] call/1cc, applied once or unused.
  DynWind,      ///< [full] dynamic-wind with logged before/after thunks.
  EscThroughWind,///< [full] escape crossing a dynamic-wind boundary.
  Prompt,       ///< [full] call-with-continuation-prompt + handler.
  AbortToPrompt,///< [full] abort-current-continuation to an enclosing prompt.
  Composable,   ///< [full] composable capture applied twice.
  ComposableMarks,///< [full] marks spliced across a composable re-entry.
  NumEdgeInt,   ///< [full] modulo/remainder/quotient sign edge cases.
  NumEdgeFlo,   ///< [full] inexact division by zero, NaN comparisons.
  CatchThrow,   ///< [full] catch with a conditional throw.
  Param,        ///< [full] parameterize over a preamble parameter.
  Generator,    ///< [full] bounded prompt-based generator.
  FiberJoin,    ///< [full] (fiber-join (spawn (lambda () <e>))).
  FiberPair,    ///< [full] Two yielding fibers, interleave logged, both joined.
  FiberChannel, ///< [full] Bounded-channel producer fiber + consumer get.
  FiberMarks    ///< [full] wcm isolation across a spawn + yield boundary.
};

/// One node of a generated program. Rendering is a pure function of the
/// production, the two numeric parameters, the site id (used to keep
/// binder names unique), and the children -- which is what makes
/// structural shrinking possible.
struct GenNode {
  Prod P = Prod::Num;
  int A = 0;       ///< First numeric parameter (key index, literal, depth).
  int B = 0;       ///< Second numeric parameter (mark value, branch coin).
  int Id = 0;      ///< Unique site id for binder/symbol names.
  std::vector<std::unique_ptr<GenNode>> Kids;

  std::unique_ptr<GenNode> clone() const;
  size_t size() const; ///< Node count, for shrink accounting.
};

/// A generated (or reloaded) program: the rendered source plus, when it
/// came from ProgramGen, the tree it was rendered from.
struct FuzzProgram {
  uint64_t Seed = 0;   ///< Per-program seed (derived from the campaign seed).
  int Index = 0;       ///< Position in the campaign.
  bool OracleSafe = false;
  std::unique_ptr<GenNode> Root; ///< Null when loaded from a repro file.
  std::string Source;
};

/// Generator knobs (a namespace-scope struct so it can be a default
/// argument below).
struct GenOptions {
  int Depth = 5;                   ///< Expression nesting budget.
  unsigned OracleSafePercent = 50; ///< Share of oracle-checkable programs.
  /// Include the fiber productions (spawn/yield/channel programs) in the
  /// full pool. Off when a selected leg cannot run fibers at all (the
  /// mark-stack comparator rejects spawn).
  bool EnableFibers = true;
};

/// Seeded program generator.
class ProgramGen {
public:
  using Options = GenOptions;

  explicit ProgramGen(uint64_t CampaignSeed, Options O = Options());

  FuzzProgram next();

  /// Renders a program tree to complete source (preamble + body). Pure;
  /// the shrinker re-renders candidate trees through this.
  static std::string render(const GenNode &E1, const GenNode &E2,
                            bool OracleSafe);

private:
  std::unique_ptr<GenNode> gen(Rng &R, int Depth, bool OracleSafe);
  std::unique_ptr<GenNode> leaf(Rng &R, bool OracleSafe);

  Rng Master;
  Options Opts;
  int Index = 0;
  int NextId = 0;
};

// --- Engine matrix ----------------------------------------------------------

/// One leg of the differential matrix: a named engine configuration, the
/// heap-model oracle, or a fault-schedule variation of an engine.
struct FuzzLeg {
  std::string Name;
  bool IsOracle = false;
  EngineOptions Opts;
  /// Fault-injection schedule (support/faults.h spec grammar), armed on
  /// the leg's engine when non-empty. Requires a CMARKS_FAULTS build to
  /// have any effect. Preserving schedules (gc/overflow/nofuse) join the
  /// result comparison; failing schedules (oom/reify-oom) only assert
  /// that the outcome is a cleanly classified error or value.
  std::string FaultSpec;
  bool FaultPreserving = true;
  /// Test hook: rewrites the source before this leg evaluates it,
  /// simulating a miscompiling engine so the harness/shrinker machinery
  /// can be exercised deterministically (tests/test_fuzz.cpp).
  std::function<std::string(const std::string &)> MutateSource;
};

/// The standard matrix: fused (reference), unfused, no-opt, no-1cc,
/// heap-frames, copy-on-capture, and optionally the heap-model oracle.
/// The threaded-vs-switch dispatch axis is a build-time option
/// (CMARKS_THREADED); CI covers it by running the same smoke in the
/// switch-dispatch matrix leg.
std::vector<FuzzLeg> defaultLegs(bool IncludeOracle = true);

/// Resolves a leg by its standard name ("fused", "unfused", "no-opt",
/// "no-1cc", "heap-frames", "copy-on-capture", "mark-stack", "oracle").
/// Returns false if the name is unknown.
bool legByName(const std::string &Name, FuzzLeg &Out);

// --- Harness ----------------------------------------------------------------

/// How one leg's evaluation ended.
enum class OutcomeClass : uint8_t {
  Value,     ///< Normal completion; Repr holds the written result.
  Error,     ///< Runtime/compile error; Repr holds the message.
  LimitTrip, ///< Resource-limit backstop fired; the program is skipped.
};

struct LegOutcome {
  OutcomeClass Class = OutcomeClass::Value;
  std::string Repr;
  ErrorKind Kind = ErrorKind::None;
  VMStats Counters; ///< Workload counter deltas (VM legs only).
};

struct HarnessOptions {
  /// Wall-clock backstop per leg evaluation; trips skip the program.
  uint64_t TimeoutMs = 10000;
  /// Step budget for the heap-model oracle.
  uint64_t OracleStepLimit = 50'000'000;
  /// Check VMStats invariants after every leg run.
  bool CheckInvariants = true;
  /// Re-run the reference leg and require identical results and counters.
  bool CheckDeterminism = true;
  /// Maximum candidate evaluations the shrinker may spend per divergence.
  int ShrinkBudget = 250;
  /// When non-empty, divergence repro files are written here.
  std::string ReproDir;
  /// When nonzero, every VM leg runs the safe-point sampling profiler at
  /// this rate (support/profiler.h). Sampling consumes its async-signal
  /// bit without polling, so results AND counters must stay bit-for-bit
  /// identical with the sampler on — the nightly soak leg exists to catch
  /// any perturbation.
  uint32_t ProfileHz = 0;
};

/// A confirmed divergence (or invariant/determinism violation), shrunk
/// when the program tree was available.
struct Divergence {
  uint64_t Seed = 0;
  int Index = 0;
  std::string LegA, LegB;    ///< The disagreeing pair (LegB may be "").
  std::string ReprA, ReprB;
  std::string Detail;        ///< Invariant text for non-pair failures.
  std::string Source;        ///< Shrunk source.
  std::string OriginalSource;
  int ShrinkEvals = 0;
  std::string ReproPath;     ///< Set when a repro file was written.
};

struct CampaignStats {
  long Programs = 0;
  long OracleChecked = 0;
  long Skipped = 0;       ///< Limit-trip outcomes.
  long Divergences = 0;
  long LegRuns = 0;
};

class FuzzHarness {
public:
  FuzzHarness(std::vector<FuzzLeg> Legs, HarnessOptions O);

  /// Runs one program through every leg. Returns true when all legs agree
  /// (or the program was skipped); fills \p Div otherwise. Shrinks and
  /// writes a repro when the program carries its tree and ReproDir is set.
  bool checkProgram(const FuzzProgram &P, Divergence *Div);

  /// Generates and checks \p Count programs (or until \p TimeBudgetSec
  /// elapses, when positive). Returns true when no divergence was found.
  bool runCampaign(uint64_t Seed, long Count, ProgramGen::Options GenOpts,
                   CampaignStats &Stats, std::vector<Divergence> &Divs,
                   double TimeBudgetSec = 0, bool StopOnFirst = false,
                   bool Verbose = false);

  /// Re-runs a repro file (comment lines stripped) through the matrix.
  bool reproduce(const std::string &Source, Divergence *Div);

  const std::vector<FuzzLeg> &legs() const { return Legs; }

private:
  LegOutcome runLeg(const FuzzLeg &Leg, const std::string &Source);
  bool compareOutcomes(const std::string &Source, bool OracleSafe,
                       Divergence *Div);
  bool sourcesDiverge(const std::string &Source, bool OracleSafe);
  void shrink(const FuzzProgram &P, Divergence &Div);
  void writeRepro(const FuzzProgram &P, Divergence &Div);

  std::vector<FuzzLeg> Legs;
  HarnessOptions Opts;
  CampaignStats *ActiveStats = nullptr;
  /// True while evaluating shrink candidates: invariant and determinism
  /// re-checks are skipped so the shrinker converges on the divergence.
  bool InShrink = false;
};

/// Checks the counter invariants that must hold for any successful run on
/// an engine with no fault schedule and only the harness's timeout armed.
/// Returns "" when all hold, else a description of the first violation.
std::string checkStatsInvariants(const VMStats &S, const EngineOptions &Opts);

} // namespace fuzz
} // namespace cmk

#endif // CMARKS_SUPPORT_FUZZ_H
