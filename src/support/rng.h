//===- support/rng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
///
/// \file
/// A small, deterministic xorshift-style PRNG. Benchmark workload generators
/// and the property-test fuzzer use this instead of std::mt19937 so that
/// runs are reproducible across platforms and standard-library versions.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_RNG_H
#define CMARKS_SUPPORT_RNG_H

#include <cstdint>

namespace cmk {

/// SplitMix64-seeded xoshiro256** generator; deterministic across builds.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 expansion of the seed into the four-lane state.
    uint64_t X = Seed;
    for (uint64_t &Lane : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Lane = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) { return Bound ? next() % Bound : 0; }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace cmk

#endif // CMARKS_SUPPORT_RNG_H
