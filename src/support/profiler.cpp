//===- support/profiler.cpp - Safe-point sampling profiler ----------------===//
///
/// \file
/// Sampler thread, the allocation-free capture path, and collapsed-stack
/// folding. See profiler.h for the protocol and DESIGN.md §13 for why
/// capture must not touch VMStats or fuel.
///
//===----------------------------------------------------------------------===//

#include "support/profiler.h"

#include "marks/marks.h"
#include "support/timing.h"
#include "vm/vm.h"

#include <chrono>
#include <cstring>

using namespace cmk;

void SamplingProfiler::start(VM &M, uint32_t Hz, uint32_t Capacity) {
  if (running())
    return;
  if (Hz == 0)
    Hz = DefaultHz;
  Cap = Capacity ? Capacity : (Cap ? Cap : DefaultCapacity);
  Samples.assign(Cap, ProfileSample{});
  Head = 0;
  Pokes.store(0, std::memory_order_relaxed);
  StopRequested = false;
  auto Period = std::chrono::nanoseconds(1000000000ull / Hz);
  // The thread touches only the VM's atomic signal word — the engine
  // itself never blocks on the sampler and the sampler never reads
  // engine state, so this is TSan-clean by construction.
  Sampler = std::thread([this, &M, Period] {
    std::unique_lock<std::mutex> L(SamplerMu);
    for (;;) {
      if (SamplerCv.wait_for(L, Period, [this] { return StopRequested; }))
        return;
      M.pokeSample();
      Pokes.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void SamplingProfiler::stopThread() {
  if (!Sampler.joinable())
    return;
  {
    std::lock_guard<std::mutex> L(SamplerMu);
    StopRequested = true;
  }
  SamplerCv.notify_all();
  Sampler.join();
}

namespace {

/// Appends a frame value's text to [*P, End), returning false when it
/// does not fully fit (the caller then stops adding outer frames, keeping
/// the leaf-side attribution intact). Handles the value shapes
/// with-stack-frame plausibly stores; no allocation.
bool appendFrameText(char *&P, char *End, Value V) {
  const char *Data = nullptr;
  size_t Len = 0;
  char Buf[24];
  if (V.isSymbol()) {
    SymbolObj *S = asSymbol(V);
    Data = S->Data;
    Len = S->Len;
  } else if (V.isString()) {
    StringObj *S = asString(V);
    Data = S->Data;
    Len = S->Len;
  } else if (V.isFixnum()) {
    Len = static_cast<size_t>(std::snprintf(
        Buf, sizeof(Buf), "%lld", static_cast<long long>(V.asFixnum())));
    Data = Buf;
  } else {
    Data = "?";
    Len = 1;
  }
  if (static_cast<size_t>(End - P) < Len)
    return false;
  // Collapsed-stack syntax reserves ';' (frame separator) and ' '
  // (count separator): map them to ':' and '_'.
  for (size_t I = 0; I < Len; ++I) {
    char C = Data[I];
    *P++ = C == ';' ? ':' : (C == ' ' ? '_' : C);
  }
  return true;
}

} // namespace

void SamplingProfiler::captureSample(VM &M) {
  if (!Cap)
    return; // Stale poke consumed after stop()/before start().
  ProfileSample &S = Samples[Head % Cap];
  S.TimeNs = nowNanos();

  // Gather the #%trace-key mark chain, innermost first, straight off the
  // attachment list (or the MarkStackMode side stack) — the same data
  // current-stack-snapshot reads, but without the counting/caching
  // lookup entry points, so sampling never perturbs VMStats.
  Value Frames[MaxDepth];
  uint32_t N = 0;
  Value Key = M.SnapshotKey;
  if (!Key.isUndefined()) {
    if (M.config().MarkStackMode) {
      for (size_t I = M.MarkStack.size(); I > 0 && N < MaxDepth; --I)
        if (M.MarkStack[I - 1].Key == Key)
          Frames[N++] = M.MarkStack[I - 1].Val;
    } else {
      for (Value P = M.currentMarksList(); P.isPair() && N < MaxDepth;
           P = asPair(P)->Cdr) {
        Value Att = asPair(P)->Car;
        if (!Att.isMarkFrame())
          continue;
        Value V = markFrameLookup(Att, Key);
        if (!V.isUndefined())
          Frames[N++] = V;
      }
    }
  }

  // The leaf is the procedure the VM is actually executing — named even
  // for let-bound loops (the compiler names letrec/let lambdas), which is
  // what makes mark-free code attributable.
  char *P = S.Stack;
  char *End = S.Stack + sizeof(S.Stack) - 1;
  // Root-first: outermost mark frame ... innermost mark frame ; leaf.
  for (uint32_t I = N; I > 0; --I) {
    char *Save = P;
    if (!appendFrameText(P, End - 1, Frames[I - 1])) {
      P = Save;
      break;
    }
    *P++ = ';';
  }
  Value Name = Value::undefined();
  if (M.Regs.CurCode.isKind(ObjKind::Code))
    Name = asCode(M.Regs.CurCode)->Name;
  if (Name.isSymbol()) {
    if (!appendFrameText(P, End, Name)) {
      // No room for the leaf after the mark prefix: restart with the
      // leaf alone so attribution survives.
      P = S.Stack;
      appendFrameText(P, End, Name);
    }
  } else {
    const char *Anon = "(anonymous)";
    size_t Len = std::strlen(Anon);
    if (static_cast<size_t>(End - P) < Len)
      P = S.Stack;
    std::memcpy(P, Anon, Len);
    P += Len;
  }
  *P = '\0';
  ++Head;
}

void SamplingProfiler::foldInto(std::map<std::string, uint64_t> &Out) const {
  uint64_t N = sampleCount();
  uint64_t Oldest = Head < Cap ? 0 : Head - Cap;
  for (uint64_t I = 0; I < N; ++I) {
    const ProfileSample &S = Samples[(Oldest + I) % Cap];
    if (S.Stack[0])
      ++Out[S.Stack];
  }
}

std::string
SamplingProfiler::collapsedText(const std::map<std::string, uint64_t> &F) {
  std::string Out;
  for (const auto &KV : F) {
    Out += KV.first;
    Out += ' ';
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(KV.second));
    Out += Buf;
    Out += '\n';
  }
  return Out;
}

std::string SamplingProfiler::toCollapsed() const {
  std::map<std::string, uint64_t> F;
  foldInto(F);
  return collapsedText(F);
}

bool SamplingProfiler::writeCollapsed(std::FILE *Out) const {
  std::string S = toCollapsed();
  return std::fwrite(S.data(), 1, S.size(), Out) == S.size();
}
