//===- support/limits.h - Engine resource governance ----------*- C++ -*-===//
///
/// \file
/// Resource limits for a cmarks engine and the vocabulary shared by the
/// heap, the VM, and the embedding API to talk about limit trips.
///
/// The design has two tiers per resource, mirroring how the paper's rare
/// paths are engineered to have somewhere to run:
///
///  - A *budget* (heap bytes, live stack segments) whose exhaustion is a
///    recoverable event: the subsystem grants a reserved slab (heap
///    headroom, reserve segments) so execution can reach the next VM safe
///    point, where the trip is raised as an ordinary, catchable Scheme
///    exception. Error construction, handler dispatch, and dynamic-wind
///    after-thunks all allocate out of the reserve.
///  - The *reserve* itself. Exhausting it means the program kept consuming
///    through its own limit-trip handling; that is no longer recoverable
///    within the run and is reported by throwing ResourceExhausted, which
///    the API boundary (VM::applyProcedure, SchemeEngine::eval) converts
///    into a failed evaluation. The engine stays reusable either way.
///
/// Budgets re-arm when a collection brings usage back under the limit, so
/// one engine can trip, recover, and trip again indefinitely.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_LIMITS_H
#define CMARKS_SUPPORT_LIMITS_H

#include <cstdint>

namespace cmk {

/// Per-engine resource limits. A zero value disables that limit. Lives in
/// VMConfig so the embedding API and the REPL share one plumbing path;
/// fields may be adjusted between runs through SchemeEngine::limits().
struct EngineLimits {
  /// Byte budget for live + recently-allocated heap objects. 0 = none.
  uint64_t HeapBytes = 0;
  /// Reserved slab granted once when the byte budget trips, so the limit
  /// exception can itself allocate and unwind through dynamic-wind.
  uint64_t HeapHeadroomBytes = 1u << 20;
  /// Budget for live stack segments (continuation depth in units of
  /// segments; deep recursion holds its segments live through the
  /// underflow-record chain). 0 = none.
  uint32_t MaxLiveSegments = 0;
  /// Reserve segments granted once when the segment budget trips, so the
  /// overflow handler has stack to run on.
  uint32_t ReserveSegments = 8;
  /// Wall-clock budget per applyProcedure run, in milliseconds. 0 = none.
  uint64_t TimeoutMs = 0;
  /// Safe-point sites (calls and taken backward branches; see
  /// src/vm/vm.cpp) between dispatch-loop polls (fuel). Polls check the
  /// deadline, the host interrupt flag, and pending budget trips;
  /// smaller = more responsive, larger = cheaper. Fuel only governs an
  /// engine with some limit armed (a heap/segment/timeout budget, or a
  /// non-default FuelInterval): ungoverned engines never fuel-expire and
  /// take zero polls, though host interrupts and heap fuel pokes still
  /// reach the next safe-point site promptly.
  uint32_t FuelInterval = 10000;
};

/// What exhausted. None doubles as "nothing pending".
enum class TripKind : uint8_t { None, HeapLimit, StackLimit, Timeout, Interrupt };

/// Classification of a failed evaluation, for host dispatch (the REPL
/// maps these to distinct exit codes).
enum class ErrorKind : uint8_t {
  None,       ///< No error.
  Runtime,    ///< Ordinary Scheme/VM error (type error, uncaught throw).
  HeapLimit,  ///< Heap byte budget exhausted.
  StackLimit, ///< Stack segment budget exhausted.
  Timeout,    ///< Wall-clock budget exhausted.
  Interrupt,  ///< Host called requestInterrupt().
};

inline ErrorKind errorKindOf(TripKind T) {
  switch (T) {
  case TripKind::HeapLimit:
    return ErrorKind::HeapLimit;
  case TripKind::StackLimit:
    return ErrorKind::StackLimit;
  case TripKind::Timeout:
    return ErrorKind::Timeout;
  case TripKind::Interrupt:
    return ErrorKind::Interrupt;
  case TripKind::None:
    break;
  }
  return ErrorKind::None;
}

/// The kind symbols used by the catchable Scheme exceptions and the
/// REPL's reporting ("heap-limit", "stack-limit", "timeout", "interrupt").
inline const char *tripKindName(TripKind T) {
  switch (T) {
  case TripKind::HeapLimit:
    return "heap-limit";
  case TripKind::StackLimit:
    return "stack-limit";
  case TripKind::Timeout:
    return "timeout";
  case TripKind::Interrupt:
    return "interrupt";
  case TripKind::None:
    break;
  }
  return "none";
}

/// The one sanctioned C++ exception in cmarks (see support/debug.h):
/// thrown when a resource is exhausted beyond its reserve (or the host
/// really is out of memory), caught at the API boundary and converted
/// into a failed — but recoverable — evaluation. \p What is a static
/// string: constructing the report must not allocate.
struct ResourceExhausted {
  TripKind Kind;
  const char *What;
};

} // namespace cmk

#endif // CMARKS_SUPPORT_LIMITS_H
