//===- support/faults.h - Deterministic fault injection -------*- C++ -*-===//
///
/// \file
/// A seeded, site-counted fault injector for exercising the engine's rare
/// paths on demand. The paper's design is judged on what happens at
/// segment overflow (§5), reification (§7.2), and underflow fuse-vs-copy
/// (§6) — paths a normal workload may never hit. Each injection site is a
/// named hook compiled into the runtime when the `CMARKS_FAULTS` CMake
/// option is ON; a trigger schedule (nth hit, every Kth hit, or a seeded
/// coin flip) decides when the hook fires.
///
/// Two site families:
///
///  - *Semantics-preserving* sites force a legal-but-rare path: `gc`
///    (collect before an allocation), `overflow` (treat a frame push as a
///    segment overflow, forcing the split/reify machinery), `nofuse`
///    (disable the opportunistic underflow fuse, forcing the copy path).
///    Running the full test suite under these must not change any result —
///    that is what `tools/fault_sweep.py` verifies.
///  - *Failing* sites simulate exhaustion: `oom` (allocation trips the
///    heap budget) and `reify-oom` (the trip lands exactly at a
///    reification site). These surface as the same catchable limit
///    exceptions real exhaustion produces, so recovery tests can force
///    OOM-during-reify without a multi-gigabyte workload.
///
/// Hooks are free when `CMARKS_FAULTS` is OFF (the macro folds to
/// `false`); the class itself is always compiled so the embedding API is
/// build-independent. Configuration comes from the API
/// (`configureFromSpec`) or the `CMARKS_FAULT_SPEC` environment variable;
/// the seeded trigger reuses `cmk::Rng` so schedules are reproducible
/// across platforms. Hit counting pauses while suspended (engine startup
/// loads the prelude suspended, so `at=N` is deterministic relative to
/// the user's program, not the prelude).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_FAULTS_H
#define CMARKS_SUPPORT_FAULTS_H

#include "support/rng.h"
#include "support/stats.h"

#include <cstdint>
#include <string>

#ifndef CMARKS_FAULTS
#define CMARKS_FAULTS 0
#endif

namespace cmk {

/// The compiled-in injection sites. Keep in sync with siteName().
enum class FaultSite : uint8_t {
  Gc,       ///< Force a collection at allocRaw entry (preserving).
  Overflow, ///< Force the segment-overflow slow path on a call (preserving).
  NoFuse,   ///< Force underflow copy instead of one-shot fuse (preserving).
  Oom,      ///< Trip the heap budget at an allocation (failing, catchable).
  ReifyOom, ///< Trip the heap budget at a reification site (failing).
};
constexpr int NumFaultSites = 5;

const char *faultSiteName(FaultSite S);

/// Deterministic per-site trigger schedules. One instance per engine.
class FaultInjector {
public:
  /// When an armed site fires relative to its hit counter.
  enum class Mode : uint8_t {
    Off,   ///< Never fires.
    At,    ///< Fires exactly once, on hit number N (1-based).
    Every, ///< Fires on every Kth hit (hit K, 2K, 3K, ...).
    Prob,  ///< Fires on each hit with probability Pct/100, seeded.
  };

  FaultInjector() = default;

  /// Parses a schedule spec and replaces the current configuration.
  /// Grammar (entries separated by ';', spaces ignored):
  ///
  ///   spec    := entry (';' entry)*
  ///   entry   := site ':' trigger
  ///   site    := gc | overflow | nofuse | oom | reify-oom
  ///   trigger := 'at=' N | 'every=' K | 'p=' PCT [',seed=' S]
  ///
  /// e.g. "overflow:every=7;oom:at=120" or "nofuse:p=50,seed=3".
  /// Returns false (and fills \p Err when non-null) on a malformed spec;
  /// the previous configuration is kept on failure.
  bool configureFromSpec(const std::string &Spec, std::string *Err = nullptr);

  /// Applies $CMARKS_FAULT_SPEC if set and non-empty. Returns false only
  /// when the variable is set but malformed (reported to stderr).
  bool configureFromEnv();

  /// Arms one site directly (tests use this instead of spec strings).
  void arm(FaultSite S, Mode M, uint64_t N, uint64_t Seed = 0);
  /// Mixes \p Salt into every probabilistic site's stream (keeping the
  /// configured seeds, so the whole schedule is still a pure function of
  /// spec + salt). EnginePool salts each worker engine with its worker
  /// index and restart count: a fleet of engines sharing one
  /// CMARKS_FAULT_SPEC then draws distinct — but reproducible — fault
  /// schedules instead of injecting in lockstep.
  void reseed(uint64_t Salt);
  /// Disarms every site; counters keep their values.
  void disarmAll();
  /// Zeroes all hit/injected counters; schedules restart from hit 0.
  void resetCounters();

  /// True if the site should fail/divert now. Counts a hit (and consults
  /// the schedule) only when the site is armed and the injector is not
  /// suspended, so `at=N` schedules are stable under engine-internal
  /// work that runs suspended.
  bool shouldFail(FaultSite S);

  /// Suspend/resume hook evaluation (nested). Engine startup runs
  /// suspended so prelude loading can never trip a fault.
  void suspend() { ++SuspendDepth; }
  void resume() {
    if (SuspendDepth > 0)
      --SuspendDepth;
  }
  bool suspended() const { return SuspendDepth > 0; }

  bool anyArmed() const;
  uint64_t hits(FaultSite S) const { return Sites[idx(S)].Hits; }
  uint64_t injected(FaultSite S) const { return Sites[idx(S)].Injected; }
  uint64_t totalInjected() const;

  /// Routes FaultsInjected increments into an engine's counters.
  void attachVMStats(VMStats *S) { Stats = S; }

  /// Multi-line human-readable per-site report (REPL --fault-report).
  std::string report() const;

private:
  struct Site {
    Mode M = Mode::Off;
    uint64_t N = 0;    ///< At: target hit. Every: period. Prob: percent.
    uint64_t Seed = 0; ///< Prob only.
    Rng R{0};
    uint64_t Hits = 0;
    uint64_t Injected = 0;
  };

  static int idx(FaultSite S) { return static_cast<int>(S); }

  Site Sites[NumFaultSites];
  int SuspendDepth = 0;
  VMStats *Stats = nullptr;
};

} // namespace cmk

// The hook: true when the build compiles fault injection in, the injector
// is attached, and this site's schedule fires on this hit.
#if CMARKS_FAULTS
#define CMK_FAULT(InjPtr, SITE)                                                \
  ((InjPtr) != nullptr &&                                                      \
   (InjPtr)->shouldFail(::cmk::FaultSite::SITE))
#else
#define CMK_FAULT(InjPtr, SITE) false
#endif

#endif // CMARKS_SUPPORT_FAULTS_H
