//===- support/fuzz.cpp - Differential fuzzing subsystem ------*- C++ -*-===//

#include "support/fuzz.h"

#include "compiler/expand.h"
#include "model/heap_model.h"
#include "reader/reader.h"
#include "runtime/heap.h"
#include "runtime/printer.h"
#include "support/timing.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

using namespace cmk;
using namespace cmk::fuzz;

// --- Tree -------------------------------------------------------------------

std::unique_ptr<GenNode> GenNode::clone() const {
  auto N = std::make_unique<GenNode>();
  N->P = P;
  N->A = A;
  N->B = B;
  N->Id = Id;
  N->Kids.reserve(Kids.size());
  for (const auto &K : Kids)
    N->Kids.push_back(K->clone());
  return N;
}

size_t GenNode::size() const {
  size_t S = 1;
  for (const auto &K : Kids)
    S += K->size();
  return S;
}

namespace {

const char *keyName(int A) {
  switch (A % 3) {
  case 0:
    return "'k1";
  case 1:
    return "'k2";
  default:
    return "'k3";
  }
}

const char *tagName(int A) { return (A % 2) ? "tag-b" : "tag-a"; }

std::string id(const char *Prefix, int Id) {
  return std::string(Prefix) + std::to_string(Id);
}

/// Renders one node. Pure function of the node fields and children, which
/// is what lets the shrinker re-render edited trees.
void renderNode(const GenNode &N, std::string &O) {
  auto Kid = [&](size_t I) { renderNode(*N.Kids[I], O); };
  auto Lit = [&](const std::string &S) { O += S; };
  std::string A = std::to_string(N.A), B = std::to_string(N.B);
  std::string K = keyName(N.A), Tag = tagName(N.A);

  switch (N.P) {
  case Prod::Num:
    Lit(A);
    break;
  case Prod::FloLeaf: {
    static const char *Flo[] = {"0.5",    "-1.5",   "2.0",
                                "+inf.0", "-inf.0", "+nan.0"};
    Lit(Flo[N.A % 6]);
    break;
  }
  case Prod::SymLeaf:
    Lit("'s" + std::to_string(N.Id));
    break;
  case Prod::FstLeaf:
    Lit("(fst " + K + ")");
    break;
  case Prod::ObsLeaf:
    Lit("(obs " + K + ")");
    break;
  case Prod::AttLeaf:
    Lit("(current-continuation-attachments)");
    break;
  case Prod::WcmTail:
    Lit("(with-continuation-mark " + K + " " + B + " ");
    Kid(0);
    Lit(")");
    break;
  case Prod::WcmNonTail:
    Lit("(car (list (with-continuation-mark " + K + " " + B + " ");
    Kid(0);
    Lit(")))");
    break;
  case Prod::WcmChain:
    Lit("(with-continuation-mark " + K + " " + B +
        " (with-continuation-mark " + keyName(N.A + 1) + " " +
        std::to_string(N.B + 7) + " ");
    Kid(0);
    Lit("))");
    break;
  case Prod::ObsList:
    Lit("(list (obs " + K + ") ");
    Kid(0);
    Lit(")");
    break;
  case Prod::FirstCons:
    Lit("(cons (fst " + K + ") ");
    Kid(0);
    Lit(")");
    break;
  case Prod::AttachSet:
    Lit("(call-setting-continuation-attachment " + B + " (lambda () ");
    Kid(0);
    Lit("))");
    break;
  case Prod::AttachGet: {
    std::string V = id("att", N.Id);
    Lit("(call-getting-continuation-attachment 'dflt (lambda (" + V +
        ") (list " + V + " ");
    Kid(0);
    Lit(")))");
    break;
  }
  case Prod::AttachConsume: {
    std::string V = id("att", N.Id);
    Lit("(call-consuming-continuation-attachment 'dflt (lambda (" + V +
        ") (cons " + V + " ");
    Kid(0);
    Lit(")))");
    break;
  }
  case Prod::EscUnused:
    Lit("(#%call/cc (lambda (" + id("esc", N.Id) + ") ");
    Kid(0);
    Lit("))");
    break;
  case Prod::EscUsed: {
    std::string E = id("esc", N.Id);
    if (N.B % 2 == 0) {
      Lit("(#%call/cc (lambda (" + E + ") (" + E + " ");
      Kid(0);
      Lit(")))");
    } else {
      // Escape from under N.A non-tail frames.
      Lit("(#%call/cc (lambda (" + E + ") (deep " + A + " (lambda () (" + E +
          " ");
      Kid(0);
      Lit(")))))");
    }
    break;
  }
  case Prod::ReEntry: {
    // Capture, return through a wcm extent, then re-enter exactly once.
    std::string Sv = id("saved", N.Id), R = id("r", N.Id), Kv = id("k", N.Id);
    Lit("(let ([" + Sv + " (cons #f #f)]) (let ([" + R +
        " (with-continuation-mark " + K + " " + B +
        " (car (list (cons (#%call/cc (lambda (" + Kv + ") (set-car! " + Sv +
        " " + Kv + ") 'first)) ");
    Kid(0);
    Lit("))))]) (if (eq? (car " + R + ") 'first) ((car " + Sv +
        ") 'second) " + R + ")))");
    break;
  }
  case Prod::LetObs: {
    std::string X = id("x", N.Id);
    Lit("(let ([" + X + " ");
    Kid(0);
    Lit("]) (list " + X + " (fst " + K + ")))");
    break;
  }
  case Prod::IfSplit:
    Lit("(if (even? " + A + ") ");
    Kid(0);
    Lit(" ");
    Kid(1);
    Lit(")");
    break;
  case Prod::Thunk: {
    std::string H = id("h", N.Id);
    Lit("((lambda (" + H + ") (" + H + ")) (lambda () ");
    Kid(0);
    Lit("))");
    break;
  }
  case Prod::NoteSeq:
    Lit("(let ([" + id("ig", N.Id) + " (note 's" + std::to_string(N.Id) +
        ")]) ");
    Kid(0);
    Lit(")");
    break;
  case Prod::Deep:
    Lit("(deep " + A + " (lambda () ");
    Kid(0);
    Lit("))");
    break;
  case Prod::WrappedEsc: {
    std::string E = id("esc", N.Id);
    Lit("(call/cc (lambda (" + E + ") (if (even? " + B + ") (" + E + " ");
    Kid(0);
    Lit(") ");
    Kid(1);
    Lit(")))");
    break;
  }
  case Prod::OneShot: {
    std::string Kv = id("k", N.Id);
    Lit("(call/1cc (lambda (" + Kv + ") (if (even? " + B + ") (" + Kv + " ");
    Kid(0);
    Lit(") ");
    Kid(1);
    Lit(")))");
    break;
  }
  case Prod::DynWind:
    Lit("(dynamic-wind (lambda () (note 'in" + std::to_string(N.Id) +
        ")) (lambda () ");
    Kid(0);
    Lit(") (lambda () (note 'out" + std::to_string(N.Id) + ")))");
    break;
  case Prod::EscThroughWind: {
    std::string E = id("esc", N.Id);
    Lit("(call/cc (lambda (" + E + ") (dynamic-wind (lambda () (note 'in" +
        std::to_string(N.Id) + ")) (lambda () (" + E + " ");
    Kid(0);
    Lit(")) (lambda () (note 'out" + std::to_string(N.Id) + ")))))");
    break;
  }
  case Prod::Prompt: {
    std::string V = id("v", N.Id);
    Lit("(call-with-continuation-prompt (lambda () ");
    Kid(0);
    Lit(") " + Tag + " (lambda (" + V + ") (list 'h" +
        std::to_string(N.Id) + " " + V + ")))");
    break;
  }
  case Prod::AbortToPrompt: {
    std::string V = id("v", N.Id);
    Lit("(call-with-continuation-prompt (lambda () (list ");
    Kid(0);
    Lit(" (abort-current-continuation " + Tag + " ");
    Kid(1);
    Lit("))) " + Tag + " (lambda (" + V + ") (cons 'ab" +
        std::to_string(N.Id) + " " + V + ")))");
    break;
  }
  case Prod::Composable: {
    std::string Kv = id("k", N.Id);
    Lit("(call-with-continuation-prompt (lambda () (cons 'p" +
        std::to_string(N.Id) +
        " (call-with-composable-continuation (lambda (" + Kv + ") (list (" +
        Kv + " ");
    Kid(0);
    Lit(") (" + Kv + " " + B + "))) " + Tag + "))) " + Tag + ")");
    break;
  }
  case Prod::ComposableMarks: {
    // A wcm extent is captured composably and re-entered under a second
    // binding of the same key; the spliced marks must rebase onto the
    // marks at the application point (paper 2.3).
    std::string Kv = id("k", N.Id);
    Lit("(call-with-continuation-prompt (lambda () (with-continuation-mark " +
        K + " " + B + " (car (list (call-with-composable-continuation "
        "(lambda (" + Kv + ") (with-continuation-mark " + K + " " +
        std::to_string(N.B + 11) + " (car (list (" + Kv + " (list (obs " + K +
        ") ");
    Kid(0);
    Lit(")))))) " + Tag + "))))) " + Tag + ")");
    break;
  }
  case Prod::NumEdgeInt: {
    std::string D = std::to_string(N.B % 5 + 1);
    Lit("(list (modulo " + A + " (- 0 " + D + ")) (remainder (- 0 " + A +
        ") " + D + ") (quotient (- 0 " + A + ") " + D + ") ");
    Kid(0);
    Lit(")");
    break;
  }
  case Prod::NumEdgeFlo:
    Lit("(list (/ (+ " + A + " 1) 0.0) (/ (- 0 (+ " + A +
        " 1)) 0.0) (modulo " + A + " -2.5) (< +nan.0 " + A +
        ") (= +nan.0 +nan.0) ");
    Kid(0);
    Lit(")");
    break;
  case Prod::CatchThrow: {
    std::string E = id("e", N.Id);
    Lit("(catch (lambda (" + E + ") (list 'caught" + std::to_string(N.Id) +
        " " + E + " ");
    Kid(0);
    Lit(")) (if (even? " + B + ") (throw " + A + ") ");
    Kid(1);
    Lit("))");
    break;
  }
  case Prod::Param:
    Lit("(parameterize ([p1 " + A + "]) (list (p1) ");
    Kid(0);
    Lit("))");
    break;
  case Prod::Generator: {
    std::string G = id("g", N.Id), Y = id("y", N.Id);
    Lit("(let ([" + G + " (make-generator (lambda (" + Y + ") (" + Y + " ");
    Kid(0);
    Lit(") (" + Y + " " + A + ") " + B + "))]) (list (" + G + ") (" + G +
        ") (" + G + ")))");
    break;
  }
  case Prod::FiberJoin:
    Lit("(fiber-join (spawn (lambda () ");
    Kid(0);
    Lit(")))");
    break;
  case Prod::FiberPair: {
    // Deterministic interleave: FIFO run queue, spawn order fixed, one
    // yield each. The note trail lands in (log-out), so scheduling-order
    // differences between legs show up as a divergence.
    std::string FA = id("fa", N.Id), FB = id("fb", N.Id);
    std::string Id = std::to_string(N.Id);
    Lit("(let ([" + FA + " (spawn (lambda () (note 'a" + Id +
        ") (yield) ");
    Kid(0);
    Lit("))] [" + FB + " (spawn (lambda () (note 'b" + Id + ") (yield) ");
    Kid(1);
    Lit("))]) (list (fiber-join " + FA + ") (fiber-join " + FB + ")))");
    break;
  }
  case Prod::FiberChannel: {
    // Capacity 0 (rendezvous) or 1: the consumer (the root fiber) parks
    // as a getter, the producer fiber runs, puts, and hands the value
    // over; the producer's trailing note runs before it retires.
    std::string Ch = id("ch", N.Id);
    Lit("(let ([" + Ch + " (make-channel " + std::to_string(N.B % 2) +
        ")]) (spawn (lambda () (channel-put " + Ch + " ");
    Kid(0);
    Lit(") (note 'put" + std::to_string(N.Id) + "))) (channel-get " + Ch +
        "))");
    break;
  }
  case Prod::FiberMarks: {
    // The spawner's mark must be invisible inside the fiber, and the
    // fiber's own mark must survive a park/resume cycle (the yield).
    Lit("(with-continuation-mark " + K + " " + A +
        " (fiber-join (spawn (lambda () (with-continuation-mark " + K + " " +
        B + " (car (list (begin (yield) (list (fst " + K + ") (obs " + K +
        ") ");
    Kid(0);
    Lit(")))))))))");
    break;
  }
  }
}

/// Production pools, weighted by repetition. The bias follows the issue:
/// wcm in tail/non-tail position, captures crossing dynamic-wind, prompts
/// and composable continuations, mark observation, numeric edges.
const Prod OraclePool[] = {
    Prod::WcmTail,    Prod::WcmTail,     Prod::WcmNonTail, Prod::WcmNonTail,
    Prod::WcmChain,   Prod::WcmChain,    Prod::ObsList,    Prod::FirstCons,
    Prod::AttachSet,  Prod::AttachSet,   Prod::AttachGet,  Prod::AttachConsume,
    Prod::EscUnused,  Prod::EscUsed,     Prod::EscUsed,    Prod::ReEntry,
    Prod::LetObs,     Prod::IfSplit,     Prod::Thunk,      Prod::NoteSeq,
    Prod::Deep,       Prod::Deep};

const Prod FullExtraPool[] = {
    Prod::WrappedEsc, Prod::WrappedEsc,     Prod::OneShot,
    Prod::OneShot,    Prod::DynWind,        Prod::DynWind,
    Prod::EscThroughWind, Prod::EscThroughWind,
    Prod::Prompt,     Prod::Prompt,         Prod::AbortToPrompt,
    Prod::AbortToPrompt,  Prod::Composable, Prod::ComposableMarks,
    Prod::ComposableMarks, Prod::NumEdgeInt, Prod::NumEdgeFlo,
    Prod::CatchThrow, Prod::CatchThrow,     Prod::Param,
    Prod::Generator};

/// Fiber productions (this PR's focus) get their own pool so a leg set
/// that cannot run fibers (mark-stack) can exclude them wholesale.
const Prod FiberPool[] = {Prod::FiberJoin, Prod::FiberJoin, Prod::FiberPair,
                          Prod::FiberPair, Prod::FiberChannel,
                          Prod::FiberChannel, Prod::FiberMarks,
                          Prod::FiberMarks};

int kidCount(Prod P) {
  switch (P) {
  case Prod::Num:
  case Prod::FloLeaf:
  case Prod::SymLeaf:
  case Prod::FstLeaf:
  case Prod::ObsLeaf:
  case Prod::AttLeaf:
    return 0;
  case Prod::IfSplit:
  case Prod::WrappedEsc:
  case Prod::OneShot:
  case Prod::AbortToPrompt:
  case Prod::CatchThrow:
  case Prod::FiberPair:
    return 2;
  default:
    return 1;
  }
}

const char *OraclePreamble =
    "(define log-cell (cons '() '()))"
    "(define (note x) (set-car! log-cell (cons x (car log-cell))))"
    "(define (log-out) (reverse (car log-cell)))"
    "(define (obs k)"
    "  (continuation-mark-set->list (current-continuation-marks) k))"
    "(define (fst k) (continuation-mark-set-first #f k 'none))"
    "(define (deep n th)"
    "  (if (zero? n) (th) (cons n (deep (- n 1) th))))";

const char *FullPreamble =
    "(define tag-a (make-continuation-prompt-tag 'tag-a))"
    "(define tag-b (make-continuation-prompt-tag 'tag-b))"
    "(define p1 (make-parameter 'p1-default))";

} // namespace

// --- ProgramGen -------------------------------------------------------------

ProgramGen::ProgramGen(uint64_t CampaignSeed, Options O)
    : Master(CampaignSeed), Opts(O) {}

std::unique_ptr<GenNode> ProgramGen::leaf(Rng &R, bool OracleSafe) {
  auto N = std::make_unique<GenNode>();
  N->Id = ++NextId;
  switch (R.nextBelow(OracleSafe ? 8 : 9)) {
  case 0:
  case 1:
  case 2:
    N->P = Prod::Num;
    N->A = static_cast<int>(R.nextBelow(41));
    break;
  case 3:
  case 4:
    N->P = Prod::FstLeaf;
    N->A = static_cast<int>(R.nextBelow(3));
    break;
  case 5:
    N->P = Prod::ObsLeaf;
    N->A = static_cast<int>(R.nextBelow(3));
    break;
  case 6:
    N->P = Prod::AttLeaf;
    break;
  case 7:
    N->P = Prod::SymLeaf;
    break;
  default:
    N->P = Prod::FloLeaf;
    N->A = static_cast<int>(R.nextBelow(6));
    break;
  }
  return N;
}

std::unique_ptr<GenNode> ProgramGen::gen(Rng &R, int Depth, bool OracleSafe) {
  if (Depth <= 0)
    return leaf(R, OracleSafe);

  size_t NOracle = sizeof(OraclePool) / sizeof(OraclePool[0]);
  size_t NExtra = sizeof(FullExtraPool) / sizeof(FullExtraPool[0]);
  size_t NFiber =
      (OracleSafe || !Opts.EnableFibers) ? 0
                                         : sizeof(FiberPool) / sizeof(Prod);
  size_t PoolSize = OracleSafe ? NOracle : NOracle + NExtra + NFiber;
  size_t Pick = R.nextBelow(PoolSize);
  Prod P = Pick < NOracle            ? OraclePool[Pick]
           : Pick < NOracle + NExtra ? FullExtraPool[Pick - NOracle]
                                     : FiberPool[Pick - NOracle - NExtra];

  auto N = std::make_unique<GenNode>();
  N->P = P;
  N->Id = ++NextId;
  N->A = static_cast<int>(R.nextBelow(24));
  N->B = static_cast<int>(R.nextBelow(24));
  if (P == Prod::Deep || P == Prod::EscUsed)
    N->A = 1 + static_cast<int>(R.nextBelow(12));
  for (int I = 0; I < kidCount(P); ++I)
    N->Kids.push_back(gen(R, Depth - 1, OracleSafe));
  return N;
}

FuzzProgram ProgramGen::next() {
  FuzzProgram P;
  P.Index = Index++;
  P.Seed = Master.next();
  Rng R(P.Seed);
  P.OracleSafe = R.nextBelow(100) < Opts.OracleSafePercent;

  std::unique_ptr<GenNode> E1 = gen(R, Opts.Depth, P.OracleSafe);
  std::unique_ptr<GenNode> E2 = gen(R, Opts.Depth - 1, P.OracleSafe);
  P.Source = render(*E1, *E2, P.OracleSafe);

  // Stash both roots under one synthetic parent so the shrinker can
  // address the whole program as a single tree.
  P.Root = std::make_unique<GenNode>();
  P.Root->P = Prod::IfSplit; // Placeholder; the root is never rendered.
  P.Root->Kids.push_back(std::move(E1));
  P.Root->Kids.push_back(std::move(E2));
  return P;
}

std::string ProgramGen::render(const GenNode &E1, const GenNode &E2,
                               bool OracleSafe) {
  std::string S = OraclePreamble;
  if (!OracleSafe)
    S += FullPreamble;
  S += "(list ";
  renderNode(E1, S);
  S += " ";
  renderNode(E2, S);
  S += " (log-out))";
  return S;
}

// --- Engine matrix ----------------------------------------------------------

namespace {

FuzzLeg makeLeg(const std::string &Name) {
  FuzzLeg L;
  L.Name = Name;
  if (Name == "oracle") {
    L.IsOracle = true;
    return L;
  }
  if (Name == "fused")
    return L; // Builtin defaults: peephole on.
  if (Name == "unfused") {
    L.Opts.CompilerOpts.EnablePeephole = false;
    return L;
  }
  if (Name == "no-opt") {
    L.Opts = EngineOptions::forVariant(EngineVariant::NoOpt);
    return L;
  }
  if (Name == "no-1cc") {
    L.Opts = EngineOptions::forVariant(EngineVariant::No1cc);
    return L;
  }
  if (Name == "heap-frames") {
    L.Opts = EngineOptions::forVariant(EngineVariant::HeapFrames);
    return L;
  }
  if (Name == "copy-on-capture") {
    L.Opts = EngineOptions::forVariant(EngineVariant::CopyOnCapture);
    return L;
  }
  if (Name == "mark-stack") {
    L.Opts = EngineOptions::forVariant(EngineVariant::MarkStack);
    return L;
  }
  if (Name == "no-recycle") {
    // Differential leg for the segment pool: identical semantics with the
    // recycling allocator disabled (every segment freshly allocated).
    L.Opts.VmCfg.EnableSegmentRecycling = false;
    return L;
  }
  L.Name.clear();
  return L;
}

} // namespace

bool cmk::fuzz::legByName(const std::string &Name, FuzzLeg &Out) {
  Out = makeLeg(Name);
  return !Out.Name.empty();
}

std::vector<FuzzLeg> cmk::fuzz::defaultLegs(bool IncludeOracle) {
  std::vector<FuzzLeg> Legs;
  for (const char *N : {"fused", "unfused", "no-opt", "no-1cc", "heap-frames",
                        "copy-on-capture", "no-recycle"})
    Legs.push_back(makeLeg(N));
  if (IncludeOracle)
    Legs.push_back(makeLeg("oracle"));
  return Legs;
}

// --- Invariants -------------------------------------------------------------

std::string cmk::fuzz::checkStatsInvariants(const VMStats &S,
                                            const EngineOptions &Opts) {
  auto Fail = [](const std::string &Msg) { return "stats invariant: " + Msg; };
  if (S.MarkFirstCacheHits + S.MarkFirstCacheMisses > S.MarkFirstLookups)
    return Fail("cache hits + misses exceed mark-first lookups");
  if (S.SegmentAllocs > 0 && S.SegmentSlotsAllocated < S.SegmentAllocs)
    return Fail("segments allocated with fewer total slots than segments");
  if (!Opts.VmCfg.EnableSegmentRecycling && S.SegmentRecycles != 0)
    return Fail("segments recycled with recycling disabled");
  if (S.LimitHeapTrips != 0 || S.LimitStackTrips != 0)
    return Fail("heap/stack limit trips fired with no such budget armed");
  if (S.FaultsInjected != 0)
    return Fail("faults injected on a leg with no fault schedule");
  if (!Opts.VmCfg.EnableOneShots && S.UnderflowFusions != 0)
    return Fail("underflow fusions counted with one-shots disabled");
  return "";
}

// --- Harness ----------------------------------------------------------------

FuzzHarness::FuzzHarness(std::vector<FuzzLeg> Legs, HarnessOptions O)
    : Legs(std::move(Legs)), Opts(O) {}

namespace {

/// Runs \p Src on the section 4 heap model via the engine's expander (no
/// optimization passes), mirroring tests/test_heap_model.cpp.
std::string runOracleSource(SchemeEngine &E, const std::string &Src,
                            uint64_t StepLimit, bool &OkOut) {
  std::vector<Value> Forms = readAllFromString(E.heap(), Src);
  Value Program;
  {
    GCPauseScope Pause(E.heap());
    Value Acc = Value::nil();
    for (size_t I = Forms.size(); I > 0; --I)
      Acc = E.heap().makePair(Forms[I - 1], Acc);
    Program = E.heap().makePair(E.heap().intern("begin"), Acc);
  }
  GCRoot ProgramRoot(E.heap(), Program);

  AstContext Ctx;
  Expander Exp(E.heap(), E.vm().wellKnown(), Ctx, E.compiler());
  LambdaNode *Toplevel = Exp.expandToplevel(ProgramRoot.get());
  if (!Toplevel) {
    OkOut = false;
    return "expand error: " + Exp.error();
  }
  ModelResult R = runHeapModel(E.heap(), Toplevel, StepLimit);
  OkOut = R.Ok;
  return R.Ok ? writeToString(R.V) : R.Error;
}

} // namespace

LegOutcome FuzzHarness::runLeg(const FuzzLeg &Leg, const std::string &Source) {
  LegOutcome Out;
  if (ActiveStats)
    ActiveStats->LegRuns++;

  if (Leg.IsOracle) {
    SchemeEngine E; // Hosts the heap and expander for the model run.
    bool Ok = false;
    std::string R = runOracleSource(E, Source, Opts.OracleStepLimit, Ok);
    if (Ok) {
      Out.Class = OutcomeClass::Value;
      Out.Repr = R;
    } else if (R.find("step limit") != std::string::npos) {
      Out.Class = OutcomeClass::LimitTrip;
      Out.Repr = R;
    } else {
      Out.Class = OutcomeClass::Error;
      Out.Repr = R;
    }
    return Out;
  }

  EngineOptions EO = Leg.Opts;
  EO.VmCfg.Limits.TimeoutMs = Opts.TimeoutMs;
  SchemeEngine E(EO);
  if (!Leg.FaultSpec.empty()) {
    std::string Err;
    if (!E.faults().configureFromSpec(Leg.FaultSpec, &Err)) {
      Out.Class = OutcomeClass::Error;
      Out.Repr = "bad fault spec: " + Err;
      return Out;
    }
  }
  E.resetStats();
  // Optional sampling soak: the profiler must be invisible to the
  // differential comparison (same results, same counters).
  if (Opts.ProfileHz)
    E.startProfiler(Opts.ProfileHz);
  std::string Src = Leg.MutateSource ? Leg.MutateSource(Source) : Source;
  std::string R = E.evalToString(Src);
  Out.Counters = E.stats();
  if (E.ok()) {
    Out.Class = OutcomeClass::Value;
    Out.Repr = R;
  } else {
    Out.Kind = E.lastErrorKind();
    bool IsLimit = Out.Kind == ErrorKind::HeapLimit ||
                   Out.Kind == ErrorKind::StackLimit ||
                   Out.Kind == ErrorKind::Timeout ||
                   Out.Kind == ErrorKind::Interrupt;
    Out.Class = IsLimit ? OutcomeClass::LimitTrip : OutcomeClass::Error;
    Out.Repr = E.lastError();
  }
  return Out;
}

bool FuzzHarness::compareOutcomes(const std::string &Source, bool OracleSafe,
                                  Divergence *Div) {
  // The reference leg is the first plain VM leg (no faults, no mutation).
  int RefIdx = -1;
  std::vector<int> RunIdx;
  std::vector<LegOutcome> Outs;
  for (size_t I = 0; I < Legs.size(); ++I) {
    const FuzzLeg &L = Legs[I];
    if (L.IsOracle && !OracleSafe)
      continue; // Outside the model's supported subset.
    Outs.push_back(runLeg(L, Source));
    RunIdx.push_back(static_cast<int>(I));
    if (RefIdx < 0 && !L.IsOracle && L.FaultSpec.empty() && !L.MutateSource)
      RefIdx = static_cast<int>(Outs.size()) - 1;
  }
  if (RefIdx < 0)
    return true; // No reference leg configured; nothing to compare against.

  // A limit trip on any leg means the backstop fired: skip the program
  // rather than compare partial executions.
  for (const LegOutcome &O : Outs)
    if (O.Class == OutcomeClass::LimitTrip) {
      if (ActiveStats)
        ActiveStats->Skipped++;
      return true;
    }

  const LegOutcome &Ref = Outs[RefIdx];
  auto Mismatch = [&](int I, const std::string &Detail) {
    if (Div) {
      Div->LegA = Legs[RunIdx[RefIdx]].Name;
      Div->LegB = Legs[RunIdx[I]].Name;
      Div->ReprA = Ref.Repr;
      Div->ReprB = Outs[I].Repr;
      Div->Detail = Detail;
      Div->Source = Source;
    }
    return false;
  };

  for (size_t I = 0; I < Outs.size(); ++I) {
    const FuzzLeg &L = Legs[RunIdx[I]];
    const LegOutcome &O = Outs[I];
    if (static_cast<int>(I) == RefIdx)
      continue;
    if (L.IsOracle) {
      // The model's error texts differ from the VM's; compare values and
      // ok-ness only.
      if (O.Class != Ref.Class)
        return Mismatch(static_cast<int>(I), "oracle ok-ness differs");
      if (O.Class == OutcomeClass::Value && O.Repr != Ref.Repr)
        return Mismatch(static_cast<int>(I), "oracle value differs");
      continue;
    }
    if (!L.FaultSpec.empty() && !L.FaultPreserving) {
      // Failing schedules legally change the outcome; only require a
      // clean classification (value, error, or limit -- no crash).
      continue;
    }
    if (O.Class != Ref.Class)
      return Mismatch(static_cast<int>(I), "outcome class differs");
    if (O.Repr != Ref.Repr)
      return Mismatch(static_cast<int>(I),
                      O.Class == OutcomeClass::Value ? "value differs"
                                                    : "error text differs");
  }

  if (InShrink)
    return true;

  // Counter invariants on plain VM legs.
  if (Opts.CheckInvariants) {
    for (size_t I = 0; I < Outs.size(); ++I) {
      const FuzzLeg &L = Legs[RunIdx[I]];
      if (L.IsOracle || !L.FaultSpec.empty() || L.MutateSource)
        continue;
      std::string V = checkStatsInvariants(Outs[I].Counters, L.Opts);
      if (!V.empty()) {
        if (Div) {
          Div->LegA = L.Name;
          Div->Detail = V;
          Div->Source = Source;
        }
        return false;
      }
    }
  }

  // Determinism: the reference leg re-run must agree on the result and on
  // every counter (all counting is site-driven, not time-driven).
  if (Opts.CheckDeterminism) {
    LegOutcome Again = runLeg(Legs[RunIdx[RefIdx]], Source);
    if (Again.Class != Ref.Class || Again.Repr != Ref.Repr) {
      if (Div) {
        Div->LegA = Legs[RunIdx[RefIdx]].Name;
        Div->Detail = "non-deterministic result on identical re-run";
        Div->ReprA = Ref.Repr;
        Div->ReprB = Again.Repr;
        Div->Source = Source;
      }
      return false;
    }
    int N = 0;
    const StatsCounterDesc *Table = statsCounters(N);
    for (int C = 0; C < N; ++C) {
      uint64_t VMStats::*F = Table[C].Field;
      if (Ref.Counters.*F != Again.Counters.*F) {
        if (Div) {
          Div->LegA = Legs[RunIdx[RefIdx]].Name;
          Div->Detail = std::string("non-deterministic counter '") +
                        Table[C].Name + "' on identical re-run";
          Div->ReprA = std::to_string(Ref.Counters.*F);
          Div->ReprB = std::to_string(Again.Counters.*F);
          Div->Source = Source;
        }
        return false;
      }
    }
  }
  return true;
}

bool FuzzHarness::sourcesDiverge(const std::string &Source, bool OracleSafe) {
  InShrink = true;
  bool Agree = compareOutcomes(Source, OracleSafe, nullptr);
  InShrink = false;
  return !Agree;
}

namespace {

/// Pre-order node collection; index 0 is the root.
void collectNodes(GenNode *N, std::vector<GenNode *> &Out) {
  Out.push_back(N);
  for (auto &K : N->Kids)
    collectNodes(K.get(), Out);
}

} // namespace

void FuzzHarness::shrink(const FuzzProgram &P, Divergence &Div) {
  if (!P.Root || P.Root->Kids.size() != 2)
    return;
  std::unique_ptr<GenNode> Cur = P.Root->clone();
  int Budget = Opts.ShrinkBudget;
  int Evals = 0;

  bool Progress = true;
  while (Progress && Budget > 0) {
    Progress = false;
    std::vector<GenNode *> Nodes;
    collectNodes(Cur.get(), Nodes);
    // Skip the synthetic root (index 0); try bigger nodes first, which
    // pre-order naturally approximates.
    for (size_t I = 1; I < Nodes.size() && !Progress && Budget > 0; ++I) {
      GenNode *Target = Nodes[I];
      std::vector<std::unique_ptr<GenNode>> Candidates;
      for (const auto &K : Target->Kids)
        Candidates.push_back(K->clone());
      if (Target->P != Prod::Num) {
        auto One = std::make_unique<GenNode>();
        One->P = Prod::Num;
        One->A = 1;
        Candidates.push_back(std::move(One));
      }
      for (auto &Cand : Candidates) {
        if (Budget <= 0)
          break;
        std::unique_ptr<GenNode> Trial = Cur->clone();
        std::vector<GenNode *> TrialNodes;
        collectNodes(Trial.get(), TrialNodes);
        *TrialNodes[I] = std::move(*Cand);
        std::string Src = ProgramGen::render(*Trial->Kids[0], *Trial->Kids[1],
                                             P.OracleSafe);
        --Budget;
        ++Evals;
        if (sourcesDiverge(Src, P.OracleSafe)) {
          Cur = std::move(Trial);
          Progress = true;
          break;
        }
      }
    }
  }

  std::string Shrunk =
      ProgramGen::render(*Cur->Kids[0], *Cur->Kids[1], P.OracleSafe);
  if (Shrunk.size() < Div.Source.size()) {
    // Re-derive the divergence details against the shrunk program so the
    // repro file reports what the minimal case actually produces.
    Divergence Re;
    InShrink = true;
    bool Agree = compareOutcomes(Shrunk, P.OracleSafe, &Re);
    InShrink = false;
    if (!Agree) {
      Div.LegA = Re.LegA;
      Div.LegB = Re.LegB;
      Div.ReprA = Re.ReprA;
      Div.ReprB = Re.ReprB;
      Div.Detail = Re.Detail;
      Div.Source = Shrunk;
    }
  }
  Div.ShrinkEvals = Evals;
}

void FuzzHarness::writeRepro(const FuzzProgram &P, Divergence &Div) {
  if (Opts.ReproDir.empty())
    return;
  std::error_code Ec;
  std::filesystem::create_directories(Opts.ReproDir, Ec);
  std::string Path = Opts.ReproDir + "/repro-s" + std::to_string(P.Seed) +
                     "-i" + std::to_string(P.Index) + ".scm";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return;
  std::fprintf(F, ";; cmarks-fuzz-repro-v1\n");
  std::fprintf(F, ";; seed: %llu index: %d oracle-safe: %s\n",
               static_cast<unsigned long long>(P.Seed), P.Index,
               P.OracleSafe ? "yes" : "no");
  std::fprintf(F, ";; diverged: %s vs %s\n", Div.LegA.c_str(),
               Div.LegB.c_str());
  std::fprintf(F, ";;   %s => %s\n", Div.LegA.c_str(), Div.ReprA.c_str());
  std::fprintf(F, ";;   %s => %s\n", Div.LegB.c_str(), Div.ReprB.c_str());
  if (!Div.Detail.empty())
    std::fprintf(F, ";; detail: %s\n", Div.Detail.c_str());
  std::fprintf(F, ";; original-chars: %zu shrunk-chars: %zu shrink-evals: %d\n",
               Div.OriginalSource.size(), Div.Source.size(), Div.ShrinkEvals);
  std::fprintf(F, "%s\n", Div.Source.c_str());
  std::fclose(F);
  Div.ReproPath = Path;
}

bool FuzzHarness::checkProgram(const FuzzProgram &P, Divergence *Div) {
  Divergence Local;
  if (compareOutcomes(P.Source, P.OracleSafe, &Local))
    return true;
  Local.Seed = P.Seed;
  Local.Index = P.Index;
  Local.OriginalSource = P.Source;
  if (Local.Source.empty())
    Local.Source = P.Source;
  shrink(P, Local);
  writeRepro(P, Local);
  if (Div)
    *Div = Local;
  return false;
}

bool FuzzHarness::runCampaign(uint64_t Seed, long Count,
                              ProgramGen::Options GenOpts,
                              CampaignStats &Stats,
                              std::vector<Divergence> &Divs,
                              double TimeBudgetSec, bool StopOnFirst,
                              bool Verbose) {
  ProgramGen Gen(Seed, GenOpts);
  ActiveStats = &Stats;
  uint64_t T0 = nowNanos();
  bool HaveOracle = false;
  for (const FuzzLeg &L : Legs)
    HaveOracle = HaveOracle || L.IsOracle;

  for (long I = 0; Count <= 0 || I < Count; ++I) {
    if (TimeBudgetSec > 0 &&
        static_cast<double>(nowNanos() - T0) / 1e9 >= TimeBudgetSec)
      break;
    if (Count <= 0 && TimeBudgetSec <= 0)
      break; // Refuse an unbounded campaign.
    FuzzProgram P = Gen.next();
    Stats.Programs++;
    if (P.OracleSafe && HaveOracle)
      Stats.OracleChecked++;
    Divergence D;
    if (!checkProgram(P, &D)) {
      Stats.Divergences++;
      Divs.push_back(std::move(D));
      if (StopOnFirst)
        break;
    }
    if (Verbose && (I + 1) % 50 == 0)
      std::fprintf(stderr, "fuzz: %ld programs, %ld leg runs, %ld skipped, "
                           "%ld divergences\n",
                   Stats.Programs, Stats.LegRuns, Stats.Skipped,
                   Stats.Divergences);
  }
  ActiveStats = nullptr;
  return Divs.empty();
}

bool FuzzHarness::reproduce(const std::string &Source, Divergence *Div) {
  // Strip the repro header (";;"-prefixed lines) and recover the
  // oracle-safe flag it records.
  bool OracleSafe = Source.find(";; seed:") != std::string::npos &&
                    Source.find("oracle-safe: yes") != std::string::npos;
  std::string Body;
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t NonWs = Line.find_first_not_of(" \t");
    if (NonWs != std::string::npos && Line[NonWs] == ';')
      continue;
    Body += Line;
    Body += "\n";
  }
  Divergence Local;
  if (compareOutcomes(Body, OracleSafe, &Local))
    return true;
  Local.Source = Body;
  Local.OriginalSource = Body;
  if (Div)
    *Div = Local;
  return false;
}
