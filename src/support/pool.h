//===- support/pool.h - Concurrent multi-engine serving pool ---*- C++ -*-===//
///
/// \file
/// EnginePool serves eval jobs from N worker threads, each owning a
/// private SchemeEngine — its own heap, stack segments, mark state,
/// stats, and trace buffer. Engines share nothing mutable (see DESIGN.md
/// §11 for the audit), so the pool needs no locking around evaluation
/// itself: the only synchronized state is the bounded MPMC job queue,
/// the per-worker telemetry shards, and the engine registry used for
/// cross-thread interrupts.
///
/// Jobs are source strings and results are external representations
/// (strings): Values are owned by a worker's heap and must not escape
/// its thread, so the API exchanges only plain data. Each job carries
/// its own EngineLimits (defaulted from PoolOptions), which is how a
/// serving deployment evicts stuck requests — a job that trips its
/// timeout/heap/stack budget fails alone; the worker engine recovers
/// and keeps serving (support/limits.h).
///
/// Serving telemetry (DESIGN.md §13): every job records its queue wait,
/// run time, and outcome into log-bucketed histograms; metricsText()/
/// metricsJson() export a Prometheus / `cmarks-metrics-v1` snapshot.
/// With PoolOptions::TraceCapacity set, jobs render as named "job-<id>"
/// spans in a merged per-worker Perfetto timeline (traceJson()); with
/// PoolOptions::ProfileHz set, every worker runs the safe-point sampling
/// profiler and profileCollapsed() aggregates a pool-wide flamegraph.
///
/// Consistency model of stats()/telemetry(): a job retires by publishing
/// its whole delta — outcome counter, engine-stats delta, and histogram
/// samples — in one critical section on its worker's shard mutex, and
/// readers visit each shard under the same mutex. A read during load can
/// therefore never observe a torn, half-retired job (e.g. a completion
/// counted whose engine stats are missing). The shard mutex is
/// per-worker and only ever contended by a reader, so the retirement
/// path stays effectively uncontended at any worker count. Cross-worker
/// skew remains: jobs retiring while a reader walks the shards appear in
/// later shards but not earlier ones — totals are monotone
/// between-jobs-consistent snapshots, not a global stop-the-world cut.
///
/// Typical use:
/// \code
///   cmk::PoolOptions Opts;
///   Opts.Workers = 4;
///   Opts.DefaultJobLimits.TimeoutMs = 100;
///   cmk::EnginePool Pool(Opts);
///   auto F = Pool.submit("(+ 1 2)");
///   cmk::JobResult R = F.get();   // R.Ok, R.Output == "3"
///   std::string Prom = Pool.metricsText();   // scrape-style export
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_POOL_H
#define CMARKS_SUPPORT_POOL_H

#include "api/scheme.h"
#include "support/limits.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/trace.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cmk {

/// Outcome of one pool job, delivered through its future. Always
/// delivered: shutdown fulfills (rejects) queued jobs rather than
/// breaking their promises.
struct JobResult {
  bool Ok = false;
  /// write-style external representation of the result ("" on failure).
  std::string Output;
  /// Error message when !Ok ("engine pool is shut down" for rejections).
  std::string Error;
  /// Classification when !Ok: Runtime for ordinary errors, or the limit
  /// trip kind (heap/stack/timeout/interrupt) for evicted jobs.
  ErrorKind Kind = ErrorKind::None;
  /// Index of the worker that ran the job (0 for rejected jobs).
  uint32_t Worker = 0;
  /// Monotonic pool-wide job id (assigned at submit; 0 for jobs rejected
  /// before entering the queue). The same id labels the job's "job-<id>"
  /// trace span, so a slow request in a Perfetto timeline can be joined
  /// back to its result.
  uint64_t Id = 0;
};

/// Pool construction parameters.
struct PoolOptions {
  /// Worker threads (= engines). 0 picks std::thread::hardware_concurrency.
  unsigned Workers = 0;
  /// Bounded job-queue capacity; submit() blocks while the queue is full
  /// (backpressure), trySubmit() fails fast instead.
  size_t QueueCapacity = 256;
  /// Engine template: every worker constructs its engine from this
  /// (variant, compiler options, prelude).
  EngineOptions Engine;
  /// Budgets installed for jobs submitted without explicit limits. The
  /// zero default means ungoverned; serving deployments should at least
  /// arm TimeoutMs so a stuck request cannot retire a worker.
  EngineLimits DefaultJobLimits;
  /// When nonzero, every worker engine records its trace ring (this many
  /// events) and jobs are bracketed by named "job-<id>" spans;
  /// traceJson() merges the per-worker rings into one Perfetto timeline
  /// (complete after shutdown()).
  uint32_t TraceCapacity = 0;
  /// When nonzero, every worker runs the safe-point sampling profiler at
  /// this rate (Hz); profileCollapsed() aggregates a pool-wide collapsed
  /// flamegraph (complete after shutdown()).
  uint32_t ProfileHz = 0;
  /// Per-worker profile sample ring (0 = SamplingProfiler::DefaultCapacity).
  uint32_t ProfileCapacity = 0;
};

/// Pool-wide statistics snapshot (stats()).
struct PoolStats {
  uint64_t JobsSubmitted = 0; ///< Accepted into the queue.
  uint64_t JobsCompleted = 0; ///< Ran and returned a value.
  uint64_t JobsFailed = 0;    ///< Ran and raised an ordinary error.
  uint64_t JobsTripped = 0;   ///< Ran and hit a resource limit (subset of
                              ///< JobsFailed's complement: counted apart).
  uint64_t JobsRejected = 0;  ///< Never ran (shutdown or trySubmit race).
  uint64_t QueueHighWater = 0; ///< Max queue depth observed.
  /// Aggregated runtime event counters (support/stats.h) across every
  /// worker engine, accumulated as jobs retire. In-flight jobs appear
  /// once they finish.
  VMStats Engines;
};

/// Full telemetry snapshot (telemetry()): PoolStats plus latency
/// histograms, outcome-by-trip counters, queue gauges, and trace/profile
/// meta-telemetry. Same consistency model as stats().
struct PoolTelemetry {
  PoolStats Stats;
  LogHistogram QueueWaitUs; ///< Per-job submit -> dequeue wait (µs).
  LogHistogram RunUs;       ///< Per-job evaluation time (µs).
  uint64_t JobsOk = 0;
  uint64_t JobsError = 0; ///< Ordinary runtime errors.
  uint64_t TrippedHeap = 0;
  uint64_t TrippedStack = 0;
  uint64_t TrippedTimeout = 0;
  uint64_t TrippedInterrupt = 0;
  uint64_t TraceDropped = 0; ///< Trace-ring events lost to wraparound,
                             ///< summed across workers (detects truncated
                             ///< Perfetto exports).
  uint64_t ProfileSamples = 0; ///< Samples captured across workers.
  uint64_t ProfileDropped = 0; ///< Samples lost to ring wraparound.
  uint64_t QueueDepth = 0;     ///< Jobs waiting right now.
  uint64_t InFlight = 0;       ///< Jobs evaluating right now.
};

/// A fixed-size pool of worker threads with one private SchemeEngine
/// each, fed by a bounded MPMC queue. Thread-safe: submit/trySubmit/
/// stats/telemetry/metrics*/interruptAll may be called concurrently from
/// any thread.
class EnginePool {
public:
  explicit EnginePool(const PoolOptions &Opts = PoolOptions());
  ~EnginePool(); ///< shutdown(/*Drain=*/true).
  EnginePool(const EnginePool &) = delete;
  EnginePool &operator=(const EnginePool &) = delete;

  /// Enqueues \p Source under the default job limits. Blocks while the
  /// queue is full; returns an already-rejected future after shutdown.
  std::future<JobResult> submit(std::string Source);

  /// Enqueues \p Source with job-specific budgets (overrides, not merges,
  /// the defaults).
  std::future<JobResult> submit(std::string Source, const EngineLimits &L);

  /// Non-blocking submit: false (and no future) when the queue is full
  /// or the pool is shutting down.
  bool trySubmit(std::string Source, const EngineLimits &L,
                 std::future<JobResult> &Out);

  /// Stops the pool and joins the workers. Drain=true finishes queued
  /// jobs first; Drain=false rejects them (their futures resolve with
  /// "engine pool is shut down"). Running jobs always finish — combine
  /// with interruptAll() to evict them promptly. Idempotent; the first
  /// call's Drain wins.
  void shutdown(bool Drain = true);

  /// Asks every currently-running evaluation to stop at its next safe
  /// point (delivered as a catchable exn:interrupt?, see support/
  /// limits.h). Idle engines are unaffected: a pending interrupt is
  /// cleared when the next run re-arms governance.
  void interruptAll();

  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Thread-safe snapshot of the pool-wide counters and the aggregated
  /// per-engine runtime stats (see the consistency model above).
  PoolStats stats() const;

  /// Thread-safe full telemetry snapshot: stats() plus merged latency
  /// histograms, outcome counters, and queue gauges.
  PoolTelemetry telemetry() const;

  /// Prometheus text exposition of the current telemetry snapshot.
  std::string metricsText() const;
  /// The same snapshot as a `cmarks-metrics-v1` JSON document
  /// (tools/metrics_report.py validates it).
  std::string metricsJson() const;

  /// Merged per-worker Perfetto timeline (PoolOptions::TraceCapacity).
  /// Worker rings are snapshotted as workers exit, so the export is
  /// complete only after shutdown(); called earlier it contains the
  /// workers that have already exited.
  std::string traceJson() const;
  bool dumpTrace(const std::string &Path) const;

  /// Pool-wide collapsed-stack profile (PoolOptions::ProfileHz),
  /// flamegraph.pl/speedscope-compatible. Complete after shutdown().
  std::string profileCollapsed() const;
  bool dumpProfile(const std::string &Path) const;

private:
  struct Job {
    uint64_t Id = 0;
    std::string Source;
    EngineLimits Limits;
    std::promise<JobResult> Promise;
    uint64_t EnqueueNs = 0;
  };

  /// Per-worker telemetry shard. The worker retires every job under Mu
  /// (uncontended unless a reader is merging); readers take Mu per shard.
  struct WorkerShard {
    mutable std::mutex Mu;
    LogHistogram QueueWaitUs;
    LogHistogram RunUs;
    uint64_t JobsOk = 0;
    uint64_t JobsError = 0;
    uint64_t TrippedHeap = 0;
    uint64_t TrippedStack = 0;
    uint64_t TrippedTimeout = 0;
    uint64_t TrippedInterrupt = 0;
    VMStats Engines;
    uint64_t TraceDropped = 0;
    uint64_t ProfileSamples = 0;
    uint64_t ProfileDropped = 0;
    /// Snapshot of the worker's trace ring, copied before the engine
    /// dies (TraceCapacity mode).
    TraceBuffer TraceSnap;
    bool TraceSnapValid = false;
    /// Folded collapsed-stack counts (ProfileHz mode).
    std::map<std::string, uint64_t> ProfileFold;
  };

  void workerMain(unsigned Idx);
  void runJob(SchemeEngine &Engine, Job &J, unsigned Idx);
  static void rejectJob(Job &J);
  MetricsRegistry buildMetrics() const;

  PoolOptions Opts;
  std::vector<std::thread> Threads;
  std::vector<std::unique_ptr<WorkerShard>> Shards;

  // Bounded MPMC queue.
  mutable std::mutex QueueMu;
  std::condition_variable NotEmpty; ///< Waited on by workers.
  std::condition_variable NotFull;  ///< Waited on by blocked submitters.
  std::deque<Job> Queue;
  bool Stopping = false;    ///< Guarded by QueueMu.
  bool DrainOnStop = true;  ///< Guarded by QueueMu.
  uint64_t HighWater = 0;   ///< Guarded by QueueMu.
  uint64_t NextJobId = 1;   ///< Guarded by QueueMu.

  // Shutdown join serialization (never held while touching QueueMu).
  std::mutex JoinMu;
  bool Joined = false; ///< Guarded by JoinMu.

  // Engine registry for cross-thread interrupts. Slot Idx is published
  // by worker Idx after construction and cleared before destruction.
  mutable std::mutex EnginesMu;
  std::vector<SchemeEngine *> Engines;

  // Submit-side counters (the retire side lives in the shards).
  mutable std::mutex StatsMu;
  uint64_t JobsSubmitted = 0; ///< Guarded by StatsMu.
  uint64_t JobsRejected = 0;  ///< Guarded by StatsMu.

  std::atomic<uint64_t> InFlight{0};
};

} // namespace cmk

#endif // CMARKS_SUPPORT_POOL_H
