//===- support/pool.h - Concurrent multi-engine serving pool ---*- C++ -*-===//
///
/// \file
/// EnginePool serves eval jobs from N worker threads, each owning a
/// private SchemeEngine — its own heap, stack segments, mark state,
/// stats, and trace buffer. Engines share nothing mutable (see DESIGN.md
/// §11 for the audit), so the pool needs no locking around evaluation
/// itself: the only synchronized state is the bounded MPMC job queue,
/// the per-worker telemetry shards, and the engine registry used for
/// cross-thread interrupts.
///
/// Jobs are source strings and results are external representations
/// (strings): Values are owned by a worker's heap and must not escape
/// its thread, so the API exchanges only plain data. Each job carries
/// its own EngineLimits (defaulted from PoolOptions), which is how a
/// serving deployment evicts stuck requests — a job that trips its
/// timeout/heap/stack budget fails alone; the worker engine recovers
/// and keeps serving (support/limits.h).
///
/// Failure model (DESIGN.md §14): every job retires with exactly one
/// typed JobOutcome. The resilience layer has four pillars:
///
///  - *Worker supervision.* A catchable limit trip is business as usual,
///    but a failure that escalated past the PR 3 reserve
///    (SchemeEngine::lastErrorFatal — the program burned through its own
///    recovery slab) marks the engine wounded: the worker rebuilds its
///    engine in place (counted in WorkerRestarts, traced as a
///    "worker-restart" span in the replacement engine's ring). After
///    PoolOptions::BreakerThreshold *consecutive* fatal jobs the
///    worker's circuit breaker opens and it retires instead of
///    rebuild-looping; when the last live worker retires this way, the
///    pool stops accepting work and rejects what is queued, so no
///    submitter can hang on a dead pool.
///  - *Deadlines.* A job may carry an absolute deadline (relative
///    DeadlineMs fixed at submit). A job whose deadline passes while it
///    waits is shed from the queue without running (Outcome Expired);
///    one that is dequeued in time has its remaining deadline folded
///    into its EngineLimits timeout, so a job can never run past its
///    deadline by more than one safe-point interval.
///  - *Retry with backoff.* Opt-in (RetryPolicy) for idempotent jobs:
///    failures classified transient — an interrupt eviction or an
///    injected fault (VMStats::FaultsInjected delta) — are re-run up to
///    MaxAttempts with capped exponential backoff. Jitter is
///    deterministic per job id (retryBackoffMs is a pure function), so
///    chaos runs replay exactly. Fatal failures and ordinary errors
///    never retry; retries stop at the deadline and during a non-drain
///    shutdown.
///  - *Overload control.* With QueueWaitBudgetMs armed, the pool tracks
///    a sliding window of recent queue waits; while the window's p99
///    exceeds the budget, new submissions are shed at the door (Outcome
///    Shed, future resolves immediately — CoDel-style: admission is
///    controlled by experienced queueing delay, not queue length). The
///    graceful-degradation knob (PressureLimits) tightens the *default*
///    per-job budgets while the window p99 exceeds the pressure
///    threshold, so accepted traffic gets cheaper before shedding has
///    to start.
///
/// Serving telemetry (DESIGN.md §13): every job records its queue wait,
/// run time, and outcome into log-bucketed histograms; metricsText()/
/// metricsJson() export a Prometheus / `cmarks-metrics-v1` snapshot.
/// With PoolOptions::TraceCapacity set, jobs render as named "job-<id>"
/// spans in a merged per-worker Perfetto timeline (traceJson()); with
/// PoolOptions::ProfileHz set, every worker runs the safe-point sampling
/// profiler and profileCollapsed() aggregates a pool-wide flamegraph.
///
/// Consistency model of stats()/telemetry(): a job retires by publishing
/// its whole delta — outcome counter, engine-stats delta, and histogram
/// samples — in one critical section on its worker's shard mutex, and
/// readers visit each shard under the same mutex. A read during load can
/// therefore never observe a torn, half-retired job (e.g. a completion
/// counted whose engine stats are missing). The shard mutex is
/// per-worker and only ever contended by a reader, so the retirement
/// path stays effectively uncontended at any worker count. Cross-worker
/// skew remains: jobs retiring while a reader walks the shards appear in
/// later shards but not earlier ones — totals are monotone
/// between-jobs-consistent snapshots, not a global stop-the-world cut.
///
/// Typical use:
/// \code
///   cmk::PoolOptions Opts;
///   Opts.Workers = 4;
///   Opts.DefaultJobLimits.TimeoutMs = 100;
///   Opts.DefaultDeadlineMs = 500;       // queued past this -> Expired
///   Opts.QueueWaitBudgetMs = 50;        // overload -> Shed at the door
///   cmk::EnginePool Pool(Opts);
///   auto F = Pool.submit("(+ 1 2)");
///   cmk::JobResult R = F.get();   // R.Outcome == JobOutcome::Ok, "3"
///   std::string Prom = Pool.metricsText();   // scrape-style export
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_POOL_H
#define CMARKS_SUPPORT_POOL_H

#include "api/scheme.h"
#include "support/limits.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/trace.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cmk {

/// Typed disposition of one pool job. Every future the pool hands out
/// resolves with exactly one of these; the pool's telemetry counts every
/// job in exactly one matching counter, so hosts dispatch on the enum
/// instead of string-matching error text.
enum class JobOutcome : uint8_t {
  Ok,               ///< Ran and returned a value.
  Error,            ///< Ran and raised an ordinary Scheme/VM error.
  TrippedHeap,      ///< Evicted: heap byte budget exhausted.
  TrippedStack,     ///< Evicted: stack segment budget exhausted.
  TrippedTimeout,   ///< Evicted: wall-clock budget (or deadline remainder).
  TrippedInterrupt, ///< Evicted: interruptAll()/requestInterrupt.
  Expired,          ///< Deadline passed while queued; never ran.
  Shed,             ///< Admission control refused it at submit; never queued.
  Rejected,         ///< Pool shut down before it could run.
};

/// Stable kebab-case name ("ok", "tripped-heap", "shed", ...), used for
/// metric labels and log lines.
const char *jobOutcomeName(JobOutcome O);

/// The process exit code serving frontends map each outcome to (shared
/// by examples/server.cpp, tools/chaos_pool.cpp, and the REPL's
/// --deadline handling): 0 ok, 1 error, 3 resource trip, 4 shed,
/// 5 expired, 6 rejected, 130 interrupt.
int jobOutcomeExitCode(JobOutcome O);

/// Maps a failed evaluation's ErrorKind to the matching outcome
/// (Runtime -> Error, limit trips -> Tripped*).
JobOutcome jobOutcomeOfErrorKind(ErrorKind K);

/// Outcome of one pool job, delivered through its future. Always
/// delivered: shutdown fulfills (rejects) queued jobs rather than
/// breaking their promises.
struct JobResult {
  bool Ok = false;
  /// Typed disposition; the authoritative classification.
  JobOutcome Outcome = JobOutcome::Error;
  /// write-style external representation of the result ("" on failure).
  std::string Output;
  /// Error message when !Ok ("engine pool is shut down" for rejections).
  std::string Error;
  /// Classification when !Ok: Runtime for ordinary errors, or the limit
  /// trip kind (heap/stack/timeout/interrupt) for evicted jobs. None for
  /// jobs that never ran (Expired/Shed).
  ErrorKind Kind = ErrorKind::None;
  /// Evaluation attempts actually made (0 for jobs that never ran,
  /// >1 when a RetryPolicy re-ran a transient failure).
  uint32_t Attempts = 0;
  /// Index of the worker that ran the job (0 for rejected jobs).
  uint32_t Worker = 0;
  /// Monotonic pool-wide job id (assigned at submit; 0 for jobs rejected
  /// or shed before entering the queue). The same id labels the job's
  /// "job-<id>" trace span, so a slow request in a Perfetto timeline can
  /// be joined back to its result.
  uint64_t Id = 0;
};

/// Opt-in retry policy for idempotent jobs. Only failures the pool
/// classifies as *transient* retry: an interrupt eviction or a failure
/// whose attempt recorded injected faults (support/faults.h). Ordinary
/// errors, limit trips, and fatal (beyond-reserve) failures never
/// retry — they are deterministic properties of the job.
struct RetryPolicy {
  uint32_t MaxAttempts = 1;  ///< Total attempts; <=1 disables retry.
  uint64_t BaseBackoffMs = 1;///< Backoff before attempt 2; doubles per
                             ///< attempt (capped at MaxBackoffMs).
  uint64_t MaxBackoffMs = 100;
  bool Jitter = true;        ///< Randomize each backoff in
                             ///< [backoff/2, backoff], deterministically
                             ///< seeded by (job id, attempt).
};

/// The backoff (ms) slept before re-running attempt \p Attempt + 1 of
/// job \p JobId. Pure and deterministic: the same (policy, id, attempt)
/// triple always yields the same delay, so fault-schedule replays and
/// tests see identical retry timing.
uint64_t retryBackoffMs(const RetryPolicy &P, uint64_t JobId,
                        uint32_t Attempt);

/// Per-submit knobs beyond the source text. Unset fields inherit the
/// pool defaults (PoolOptions::DefaultJobLimits / DefaultDeadlineMs /
/// DefaultRetry).
struct SubmitOptions {
  bool HasLimits = false; ///< Set via limits(); false = pool default.
  EngineLimits Limits;
  bool HasRetry = false; ///< Set via retry(); false = pool default.
  RetryPolicy Retry;
  /// Deadline relative to submit, in ms (fixed to an absolute instant at
  /// submit). 0 = pool default (which may also be "none").
  uint64_t DeadlineMs = 0;

  SubmitOptions &limits(const EngineLimits &L) {
    Limits = L;
    HasLimits = true;
    return *this;
  }
  SubmitOptions &retry(const RetryPolicy &R) {
    Retry = R;
    HasRetry = true;
    return *this;
  }
  SubmitOptions &deadlineMs(uint64_t Ms) {
    DeadlineMs = Ms;
    return *this;
  }
};

/// Pool construction parameters.
struct PoolOptions {
  /// Worker threads (= engines). 0 picks std::thread::hardware_concurrency.
  unsigned Workers = 0;
  /// Bounded job-queue capacity; submit() blocks while the queue is full
  /// (backpressure), trySubmit() fails fast instead.
  size_t QueueCapacity = 256;
  /// Engine template: every worker constructs its engine from this
  /// (variant, compiler options, prelude).
  EngineOptions Engine;
  /// Budgets installed for jobs submitted without explicit limits. The
  /// zero default means ungoverned; serving deployments should at least
  /// arm TimeoutMs so a stuck request cannot retire a worker.
  EngineLimits DefaultJobLimits;
  /// Deadline applied to jobs submitted without an explicit one, in ms
  /// relative to submit. 0 = no default deadline.
  uint64_t DefaultDeadlineMs = 0;
  /// Retry policy for jobs submitted without an explicit one. The
  /// default (MaxAttempts 1) disables retry: retrying is an idempotency
  /// claim only the submitter can make.
  RetryPolicy DefaultRetry;
  /// Worker supervision: on the Nth *consecutive* fatal (beyond-reserve)
  /// job failure the worker's circuit breaker opens and it retires
  /// instead of rebuilding again (so a threshold of 3 absorbs two
  /// supervised restarts first). Guards against a poisoned traffic mix
  /// turning the pool into a rebuild loop. 0 disables the breaker.
  uint32_t BreakerThreshold = 3;
  /// Overload control: when nonzero, the pool sheds new submissions
  /// (Outcome Shed) while the sliding queue-wait p99 exceeds this budget
  /// (ms). 0 disables admission control.
  uint64_t QueueWaitBudgetMs = 0;
  /// Sliding-window size (recent dequeues) for the admission p99.
  /// Clamped to [8, 1024]. Note: below 100 samples the p99 degenerates
  /// to the window max — deliberately conservative under overload.
  uint32_t AdmissionWindow = 64;
  /// Graceful degradation: when armed (EnablePressureLimits), jobs that
  /// would use DefaultJobLimits get these tighter budgets instead while
  /// the admission window p99 exceeds PressureQueueWaitMs. Explicit
  /// per-job limits are never overridden.
  bool EnablePressureLimits = false;
  EngineLimits PressureLimits;
  /// Pressure threshold (ms). 0 derives QueueWaitBudgetMs / 2.
  uint64_t PressureQueueWaitMs = 0;
  /// When nonzero, every worker engine records its trace ring (this many
  /// events) and jobs are bracketed by named "job-<id>" spans;
  /// traceJson() merges the per-worker rings into one Perfetto timeline
  /// (complete after shutdown()).
  uint32_t TraceCapacity = 0;
  /// When nonzero, every worker runs the safe-point sampling profiler at
  /// this rate (Hz); profileCollapsed() aggregates a pool-wide collapsed
  /// flamegraph (complete after shutdown()).
  uint32_t ProfileHz = 0;
  /// Per-worker profile sample ring (0 = SamplingProfiler::DefaultCapacity).
  uint32_t ProfileCapacity = 0;
  /// Cooperative fiber multiplexing (DESIGN.md §16): each worker admits
  /// up to MaxFibersPerWorker jobs as fibers over its one engine. A job
  /// that parks (sleep-ms, channel wait) releases the worker to run other
  /// admitted jobs instead of blocking the thread, so M >> N jobs with
  /// backend-style waits multiplex over N workers. Per-job TimeoutMs
  /// governs *on-CPU* time (parked time is excluded); deadlines stay
  /// wall-clock. Heap/stack budgets are engine-wide in this mode, and
  /// retry classifies only interrupt evictions as transient (per-fiber
  /// fault attribution is not possible on a shared engine).
  bool EnableFibers = false;
  /// Max jobs admitted as fibers per worker (0 = 64).
  uint32_t MaxFibersPerWorker = 64;
};

/// Pool-wide statistics snapshot (stats()).
struct PoolStats {
  uint64_t JobsSubmitted = 0; ///< Accepted into the queue.
  uint64_t JobsCompleted = 0; ///< Ran and returned a value.
  uint64_t JobsFailed = 0;    ///< Ran and raised an ordinary error.
  uint64_t JobsTripped = 0;   ///< Ran and hit a resource limit (subset of
                              ///< JobsFailed's complement: counted apart).
  uint64_t JobsExpired = 0;   ///< Deadline passed in the queue; never ran.
  uint64_t JobsShed = 0;      ///< Refused by admission control at submit.
  uint64_t JobsRejected = 0;  ///< Never ran (shutdown or trySubmit race).
  uint64_t WorkerRestarts = 0; ///< Engines rebuilt after fatal failures.
  uint64_t BreakerOpens = 0;  ///< Workers retired by their circuit breaker.
  uint64_t RetriesAttempted = 0; ///< Re-runs of transient failures.
  uint64_t JobsDegraded = 0;  ///< Default-limit jobs tightened under pressure.
  uint64_t QueueHighWater = 0; ///< Max queue depth observed.
  /// Aggregated runtime event counters (support/stats.h) across every
  /// worker engine, accumulated as jobs retire. In-flight jobs appear
  /// once they finish.
  VMStats Engines;
};

/// Full telemetry snapshot (telemetry()): PoolStats plus latency
/// histograms, outcome-by-trip counters, queue gauges, and trace/profile
/// meta-telemetry. Same consistency model as stats().
struct PoolTelemetry {
  PoolStats Stats;
  LogHistogram QueueWaitUs; ///< Per-dequeued-job submit -> dequeue wait
                            ///< (µs); includes jobs that expired there.
  LogHistogram RunUs;       ///< Per-run-job evaluation time (µs), summed
                            ///< across retry attempts (backoff excluded).
  uint64_t JobsOk = 0;
  uint64_t JobsError = 0; ///< Ordinary runtime errors.
  uint64_t TrippedHeap = 0;
  uint64_t TrippedStack = 0;
  uint64_t TrippedTimeout = 0;
  uint64_t TrippedInterrupt = 0;
  uint64_t JobsExpired = 0;
  uint64_t JobsShed = 0;
  uint64_t WorkerRestarts = 0;
  uint64_t BreakerOpens = 0;
  uint64_t RetriesAttempted = 0;
  uint64_t JobsDegraded = 0;
  uint64_t TraceDropped = 0; ///< Trace-ring events lost to wraparound,
                             ///< summed across workers (detects truncated
                             ///< Perfetto exports).
  uint64_t ProfileSamples = 0; ///< Samples captured across workers.
  uint64_t ProfileDropped = 0; ///< Samples lost to ring wraparound.
  uint64_t QueueDepth = 0;     ///< Jobs waiting right now.
  uint64_t InFlight = 0;       ///< Jobs evaluating right now.
  uint64_t LiveWorkers = 0;    ///< Workers still serving (breakers shut).
  bool PressureActive = false; ///< Degradation threshold currently exceeded.
};

/// A fixed-size pool of worker threads with one private SchemeEngine
/// each, fed by a bounded MPMC queue. Thread-safe: submit/trySubmit/
/// stats/telemetry/metrics*/interruptAll may be called concurrently from
/// any thread.
class EnginePool {
public:
  explicit EnginePool(const PoolOptions &Opts = PoolOptions());
  ~EnginePool(); ///< shutdown(/*Drain=*/true).
  EnginePool(const EnginePool &) = delete;
  EnginePool &operator=(const EnginePool &) = delete;

  /// Enqueues \p Source under the default job limits/deadline/retry.
  /// Blocks while the queue is full; returns an already-rejected future
  /// after shutdown, and an already-shed future under admission
  /// pressure.
  std::future<JobResult> submit(std::string Source);

  /// Enqueues \p Source with job-specific budgets (overrides, not merges,
  /// the defaults).
  std::future<JobResult> submit(std::string Source, const EngineLimits &L);

  /// Enqueues \p Source with per-job limits, deadline, and retry policy.
  std::future<JobResult> submit(std::string Source, const SubmitOptions &SO);

  /// Non-blocking submit: false (and no future) when the queue is full,
  /// the pool is shutting down, or admission control is shedding (the
  /// shed is still counted in JobsShed).
  bool trySubmit(std::string Source, const EngineLimits &L,
                 std::future<JobResult> &Out);

  /// Stops the pool and joins the workers. Drain=true finishes queued
  /// jobs first; Drain=false rejects them (their futures resolve with
  /// Outcome Rejected). Running jobs always finish — combine with
  /// interruptAll() to evict them promptly. Submitters blocked on
  /// backpressure are woken and rejected in both modes. Idempotent; the
  /// first call's Drain wins.
  void shutdown(bool Drain = true);

  /// Asks every currently-running evaluation to stop at its next safe
  /// point (delivered as a catchable exn:interrupt?, see support/
  /// limits.h). Idle engines are unaffected: a pending interrupt is
  /// cleared when the next run re-arms governance.
  void interruptAll();

  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// True while the graceful-degradation threshold is exceeded (always
  /// false when EnablePressureLimits is off).
  bool pressureActive() const;

  /// Thread-safe snapshot of the pool-wide counters and the aggregated
  /// per-engine runtime stats (see the consistency model above).
  PoolStats stats() const;

  /// Thread-safe full telemetry snapshot: stats() plus merged latency
  /// histograms, outcome counters, and queue gauges.
  PoolTelemetry telemetry() const;

  /// Prometheus text exposition of the current telemetry snapshot.
  std::string metricsText() const;
  /// The same snapshot as a `cmarks-metrics-v1` JSON document
  /// (tools/metrics_report.py validates it).
  std::string metricsJson() const;

  /// Merged per-worker Perfetto timeline (PoolOptions::TraceCapacity).
  /// Each engine incarnation's ring is snapshotted when the engine
  /// retires (worker exit or supervised restart), so restarted-away
  /// engines appear as soon as they die; the currently-serving engines'
  /// rings appear after shutdown().
  std::string traceJson() const;
  bool dumpTrace(const std::string &Path) const;

  /// Pool-wide collapsed-stack profile (PoolOptions::ProfileHz),
  /// flamegraph.pl/speedscope-compatible. Complete after shutdown().
  std::string profileCollapsed() const;
  bool dumpProfile(const std::string &Path) const;

private:
  struct Job {
    uint64_t Id = 0;
    std::string Source;
    EngineLimits Limits;
    RetryPolicy Retry;
    std::promise<JobResult> Promise;
    uint64_t EnqueueNs = 0;
    uint64_t DeadlineNs = 0; ///< Absolute (nowNanos clock); 0 = none.
    bool Degraded = false;   ///< Defaults tightened by pressure.
  };

  /// Per-worker telemetry shard. The worker retires every job under Mu
  /// (uncontended unless a reader is merging); readers take Mu per shard.
  struct WorkerShard {
    mutable std::mutex Mu;
    LogHistogram QueueWaitUs;
    LogHistogram RunUs;
    uint64_t JobsOk = 0;
    uint64_t JobsError = 0;
    uint64_t TrippedHeap = 0;
    uint64_t TrippedStack = 0;
    uint64_t TrippedTimeout = 0;
    uint64_t TrippedInterrupt = 0;
    uint64_t JobsExpired = 0;
    uint64_t WorkerRestarts = 0;
    uint64_t BreakerOpens = 0;
    uint64_t RetriesAttempted = 0;
    uint64_t JobsDegraded = 0;
    VMStats Engines;
    /// Cumulative trace/profile meta-telemetry. The *Prior fields hold
    /// the totals of retired engine incarnations; the headline fields
    /// add the live engine's contribution on top.
    uint64_t TraceDropped = 0;
    uint64_t ProfileSamples = 0;
    uint64_t ProfileDropped = 0;
    uint64_t TraceDroppedPrior = 0;
    uint64_t ProfileSamplesPrior = 0;
    uint64_t ProfileDroppedPrior = 0;
    /// Ring snapshots of every retired engine incarnation, in order
    /// (TraceCapacity mode). Entry 0 is the original engine.
    std::vector<TraceBuffer> TraceSnaps;
    /// Folded collapsed-stack counts (ProfileHz mode), merged across
    /// incarnations.
    std::map<std::string, uint64_t> ProfileFold;
  };

  void workerMain(unsigned Idx);
  /// Cooperative worker loop (PoolOptions::EnableFibers): admits queued
  /// jobs as fibers, slices the scheduler, and retires finished jobs.
  void workerFiberMain(unsigned Idx);
  std::unique_ptr<SchemeEngine> buildWorkerEngine(unsigned Idx,
                                                  uint32_t Incarnation);
  void retireEngine(SchemeEngine &Engine, unsigned Idx);
  /// Runs J (including its retry loop) on Engine; true when the failure
  /// was fatal (beyond-reserve) and the caller must rebuild the engine.
  bool runJob(SchemeEngine &Engine, Job &J, unsigned Idx, uint64_t WaitNs);
  void expireJob(Job &J, unsigned Idx, uint64_t WaitNs);
  static void rejectJob(Job &J);
  void shedJob(Job &J, uint64_t WindowP99Us);
  /// Rejects everything queued (shutdown, or last worker retired).
  void rejectQueuedJobs();
  void noteQueueWait(uint64_t WaitUs);
  /// Sliding-window queue-wait p99 in µs (0 until the window has at
  /// least MinAdmissionSamples entries, or with admission control off).
  uint64_t admissionP99Us() const;
  uint64_t pressureThresholdUs() const;
  MetricsRegistry buildMetrics() const;

  static constexpr size_t MinAdmissionSamples = 8;

  PoolOptions Opts;
  std::vector<std::thread> Threads;
  std::vector<std::unique_ptr<WorkerShard>> Shards;

  // Bounded MPMC queue.
  mutable std::mutex QueueMu;
  std::condition_variable NotEmpty; ///< Waited on by workers.
  std::condition_variable NotFull;  ///< Waited on by blocked submitters.
  std::deque<Job> Queue;
  bool Stopping = false;    ///< Guarded by QueueMu.
  bool DrainOnStop = true;  ///< Guarded by QueueMu.
  uint64_t HighWater = 0;   ///< Guarded by QueueMu.
  uint64_t NextJobId = 1;   ///< Guarded by QueueMu.
  unsigned LiveWorkers = 0; ///< Guarded by QueueMu.

  // Shutdown join serialization (never held while touching QueueMu).
  std::mutex JoinMu;
  bool Joined = false; ///< Guarded by JoinMu.

  // Engine registry for cross-thread interrupts. Slot Idx is published
  // by worker Idx after construction and cleared before destruction.
  mutable std::mutex EnginesMu;
  std::vector<SchemeEngine *> Engines;

  // Submit-side counters (the retire side lives in the shards).
  mutable std::mutex StatsMu;
  uint64_t JobsSubmitted = 0; ///< Guarded by StatsMu.
  uint64_t JobsRejected = 0;  ///< Guarded by StatsMu.
  uint64_t JobsShed = 0;      ///< Guarded by StatsMu.

  // Admission-control sliding window of recent queue waits (µs).
  mutable std::mutex AdmissionMu;
  std::vector<uint32_t> AdmissionWaitsUs; ///< Ring; guarded by AdmissionMu.
  size_t AdmissionNext = 0;               ///< Guarded by AdmissionMu.
  size_t AdmissionCount = 0;              ///< Guarded by AdmissionMu.

  std::atomic<uint64_t> InFlight{0};
};

} // namespace cmk

#endif // CMARKS_SUPPORT_POOL_H
