//===- support/pool.h - Concurrent multi-engine serving pool ---*- C++ -*-===//
///
/// \file
/// EnginePool serves eval jobs from N worker threads, each owning a
/// private SchemeEngine — its own heap, stack segments, mark state,
/// stats, and trace buffer. Engines share nothing mutable (see DESIGN.md
/// §11 for the audit), so the pool needs no locking around evaluation
/// itself: the only synchronized state is the bounded MPMC job queue,
/// the aggregated statistics, and the engine registry used for
/// cross-thread interrupts.
///
/// Jobs are source strings and results are external representations
/// (strings): Values are owned by a worker's heap and must not escape
/// its thread, so the API exchanges only plain data. Each job carries
/// its own EngineLimits (defaulted from PoolOptions), which is how a
/// serving deployment evicts stuck requests — a job that trips its
/// timeout/heap/stack budget fails alone; the worker engine recovers
/// and keeps serving (support/limits.h).
///
/// Typical use:
/// \code
///   cmk::PoolOptions Opts;
///   Opts.Workers = 4;
///   Opts.DefaultJobLimits.TimeoutMs = 100;
///   cmk::EnginePool Pool(Opts);
///   auto F = Pool.submit("(+ 1 2)");
///   cmk::JobResult R = F.get();   // R.Ok, R.Output == "3"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_POOL_H
#define CMARKS_SUPPORT_POOL_H

#include "api/scheme.h"
#include "support/limits.h"
#include "support/stats.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cmk {

/// Outcome of one pool job, delivered through its future. Always
/// delivered: shutdown fulfills (rejects) queued jobs rather than
/// breaking their promises.
struct JobResult {
  bool Ok = false;
  /// write-style external representation of the result ("" on failure).
  std::string Output;
  /// Error message when !Ok ("engine pool is shut down" for rejections).
  std::string Error;
  /// Classification when !Ok: Runtime for ordinary errors, or the limit
  /// trip kind (heap/stack/timeout/interrupt) for evicted jobs.
  ErrorKind Kind = ErrorKind::None;
  /// Index of the worker that ran the job (0 for rejected jobs).
  uint32_t Worker = 0;
};

/// Pool construction parameters.
struct PoolOptions {
  /// Worker threads (= engines). 0 picks std::thread::hardware_concurrency.
  unsigned Workers = 0;
  /// Bounded job-queue capacity; submit() blocks while the queue is full
  /// (backpressure), trySubmit() fails fast instead.
  size_t QueueCapacity = 256;
  /// Engine template: every worker constructs its engine from this
  /// (variant, compiler options, prelude).
  EngineOptions Engine;
  /// Budgets installed for jobs submitted without explicit limits. The
  /// zero default means ungoverned; serving deployments should at least
  /// arm TimeoutMs so a stuck request cannot retire a worker.
  EngineLimits DefaultJobLimits;
};

/// Pool-wide statistics snapshot (stats()).
struct PoolStats {
  uint64_t JobsSubmitted = 0; ///< Accepted into the queue.
  uint64_t JobsCompleted = 0; ///< Ran and returned a value.
  uint64_t JobsFailed = 0;    ///< Ran and raised an ordinary error.
  uint64_t JobsTripped = 0;   ///< Ran and hit a resource limit (subset of
                              ///< JobsFailed's complement: counted apart).
  uint64_t JobsRejected = 0;  ///< Never ran (shutdown or trySubmit race).
  uint64_t QueueHighWater = 0; ///< Max queue depth observed.
  /// Aggregated runtime event counters (support/stats.h) across every
  /// worker engine, accumulated as jobs retire. In-flight jobs appear
  /// once they finish.
  VMStats Engines;
};

/// A fixed-size pool of worker threads with one private SchemeEngine
/// each, fed by a bounded MPMC queue. Thread-safe: submit/trySubmit/
/// stats/interruptAll may be called concurrently from any thread.
class EnginePool {
public:
  explicit EnginePool(const PoolOptions &Opts = PoolOptions());
  ~EnginePool(); ///< shutdown(/*Drain=*/true).
  EnginePool(const EnginePool &) = delete;
  EnginePool &operator=(const EnginePool &) = delete;

  /// Enqueues \p Source under the default job limits. Blocks while the
  /// queue is full; returns an already-rejected future after shutdown.
  std::future<JobResult> submit(std::string Source);

  /// Enqueues \p Source with job-specific budgets (overrides, not merges,
  /// the defaults).
  std::future<JobResult> submit(std::string Source, const EngineLimits &L);

  /// Non-blocking submit: false (and no future) when the queue is full
  /// or the pool is shutting down.
  bool trySubmit(std::string Source, const EngineLimits &L,
                 std::future<JobResult> &Out);

  /// Stops the pool and joins the workers. Drain=true finishes queued
  /// jobs first; Drain=false rejects them (their futures resolve with
  /// "engine pool is shut down"). Running jobs always finish — combine
  /// with interruptAll() to evict them promptly. Idempotent; the first
  /// call's Drain wins.
  void shutdown(bool Drain = true);

  /// Asks every currently-running evaluation to stop at its next safe
  /// point (delivered as a catchable exn:interrupt?, see support/
  /// limits.h). Idle engines are unaffected: a pending interrupt is
  /// cleared when the next run re-arms governance.
  void interruptAll();

  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Thread-safe snapshot of the pool-wide counters and the aggregated
  /// per-engine runtime stats.
  PoolStats stats() const;

private:
  struct Job {
    std::string Source;
    EngineLimits Limits;
    std::promise<JobResult> Promise;
  };

  void workerMain(unsigned Idx);
  void runJob(SchemeEngine &Engine, Job &J, unsigned Idx);
  static void rejectJob(Job &J);

  PoolOptions Opts;
  std::vector<std::thread> Threads;

  // Bounded MPMC queue.
  mutable std::mutex QueueMu;
  std::condition_variable NotEmpty; ///< Waited on by workers.
  std::condition_variable NotFull;  ///< Waited on by blocked submitters.
  std::deque<Job> Queue;
  bool Stopping = false;   ///< Guarded by QueueMu.
  bool DrainOnStop = true; ///< Guarded by QueueMu.
  uint64_t HighWater = 0;  ///< Guarded by QueueMu.

  // Shutdown join serialization (never held while touching QueueMu).
  std::mutex JoinMu;
  bool Joined = false; ///< Guarded by JoinMu.

  // Engine registry for cross-thread interrupts. Slot Idx is published
  // by worker Idx after construction and cleared before destruction.
  mutable std::mutex EnginesMu;
  std::vector<SchemeEngine *> Engines;

  // Aggregated statistics (everything except the queue high-water).
  mutable std::mutex StatsMu;
  PoolStats Agg;
};

} // namespace cmk

#endif // CMARKS_SUPPORT_POOL_H
