//===- support/debug.h - Assertions and fatal errors ----------*- C++ -*-===//
//
// Part of the cmarks project: a reproduction of "Compiler and Runtime
// Support for Continuation Marks" (Flatt & Dybvig, PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers shared by every cmarks module. Unrecoverable internal
/// errors abort with a message, and user-visible Scheme errors travel
/// through the VM's error plumbing. The one sanctioned C++ exception is
/// cmk::ResourceExhausted (support/limits.h), thrown when a resource
/// budget is exceeded beyond its reserve and caught at the applyProcedure
/// boundary; nothing else throws.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_DEBUG_H
#define CMARKS_SUPPORT_DEBUG_H

#include <cassert>
#include <cstdlib>

namespace cmk {

/// Prints \p Msg with source location to stderr and aborts. Used for
/// internal invariant violations that indicate a bug in cmarks itself.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   int Line);

} // namespace cmk

/// Marks a point in the code that must be unreachable; aborts if reached.
#define CMK_UNREACHABLE(MSG) ::cmk::reportFatalError(MSG, __FILE__, __LINE__)

/// Like assert, but also evaluated in release builds for invariants that are
/// cheap and guard memory safety of the VM.
#define CMK_CHECK(COND, MSG)                                                   \
  do {                                                                         \
    if (!(COND))                                                               \
      ::cmk::reportFatalError(MSG, __FILE__, __LINE__);                        \
  } while (false)

#endif // CMARKS_SUPPORT_DEBUG_H
