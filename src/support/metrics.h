//===- support/metrics.h - Serving telemetry: histograms + export -*- C++ -*-===//
///
/// \file
/// Production-serving metrics for cmarks: log-bucketed latency histograms
/// (HDR-style), monotonic counters, and gauges, plus a registry that
/// renders one snapshot as Prometheus text exposition or as a versioned
/// JSON document (schema `cmarks-metrics-v1`, validated by
/// tools/metrics_report.py).
///
/// The recording design is lock-cheap by construction rather than by
/// clever atomics: a LogHistogram is a plain (single-writer) object, and
/// every concurrent producer owns a private one — EnginePool gives each
/// worker a telemetry shard guarded by that worker's own mutex, so the
/// retirement path locks an uncontended mutex and never touches a global.
/// Readers *merge* histograms across shards (merge is associative and
/// commutative: plain bucket-wise addition), which is what makes the
/// snapshot model work: record into shards, merge on read.
///
/// Bucket layout (HdrHistogram-style log buckets): values below
/// `SubBuckets` (16) are exact; above that, each power-of-two octave is
/// split into 16 sub-buckets, so any reported quantile is within a
/// relative error of 1/16 = 6.25% of the true sample. Covers the full
/// uint64 range in ~976 buckets (one fixed 8 KiB array, no allocation
/// after construction).
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_METRICS_H
#define CMARKS_SUPPORT_METRICS_H

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace cmk {

/// Pre-computed percentile summary of one histogram (snapshot()).
/// Percentile values are bucket upper bounds: an estimate is never below
/// the true quantile and is within 1/16 relative error above it.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0; ///< Exact sum of recorded values (saturating).
  uint64_t Min = 0; ///< Exact; 0 when empty.
  uint64_t Max = 0; ///< Exact; 0 when empty.
  uint64_t P50 = 0;
  uint64_t P90 = 0;
  uint64_t P99 = 0;
  uint64_t P999 = 0;
};

/// Log-bucketed histogram of non-negative integer samples (typically
/// microseconds). Single writer; merge() combines histograms recorded by
/// different writers. All operations are allocation-free.
class LogHistogram {
public:
  /// Sub-bucket resolution: 2^4 = 16 sub-buckets per octave.
  static constexpr uint32_t SubBucketBits = 4;
  static constexpr uint32_t SubBuckets = 1u << SubBucketBits;
  /// Buckets 0..SubBuckets-1 are exact; octaves for msb in
  /// [SubBucketBits .. 63] contribute SubBuckets buckets each.
  static constexpr uint32_t NumBuckets =
      SubBuckets + (64 - SubBucketBits) * SubBuckets;

  /// Bucket index holding \p V.
  static uint32_t bucketIndex(uint64_t V);
  /// Smallest value mapping to bucket \p Idx.
  static uint64_t bucketLow(uint32_t Idx);
  /// Largest value mapping to bucket \p Idx (the quantile estimate).
  static uint64_t bucketHigh(uint32_t Idx);

  void record(uint64_t V);
  /// Bucket-wise addition; associative and commutative.
  void merge(const LogHistogram &O);
  void reset();

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }

  /// Value at percentile \p P (0 < P <= 100): the upper bound of the
  /// bucket holding the ceil(P/100 * count)-th smallest sample, clamped
  /// to the exact max. 0 when empty.
  uint64_t percentile(double P) const;

  HistogramSnapshot snapshot() const;

private:
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;
};

/// One snapshot of named metrics, rendered to either export format. Not
/// a live registry: producers own their state (atomics, shards) and pour
/// a consistent snapshot in here at export time, so the registry itself
/// needs no synchronization.
///
/// Labels are (key, value) pairs rendered as `name{k="v",...}` in
/// Prometheus and as a JSON object in the JSON document.
class MetricsRegistry {
public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void counter(const std::string &Name, const std::string &Help,
               const Labels &L, uint64_t Value);
  void gauge(const std::string &Name, const std::string &Help,
             const Labels &L, double Value);
  /// Records a summary (count/sum/min/max + p50/p90/p99/p999) of \p H.
  /// \p Scale converts recorded units to exported units (e.g. 1e-6 for
  /// microsecond samples exported as seconds).
  void histogram(const std::string &Name, const std::string &Help,
                 const Labels &L, const LogHistogram &H, double Scale = 1.0);

  /// Prometheus text exposition (one # HELP/# TYPE block per metric name;
  /// histograms as summary-typed quantile series).
  std::string prometheusText() const;

  /// Versioned JSON document: {"schema":"cmarks-metrics-v1",
  /// "component":..., "counters":[...], "gauges":[...],
  /// "histograms":[...]}.
  std::string json(const std::string &Component) const;

private:
  struct Entry {
    enum class Kind { Counter, Gauge, Histogram } K;
    std::string Name;
    std::string Help;
    Labels L;
    double Value = 0;       ///< Counter/gauge payload.
    HistogramSnapshot Snap; ///< Histogram payload.
    double Scale = 1.0;
  };
  std::vector<Entry> Entries;
};

} // namespace cmk

#endif // CMARKS_SUPPORT_METRICS_H
