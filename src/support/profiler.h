//===- support/profiler.h - Safe-point sampling profiler -------*- C++ -*-===//
///
/// \file
/// A sampling profiler built exactly the way the paper says tooling should
/// be built (§2): stack attribution comes from continuation marks, not
/// from walking frames. A sampler thread periodically pokes the engine
/// (VM::pokeSample, a relaxed fetch_or on the word every safe-point site
/// already loads); at its next safe point the engine captures one sample —
/// the running procedure's name plus the `#%trace-key` mark chain the
/// prelude's with-stack-frame/profiled forms maintain — into a fixed ring.
///
/// The capture path is allocation-free and counter-free: it renders the
/// mark chain into an inline char buffer by walking the attachment list
/// (or the MarkStackMode side stack) directly, the same data
/// current-stack-snapshot reads, without calling the counting/caching
/// lookup entry points. Sampling therefore never perturbs VMStats, fuel,
/// or the safe-point poll schedule — the differential fuzzer's
/// determinism check and the CI safe-point-polls gate both hold with the
/// sampler on (see DESIGN.md §13 for the protocol).
///
/// Output is collapsed-stack format ("frame;frame;leaf count" lines),
/// directly consumable by flamegraph.pl and speedscope.
///
/// Threading: start()/stop() and captureSample() run on the engine's
/// thread (stop joins the sampler thread, which only ever touches the
/// VM's atomic signal word). Readers (toCollapsed, foldInto) must run on
/// the engine thread or after the engine is idle — the same discipline as
/// TraceBuffer.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_PROFILER_H
#define CMARKS_SUPPORT_PROFILER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cmk {

class VM;

/// One captured sample: a ';'-joined frame path, root first, leaf last.
struct ProfileSample {
  uint64_t TimeNs;
  char Stack[248]; ///< NUL-terminated; deep stacks are truncated at the
                   ///< root end so the leaf attribution survives.
};

static_assert(sizeof(ProfileSample) == 256, "keep the sample ring dense");

class SamplingProfiler {
public:
  static constexpr uint32_t DefaultHz = 97; ///< Prime: avoids phase-locking
                                            ///< with millisecond-periodic work.
  static constexpr uint32_t DefaultCapacity = 4096; ///< 1 MiB of samples.
  /// Frames kept per sample (innermost MaxDepth when deeper).
  static constexpr uint32_t MaxDepth = 32;

  ~SamplingProfiler() { stopThread(); }

  /// Starts sampling \p M at \p Hz. Clears previously captured samples.
  /// No-op when already running.
  void start(VM &M, uint32_t Hz = DefaultHz, uint32_t Capacity = 0);

  /// Stops and joins the sampler thread; captured samples stay readable.
  void stop() { stopThread(); }

  bool running() const { return Sampler.joinable(); }

  /// Called by the VM at a safe point after consuming the sample signal.
  /// Allocation-free; must not touch VMStats or fuel.
  void captureSample(VM &M);

  uint64_t sampleCount() const { return Head < Cap ? Head : Cap; }
  uint64_t total() const { return Head; }
  uint64_t dropped() const { return Head < Cap ? 0 : Head - Cap; }
  /// Pokes issued by the sampler thread; pokes that landed while the
  /// engine was idle (no run in progress) capture nothing.
  uint64_t pokes() const { return Pokes.load(std::memory_order_relaxed); }

  /// Folds the retained samples into \p Out: collapsed stack -> count.
  void foldInto(std::map<std::string, uint64_t> &Out) const;

  /// Collapsed-stack text ("stack count\n" per distinct stack, sorted by
  /// stack string for determinism).
  std::string toCollapsed() const;
  bool writeCollapsed(std::FILE *Out) const;

  /// Renders a fold (possibly merged across engines) as collapsed text.
  static std::string collapsedText(const std::map<std::string, uint64_t> &F);

private:
  void stopThread();

  std::vector<ProfileSample> Samples;
  uint32_t Cap = 0;
  uint64_t Head = 0; ///< Monotonic count of samples ever captured.

  std::thread Sampler;
  std::mutex SamplerMu;              ///< Guards StopRequested hand-off.
  std::condition_variable SamplerCv; ///< Wakes the thread for prompt stop.
  bool StopRequested = false;
  std::atomic<uint64_t> Pokes{0};
};

} // namespace cmk

#endif // CMARKS_SUPPORT_PROFILER_H
