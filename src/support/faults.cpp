//===- support/faults.cpp - Deterministic fault injection -----------------===//

#include "support/faults.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

namespace cmk {

const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::Gc:
    return "gc";
  case FaultSite::Overflow:
    return "overflow";
  case FaultSite::NoFuse:
    return "nofuse";
  case FaultSite::Oom:
    return "oom";
  case FaultSite::ReifyOom:
    return "reify-oom";
  }
  return "?";
}

namespace {

bool parseSiteName(const std::string &Name, FaultSite &Out) {
  for (int I = 0; I < NumFaultSites; ++I) {
    FaultSite S = static_cast<FaultSite>(I);
    if (Name == faultSiteName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

std::string stripSpaces(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (!std::isspace(static_cast<unsigned char>(C)))
      Out.push_back(C);
  return Out;
}

} // namespace

bool FaultInjector::configureFromSpec(const std::string &RawSpec,
                                      std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };

  std::string Spec = stripSpaces(RawSpec);
  // Parse into a scratch config first so a malformed spec leaves the
  // current schedules untouched.
  struct Parsed {
    FaultSite S;
    Mode M;
    uint64_t N;
    uint64_t Seed;
  };
  std::vector<Parsed> Entries;

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    std::string Entry = Spec.substr(
        Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
    Pos = Semi == std::string::npos ? Spec.size() : Semi + 1;
    if (Entry.empty())
      continue;

    size_t Colon = Entry.find(':');
    if (Colon == std::string::npos)
      return Fail("fault spec entry missing ':': " + Entry);
    Parsed P{FaultSite::Gc, Mode::Off, 0, 0};
    if (!parseSiteName(Entry.substr(0, Colon), P.S))
      return Fail("unknown fault site: " + Entry.substr(0, Colon) +
                  " (want gc|overflow|nofuse|oom|reify-oom)");

    std::string Trigger = Entry.substr(Colon + 1);
    // Trigger params are comma-separated key=val pairs.
    uint64_t Pct = 0, Seed = 0;
    bool HavePct = false;
    size_t TPos = 0;
    while (TPos < Trigger.size()) {
      size_t Comma = Trigger.find(',', TPos);
      std::string KV = Trigger.substr(
          TPos, Comma == std::string::npos ? std::string::npos : Comma - TPos);
      TPos = Comma == std::string::npos ? Trigger.size() : Comma + 1;
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos)
        return Fail("fault trigger missing '=': " + KV);
      std::string Key = KV.substr(0, Eq);
      uint64_t Val = 0;
      if (!parseU64(KV.substr(Eq + 1), Val))
        return Fail("bad fault trigger value: " + KV);
      if (Key == "at") {
        if (Val == 0)
          return Fail("at=N is 1-based; at=0 never fires");
        P.M = Mode::At;
        P.N = Val;
      } else if (Key == "every") {
        if (Val == 0)
          return Fail("every=0 is not a schedule");
        P.M = Mode::Every;
        P.N = Val;
      } else if (Key == "p") {
        if (Val > 100)
          return Fail("p=PCT is a percentage (0..100)");
        HavePct = true;
        Pct = Val;
      } else if (Key == "seed") {
        Seed = Val;
      } else {
        return Fail("unknown fault trigger key: " + Key +
                    " (want at|every|p|seed)");
      }
    }
    if (HavePct) {
      P.M = Mode::Prob;
      P.N = Pct;
      P.Seed = Seed;
    }
    if (P.M == Mode::Off)
      return Fail("fault entry has no trigger (want at=|every=|p=): " + Entry);
    Entries.push_back(P);
  }

  disarmAll();
  for (const Parsed &P : Entries)
    arm(P.S, P.M, P.N, P.Seed);
  return true;
}

bool FaultInjector::configureFromEnv() {
  const char *Spec = std::getenv("CMARKS_FAULT_SPEC");
  if (!Spec || !*Spec)
    return true;
  std::string Err;
  if (!configureFromSpec(Spec, &Err)) {
    std::fprintf(stderr, "CMARKS_FAULT_SPEC: %s\n", Err.c_str());
    return false;
  }
  return true;
}

void FaultInjector::arm(FaultSite S, Mode M, uint64_t N, uint64_t Seed) {
  Site &St = Sites[idx(S)];
  St.M = M;
  St.N = N;
  St.Seed = Seed;
  // Mix the site index into the seed so sites armed with the same seed
  // still draw independent streams.
  St.R = Rng(Seed * 0x100 + static_cast<uint64_t>(idx(S)) + 1);
}

void FaultInjector::reseed(uint64_t Salt) {
  for (Site &St : Sites)
    St.R = Rng((St.Seed * 0x100 + static_cast<uint64_t>(&St - Sites) + 1) ^
               (Salt * 0x9e3779b97f4a7c15ULL));
}

void FaultInjector::disarmAll() {
  for (Site &St : Sites) {
    St.M = Mode::Off;
    St.N = 0;
    St.Seed = 0;
  }
}

void FaultInjector::resetCounters() {
  for (Site &St : Sites) {
    St.Hits = 0;
    St.Injected = 0;
    St.R = Rng(St.Seed * 0x100 +
               static_cast<uint64_t>(&St - Sites) + 1);
  }
}

bool FaultInjector::shouldFail(FaultSite S) {
  Site &St = Sites[idx(S)];
  if (St.M == Mode::Off || SuspendDepth > 0)
    return false;
  ++St.Hits;
  bool Fire = false;
  switch (St.M) {
  case Mode::Off:
    break;
  case Mode::At:
    Fire = St.Hits == St.N;
    break;
  case Mode::Every:
    Fire = St.Hits % St.N == 0;
    break;
  case Mode::Prob:
    Fire = St.R.chance(St.N, 100);
    break;
  }
  if (Fire) {
    ++St.Injected;
    // Cheap tier: injections are rare by construction.
    if (Stats)
      ++Stats->FaultsInjected;
  }
  return Fire;
}

bool FaultInjector::anyArmed() const {
  for (const Site &St : Sites)
    if (St.M != Mode::Off)
      return true;
  return false;
}

uint64_t FaultInjector::totalInjected() const {
  uint64_t N = 0;
  for (const Site &St : Sites)
    N += St.Injected;
  return N;
}

std::string FaultInjector::report() const {
  std::ostringstream Out;
  Out << "fault injection report (" << (CMARKS_FAULTS ? "enabled" : "compiled out")
      << "):\n";
  for (int I = 0; I < NumFaultSites; ++I) {
    const Site &St = Sites[I];
    const char *ModeName = St.M == Mode::Off     ? "off"
                           : St.M == Mode::At    ? "at"
                           : St.M == Mode::Every ? "every"
                                                 : "p";
    Out << "  " << faultSiteName(static_cast<FaultSite>(I)) << ": mode="
        << ModeName;
    if (St.M != Mode::Off)
      Out << " n=" << St.N;
    if (St.M == Mode::Prob)
      Out << " seed=" << St.Seed;
    Out << " hits=" << St.Hits << " injected=" << St.Injected << "\n";
  }
  return Out.str();
}

} // namespace cmk
