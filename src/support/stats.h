//===- support/stats.h - VM event-counter subsystem -----------*- C++ -*-===//
///
/// \file
/// Per-engine runtime statistics: the observable form of the paper's
/// performance story. Every counter corresponds to an event the evaluation
/// sections reason about — how often attachment operations force
/// continuation reification (7.2), how often opportunistic one-shot
/// records fuse back versus get copied or promoted (6), how stack segments
/// are allocated and split (5), how the mark-frame representation evolves,
/// and how the `continuation-mark-set-first` path-compression cache
/// behaves (7.5).
///
/// Two tiers:
///
///  - The *cheap tier* is always compiled in. Its counters sit on paths
///    that already allocate or copy (reification, underflow, segment
///    allocation), so a single increment is noise.
///  - The *detail tier* sits on genuinely hot paths (mark lookup, mark
///    frame update). It is compiled in when `CMARKS_STATS` is nonzero
///    (the default; CMake option `CMARKS_STATS`) and compiles to nothing
///    when the macro is defined to 0, so a release build can opt out of
///    even the single branch these increments cost.
///
/// All counters live in one `VMStats` struct whose layout does not depend
/// on the toggle — disabling the detail tier stops the increments, it does
/// not change the ABI. The counter table (`statsCounters`) gives every
/// field a stable kebab-case name shared by the `(runtime-stats)`
/// primitive, the REPL's `--stats` report, and the benchmark harness's
/// `BENCH_*.json` output.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_STATS_H
#define CMARKS_SUPPORT_STATS_H

#include <cstdint>
#include <cstdio>

#ifndef CMARKS_STATS
#define CMARKS_STATS 1
#endif

namespace cmk {

/// Per-run statistics used by tests, the ablation benchmarks, the
/// `(runtime-stats)` primitive, and the CI bench pipeline.
struct VMStats {
  // --- Cheap tier: reification (underflow-record installs) -----------------

  /// Total underflow records minted (every reification installs one).
  uint64_t Reifications = 0;
  /// Reifications of the current frame (paper 7.2 first category: tail
  /// attachment operations, and tail calls that overflow).
  uint64_t ReifyTailFrame = 0;
  /// Split-at-sp reifications (non-tail captures, CallAttach, overflow).
  uint64_t ReifySplit = 0;
  /// Reifications forced by the CallAttach calling convention (paper 7.2
  /// second category: non-tail `with-continuation-mark` around a call).
  uint64_t ReifyForAttachCall = 0;
  /// Reifications performed on behalf of call/cc and call/1cc capture.
  uint64_t ReifyForCapture = 0;
  /// Reifications performed by the generic 7.1 attachment natives (the
  /// "no opt" path and uses the compiler cannot recognize).
  uint64_t ReifyForAttachOp = 0;
  /// Pass-through records minted for prompt metadata.
  uint64_t PassThroughRecords = 0;

  // --- Cheap tier: one-shot accounting (paper 6) ----------------------------

  uint64_t UnderflowFusions = 0; ///< Opportunistic one-shot fast paths.
  uint64_t UnderflowCopies = 0;  ///< Copy-on-application restores.
  /// Records promoted Opportunistic/one-shot -> Full by call/cc or a
  /// composable-continuation capture (the GC's promotions are counted
  /// separately in HeapStats::OneShotPromotions).
  uint64_t OneShotPromotions = 0;

  // --- Cheap tier: continuations and segments -------------------------------

  uint64_t ContinuationCaptures = 0;
  uint64_t ContinuationApplies = 0;
  /// Fibers created by (spawn thunk) (vm/fibers.cpp). Site-driven, so the
  /// bench pipeline gates it like the segment counters.
  uint64_t FiberSpawns = 0;
  /// Fiber suspensions: every park (sleep, channel wait, join wait) and
  /// every yield that actually captured and switched away.
  uint64_t FiberParks = 0;
  uint64_t SegmentOverflows = 0; ///< Stack splits forced by segment limits.
  uint64_t SegmentAllocs = 0;    ///< Stack segments allocated fresh.
  uint64_t SegmentSlotsAllocated = 0; ///< Total slots across those segments.
  /// Segment requests satisfied from the recycling pool instead of a fresh
  /// allocation (paper 5: Chez recycles segments so overflow/underflow
  /// never pays malloc on the steady state).
  uint64_t SegmentRecycles = 0;

  // --- Cheap tier: nursery (mark-frame/pair bump allocator) -----------------

  uint64_t NurseryResets = 0;     ///< All-dead nursery blocks rewound at GC.
  uint64_t NurseryPromotions = 0; ///< Nursery blocks tenured (had survivors).

  // --- Cheap tier: resource governance (support/limits.h) -------------------

  uint64_t SafePointPolls = 0;    ///< Fuel-exhaustion polls of the dispatch
                                  ///< loop (deadline/interrupt/trip checks).
  uint64_t LimitHeapTrips = 0;    ///< Heap byte budget trips delivered.
  uint64_t LimitStackTrips = 0;   ///< Segment budget trips delivered.
  uint64_t LimitTimeoutTrips = 0; ///< Wall-clock deadline trips delivered.
  uint64_t LimitInterrupts = 0;   ///< requestInterrupt() deliveries.
  uint64_t FaultsInjected = 0;    ///< Injections fired (support/faults.h).

  // --- Detail tier: mark-frame representation transitions (paper 7.5) -------

  /// "no attachment" -> one-mark frame.
  uint64_t MarkFrameCreates = 0;
  /// N-entry frame -> (N+1)-entry frame (new key on the same frame).
  uint64_t MarkFrameExtends = 0;
  /// Same-size copy overwriting an existing key's binding.
  uint64_t MarkFrameRebinds = 0;

  // --- Detail tier: continuation-mark-set-first cache (paper 7.5) -----------

  uint64_t MarkFirstLookups = 0;       ///< markListFirst calls.
  uint64_t MarkFirstCacheHits = 0;     ///< Lookups answered by a cache entry.
  uint64_t MarkFirstCacheMisses = 0;   ///< Undelimited lookups that walked
                                       ///< to an answer with no cache hit.
  uint64_t MarkFirstCacheInstalls = 0; ///< N/2 path-compression installs.
  uint64_t MarkFirstCellsWalked = 0;   ///< Cumulative list cells visited.
  uint64_t MarkSetCaptures = 0;        ///< current-continuation-marks et al.
  uint64_t NurseryAllocs = 0;          ///< Objects placed in the nursery.

  /// Zeroes every counter.
  void reset() { *this = VMStats(); }

  /// Fieldwise difference (this - Since); for before/after measurement.
  VMStats delta(const VMStats &Since) const;
};

/// One row of the counter table: a stable external name for a field.
struct StatsCounterDesc {
  const char *Name;         ///< Kebab-case, e.g. "underflow-fusions".
  uint64_t VMStats::*Field; ///< The counter itself.
  bool Detail;              ///< True for detail-tier counters.
};

/// The full counter table, in declaration order. \p Count receives the
/// number of entries.
const StatsCounterDesc *statsCounters(int &Count);

/// True when the detail tier was compiled in (CMARKS_STATS != 0).
constexpr bool statsDetailEnabled() { return CMARKS_STATS != 0; }

/// Prints a human-readable two-column counter table; zero detail-tier rows
/// are kept so the output shape is stable across builds.
void printStatsTable(const VMStats &S, std::FILE *Out);

} // namespace cmk

// Detail-tier increment through a possibly-null VMStats pointer: exactly
// one branch when enabled, nothing at all when compiled out.
#if CMARKS_STATS
#define CMK_STAT_DETAIL(SPtr, FIELD)                                           \
  do {                                                                         \
    if (::cmk::VMStats *CmkS_ = (SPtr))                                        \
      ++CmkS_->FIELD;                                                          \
  } while (false)
#define CMK_STAT_DETAIL_ADD(SPtr, FIELD, N)                                    \
  do {                                                                         \
    if (::cmk::VMStats *CmkS_ = (SPtr))                                        \
      CmkS_->FIELD += (N);                                                     \
  } while (false)
#else
#define CMK_STAT_DETAIL(SPtr, FIELD) ((void)0)
#define CMK_STAT_DETAIL_ADD(SPtr, FIELD, N) ((void)0)
#endif

#endif // CMARKS_SUPPORT_STATS_H
