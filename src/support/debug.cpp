//===- support/debug.cpp --------------------------------------*- C++ -*-===//

#include "support/debug.h"

#include <cstdio>

void cmk::reportFatalError(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "cmarks fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}
