//===- support/stats.cpp - VM event-counter subsystem ---------*- C++ -*-===//

#include "support/stats.h"

namespace cmk {

namespace {

const StatsCounterDesc Counters[] = {
    // Cheap tier.
    {"reifications", &VMStats::Reifications, false},
    {"reify-tail-frame", &VMStats::ReifyTailFrame, false},
    {"reify-split", &VMStats::ReifySplit, false},
    {"reify-attach-call", &VMStats::ReifyForAttachCall, false},
    {"reify-capture", &VMStats::ReifyForCapture, false},
    {"reify-attach-op", &VMStats::ReifyForAttachOp, false},
    {"pass-through-records", &VMStats::PassThroughRecords, false},
    {"underflow-fusions", &VMStats::UnderflowFusions, false},
    {"underflow-copies", &VMStats::UnderflowCopies, false},
    {"one-shot-promotions", &VMStats::OneShotPromotions, false},
    {"continuation-captures", &VMStats::ContinuationCaptures, false},
    {"continuation-applies", &VMStats::ContinuationApplies, false},
    {"fiber-spawns", &VMStats::FiberSpawns, false},
    {"fiber-parks", &VMStats::FiberParks, false},
    {"segment-overflows", &VMStats::SegmentOverflows, false},
    {"segment-allocs", &VMStats::SegmentAllocs, false},
    {"segment-slots-allocated", &VMStats::SegmentSlotsAllocated, false},
    {"segment-recycles", &VMStats::SegmentRecycles, false},
    {"nursery-resets", &VMStats::NurseryResets, false},
    {"nursery-promotions", &VMStats::NurseryPromotions, false},
    {"safe-point-polls", &VMStats::SafePointPolls, false},
    {"limit-heap-trips", &VMStats::LimitHeapTrips, false},
    {"limit-stack-trips", &VMStats::LimitStackTrips, false},
    {"limit-timeout-trips", &VMStats::LimitTimeoutTrips, false},
    {"limit-interrupts", &VMStats::LimitInterrupts, false},
    {"faults-injected", &VMStats::FaultsInjected, false},
    // Detail tier.
    {"mark-frame-creates", &VMStats::MarkFrameCreates, true},
    {"mark-frame-extends", &VMStats::MarkFrameExtends, true},
    {"mark-frame-rebinds", &VMStats::MarkFrameRebinds, true},
    {"mark-first-lookups", &VMStats::MarkFirstLookups, true},
    {"mark-first-cache-hits", &VMStats::MarkFirstCacheHits, true},
    {"mark-first-cache-misses", &VMStats::MarkFirstCacheMisses, true},
    {"mark-first-cache-installs", &VMStats::MarkFirstCacheInstalls, true},
    {"mark-first-cells-walked", &VMStats::MarkFirstCellsWalked, true},
    {"mark-set-captures", &VMStats::MarkSetCaptures, true},
    {"nursery-allocs", &VMStats::NurseryAllocs, true},
};

} // namespace

VMStats VMStats::delta(const VMStats &Since) const {
  VMStats D;
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  for (int I = 0; I < N; ++I) {
    uint64_t VMStats::*F = Table[I].Field;
    D.*F = this->*F - Since.*F;
  }
  return D;
}

const StatsCounterDesc *statsCounters(int &Count) {
  Count = static_cast<int>(sizeof(Counters) / sizeof(Counters[0]));
  return Counters;
}

void printStatsTable(const VMStats &S, std::FILE *Out) {
  int N = 0;
  const StatsCounterDesc *Table = statsCounters(N);
  std::fprintf(Out, "runtime event counters%s:\n",
               statsDetailEnabled() ? "" : " (detail tier compiled out)");
  for (int I = 0; I < N; ++I)
    std::fprintf(Out, "  %-26s %12llu\n", Table[I].Name,
                 static_cast<unsigned long long>(S.*(Table[I].Field)));
}

} // namespace cmk
