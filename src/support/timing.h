//===- support/timing.h - Wall-clock timing for benchmarks ----*- C++ -*-===//
///
/// \file
/// Small wall-clock timer used by the benchmark harnesses to report run
/// times in the same "average over N runs plus standard deviation" format
/// the paper uses.
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_SUPPORT_TIMING_H
#define CMARKS_SUPPORT_TIMING_H

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cmk {

/// Returns a monotonic timestamp in nanoseconds.
inline uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Aggregates repeated timing samples the way the paper reports them:
/// average run time and standard deviation over a set of runs.
class RunStats {
public:
  void addSampleNanos(uint64_t Nanos) { Samples.push_back(Nanos); }

  double averageMillis() const {
    if (Samples.empty())
      return 0.0;
    double Sum = 0.0;
    for (uint64_t S : Samples)
      Sum += static_cast<double>(S);
    return Sum / static_cast<double>(Samples.size()) / 1e6;
  }

  double stddevMillis() const {
    if (Samples.size() < 2)
      return 0.0;
    double Avg = averageMillis();
    double Sum = 0.0;
    for (uint64_t S : Samples) {
      double D = static_cast<double>(S) / 1e6 - Avg;
      Sum += D * D;
    }
    return std::sqrt(Sum / static_cast<double>(Samples.size() - 1));
  }

  size_t sampleCount() const { return Samples.size(); }

private:
  std::vector<uint64_t> Samples;
};

} // namespace cmk

#endif // CMARKS_SUPPORT_TIMING_H
