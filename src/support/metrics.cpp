//===- support/metrics.cpp - Histograms and metrics export ----------------===//

#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace cmk;

// -----------------------------------------------------------------------------
// LogHistogram
// -----------------------------------------------------------------------------
//
// Bucket math (HdrHistogram-style): values below SubBuckets (16) get one
// exact bucket each. For larger values let m = index of the highest set
// bit (m >= SubBucketBits); the octave [2^m, 2^(m+1)) is split into
// SubBuckets equal ranges of width 2^(m - SubBucketBits). The first
// octave (m == SubBucketBits) continues seamlessly from the exact
// region: its sub-bucket width is 1.

uint32_t LogHistogram::bucketIndex(uint64_t V) {
  if (V < SubBuckets)
    return static_cast<uint32_t>(V);
  uint32_t Msb = 63 - static_cast<uint32_t>(__builtin_clzll(V));
  uint32_t Octave = Msb - SubBucketBits + 1;
  uint32_t Sub =
      static_cast<uint32_t>(V >> (Msb - SubBucketBits)) - SubBuckets;
  return Octave * SubBuckets + Sub;
}

uint64_t LogHistogram::bucketLow(uint32_t Idx) {
  if (Idx < SubBuckets)
    return Idx;
  uint32_t Octave = Idx / SubBuckets; // >= 1
  uint32_t Sub = Idx % SubBuckets;
  return static_cast<uint64_t>(SubBuckets + Sub) << (Octave - 1);
}

uint64_t LogHistogram::bucketHigh(uint32_t Idx) {
  if (Idx < SubBuckets)
    return Idx;
  uint32_t Octave = Idx / SubBuckets;
  uint64_t Width = uint64_t(1) << (Octave - 1);
  return bucketLow(Idx) + (Width - 1);
}

void LogHistogram::record(uint64_t V) {
  ++Buckets[bucketIndex(V)];
  ++Count;
  uint64_t NewSum = Sum + V;
  Sum = NewSum >= Sum ? NewSum : UINT64_MAX; // Saturate, never wrap.
  if (V < Min)
    Min = V;
  if (V > Max)
    Max = V;
}

void LogHistogram::merge(const LogHistogram &O) {
  for (uint32_t I = 0; I < NumBuckets; ++I)
    Buckets[I] += O.Buckets[I];
  Count += O.Count;
  uint64_t NewSum = Sum + O.Sum;
  Sum = NewSum >= Sum ? NewSum : UINT64_MAX;
  if (O.Count) {
    if (O.Min < Min)
      Min = O.Min;
    if (O.Max > Max)
      Max = O.Max;
  }
}

void LogHistogram::reset() { *this = LogHistogram(); }

uint64_t LogHistogram::percentile(double P) const {
  if (!Count)
    return 0;
  double Exact = P / 100.0 * static_cast<double>(Count);
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Exact));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Seen = 0;
  for (uint32_t I = 0; I < NumBuckets; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank) {
      uint64_t V = bucketHigh(I);
      return V > Max ? Max : V; // Clamp: Max is exact.
    }
  }
  return Max;
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot S;
  S.Count = Count;
  S.Sum = Sum;
  S.Min = min();
  S.Max = Max;
  S.P50 = percentile(50);
  S.P90 = percentile(90);
  S.P99 = percentile(99);
  S.P999 = percentile(99.9);
  return S;
}

// -----------------------------------------------------------------------------
// MetricsRegistry
// -----------------------------------------------------------------------------

void MetricsRegistry::counter(const std::string &Name, const std::string &Help,
                              const Labels &L, uint64_t Value) {
  Entries.push_back({Entry::Kind::Counter, Name, Help, L,
                     static_cast<double>(Value), {}, 1.0});
}

void MetricsRegistry::gauge(const std::string &Name, const std::string &Help,
                            const Labels &L, double Value) {
  Entries.push_back({Entry::Kind::Gauge, Name, Help, L, Value, {}, 1.0});
}

void MetricsRegistry::histogram(const std::string &Name,
                                const std::string &Help, const Labels &L,
                                const LogHistogram &H, double Scale) {
  Entries.push_back({Entry::Kind::Histogram, Name, Help, L, 0, H.snapshot(),
                     Scale});
}

namespace {

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char Ch : S) {
    unsigned char C = static_cast<unsigned char>(Ch);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
}

/// Number formatting shared by both exports: integers render without a
/// fraction so counters stay exact; everything else gets enough digits
/// to round-trip.
void appendNumber(std::string &Out, double V) {
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      std::fabs(V) < 9.0e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    Out += Buf;
  } else {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.10g", V);
    Out += Buf;
  }
}

void appendPromLabels(std::string &Out, const MetricsRegistry::Labels &L,
                      const char *ExtraKey = nullptr,
                      const char *ExtraVal = nullptr) {
  if (L.empty() && !ExtraKey)
    return;
  Out += '{';
  bool First = true;
  for (const auto &KV : L) {
    if (!First)
      Out += ',';
    First = false;
    Out += KV.first;
    Out += "=\"";
    appendJsonEscaped(Out, KV.second);
    Out += '"';
  }
  if (ExtraKey) {
    if (!First)
      Out += ',';
    Out += ExtraKey;
    Out += "=\"";
    Out += ExtraVal;
    Out += '"';
  }
  Out += '}';
}

void appendJsonLabels(std::string &Out, const MetricsRegistry::Labels &L) {
  Out += "\"labels\":{";
  bool First = true;
  for (const auto &KV : L) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendJsonEscaped(Out, KV.first);
    Out += "\":\"";
    appendJsonEscaped(Out, KV.second);
    Out += '"';
  }
  Out += '}';
}

} // namespace

std::string MetricsRegistry::prometheusText() const {
  std::string Out;
  Out.reserve(Entries.size() * 128 + 256);
  // One # HELP/# TYPE header per distinct metric name, emitted before the
  // name's first sample (Prometheus requires series of one name to be
  // grouped; entries of one name are appended consecutively by the
  // producers here).
  std::string LastName;
  for (const Entry &E : Entries) {
    if (E.Name != LastName) {
      LastName = E.Name;
      const char *Type = E.K == Entry::Kind::Counter ? "counter"
                         : E.K == Entry::Kind::Gauge ? "gauge"
                                                     : "summary";
      Out += "# HELP " + E.Name + " " + E.Help + "\n";
      Out += "# TYPE " + E.Name + " " + Type + "\n";
    }
    if (E.K == Entry::Kind::Histogram) {
      const HistogramSnapshot &S = E.Snap;
      const struct {
        const char *Q;
        uint64_t V;
      } Quantiles[] = {{"0.5", S.P50}, {"0.9", S.P90}, {"0.99", S.P99},
                       {"0.999", S.P999}};
      for (const auto &Q : Quantiles) {
        Out += E.Name;
        appendPromLabels(Out, E.L, "quantile", Q.Q);
        Out += ' ';
        appendNumber(Out, static_cast<double>(Q.V) * E.Scale);
        Out += '\n';
      }
      Out += E.Name + "_sum";
      appendPromLabels(Out, E.L);
      Out += ' ';
      appendNumber(Out, static_cast<double>(S.Sum) * E.Scale);
      Out += '\n';
      Out += E.Name + "_count";
      appendPromLabels(Out, E.L);
      Out += ' ';
      appendNumber(Out, static_cast<double>(S.Count));
      Out += '\n';
    } else {
      Out += E.Name;
      appendPromLabels(Out, E.L);
      Out += ' ';
      appendNumber(Out, E.Value);
      Out += '\n';
    }
  }
  return Out;
}

std::string MetricsRegistry::json(const std::string &Component) const {
  std::string Out;
  Out.reserve(Entries.size() * 160 + 256);
  Out += "{\n  \"schema\": \"cmarks-metrics-v1\",\n  \"component\": \"";
  appendJsonEscaped(Out, Component);
  Out += "\",\n";

  auto AppendScalarSection = [&](const char *Section, Entry::Kind K) {
    Out += "  \"";
    Out += Section;
    Out += "\": [";
    bool First = true;
    for (const Entry &E : Entries) {
      if (E.K != K)
        continue;
      Out += First ? "\n" : ",\n";
      First = false;
      Out += "    {\"name\":\"";
      appendJsonEscaped(Out, E.Name);
      Out += "\",";
      appendJsonLabels(Out, E.L);
      Out += ",\"value\":";
      appendNumber(Out, E.Value);
      Out += '}';
    }
    Out += First ? "]" : "\n  ]";
  };

  AppendScalarSection("counters", Entry::Kind::Counter);
  Out += ",\n";
  AppendScalarSection("gauges", Entry::Kind::Gauge);
  Out += ",\n  \"histograms\": [";
  bool First = true;
  for (const Entry &E : Entries) {
    if (E.K != Entry::Kind::Histogram)
      continue;
    Out += First ? "\n" : ",\n";
    First = false;
    const HistogramSnapshot &S = E.Snap;
    Out += "    {\"name\":\"";
    appendJsonEscaped(Out, E.Name);
    Out += "\",";
    appendJsonLabels(Out, E.L);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ",\"count\":%llu,\"sum\":",
                  static_cast<unsigned long long>(S.Count));
    Out += Buf;
    appendNumber(Out, static_cast<double>(S.Sum) * E.Scale);
    const struct {
      const char *Key;
      uint64_t V;
    } Fields[] = {{"min", S.Min}, {"max", S.Max},   {"p50", S.P50},
                  {"p90", S.P90}, {"p99", S.P99},   {"p999", S.P999}};
    for (const auto &F : Fields) {
      Out += ",\"";
      Out += F.Key;
      Out += "\":";
      appendNumber(Out, static_cast<double>(F.V) * E.Scale);
    }
    Out += '}';
  }
  Out += First ? "]" : "\n  ]";
  Out += "\n}\n";
  return Out;
}
