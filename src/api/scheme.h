//===- api/scheme.h - Embedding API ----------------------------*- C++ -*-===//
///
/// \file
/// SchemeEngine is the public entry point of cmarks: it owns a VM and a
/// Compiler, loads the prelude, and evaluates source text. The engine's
/// configuration selects the paper's system variants (see DESIGN.md):
/// builtin attachments (default), the figure 6 ablations, the old-Racket
/// mark-stack comparator, and the continuation strategy modes used by the
/// ctak comparison.
///
/// Typical use:
/// \code
///   cmk::SchemeEngine Engine;
///   cmk::Value V = Engine.eval("(with-continuation-mark 'k 1"
///                              "  (continuation-mark-set-first #f 'k))");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CMARKS_API_SCHEME_H
#define CMARKS_API_SCHEME_H

#include "compiler/compiler.h"
#include "vm/vm.h"

#include <memory>
#include <string>

namespace cmk {

/// Pre-baked configurations for the evaluation's system variants.
enum class EngineVariant {
  Builtin,      ///< Full compiler + runtime support (the paper's system).
  NoOpt,        ///< Figure 6 "no opt": no attachment recognition.
  NoPrim,       ///< Figure 6 "no prim": no primitive recognition.
  No1cc,        ///< Figure 6 "no 1cc": no opportunistic one-shots.
  Unmod,        ///< Section 8.2 "unmod": no attachment support at all and
                ///< unconstrained cp0 (the pre-modification compiler).
  Imitate,      ///< Figure 3/4: attachments via the call/cc imitation.
  MarkStack,    ///< Old-Racket comparator: eager mark stack.
  HeapFrames,   ///< Frame-per-segment (Pycket-like) strategy.
  CopyOnCapture ///< Gambit/CHICKEN-like call/cc strategy.
};

struct EngineOptions {
  VMConfig VmCfg;
  CompilerOptions CompilerOpts;
  bool LoadPrelude = true;

  static EngineOptions forVariant(EngineVariant V);
};

/// A finished cooperative job collected from the fiber scheduler
/// (see vm/fibers.h and takeFinishedFiberJobs()).
struct FiberJobInfo {
  uint64_t Id = 0;
  bool Ok = false;
  std::string Output; ///< Written result, or the error message when !Ok.
  std::string Kind;   ///< Error kind symbol name ("" when Ok).
  uint64_t RunNs = 0; ///< On-CPU nanoseconds; parked time is excluded.
};

class SchemeEngine {
public:
  explicit SchemeEngine(const EngineOptions &Opts = EngineOptions());
  explicit SchemeEngine(EngineVariant V)
      : SchemeEngine(EngineOptions::forVariant(V)) {}
  ~SchemeEngine();
  SchemeEngine(const SchemeEngine &) = delete;
  SchemeEngine &operator=(const SchemeEngine &) = delete;

  /// Reads, compiles, and runs every form in \p Source; returns the last
  /// form's value. On failure returns undefined and sets lastError().
  Value eval(const std::string &Source);

  /// eval + write: the result's external representation ("" on error).
  std::string evalToString(const std::string &Source);

  /// eval that aborts the process on failure; for benchmarks.
  Value evalOrDie(const std::string &Source);

  /// Applies a procedure value to arguments on a fresh VM stack.
  Value apply(Value Fn, const std::vector<Value> &Args);

  bool ok() const { return LastError.empty(); }
  const std::string &lastError() const { return LastError; }

  /// Classification of the last failure: was it an ordinary runtime error
  /// or a resource-limit trip (heap/stack/timeout/interrupt)? Reset to
  /// ErrorKind::None by the next successful eval()/apply().
  ErrorKind lastErrorKind() const { return LastErrKind; }

  /// True when the last failure escalated past a reserve (the one
  /// sanctioned C++ exception, ResourceExhausted) instead of being
  /// delivered as a catchable trip. The engine is still internally
  /// consistent, but a supervisor should treat it as wounded: the
  /// program burned through the recovery slab, so per-run governance
  /// can no longer vouch for it (EnginePool rebuilds such workers).
  bool lastErrorFatal() const { return LastErrFatal; }

  /// Resource budgets enforced by the VM (see support/limits.h). Mutable
  /// between evaluations: raising or clearing a limit takes effect at the
  /// next eval()/apply().
  EngineLimits &limits() { return Machine.config().Limits; }

  /// Asks the engine to stop at the next safe point. Safe to call from
  /// another thread or a signal handler; the running program sees a
  /// catchable exn:interrupt? exception.
  void requestInterrupt() { Machine.requestInterrupt(); }

  /// Deterministic fault-injection control (active only when built with
  /// -DCMARKS_FAULTS=ON; configuration is always accepted).
  FaultInjector &faults() { return Machine.faults(); }

  VM &vm() { return Machine; }
  Heap &heap() { return Machine.heap(); }
  Compiler &compiler() { return Comp; }

  /// Runtime event counters accumulated since construction (or the last
  /// resetStats()). See support/stats.h for the counter inventory; the
  /// same numbers are reachable from Scheme via (runtime-stats).
  const VMStats &stats() const { return Machine.stats(); }

  /// Zeroes the event counters; typically called after setup code so a
  /// measurement sees only the workload's events.
  void resetStats() { Machine.stats().reset(); }

  /// Structured event tracing (see support/trace.h): startTrace() clears
  /// the ring buffer and records until stopTrace(); dumpTrace() exports
  /// what the ring holds as Chrome trace-event JSON, loadable in
  /// ui.perfetto.dev. The same controls are reachable from Scheme via
  /// (runtime-trace-start!) / (runtime-trace-stop!) / (runtime-trace-dump).
  void startTrace(uint32_t Capacity = 0) { Machine.trace().start(Capacity); }
  void stopTrace() { Machine.trace().stop(); }
  std::string traceToJson() const { return Machine.trace().toJson(); }
  /// Writes the trace JSON to \p Path; false on an I/O failure.
  bool dumpTrace(const std::string &Path);
  const TraceBuffer &trace() const { return Machine.trace(); }

  /// Safe-point sampling profiler (see support/profiler.h): a sampler
  /// thread pokes the engine at \p Hz; the VM captures the current
  /// procedure plus its `#%trace-key` mark stack at the next safe point.
  /// Near-zero overhead (no extra safe-point polls; counters are
  /// unperturbed). The same controls are reachable from Scheme via
  /// (profiler-start!) / (profiler-stop!) / (profiler-dump).
  void startProfiler(uint32_t Hz = SamplingProfiler::DefaultHz,
                     uint32_t Capacity = 0) {
    Machine.profiler().start(Machine, Hz, Capacity);
  }
  void stopProfiler() { Machine.profiler().stop(); }
  /// Collapsed-stack ("folded") profile text, one `frames count` line per
  /// distinct stack — flamegraph.pl / speedscope compatible.
  std::string profileCollapsed() const {
    return Machine.profiler().toCollapsed();
  }
  /// Writes the collapsed profile to \p Path; false on an I/O failure.
  bool dumpProfile(const std::string &Path);
  SamplingProfiler &profiler() { return Machine.profiler(); }

  /// Engine-level metrics snapshot (counters from (runtime-stats), heap
  /// gauges, trace/profile meta-telemetry) as Prometheus text or a
  /// `cmarks-metrics-v1` JSON document. EnginePool exports the pool-wide
  /// superset of the same schema.
  std::string metricsText() const;
  std::string metricsJson() const;

  /// --- Cooperative fiber jobs (vm/fibers.h, DESIGN.md section 16) ------
  ///
  /// In fiber-pool mode a worker multiplexes many jobs over one engine:
  /// spawnFiberJob() admits a job as a fiber, runFiberSlice() runs fibers
  /// until everything is parked or a job finishes, and
  /// takeFinishedFiberJobs() collects results. Parked jobs hold no engine
  /// and burn no budget.

  /// Switches the scheduler to cooperative pool mode: slices retire to the
  /// host instead of blocking in idleWait, and governance preserves
  /// pending interrupts across slice boundaries.
  void enableFiberPool() { Machine.Fibers.CoopPool = true; }

  /// Compiles \p Source and spawns it as a job fiber (thunk list run by
  /// the prelude's #%run-thunks). Returns the fiber id, or 0 on a
  /// compile/read error (reported via \p CompileErr). \p DelayNs > 0
  /// schedules the first run after a backoff (retry support).
  uint64_t spawnFiberJob(const std::string &Source, uint64_t BudgetNs,
                         uint64_t DeadlineNs, uint64_t DelayNs,
                         std::string *CompileErr);

  /// Runs one scheduler slice: fibers execute until all are parked or a
  /// job retires. Returns the slice status symbol ('idle when nothing was
  /// runnable, 'retire after a job finished); on a fatal engine error
  /// returns undefined with ok() false.
  Value runFiberSlice();

  /// Collects jobs finished since the last call.
  std::vector<FiberJobInfo> takeFinishedFiberJobs();

  bool fiberHasRunnable() const { return Machine.Fibers.hasRunnable(); }
  uint64_t fiberLiveCount() const { return Machine.Fibers.liveFibers(); }
  /// Nanoseconds until the earliest parked deadline (0 when no timers).
  uint64_t fiberNextTimerDelayNs() const {
    return Machine.Fibers.nextTimerDelayNs();
  }
  /// Forces the earliest timed sleeper due now (interrupt wake-up path).
  void fiberWakeEarliest() { Machine.Fibers.kickEarliestTimer(); }
  /// True when a host interrupt is pending but not yet consumed; fiber
  /// workers use this to wake a parked fiber so the trip is delivered at
  /// its first safe point instead of waiting out the park.
  bool fiberInterruptPending() const {
    return (Machine.AsyncSignals.load(std::memory_order_relaxed) &
            VM::SigInterrupt) != 0;
  }
  FiberScheduler &fibers() { return Machine.Fibers; }

  /// Protects a value from collection for the engine's lifetime.
  void protect(Value V) { Machine.addPermanentRoot(V); }

private:
  VM Machine;
  Compiler Comp;
  std::string LastError;
  ErrorKind LastErrKind = ErrorKind::None;
  bool LastErrFatal = false;
};

} // namespace cmk

#endif // CMARKS_API_SCHEME_H
